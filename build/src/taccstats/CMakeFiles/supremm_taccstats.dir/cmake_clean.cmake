file(REMOVE_RECURSE
  "CMakeFiles/supremm_taccstats.dir/agent.cpp.o"
  "CMakeFiles/supremm_taccstats.dir/agent.cpp.o.d"
  "CMakeFiles/supremm_taccstats.dir/collectors.cpp.o"
  "CMakeFiles/supremm_taccstats.dir/collectors.cpp.o.d"
  "CMakeFiles/supremm_taccstats.dir/reader.cpp.o"
  "CMakeFiles/supremm_taccstats.dir/reader.cpp.o.d"
  "CMakeFiles/supremm_taccstats.dir/schema.cpp.o"
  "CMakeFiles/supremm_taccstats.dir/schema.cpp.o.d"
  "CMakeFiles/supremm_taccstats.dir/writer.cpp.o"
  "CMakeFiles/supremm_taccstats.dir/writer.cpp.o.d"
  "libsupremm_taccstats.a"
  "libsupremm_taccstats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supremm_taccstats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
