file(REMOVE_RECURSE
  "libsupremm_taccstats.a"
)
