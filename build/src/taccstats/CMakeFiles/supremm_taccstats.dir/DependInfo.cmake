
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/taccstats/agent.cpp" "src/taccstats/CMakeFiles/supremm_taccstats.dir/agent.cpp.o" "gcc" "src/taccstats/CMakeFiles/supremm_taccstats.dir/agent.cpp.o.d"
  "/root/repo/src/taccstats/collectors.cpp" "src/taccstats/CMakeFiles/supremm_taccstats.dir/collectors.cpp.o" "gcc" "src/taccstats/CMakeFiles/supremm_taccstats.dir/collectors.cpp.o.d"
  "/root/repo/src/taccstats/reader.cpp" "src/taccstats/CMakeFiles/supremm_taccstats.dir/reader.cpp.o" "gcc" "src/taccstats/CMakeFiles/supremm_taccstats.dir/reader.cpp.o.d"
  "/root/repo/src/taccstats/schema.cpp" "src/taccstats/CMakeFiles/supremm_taccstats.dir/schema.cpp.o" "gcc" "src/taccstats/CMakeFiles/supremm_taccstats.dir/schema.cpp.o.d"
  "/root/repo/src/taccstats/writer.cpp" "src/taccstats/CMakeFiles/supremm_taccstats.dir/writer.cpp.o" "gcc" "src/taccstats/CMakeFiles/supremm_taccstats.dir/writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/supremm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/procsim/CMakeFiles/supremm_procsim.dir/DependInfo.cmake"
  "/root/repo/build/src/facility/CMakeFiles/supremm_facility.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
