# Empty dependencies file for supremm_taccstats.
# This may be replaced when dependencies are built.
