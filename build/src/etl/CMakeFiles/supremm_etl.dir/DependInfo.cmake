
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/etl/ingest.cpp" "src/etl/CMakeFiles/supremm_etl.dir/ingest.cpp.o" "gcc" "src/etl/CMakeFiles/supremm_etl.dir/ingest.cpp.o.d"
  "/root/repo/src/etl/job_summary.cpp" "src/etl/CMakeFiles/supremm_etl.dir/job_summary.cpp.o" "gcc" "src/etl/CMakeFiles/supremm_etl.dir/job_summary.cpp.o.d"
  "/root/repo/src/etl/pair.cpp" "src/etl/CMakeFiles/supremm_etl.dir/pair.cpp.o" "gcc" "src/etl/CMakeFiles/supremm_etl.dir/pair.cpp.o.d"
  "/root/repo/src/etl/quality.cpp" "src/etl/CMakeFiles/supremm_etl.dir/quality.cpp.o" "gcc" "src/etl/CMakeFiles/supremm_etl.dir/quality.cpp.o.d"
  "/root/repo/src/etl/system_series.cpp" "src/etl/CMakeFiles/supremm_etl.dir/system_series.cpp.o" "gcc" "src/etl/CMakeFiles/supremm_etl.dir/system_series.cpp.o.d"
  "/root/repo/src/etl/trace.cpp" "src/etl/CMakeFiles/supremm_etl.dir/trace.cpp.o" "gcc" "src/etl/CMakeFiles/supremm_etl.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/supremm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/accounting/CMakeFiles/supremm_accounting.dir/DependInfo.cmake"
  "/root/repo/build/src/lariat/CMakeFiles/supremm_lariat.dir/DependInfo.cmake"
  "/root/repo/build/src/taccstats/CMakeFiles/supremm_taccstats.dir/DependInfo.cmake"
  "/root/repo/build/src/warehouse/CMakeFiles/supremm_warehouse.dir/DependInfo.cmake"
  "/root/repo/build/src/facility/CMakeFiles/supremm_facility.dir/DependInfo.cmake"
  "/root/repo/build/src/procsim/CMakeFiles/supremm_procsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
