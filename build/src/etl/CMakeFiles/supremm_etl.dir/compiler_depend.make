# Empty compiler generated dependencies file for supremm_etl.
# This may be replaced when dependencies are built.
