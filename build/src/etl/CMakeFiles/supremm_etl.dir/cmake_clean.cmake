file(REMOVE_RECURSE
  "CMakeFiles/supremm_etl.dir/ingest.cpp.o"
  "CMakeFiles/supremm_etl.dir/ingest.cpp.o.d"
  "CMakeFiles/supremm_etl.dir/job_summary.cpp.o"
  "CMakeFiles/supremm_etl.dir/job_summary.cpp.o.d"
  "CMakeFiles/supremm_etl.dir/pair.cpp.o"
  "CMakeFiles/supremm_etl.dir/pair.cpp.o.d"
  "CMakeFiles/supremm_etl.dir/quality.cpp.o"
  "CMakeFiles/supremm_etl.dir/quality.cpp.o.d"
  "CMakeFiles/supremm_etl.dir/system_series.cpp.o"
  "CMakeFiles/supremm_etl.dir/system_series.cpp.o.d"
  "CMakeFiles/supremm_etl.dir/trace.cpp.o"
  "CMakeFiles/supremm_etl.dir/trace.cpp.o.d"
  "libsupremm_etl.a"
  "libsupremm_etl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supremm_etl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
