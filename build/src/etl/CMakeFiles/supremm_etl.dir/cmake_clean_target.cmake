file(REMOVE_RECURSE
  "libsupremm_etl.a"
)
