# Empty dependencies file for supremm_stats.
# This may be replaced when dependencies are built.
