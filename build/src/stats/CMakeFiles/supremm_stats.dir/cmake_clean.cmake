file(REMOVE_RECURSE
  "CMakeFiles/supremm_stats.dir/correlation.cpp.o"
  "CMakeFiles/supremm_stats.dir/correlation.cpp.o.d"
  "CMakeFiles/supremm_stats.dir/descriptive.cpp.o"
  "CMakeFiles/supremm_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/supremm_stats.dir/histogram.cpp.o"
  "CMakeFiles/supremm_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/supremm_stats.dir/kde.cpp.o"
  "CMakeFiles/supremm_stats.dir/kde.cpp.o.d"
  "CMakeFiles/supremm_stats.dir/regression.cpp.o"
  "CMakeFiles/supremm_stats.dir/regression.cpp.o.d"
  "CMakeFiles/supremm_stats.dir/special.cpp.o"
  "CMakeFiles/supremm_stats.dir/special.cpp.o.d"
  "CMakeFiles/supremm_stats.dir/structure.cpp.o"
  "CMakeFiles/supremm_stats.dir/structure.cpp.o.d"
  "libsupremm_stats.a"
  "libsupremm_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supremm_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
