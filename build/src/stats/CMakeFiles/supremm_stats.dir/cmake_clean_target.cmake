file(REMOVE_RECURSE
  "libsupremm_stats.a"
)
