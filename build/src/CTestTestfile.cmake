# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("stats")
subdirs("procsim")
subdirs("facility")
subdirs("taccstats")
subdirs("accounting")
subdirs("lariat")
subdirs("loglib")
subdirs("warehouse")
subdirs("etl")
subdirs("faultsim")
subdirs("xdmod")
subdirs("pipeline")
subdirs("compress")
