file(REMOVE_RECURSE
  "CMakeFiles/supremm_pipeline.dir/pipeline.cpp.o"
  "CMakeFiles/supremm_pipeline.dir/pipeline.cpp.o.d"
  "libsupremm_pipeline.a"
  "libsupremm_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supremm_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
