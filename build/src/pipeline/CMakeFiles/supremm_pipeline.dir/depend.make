# Empty dependencies file for supremm_pipeline.
# This may be replaced when dependencies are built.
