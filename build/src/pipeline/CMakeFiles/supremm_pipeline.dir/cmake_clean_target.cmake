file(REMOVE_RECURSE
  "libsupremm_pipeline.a"
)
