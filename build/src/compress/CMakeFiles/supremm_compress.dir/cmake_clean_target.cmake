file(REMOVE_RECURSE
  "libsupremm_compress.a"
)
