file(REMOVE_RECURSE
  "CMakeFiles/supremm_compress.dir/lzss.cpp.o"
  "CMakeFiles/supremm_compress.dir/lzss.cpp.o.d"
  "libsupremm_compress.a"
  "libsupremm_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supremm_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
