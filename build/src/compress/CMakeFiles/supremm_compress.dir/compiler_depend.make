# Empty compiler generated dependencies file for supremm_compress.
# This may be replaced when dependencies are built.
