file(REMOVE_RECURSE
  "libsupremm_procsim.a"
)
