# Empty dependencies file for supremm_procsim.
# This may be replaced when dependencies are built.
