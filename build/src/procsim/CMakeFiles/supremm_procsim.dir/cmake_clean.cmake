file(REMOVE_RECURSE
  "CMakeFiles/supremm_procsim.dir/counters.cpp.o"
  "CMakeFiles/supremm_procsim.dir/counters.cpp.o.d"
  "CMakeFiles/supremm_procsim.dir/perf.cpp.o"
  "CMakeFiles/supremm_procsim.dir/perf.cpp.o.d"
  "libsupremm_procsim.a"
  "libsupremm_procsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supremm_procsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
