
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/procsim/counters.cpp" "src/procsim/CMakeFiles/supremm_procsim.dir/counters.cpp.o" "gcc" "src/procsim/CMakeFiles/supremm_procsim.dir/counters.cpp.o.d"
  "/root/repo/src/procsim/perf.cpp" "src/procsim/CMakeFiles/supremm_procsim.dir/perf.cpp.o" "gcc" "src/procsim/CMakeFiles/supremm_procsim.dir/perf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/supremm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
