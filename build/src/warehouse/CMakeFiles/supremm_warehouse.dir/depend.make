# Empty dependencies file for supremm_warehouse.
# This may be replaced when dependencies are built.
