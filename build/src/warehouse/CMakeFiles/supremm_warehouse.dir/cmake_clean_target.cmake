file(REMOVE_RECURSE
  "libsupremm_warehouse.a"
)
