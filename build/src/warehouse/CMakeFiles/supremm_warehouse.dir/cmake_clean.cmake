file(REMOVE_RECURSE
  "CMakeFiles/supremm_warehouse.dir/query.cpp.o"
  "CMakeFiles/supremm_warehouse.dir/query.cpp.o.d"
  "CMakeFiles/supremm_warehouse.dir/table.cpp.o"
  "CMakeFiles/supremm_warehouse.dir/table.cpp.o.d"
  "libsupremm_warehouse.a"
  "libsupremm_warehouse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supremm_warehouse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
