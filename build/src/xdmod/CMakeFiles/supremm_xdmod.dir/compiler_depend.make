# Empty compiler generated dependencies file for supremm_xdmod.
# This may be replaced when dependencies are built.
