file(REMOVE_RECURSE
  "CMakeFiles/supremm_xdmod.dir/advisor.cpp.o"
  "CMakeFiles/supremm_xdmod.dir/advisor.cpp.o.d"
  "CMakeFiles/supremm_xdmod.dir/distributions.cpp.o"
  "CMakeFiles/supremm_xdmod.dir/distributions.cpp.o.d"
  "CMakeFiles/supremm_xdmod.dir/efficiency.cpp.o"
  "CMakeFiles/supremm_xdmod.dir/efficiency.cpp.o.d"
  "CMakeFiles/supremm_xdmod.dir/export.cpp.o"
  "CMakeFiles/supremm_xdmod.dir/export.cpp.o.d"
  "CMakeFiles/supremm_xdmod.dir/faults.cpp.o"
  "CMakeFiles/supremm_xdmod.dir/faults.cpp.o.d"
  "CMakeFiles/supremm_xdmod.dir/persistence.cpp.o"
  "CMakeFiles/supremm_xdmod.dir/persistence.cpp.o.d"
  "CMakeFiles/supremm_xdmod.dir/profiles.cpp.o"
  "CMakeFiles/supremm_xdmod.dir/profiles.cpp.o.d"
  "CMakeFiles/supremm_xdmod.dir/realm.cpp.o"
  "CMakeFiles/supremm_xdmod.dir/realm.cpp.o.d"
  "CMakeFiles/supremm_xdmod.dir/reports.cpp.o"
  "CMakeFiles/supremm_xdmod.dir/reports.cpp.o.d"
  "CMakeFiles/supremm_xdmod.dir/selector.cpp.o"
  "CMakeFiles/supremm_xdmod.dir/selector.cpp.o.d"
  "CMakeFiles/supremm_xdmod.dir/timeseries.cpp.o"
  "CMakeFiles/supremm_xdmod.dir/timeseries.cpp.o.d"
  "libsupremm_xdmod.a"
  "libsupremm_xdmod.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supremm_xdmod.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
