file(REMOVE_RECURSE
  "libsupremm_xdmod.a"
)
