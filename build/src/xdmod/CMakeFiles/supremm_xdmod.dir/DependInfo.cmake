
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xdmod/advisor.cpp" "src/xdmod/CMakeFiles/supremm_xdmod.dir/advisor.cpp.o" "gcc" "src/xdmod/CMakeFiles/supremm_xdmod.dir/advisor.cpp.o.d"
  "/root/repo/src/xdmod/distributions.cpp" "src/xdmod/CMakeFiles/supremm_xdmod.dir/distributions.cpp.o" "gcc" "src/xdmod/CMakeFiles/supremm_xdmod.dir/distributions.cpp.o.d"
  "/root/repo/src/xdmod/efficiency.cpp" "src/xdmod/CMakeFiles/supremm_xdmod.dir/efficiency.cpp.o" "gcc" "src/xdmod/CMakeFiles/supremm_xdmod.dir/efficiency.cpp.o.d"
  "/root/repo/src/xdmod/export.cpp" "src/xdmod/CMakeFiles/supremm_xdmod.dir/export.cpp.o" "gcc" "src/xdmod/CMakeFiles/supremm_xdmod.dir/export.cpp.o.d"
  "/root/repo/src/xdmod/faults.cpp" "src/xdmod/CMakeFiles/supremm_xdmod.dir/faults.cpp.o" "gcc" "src/xdmod/CMakeFiles/supremm_xdmod.dir/faults.cpp.o.d"
  "/root/repo/src/xdmod/persistence.cpp" "src/xdmod/CMakeFiles/supremm_xdmod.dir/persistence.cpp.o" "gcc" "src/xdmod/CMakeFiles/supremm_xdmod.dir/persistence.cpp.o.d"
  "/root/repo/src/xdmod/profiles.cpp" "src/xdmod/CMakeFiles/supremm_xdmod.dir/profiles.cpp.o" "gcc" "src/xdmod/CMakeFiles/supremm_xdmod.dir/profiles.cpp.o.d"
  "/root/repo/src/xdmod/realm.cpp" "src/xdmod/CMakeFiles/supremm_xdmod.dir/realm.cpp.o" "gcc" "src/xdmod/CMakeFiles/supremm_xdmod.dir/realm.cpp.o.d"
  "/root/repo/src/xdmod/reports.cpp" "src/xdmod/CMakeFiles/supremm_xdmod.dir/reports.cpp.o" "gcc" "src/xdmod/CMakeFiles/supremm_xdmod.dir/reports.cpp.o.d"
  "/root/repo/src/xdmod/selector.cpp" "src/xdmod/CMakeFiles/supremm_xdmod.dir/selector.cpp.o" "gcc" "src/xdmod/CMakeFiles/supremm_xdmod.dir/selector.cpp.o.d"
  "/root/repo/src/xdmod/timeseries.cpp" "src/xdmod/CMakeFiles/supremm_xdmod.dir/timeseries.cpp.o" "gcc" "src/xdmod/CMakeFiles/supremm_xdmod.dir/timeseries.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/supremm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/supremm_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/etl/CMakeFiles/supremm_etl.dir/DependInfo.cmake"
  "/root/repo/build/src/warehouse/CMakeFiles/supremm_warehouse.dir/DependInfo.cmake"
  "/root/repo/build/src/loglib/CMakeFiles/supremm_loglib.dir/DependInfo.cmake"
  "/root/repo/build/src/accounting/CMakeFiles/supremm_accounting.dir/DependInfo.cmake"
  "/root/repo/build/src/taccstats/CMakeFiles/supremm_taccstats.dir/DependInfo.cmake"
  "/root/repo/build/src/lariat/CMakeFiles/supremm_lariat.dir/DependInfo.cmake"
  "/root/repo/build/src/facility/CMakeFiles/supremm_facility.dir/DependInfo.cmake"
  "/root/repo/build/src/procsim/CMakeFiles/supremm_procsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
