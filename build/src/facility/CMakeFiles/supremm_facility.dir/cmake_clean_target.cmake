file(REMOVE_RECURSE
  "libsupremm_facility.a"
)
