file(REMOVE_RECURSE
  "CMakeFiles/supremm_facility.dir/apps.cpp.o"
  "CMakeFiles/supremm_facility.dir/apps.cpp.o.d"
  "CMakeFiles/supremm_facility.dir/engine.cpp.o"
  "CMakeFiles/supremm_facility.dir/engine.cpp.o.d"
  "CMakeFiles/supremm_facility.dir/hardware.cpp.o"
  "CMakeFiles/supremm_facility.dir/hardware.cpp.o.d"
  "CMakeFiles/supremm_facility.dir/noise.cpp.o"
  "CMakeFiles/supremm_facility.dir/noise.cpp.o.d"
  "CMakeFiles/supremm_facility.dir/scheduler.cpp.o"
  "CMakeFiles/supremm_facility.dir/scheduler.cpp.o.d"
  "CMakeFiles/supremm_facility.dir/users.cpp.o"
  "CMakeFiles/supremm_facility.dir/users.cpp.o.d"
  "CMakeFiles/supremm_facility.dir/workload.cpp.o"
  "CMakeFiles/supremm_facility.dir/workload.cpp.o.d"
  "libsupremm_facility.a"
  "libsupremm_facility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supremm_facility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
