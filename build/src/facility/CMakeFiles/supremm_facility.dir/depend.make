# Empty dependencies file for supremm_facility.
# This may be replaced when dependencies are built.
