
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/facility/apps.cpp" "src/facility/CMakeFiles/supremm_facility.dir/apps.cpp.o" "gcc" "src/facility/CMakeFiles/supremm_facility.dir/apps.cpp.o.d"
  "/root/repo/src/facility/engine.cpp" "src/facility/CMakeFiles/supremm_facility.dir/engine.cpp.o" "gcc" "src/facility/CMakeFiles/supremm_facility.dir/engine.cpp.o.d"
  "/root/repo/src/facility/hardware.cpp" "src/facility/CMakeFiles/supremm_facility.dir/hardware.cpp.o" "gcc" "src/facility/CMakeFiles/supremm_facility.dir/hardware.cpp.o.d"
  "/root/repo/src/facility/noise.cpp" "src/facility/CMakeFiles/supremm_facility.dir/noise.cpp.o" "gcc" "src/facility/CMakeFiles/supremm_facility.dir/noise.cpp.o.d"
  "/root/repo/src/facility/scheduler.cpp" "src/facility/CMakeFiles/supremm_facility.dir/scheduler.cpp.o" "gcc" "src/facility/CMakeFiles/supremm_facility.dir/scheduler.cpp.o.d"
  "/root/repo/src/facility/users.cpp" "src/facility/CMakeFiles/supremm_facility.dir/users.cpp.o" "gcc" "src/facility/CMakeFiles/supremm_facility.dir/users.cpp.o.d"
  "/root/repo/src/facility/workload.cpp" "src/facility/CMakeFiles/supremm_facility.dir/workload.cpp.o" "gcc" "src/facility/CMakeFiles/supremm_facility.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/supremm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/procsim/CMakeFiles/supremm_procsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
