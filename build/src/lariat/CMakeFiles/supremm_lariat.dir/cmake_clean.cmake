file(REMOVE_RECURSE
  "CMakeFiles/supremm_lariat.dir/lariat.cpp.o"
  "CMakeFiles/supremm_lariat.dir/lariat.cpp.o.d"
  "libsupremm_lariat.a"
  "libsupremm_lariat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supremm_lariat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
