# Empty compiler generated dependencies file for supremm_lariat.
# This may be replaced when dependencies are built.
