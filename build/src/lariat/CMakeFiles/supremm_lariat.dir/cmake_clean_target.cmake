file(REMOVE_RECURSE
  "libsupremm_lariat.a"
)
