file(REMOVE_RECURSE
  "libsupremm_loglib.a"
)
