file(REMOVE_RECURSE
  "CMakeFiles/supremm_loglib.dir/loglib.cpp.o"
  "CMakeFiles/supremm_loglib.dir/loglib.cpp.o.d"
  "libsupremm_loglib.a"
  "libsupremm_loglib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supremm_loglib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
