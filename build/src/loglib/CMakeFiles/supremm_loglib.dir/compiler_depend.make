# Empty compiler generated dependencies file for supremm_loglib.
# This may be replaced when dependencies are built.
