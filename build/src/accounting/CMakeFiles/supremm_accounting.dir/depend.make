# Empty dependencies file for supremm_accounting.
# This may be replaced when dependencies are built.
