file(REMOVE_RECURSE
  "CMakeFiles/supremm_accounting.dir/accounting.cpp.o"
  "CMakeFiles/supremm_accounting.dir/accounting.cpp.o.d"
  "libsupremm_accounting.a"
  "libsupremm_accounting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supremm_accounting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
