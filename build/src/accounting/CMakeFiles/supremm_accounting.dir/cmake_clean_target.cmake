file(REMOVE_RECURSE
  "libsupremm_accounting.a"
)
