file(REMOVE_RECURSE
  "libsupremm_faultsim.a"
)
