# Empty dependencies file for supremm_faultsim.
# This may be replaced when dependencies are built.
