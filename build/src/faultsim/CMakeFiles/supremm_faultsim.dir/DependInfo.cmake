
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/faultsim/faultsim.cpp" "src/faultsim/CMakeFiles/supremm_faultsim.dir/faultsim.cpp.o" "gcc" "src/faultsim/CMakeFiles/supremm_faultsim.dir/faultsim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/supremm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/accounting/CMakeFiles/supremm_accounting.dir/DependInfo.cmake"
  "/root/repo/build/src/lariat/CMakeFiles/supremm_lariat.dir/DependInfo.cmake"
  "/root/repo/build/src/taccstats/CMakeFiles/supremm_taccstats.dir/DependInfo.cmake"
  "/root/repo/build/src/facility/CMakeFiles/supremm_facility.dir/DependInfo.cmake"
  "/root/repo/build/src/procsim/CMakeFiles/supremm_procsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
