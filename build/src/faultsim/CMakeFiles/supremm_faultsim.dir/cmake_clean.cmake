file(REMOVE_RECURSE
  "CMakeFiles/supremm_faultsim.dir/faultsim.cpp.o"
  "CMakeFiles/supremm_faultsim.dir/faultsim.cpp.o.d"
  "libsupremm_faultsim.a"
  "libsupremm_faultsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supremm_faultsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
