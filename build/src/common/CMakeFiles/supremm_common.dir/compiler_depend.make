# Empty compiler generated dependencies file for supremm_common.
# This may be replaced when dependencies are built.
