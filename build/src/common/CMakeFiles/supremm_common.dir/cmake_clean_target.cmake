file(REMOVE_RECURSE
  "libsupremm_common.a"
)
