file(REMOVE_RECURSE
  "CMakeFiles/supremm_common.dir/ascii_table.cpp.o"
  "CMakeFiles/supremm_common.dir/ascii_table.cpp.o.d"
  "CMakeFiles/supremm_common.dir/csv.cpp.o"
  "CMakeFiles/supremm_common.dir/csv.cpp.o.d"
  "CMakeFiles/supremm_common.dir/rng.cpp.o"
  "CMakeFiles/supremm_common.dir/rng.cpp.o.d"
  "CMakeFiles/supremm_common.dir/strings.cpp.o"
  "CMakeFiles/supremm_common.dir/strings.cpp.o.d"
  "CMakeFiles/supremm_common.dir/thread_pool.cpp.o"
  "CMakeFiles/supremm_common.dir/thread_pool.cpp.o.d"
  "CMakeFiles/supremm_common.dir/time.cpp.o"
  "CMakeFiles/supremm_common.dir/time.cpp.o.d"
  "libsupremm_common.a"
  "libsupremm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supremm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
