file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_persistence.dir/bench_table1_persistence.cpp.o"
  "CMakeFiles/bench_table1_persistence.dir/bench_table1_persistence.cpp.o.d"
  "bench_table1_persistence"
  "bench_table1_persistence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_persistence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
