# Empty dependencies file for bench_fig12_memory_distribution.
# This may be replaced when dependencies are built.
