file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_persistence_fit.dir/bench_fig6_persistence_fit.cpp.o"
  "CMakeFiles/bench_fig6_persistence_fit.dir/bench_fig6_persistence_fit.cpp.o.d"
  "bench_fig6_persistence_fit"
  "bench_fig6_persistence_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_persistence_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
