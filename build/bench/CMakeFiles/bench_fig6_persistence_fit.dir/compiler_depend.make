# Empty compiler generated dependencies file for bench_fig6_persistence_fit.
# This may be replaced when dependencies are built.
