# Empty compiler generated dependencies file for bench_fig9_flops_timeseries.
# This may be replaced when dependencies are built.
