# Empty dependencies file for bench_ingest_query.
# This may be replaced when dependencies are built.
