file(REMOVE_RECURSE
  "CMakeFiles/bench_ingest_query.dir/bench_ingest_query.cpp.o"
  "CMakeFiles/bench_ingest_query.dir/bench_ingest_query.cpp.o.d"
  "bench_ingest_query"
  "bench_ingest_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ingest_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
