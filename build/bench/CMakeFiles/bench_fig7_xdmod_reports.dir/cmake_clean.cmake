file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_xdmod_reports.dir/bench_fig7_xdmod_reports.cpp.o"
  "CMakeFiles/bench_fig7_xdmod_reports.dir/bench_fig7_xdmod_reports.cpp.o.d"
  "bench_fig7_xdmod_reports"
  "bench_fig7_xdmod_reports.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_xdmod_reports.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
