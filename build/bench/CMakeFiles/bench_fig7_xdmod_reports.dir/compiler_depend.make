# Empty compiler generated dependencies file for bench_fig7_xdmod_reports.
# This may be replaced when dependencies are built.
