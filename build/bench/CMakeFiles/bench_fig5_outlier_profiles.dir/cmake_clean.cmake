file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_outlier_profiles.dir/bench_fig5_outlier_profiles.cpp.o"
  "CMakeFiles/bench_fig5_outlier_profiles.dir/bench_fig5_outlier_profiles.cpp.o.d"
  "bench_fig5_outlier_profiles"
  "bench_fig5_outlier_profiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_outlier_profiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
