# Empty dependencies file for bench_ingest_faults.
# This may be replaced when dependencies are built.
