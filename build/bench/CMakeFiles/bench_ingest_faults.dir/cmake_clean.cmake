file(REMOVE_RECURSE
  "CMakeFiles/bench_ingest_faults.dir/bench_ingest_faults.cpp.o"
  "CMakeFiles/bench_ingest_faults.dir/bench_ingest_faults.cpp.o.d"
  "bench_ingest_faults"
  "bench_ingest_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ingest_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
