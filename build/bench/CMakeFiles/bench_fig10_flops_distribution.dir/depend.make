# Empty dependencies file for bench_fig10_flops_distribution.
# This may be replaced when dependencies are built.
