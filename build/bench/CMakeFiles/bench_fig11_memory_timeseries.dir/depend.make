# Empty dependencies file for bench_fig11_memory_timeseries.
# This may be replaced when dependencies are built.
