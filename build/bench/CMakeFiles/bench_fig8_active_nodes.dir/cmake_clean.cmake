file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_active_nodes.dir/bench_fig8_active_nodes.cpp.o"
  "CMakeFiles/bench_fig8_active_nodes.dir/bench_fig8_active_nodes.cpp.o.d"
  "bench_fig8_active_nodes"
  "bench_fig8_active_nodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_active_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
