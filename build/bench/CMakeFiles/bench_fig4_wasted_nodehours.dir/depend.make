# Empty dependencies file for bench_fig4_wasted_nodehours.
# This may be replaced when dependencies are built.
