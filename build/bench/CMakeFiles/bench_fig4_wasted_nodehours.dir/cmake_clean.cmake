file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_wasted_nodehours.dir/bench_fig4_wasted_nodehours.cpp.o"
  "CMakeFiles/bench_fig4_wasted_nodehours.dir/bench_fig4_wasted_nodehours.cpp.o.d"
  "bench_fig4_wasted_nodehours"
  "bench_fig4_wasted_nodehours.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_wasted_nodehours.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
