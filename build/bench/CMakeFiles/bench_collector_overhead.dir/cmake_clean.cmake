file(REMOVE_RECURSE
  "CMakeFiles/bench_collector_overhead.dir/bench_collector_overhead.cpp.o"
  "CMakeFiles/bench_collector_overhead.dir/bench_collector_overhead.cpp.o.d"
  "bench_collector_overhead"
  "bench_collector_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_collector_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
