# Empty compiler generated dependencies file for bench_collector_overhead.
# This may be replaced when dependencies are built.
