# Empty compiler generated dependencies file for bench_fig2_user_profiles.
# This may be replaced when dependencies are built.
