
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/test_stats.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/test_stats.dir/test_stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pipeline/CMakeFiles/supremm_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/supremm_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/xdmod/CMakeFiles/supremm_xdmod.dir/DependInfo.cmake"
  "/root/repo/build/src/faultsim/CMakeFiles/supremm_faultsim.dir/DependInfo.cmake"
  "/root/repo/build/src/etl/CMakeFiles/supremm_etl.dir/DependInfo.cmake"
  "/root/repo/build/src/taccstats/CMakeFiles/supremm_taccstats.dir/DependInfo.cmake"
  "/root/repo/build/src/loglib/CMakeFiles/supremm_loglib.dir/DependInfo.cmake"
  "/root/repo/build/src/lariat/CMakeFiles/supremm_lariat.dir/DependInfo.cmake"
  "/root/repo/build/src/accounting/CMakeFiles/supremm_accounting.dir/DependInfo.cmake"
  "/root/repo/build/src/warehouse/CMakeFiles/supremm_warehouse.dir/DependInfo.cmake"
  "/root/repo/build/src/facility/CMakeFiles/supremm_facility.dir/DependInfo.cmake"
  "/root/repo/build/src/procsim/CMakeFiles/supremm_procsim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/supremm_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/supremm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
