file(REMOVE_RECURSE
  "CMakeFiles/test_faults_export.dir/test_faults_export.cpp.o"
  "CMakeFiles/test_faults_export.dir/test_faults_export.cpp.o.d"
  "test_faults_export"
  "test_faults_export.pdb"
  "test_faults_export[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_faults_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
