# Empty dependencies file for test_faults_export.
# This may be replaced when dependencies are built.
