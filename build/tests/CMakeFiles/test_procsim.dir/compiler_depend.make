# Empty compiler generated dependencies file for test_procsim.
# This may be replaced when dependencies are built.
