file(REMOVE_RECURSE
  "CMakeFiles/test_procsim.dir/test_procsim.cpp.o"
  "CMakeFiles/test_procsim.dir/test_procsim.cpp.o.d"
  "test_procsim"
  "test_procsim.pdb"
  "test_procsim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_procsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
