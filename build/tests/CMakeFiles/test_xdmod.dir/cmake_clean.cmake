file(REMOVE_RECURSE
  "CMakeFiles/test_xdmod.dir/test_xdmod.cpp.o"
  "CMakeFiles/test_xdmod.dir/test_xdmod.cpp.o.d"
  "test_xdmod"
  "test_xdmod.pdb"
  "test_xdmod[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xdmod.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
