# Empty compiler generated dependencies file for test_xdmod.
# This may be replaced when dependencies are built.
