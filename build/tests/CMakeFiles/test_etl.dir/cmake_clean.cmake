file(REMOVE_RECURSE
  "CMakeFiles/test_etl.dir/test_etl.cpp.o"
  "CMakeFiles/test_etl.dir/test_etl.cpp.o.d"
  "test_etl"
  "test_etl.pdb"
  "test_etl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_etl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
