# Empty dependencies file for test_sidechannel.
# This may be replaced when dependencies are built.
