# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_procsim[1]_include.cmake")
include("/root/repo/build/tests/test_facility[1]_include.cmake")
include("/root/repo/build/tests/test_taccstats[1]_include.cmake")
include("/root/repo/build/tests/test_sidechannel[1]_include.cmake")
include("/root/repo/build/tests/test_warehouse[1]_include.cmake")
include("/root/repo/build/tests/test_etl[1]_include.cmake")
include("/root/repo/build/tests/test_xdmod[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_faults_export[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_faultsim[1]_include.cmake")
