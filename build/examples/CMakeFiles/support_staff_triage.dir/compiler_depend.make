# Empty compiler generated dependencies file for support_staff_triage.
# This may be replaced when dependencies are built.
