file(REMOVE_RECURSE
  "CMakeFiles/support_staff_triage.dir/support_staff_triage.cpp.o"
  "CMakeFiles/support_staff_triage.dir/support_staff_triage.cpp.o.d"
  "support_staff_triage"
  "support_staff_triage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_staff_triage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
