file(REMOVE_RECURSE
  "CMakeFiles/persistence_scheduler.dir/persistence_scheduler.cpp.o"
  "CMakeFiles/persistence_scheduler.dir/persistence_scheduler.cpp.o.d"
  "persistence_scheduler"
  "persistence_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/persistence_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
