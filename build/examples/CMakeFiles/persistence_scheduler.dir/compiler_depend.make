# Empty compiler generated dependencies file for persistence_scheduler.
# This may be replaced when dependencies are built.
