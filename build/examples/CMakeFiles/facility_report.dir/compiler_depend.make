# Empty compiler generated dependencies file for facility_report.
# This may be replaced when dependencies are built.
