file(REMOVE_RECURSE
  "CMakeFiles/facility_report.dir/facility_report.cpp.o"
  "CMakeFiles/facility_report.dir/facility_report.cpp.o.d"
  "facility_report"
  "facility_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/facility_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
