// Federated scatter-gather tests (DESIGN.md §17): merged shard partials must
// be bit-identical to the single-warehouse engine for every shard count and
// placement (rollup-served shard partials included), catalog pruning must
// skip provably irrelevant shards, shard faults must degrade to accounted
// kPartial answers, and every malformed wire conversation — truncations,
// forged CRCs, version mismatches, random bit flips — must surface as a
// sourced error, never a crash.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "archive/partition.h"
#include "archive/tables.h"
#include "common/checksum.h"
#include "common/error.h"
#include "common/rng.h"
#include "common/time.h"
#include "etl/job_summary.h"
#include "facility/hardware.h"
#include "federation/catalog.h"
#include "federation/executor.h"
#include "federation/federation.h"
#include "federation/transport.h"
#include "federation/wire.h"
#include "service/request.h"
#include "service/service.h"
#include "sim_fixture.h"
#include "testkit/genrequest.h"
#include "testkit/oracle.h"
#include "warehouse/aggstate.h"
#include "warehouse/partial.h"
#include "warehouse/rollup.h"

namespace ar = supremm::archive;
namespace etl = supremm::etl;
namespace fed = supremm::federation;
namespace ru = supremm::warehouse::rollup;
namespace sc = supremm::common;
namespace sv = supremm::service;
namespace tk = supremm::testkit;
namespace wh = supremm::warehouse;
namespace wire = supremm::federation::wire;
using supremm::testing::expect_tables_identical;

namespace {

constexpr std::int64_t kDay = sc::kDay;
constexpr std::uint64_t kSeed = 20130313;

/// Forces rollup serving on for the test body (the SUPREMM_ROLLUP=off ctest
/// leg then re-runs the whole suite with serving disabled; identity must
/// hold either way) and restores the default on exit.
struct EnabledGuard {
  EnabledGuard() { ru::set_enabled(true); }
  ~EnabledGuard() { ru::set_enabled(true); }
};

/// Shard counts under test. SUPREMM_FED_SHARDS pins one count, so CI matrix
/// legs can split the work (and prove each count in isolation).
std::vector<std::size_t> shard_counts() {
  if (const char* env = std::getenv("SUPREMM_FED_SHARDS")) {
    return {static_cast<std::size_t>(std::strtoull(env, nullptr, 10))};
  }
  return {1, 2, 5};
}

const std::vector<etl::JobSummary>& fuzz_jobs() {
  static const std::vector<etl::JobSummary> jobs =
      tk::make_rollup_jobs({.rows = 2500, .seed = 777});
  return jobs;
}

/// The single-warehouse reference: the full population, augmented and
/// zone-indexed exactly as Service::publish_jobs would.
const wh::Table& fuzz_ref() {
  static const wh::Table t = [] {
    wh::Table jt = ar::jobs_table(fuzz_jobs());
    ru::augment_jobs_table(jt);
    jt.rebuild_zone_index(ar::kDefaultChunkRows);
    return jt;
  }();
  return t;
}

/// A federation over loopback transports, owning its executors.
struct Fed {
  std::vector<std::unique_ptr<fed::ShardExecutor>> executors;
  std::vector<std::shared_ptr<fed::LoopbackTransport>> transports;
  std::shared_ptr<fed::Federation> federation;
};

Fed make_fed(const std::vector<std::vector<etl::JobSummary>>& slices, bool rollups,
             fed::Federation::Config cfg = {}) {
  Fed f;
  f.federation = std::make_shared<fed::Federation>(std::move(cfg));
  for (std::size_t i = 0; i < slices.size(); ++i) {
    fed::ShardExecutor::Options opts;
    opts.rollups = rollups;
    auto ex = std::make_unique<fed::ShardExecutor>(
        "shard" + std::to_string(i), ar::jobs_table(slices[i]), opts);
    auto tr = std::make_shared<fed::LoopbackTransport>(*ex);
    f.federation->add_shard(ex->info(), tr);
    f.transports.push_back(tr);
    f.executors.push_back(std::move(ex));
  }
  return f;
}

/// Fuzz query `q` as both the engine-side testkit spec and the compiled
/// service spec the federation scatters.
sv::QuerySpec fuzz_spec(std::uint64_t q, tk::QuerySpec* tspec) {
  const std::string text = tk::make_rollup_request_text(kSeed, q, tspec);
  return sv::parse_request(text).query;
}

sv::QuerySpec parse_query(const std::string& text) {
  return sv::parse_request(text).query;
}

/// Parse one response conversation the way the planner does; throws on any
/// malformed byte.
wire::PartialMsg parse_response_strict(std::string_view resp) {
  std::size_t offset = 0;
  const wire::Frame ack = wire::read_frame(resp, offset);
  if (ack.type != wire::MsgType::kHelloAck) {
    throw sc::ParseError("test: expected hello-ack");
  }
  (void)wire::unpack_hello_ack(ack.payload);
  const wire::Frame body = wire::read_frame(resp, offset);
  if (offset != resp.size()) throw sc::ParseError("test: trailing bytes");
  if (body.type == wire::MsgType::kError) {
    const wire::ErrorMsg err = wire::unpack_error(body.payload);
    throw sc::ParseError("shard error: " + err.message);
  }
  return wire::unpack_partial(body.payload);
}

wh::AggSpec agg(wh::AggKind kind, std::string column = {}) {
  wh::AggSpec a;
  a.kind = kind;
  a.column = std::move(column);
  return a;
}

std::string request_bytes(const sv::QuerySpec& spec) {
  return wire::frame(wire::MsgType::kHello, wire::pack_hello({"test-client"})) +
         wire::frame(wire::MsgType::kQuery, wire::pack_query({spec, 0, "job_id"}));
}

}  // namespace

// ---------------------------------------------------------------------------
// The §17 tentpole: merged scatter-gather == single warehouse, bit for bit,
// for shard counts {1,2,5} x threads {1,8} x rollups {off,on}, under
// adversarial (seed-random per (cluster, day) cell) placement.

TEST(FederationFuzz, ShardCountsThreadsRollupsBitIdentical) {
  EnabledGuard guard;
  constexpr std::size_t kQueries = 90;
  for (const std::size_t nshards : shard_counts()) {
    const auto slices =
        tk::split_jobs_for_shards(fuzz_jobs(), nshards, kSeed + nshards);
    for (const bool rollups : {false, true}) {
      const Fed f = make_fed(slices, rollups);
      for (std::uint64_t q = 0; q < kQueries; ++q) {
        tk::QuerySpec tspec;
        sv::QuerySpec spec = fuzz_spec(q, &tspec);
        SCOPED_TRACE("shards=" + std::to_string(nshards) +
                     " rollups=" + std::to_string(rollups) + " query " +
                     std::to_string(q) + ": " + tk::describe(tspec));
        for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
          spec.threads = threads;
          tspec.threads = threads;
          const sv::RemoteResult res = f.federation->run(spec);
          ASSERT_TRUE(res.complete);
          const tk::QueryRun raw = tk::run_engine(fuzz_ref(), tspec);
          expect_tables_identical(*res.table, raw.table);
        }
        // The engine itself is pinned against the row-at-a-time oracle for
        // the same (seed, index) stream — keep a slice of that differential
        // here so the federation suite is self-contained.
        if (q < 25 && nshards == shard_counts().front() && !rollups) {
          tspec.threads = 1;
          const auto diff = tk::differential_check(fuzz_ref(), tspec, 1);
          ASSERT_FALSE(diff.has_value()) << *diff;
        }
      }
    }
  }
}

TEST(FederationFuzz, RollupServedShardsReportAndMatch) {
  EnabledGuard guard;
  const auto slices = tk::split_jobs_for_shards(fuzz_jobs(), 3, 99);
  const Fed with = make_fed(slices, /*rollups=*/true);
  const Fed without = make_fed(slices, /*rollups=*/false);

  // Subsumption is decided by the query alone, so for every fuzz query the
  // shards must agree on rollup serving, the rollup-armed and rollup-free
  // federations must agree bitwise, and over the stream a healthy share of
  // queries must actually have been served from shard RollupSets.
  std::size_t served_queries = 0;
  for (std::uint64_t q = 0; q < 60; ++q) {
    tk::QuerySpec tspec;
    const sv::QuerySpec spec = fuzz_spec(q, &tspec);
    SCOPED_TRACE("query " + std::to_string(q) + ": " + tk::describe(tspec));
    const sv::RemoteResult a = with.federation->run(spec);
    const sv::RemoteResult b = without.federation->run(spec);
    ASSERT_TRUE(a.complete);
    ASSERT_TRUE(b.complete);
    expect_tables_identical(*a.table, *b.table);
    expect_tables_identical(*a.table, tk::run_engine(fuzz_ref(), tspec).table);
    bool any = false, all = true;
    for (const sv::RemoteShardReport& s : a.shards) {
      if (s.outcome != sv::RemoteShardReport::Outcome::kOk) continue;
      any = any || s.rollup_served;
      all = all && s.rollup_served;
    }
    EXPECT_EQ(any, all);  // shards never disagree on subsumption
    if (all && any) ++served_queries;
    for (const sv::RemoteShardReport& s : b.shards) {
      EXPECT_FALSE(s.rollup_served) << s.shard;
    }
  }
  EXPECT_GE(served_queries, 10u);
}

// ---------------------------------------------------------------------------
// Targeted determinism traps: NaN / -0.0 accumulator bits and first-seen
// group order under placement that reverses shard-local discovery order.

namespace {

etl::JobSummary simple_job(std::int64_t id, const std::string& user,
                           const std::string& cluster, std::int64_t day,
                           double metric) {
  etl::JobSummary j;
  j.id = id;
  j.user = user;
  j.app = "app0";
  j.cluster = cluster;
  j.science = "s0";
  j.project = "p0";
  j.end = day * kDay + 4000;
  j.start = j.end - 3600;
  j.submit = j.start - 60;
  j.nodes = 2;
  j.cores = 32;
  j.node_hours = 2.0;
  j.samples = 7;
  j.cpu_idle = metric;
  j.mem_used_gb = metric;
  return j;
}

}  // namespace

TEST(FederationDeterminism, NanAndSignedZeroSurviveTheMerge) {
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  // One group per user; NaN rows and ±0.0 rows deliberately land on
  // different shards (different clusters), so the merge must reproduce the
  // engine's NaN and signed-zero accumulation bit for bit.
  std::vector<etl::JobSummary> jobs = {
      simple_job(1, "alice", "east", 3, kNaN),
      simple_job(2, "alice", "west", 5, -0.0),
      simple_job(3, "bob", "east", 3, 0.0),
      simple_job(4, "bob", "west", 9, -0.0),
      simple_job(5, "carol", "west", 9, kNaN),
      simple_job(6, "carol", "east", 2, kNaN),
  };
  wh::Table ref = ar::jobs_table(jobs);
  ru::augment_jobs_table(ref);

  const sv::QuerySpec spec = parse_query(
      "query jobs group user agg sum(cpu_idle), min(cpu_idle), max(cpu_idle), "
      "mean(mem_used_gb), count()");
  tk::QuerySpec tspec;
  tspec.group_by = {"user"};
  const wh::AggSpec a1 = agg(wh::AggKind::kSum, "cpu_idle");
  const wh::AggSpec a2 = agg(wh::AggKind::kMin, "cpu_idle");
  const wh::AggSpec a3 = agg(wh::AggKind::kMax, "cpu_idle");
  const wh::AggSpec a4 = agg(wh::AggKind::kMean, "mem_used_gb");
  const wh::AggSpec a5 = agg(wh::AggKind::kCount);
  tspec.aggs = {a1, a2, a3, a4, a5};

  // Shard by cluster: east = {1,3,6}, west = {2,4,5}.
  std::vector<std::vector<etl::JobSummary>> slices(2);
  for (const auto& j : jobs) (j.cluster == "east" ? slices[0] : slices[1]).push_back(j);
  const Fed f = make_fed(slices, /*rollups=*/false);
  const sv::RemoteResult res = f.federation->run(spec);
  ASSERT_TRUE(res.complete);
  const tk::QueryRun raw = tk::run_engine(ref, tspec);
  expect_tables_identical(*res.table, raw.table);
  // First-seen group order is min-job-id order: alice (1), bob (3), carol (5).
  ASSERT_EQ(res.table->rows(), 3u);
  EXPECT_EQ(res.table->col("user").as_string(0), "alice");
  EXPECT_EQ(res.table->col("user").as_string(1), "bob");
  EXPECT_EQ(res.table->col("user").as_string(2), "carol");
}

TEST(FederationDeterminism, GroupOrderIgnoresShardLocalDiscoveryOrder) {
  // Shard 1 sees "zed" first among its own rows, but "amy" owns the globally
  // smallest job id on shard 0 — the merged first-seen order must be the
  // single-warehouse order (amy, zed), not scatter arrival or shard order.
  std::vector<etl::JobSummary> jobs = {
      simple_job(1, "amy", "east", 3, 1.0),
      simple_job(2, "zed", "west", 4, 2.0),
      simple_job(3, "amy", "west", 6, 3.0),
      simple_job(4, "zed", "east", 7, 4.0),
  };
  wh::Table ref = ar::jobs_table(jobs);
  ru::augment_jobs_table(ref);

  // Reversed registration: the shard holding "zed"'s first row comes first.
  std::vector<std::vector<etl::JobSummary>> slices(2);
  for (const auto& j : jobs) (j.cluster == "west" ? slices[0] : slices[1]).push_back(j);
  const Fed f = make_fed(slices, /*rollups=*/false);
  const sv::QuerySpec spec = parse_query("query jobs group user agg count()");
  const sv::RemoteResult res = f.federation->run(spec);
  ASSERT_TRUE(res.complete);
  ASSERT_EQ(res.table->rows(), 2u);
  EXPECT_EQ(res.table->col("user").as_string(0), "amy");
  EXPECT_EQ(res.table->col("user").as_string(1), "zed");

  tk::QuerySpec tspec;
  tspec.group_by = {"user"};
  const wh::AggSpec count = agg(wh::AggKind::kCount);
  tspec.aggs = {count};
  expect_tables_identical(*res.table, tk::run_engine(ref, tspec).table);
}

// ---------------------------------------------------------------------------
// Catalog pruning: provably irrelevant shards are never contacted, and an
// all-pruned scatter still returns the schema-correct empty table.

TEST(FederationCatalog, ClusterAndDayPruningSkipShards) {
  EnabledGuard guard;
  // One shard per cluster (the rollup population uses c0/c1/c2).
  std::vector<std::vector<etl::JobSummary>> slices(3);
  for (const auto& j : fuzz_jobs()) {
    slices[static_cast<std::size_t>(j.cluster[1] - '0')].push_back(j);
  }
  const Fed f = make_fed(slices, /*rollups=*/false);

  const sv::RemoteResult res =
      f.federation->run(parse_query("query jobs where cluster = \"c1\" agg count()"));
  ASSERT_TRUE(res.complete);
  EXPECT_EQ(f.transports[0]->exchanges(), 0u);
  EXPECT_EQ(f.transports[1]->exchanges(), 1u);
  EXPECT_EQ(f.transports[2]->exchanges(), 0u);
  ASSERT_EQ(res.shards.size(), 3u);
  std::size_t pruned = 0;
  for (const auto& s : res.shards) {
    if (s.outcome == sv::RemoteShardReport::Outcome::kPruned) ++pruned;
  }
  EXPECT_EQ(pruned, 2u);
  tk::QuerySpec tspec;
  tspec.has_where = true;
  tk::PredTerm t;
  t.op = tk::PredOp::kEq;
  t.column = "cluster";
  t.value = "c1";
  tspec.where = {t};
  const wh::AggSpec count = agg(wh::AggKind::kCount);
  tspec.aggs = {count};
  expect_tables_identical(*res.table, tk::run_engine(fuzz_ref(), tspec).table);

  // Day-window pruning: split by day halves and bound the query below the
  // upper shard's range.
  std::vector<std::vector<etl::JobSummary>> halves(2);
  for (const auto& j : fuzz_jobs()) {
    halves[wh::end_day_index(j.end) < 50 ? 0 : 1].push_back(j);
  }
  const Fed g = make_fed(halves, /*rollups=*/false);
  const sv::RemoteResult low = g.federation->run(parse_query(
      "query jobs where end between 1 and " + std::to_string(10 * kDay) +
      " group user agg count()"));
  ASSERT_TRUE(low.complete);
  EXPECT_EQ(g.transports[0]->exchanges(), 1u);
  EXPECT_EQ(g.transports[1]->exchanges(), 0u);

  // A window beyond every shard's data: all pruned, one schema-donor
  // contact, empty but schema-correct result.
  const sv::RemoteResult none = g.federation->run(parse_query(
      "query jobs where end >= " + std::to_string(5000 * kDay) +
      " group user agg count(), sum(node_hours)"));
  ASSERT_TRUE(none.complete);
  EXPECT_EQ(none.table->rows(), 0u);
  EXPECT_EQ(g.transports[0]->exchanges(), 2u);
  EXPECT_EQ(g.transports[1]->exchanges(), 0u);
  tk::QuerySpec far;
  far.has_where = true;
  tk::PredTerm ge;
  ge.op = tk::PredOp::kGe;
  ge.column = "end";
  ge.lo = static_cast<double>(5000 * kDay);
  far.where = {ge};
  far.group_by = {"user"};
  const wh::AggSpec sum = agg(wh::AggKind::kSum, "node_hours");
  far.aggs = {count, sum};
  expect_tables_identical(*none.table, tk::run_engine(fuzz_ref(), far).table);
}

TEST(FederationCatalog, EmptyShardIsLegalAndPrunedFromBoundedQueries) {
  auto slices = tk::split_jobs_for_shards(fuzz_jobs(), 2, 7);
  slices.push_back({});  // an empty third shard
  const Fed f = make_fed(slices, /*rollups=*/true);
  const fed::ShardInfo& empty = f.federation->catalog().shards()[2];
  EXPECT_GT(empty.day_lo, empty.day_hi);

  // Unbounded query: the empty shard is contacted and contributes nothing.
  const sv::RemoteResult all =
      f.federation->run(parse_query("query jobs group user, app agg count()"));
  ASSERT_TRUE(all.complete);
  EXPECT_EQ(f.transports[2]->exchanges(), 1u);
  tk::QuerySpec tspec;
  tspec.group_by = {"user", "app"};
  const wh::AggSpec count = agg(wh::AggKind::kCount);
  tspec.aggs = {count};
  expect_tables_identical(*all.table, tk::run_engine(fuzz_ref(), tspec).table);

  // Bounded query: the empty day range proves irrelevance; never contacted
  // (the bound sits past the conservative one-day slack).
  const sv::RemoteResult bounded = f.federation->run(parse_query(
      "query jobs where end >= " + std::to_string(3 * kDay) + " group user agg count()"));
  ASSERT_TRUE(bounded.complete);
  EXPECT_EQ(f.transports[2]->exchanges(), 1u);  // unchanged
}

// ---------------------------------------------------------------------------
// Degraded scatter: shard faults and timeouts become accounted kPartial
// service answers; zero-success scatters error.

TEST(FederationService, ShardFaultDegradesToAccountedPartial) {
  EnabledGuard guard;
  const auto slices = tk::split_jobs_for_shards(fuzz_jobs(), 2, 11);
  const Fed f = make_fed(slices, /*rollups=*/false);
  f.transports[1]->set_before(
      [](std::uint32_t) { throw sc::IoError("shard1 is unreachable"); });

  sv::ServiceConfig cfg;
  cfg.workers = 1;
  sv::Service svc(cfg);
  svc.bind_remote(f.federation);
  auto s = svc.session("fed-test");

  const std::string text = "query jobs group user agg count(), sum(node_hours)";
  const sv::ResponsePtr r = s.run(text);
  ASSERT_EQ(r->status, sv::Status::kPartial) << r->error;
  EXPECT_NE(r->error.find("shard1"), std::string::npos) << r->error;
  EXPECT_NE(r->error.find("unreachable"), std::string::npos) << r->error;
  ASSERT_NE(r->table, nullptr);

  // The degraded answer is exactly the surviving shard's single-warehouse
  // answer (partial data, not wrong data).
  wh::Table ref0 = ar::jobs_table(slices[0]);
  ru::augment_jobs_table(ref0);
  tk::QuerySpec tspec;
  tspec.group_by = {"user"};
  const wh::AggSpec count = agg(wh::AggKind::kCount);
  const wh::AggSpec sum = agg(wh::AggKind::kSum, "node_hours");
  tspec.aggs = {count, sum};
  expect_tables_identical(*r->table, tk::run_engine(ref0, tspec).table);

  // kPartial is never cached: the retry re-runs the scatter.
  const sv::ResponsePtr r2 = s.run(text);
  EXPECT_EQ(r2->status, sv::Status::kPartial);
  EXPECT_FALSE(r2->cache_hit);

  const sv::ServiceMetrics m = svc.metrics();
  EXPECT_TRUE(m.federation_bound);
  EXPECT_EQ(m.federated, 2u);
  EXPECT_EQ(m.federated_partial, 2u);
  ASSERT_TRUE(m.shards.contains("shard1"));
  EXPECT_EQ(m.shards.at("shard1").errors, 2u);
  EXPECT_EQ(m.shards.at("shard0").ok, 2u);
  const std::string json = svc.metrics_json();
  EXPECT_NE(json.find("\"federation\""), std::string::npos);
  EXPECT_NE(json.find("\"shard1\""), std::string::npos);

  // Shard heals: the same text now completes, serves kOk and caches.
  f.transports[1]->set_before(nullptr);
  const sv::ResponsePtr r3 = s.run(text);
  ASSERT_EQ(r3->status, sv::Status::kOk) << r3->error;
  expect_tables_identical(*r3->table, tk::run_engine(fuzz_ref(), tspec).table);
  const sv::ResponsePtr r4 = s.run(text);
  EXPECT_EQ(r4->status, sv::Status::kOk);
  EXPECT_TRUE(r4->cache_hit);
  expect_tables_identical(*r3->table, *r4->table);
}

TEST(FederationService, TimeoutsAreAccountedAsTimeouts) {
  const auto slices = tk::split_jobs_for_shards(fuzz_jobs(), 2, 13);
  const Fed f = make_fed(slices, /*rollups=*/false);
  f.transports[0]->set_before([](std::uint32_t deadline_ms) {
    EXPECT_EQ(deadline_ms, fed::Federation::Config{}.shard_deadline_ms);
    throw sc::Cancelled("shard transport: response deadline expired");
  });
  const sv::RemoteResult res =
      f.federation->run(parse_query("query jobs group user agg count()"));
  EXPECT_FALSE(res.complete);
  ASSERT_EQ(res.shards.size(), 2u);
  EXPECT_EQ(res.shards[0].outcome, sv::RemoteShardReport::Outcome::kTimedOut);
  EXPECT_EQ(res.shards[1].outcome, sv::RemoteShardReport::Outcome::kOk);

  // A shard-side timeout travels as an Error frame with the timeout flag;
  // the planner must classify it kTimedOut, not kError.
  const Fed g = make_fed(slices, /*rollups=*/false);
  g.transports[1]->set_corrupt([&g](std::string& resp) {
    resp = wire::frame(wire::MsgType::kHelloAck, wire::pack_hello_ack({"shard1"})) +
           wire::frame(wire::MsgType::kError,
                       wire::pack_error({"query abandoned at safe point", true}));
  });
  const sv::RemoteResult res2 =
      g.federation->run(parse_query("query jobs group user agg count()"));
  EXPECT_FALSE(res2.complete);
  EXPECT_EQ(res2.shards[1].outcome, sv::RemoteShardReport::Outcome::kTimedOut);
  EXPECT_NE(res2.shards[1].error.find("abandoned"), std::string::npos);
}

TEST(FederationService, ZeroSuccessScatterIsAnError) {
  const auto slices = tk::split_jobs_for_shards(fuzz_jobs(), 2, 17);
  const Fed f = make_fed(slices, /*rollups=*/false);
  for (const auto& t : f.transports) {
    t->set_before([](std::uint32_t) { throw sc::IoError("rack power loss"); });
  }
  EXPECT_THROW((void)f.federation->run(parse_query("query jobs agg count()")),
               sc::IoError);

  sv::ServiceConfig cfg;
  cfg.workers = 1;
  sv::Service svc(cfg);
  svc.bind_remote(f.federation);
  const sv::ResponsePtr r = svc.session("c").run("query jobs agg count()");
  EXPECT_EQ(r->status, sv::Status::kError);
  EXPECT_NE(r->error.find("every contacted shard"), std::string::npos) << r->error;
}

TEST(FederationService, AllowPartialFalseFailsClosed) {
  const auto slices = tk::split_jobs_for_shards(fuzz_jobs(), 2, 19);
  fed::Federation::Config cfg;
  cfg.allow_partial = false;
  const Fed f = make_fed(slices, /*rollups=*/false, cfg);
  f.transports[1]->set_before([](std::uint32_t) { throw sc::IoError("down"); });
  EXPECT_THROW((void)f.federation->run(parse_query("query jobs agg count()")),
               sc::IoError);
}

TEST(FederationService, PurelyFederatedServiceAdmitsQueries) {
  const auto slices = tk::split_jobs_for_shards(fuzz_jobs(), 2, 23);
  const Fed f = make_fed(slices, /*rollups=*/false);
  sv::ServiceConfig cfg;
  cfg.workers = 1;
  sv::Service svc(cfg);
  svc.bind_remote(f.federation);  // no publish_* at all
  const sv::ResponsePtr r = svc.session("c").run("query jobs group app agg count()");
  ASSERT_EQ(r->status, sv::Status::kOk) << r->error;
  tk::QuerySpec tspec;
  tspec.group_by = {"app"};
  const wh::AggSpec count = agg(wh::AggKind::kCount);
  tspec.aggs = {count};
  expect_tables_identical(*r->table, tk::run_engine(fuzz_ref(), tspec).table);
  // Non-federated tables still resolve against the (empty) local snapshot.
  const sv::ResponsePtr miss = svc.session("c").run("query other agg count()");
  EXPECT_EQ(miss->status, sv::Status::kError);
}

// ---------------------------------------------------------------------------
// Real sockets: the same bytes over TCP, including the stalled-shard
// deadline and a killed daemon.

TEST(FederationSocket, SocketAndLoopbackAnswersAreIdentical) {
  const auto slices = tk::split_jobs_for_shards(fuzz_jobs(), 2, 29);
  const Fed loop = make_fed(slices, /*rollups=*/false);

  fed::ShardExecutor::Options opts;
  opts.rollups = false;
  fed::ShardExecutor ex0("shard0", ar::jobs_table(slices[0]), opts);
  fed::ShardExecutor ex1("shard1", ar::jobs_table(slices[1]), opts);
  fed::ShardServer srv0(ex0), srv1(ex1);
  auto sock = std::make_shared<fed::Federation>();
  sock->add_shard(ex0.info(),
                  std::make_shared<fed::SocketTransport>("127.0.0.1", srv0.port()));
  sock->add_shard(ex1.info(),
                  std::make_shared<fed::SocketTransport>("127.0.0.1", srv1.port()));

  for (std::uint64_t q = 0; q < 12; ++q) {
    tk::QuerySpec tspec;
    const sv::QuerySpec spec = fuzz_spec(q, &tspec);
    const sv::RemoteResult via_sock = sock->run(spec);
    const sv::RemoteResult via_loop = loop.federation->run(spec);
    ASSERT_TRUE(via_sock.complete);
    expect_tables_identical(*via_sock.table, *via_loop.table);
    expect_tables_identical(*via_sock.table, tk::run_engine(fuzz_ref(), tspec).table);
  }
}

TEST(FederationSocket, StalledAndKilledShardsDegrade) {
  const auto slices = tk::split_jobs_for_shards(fuzz_jobs(), 2, 31);
  fed::ShardExecutor::Options opts;
  opts.rollups = false;
  fed::ShardExecutor ex0("shard0", ar::jobs_table(slices[0]), opts);
  fed::ShardExecutor ex1("shard1", ar::jobs_table(slices[1]), opts);
  fed::ShardServer srv0(ex0), srv1(ex1);

  fed::Federation::Config cfg;
  cfg.shard_deadline_ms = 150;
  auto federation = std::make_shared<fed::Federation>(cfg);
  federation->add_shard(ex0.info(),
                        std::make_shared<fed::SocketTransport>("127.0.0.1", srv0.port()));
  federation->add_shard(ex1.info(),
                        std::make_shared<fed::SocketTransport>("127.0.0.1", srv1.port()));

  // Stall shard1 past the deadline: the scatter must degrade, not hang.
  srv1.set_stall_ms(2000);
  const sv::QuerySpec spec = parse_query("query jobs group user agg count()");
  const sv::RemoteResult stalled = federation->run(spec);
  EXPECT_FALSE(stalled.complete);
  EXPECT_EQ(stalled.shards[0].outcome, sv::RemoteShardReport::Outcome::kOk);
  EXPECT_EQ(stalled.shards[1].outcome, sv::RemoteShardReport::Outcome::kTimedOut);

  // Kill shard1's daemon outright: connection refused -> kError, still a
  // served (partial) answer from shard0.
  srv1.stop();
  const sv::RemoteResult killed = federation->run(spec);
  EXPECT_FALSE(killed.complete);
  EXPECT_EQ(killed.shards[0].outcome, sv::RemoteShardReport::Outcome::kOk);
  EXPECT_EQ(killed.shards[1].outcome, sv::RemoteShardReport::Outcome::kError);
  wh::Table ref0 = ar::jobs_table(slices[0]);
  ru::augment_jobs_table(ref0);
  tk::QuerySpec tspec;
  tspec.group_by = {"user"};
  const wh::AggSpec count = agg(wh::AggKind::kCount);
  tspec.aggs = {count};
  expect_tables_identical(*killed.table, tk::run_engine(ref0, tspec).table);
}

// ---------------------------------------------------------------------------
// Wire protocol hardening: every malformed conversation is a sourced error,
// never a crash; version mismatches are rejected at the frame header.

TEST(FederationWire, MessageRoundTripsPreserveBits) {
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  sv::QuerySpec spec = parse_query(
      "query jobs where cluster = \"c\\\"quoted\\\"\" and end between 1 and 2 "
      "group user, day agg wmean(cpu_idle, node_hours) as w, count()");
  spec.where[1].lo = -0.0;
  spec.where[1].hi = kNaN;
  const wire::QueryMsg q{spec, 1234, "job_id"};
  const wire::QueryMsg rt = wire::unpack_query(wire::pack_query(q));
  EXPECT_EQ(sv::print_request({sv::Request::Kind::kQuery, rt.spec, {}}),
            sv::print_request({sv::Request::Kind::kQuery, spec, {}}));
  EXPECT_EQ(rt.deadline_ms, 1234u);
  EXPECT_EQ(rt.rank_column, "job_id");
  EXPECT_EQ(std::signbit(rt.spec.where[1].lo), true);
  EXPECT_NE(rt.spec.where[1].hi, rt.spec.where[1].hi);  // NaN survived

  wire::PartialMsg p;
  p.rollup_served = true;
  p.partial.naggs = 1;
  p.partial.key_schema = {{"user", wh::ColType::kString}};
  wh::partial::TuplePartial tp;
  wh::partial::KeyValue kv;
  kv.type = wh::ColType::kString;
  kv.str = std::string("u\0x", 3);  // embedded NUL survives length-prefixed strings
  tp.group = {kv};
  tp.rank = -5;
  tp.days = {-3, 0, 7};
  tp.states.resize(3);
  tp.states[0].sum = -0.0;
  tp.states[1].mn = kNaN;
  tp.states[2].n = 42;
  p.partial.tuples = {tp};
  const wire::PartialMsg prt = wire::unpack_partial(wire::pack_partial(p));
  ASSERT_EQ(prt.partial.tuples.size(), 1u);
  EXPECT_TRUE(prt.rollup_served);
  EXPECT_EQ(prt.partial.tuples[0].days, (std::vector<std::int64_t>{-3, 0, 7}));
  EXPECT_TRUE(std::signbit(prt.partial.tuples[0].states[0].sum));
  EXPECT_NE(prt.partial.tuples[0].states[1].mn, prt.partial.tuples[0].states[1].mn);
  EXPECT_EQ(prt.partial.tuples[0].states[2].n, 42);
}

TEST(FederationWire, ServeRejectsMalformedRequestsWithoutCrashing) {
  const auto slices = tk::split_jobs_for_shards(fuzz_jobs(), 2, 37);
  fed::ShardExecutor::Options opts;
  opts.rollups = false;
  const fed::ShardExecutor ex("shard0", ar::jobs_table(slices[0]), opts);
  const std::string good = request_bytes(parse_query("query jobs agg count()"));

  // A well-formed request serves a partial.
  EXPECT_NO_THROW((void)parse_response_strict(ex.serve(good)));

  const auto expect_error = [&ex](std::string_view request, const char* what) {
    const std::string resp = ex.serve(request);  // must not throw
    std::size_t offset = 0;
    const wire::Frame ack = wire::read_frame(resp, offset);
    ASSERT_EQ(ack.type, wire::MsgType::kHelloAck);
    const wire::Frame body = wire::read_frame(resp, offset);
    ASSERT_EQ(body.type, wire::MsgType::kError) << what;
    const wire::ErrorMsg err = wire::unpack_error(body.payload);
    EXPECT_FALSE(err.message.empty()) << what;
    EXPECT_NE(err.message.find("wire:"), std::string::npos)
        << what << ": " << err.message;
  };

  // Truncation sweep: every proper prefix is rejected with a sourced error.
  for (std::size_t len = 0; len < good.size(); ++len) {
    expect_error(std::string_view(good).substr(0, len), "truncated");
  }

  // Forged CRC on the first frame.
  std::string forged = good;
  forged[wire::kFrameHeaderBytes + 2] ^= 0x01;  // inside hello payload
  expect_error(forged, "crc");

  // Version mismatch: bump the version field and re-seal the CRC, so the
  // *version check itself* rejects the frame.
  std::string vbump = good;
  vbump[4] = 2;
  {
    std::uint32_t len32 = 0;
    std::memcpy(&len32, vbump.data() + 8, 4);
    const std::size_t body_len = wire::kFrameHeaderBytes + len32;
    const std::uint32_t crc =
        sc::crc32(std::string_view(vbump.data(), body_len));
    std::memcpy(vbump.data() + body_len, &crc, 4);
  }
  {
    const std::string resp = ex.serve(vbump);
    std::size_t offset = 0;
    (void)wire::read_frame(resp, offset);
    const wire::Frame body = wire::read_frame(resp, offset);
    ASSERT_EQ(body.type, wire::MsgType::kError);
    const wire::ErrorMsg err = wire::unpack_error(body.payload);
    EXPECT_NE(err.message.find("version mismatch"), std::string::npos) << err.message;
    EXPECT_NE(err.message.find("peer 2"), std::string::npos) << err.message;
  }

  // Bad magic.
  std::string bad_magic = good;
  bad_magic[0] ^= 0xff;
  expect_error(bad_magic, "magic");

  // Frames in the wrong order (query before hello).
  std::size_t off = 0;
  const wire::Frame f1 = wire::read_frame(good, off);
  const std::string swapped = good.substr(off) + good.substr(0, off);
  (void)f1;
  expect_error(swapped, "order");

  // Random single-bit flips anywhere in the conversation: always a
  // well-formed error response, never a crash or a served partial built
  // from the wrong bytes — CRC-32 detects every single-bit error, and the
  // CRC covers header and payload alike.
  sc::RngStream g(kSeed, "fed.bitflip", 0);
  for (int i = 0; i < 300; ++i) {
    std::string mutant = good;
    const auto pos = static_cast<std::size_t>(
        g.uniform_int(0, static_cast<std::int64_t>(mutant.size()) - 1));
    mutant[pos] ^= static_cast<char>(1 << g.uniform_int(0, 7));
    const std::string resp = ex.serve(mutant);  // must not throw
    std::size_t o = 0;
    const wire::Frame ack = wire::read_frame(resp, o);
    ASSERT_EQ(ack.type, wire::MsgType::kHelloAck);
    const wire::Frame body = wire::read_frame(resp, o);
    ASSERT_EQ(body.type, wire::MsgType::kError) << "flip at " << pos;
  }
}

TEST(FederationWire, CorruptedResponsesAreSourcedPlannerErrors) {
  const auto slices = tk::split_jobs_for_shards(fuzz_jobs(), 2, 41);
  const Fed f = make_fed(slices, /*rollups=*/false);

  // Truncate shard0's response mid-partial.
  f.transports[0]->set_corrupt([](std::string& resp) {
    resp.resize(resp.size() / 2);
  });
  sv::RemoteResult res = f.federation->run(parse_query("query jobs agg count()"));
  EXPECT_FALSE(res.complete);
  EXPECT_EQ(res.shards[0].outcome, sv::RemoteShardReport::Outcome::kError);
  EXPECT_NE(res.shards[0].error.find("wire:"), std::string::npos)
      << res.shards[0].error;

  // Forge a CRC in shard0's response.
  f.transports[0]->set_corrupt([](std::string& resp) {
    resp[resp.size() / 2] ^= 0x20;
  });
  res = f.federation->run(parse_query("query jobs agg count()"));
  EXPECT_FALSE(res.complete);
  EXPECT_EQ(res.shards[0].outcome, sv::RemoteShardReport::Outcome::kError);

  // Random bit flips over the response: planner degrades, never crashes.
  sc::RngStream g(kSeed, "fed.respflip", 0);
  f.transports[0]->set_corrupt([&g](std::string& resp) {
    const auto pos = static_cast<std::size_t>(
        g.uniform_int(0, static_cast<std::int64_t>(resp.size()) - 1));
    resp[pos] ^= static_cast<char>(1 << g.uniform_int(0, 7));
  });
  for (int i = 0; i < 100; ++i) {
    res = f.federation->run(parse_query("query jobs group user agg count()"));
    EXPECT_FALSE(res.complete);
    EXPECT_EQ(res.shards[0].outcome, sv::RemoteShardReport::Outcome::kError);
    EXPECT_EQ(res.shards[1].outcome, sv::RemoteShardReport::Outcome::kOk);
  }

  // A day list that is not strictly ascending must be rejected by the
  // decoder (it would silently break the fold otherwise).
  wire::PartialMsg bad;
  bad.partial.naggs = 1;
  bad.partial.key_schema = {{"user", wh::ColType::kString}};
  wh::partial::TuplePartial tp;
  wh::partial::KeyValue kv;
  kv.type = wh::ColType::kString;
  kv.str = "u";
  tp.group = {kv};
  tp.days = {5, 5};
  tp.states.resize(2);
  bad.partial.tuples = {tp};
  EXPECT_THROW((void)wire::unpack_partial(wire::pack_partial(bad)), sc::ParseError);
}

// ---------------------------------------------------------------------------
// The facility fleet helper behind the README quickstart.

TEST(FederationFacility, HeterogeneousFleetNamesAndScales) {
  const auto fleet = supremm::facility::heterogeneous_fleet(5, 0.01);
  ASSERT_EQ(fleet.size(), 5u);
  EXPECT_EQ(fleet[0].name, "ranger");
  EXPECT_EQ(fleet[1].name, "lonestar4");
  EXPECT_EQ(fleet[2].name, "ranger-2");
  EXPECT_EQ(fleet[3].name, "lonestar4-2");
  EXPECT_EQ(fleet[4].name, "ranger-3");
  EXPECT_EQ(fleet[0].node.cores(), 16u);
  EXPECT_EQ(fleet[1].node.cores(), 12u);
  EXPECT_LT(fleet[0].node_count, 100u);
  EXPECT_THROW((void)supremm::facility::heterogeneous_fleet(0, 1.0),
               sc::InvalidArgument);
}

TEST(FederationPlacement, SplitIsAPartitionAndRespectsCells) {
  for (const std::size_t nshards : shard_counts()) {
    const auto slices = tk::split_jobs_for_shards(fuzz_jobs(), nshards, 43);
    std::size_t total = 0;
    // Every (cluster, day) cell lands on exactly one shard.
    std::map<std::pair<std::string, std::int64_t>, std::size_t> owner;
    for (std::size_t s = 0; s < slices.size(); ++s) {
      total += slices[s].size();
      for (const auto& j : slices[s]) {
        const auto key = std::make_pair(j.cluster, wh::end_day_index(j.end));
        const auto [it, inserted] = owner.emplace(key, s);
        EXPECT_EQ(it->second, s) << j.cluster;
      }
    }
    EXPECT_EQ(total, fuzz_jobs().size());
  }
}
