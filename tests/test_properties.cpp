// Property-based tests: randomized round-trips over every serialization
// format, scheduler invariants under load sweeps, engine conservation laws,
// and workload-generator scaling.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>

#include "common/strings.h"
#include "facility/noise.h"
#include "supremm/supremm.h"

namespace fa = supremm::facility;
namespace ts = supremm::taccstats;
namespace ac = supremm::accounting;
namespace la = supremm::lariat;
namespace lg = supremm::loglib;
namespace sc = supremm::common;

// --- serialization round-trip fuzz -------------------------------------------

class AccountingFuzz : public ::testing::TestWithParam<int> {};

TEST_P(AccountingFuzz, RandomRecordRoundTrips) {
  std::mt19937 gen(GetParam());
  std::uniform_int_distribution<std::int64_t> t(0, 1 << 30);
  std::uniform_int_distribution<int> small(0, 200);
  for (int i = 0; i < 200; ++i) {
    ac::AccountingRecord r;
    r.queue = i % 2 == 0 ? "normal" : "development";
    r.hostname = sc::strprintf("c%04d", small(gen));
    r.owner = sc::strprintf("user%04d", small(gen));
    r.jobname = sc::strprintf("job%d", small(gen));
    r.job_id = t(gen);
    r.account = sc::strprintf("TG-ABC%03d", small(gen));
    r.priority = small(gen);
    r.submit = t(gen);
    r.start = r.submit + small(gen);
    r.end = r.start + small(gen) + 1;
    r.failed = small(gen) % 3 == 0 ? 100 : 0;
    r.exit_status = small(gen) % 2;
    r.slots = static_cast<std::size_t>(small(gen)) + 1;
    r.nodes = static_cast<std::size_t>(small(gen)) + 1;
    const auto back = ac::parse(ac::serialize(r));
    EXPECT_EQ(back.job_id, r.job_id);
    EXPECT_EQ(back.owner, r.owner);
    EXPECT_EQ(back.submit, r.submit);
    EXPECT_EQ(back.start, r.start);
    EXPECT_EQ(back.end, r.end);
    EXPECT_EQ(back.failed, r.failed);
    EXPECT_EQ(back.exit_status, r.exit_status);
    EXPECT_EQ(back.slots, r.slots);
    EXPECT_EQ(back.nodes, r.nodes);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AccountingFuzz, ::testing::Values(1, 2, 3, 4));

class LariatFuzz : public ::testing::TestWithParam<int> {};

TEST_P(LariatFuzz, RandomRecordRoundTrips) {
  std::mt19937 gen(GetParam());
  std::uniform_int_distribution<int> small(0, 50);
  for (int i = 0; i < 200; ++i) {
    la::LariatRecord r;
    r.job_id = small(gen) + 1;
    r.user = sc::strprintf("user%02d", small(gen));
    r.exe = i % 2 == 0 ? "namd2" : "pw.x";
    r.nodes = static_cast<std::size_t>(small(gen)) + 1;
    r.cores = r.nodes * 16;
    const int nlibs = small(gen) % 5;
    for (int k = 0; k < nlibs; ++k) r.libs.push_back(sc::strprintf("lib%d.so", k));
    r.workdir = "/scratch/x/run";
    r.start = small(gen) * 1000;
    const auto back = la::parse(la::serialize(r));
    EXPECT_EQ(back.job_id, r.job_id);
    EXPECT_EQ(back.exe, r.exe);
    EXPECT_EQ(back.libs, r.libs);
    EXPECT_EQ(back.nodes, r.nodes);
    EXPECT_EQ(back.start, r.start);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LariatFuzz, ::testing::Values(10, 11, 12));

class RawFormatFuzz : public ::testing::TestWithParam<int> {};

TEST_P(RawFormatFuzz, RandomSamplesRoundTrip) {
  std::mt19937 gen(GetParam());
  std::uniform_int_distribution<std::uint64_t> val(0, 1ULL << 62);
  std::uniform_int_distribution<int> small(1, 6);

  const ts::SchemaRegistry reg(supremm::procsim::Arch::kAmd10h);
  ts::RawWriter writer("fuzz-host", reg);
  std::string content = writer.header();

  std::vector<ts::Sample> originals;
  for (int s = 0; s < 30; ++s) {
    ts::Sample sample;
    sample.time = 1000 + s * 600;
    sample.job_id = s % 3 == 0 ? 0 : s;
    sample.mark = static_cast<ts::SampleMark>(s % 4);
    // Random subset of types with random device rows.
    for (const auto& schema : reg.all()) {
      if (small(gen) <= 2) continue;
      ts::TypeRecord rec;
      rec.type = schema.type;
      const int rows = small(gen);
      for (int r = 0; r < rows; ++r) {
        ts::DeviceRow row;
        row.device = sc::strprintf("d%d", r);
        for (std::size_t f = 0; f < schema.fields.size(); ++f) row.values.push_back(val(gen));
        rec.rows.push_back(std::move(row));
      }
      sample.records.push_back(std::move(rec));
    }
    writer.append_sample(sample, content);
    originals.push_back(std::move(sample));
  }

  const auto parsed = ts::parse_raw(content);
  ASSERT_EQ(parsed.samples.size(), originals.size());
  for (std::size_t i = 0; i < originals.size(); ++i) {
    const auto& a = originals[i];
    const auto& b = parsed.samples[i];
    EXPECT_EQ(a.time, b.time);
    EXPECT_EQ(a.job_id, b.job_id);
    EXPECT_EQ(a.mark, b.mark);
    ASSERT_EQ(a.records.size(), b.records.size());
    for (std::size_t t = 0; t < a.records.size(); ++t) {
      EXPECT_EQ(a.records[t].type, b.records[t].type);
      ASSERT_EQ(a.records[t].rows.size(), b.records[t].rows.size());
      for (std::size_t r = 0; r < a.records[t].rows.size(); ++r) {
        EXPECT_EQ(a.records[t].rows[r].device, b.records[t].rows[r].device);
        EXPECT_EQ(a.records[t].rows[r].values, b.records[t].rows[r].values);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RawFormatFuzz, ::testing::Values(21, 22, 23, 24));

class LogFuzz : public ::testing::TestWithParam<int> {};

TEST_P(LogFuzz, RationalizedRoundTrips) {
  std::mt19937 gen(GetParam());
  std::uniform_int_distribution<int> small(0, 100);
  const char* codes[] = {"OOM_KILL", "SOFT_LOCKUP", "LUSTRE_ERR", "MCE", "UNKNOWN"};
  const char* facs[] = {"kern", "lustre", "mce", "sched", "other"};
  for (int i = 0; i < 300; ++i) {
    lg::RationalizedRecord r;
    r.time = small(gen) * 977;
    r.host = sc::strprintf("h%03d", small(gen));
    r.job_id = small(gen);
    r.facility = facs[small(gen) % 5];
    r.severity = static_cast<lg::Severity>(small(gen) % 4);
    r.code = codes[small(gen) % 5];
    r.message = sc::strprintf("some message %d with spaces and: punctuation", i);
    const auto back = lg::parse(lg::serialize(r));
    EXPECT_EQ(back.time, r.time);
    EXPECT_EQ(back.host, r.host);
    EXPECT_EQ(back.job_id, r.job_id);
    EXPECT_EQ(back.facility, r.facility);
    EXPECT_EQ(back.severity, r.severity);
    EXPECT_EQ(back.code, r.code);
    EXPECT_EQ(back.message, r.message);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LogFuzz, ::testing::Values(31, 32, 33));

// --- scheduler invariants under load sweep -----------------------------------

class SchedulerLoadSweep : public ::testing::TestWithParam<double> {};

TEST_P(SchedulerLoadSweep, InvariantsHold) {
  const double load = GetParam();
  auto spec = fa::scaled(fa::ranger(), 0.01);
  const auto cat = fa::standard_catalogue();
  const auto pop = fa::UserPopulation::generate(spec, cat, 55);
  fa::WorkloadConfig cfg;
  cfg.span = 5 * sc::kDay;
  cfg.seed = 55;
  cfg.load_factor = load;
  auto reqs = fa::generate_workload(spec, cat, pop, cfg);
  const std::size_t n_requests = reqs.size();
  const auto execs = fa::Scheduler::run(spec, std::move(reqs), {});

  // Every request executes exactly once.
  ASSERT_EQ(execs.size(), n_requests);
  std::set<fa::JobId> ids;
  for (const auto& e : execs) {
    EXPECT_TRUE(ids.insert(e.req.id).second);
    EXPECT_GE(e.start, e.req.submit);
    EXPECT_GT(e.end, e.start);
    EXPECT_EQ(e.node_ids.size(), e.req.nodes);
    // Node ids valid and unique within the job.
    std::set<std::uint32_t> nodes(e.node_ids.begin(), e.node_ids.end());
    EXPECT_EQ(nodes.size(), e.node_ids.size());
    for (const auto nid : e.node_ids) EXPECT_LT(nid, spec.node_count);
  }
  // Spot-check occupancy at 50 instants.
  for (int i = 0; i < 50; ++i) {
    const auto t = static_cast<sc::TimePoint>(i) * (5 * sc::kDay) / 50;
    EXPECT_LE(fa::busy_nodes_at(execs, t), spec.node_count);
  }
}

INSTANTIATE_TEST_SUITE_P(Loads, SchedulerLoadSweep,
                         ::testing::Values(0.3, 0.7, 1.0, 1.4));

// --- workload scaling ----------------------------------------------------

class WorkloadLoadSweep : public ::testing::TestWithParam<double> {};

TEST_P(WorkloadLoadSweep, OfferedLoadScalesWithFactor) {
  const double factor = GetParam();
  auto spec = fa::scaled(fa::ranger(), 0.02);
  const auto cat = fa::standard_catalogue();
  const auto pop = fa::UserPopulation::generate(spec, cat, 66);
  fa::WorkloadConfig cfg;
  cfg.span = 20 * sc::kDay;
  cfg.seed = 66;
  cfg.load_factor = factor;
  const auto reqs = fa::generate_workload(spec, cat, pop, cfg);
  double node_seconds = 0;
  for (const auto& r : reqs) {
    node_seconds += static_cast<double>(r.nodes) * static_cast<double>(r.duration);
  }
  const double offered = node_seconds / (20.0 * sc::kDay) /
                         static_cast<double>(spec.node_count);
  EXPECT_NEAR(offered, spec.utilization_target * factor,
              0.30 * spec.utilization_target * factor);
}

INSTANTIATE_TEST_SUITE_P(Factors, WorkloadLoadSweep, ::testing::Values(0.5, 1.0, 1.5));

// --- engine conservation sweep ---------------------------------------------

class EngineConservation : public ::testing::TestWithParam<const char*> {};

TEST_P(EngineConservation, CpuTimeSumsToElapsed) {
  // For any application signature, the per-core cpu counters must sum to
  // ~100 centiseconds per second of integration.
  auto spec = fa::scaled(fa::ranger(), 0.005);
  const auto cat = fa::standard_catalogue();
  fa::JobRequest r;
  r.id = 1;
  r.nodes = 1;
  r.duration = 6 * sc::kHour;
  r.submit = 0;
  sc::RngStream rng(9, 9);
  r.behavior = fa::realize(cat[fa::app_index(cat, GetParam())], "ranger", 32.0, rng);
  auto execs = fa::Scheduler::run(spec, {r}, {});
  fa::FacilityEngine engine(spec, std::move(execs), {}, 0, 7 * sc::kHour, 9);
  const std::size_t node = engine.executions()[0].node_ids[0];
  engine.advance_node(node, 7 * sc::kHour);
  const auto& nc = engine.counters(node);
  for (const auto& c : nc.cpu) {
    const double total =
        static_cast<double>(c.user + c.nice + c.system + c.idle + c.iowait + c.irq);
    EXPECT_NEAR(total, 7.0 * 3600.0 * 100.0, 7.0 * 3600.0 * 100.0 * 0.03);
  }
}

INSTANTIATE_TEST_SUITE_P(Apps, EngineConservation,
                         ::testing::Values("NAMD", "AMBER", "WRF", "DATAMINER",
                                           "UNDERSUB", "QCHEM"));

// --- noise statistics sweep --------------------------------------------------

class NoiseSweep : public ::testing::TestWithParam<double> {};

TEST_P(NoiseSweep, ModulationIsMeanOne) {
  const double sigma = GetParam();
  double sum = 0;
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += fa::lognormal_mod(sigma, 3, 14, fa::MetricTag::kNet, i);
  }
  EXPECT_NEAR(sum / n, 1.0, 0.03 + sigma * 0.02);
}

INSTANTIATE_TEST_SUITE_P(Sigmas, NoiseSweep, ::testing::Values(0.05, 0.2, 0.5, 0.8, 1.2));
