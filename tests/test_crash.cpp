// Crash-loop harness for the archive's transactional commit protocol
// (DESIGN.md §14; ctest label `crash`).
//
// The core property: for EVERY reachable crash state of a commit — the
// process dying immediately before the k-th I/O operation, or tearing the
// k-th write — re-opening the archive runs recovery and lands bit-identically
// on either the pre-commit or the post-commit directory state, never
// anything in between. The sweep enumerates k = 1..N where N is the exact
// operation count of the never-crashed commit (measured with
// CountingIoPolicy), so no crash point is sampled away. Dir-snapshot
// equality is byte equality of every file, which subsumes table identity;
// the decoded-table oracle is additionally spot-checked.
//
// Also covered: ENOSPC mid-commit (the handle keeps serving the pre-commit
// state and surfaces ArchiveError), recovery idempotence
// (recover∘recover ≡ recover), post-recovery appends being byte-identical
// to never-crashed appends for threads ∈ {1, 2, 8}, rename-failure
// sourcing, and the service's degraded stale-serving mode.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "archive/tables.h"
#include "faultsim/faultsim.h"
#include "service/service.h"
#include "sim_fixture.h"
#include "warehouse/rollup.h"

namespace {

namespace fs = std::filesystem;
using namespace supremm;
namespace st = supremm::testing;

// Micro corpus: the sweep re-runs ingest for every kill point, so the run
// must be small; two days so the incremental scenario exercises the
// provisional-day rewrite path.
const st::SimRun& crash_run() {
  static const st::SimRun run =
      st::make_sim_run(facility::ranger(), 0.004, 2, 4242);
  return run;
}

etl::IngestConfig crash_config(int days, std::size_t threads) {
  const auto& run = crash_run();
  etl::IngestConfig cfg;
  cfg.start = run.start;
  cfg.span = days * common::kDay;
  cfg.cluster = run.spec.name;
  cfg.threads = threads;
  return cfg;
}

/// Append days [watermark, upto_days) of the crash corpus through `io`.
archive::AppendStats append_days(const std::string& dir, int upto_days,
                                 std::size_t threads, common::IoPolicy* io) {
  const auto& run = crash_run();
  archive::Archive ar(dir, threads, io);
  return ar.append(crash_config(upto_days, threads), run.files, run.acct,
                   run.lariat_records, run.catalogue,
                   etl::project_science_map(*run.population), "crash-ctx",
                   run.start + upto_days * common::kDay);
}

/// Relative path -> file bytes; directories appear as "<path>/" -> "". This
/// is the bit-identity oracle: two equal snapshots are the same disk state.
using DirSnapshot = std::map<std::string, std::string>;

DirSnapshot snapshot_dir(const std::string& dir) {
  DirSnapshot snap;
  if (!fs::exists(dir)) return snap;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    const std::string rel = fs::relative(entry.path(), dir).string();
    if (entry.is_directory()) {
      snap[rel + "/"] = "";
      continue;
    }
    std::ifstream in(entry.path(), std::ios::binary);
    snap[rel] = std::string((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
  }
  return snap;
}

void restore_dir(const std::string& dir, const DirSnapshot& snap) {
  fs::remove_all(dir);
  fs::create_directories(dir);
  for (const auto& [rel, bytes] : snap) {
    const fs::path path = fs::path(dir) / rel;
    if (!rel.empty() && rel.back() == '/') {
      fs::create_directories(path);
      continue;
    }
    fs::create_directories(path.parent_path());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
}

std::string diff_keys(const DirSnapshot& a, const DirSnapshot& b) {
  std::string out;
  for (const auto& [k, v] : a) {
    const auto it = b.find(k);
    if (it == b.end()) {
      out += " -" + k;
    } else if (it->second != v) {
      out += " ~" + k;
    }
  }
  for (const auto& [k, v] : b) {
    if (!a.count(k)) out += " +" + k;
  }
  return out.empty() ? " (identical)" : out;
}

/// One scenario of the sweep: `pre_days` already committed (0 = initial
/// build from an empty directory), then a crash anywhere inside the commit
/// that takes the archive to `post_days`.
struct Scenario {
  int pre_days = 0;
  int post_days = 2;
  std::size_t threads = 1;
};

/// Enumerate every kill point of the scenario's commit and assert the
/// pre-or-post invariant plus recovery idempotence at each one. Returns the
/// number of crash states tested (== the commit's I/O op count).
std::uint64_t sweep_kill_points(const std::string& dir, const Scenario& sc,
                                faultsim::KillPointPolicy::Mode mode) {
  // Pre-commit reference state.
  fs::remove_all(dir);
  fs::create_directories(dir);
  if (sc.pre_days > 0) append_days(dir, sc.pre_days, sc.threads, nullptr);
  const DirSnapshot pre = snapshot_dir(dir);

  // Never-crashed commit: measure the op sequence and the post state.
  common::CountingIoPolicy counter;
  append_days(dir, sc.post_days, sc.threads, &counter);
  const std::uint64_t total = counter.total();
  EXPECT_GE(total, 20u) << "commit too small to be a meaningful sweep";
  const DirSnapshot post = snapshot_dir(dir);
  for (const auto& [rel, bytes] : post) {
    EXPECT_EQ(rel.rfind(".staging", 0), std::string::npos)
        << "clean commit left staging remnant " << rel;
    EXPECT_NE(rel, "COMMIT") << "clean commit left its journal behind";
  }

  // Oracle reference: the post-state tables, decoded — including the rollup
  // cells maintained by the same commit.
  archive::Reader post_reader(dir, 1);
  const warehouse::Table post_jobs = post_reader.table("jobs");
  const auto post_rollups = archive::Archive(dir, 1).load_rollups();
  EXPECT_TRUE(post_rollups.has_value())
      << "clean commit did not leave a loadable rollup state";

  bool seen_post = false;
  for (std::uint64_t k = 1; k <= total; ++k) {
    restore_dir(dir, pre);
    faultsim::KillPointPolicy kp(k, mode, /*seed=*/k * 7919);
    bool crashed = false;
    try {
      append_days(dir, sc.post_days, sc.threads, &kp);
    } catch (const common::SimulatedCrash&) {
      crashed = true;
    }
    EXPECT_TRUE(crashed) << "kill point " << k << "/" << total << " did not fire";
    const DirSnapshot crashed_state = snapshot_dir(dir);

    // Re-open: the constructor runs recovery.
    archive::Archive recovered(dir, 1);
    const DirSnapshot now = snapshot_dir(dir);
    const bool is_pre = now == pre;
    const bool is_post = now == post;
    EXPECT_TRUE(is_pre || is_post)
        << "kill point " << k << "/" << total << " left an intermediate state:"
        << " vs pre:" << diff_keys(pre, now) << " | vs post:" << diff_keys(post, now);
    if (!(is_pre || is_post)) return total;  // state dump above is enough

    // Crash-before mode performs a strict prefix of the op sequence, so the
    // outcome must be monotone: once a kill point rolls forward, every later
    // one must too (the durability point is a single op index).
    if (mode == faultsim::KillPointPolicy::Mode::kCrashBefore) {
      if (seen_post) {
        EXPECT_TRUE(is_post) << "non-monotone recovery at kill point " << k;
      }
    }
    if (is_post) {
      if (!seen_post) {
        // First roll-forward: spot-check the decoded-table oracle on top of
        // byte identity, and the recovery accounting.
        archive::Reader r(dir, 1);
        st::expect_tables_identical(r.table("jobs"), post_jobs);
        if (post_rollups) {
          const auto rolled = recovered.load_rollups();
          EXPECT_TRUE(rolled.has_value())
              << "rolled-forward commit lost its rollup partitions at k=" << k;
          if (rolled) {
            for (std::size_t li = 0; li < warehouse::rollup::levels().size(); ++li) {
              st::expect_tables_identical(rolled->level(li),
                                          post_rollups->level(li));
            }
          }
        }
      }
      seen_post = true;
      // GC debris — an empty .staging/ dir left when the crash hit after the
      // publish — is scrubbed by recovery without touching the counters, so
      // strip it before deciding whether recovery had substantive work.
      DirSnapshot substantive = crashed_state;
      for (auto it = substantive.begin(); it != substantive.end();) {
        if (it->first.rfind(".staging", 0) == 0) {
          it = substantive.erase(it);
        } else {
          ++it;
        }
      }
      if (substantive == post) {
        // Publish and GC payload were already fully on disk — recovery must
        // not claim to have rolled anything forward or back.
        EXPECT_EQ(recovered.recovery().commits_rolled_forward, 0u)
            << "phantom roll-forward on an already-complete commit at k=" << k;
        EXPECT_EQ(recovered.recovery().commits_rolled_back, 0u)
            << "phantom rollback on an already-complete commit at k=" << k;
      } else {
        EXPECT_GE(recovered.recovery().commits_rolled_forward +
                      recovered.recovery().orphans_removed,
                  1u)
            << "post state reached but recovery reports no work at k=" << k;
      }
    } else if (sc.pre_days > 0) {
      // Rolled back: the retained manifest must still serve.
      EXPECT_EQ(recovered.manifest().watermark,
                sc.pre_days * common::kDay);
    }

    // Idempotence: a second open must find nothing to do and change nothing.
    archive::Archive again(dir, 1);
    EXPECT_FALSE(again.recovery().any())
        << "second recovery did work at kill point " << k;
    EXPECT_EQ(snapshot_dir(dir), now) << "second recovery changed the directory at k=" << k;
  }
  EXPECT_TRUE(seen_post) << "no kill point ever reached the post state";
  return total;
}

std::string test_dir(const std::string& name) {
  return (fs::path(::testing::TempDir()) / ("supremm_crash_" + name)).string();
}

TEST(CrashSweep, InitialBuildCrashBefore) {
  sweep_kill_points(test_dir("init_before"), {0, 2, 1},
                    faultsim::KillPointPolicy::Mode::kCrashBefore);
}

TEST(CrashSweep, InitialBuildTornWrite) {
  sweep_kill_points(test_dir("init_torn"), {0, 2, 1},
                    faultsim::KillPointPolicy::Mode::kTornWrite);
}

TEST(CrashSweep, IncrementalAppendCrashBefore) {
  sweep_kill_points(test_dir("incr_before"), {1, 2, 1},
                    faultsim::KillPointPolicy::Mode::kCrashBefore);
}

TEST(CrashSweep, IncrementalAppendTornWrite) {
  sweep_kill_points(test_dir("incr_torn"), {1, 2, 1},
                    faultsim::KillPointPolicy::Mode::kTornWrite);
}

// The codec runs on a worker pool while the commit I/O stays sequential: the
// op sequence, and therefore every crash state, must be unchanged vs the
// single-threaded sweeps above.
TEST(CrashSweep, InitialBuildThreadedCrashBefore) {
  sweep_kill_points(test_dir("init_threaded_before"), {0, 2, 8},
                    faultsim::KillPointPolicy::Mode::kCrashBefore);
}

TEST(CrashSweep, InitialBuildThreadedTornWrite) {
  sweep_kill_points(test_dir("init_threaded_torn"), {0, 2, 8},
                    faultsim::KillPointPolicy::Mode::kTornWrite);
}

TEST(CrashSweep, IncrementalAppendThreadedCrashBefore) {
  sweep_kill_points(test_dir("incr_threaded_before"), {1, 2, 8},
                    faultsim::KillPointPolicy::Mode::kCrashBefore);
}

TEST(CrashSweep, IncrementalAppendThreadedTornWrite) {
  sweep_kill_points(test_dir("incr_threaded_torn"), {1, 2, 8},
                    faultsim::KillPointPolicy::Mode::kTornWrite);
}

// The acceptance floor: the sweeps above enumerate every op of eight commits
// (initial and incremental, each × {1, 8} threads × {crash-before, torn}).
// Recount the op space here (cheap: two counting commits) and hold the suite
// to the "hundreds of seeded crash points" contract.
TEST(CrashSweep, KillPointBudget) {
  const std::string dir = test_dir("budget");
  fs::remove_all(dir);
  fs::create_directories(dir);
  common::CountingIoPolicy initial;
  append_days(dir, 2, 1, &initial);

  fs::remove_all(dir);
  fs::create_directories(dir);
  append_days(dir, 1, 1, nullptr);
  common::CountingIoPolicy incremental;
  append_days(dir, 2, 1, &incremental);

  // {init, incr} × {1, 8 threads} × {crash-before, torn-write}.
  const std::uint64_t points = 4 * initial.total() + 4 * incremental.total();
  EXPECT_GE(points, 300u) << "kill-point sweep space shrank below the acceptance floor: "
                          << initial.total() << " initial + " << incremental.total()
                          << " incremental ops";
  fs::remove_all(dir);
}

// Rollup maintenance rides the same transactional commit (the sweeps above
// therefore cover a crash at every one of its I/O ops). A clean incremental
// append must leave the rollup partitions in the manifest, and the decoded
// cells must equal a from-scratch build over the loaded jobs.
TEST(CrashRollup, MaintainedPartitionsCommitAndDecode) {
  const std::string dir = test_dir("rollup");
  fs::remove_all(dir);
  fs::create_directories(dir);
  append_days(dir, 1, 1, nullptr);
  const archive::AppendStats stats = append_days(dir, 2, 1, nullptr);
  EXPECT_GT(stats.rollup_partitions_written, 0u);
  EXPECT_GT(stats.rollup_cells_written, 0u);

  archive::Archive ar(dir, 1);
  std::size_t rollup_parts = 0;
  for (const auto& p : ar.manifest().partitions) {
    if (warehouse::rollup::is_rollup_table(p.table)) ++rollup_parts;
  }
  EXPECT_GE(rollup_parts, 4u) << "expected at least one partition per level";

  const auto maintained = ar.load_rollups();
  ASSERT_TRUE(maintained.has_value());
  warehouse::Table jobs = archive::jobs_table(ar.load().result.jobs);
  warehouse::rollup::augment_jobs_table(jobs);
  const warehouse::rollup::RollupSet rebuilt =
      warehouse::rollup::build_from_table(jobs);
  for (std::size_t li = 0; li < warehouse::rollup::levels().size(); ++li) {
    st::expect_tables_identical(maintained->level(li), rebuilt.level(li));
  }
}

TEST(CrashEnospc, EverySpaceOpKeepsPreCommitState) {
  const std::string dir = test_dir("enospc");
  fs::remove_all(dir);
  fs::create_directories(dir);
  append_days(dir, 1, 1, nullptr);
  const DirSnapshot pre = snapshot_dir(dir);

  common::CountingIoPolicy counter;
  append_days(dir, 2, 1, &counter);
  const std::uint64_t total = counter.total();
  const DirSnapshot post = snapshot_dir(dir);

  for (std::uint64_t f = 1; f <= total; ++f) {
    restore_dir(dir, pre);
    faultsim::EnospcPolicy disk_full(f);
    bool failed = false;
    std::string message;
    common::TimePoint served_watermark = 0;
    try {
      const auto& run = crash_run();
      archive::Archive ar(dir, 1, &disk_full);
      ar.append(crash_config(2, 1), run.files, run.acct, run.lariat_records,
                run.catalogue, etl::project_science_map(*run.population), "crash-ctx",
                run.start + 2 * common::kDay);
      served_watermark = ar.watermark();
    } catch (const common::ArchiveError& e) {
      failed = true;
      message = e.what();
    }
    // Unlike a crash the process survives; the failure must be a sourced
    // ArchiveError and the handle must keep serving the pre-commit state.
    archive::Archive reopened(dir, 1);
    const DirSnapshot now = snapshot_dir(dir);
    if (failed) {
      EXPECT_NE(message.find(dir), std::string::npos)
          << "ArchiveError does not name the archive: " << message;
      EXPECT_EQ(now, pre) << "ENOSPC at op " << f << " did not roll back:"
                          << diff_keys(pre, now);
      EXPECT_EQ(reopened.manifest().watermark, common::kDay);
    } else {
      // The disk filled after the publish: the commit stands, and any
      // cleanup the failure skipped was garbage-collected on re-open.
      EXPECT_EQ(served_watermark, 2 * common::kDay);
      EXPECT_EQ(now, post) << "late ENOSPC at op " << f << " diverged:"
                           << diff_keys(post, now);
    }
  }

  // After an aborted commit the same data appends cleanly once space returns.
  restore_dir(dir, pre);
  {
    faultsim::EnospcPolicy disk_full(3);
    EXPECT_THROW(append_days(dir, 2, 1, &disk_full), common::ArchiveError);
  }
  append_days(dir, 2, 1, nullptr);
  EXPECT_EQ(snapshot_dir(dir), post);
  fs::remove_all(dir);
}

TEST(CrashRecovery, PostRecoveryAppendMatchesNeverCrashed) {
  // Property: crash anywhere, recover, then append the same data — for any
  // codec thread count the final directory is byte-identical to the
  // never-crashed archive (which itself is thread-count-invariant).
  const std::string dir = test_dir("reappend");
  fs::remove_all(dir);
  fs::create_directories(dir);
  append_days(dir, 1, 1, nullptr);
  const DirSnapshot pre = snapshot_dir(dir);

  common::CountingIoPolicy counter;
  append_days(dir, 2, 1, &counter);
  const std::uint64_t total = counter.total();
  const DirSnapshot post = snapshot_dir(dir);

  const std::uint64_t kill_points[] = {1, total / 3, total / 2, total - 1, total};
  const std::size_t thread_counts[] = {1, 2, 8};
  for (const std::uint64_t k : kill_points) {
    for (const std::size_t threads : thread_counts) {
      restore_dir(dir, pre);
      faultsim::KillPointPolicy kp(k);
      EXPECT_THROW(append_days(dir, 2, threads, &kp), common::SimulatedCrash);
      // Recovery happens inside the re-opened handle; the append then either
      // redoes the commit (rolled back) or no-ops (rolled forward).
      append_days(dir, 2, threads, nullptr);
      EXPECT_EQ(snapshot_dir(dir), post)
          << "k=" << k << " threads=" << threads << diff_keys(post, snapshot_dir(dir));
    }
  }
  fs::remove_all(dir);
}

// A rename that fails outright (EXDEV-style, injected) must surface as a
// sourced ArchiveError naming the path, not as a raw filesystem exception.
TEST(CrashRecovery, FailedRenameIsSourcedArchiveError) {
  class FailFirstRename : public common::IoPolicy {
   public:
    common::IoDecision on_op(common::IoOp op, const std::string&, std::size_t) override {
      if (op == common::IoOp::kRename && !fired_) {
        fired_ = true;
        common::IoDecision d;
        d.action = common::IoDecision::Action::kFail;
        d.error = "EXDEV (injected): cross-device link";
        return d;
      }
      return common::IoDecision::proceed();
    }

   private:
    bool fired_ = false;
  };

  const std::string dir = test_dir("rename_fail");
  fs::remove_all(dir);
  fs::create_directories(dir);
  FailFirstRename policy;
  try {
    append_days(dir, 2, 1, &policy);
    FAIL() << "append with failing rename did not throw";
  } catch (const common::ArchiveError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("COMMIT"), std::string::npos) << what;
    EXPECT_NE(what.find("EXDEV"), std::string::npos) << what;
  }
  // The aborted build left no archive; a clean retry works.
  append_days(dir, 2, 1, nullptr);
  EXPECT_EQ(archive::Archive(dir, 1).manifest().watermark, 2 * common::kDay);
  fs::remove_all(dir);
}

TEST(CrashRecovery, OrphanAccountingReachesQualityReport) {
  const std::string dir = test_dir("orphans");
  fs::remove_all(dir);
  fs::create_directories(dir);
  append_days(dir, 2, 1, nullptr);

  // Strand a fake partition and a temp file, as an interrupted commit would.
  {
    std::ofstream(fs::path(dir) / "jobs-d000099-e000042.part") << "stranded";
    std::ofstream(fs::path(dir) / "MANIFEST.tmp") << "stranded";
  }
  archive::Archive ar(dir, 1);
  EXPECT_EQ(ar.recovery().orphans_removed, 2u);
  EXPECT_EQ(ar.recovery().commits_rolled_forward, 0u);
  EXPECT_EQ(ar.recovery().commits_rolled_back, 0u);
  ASSERT_EQ(ar.recovery_quarantines().size(), 1u);  // only .part files are data
  const auto& q = ar.recovery_quarantines()[0];
  EXPECT_EQ(q.file, "jobs-d000099-e000042.part");
  EXPECT_EQ(q.table, "jobs");
  EXPECT_EQ(q.fault, etl::PartitionFault::kOrphaned);

  const archive::LoadResult loaded = ar.load();
  EXPECT_EQ(loaded.result.quality.recovery.orphans_removed, 2u);
  ASSERT_FALSE(loaded.result.quality.corrupt_partitions.empty());
  EXPECT_EQ(loaded.result.quality.corrupt_partitions[0].fault,
            etl::PartitionFault::kOrphaned);
  EXPECT_FALSE(fs::exists(fs::path(dir) / "jobs-d000099-e000042.part"));
  EXPECT_FALSE(fs::exists(fs::path(dir) / "MANIFEST.tmp"));
  fs::remove_all(dir);
}

TEST(CrashService, DegradedModeServesFlaggedStaleHits) {
  namespace sv = service;
  const std::string dir = test_dir("service");
  fs::remove_all(dir);
  fs::create_directories(dir);
  append_days(dir, 2, 1, nullptr);
  archive::Archive ar(dir, 1);

  sv::ServiceConfig cfg;
  cfg.workers = 2;
  cfg.stale_retry_limit = 1;
  cfg.stale_retry_backoff_ms = 1;
  sv::Service svc(cfg);
  svc.bind_archive(ar);
  auto session = svc.session("operator");

  const std::string query = "query jobs agg count()";
  const auto healthy = session.run(query);
  ASSERT_EQ(healthy->status, sv::Status::kOk) << healthy->error;
  EXPECT_FALSE(svc.degraded());

  // Quarantine a partition on disk: flip one byte in a live series file.
  std::string victim;
  for (const auto& p : ar.manifest().partitions) {
    if (p.table == "series") victim = p.filename;
  }
  ASSERT_FALSE(victim.empty());
  std::string bytes;
  {
    std::ifstream in(fs::path(dir) / victim, std::ios::binary);
    bytes.assign((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  }
  {
    std::string damaged = bytes;
    damaged[damaged.size() / 2] ^= 0x40;
    std::ofstream out(fs::path(dir) / victim, std::ios::binary | std::ios::trunc);
    out.write(damaged.data(), static_cast<std::streamsize>(damaged.size()));
  }

  // A republish now quarantines the partition: the service must keep the
  // last good snapshot and flip into degraded mode, not error.
  EXPECT_FALSE(svc.refresh());
  EXPECT_TRUE(svc.degraded());

  // Cache hit while degraded: flagged stale, same epoch, identical table.
  const auto stale_hit = session.run(query);
  ASSERT_EQ(stale_hit->status, sv::Status::kStale) << stale_hit->error;
  EXPECT_TRUE(stale_hit->cache_hit);
  EXPECT_EQ(stale_hit->epoch, healthy->epoch);
  st::expect_tables_identical(*stale_hit->table, *healthy->table);

  // Fresh run while degraded: executes against the retained snapshot and is
  // flagged stale too — the service answers instead of erroring.
  const auto stale_fresh = session.run("query jobs agg sum(node_hours)");
  ASSERT_EQ(stale_fresh->status, sv::Status::kStale) << stale_fresh->error;
  ASSERT_NE(stale_fresh->table, nullptr);

  const auto m = svc.metrics();
  EXPECT_TRUE(m.degraded);
  EXPECT_GE(m.stale_served, 2u);
  EXPECT_GE(m.republish_failures, 1u);
  EXPECT_NE(svc.metrics_json().find("\"degraded\":true"), std::string::npos);

  // Repair the partition; an explicit refresh recovers and serving goes
  // back to kOk at a fresh epoch.
  {
    std::ofstream out(fs::path(dir) / victim, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_TRUE(svc.refresh());
  EXPECT_FALSE(svc.degraded());
  const auto recovered = session.run(query);
  ASSERT_EQ(recovered->status, sv::Status::kOk) << recovered->error;
  EXPECT_GT(recovered->epoch, healthy->epoch);
  st::expect_tables_identical(*recovered->table, *healthy->table);
  fs::remove_all(dir);
}

TEST(CrashService, RetryBudgetIsBounded) {
  namespace sv = service;
  const std::string dir = test_dir("retry_budget");
  fs::remove_all(dir);
  fs::create_directories(dir);
  append_days(dir, 2, 1, nullptr);
  archive::Archive ar(dir, 1);

  sv::ServiceConfig cfg;
  cfg.stale_retry_limit = 2;
  cfg.stale_retry_backoff_ms = 1;
  sv::Service svc(cfg);
  svc.bind_archive(ar);
  auto session = svc.session("operator");
  ASSERT_EQ(session.run("query jobs agg count()")->status, sv::Status::kOk);

  // Delete a partition outright (kMissing at load time) and degrade.
  std::string victim;
  for (const auto& p : ar.manifest().partitions) {
    if (p.table == "jobs") victim = p.filename;
  }
  ASSERT_FALSE(victim.empty());
  fs::remove(fs::path(dir) / victim);
  EXPECT_FALSE(svc.refresh());
  const std::uint64_t after_refresh = svc.metrics().republish_failures;

  // Submits while degraded retry at most stale_retry_limit times in total;
  // once the budget is spent they serve stale without touching the archive.
  for (int i = 0; i < 8; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
    EXPECT_EQ(session.run("query jobs agg count()")->status, sv::Status::kStale);
  }
  const std::uint64_t total_failures = svc.metrics().republish_failures;
  EXPECT_LE(total_failures, after_refresh + 2) << "retry budget not bounded";
  EXPECT_TRUE(svc.degraded());
  fs::remove_all(dir);
}

}  // namespace
