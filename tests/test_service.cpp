// Query service tests (DESIGN.md §13): request-language round-trip and
// differential identity against the engine, watermark-keyed cache hits that
// are bit-identical to cold re-runs, archive-append invalidation, cooperative
// cancellation with no partial results, deadlines, admission control, the
// report path against the realm, and an 8-client concurrent suite (the TSan
// target for the serving tier).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "pipeline/pipeline.h"
#include "service/request.h"
#include "service/service.h"
#include "sim_fixture.h"
#include "testkit/genquery.h"
#include "testkit/genrequest.h"
#include "testkit/oracle.h"

namespace ar = supremm::archive;
namespace etl = supremm::etl;
namespace fa = supremm::facility;
namespace fs = std::filesystem;
namespace pl = supremm::pipeline;
namespace sc = supremm::common;
namespace sv = supremm::service;
namespace tk = supremm::testkit;
namespace wh = supremm::warehouse;
namespace xd = supremm::xdmod;
using supremm::testing::expect_tables_identical;
using supremm::testing::SimRun;
using supremm::testing::tiny_ranger_run;

namespace {

constexpr const char* kContext = "test-context";

std::string scratch_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("supremm-" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

ar::AppendStats append_days(ar::Archive& a, const SimRun& run, int days) {
  etl::IngestConfig cfg;
  cfg.start = run.start;
  cfg.span = days * sc::kDay;
  cfg.cluster = run.spec.name;
  return a.append(cfg, run.files, run.acct, run.lariat_records, run.catalogue,
                  etl::project_science_map(*run.population), kContext,
                  run.start + days * sc::kDay);
}

/// Shared fuzz corpus for the request-language tests.
const wh::Table& fuzz_corpus() {
  static const wh::Table t =
      tk::make_corpus({.rows = 1000, .chunk_rows = 128, .seed = 11});
  return t;
}

/// A corpus big enough that one full-scan 4-key group-by keeps a worker busy
/// for many milliseconds — the "blocker" behind the cancellation, deadline
/// and admission tests.
const wh::Table& big_corpus() {
  static const wh::Table t =
      tk::make_corpus({.rows = 400000, .chunk_rows = 1024, .seed = 31});
  return t;
}

constexpr const char* kBlockerText =
    "query corpus where value between -1e300 and 1e300 "
    "group user,app,day,big agg sum(value),wmean(value,weight),count()";

sv::ServiceConfig small_cfg() {
  sv::ServiceConfig cfg;
  cfg.workers = 2;
  cfg.queue_limit = 32;
  cfg.cache_entries = 64;
  cfg.default_deadline_ms = 30'000;
  return cfg;
}

void publish_corpus(sv::Service& svc, const wh::Table& corpus) {
  std::map<std::string, wh::Table> tables;
  tables.emplace("corpus", corpus);
  svc.publish_tables(std::move(tables));
}

void expect_zero_stats(const wh::QueryStats& st) {
  EXPECT_EQ(st.chunks_total, 0u);
  EXPECT_EQ(st.chunks_pruned, 0u);
  EXPECT_EQ(st.rows_scanned, 0u);
  EXPECT_EQ(st.rows_matched, 0u);
}

}  // namespace

// --- Request language ------------------------------------------------------

TEST(ServiceRequest, CanonicalFormIsAFixedPoint) {
  const std::vector<std::string> cases = {
      "query jobs agg count()",
      "query jobs where user = \"u1\" and value >= 2.5 group app agg "
      "sum(node_hours) as nh,count()",
      "query corpus where big between -9007199254740993 and inf group "
      "user,app agg wmean(value,weight),max(value) threads 8",
      "report jobs dimension user stats job_count,total_node_hours sort "
      "total_node_hours limit 5",
      "report jobs dimension app stats failure_rate filter science = "
      "\"Physics\" threads 2",
  };
  for (const auto& text : cases) {
    const std::string canon = sv::canonical_text(text);
    EXPECT_EQ(sv::canonical_text(canon), canon) << text;
  }
  // Whitespace and sugar collapse onto one canonical spelling.
  EXPECT_EQ(sv::canonical_text("query  jobs\n  agg   count( )  threads 1"),
            "query jobs agg count()");
  // Escapes survive the round trip.
  const std::string esc = "query jobs where user = \"a\\\"b\\\\c\" agg count()";
  EXPECT_EQ(sv::canonical_text(esc), esc);
}

TEST(ServiceRequest, ParseErrorsCarryPosition) {
  const std::vector<std::string> bad = {
      "",
      "fetch jobs agg count()",
      "query jobs",
      "query jobs agg bogus(value)",
      "query jobs agg sum(value) threads 100",
      "query jobs agg count() trailing junk",
      "query jobs where user = unquoted agg count()",
      "report jobs stats job_count",
  };
  for (const auto& text : bad) {
    try {
      (void)sv::parse_request(text);
      FAIL() << "expected ParseError for: " << text;
    } catch (const sc::ParseError& e) {
      EXPECT_NE(std::string(e.what()).find("request:"), std::string::npos)
          << e.what();
    }
  }
}

TEST(ServiceRequest, GeneratedRequestsRoundTripAndMatchEngine) {
  const wh::Table& corpus = fuzz_corpus();
  for (std::uint64_t i = 0; i < 60; ++i) {
    tk::QuerySpec spec;
    const std::string text = tk::make_request_text(11, i, "corpus", &spec);
    ASSERT_EQ(sv::canonical_text(text), text) << text;

    const sv::Request req = sv::parse_request(text);
    wh::Query q = sv::compile(req.query, corpus);
    const wh::Table got = q.run();
    const tk::QueryRun ref = tk::run_engine(corpus, spec);
    expect_tables_identical(got, ref.table);
    EXPECT_EQ(tk::stats_diff(q.stats(), ref.stats), std::nullopt) << text;
  }
}

// --- Config validation -----------------------------------------------------

TEST(ServiceConfig, RejectsBadFieldsWithSourcedErrors) {
  const auto expect_rejects = [](sv::ServiceConfig cfg, const char* field) {
    try {
      cfg.validate();
      FAIL() << "expected InvalidArgument for " << field;
    } catch (const sc::InvalidArgument& e) {
      EXPECT_NE(std::string(e.what()).find(field), std::string::npos) << e.what();
    }
  };
  sv::ServiceConfig cfg;
  cfg.workers = 0;
  expect_rejects(cfg, "workers");
  cfg = {};
  cfg.queue_limit = -1;
  expect_rejects(cfg, "queue_limit");
  cfg = {};
  cfg.cache_entries = -1;
  expect_rejects(cfg, "cache_entries");
  cfg = {};
  cfg.default_deadline_ms = 0;
  expect_rejects(cfg, "default_deadline_ms");
  EXPECT_THROW({ sv::Service rejected(cfg); }, sc::InvalidArgument);
  // Valid default config passes (cache may be disabled outright).
  cfg = {};
  cfg.cache_entries = 0;
  cfg.validate();
}

TEST(ServiceConfig, PipelineConfigValidatesServiceAndOwnFields) {
  pl::PipelineConfig cfg;
  cfg.spec = fa::scaled(fa::ranger(), 0.008);
  cfg.span = 0;
  EXPECT_THROW(cfg.validate(), sc::InvalidArgument);
  EXPECT_THROW((void)pl::run_pipeline(cfg), sc::InvalidArgument);
  cfg.span = sc::kDay;
  cfg.load_factor = -1.0;
  EXPECT_THROW(cfg.validate(), sc::InvalidArgument);
  cfg.load_factor = 1.0;
  cfg.agent.interval = 0;
  EXPECT_THROW(cfg.validate(), sc::InvalidArgument);
  cfg.agent.interval = supremm::taccstats::AgentConfig{}.interval;
  cfg.service.default_deadline_ms = -5;
  EXPECT_THROW(cfg.validate(), sc::InvalidArgument);
  cfg.service.default_deadline_ms = 1000;
  cfg.validate();
}

// --- Result cache ----------------------------------------------------------

TEST(ServiceCache, HitIsBitIdenticalToColdRerun) {
  const wh::Table& corpus = fuzz_corpus();
  sv::Service hot(small_cfg());
  publish_corpus(hot, corpus);
  sv::ServiceConfig cold_cfg = small_cfg();
  cold_cfg.cache_entries = 0;  // every request recomputes
  sv::Service cold(cold_cfg);
  publish_corpus(cold, corpus);

  sv::Session hs = hot.session("hot");
  sv::Session cs = cold.session("cold");
  for (std::uint64_t i = 0; i < 30; ++i) {
    const std::string text = tk::make_request_text(21, i, "corpus");
    const sv::ResponsePtr miss = hs.run(text);
    ASSERT_EQ(miss->status, sv::Status::kOk) << miss->error;
    EXPECT_FALSE(miss->cache_hit);
    const sv::ResponsePtr hit = hs.run(text);
    ASSERT_EQ(hit->status, sv::Status::kOk) << hit->error;
    EXPECT_TRUE(hit->cache_hit);
    const sv::ResponsePtr fresh = cs.run(text);
    ASSERT_EQ(fresh->status, sv::Status::kOk) << fresh->error;
    EXPECT_FALSE(fresh->cache_hit);

    expect_tables_identical(*hit->table, *miss->table);
    expect_tables_identical(*hit->table, *fresh->table);
    EXPECT_EQ(tk::stats_diff(hit->stats, miss->stats), std::nullopt);
    EXPECT_EQ(tk::stats_diff(hit->stats, fresh->stats), std::nullopt);
    EXPECT_EQ(hit->epoch, miss->epoch);
  }
  const sv::ServiceMetrics m = hot.metrics();
  EXPECT_EQ(m.cache_hits, 30u);
  EXPECT_EQ(m.submitted, 60u);
  EXPECT_EQ(m.completed, 60u);
  EXPECT_EQ(cold.metrics().cache_hits, 0u);
}

TEST(ServiceCache, LruEvictsLeastRecentlyUsed) {
  sv::ServiceConfig cfg = small_cfg();
  cfg.cache_entries = 2;
  sv::Service svc(cfg);
  publish_corpus(svc, fuzz_corpus());
  sv::Session s = svc.session("lru");

  const std::string q1 = "query corpus agg sum(value)";
  const std::string q2 = "query corpus agg max(value)";
  const std::string q3 = "query corpus agg min(value)";
  EXPECT_FALSE(s.run(q1)->cache_hit);
  EXPECT_FALSE(s.run(q2)->cache_hit);
  EXPECT_FALSE(s.run(q3)->cache_hit);  // evicts q1
  EXPECT_FALSE(s.run(q1)->cache_hit);  // q1 gone; reinsert evicts q2
  EXPECT_TRUE(s.run(q3)->cache_hit);   // q3 survived both evictions
  const sv::ServiceMetrics m = svc.metrics();
  EXPECT_EQ(m.cache_entries, 2u);
  EXPECT_GE(m.cache_evictions, 2u);
}

// --- Archive binding -------------------------------------------------------

TEST(ServiceArchive, AppendInvalidatesCacheAndMatchesFreshService) {
  const SimRun& run = tiny_ranger_run();
  const std::string dir = scratch_dir("svc-append");
  ar::Archive a(dir, 1);
  append_days(a, run, 1);

  sv::Service svc(small_cfg());
  svc.bind_archive(a);
  EXPECT_EQ(svc.epoch(), 1u);
  sv::Session s = svc.session("client");

  const std::string text =
      "query jobs group app agg count() as jobs,sum(node_hours),mean(cpu_idle)";
  const sv::ResponsePtr day1 = s.run(text);
  ASSERT_EQ(day1->status, sv::Status::kOk) << day1->error;
  EXPECT_EQ(day1->epoch, 1u);
  EXPECT_EQ(day1->watermark, run.start + sc::kDay);
  ASSERT_TRUE(s.run(text)->cache_hit);

  // The append republishes through the on_append hook: epoch bumps, the
  // cached day-1 answer can no longer be served.
  append_days(a, run, 2);
  EXPECT_EQ(svc.epoch(), 2u);
  const sv::ResponsePtr day2 = s.run(text);
  ASSERT_EQ(day2->status, sv::Status::kOk) << day2->error;
  EXPECT_FALSE(day2->cache_hit);
  EXPECT_EQ(day2->epoch, 2u);
  EXPECT_EQ(day2->watermark, a.watermark());

  // Bit-identical to a service that never saw the intermediate state.
  sv::Service fresh(small_cfg());
  fresh.bind_archive(a);
  const sv::ResponsePtr ref = fresh.session("fresh").run(text);
  ASSERT_EQ(ref->status, sv::Status::kOk) << ref->error;
  expect_tables_identical(*day2->table, *ref->table);
  EXPECT_EQ(tk::stats_diff(day2->stats, ref->stats), std::nullopt);

  // The series and quality tables are served too.
  EXPECT_EQ(s.run("query series agg mean(cpu_idle_frac),max(flops_tf)")->status,
            sv::Status::kOk);
  EXPECT_EQ(s.run("query data_quality agg count()")->status, sv::Status::kOk);
}

// --- Cancellation ----------------------------------------------------------

TEST(ServiceCancel, PreCancelledQueryThrowsAndKeepsZeroStats) {
  const wh::Table& corpus = fuzz_corpus();
  const sv::Request req = sv::parse_request(
      "query corpus where value >= 0 group user agg sum(value)");
  wh::Query q = sv::compile(req.query, corpus);
  sc::CancelToken token;
  token.cancel();
  q.cancel_token(&token);
  EXPECT_THROW((void)q.run(), sc::Cancelled);
  expect_zero_stats(q.stats());
  // The token is sticky: re-running still refuses.
  EXPECT_THROW((void)q.run(), sc::Cancelled);
  // Detached from the token the same query completes and repopulates stats.
  q.cancel_token(nullptr);
  const wh::Table out = q.run();
  EXPECT_GT(q.stats().rows_scanned, 0u);
  const tk::QueryRun ref = tk::run_engine(corpus, [] {
    tk::QuerySpec spec;
    spec.has_where = true;
    spec.where.push_back({tk::PredOp::kGe, "value", "", 0.0, 0.0});
    spec.group_by = {"user"};
    wh::AggSpec sum;
    sum.column = "value";
    sum.kind = wh::AggKind::kSum;
    spec.aggs.push_back(sum);
    return spec;
  }());
  expect_tables_identical(out, ref.table);
}

TEST(ServiceCancel, ExpiredDeadlineTokenTripsAtSafePoint) {
  const wh::Table& corpus = fuzz_corpus();
  const sv::Request req = sv::parse_request("query corpus agg sum(value)");
  wh::Query q = sv::compile(req.query, corpus);
  sc::CancelToken token;
  token.set_deadline(std::chrono::steady_clock::now() -
                     std::chrono::milliseconds(1));
  EXPECT_FALSE(token.cancelled());
  EXPECT_TRUE(token.deadline_expired());
  q.cancel_token(&token);
  EXPECT_THROW((void)q.run(), sc::Cancelled);
  expect_zero_stats(q.stats());
}

TEST(ServiceCancel, MidRunCancelIsCleanOrComplete) {
  const wh::Table& corpus = big_corpus();
  const sv::Request req = sv::parse_request(kBlockerText);
  const tk::QueryRun ref =
      tk::run_engine(corpus, [] {
        tk::QuerySpec spec;
        spec.has_where = true;
        spec.where.push_back({tk::PredOp::kBetween, "value", "", -1e300, 1e300});
        spec.group_by = {"user", "app", "day", "big"};
        wh::AggSpec sum;
        sum.column = "value";
        sum.kind = wh::AggKind::kSum;
        wh::AggSpec wmean;
        wmean.column = "value";
        wmean.kind = wh::AggKind::kWeightedMean;
        wmean.weight = "weight";
        wh::AggSpec count;
        count.kind = wh::AggKind::kCount;
        spec.aggs = {sum, wmean, count};
        return spec;
      }());

  wh::Query q = sv::compile(req.query, corpus);
  sc::CancelToken token;
  q.cancel_token(&token);
  std::thread canceller([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    token.cancel();
  });
  try {
    const wh::Table out = q.run();
    // Cancel landed after the last safe point: the run must be complete and
    // correct, never truncated.
    expect_tables_identical(out, ref.table);
    EXPECT_EQ(tk::stats_diff(q.stats(), ref.stats), std::nullopt);
  } catch (const sc::Cancelled&) {
    expect_zero_stats(q.stats());
  }
  canceller.join();
}

TEST(ServiceCancel, CancelledTicketLeaksNoPartialResults) {
  sv::ServiceConfig cfg = small_cfg();
  cfg.workers = 1;
  cfg.cache_entries = 0;
  sv::Service svc(cfg);
  publish_corpus(svc, big_corpus());
  sv::Session s = svc.session("cancel");

  const std::string target_text = "query corpus agg sum(value),count()";
  sv::Ticket blocker = s.submit(kBlockerText);
  sv::Ticket target = s.submit(target_text);
  target.cancel();

  ASSERT_EQ(blocker.wait()->status, sv::Status::kOk);
  const sv::ResponsePtr r = target.wait();
  const sv::ResponsePtr ref = s.run(target_text);
  ASSERT_EQ(ref->status, sv::Status::kOk) << ref->error;
  if (r->status == sv::Status::kCancelled) {
    EXPECT_EQ(r->table, nullptr);
    expect_zero_stats(r->stats);
  } else {
    // The worker raced past the cancel: the response must then be complete.
    ASSERT_EQ(r->status, sv::Status::kOk) << r->error;
    expect_tables_identical(*r->table, *ref->table);
  }
  const sv::ServiceMetrics m = svc.metrics();
  EXPECT_EQ(m.submitted, 3u);
  EXPECT_EQ(m.completed + m.cancelled, 3u);
}

// --- Deadlines and admission -----------------------------------------------

TEST(ServiceDeadline, QueuedRequestTimesOutBehindBlocker) {
  sv::ServiceConfig cfg = small_cfg();
  cfg.workers = 1;
  cfg.cache_entries = 0;
  sv::Service svc(cfg);
  publish_corpus(svc, big_corpus());
  sv::Session s = svc.session("deadline");

  sv::Ticket blocker = s.submit(kBlockerText);
  sv::Ticket target = s.submit("query corpus agg sum(value)", /*deadline_ms=*/1);
  ASSERT_EQ(blocker.wait()->status, sv::Status::kOk);
  const sv::ResponsePtr r = target.wait();
  EXPECT_EQ(r->status, sv::Status::kTimedOut) << sv::to_string(r->status);
  EXPECT_EQ(r->table, nullptr);
  expect_zero_stats(r->stats);
  EXPECT_EQ(svc.metrics().timed_out, 1u);

  EXPECT_THROW((void)s.submit("query corpus agg count()", -1), sc::InvalidArgument);
}

TEST(ServiceAdmission, QueueFullRejectsDeterministically) {
  sv::ServiceConfig cfg = small_cfg();
  cfg.workers = 1;
  cfg.queue_limit = 2;
  cfg.cache_entries = 0;
  sv::Service svc(cfg);
  publish_corpus(svc, big_corpus());
  sv::Session s = svc.session("admission");

  // b1 occupies the worker for many milliseconds; b2 plus at most one target
  // fill the 2-slot queue while it runs, so of the 4 rapid-fire targets
  // either 3 (b1 already dequeued) or 4 (not yet) must be rejected.
  sv::Ticket b1 = s.submit(kBlockerText);
  sv::Ticket b2 = s.submit(kBlockerText);
  std::vector<sv::Ticket> targets;
  for (int i = 0; i < 4; ++i) {
    targets.push_back(s.submit("query corpus agg count()"));
  }
  std::size_t rejected = 0;
  for (auto& t : targets) {
    const sv::ResponsePtr r = t.wait();
    if (r->status == sv::Status::kRejected) {
      ++rejected;
      EXPECT_EQ(r->table, nullptr);
      EXPECT_NE(r->error.find("queue full"), std::string::npos);
    } else {
      EXPECT_EQ(r->status, sv::Status::kOk) << r->error;
    }
  }
  EXPECT_GE(rejected, 3u);
  EXPECT_LE(rejected, 4u);
  EXPECT_EQ(svc.metrics().rejected, rejected);
  EXPECT_EQ(b1.wait()->status, sv::Status::kOk);
  EXPECT_EQ(b2.wait()->status, sv::Status::kOk);
}

// --- Reports ---------------------------------------------------------------

TEST(ServiceReport, MatchesRealmDirectAndCaches) {
  const SimRun& run = tiny_ranger_run();
  sv::Service svc(small_cfg());
  svc.publish_jobs(run.result.jobs, run.start + run.span);
  sv::Session s = svc.session("report");

  const std::string text =
      "report jobs dimension user stats job_count,total_node_hours sort "
      "total_node_hours limit 5";
  const sv::ResponsePtr r = s.run(text);
  ASSERT_EQ(r->status, sv::Status::kOk) << r->error;

  const xd::JobsRealm realm(run.result.jobs);
  xd::JobsRealm::ReportSpec spec;
  spec.dimension = "user";
  spec.statistics = {"job_count", "total_node_hours"};
  spec.sort_by = "total_node_hours";
  spec.limit = 5;
  expect_tables_identical(*r->table, realm.report(spec));

  const sv::ResponsePtr hit = s.run(text);
  ASSERT_EQ(hit->status, sv::Status::kOk);
  EXPECT_TRUE(hit->cache_hit);
  expect_tables_identical(*hit->table, *r->table);

  // Realm errors surface as kError responses, not exceptions.
  EXPECT_EQ(s.run("report jobs dimension nope stats job_count")->status,
            sv::Status::kError);
  // The query path sees the jobs table published alongside the realm.
  EXPECT_EQ(s.run("query jobs group user agg sum(node_hours)")->status,
            sv::Status::kOk);
}

TEST(ServiceReport, NoJobsPublishedIsAnError) {
  sv::Service svc(small_cfg());
  publish_corpus(svc, fuzz_corpus());
  const sv::ResponsePtr r =
      svc.session("r").run("report jobs dimension user stats job_count");
  EXPECT_EQ(r->status, sv::Status::kError);
  EXPECT_NE(r->error.find("no job summaries"), std::string::npos);

  sv::Service empty(small_cfg());
  const sv::ResponsePtr none =
      empty.session("r").run("query corpus agg count()");
  EXPECT_EQ(none->status, sv::Status::kError);
  EXPECT_NE(none->error.find("no data published"), std::string::npos);
}

// --- Concurrency (the TSan target) -----------------------------------------

TEST(ServiceConcurrent, EightClientsGetBitIdenticalAnswers) {
  const wh::Table& corpus = fuzz_corpus();
  sv::ServiceConfig cfg;
  cfg.workers = 4;
  cfg.queue_limit = 256;
  cfg.cache_entries = 8;  // smaller than the pool: hits, misses and evictions
  cfg.default_deadline_ms = 60'000;
  sv::Service svc(cfg);
  publish_corpus(svc, corpus);

  // Precompute the reference answer for a pool of generated requests (with
  // varied engine thread counts riding along in the text).
  struct PoolEntry {
    std::string text;
    wh::Table ref;
  };
  std::vector<PoolEntry> pool;
  for (std::uint64_t i = 0; i < 12; ++i) {
    tk::QuerySpec spec;
    (void)tk::make_request_text(77, i, "corpus", &spec);
    spec.threads = tk::kDiffThreadCounts[i % 3];
    pool.push_back(
        {tk::to_request_text(spec, "corpus"), tk::run_engine(corpus, spec).table});
  }

  constexpr int kClients = 8;
  constexpr int kRequestsEach = 25;
  std::vector<std::thread> clients;
  std::vector<int> failures(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      sv::Session session = svc.session("client-" + std::to_string(c));
      for (int i = 0; i < kRequestsEach; ++i) {
        const PoolEntry& e = pool[(c * 7 + i) % pool.size()];
        const sv::ResponsePtr r = session.run(e.text);
        if (r->status != sv::Status::kOk || !r->table ||
            tk::table_diff(*r->table, e.ref).has_value()) {
          ++failures[c];
        }
      }
      (void)svc.metrics_json();  // exercised concurrently with traffic
    });
  }
  for (auto& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[c], 0) << "client " << c;
  }
  const sv::ServiceMetrics m = svc.metrics();
  EXPECT_EQ(m.submitted, static_cast<std::uint64_t>(kClients * kRequestsEach));
  EXPECT_EQ(m.completed, m.submitted);
  EXPECT_EQ(m.queue_depth, 0u);
  EXPECT_GT(m.cache_hits + m.cache_misses, 0u);
}

// --- Metrics export --------------------------------------------------------

TEST(ServiceMetricsExport, JsonCarriesCountersAndHistograms) {
  sv::LatencyHistogram h;
  h.add(0.5);
  h.add(2.0);
  h.add(150.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.max_ms(), 150.0);
  EXPECT_LE(h.quantile_ms(0.5), h.quantile_ms(0.99));
  EXPECT_GE(h.quantile_ms(0.5), 0.5);

  sv::Service svc(small_cfg());
  publish_corpus(svc, fuzz_corpus());
  sv::Session s = svc.session("metrics");
  ASSERT_EQ(s.run("query corpus agg sum(value)")->status, sv::Status::kOk);
  ASSERT_EQ(s.run("query corpus agg sum(value)")->status, sv::Status::kOk);
  EXPECT_EQ(s.run("not a request")->status, sv::Status::kError);

  const std::string json = svc.metrics_json();
  for (const char* key :
       {"\"epoch\":1", "\"submitted\":3", "\"parse_errors\":1",
        "\"completed\":2", "\"cache\":{\"hits\":1", "\"queue\":{\"depth\":0",
        "\"latency_ms\":{\"queue_wait\":{", "\"total\":{\"count\":3"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << "\n" << json;
  }
}

// --- Pipeline serve() ------------------------------------------------------

TEST(ServicePipeline, ServeStandsUpServiceOverArchivedRun) {
  pl::PipelineConfig cfg;
  cfg.spec = fa::scaled(fa::ranger(), 0.008);
  cfg.span = sc::kDay;
  cfg.seed = 4242;
  cfg.archive_dir = scratch_dir("svc-serve");
  cfg.service.workers = 2;

  pl::Serving serving = pl::serve(cfg);
  ASSERT_NE(serving.service, nullptr);
  ASSERT_NE(serving.archive, nullptr);
  EXPECT_EQ(serving.service->epoch(), 1u);

  sv::Session s = serving.service->session("e2e");
  const sv::ResponsePtr q =
      s.run("query jobs group app agg count() as jobs,sum(node_hours)");
  ASSERT_EQ(q->status, sv::Status::kOk) << q->error;
  EXPECT_GT(q->table->rows(), 0u);
  EXPECT_EQ(q->watermark, serving.archive->watermark());

  const sv::ResponsePtr rep = s.run(
      "report jobs dimension user stats job_count,total_node_hours sort "
      "total_node_hours limit 3");
  ASSERT_EQ(rep->status, sv::Status::kOk) << rep->error;
  EXPECT_LE(rep->table->rows(), 3u);
}
