// Structured archive bitstream fuzzing suite (ctest label: fuzz;
// DESIGN.md §12).
//
// An archive built from the shared tiny simulation run is mutated with
// format-aware damage — truncations, bit flips with and without forged
// checksums, manifest watermark/bucket skew, out-of-range dictionary codes —
// and after every mutation the Reader must either round-trip the pristine
// tables bit-identically or quarantine/reject the damage. Never crash,
// never silently return wrong rows.
//
// Environment knobs:
//   SUPREMM_TESTKIT_LONG=N      run N mutations instead of the smoke 200
//   SUPREMM_TESTKIT_SEED_DIR=D  dump replay seed files into D (default ".")
//   SUPREMM_TESTKIT_REPLAY=F    additionally re-run the dumped seed file F
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "archive/archive.h"
#include "common/checksum.h"
#include "common/error.h"
#include "common/strings.h"
#include "sim_fixture.h"
#include "testkit/fuzz.h"
#include "testkit/replay.h"

namespace {

using namespace supremm;
namespace fs = std::filesystem;

/// Archive of the shared tiny run, built once per binary.
const std::string& pristine_dir() {
  static const std::string dir = [] {
    const fs::path p = fs::temp_directory_path() / "supremm_testkit_fuzz_pristine";
    supremm::testing::build_archive(p.string(), supremm::testing::tiny_ranger_run());
    return p.string();
  }();
  return dir;
}

testkit::FuzzConfig make_config() {
  testkit::FuzzConfig cfg;
  cfg.pristine_dir = pristine_dir();
  cfg.scratch_dir =
      (fs::temp_directory_path() / "supremm_testkit_fuzz_scratch").string();
  cfg.seed = 20130313;
  cfg.iterations = 200;  // smoke floor; the long run is opt-in
  if (const char* n = std::getenv("SUPREMM_TESTKIT_LONG")) {
    cfg.iterations = static_cast<std::size_t>(std::strtoull(n, nullptr, 10));
  }
  if (const char* d = std::getenv("SUPREMM_TESTKIT_SEED_DIR")) cfg.seed_dir = d;
  return cfg;
}

TEST(ArchiveFuzz, ReaderSurvivesStructuredMutations) {
  const testkit::FuzzConfig cfg = make_config();
  const testkit::FuzzReport rep = testkit::run_archive_fuzz(cfg);
  EXPECT_EQ(rep.iterations, cfg.iterations);
  EXPECT_EQ(rep.iterations, rep.roundtrips + rep.quarantines + rep.manifest_rejects +
                                rep.forged_divergences);
  // The mutation mix guarantees every outcome class actually occurs: damage
  // is detected, invalid manifests are rejected, benign skew round-trips.
  EXPECT_GT(rep.quarantines, 0u);
  EXPECT_GT(rep.manifest_rejects, 0u);
  EXPECT_GT(rep.roundtrips, 0u);
  for (std::size_t i = 0; i < rep.failures.size(); ++i) {
    ADD_FAILURE() << "contract violation (replay: SUPREMM_TESTKIT_REPLAY="
                  << rep.seed_files[i]
                  << " build/tests/test_fuzz_archive): " << rep.failures[i];
  }
  fs::remove_all(cfg.scratch_dir);
}

// Metamorphic: the Reader must restore the canonical row order no matter how
// the manifest orders the partitions, so shuffling the partition lines (and
// re-forging the manifest checksum) must round-trip bit-identically.
TEST(ArchiveFuzz, PartitionOrderShuffleRoundTrips) {
  const fs::path dir = fs::temp_directory_path() / "supremm_testkit_fuzz_shuffle";
  fs::remove_all(dir);
  fs::create_directories(dir);
  for (const auto& e : fs::directory_iterator(pristine_dir())) {
    fs::copy_file(e.path(), dir / e.path().filename());
  }

  // Rewrite the MANIFEST with its `p` lines reversed.
  const fs::path mpath = dir / "MANIFEST";
  std::string text;
  {
    std::ifstream in(mpath, std::ios::binary);
    text.assign((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  }
  std::vector<std::string> head, plines;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    const std::string line = text.substr(pos, nl - pos);
    pos = nl == std::string::npos ? text.size() : nl + 1;
    if (line.rfind("crc ", 0) == 0) break;
    (line.rfind("p ", 0) == 0 ? plines : head).push_back(line);
  }
  ASSERT_GT(plines.size(), 1u);
  std::reverse(plines.begin(), plines.end());
  std::string out;
  for (const auto& l : head) out += l + "\n";
  for (const auto& l : plines) out += l + "\n";
  out += common::strprintf("crc %08x\n", common::crc32(out));
  {
    std::ofstream o(mpath, std::ios::binary | std::ios::trunc);
    o << out;
  }

  archive::Reader ref(pristine_dir(), 1);
  archive::Reader shuf(dir.string(), 1);
  for (const char* name : {"jobs", "series", "data_quality"}) {
    supremm::testing::expect_tables_identical(ref.table(name), shuf.table(name));
  }
  EXPECT_TRUE(shuf.quarantined().empty());
  fs::remove_all(dir);
}

// Regression for the semantic manifest validation the fuzzer relies on: a
// checksummed-but-nonsensical manifest must be rejected before any loader
// divides by the bucket width or sizes buffers from (watermark - start).
TEST(ArchiveFuzz, SemanticallyInvalidManifestRejected) {
  const auto corrupt = [&](const std::string& key, const std::string& value) {
    const fs::path dir = fs::temp_directory_path() / "supremm_testkit_fuzz_manifest";
    fs::remove_all(dir);
    fs::create_directories(dir);
    for (const auto& e : fs::directory_iterator(pristine_dir())) {
      fs::copy_file(e.path(), dir / e.path().filename());
    }
    const fs::path mpath = dir / "MANIFEST";
    std::string text;
    {
      std::ifstream in(mpath, std::ios::binary);
      text.assign((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    }
    std::string out;
    std::size_t pos = 0;
    while (pos < text.size()) {
      const std::size_t nl = text.find('\n', pos);
      std::string line = text.substr(pos, nl - pos);
      pos = nl == std::string::npos ? text.size() : nl + 1;
      if (line.rfind("crc ", 0) == 0) break;
      if (line.rfind(key + " ", 0) == 0) line = key + " " + value;
      out += line + "\n";
    }
    out += common::strprintf("crc %08x\n", common::crc32(out));
    {
      std::ofstream o(mpath, std::ios::binary | std::ios::trunc);
      o << out;
    }
    EXPECT_THROW(archive::Reader(dir.string(), 1), common::ParseError) << key;
    EXPECT_THROW(archive::Archive(dir.string(), 1), common::ParseError) << key;
    fs::remove_all(dir);
  };
  corrupt("bucket", "0");
  corrupt("bucket", "-600");
  corrupt("watermark", "-86400");
}

TEST(ArchiveFuzzReplay, EnvSeedFile) {
  const char* path = std::getenv("SUPREMM_TESTKIT_REPLAY");
  if (path == nullptr) GTEST_SKIP() << "SUPREMM_TESTKIT_REPLAY not set";
  const auto d = testkit::replay_fuzz_file(make_config(), path);
  EXPECT_FALSE(d.has_value()) << "still violates: " << *d;
}

}  // namespace
