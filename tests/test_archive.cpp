// Archive subsystem tests: partition round-trip bit-identity, streaming
// compression, zone-map pruning on archived tables, incremental append
// equivalence with from-scratch ingest, and corruption quarantine.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <set>
#include <string>
#include <tuple>

#include "compress/lzss.h"
#include "sim_fixture.h"

namespace ar = supremm::archive;
namespace cp = supremm::compress;
namespace etl = supremm::etl;
namespace fa = supremm::facility;
namespace fsim = supremm::faultsim;
namespace sc = supremm::common;
namespace wh = supremm::warehouse;
namespace fs = std::filesystem;
using supremm::testing::make_sim_run;
using supremm::testing::SimRun;

namespace {

/// The shared 4-day run behind every archive test; computed once per binary.
const SimRun& archive_run() {
  static const SimRun run = make_sim_run(fa::ranger(), 0.008, 4, 777);
  return run;
}

etl::IngestConfig ingest_cfg(const SimRun& run, sc::Duration span) {
  etl::IngestConfig cfg;
  cfg.start = run.start;
  cfg.span = span;
  cfg.cluster = run.spec.name;
  return cfg;
}

constexpr const char* kContext = "test-context";

ar::AppendStats append_days(ar::Archive& a, const SimRun& run, int days) {
  const auto cfg = ingest_cfg(run, days * sc::kDay);
  return a.append(cfg, run.files, run.acct, run.lariat_records, run.catalogue,
                  etl::project_science_map(*run.population), kContext,
                  run.start + days * sc::kDay);
}

/// Fresh scratch directory under the test temp root.
std::string scratch_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("supremm-" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

/// Deterministic re-encode: two tables holding the same rows in the same
/// order produce byte-identical partitions (dictionaries are assigned in
/// first-seen order), so byte equality is full bit-identity including NaNs.
std::string table_bytes(const wh::Table& t) { return ar::encode_partition(t, 0); }

}  // namespace

// --- Partition round trip --------------------------------------------------

TEST(ArchivePartition, JobsRoundTripBitIdentical) {
  const auto& run = archive_run();
  ASSERT_FALSE(run.result.jobs.empty());
  const wh::Table t = ar::jobs_table(run.result.jobs);
  const std::string bytes = ar::encode_partition(t, 3);

  const ar::DecodedPartition dp = ar::decode_partition(bytes);
  EXPECT_EQ(dp.day, 3);
  EXPECT_EQ(dp.table.rows(), t.rows());
  EXPECT_EQ(dp.table.cols(), t.cols());
  // Decode -> re-encode reproduces the exact bytes.
  EXPECT_EQ(ar::encode_partition(dp.table, 3), bytes);

  // And the decoded rows rebuild the exact summaries.
  const auto jobs = ar::jobs_from_table(dp.table);
  ASSERT_EQ(jobs.size(), run.result.jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].id, run.result.jobs[i].id);
    EXPECT_EQ(jobs[i].user, run.result.jobs[i].user);
    EXPECT_EQ(jobs[i].end, run.result.jobs[i].end);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(jobs[i].cpu_idle),
              std::bit_cast<std::uint64_t>(run.result.jobs[i].cpu_idle));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(jobs[i].mem_used_max_gb),
              std::bit_cast<std::uint64_t>(run.result.jobs[i].mem_used_max_gb));
  }
}

TEST(ArchivePartition, SeriesAndQualityRoundTrip) {
  const auto& run = archive_run();
  const wh::Table st = ar::series_table(run.result.series);
  const ar::DecodedPartition sd = ar::decode_partition(ar::encode_partition(st, 0));
  const etl::SystemSeries series = ar::series_from_table(
      sd.table, run.result.series.start, run.result.series.bucket, run.result.series.buckets);
  EXPECT_EQ(table_bytes(ar::series_table(series)), table_bytes(st));

  const wh::Table qt = ar::quality_to_table(run.result.quality);
  const ar::DecodedPartition qd = ar::decode_partition(ar::encode_partition(qt, -1));
  const etl::DataQualityReport quality = ar::quality_from_table(qd.table);
  EXPECT_EQ(quality.hosts.size(), run.result.quality.hosts.size());
  EXPECT_EQ(quality.span, run.result.quality.span);
  EXPECT_EQ(table_bytes(ar::quality_to_table(quality)), table_bytes(qt));
}

TEST(ArchivePartition, CorruptBytesThrow) {
  const auto& run = archive_run();
  std::string bytes = ar::encode_partition(ar::jobs_table(run.result.jobs), 0);
  bytes[bytes.size() / 2] = static_cast<char>(~bytes[bytes.size() / 2]);
  EXPECT_THROW((void)ar::decode_partition(bytes), supremm::ParseError);
  EXPECT_THROW((void)ar::decode_partition(bytes.substr(0, bytes.size() / 3)),
               supremm::ParseError);
}

// --- Streaming compression -------------------------------------------------

TEST(ArchiveCompress, StreamingMatchesOneShot) {
  const auto& run = archive_run();
  ASSERT_FALSE(run.files.empty());
  const std::string& data = run.files.front().content;
  const std::string one_shot = cp::compress(data);

  for (const std::size_t chunk : {std::size_t{1}, std::size_t{7}, std::size_t{4096}}) {
    cp::StreamCompressor enc;
    for (std::size_t pos = 0; pos < data.size(); pos += chunk) {
      enc.append(std::string_view(data).substr(pos, chunk));
    }
    EXPECT_EQ(enc.finish(), one_shot) << "chunk " << chunk;
    EXPECT_EQ(enc.report().raw, data.size());
    EXPECT_EQ(enc.report().compressed, one_shot.size());
  }
}

TEST(ArchiveCompress, StreamingDecompressorResumesAnywhere) {
  const auto& run = archive_run();
  const std::string& data = run.files.front().content;
  const std::string packed = cp::compress(data);
  cp::StreamDecompressor dec;
  // Byte-at-a-time delivery must still reproduce the input exactly.
  std::string out;
  for (const char c : packed) {
    dec.append(std::string_view(&c, 1));
    out += dec.take();
  }
  EXPECT_TRUE(dec.done());
  EXPECT_EQ(dec.raw_size(), data.size());
  EXPECT_EQ(out, data);
}

// --- Incremental append ----------------------------------------------------

TEST(ArchiveAppend, IncrementalEqualsFromScratch) {
  const auto& run = archive_run();

  const std::string inc_dir = scratch_dir("incremental");
  ar::Archive inc(inc_dir);
  const auto st1 = append_days(inc, run, 2);
  EXPECT_EQ(st1.days_ingested, 2);
  EXPECT_GT(st1.partitions_written, 0U);
  EXPECT_EQ(inc.manifest().rewrite_from, 1);
  const auto st2 = append_days(inc, run, 4);
  EXPECT_EQ(st2.days_ingested, 3);  // day 1 was provisional and is redone
  EXPECT_EQ(inc.manifest().watermark, 4 * sc::kDay);

  const std::string full_dir = scratch_dir("fromscratch");
  ar::Archive full(full_dir);
  (void)append_days(full, run, 4);

  // Every partition must be byte-identical between the two histories.
  ASSERT_EQ(inc.manifest().partitions.size(), full.manifest().partitions.size());
  std::set<std::tuple<std::string, std::int64_t, std::uint32_t, std::uint64_t>> a;
  std::set<std::tuple<std::string, std::int64_t, std::uint32_t, std::uint64_t>> b;
  for (const auto& p : inc.manifest().partitions) a.insert({p.table, p.day, p.crc, p.bytes});
  for (const auto& p : full.manifest().partitions) b.insert({p.table, p.day, p.crc, p.bytes});
  EXPECT_EQ(a, b);

  // And the loaded result must equal a plain in-memory ingest of all 4 days.
  const ar::LoadResult loaded = inc.load();
  EXPECT_TRUE(loaded.quarantined.empty());
  EXPECT_EQ(table_bytes(ar::jobs_table(loaded.result.jobs)),
            table_bytes(ar::jobs_table(run.result.jobs)));
  EXPECT_EQ(table_bytes(ar::series_table(loaded.result.series)),
            table_bytes(ar::series_table(run.result.series)));
  EXPECT_EQ(table_bytes(ar::quality_to_table(loaded.result.quality)),
            table_bytes(ar::quality_to_table(run.result.quality)));

  // Appending the same watermark again is a no-op.
  const auto st3 = append_days(inc, run, 4);
  EXPECT_EQ(st3.partitions_written, 0U);
}

TEST(ArchiveAppend, RejectsConfigurationDrift) {
  const auto& run = archive_run();
  const std::string dir = scratch_dir("drift");
  ar::Archive a(dir);
  (void)append_days(a, run, 2);

  auto cfg = ingest_cfg(run, 4 * sc::kDay);
  EXPECT_THROW((void)a.append(cfg, run.files, run.acct, run.lariat_records, run.catalogue,
                              etl::project_science_map(*run.population), "other-context",
                              run.start + 4 * sc::kDay),
               supremm::InvalidArgument);
  cfg.span = 3 * sc::kDay;  // span must equal upto - start
  EXPECT_THROW((void)a.append(cfg, run.files, run.acct, run.lariat_records, run.catalogue,
                              etl::project_science_map(*run.population), kContext,
                              run.start + 4 * sc::kDay),
               supremm::InvalidArgument);
}

// --- Reader + zone-map pruning ---------------------------------------------

TEST(ArchiveReader, PrunedScanMatchesFullScan) {
  const auto& run = archive_run();
  const std::string dir = scratch_dir("reader");
  ar::Archive a(dir);
  (void)append_days(a, run, 4);

  ar::Reader reader(dir);
  const wh::Table jobs = reader.table(ar::kJobsTable, 64);
  ASSERT_NE(jobs.zone_index(), nullptr);
  ASSERT_EQ(jobs.rows(), run.result.jobs.size());

  // Query-level pruning: same result as the unindexed scan, fewer rows read.
  const sc::TimePoint cut = run.start + 3 * sc::kDay;
  auto query = [&](const wh::Table& t) {
    return wh::Query(t)
        .where(wh::ge("end", static_cast<double>(cut)))
        .group_by({"science"})
        .aggregate({{"node_hours", wh::AggKind::kSum, "", "nh"}});
  };
  wh::Table plain(jobs.name(), {{"science", wh::ColType::kString},
                                {"end", wh::ColType::kInt64},
                                {"node_hours", wh::ColType::kDouble}});
  for (std::size_t r = 0; r < jobs.rows(); ++r) {
    plain.append()
        .set("science", jobs.col("science").as_string(r))
        .set("end", jobs.col("end").as_int64(r))
        .set("node_hours", jobs.col("node_hours").as_double(r));
  }
  auto pruned_q = query(jobs);
  auto full_q = query(plain);
  const wh::Table pruned_out = pruned_q.run();
  const wh::Table full_out = full_q.run();
  EXPECT_EQ(table_bytes(pruned_out), table_bytes(full_out));
  EXPECT_GT(pruned_q.stats().chunks_pruned, 0U);
  EXPECT_LT(pruned_q.stats().rows_scanned, jobs.rows());
  EXPECT_EQ(full_q.stats().chunks_total, 0U);  // no zone index on the copy

  // Read-side pruning: skipped chunks never decompress, surviving rows are a
  // superset of the true matches and a subset of all rows.
  const std::vector<wh::PredicateBounds> bounds = {
      {"end", static_cast<double>(cut), std::numeric_limits<double>::infinity(), {}}};
  const wh::Table lazy = reader.table_pruned(ar::kJobsTable, bounds, 64);
  EXPECT_GT(reader.chunks_pruned(), 0U);
  EXPECT_LT(lazy.rows(), jobs.rows());
  std::set<std::int64_t> lazy_ids;
  for (std::size_t r = 0; r < lazy.rows(); ++r) {
    lazy_ids.insert(lazy.col("job_id").as_int64(r));
  }
  std::size_t matches = 0;
  for (const auto& j : run.result.jobs) {
    if (j.end >= cut) {
      ++matches;
      EXPECT_TRUE(lazy_ids.count(static_cast<std::int64_t>(j.id)) != 0) << "job " << j.id;
    }
  }
  EXPECT_GE(lazy_ids.size(), matches);
}

// --- Corruption quarantine -------------------------------------------------

TEST(ArchiveFaults, BitrotPartitionsAreQuarantined) {
  const auto& run = archive_run();
  const std::string dir = scratch_dir("bitrot");
  ar::Archive a(dir);
  (void)append_days(a, run, 4);
  const std::size_t total_partitions = a.manifest().partitions.size();

  // Damage is keyed by filename, so an identical copy of the archive takes
  // identical damage (determinism contract).
  const std::string copy_dir = scratch_dir("bitrot-copy");
  fs::copy(dir, copy_dir, fs::copy_options::recursive | fs::copy_options::overwrite_existing);

  const fsim::FaultInjector injector(fsim::FaultPlan::profile("bitrot", 4242));
  const fsim::InjectionReport rep = injector.apply_archive(dir);
  ASSERT_GT(rep.partitions_corrupted, 0U);
  ASSERT_LT(static_cast<std::size_t>(rep.partitions_corrupted), total_partitions);
  EXPECT_EQ(rep.corrupted_files.size(), rep.partitions_corrupted);
  const fsim::InjectionReport rep2 = injector.apply_archive(copy_dir);
  EXPECT_EQ(rep2.corrupted_files, rep.corrupted_files);

  const ar::LoadResult loaded = ar::Archive(dir).load();
  EXPECT_EQ(loaded.quarantined.size(), static_cast<std::size_t>(rep.partitions_corrupted));
  EXPECT_EQ(loaded.partitions_loaded, total_partitions - loaded.quarantined.size());
  std::set<std::string> expect(rep.corrupted_files.begin(), rep.corrupted_files.end());
  std::set<std::string> got;
  for (const auto& q : loaded.quarantined) got.insert(q.file);
  EXPECT_EQ(got, expect);
  // The quarantine is carried into the data-quality report for the xdmod
  // sysadmin book.
  EXPECT_EQ(loaded.result.quality.corrupt_partitions.size(), loaded.quarantined.size());

  // Healthy days still load: every surviving jobs partition's rows appear.
  // (The Archive must outlive the loop: iterating a temporary's member
  // dangles under C++20 range-for lifetime rules.)
  std::set<std::int64_t> healthy_days;
  ar::Archive reopened(dir);
  for (const auto& p : reopened.manifest().partitions) {
    if (p.table == ar::kJobsTable && expect.count(p.filename) == 0) {
      healthy_days.insert(p.day);
    }
  }
  std::size_t expected_jobs = 0;
  for (const auto& j : run.result.jobs) {
    const std::int64_t d = std::min<std::int64_t>(sc::day_of(j.end - 1), 3);
    if (healthy_days.count(d) != 0) ++expected_jobs;
  }
  EXPECT_EQ(loaded.result.jobs.size(), expected_jobs);
}

TEST(ArchiveFaults, DamagedManifestThrows) {
  const auto& run = archive_run();
  const std::string dir = scratch_dir("badmanifest");
  ar::Archive a(dir);
  (void)append_days(a, run, 2);

  const fs::path manifest = fs::path(dir) / "MANIFEST";
  std::string text;
  {
    std::ifstream in(manifest, std::ios::binary);
    text.assign((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  }
  text[text.find("watermark") + 10] ^= 1;
  {
    std::ofstream out(manifest, std::ios::binary | std::ios::trunc);
    out << text;
  }
  EXPECT_THROW(ar::Reader{dir}, supremm::ParseError);
  EXPECT_THROW(ar::Archive{dir}, supremm::ParseError);
}

// --- Pipeline integration --------------------------------------------------

TEST(ArchivePipeline, WarmArchiveSkipsSimulation) {
  namespace pl = supremm::pipeline;
  pl::PipelineConfig cfg;
  cfg.spec = fa::scaled(fa::ranger(), 0.004);
  cfg.span = 2 * sc::kDay;
  cfg.seed = 31;
  cfg.archive_dir = scratch_dir("pipeline");

  const pl::PipelineResult cold = pl::run_pipeline(cfg);
  EXPECT_NE(cold.provenance.find("days ingested"), std::string::npos);
  EXPECT_GT(cold.archive_partitions_written, 0U);
  ASSERT_NE(cold.engine, nullptr);

  const pl::PipelineResult warm = pl::run_pipeline(cfg);
  EXPECT_NE(warm.provenance.find("cold load"), std::string::npos);
  EXPECT_EQ(warm.engine, nullptr);  // no simulation happened
  EXPECT_TRUE(warm.files.empty());
  EXPECT_GT(warm.archive_partitions_loaded, 0U);
  EXPECT_EQ(table_bytes(ar::jobs_table(warm.result.jobs)),
            table_bytes(ar::jobs_table(cold.result.jobs)));
  EXPECT_EQ(table_bytes(ar::series_table(warm.result.series)),
            table_bytes(ar::series_table(cold.result.series)));

  // A different configuration must refuse to reuse the directory.
  pl::PipelineConfig other = cfg;
  other.seed = 32;
  EXPECT_THROW((void)pl::run_pipeline(other), supremm::InvalidArgument);
}
