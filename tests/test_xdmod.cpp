// Tests for the XDMoD analytics layer: profiles, efficiency, persistence,
// distributions, metric selection, time-series reports, the queue advisor
// and the stakeholder report book.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "sim_fixture.h"

namespace fa = supremm::facility;
namespace etl = supremm::etl;
namespace xd = supremm::xdmod;
namespace sc = supremm::common;
using supremm::testing::small_ranger_run;

// --- profiles -----------------------------------------------------------

TEST(Profiles, FacilityMeansAreWeighted) {
  const auto& run = small_ranger_run();
  const xd::ProfileAnalyzer an(run.result.jobs);
  double wsum = 0, w = 0;
  for (const auto& j : run.result.jobs) {
    wsum += j.cpu_idle * j.node_hours;
    w += j.node_hours;
  }
  EXPECT_NEAR(an.facility_means().at("cpu_idle"), wsum / w, 1e-9);
}

TEST(Profiles, AverageEntityNormalizesToOne) {
  // The node-hour weighted average of normalized values across all users of
  // a metric equals 1 by construction.
  const auto& run = small_ranger_run();
  const xd::ProfileAnalyzer an(run.result.jobs);
  double wsum = 0, w = 0;
  for (const auto& u : an.top_entities(xd::GroupBy::kUser, 100000)) {
    const auto p = an.profile(xd::GroupBy::kUser, u);
    wsum += p.entry("mem_used").normalized * p.node_hours;
    w += p.node_hours;
  }
  EXPECT_NEAR(wsum / w, 1.0, 1e-6);
}

TEST(Profiles, TopEntitiesSortedByNodeHours) {
  const auto& run = small_ranger_run();
  const xd::ProfileAnalyzer an(run.result.jobs);
  const auto tops = an.top_entities(xd::GroupBy::kUser, 5);
  ASSERT_GE(tops.size(), 3u);
  double prev = 1e300;
  for (const auto& u : tops) {
    const auto p = an.profile(xd::GroupBy::kUser, u);
    EXPECT_LE(p.node_hours, prev);
    prev = p.node_hours;
  }
}

TEST(Profiles, EightEntriesInKeyOrder) {
  const auto& run = small_ranger_run();
  const xd::ProfileAnalyzer an(run.result.jobs);
  const auto p = an.top_profiles(xd::GroupBy::kUser, 1).at(0);
  ASSERT_EQ(p.entries.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(p.entries[i].metric, etl::key_metric_names()[i]);
  }
  EXPECT_THROW((void)p.entry("bogus"), supremm::NotFoundError);
}

TEST(Profiles, AppProfilesShowAmberInefficiency) {
  // Figure 3's conclusion must survive the whole pipeline: AMBER's
  // normalized cpu_idle above NAMD's and GROMACS's.
  const auto& run = small_ranger_run();
  const xd::ProfileAnalyzer an(run.result.jobs);
  const auto namd = an.profile(xd::GroupBy::kApp, "NAMD");
  const auto amber = an.profile(xd::GroupBy::kApp, "AMBER");
  const auto gromacs = an.profile(xd::GroupBy::kApp, "GROMACS");
  ASSERT_GT(namd.jobs, 0u);
  ASSERT_GT(amber.jobs, 0u);
  ASSERT_GT(gromacs.jobs, 0u);
  EXPECT_GT(amber.entry("cpu_idle").normalized, namd.entry("cpu_idle").normalized);
  EXPECT_GT(amber.entry("cpu_idle").normalized, gromacs.entry("cpu_idle").normalized);
  EXPECT_GT(namd.entry("cpu_flops").normalized, amber.entry("cpu_flops").normalized);
}

TEST(Profiles, UnknownEntityIsEmpty) {
  const auto& run = small_ranger_run();
  const xd::ProfileAnalyzer an(run.result.jobs);
  const auto p = an.profile(xd::GroupBy::kUser, "nobody-here");
  EXPECT_EQ(p.jobs, 0u);
  EXPECT_DOUBLE_EQ(p.node_hours, 0.0);
}

TEST(Profiles, GroupingHelpers) {
  etl::JobSummary j;
  j.user = "u";
  j.app = "a";
  j.science = "s";
  j.project = "p";
  EXPECT_EQ(xd::entity_of(j, xd::GroupBy::kUser), "u");
  EXPECT_EQ(xd::entity_of(j, xd::GroupBy::kApp), "a");
  EXPECT_EQ(xd::entity_of(j, xd::GroupBy::kScience), "s");
  EXPECT_EQ(xd::entity_of(j, xd::GroupBy::kProject), "p");
  EXPECT_EQ(xd::group_name(xd::GroupBy::kApp), "application");
}

// --- efficiency / anomalies ----------------------------------------------

TEST(Efficiency, WastedPlusUsefulEqualsTotal) {
  const auto& run = small_ranger_run();
  const auto users = xd::user_efficiency(run.result.jobs);
  ASSERT_FALSE(users.empty());
  double total = 0;
  for (const auto& u : users) {
    EXPECT_GE(u.wasted_node_hours, 0.0);
    EXPECT_LE(u.wasted_node_hours, u.node_hours * 1.0001);
    EXPECT_NEAR(u.efficiency() + u.idle_fraction(), 1.0, 1e-12);
    total += u.node_hours;
  }
  double jobs_total = 0;
  for (const auto& j : run.result.jobs) jobs_total += j.node_hours;
  EXPECT_NEAR(total, jobs_total, 1e-6);
}

TEST(Efficiency, FacilityNearCalibrationTarget) {
  // Paper: ~90% on Ranger.
  const auto& run = small_ranger_run();
  // At 1% scale a single heavy user swings the mean by several points, so
  // the band is wider than the paper's ~90%; the Figure 4 bench checks the
  // calibrated value at larger scale.
  const double eff = xd::facility_efficiency(run.result.jobs);
  EXPECT_GT(eff, 0.70);
  EXPECT_LT(eff, 0.97);
}

TEST(Efficiency, PlantedOutlierDetected) {
  // The Figure 4/5 outlier: a heavy user with idle fraction near 88%.
  const auto& run = small_ranger_run();
  const auto bad = xd::inefficient_heavy_users(run.result.jobs, 20.0, 0.5);
  ASSERT_FALSE(bad.empty());
  const std::string outlier_name = run.population->user(run.population->outlier_user()).name;
  bool found = false;
  for (const auto& u : bad) {
    if (u.user == outlier_name) {
      found = true;
      EXPECT_GT(u.idle_fraction(), 0.75);
      EXPECT_LT(u.idle_fraction(), 0.95);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Efficiency, OutlierProfileMatchesFigure5) {
  // Other than cpu_idle (several times the average), the outlier's resource
  // use is normal-to-light.
  const auto& run = small_ranger_run();
  const xd::ProfileAnalyzer an(run.result.jobs);
  const std::string outlier = run.population->user(run.population->outlier_user()).name;
  const auto p = an.profile(xd::GroupBy::kUser, outlier);
  ASSERT_GT(p.jobs, 0u);
  EXPECT_GT(p.entry("cpu_idle").normalized, 3.0);
  for (const char* m : {"mem_used", "io_scratch_write", "net_ib_tx"}) {
    EXPECT_LT(p.entry(m).normalized, 1.5) << m;
  }
}

TEST(Anomalies, ZThresholdFiltersAndSorts) {
  const auto& run = small_ranger_run();
  const auto loose = xd::anomalous_jobs(run.result.jobs, 2.0);
  const auto strict = xd::anomalous_jobs(run.result.jobs, 4.0);
  EXPECT_GE(loose.size(), strict.size());
  for (std::size_t i = 1; i < loose.size(); ++i) {
    EXPECT_GE(std::fabs(loose[i - 1].zscore), std::fabs(loose[i].zscore));
  }
  for (const auto& a : strict) EXPECT_GE(std::fabs(a.zscore), 4.0);
}

TEST(Failures, ProfilesPartitionJobs) {
  const auto& run = small_ranger_run();
  const auto profiles = xd::failure_profiles(run.result.jobs);
  std::size_t total = 0, failed = 0;
  for (const auto& f : profiles) {
    total += f.jobs;
    failed += f.failed;
    EXPECT_GE(f.failure_rate(), 0.0);
    EXPECT_LE(f.failure_rate(), 1.0);
  }
  EXPECT_EQ(total, run.result.jobs.size());
  std::size_t direct = 0;
  for (const auto& j : run.result.jobs) direct += j.exit_status != 0 ? 1 : 0;
  EXPECT_EQ(failed, direct);
}

// --- persistence ------------------------------------------------------------

TEST(Persistence, Table1MetricsAndOffsets) {
  EXPECT_EQ(xd::table1_metrics().size(), 5u);
  EXPECT_EQ(xd::table1_offsets_minutes(),
            (std::vector<double>{10, 30, 100, 500, 1000}));
}

TEST(Persistence, RatiosGrowWithOffset) {
  const auto& run = small_ranger_run();
  const auto rep = xd::persistence_analysis(run.result.series);
  ASSERT_EQ(rep.ratios.size(), 5u);
  for (std::size_t m = 0; m < rep.metrics.size(); ++m) {
    const auto& row = rep.ratios[m];
    for (std::size_t o = 1; o < row.size(); ++o) {
      if (std::isnan(row[o]) || std::isnan(row[o - 1])) continue;
      // Monotone growth until the ratio saturates near 1, where only noise
      // remains.
      if (row[o - 1] < 0.9) {
        EXPECT_GT(row[o], row[o - 1] - 0.08)
            << rep.metrics[m] << " offset " << rep.offsets_minutes[o];
      }
    }
    // 10-minute ratio far below 1 (strong short-horizon predictability).
    EXPECT_LT(row[0], 0.75) << rep.metrics[m];
  }
}

TEST(Persistence, LogModelFitsWell) {
  const auto& run = small_ranger_run();
  const auto rep = xd::persistence_analysis(run.result.series);
  // Table 1's last row: R^2 >= ~0.9 for each metric.
  for (std::size_t m = 0; m < rep.metrics.size(); ++m) {
    if (!std::isnan(rep.fit_r2[m])) {
      EXPECT_GT(rep.fit_r2[m], 0.75) << rep.metrics[m];
    }
  }
  // Figure 6: combined fit with positive slope, R^2 around 0.87.
  EXPECT_GT(rep.combined.fit.slope, 0.0);
  EXPECT_GT(rep.combined.fit.r2, 0.5);
  EXPECT_LT(rep.combined.fit.slope_p, 1e-4);
}

TEST(Persistence, CustomMetricsAndOffsets) {
  const auto& run = small_ranger_run();
  const std::vector<std::string> metrics = {"mem_used"};
  const std::vector<double> offsets = {10, 20, 40, 80};
  const auto rep = xd::persistence_analysis(run.result.series, metrics, offsets);
  EXPECT_EQ(rep.ratios.size(), 1u);
  EXPECT_EQ(rep.ratios[0].size(), 4u);
}

// --- distributions -----------------------------------------------------------

TEST(Distributions, FlopsDistributionShape) {
  const auto& run = small_ranger_run();
  const auto d = xd::flops_distribution(run.result.series);
  EXPECT_EQ(d.unit, "TF");
  EXPECT_NEAR(d.density.integral(), 1.0, 0.05);
  // Figure 10: typical output far below peak.
  EXPECT_LT(d.summary.mean, 0.10 * run.spec.peak_tflops());
}

TEST(Distributions, MemoryDistributionMaxAboveMean) {
  const auto& run = small_ranger_run();
  const auto avg = xd::memory_distribution(run.result.jobs, false);
  const auto mx = xd::memory_distribution(run.result.jobs, true);
  EXPECT_GT(mx.summary.mean, avg.summary.mean);
  // Figure 12 (Ranger): usage well below the 32 GB capacity.
  EXPECT_LT(avg.summary.mean, 16.0);
  EXPECT_NEAR(avg.density.integral(), 1.0, 0.05);
}

TEST(Distributions, GenericJobMetric) {
  const auto& run = small_ranger_run();
  const auto d = xd::job_metric_distribution(run.result.jobs, "cpu_idle");
  EXPECT_EQ(d.name, "cpu_idle");
  EXPECT_GE(d.summary.min, 0.0);
  EXPECT_LE(d.summary.max, 1.0);
  EXPECT_THROW((void)xd::job_metric_distribution(run.result.jobs, "bogus"),
               supremm::NotFoundError);
}

// --- metric selection ---------------------------------------------------

TEST(Selector, FindsKnownCorrelatedPairs) {
  // §4.2: "cpu user is negatively correlated to cpu idle... net ib rx is
  // positively correlated to net ib tx".
  const auto& run = small_ranger_run();
  const auto sel = xd::select_key_metrics(run.result.jobs, 0.8);
  bool idle_user = false, ib = false;
  for (const auto& p : sel.correlated_pairs) {
    if ((p.a == "cpu_idle" && p.b == "cpu_user") ||
        (p.a == "cpu_user" && p.b == "cpu_idle")) {
      idle_user = true;
      EXPECT_LT(p.r, -0.8);
    }
    if ((p.a == "net_ib_tx" && p.b == "net_ib_rx") ||
        (p.a == "net_ib_rx" && p.b == "net_ib_tx")) {
      ib = true;
      EXPECT_GT(p.r, 0.8);
    }
  }
  EXPECT_TRUE(idle_user);
  EXPECT_TRUE(ib);
}

TEST(Selector, SelectedSetIsIndependent) {
  const auto& run = small_ranger_run();
  const auto sel = xd::select_key_metrics(run.result.jobs, 0.8);
  EXPECT_LT(sel.selected.size(), sel.metrics.size());
  for (std::size_t i = 0; i < sel.selected.size(); ++i) {
    for (std::size_t j = i + 1; j < sel.selected.size(); ++j) {
      EXPECT_LT(std::fabs(sel.correlation.at(sel.selected[i], sel.selected[j])), 0.8);
    }
  }
  // At most one of each correlated pair survives.
  std::size_t ib_members = 0;
  for (const auto& m : sel.selected) {
    if (m == "net_ib_tx" || m == "net_ib_rx") ++ib_members;
  }
  EXPECT_LE(ib_members, 1u);
}

// --- timeseries -----------------------------------------------------------

TEST(Timeseries, RebucketMean) {
  const auto& run = small_ranger_run();
  const auto rep = xd::rebucket(run.result.series, "active_nodes", sc::kDay,
                                xd::SeriesAgg::kMean);
  EXPECT_EQ(rep.t.size(), 8u);  // 8 days
  EXPECT_GT(rep.mean_value(), 0.0);
  EXPECT_LE(rep.max_value(), static_cast<double>(run.spec.node_count));
  EXPECT_THROW((void)xd::rebucket(run.result.series, "active_nodes", 7, // not a multiple
                                  xd::SeriesAgg::kMean),
               supremm::InvalidArgument);
}

TEST(Timeseries, RebucketMaxGeMean) {
  const auto& run = small_ranger_run();
  const auto mean =
      xd::rebucket(run.result.series, "cpu_flops", sc::kDay, xd::SeriesAgg::kMean);
  const auto mx =
      xd::rebucket(run.result.series, "cpu_flops", sc::kDay, xd::SeriesAgg::kMax);
  for (std::size_t i = 0; i < mean.v.size(); ++i) {
    EXPECT_GE(mx.v[i], mean.v[i] - 1e-12);
  }
}

TEST(Timeseries, CpuHoursSplit) {
  const auto& run = small_ranger_run();
  const auto rep = xd::cpu_hours_report(run.result.series, sc::kDay);
  ASSERT_EQ(rep.t.size(), 8u);
  // Total core-hours per day bounded by cores * 24h.
  const double cap =
      static_cast<double>(run.spec.node_count * run.spec.node.cores()) * 24.0;
  double user_total = 0, idle_total = 0;
  for (std::size_t i = 0; i < rep.t.size(); ++i) {
    const double total = rep.user_core_h[i] + rep.idle_core_h[i] + rep.system_core_h[i];
    EXPECT_LE(total, cap * 1.02);
    EXPECT_GT(total, 0.0);
    user_total += rep.user_core_h[i];
    idle_total += rep.idle_core_h[i];
  }
  // Figure 7b shape: user core-hours dominate idle over the period (the
  // per-day split fluctuates at small scale).
  EXPECT_GT(user_total, idle_total);
}

TEST(Timeseries, LustreReportScratchDominates) {
  const auto& run = small_ranger_run();
  const auto rep = xd::lustre_report(run.result.series, sc::kDay);
  double scratch = 0, work = 0;
  for (std::size_t i = 0; i < rep.t.size(); ++i) {
    scratch += rep.scratch_mb_s[i];
    work += rep.work_mb_s[i];
  }
  EXPECT_GT(scratch, work);  // Figure 7c shape
}

TEST(Timeseries, ScienceMemoryReport) {
  const auto& run = small_ranger_run();
  const auto rep = xd::science_memory_report(run.result.jobs, run.spec.node.cores(), 0,
                                             run.span, sc::kDay);
  EXPECT_GE(rep.sciences.size(), 3u);
  ASSERT_EQ(rep.t.size(), 8u);
  for (std::size_t s = 0; s < rep.sciences.size(); ++s) {
    for (std::size_t b = 0; b < rep.t.size(); ++b) {
      EXPECT_GE(rep.mem_gb_per_core[s][b], 0.0);
      EXPECT_LE(rep.mem_gb_per_core[s][b], run.spec.node.mem_gb);
    }
  }
}

// --- advisor ----------------------------------------------------------------

TEST(Advisor, CurrentUsageNormalized) {
  const auto& run = small_ranger_run();
  const auto cur = xd::current_usage_norm(run.result.series, run.result.series.buckets / 2,
                                          etl::key_metric_names());
  for (const auto& [m, v] : cur) {
    EXPECT_GE(v, 0.0) << m;
    EXPECT_LE(v, 1.0) << m;
  }
  EXPECT_THROW((void)xd::current_usage_norm(run.result.series, 1u << 30,
                                            etl::key_metric_names()),
               supremm::InvalidArgument);
}

TEST(Advisor, IoJobPreferredWhenIoFree) {
  // Hand-build a current state with saturated CPU but idle filesystem; an
  // IO-heavy candidate must outrank a compute-heavy one.
  std::map<std::string, double> current = {
      {"cpu_flops", 1.0}, {"io_scratch_write", 0.0}, {"net_ib_tx", 0.5}};
  xd::QueueCandidate compute;
  compute.id = 1;
  compute.predicted_norm = {{"cpu_flops", 2.0}, {"io_scratch_write", 0.1}, {"net_ib_tx", 1.0}};
  xd::QueueCandidate io;
  io.id = 2;
  io.predicted_norm = {{"cpu_flops", 0.1}, {"io_scratch_write", 2.5}, {"net_ib_tx", 0.5}};
  const std::vector<xd::QueueCandidate> cands = {compute, io};
  const auto ranked = xd::rank_candidates(current, cands);
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].candidate.id, 2);  // the paper's "add high I/O jobs" case
}

TEST(Advisor, IdlePenalized) {
  std::map<std::string, double> current = {{"cpu_idle", 0.2}, {"cpu_flops", 0.2}};
  xd::QueueCandidate good;
  good.id = 1;
  good.predicted_norm = {{"cpu_idle", 0.2}, {"cpu_flops", 1.0}};
  xd::QueueCandidate waster;
  waster.id = 2;
  waster.predicted_norm = {{"cpu_idle", 6.0}, {"cpu_flops", 1.0}};
  const std::vector<xd::QueueCandidate> cands = {good, waster};
  const auto ranked = xd::rank_candidates(current, cands);
  EXPECT_EQ(ranked[0].candidate.id, 1);
}

TEST(Advisor, PredictFromHistory) {
  const auto& run = small_ranger_run();
  const xd::ProfileAnalyzer an(run.result.jobs);
  const auto c = xd::predict_candidate(an, 99, "whoever", "NAMD");
  EXPECT_EQ(c.predicted_norm.size(), 8u);
  EXPECT_GT(c.predicted_norm.at("net_ib_tx"), 0.0);
}

// --- report book ------------------------------------------------------------

TEST(Reports, NamesForEveryStakeholder) {
  for (std::size_t i = 0; i < xd::kStakeholderCount; ++i) {
    const auto s = static_cast<xd::Stakeholder>(i);
    EXPECT_FALSE(std::string(xd::stakeholder_name(s)).empty());
    EXPECT_GE(xd::report_names(s).size(), 3u);
  }
}

TEST(Reports, WriteReportsForAllStakeholders) {
  const auto& run = small_ranger_run();
  xd::DataContext ctx;
  ctx.cluster = run.spec.name;
  ctx.jobs = run.result.jobs;
  ctx.series = &run.result.series;
  ctx.cores_per_node = run.spec.node.cores();
  ctx.node_mem_gb = run.spec.node.mem_gb;
  ctx.peak_tflops = run.spec.peak_tflops();
  for (std::size_t i = 0; i < xd::kStakeholderCount; ++i) {
    std::ostringstream os;
    const std::size_t n = xd::write_reports(ctx, static_cast<xd::Stakeholder>(i), os);
    EXPECT_GE(n, 2u) << xd::stakeholder_name(static_cast<xd::Stakeholder>(i));
    EXPECT_GT(os.str().size(), 500u);
  }
}

TEST(Reports, RenderersProduceTables) {
  const auto& run = small_ranger_run();
  const xd::ProfileAnalyzer an(run.result.jobs);
  const auto profiles = an.top_profiles(xd::GroupBy::kUser, 3);
  EXPECT_GT(xd::render_profile(profiles[0]).row_count(), 0u);
  EXPECT_EQ(xd::render_profile_comparison(profiles, an.metrics()).row_count(), 8u);
  const auto rep = xd::persistence_analysis(run.result.series);
  EXPECT_EQ(xd::render_persistence(rep).row_count(), 6u);  // 5 offsets + fit row
  const auto users = xd::user_efficiency(run.result.jobs);
  EXPECT_GT(xd::render_efficiency(users, 0.9, 10).row_count(), 0u);
}
