// Unit tests for the side-channel data sources: accounting logs, Lariat
// records and the rationalized syslog.
#include <gtest/gtest.h>

#include <memory>

#include "accounting/accounting.h"
#include "common/error.h"
#include "facility/scheduler.h"
#include "facility/users.h"
#include "facility/workload.h"
#include "lariat/lariat.h"
#include "loglib/loglib.h"

namespace fa = supremm::facility;
namespace ac = supremm::accounting;
namespace la = supremm::lariat;
namespace lg = supremm::loglib;
namespace sc = supremm::common;

namespace {

struct SideChannelWorld {
  fa::ClusterSpec spec;
  std::vector<fa::AppSignature> cat;
  std::unique_ptr<fa::UserPopulation> pop;
  std::vector<fa::JobExecution> execs;

  SideChannelWorld() {
    spec = fa::scaled(fa::ranger(), 0.01);
    cat = fa::standard_catalogue();
    pop = std::make_unique<fa::UserPopulation>(fa::UserPopulation::generate(spec, cat, 77));
    fa::WorkloadConfig cfg;
    cfg.start = 0;
    cfg.span = 3 * sc::kDay;
    cfg.seed = 77;
    auto reqs = fa::generate_workload(spec, cat, *pop, cfg);
    execs = fa::Scheduler::run(spec, std::move(reqs), {});
  }
};

const SideChannelWorld& world() {
  static const SideChannelWorld w;
  return w;
}

}  // namespace

// --- accounting -----------------------------------------------------------

TEST(Accounting, SerializeParseRoundTrip) {
  ac::AccountingRecord r;
  r.queue = "normal";
  r.hostname = "ranger-c0003";
  r.owner = "user0007";
  r.jobname = "job42";
  r.job_id = 42;
  r.account = "TG-ABC123";
  r.submit = 100;
  r.start = 200;
  r.end = 5600;
  r.exit_status = 1;
  r.slots = 64;
  r.nodes = 4;
  const auto back = ac::parse(ac::serialize(r));
  EXPECT_EQ(back.owner, r.owner);
  EXPECT_EQ(back.job_id, 42);
  EXPECT_EQ(back.account, "TG-ABC123");
  EXPECT_EQ(back.submit, 100);
  EXPECT_EQ(back.start, 200);
  EXPECT_EQ(back.end, 5600);
  EXPECT_EQ(back.wallclock(), 5400);
  EXPECT_EQ(back.exit_status, 1);
  EXPECT_EQ(back.slots, 64u);
  EXPECT_EQ(back.nodes, 4u);
}

TEST(Accounting, ParseRejectsMalformed) {
  EXPECT_THROW((void)ac::parse("too:few:fields"), supremm::ParseError);
  // Wallclock consistency check.
  ac::AccountingRecord r;
  r.start = 0;
  r.end = 100;
  std::string line = ac::serialize(r);
  line.replace(line.rfind(":100:"), 5, ":999:");
  EXPECT_THROW((void)ac::parse(line), supremm::ParseError);
}

TEST(Accounting, LogRoundTrip) {
  const auto& w = world();
  const auto recs = ac::from_executions(w.spec, *w.pop, w.execs);
  const auto back = ac::parse_log(ac::serialize_log(recs));
  ASSERT_EQ(back.size(), recs.size());
  for (std::size_t i = 0; i < recs.size(); ++i) {
    EXPECT_EQ(back[i].job_id, recs[i].job_id);
    EXPECT_EQ(back[i].owner, recs[i].owner);
  }
}

TEST(Accounting, FromExecutionsFields) {
  const auto& w = world();
  const auto recs = ac::from_executions(w.spec, *w.pop, w.execs);
  ASSERT_EQ(recs.size(), w.execs.size());
  for (std::size_t i = 0; i < recs.size(); ++i) {
    const auto& e = w.execs[i];
    const auto& r = recs[i];
    EXPECT_EQ(r.job_id, e.req.id);
    EXPECT_EQ(r.nodes, e.node_ids.size());
    EXPECT_EQ(r.slots, e.node_ids.size() * w.spec.node.cores());
    EXPECT_EQ(r.owner, w.pop->user(e.req.user).name);
    EXPECT_EQ(r.submit, e.req.submit);
    if (e.exit == fa::ExitKind::kFailed) {
      EXPECT_EQ(r.exit_status, 1);
    }
    if (e.exit == fa::ExitKind::kOk) {
      EXPECT_EQ(r.exit_status, 0);
      EXPECT_EQ(r.failed, 0);
    }
  }
}

// --- lariat ---------------------------------------------------------------

TEST(Lariat, SerializeParseRoundTrip) {
  la::LariatRecord r;
  r.job_id = 9;
  r.user = "user0002";
  r.exe = "namd2";
  r.nodes = 8;
  r.cores = 128;
  r.libs = {"libmpi.so.1", "libfftw3.so.3"};
  r.workdir = "/scratch/user0002/run";
  r.start = 777;
  const auto back = la::parse(la::serialize(r));
  EXPECT_EQ(back.job_id, 9);
  EXPECT_EQ(back.exe, "namd2");
  EXPECT_EQ(back.libs, r.libs);
  EXPECT_EQ(back.workdir, r.workdir);
  EXPECT_EQ(back.start, 777);
}

TEST(Lariat, ParseRejectsMalformed) {
  EXPECT_THROW((void)la::parse("user=x exe=y"), supremm::ParseError);  // no jobid
  EXPECT_THROW((void)la::parse("jobid=1 bogus"), supremm::ParseError);
  EXPECT_THROW((void)la::parse("jobid=1 unknownkey=3"), supremm::ParseError);
}

TEST(Lariat, ExeMappingRoundTrips) {
  const auto cat = fa::standard_catalogue();
  for (const auto& app : cat) {
    const std::string exe = la::exe_for_app(app.name);
    EXPECT_FALSE(exe.empty());
    EXPECT_EQ(la::app_for_exe(cat, exe), app.name) << exe;
  }
  EXPECT_EQ(la::app_for_exe(cat, "unknown_binary"), "");
}

TEST(Lariat, LibsPerAppFamily) {
  EXPECT_NE(std::find(la::libs_for_app("NAMD").begin(), la::libs_for_app("NAMD").end(),
                      "libfftw3.so.3"),
            la::libs_for_app("NAMD").end());
  for (const auto& app : fa::standard_catalogue()) {
    const auto libs = la::libs_for_app(app.name);
    EXPECT_GE(libs.size(), 3u);  // always mpi + libc + libm
  }
}

TEST(Lariat, FromExecutionsAndIndex) {
  const auto& w = world();
  const auto recs = la::from_executions(w.spec, w.cat, *w.pop, w.execs);
  ASSERT_EQ(recs.size(), w.execs.size());
  const la::LariatIndex idx(recs);
  for (const auto& e : w.execs) {
    const auto* r = idx.find(e.req.id);
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->exe, la::exe_for_app(w.cat[e.req.app].name));
    EXPECT_EQ(r->nodes, e.node_ids.size());
  }
  EXPECT_EQ(idx.find(999999), nullptr);
}

TEST(Lariat, LogRoundTrip) {
  const auto& w = world();
  const auto recs = la::from_executions(w.spec, w.cat, *w.pop, w.execs);
  const auto back = la::parse_log(la::serialize_log(recs));
  ASSERT_EQ(back.size(), recs.size());
  EXPECT_EQ(back.front().exe, recs.front().exe);
}

// --- loglib -----------------------------------------------------------------

TEST(Loglib, SeverityRoundTrip) {
  for (const auto s : {lg::Severity::kInfo, lg::Severity::kWarning, lg::Severity::kError,
                       lg::Severity::kCritical}) {
    EXPECT_EQ(lg::severity_from_name(lg::severity_name(s)), s);
  }
  EXPECT_THROW((void)lg::severity_from_name("LOUD"), supremm::ParseError);
}

TEST(Loglib, RationalizedSerializeParseRoundTrip) {
  lg::RationalizedRecord r;
  r.time = 12345;
  r.host = "ranger-c0001";
  r.job_id = 42;
  r.facility = "kern";
  r.severity = lg::Severity::kCritical;
  r.code = "OOM_KILL";
  r.message = "kernel: Out of memory: Kill process 999 (a.out)";
  const auto back = lg::parse(lg::serialize(r));
  EXPECT_EQ(back.time, r.time);
  EXPECT_EQ(back.host, r.host);
  EXPECT_EQ(back.job_id, 42);
  EXPECT_EQ(back.facility, "kern");
  EXPECT_EQ(back.severity, lg::Severity::kCritical);
  EXPECT_EQ(back.code, "OOM_KILL");
  EXPECT_EQ(back.message, r.message);
}

TEST(Loglib, ParseRejectsMalformed) {
  EXPECT_THROW((void)lg::parse("1 host short"), supremm::ParseError);
  EXPECT_THROW((void)lg::parse("1 host xjob=1 fac=kern sev=INFO code=X msg"),
               supremm::ParseError);
}

TEST(Loglib, RationalizePatterns) {
  const auto& w = world();
  const lg::JobResolver resolver(w.spec, w.execs);
  const struct {
    const char* text;
    const char* code;
    lg::Severity sev;
    const char* fac;
  } cases[] = {
      {"kernel: Out of memory: Kill process 4521 (pmemd.MPI) score 912 or sacrifice child",
       "OOM_KILL", lg::Severity::kCritical, "kern"},
      {"kernel: BUG: soft lockup - CPU#3 stuck for 67s! [namd2:3412]", "SOFT_LOCKUP",
       lg::Severity::kError, "kern"},
      {"LustreError: 11-0: scratch-OST0007-osc: ost_write operation failed with -122",
       "LUSTRE_ERR", lg::Severity::kError, "lustre"},
      {"mce: [Hardware Error]: Machine check events logged", "MCE",
       lg::Severity::kWarning, "mce"},
      {"sge_execd[2214]: starting job 1234", "JOB_START", lg::Severity::kInfo, "sched"},
      {"sge_execd[2214]: job 1234 exited with status 0", "JOB_EXIT", lg::Severity::kInfo,
       "sched"},
      {"systemd: something mundane happened", "UNKNOWN", lg::Severity::kInfo, "other"},
  };
  for (const auto& c : cases) {
    const auto r = lg::rationalize({100, "ranger-c0000", c.text}, resolver);
    EXPECT_EQ(r.code, c.code) << c.text;
    EXPECT_EQ(r.severity, c.sev) << c.text;
    EXPECT_EQ(r.facility, c.fac) << c.text;
    EXPECT_EQ(r.message, c.text);
  }
}

TEST(Loglib, JobResolverTagsJobs) {
  const auto& w = world();
  const lg::JobResolver resolver(w.spec, w.execs);
  ASSERT_FALSE(w.execs.empty());
  const auto& e = w.execs.front();
  const std::string host = fa::node_hostname(w.spec, e.node_ids[0]);
  EXPECT_EQ(resolver.job_at(host, e.start), e.req.id);
  EXPECT_EQ(resolver.job_at(host, e.end), e.req.id);  // end instant included
  EXPECT_EQ(resolver.job_at("no-such-host", e.start), 0);
}

TEST(Loglib, GeneratedStreamIsSortedAndTagged) {
  const auto& w = world();
  const auto lines = lg::generate_syslog(w.spec, w.cat, w.execs, 5);
  ASSERT_GE(lines.size(), 2 * w.execs.size());  // start+exit per job at least
  for (std::size_t i = 1; i < lines.size(); ++i) {
    EXPECT_LE(lines[i - 1].time, lines[i].time);
  }
  const lg::JobResolver resolver(w.spec, w.execs);
  std::size_t job_tagged = 0, starts = 0, exits = 0;
  for (const auto& l : lines) {
    const auto r = lg::rationalize(l, resolver);
    if (r.job_id != 0) ++job_tagged;
    if (r.code == "JOB_START") ++starts;
    if (r.code == "JOB_EXIT") ++exits;
  }
  EXPECT_EQ(starts, w.execs.size());
  EXPECT_EQ(exits, w.execs.size());
  EXPECT_GE(job_tagged, 2 * w.execs.size());
}

TEST(Loglib, OomEmittedForMemoryHeavyFailures) {
  // Construct a failing, memory-heavy execution and check for its OOM line.
  auto spec = fa::scaled(fa::ranger(), 0.01);
  const auto cat = fa::standard_catalogue();
  fa::JobExecution e;
  e.req.id = 1;
  e.req.app = fa::app_index(cat, "QCHEM");
  e.req.behavior.mem_gb = 31.0;  // near the 32 GB capacity
  e.start = 0;
  e.end = 3600;
  e.node_ids = {0, 1};
  e.exit = fa::ExitKind::kFailed;
  const auto lines = lg::generate_syslog(spec, cat, {e}, 5);
  bool saw_oom = false;
  for (const auto& l : lines) {
    if (l.text.find("Out of memory") != std::string::npos) saw_oom = true;
  }
  EXPECT_TRUE(saw_oom);
}
