// Unit tests for the facility simulator: hardware presets, the application
// catalogue, the user population, workload generation, the EASY-backfill
// scheduler, deterministic noise and the counter-integration engine.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/error.h"
#include "facility/apps.h"
#include "facility/engine.h"
#include "facility/hardware.h"
#include "facility/noise.h"
#include "facility/scheduler.h"
#include "facility/users.h"
#include "facility/workload.h"

namespace fa = supremm::facility;
namespace sc = supremm::common;

// --- hardware ----------------------------------------------------------

TEST(Hardware, RangerPresetMatchesPaper) {
  const auto r = fa::ranger();
  EXPECT_EQ(r.name, "ranger");
  EXPECT_EQ(r.node_count, 3936u);            // §4.1
  EXPECT_EQ(r.node.cores(), 16u);            // four quad-core Opterons
  EXPECT_DOUBLE_EQ(r.node.mem_gb, 32.0);
  EXPECT_EQ(r.node.arch, supremm::procsim::Arch::kAmd10h);
  EXPECT_NEAR(r.peak_tflops(), 579.0, 1.0);  // benchmarked peak
  EXPECT_NEAR(r.mean_job_minutes, 549.0, 1e-9);
}

TEST(Hardware, Lonestar4PresetMatchesPaper) {
  const auto l = fa::lonestar4();
  EXPECT_EQ(l.node_count, 1088u);
  EXPECT_EQ(l.node.cores(), 12u);  // two hexa-core Xeon 5680
  EXPECT_DOUBLE_EQ(l.node.mem_gb, 24.0);
  EXPECT_DOUBLE_EQ(l.node.clock_ghz, 3.33);
  EXPECT_EQ(l.node.arch, supremm::procsim::Arch::kIntelWestmere);
  EXPECT_TRUE(l.has_nfs);
  EXPECT_NEAR(l.mean_job_minutes, 446.0, 1e-9);
  EXPECT_GT(l.target_idle_fraction, fa::ranger().target_idle_fraction);
}

TEST(Hardware, FilesystemsIncludeScratchAndWork) {
  for (const auto& spec : {fa::ranger(), fa::lonestar4()}) {
    std::set<std::string> names;
    for (const auto& fs : spec.lustre_filesystems) names.insert(fs.name);
    EXPECT_TRUE(names.count("scratch")) << spec.name;
    EXPECT_TRUE(names.count("work")) << spec.name;
  }
  // §4.2: work is non-purged with a 200 GB quota; scratch purged, huge.
  for (const auto& fs : fa::ranger().lustre_filesystems) {
    if (fs.name == "work") {
      EXPECT_FALSE(fs.purged);
      EXPECT_DOUBLE_EQ(fs.quota_gb, 200.0);
    }
    if (fs.name == "scratch") {
      EXPECT_TRUE(fs.purged);
      EXPECT_GT(fs.quota_gb, 10000.0);
    }
  }
}

TEST(Hardware, ScaledPreservesCalibration) {
  const auto s = fa::scaled(fa::ranger(), 0.1);
  EXPECT_NEAR(static_cast<double>(s.node_count), 394.0, 1.0);
  EXPECT_EQ(s.user_count, 200u);
  EXPECT_DOUBLE_EQ(s.mean_job_minutes, 549.0);
  EXPECT_DOUBLE_EQ(s.node.mem_gb, 32.0);
  EXPECT_THROW((void)fa::scaled(fa::ranger(), 0.0), supremm::InvalidArgument);
  EXPECT_THROW((void)fa::scaled(fa::ranger(), 1.5), supremm::InvalidArgument);
}

TEST(Hardware, Hostnames) {
  const auto s = fa::scaled(fa::ranger(), 0.01);
  EXPECT_EQ(fa::node_hostname(s, 0), "ranger-c0000");
  EXPECT_EQ(fa::node_hostname(s, 12), "ranger-c0012");
}

// --- apps --------------------------------------------------------------

TEST(Apps, CatalogueContainsPaperCodes) {
  const auto cat = fa::standard_catalogue();
  EXPECT_GE(cat.size(), 10u);
  for (const char* name : {"NAMD", "AMBER", "GROMACS"}) {
    EXPECT_NO_THROW((void)fa::app_index(cat, name)) << name;
  }
  EXPECT_THROW((void)fa::app_index(cat, "DOOM"), supremm::NotFoundError);
}

TEST(Apps, ScienceNamesRoundTrip) {
  for (std::size_t i = 0; i < fa::kScienceCount; ++i) {
    const auto s = static_cast<fa::Science>(i);
    EXPECT_EQ(fa::science_from_name(fa::science_name(s)), s);
  }
  EXPECT_THROW((void)fa::science_from_name("Astrology"), supremm::NotFoundError);
}

TEST(Apps, AmberLessEfficientThanNamdAndGromacs) {
  // Paper Figure 3 conclusion; must hold at the signature level.
  const auto cat = fa::standard_catalogue();
  const auto& namd = cat[fa::app_index(cat, "NAMD")];
  const auto& amber = cat[fa::app_index(cat, "AMBER")];
  const auto& gromacs = cat[fa::app_index(cat, "GROMACS")];
  EXPECT_GT(amber.idle_frac.mean, namd.idle_frac.mean * 2);
  EXPECT_GT(amber.idle_frac.mean, gromacs.idle_frac.mean * 2);
}

TEST(Apps, NamdSimilarAcrossClustersAmberAndGromacsDiffer) {
  const auto cat = fa::standard_catalogue();
  EXPECT_EQ(cat[fa::app_index(cat, "NAMD")].adjust_for("lonestar4"), nullptr);
  EXPECT_NE(cat[fa::app_index(cat, "AMBER")].adjust_for("lonestar4"), nullptr);
  EXPECT_NE(cat[fa::app_index(cat, "GROMACS")].adjust_for("lonestar4"), nullptr);
}

TEST(Apps, LevelDrawMatchesMoments) {
  const fa::Level lvl{10.0, 0.5};
  sc::RngStream rng(1, 1);
  double sum = 0, sum2 = 0;
  constexpr int n = 40000;
  for (int i = 0; i < n; ++i) {
    const double x = lvl.draw(rng);
    EXPECT_GT(x, 0.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 10.0, 0.15);
  EXPECT_NEAR(std::sqrt(sum2 / n - mean * mean) / mean, 0.5, 0.03);
}

TEST(Apps, LevelDegenerateCases) {
  sc::RngStream rng(1, 2);
  EXPECT_DOUBLE_EQ((fa::Level{0.0, 0.5}.draw(rng)), 0.0);
  EXPECT_DOUBLE_EQ((fa::Level{7.0, 0.0}.draw(rng)), 7.0);
}

TEST(Apps, RealizeClampsIdleAndMemory) {
  const auto cat = fa::standard_catalogue();
  const auto& undersub = cat[fa::app_index(cat, "UNDERSUB")];
  for (int i = 0; i < 200; ++i) {
    sc::RngStream rng(2, static_cast<std::uint64_t>(i));
    const auto b = fa::realize(undersub, "ranger", 32.0, rng);
    EXPECT_LE(b.idle_frac, 0.98);
    EXPECT_GE(b.idle_frac, 0.0);
    EXPECT_LE(b.mem_gb, 32.0 * 0.98 + 1e-9);
    // An idle core can't be retiring peak FLOPS.
    EXPECT_LE(b.flops_frac, (1.0 - b.idle_frac) * 0.40 + 1e-12);
  }
}

TEST(Apps, RealizeAppliesClusterAdjust) {
  const auto cat = fa::standard_catalogue();
  const auto& amber = cat[fa::app_index(cat, "AMBER")];
  double ranger_idle = 0, ls4_idle = 0;
  constexpr int n = 3000;
  for (int i = 0; i < n; ++i) {
    sc::RngStream r1(3, static_cast<std::uint64_t>(i));
    sc::RngStream r2(3, static_cast<std::uint64_t>(i));
    ranger_idle += fa::realize(amber, "ranger", 32.0, r1).idle_frac;
    ls4_idle += fa::realize(amber, "lonestar4", 24.0, r2).idle_frac;
  }
  // AMBER's Lonestar4 adjust lowers idle (idle_mult 0.80 vs 1.10).
  EXPECT_LT(ls4_idle, ranger_idle);
}

// --- users -------------------------------------------------------------

TEST(Users, GeneratePopulation) {
  const auto spec = fa::scaled(fa::ranger(), 0.02);
  const auto cat = fa::standard_catalogue();
  const auto pop = fa::UserPopulation::generate(spec, cat, 7);
  EXPECT_EQ(pop.size(), spec.user_count);
  EXPECT_EQ(pop.activity_weights().size(), pop.size());
  for (const auto& u : pop.users()) {
    EXPECT_FALSE(u.name.empty());
    EXPECT_FALSE(u.app_ids.empty());
    EXPECT_EQ(u.app_ids.size(), u.app_weights.size());
    for (const auto a : u.app_ids) EXPECT_LT(a, cat.size());
  }
}

TEST(Users, Deterministic) {
  const auto spec = fa::scaled(fa::ranger(), 0.02);
  const auto cat = fa::standard_catalogue();
  const auto a = fa::UserPopulation::generate(spec, cat, 7);
  const auto b = fa::UserPopulation::generate(spec, cat, 7);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.user(i).name, b.user(i).name);
    EXPECT_EQ(a.user(i).science, b.user(i).science);
    EXPECT_EQ(a.user(i).app_ids, b.user(i).app_ids);
  }
}

TEST(Users, ActivityIsHeavyTailed) {
  const auto spec = fa::scaled(fa::ranger(), 0.05);
  const auto pop = fa::UserPopulation::generate(spec, fa::standard_catalogue(), 7);
  const auto& w = pop.activity_weights();
  double top5 = 0, total = 0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    total += w[i];
    if (i < 5) top5 += w[i];
  }
  EXPECT_GT(top5 / total, 0.2);  // a handful of users dominate
}

TEST(Users, OutlierRunsUndersubscribed) {
  const auto spec = fa::scaled(fa::ranger(), 0.02);
  const auto cat = fa::standard_catalogue();
  const auto pop = fa::UserPopulation::generate(spec, cat, 7);
  const auto& o = pop.user(pop.outlier_user());
  ASSERT_EQ(o.app_ids.size(), 1u);
  EXPECT_EQ(cat[o.app_ids[0]].name, "UNDERSUB");
  EXPECT_LT(pop.outlier_user(), 10u);  // a heavy user
}

TEST(Users, IndexOf) {
  const auto spec = fa::scaled(fa::ranger(), 0.01);
  const auto pop = fa::UserPopulation::generate(spec, fa::standard_catalogue(), 7);
  EXPECT_EQ(pop.index_of(pop.user(3).name), 3u);
  EXPECT_THROW((void)pop.index_of("nobody"), supremm::NotFoundError);
}

// --- workload ----------------------------------------------------------

class WorkloadFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    spec_ = fa::scaled(fa::ranger(), 0.02);
    cat_ = fa::standard_catalogue();
    pop_ = std::make_unique<fa::UserPopulation>(
        fa::UserPopulation::generate(spec_, cat_, 99));
    fa::WorkloadConfig cfg;
    cfg.start = 0;
    cfg.span = 10 * sc::kDay;
    cfg.seed = 99;
    reqs_ = fa::generate_workload(spec_, cat_, *pop_, cfg);
  }
  fa::ClusterSpec spec_;
  std::vector<fa::AppSignature> cat_;
  std::unique_ptr<fa::UserPopulation> pop_;
  std::vector<fa::JobRequest> reqs_;
};

TEST_F(WorkloadFixture, SubmissionsSortedAndInRange) {
  ASSERT_FALSE(reqs_.empty());
  for (std::size_t i = 1; i < reqs_.size(); ++i) {
    EXPECT_GE(reqs_[i].submit, reqs_[i - 1].submit);
  }
  EXPECT_GE(reqs_.front().submit, 0);
  EXPECT_LT(reqs_.back().submit, 10 * sc::kDay);
}

TEST_F(WorkloadFixture, JobIdsUniqueAndPositive) {
  std::set<fa::JobId> ids;
  for (const auto& r : reqs_) {
    EXPECT_GT(r.id, 0);
    EXPECT_TRUE(ids.insert(r.id).second);
  }
}

TEST_F(WorkloadFixture, GeometryWithinBounds) {
  for (const auto& r : reqs_) {
    EXPECT_GE(r.nodes, 1u);
    EXPECT_LE(r.nodes, spec_.node_count);
    EXPECT_GE(r.duration, 2 * sc::kMinute);
    EXPECT_LT(r.user, pop_->size());
    EXPECT_LT(r.app, cat_.size());
  }
}

TEST_F(WorkloadFixture, OfferedLoadTracksUtilizationTarget) {
  double node_seconds = 0;
  for (const auto& r : reqs_) {
    node_seconds += static_cast<double>(r.nodes) * static_cast<double>(r.duration);
  }
  const double offered =
      node_seconds / (10.0 * sc::kDay) / static_cast<double>(spec_.node_count);
  EXPECT_NEAR(offered, spec_.utilization_target, 0.2);
}

TEST_F(WorkloadFixture, WeightedDurationNearCalibration) {
  // Node-hour weighted mean job length should approach 549 min (±35%).
  double wsum = 0, w = 0;
  for (const auto& r : reqs_) {
    const double weight = static_cast<double>(r.nodes) * static_cast<double>(r.duration);
    wsum += weight * sc::to_minutes(r.duration);
    w += weight;
  }
  EXPECT_NEAR(wsum / w, 549.0, 190.0);
}

TEST_F(WorkloadFixture, Deterministic) {
  fa::WorkloadConfig cfg;
  cfg.start = 0;
  cfg.span = 10 * sc::kDay;
  cfg.seed = 99;
  const auto again = fa::generate_workload(spec_, cat_, *pop_, cfg);
  ASSERT_EQ(again.size(), reqs_.size());
  for (std::size_t i = 0; i < reqs_.size(); ++i) {
    EXPECT_EQ(again[i].id, reqs_[i].id);
    EXPECT_EQ(again[i].submit, reqs_[i].submit);
    EXPECT_EQ(again[i].nodes, reqs_[i].nodes);
    EXPECT_DOUBLE_EQ(again[i].behavior.idle_frac, reqs_[i].behavior.idle_frac);
  }
}

TEST(Workload, IntensityModulation) {
  // Weekday afternoon busier than weekend night.
  const sc::TimePoint weekday_afternoon = 1 * sc::kDay + 15 * sc::kHour;
  const sc::TimePoint weekend_night = 5 * sc::kDay + 4 * sc::kHour;
  EXPECT_GT(fa::submission_intensity(weekday_afternoon),
            2.0 * fa::submission_intensity(weekend_night));
}

TEST(Workload, RejectsBadConfig) {
  const auto spec = fa::scaled(fa::ranger(), 0.01);
  const auto cat = fa::standard_catalogue();
  const auto pop = fa::UserPopulation::generate(spec, cat, 1);
  fa::WorkloadConfig cfg;
  cfg.span = 0;
  EXPECT_THROW((void)fa::generate_workload(spec, cat, pop, cfg), supremm::InvalidArgument);
}

// --- scheduler ---------------------------------------------------------

namespace {
fa::JobRequest mkreq(fa::JobId id, std::size_t nodes, sc::Duration dur, sc::TimePoint sub) {
  fa::JobRequest r;
  r.id = id;
  r.nodes = nodes;
  r.duration = dur;
  r.submit = sub;
  return r;
}
}  // namespace

TEST(Scheduler, ImmediateStartWhenFree) {
  auto spec = fa::scaled(fa::ranger(), 0.01);  // 39 nodes
  const auto execs = fa::Scheduler::run(spec, {mkreq(1, 10, 3600, 100)}, {});
  ASSERT_EQ(execs.size(), 1u);
  EXPECT_EQ(execs[0].start, 100);
  EXPECT_EQ(execs[0].end, 3700);
  EXPECT_EQ(execs[0].node_ids.size(), 10u);
  EXPECT_EQ(execs[0].exit, fa::ExitKind::kOk);
}

TEST(Scheduler, QueuesWhenFull) {
  auto spec = fa::scaled(fa::ranger(), 0.01);  // 39 nodes
  const auto execs = fa::Scheduler::run(
      spec, {mkreq(1, 39, 3600, 0), mkreq(2, 20, 600, 10)}, {});
  ASSERT_EQ(execs.size(), 2u);
  const auto& j2 = execs[0].req.id == 2 ? execs[0] : execs[1];
  EXPECT_EQ(j2.start, 3600);  // waits for job 1
}

TEST(Scheduler, BackfillShortJobJumpsQueue) {
  auto spec = fa::scaled(fa::ranger(), 0.01);  // 39 nodes
  // Job 1 occupies 30 nodes for 1h. Job 2 (head) needs all 39 -> waits.
  // Job 3 needs 5 nodes for 10 min: fits now and ends before job 2's shadow.
  const auto execs = fa::Scheduler::run(
      spec, {mkreq(1, 30, 3600, 0), mkreq(2, 39, 3600, 10), mkreq(3, 5, 600, 20)}, {});
  ASSERT_EQ(execs.size(), 3u);
  for (const auto& e : execs) {
    if (e.req.id == 3) {
      EXPECT_EQ(e.start, 20);  // backfilled immediately
    }
    if (e.req.id == 2) {
      EXPECT_EQ(e.start, 3600);  // not delayed by backfill
    }
  }
}

TEST(Scheduler, BackfillDoesNotDelayHead) {
  auto spec = fa::scaled(fa::ranger(), 0.01);  // 39 nodes
  // Job 3 would fit now but runs past the head's shadow time and would steal
  // its nodes: must NOT start before the head.
  const auto execs = fa::Scheduler::run(
      spec, {mkreq(1, 30, 3600, 0), mkreq(2, 39, 3600, 10), mkreq(3, 20, 7200, 20)}, {});
  for (const auto& e : execs) {
    if (e.req.id == 2) {
      EXPECT_EQ(e.start, 3600);
    }
    if (e.req.id == 3) {
      EXPECT_GE(e.start, 3600);
    }
  }
}

TEST(Scheduler, NodesNeverOversubscribed) {
  auto spec = fa::scaled(fa::ranger(), 0.01);
  std::vector<fa::JobRequest> reqs;
  for (int i = 0; i < 200; ++i) {
    reqs.push_back(mkreq(i + 1, 1 + (i * 7) % 20, 600 + (i * 97) % 7200, i * 60));
  }
  const auto execs = fa::Scheduler::run(spec, reqs, {});
  ASSERT_EQ(execs.size(), reqs.size());
  // Check occupancy at every start instant.
  for (const auto& probe : execs) {
    std::size_t busy = fa::busy_nodes_at(execs, probe.start);
    EXPECT_LE(busy, spec.node_count);
  }
  // And node ids never overlap concurrently.
  for (const auto& a : execs) {
    for (const auto& b : execs) {
      if (a.req.id >= b.req.id) continue;
      if (a.start < b.end && b.start < a.end) {
        for (const auto n : a.node_ids) {
          EXPECT_EQ(std::count(b.node_ids.begin(), b.node_ids.end(), n), 0)
              << "jobs " << a.req.id << "/" << b.req.id << " share node " << n;
        }
      }
    }
  }
}

TEST(Scheduler, FailedJobEndsEarly) {
  auto spec = fa::scaled(fa::ranger(), 0.01);
  auto r = mkreq(1, 2, 10000, 0);
  r.will_fail = true;
  const auto execs = fa::Scheduler::run(spec, {r}, {});
  ASSERT_EQ(execs.size(), 1u);
  EXPECT_EQ(execs[0].exit, fa::ExitKind::kFailed);
  EXPECT_LE(execs[0].runtime(), 10000);
  EXPECT_GE(execs[0].runtime(), 60);
}

TEST(Scheduler, MaintenanceKillsRunningJobs) {
  auto spec = fa::scaled(fa::ranger(), 0.01);
  const std::vector<fa::MaintenanceWindow> wins = {{5000, 3600, true}};
  const auto execs =
      fa::Scheduler::run(spec, {mkreq(1, 4, 100000, 0), mkreq(2, 4, 600, 6000)}, wins);
  ASSERT_EQ(execs.size(), 2u);
  for (const auto& e : execs) {
    if (e.req.id == 1) {
      EXPECT_EQ(e.exit, fa::ExitKind::kKilledMaintenance);
      EXPECT_EQ(e.end, 5000);
    }
    if (e.req.id == 2) {
      EXPECT_GE(e.start, 8600);  // submitted during the window, runs after
      EXPECT_EQ(e.exit, fa::ExitKind::kOk);
    }
  }
}

TEST(Scheduler, StandardMaintenanceSortedDisjoint) {
  const auto wins = fa::standard_maintenance(0, 400 * sc::kDay, 5);
  EXPECT_GE(wins.size(), 10u);  // ~11 scheduled + a few unscheduled
  for (std::size_t i = 1; i < wins.size(); ++i) {
    EXPECT_GE(wins[i].start, wins[i - 1].end());
  }
  std::size_t scheduled = 0;
  for (const auto& w : wins) scheduled += w.scheduled ? 1 : 0;
  EXPECT_GE(scheduled, 10u);
}

TEST(Scheduler, NodeHoursAccounting) {
  auto spec = fa::scaled(fa::ranger(), 0.01);
  const auto execs = fa::Scheduler::run(spec, {mkreq(1, 4, 2 * sc::kHour, 0)}, {});
  ASSERT_EQ(execs.size(), 1u);
  EXPECT_DOUBLE_EQ(execs[0].node_hours(), 8.0);
  EXPECT_EQ(execs[0].wait(), 0);
}

// --- noise -------------------------------------------------------------

TEST(Noise, DeterministicAndUnitMean) {
  const double a = fa::gaussian_hash(1, 2, 3, 4);
  EXPECT_DOUBLE_EQ(a, fa::gaussian_hash(1, 2, 3, 4));
  EXPECT_NE(a, fa::gaussian_hash(1, 2, 3, 5));

  double sum = 0;
  constexpr int n = 200000;
  for (int i = 0; i < n; ++i) {
    sum += fa::lognormal_mod(0.5, 9, 77, fa::MetricTag::kIo, i);
  }
  EXPECT_NEAR(sum / n, 1.0, 0.01);  // mean-one modulation
}

TEST(Noise, SigmaZeroIsIdentity) {
  EXPECT_DOUBLE_EQ(fa::lognormal_mod(0.0, 1, 2, fa::MetricTag::kMem, 3), 1.0);
}

TEST(Noise, BlockOf) {
  EXPECT_EQ(fa::block_of(0, 600), 0);
  EXPECT_EQ(fa::block_of(599, 600), 0);
  EXPECT_EQ(fa::block_of(600, 600), 1);
}

// --- engine ------------------------------------------------------------

class EngineFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    spec_ = fa::scaled(fa::ranger(), 0.005);  // ~20 nodes
    std::vector<fa::JobRequest> reqs = {mkreq(1, 2, 2 * sc::kHour, 600)};
    auto cat = fa::standard_catalogue();
    sc::RngStream rng(5, 5);
    reqs[0].behavior = fa::realize(cat[fa::app_index(cat, "NAMD")], "ranger", 32.0, rng);
    auto execs = fa::Scheduler::run(spec_, reqs, {});
    engine_ = std::make_unique<fa::FacilityEngine>(spec_, std::move(execs),
                                                   std::vector<fa::MaintenanceWindow>{}, 0,
                                                   sc::kDay, 5);
  }
  fa::ClusterSpec spec_;
  std::unique_ptr<fa::FacilityEngine> engine_;
};

TEST_F(EngineFixture, TimelineContiguous) {
  for (std::size_t n = 0; n < engine_->node_count(); ++n) {
    const auto& tl = engine_->timeline(n);
    ASSERT_FALSE(tl.empty());
    EXPECT_EQ(tl.front().start, 0);
    EXPECT_EQ(tl.back().end, sc::kDay);
    for (std::size_t i = 1; i < tl.size(); ++i) {
      EXPECT_EQ(tl[i].start, tl[i - 1].end);
    }
  }
}

TEST_F(EngineFixture, RunningAtMatchesTimeline) {
  const auto& exec = engine_->executions().at(0);
  const std::size_t node = exec.node_ids[0];
  EXPECT_EQ(engine_->running_at(node, exec.start), &engine_->executions()[0]);
  EXPECT_EQ(engine_->running_at(node, exec.end - 1), &engine_->executions()[0]);
  EXPECT_EQ(engine_->running_at(node, exec.end + 10), nullptr);
  EXPECT_EQ(engine_->running_at(node, 0), nullptr);
}

TEST_F(EngineFixture, IdleNodeAccumulatesIdleCs) {
  // Node not in the job's allocation.
  std::size_t idle_node = 0;
  const auto& used = engine_->executions()[0].node_ids;
  while (std::count(used.begin(), used.end(), idle_node) > 0) ++idle_node;
  engine_->advance_node(idle_node, sc::kHour);
  const auto& nc = engine_->counters(idle_node);
  for (const auto& c : nc.cpu) {
    EXPECT_NEAR(static_cast<double>(c.idle), 99.6 * 3600, 500.0);
    EXPECT_EQ(c.user, 0u);
  }
}

TEST_F(EngineFixture, BusyNodeSplitsCpuTime) {
  const auto& exec = engine_->executions()[0];
  const std::size_t node = exec.node_ids[0];
  engine_->advance_node(node, exec.end);
  const auto& nc = engine_->counters(node);
  const auto& c = nc.cpu[0];
  const double total = static_cast<double>(c.user + c.system + c.idle + c.iowait + c.irq);
  // Over the day: 600 s idle prefix + 7200 s job + remainder idle.
  EXPECT_GT(c.user, 0u);
  const double job_s = static_cast<double>(exec.runtime());
  const double busy_frac = static_cast<double>(c.user) / 100.0 / job_s;
  EXPECT_NEAR(busy_frac, 1.0 - exec.req.behavior.idle_frac, 0.15);
  EXPECT_GT(total, 0.0);
}

TEST_F(EngineFixture, FlopsDeliveredWhenProgrammed) {
  const auto& exec = engine_->executions()[0];
  const std::size_t node = exec.node_ids[0];
  auto& nc = engine_->counters(node);
  engine_->advance_node(node, exec.start);
  for (auto& pc : nc.perf) pc.program(0, supremm::procsim::PerfEvent::kFlops);
  engine_->advance_node(node, exec.start + sc::kHour);
  const double flops = static_cast<double>(nc.perf[0].read(0));
  const double expected =
      exec.req.behavior.flops_frac * spec_.node.peak_gflops_per_core * 1e9 * 3600.0;
  EXPECT_NEAR(flops / expected, 1.0, 0.25);  // within jitter
}

TEST_F(EngineFixture, MemoryGaugeTracksBehavior) {
  const auto& exec = engine_->executions()[0];
  const std::size_t node = exec.node_ids[0];
  engine_->advance_node(node, exec.start + sc::kHour);  // past ramp-in
  const auto& nc = engine_->counters(node);
  double used_gb = 0;
  for (const auto& m : nc.mem) used_gb += static_cast<double>(m.mem_used);
  used_gb /= 1024.0 * 1024.0;
  EXPECT_NEAR(used_gb, 1.6 + exec.req.behavior.mem_gb, exec.req.behavior.mem_gb * 0.3 + 0.5);
}

TEST_F(EngineFixture, AdvanceIsMonotonicAndIdempotent) {
  engine_->advance_node(0, 1000);
  const auto snapshot = engine_->counters(0).cpu[0].idle;
  engine_->advance_node(0, 500);  // no-op
  EXPECT_EQ(engine_->counters(0).cpu[0].idle, snapshot);
  EXPECT_EQ(engine_->cursor(0), 1000);
}

TEST_F(EngineFixture, LustreCountersGrowDuringJob) {
  const auto& exec = engine_->executions()[0];
  const std::size_t node = exec.node_ids[0];
  engine_->advance_node(node, exec.end);
  const auto& nc = engine_->counters(node);
  EXPECT_GT(nc.lustre("scratch").write_bytes, 0u);
  EXPECT_GT(nc.ib.tx_bytes, 0u);
  EXPECT_GT(nc.lnet.tx_bytes, 0u);
  // rx correlates with tx.
  EXPECT_NEAR(static_cast<double>(nc.ib.rx_bytes) / static_cast<double>(nc.ib.tx_bytes),
              0.97, 0.01);
}

TEST(Engine, DownSegmentsFreezeCounters) {
  auto spec = fa::scaled(fa::ranger(), 0.005);
  const std::vector<fa::MaintenanceWindow> wins = {{1000, 2000, true}};
  fa::FacilityEngine engine(spec, {}, wins, 0, 5000, 1);
  EXPECT_TRUE(engine.node_up(0, 500));
  EXPECT_FALSE(engine.node_up(0, 1500));
  EXPECT_TRUE(engine.node_up(0, 3500));
  engine.advance_node(0, 5000);
  const auto& c = engine.counters(0).cpu[0];
  // Only the 3000 up-seconds accumulate.
  EXPECT_NEAR(static_cast<double>(c.idle), 99.6 * 3000, 500.0);
}

TEST(Engine, CheckpointPulsesAddScratchWrites) {
  auto spec = fa::scaled(fa::ranger(), 0.005);
  fa::JobRequest r = mkreq(1, 1, 4 * sc::kHour, 0);
  r.behavior.idle_frac = 0.1;
  r.behavior.mem_gb = 2.0;
  r.behavior.checkpoint_period_min = 60.0;
  r.behavior.checkpoint_gb = 1.0;
  auto execs = fa::Scheduler::run(spec, {r}, {});
  fa::FacilityEngine engine(spec, std::move(execs), {}, 0, 5 * sc::kHour, 1);
  const std::size_t node = engine.executions()[0].node_ids[0];
  engine.advance_node(node, 4 * sc::kHour);
  // 4 pulses of 1 GB each (at 1h, 2h, 3h, 4h).
  EXPECT_NEAR(static_cast<double>(engine.counters(node).lustre("scratch").write_bytes),
              4.0e9, 0.5e9);
}

TEST(Engine, RejectsBadHorizon) {
  auto spec = fa::scaled(fa::ranger(), 0.005);
  EXPECT_THROW(fa::FacilityEngine(spec, {}, {}, 100, 100, 1), supremm::InvalidArgument);
}
