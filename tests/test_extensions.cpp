// Tests for the extension modules: LZSS compression (the §4.1 compressed-
// archive claim), the SAR-baseline collection mode, per-job traces, and the
// XDMoD realm / custom-report facade.
#include <gtest/gtest.h>

#include <random>
#include <set>

#include "compress/lzss.h"
#include "sim_fixture.h"

namespace fa = supremm::facility;
namespace ts = supremm::taccstats;
namespace etl = supremm::etl;
namespace xd = supremm::xdmod;
namespace cz = supremm::compress;
namespace sc = supremm::common;
using supremm::testing::small_ranger_run;

// --- lzss -----------------------------------------------------------------

TEST(Lzss, EmptyRoundTrip) {
  const std::string out = cz::compress("");
  EXPECT_EQ(cz::decompress(out), "");
}

TEST(Lzss, ShortRoundTrip) {
  for (const char* s : {"a", "ab", "abc", "hello world", "aaaaaaaaaaaaaaaaaaaa"}) {
    EXPECT_EQ(cz::decompress(cz::compress(s)), s) << s;
  }
}

TEST(Lzss, RepetitiveTextCompressesWell) {
  std::string input;
  for (int i = 0; i < 500; ++i) {
    input += "cpu 0 123456 0 7890 999999 12 3 4\n";
  }
  const std::string comp = cz::compress(input);
  EXPECT_EQ(cz::decompress(comp), input);
  EXPECT_LT(comp.size(), input.size() / 5);  // highly repetitive
}

TEST(Lzss, RandomBytesRoundTrip) {
  std::mt19937 gen(7);
  std::uniform_int_distribution<int> d(0, 255);
  std::string input;
  for (int i = 0; i < 50000; ++i) input.push_back(static_cast<char>(d(gen)));
  const std::string comp = cz::compress(input);
  EXPECT_EQ(cz::decompress(comp), input);
  // Incompressible: bounded expansion.
  EXPECT_LT(comp.size(), input.size() + input.size() / 8 + 16);
}

TEST(Lzss, OverlappingMatches) {
  // Classic RLE-via-LZ case: run of one byte uses self-overlapping copies.
  const std::string input(10000, 'x');
  const std::string comp = cz::compress(input);
  EXPECT_EQ(cz::decompress(comp), input);
  // 16-byte-max matches at distance 1: ~2.25 bytes per 18 input bytes.
  EXPECT_LT(comp.size(), 1500u);
}

TEST(Lzss, RejectsCorruptStreams) {
  EXPECT_THROW((void)cz::decompress("garbage"), supremm::ParseError);
  EXPECT_THROW((void)cz::decompress(""), supremm::ParseError);
  std::string ok = cz::compress("hello hello hello hello");
  ok.resize(ok.size() / 2);  // truncate
  EXPECT_THROW((void)cz::decompress(ok), supremm::ParseError);
}

TEST(Lzss, RawArchiveCompressionRatioNearPaper) {
  // Paper §4.1: 60 GB raw -> 20 GB compressed per month, i.e. ratio ~ 1/3.
  const auto& run = small_ranger_run();
  std::string archive;
  for (std::size_t i = 0; i < std::min<std::size_t>(run.files.size(), 10); ++i) {
    archive += run.files[i].content;
  }
  ASSERT_GT(archive.size(), 100000u);
  const double ratio = cz::compression_ratio(archive);
  EXPECT_LT(ratio, 0.45);  // at least ~2.2x, comparable to gzip's ~3x
  EXPECT_GT(ratio, 0.02);
  // And it round-trips.
  EXPECT_EQ(cz::decompress(cz::compress(archive)), archive);
}

class LzssSizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(LzssSizeSweep, StructuredDataRoundTrip) {
  std::mt19937 gen(GetParam());
  std::uniform_int_distribution<int> v(0, 9);
  std::string input;
  for (int i = 0; i < GetParam() * 1000; ++i) {
    input += "field";
    input.push_back(static_cast<char>('0' + v(gen)));
    input.push_back(v(gen) < 5 ? ' ' : '\n');
  }
  EXPECT_EQ(cz::decompress(cz::compress(input)), input);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LzssSizeSweep, ::testing::Values(1, 4, 16, 64));

// --- SAR mode ---------------------------------------------------------------

TEST(SarMode, NoJobTagsNoPerf) {
  auto spec = fa::scaled(fa::ranger(), 0.005);
  fa::JobRequest r;
  r.id = 1;
  r.nodes = 2;
  r.duration = 4 * sc::kHour;
  r.submit = 0;
  r.behavior.idle_frac = 0.1;
  r.behavior.mem_gb = 4.0;
  auto execs = fa::Scheduler::run(spec, {r}, {});
  fa::FacilityEngine engine(spec, std::move(execs), {}, 0, 6 * sc::kHour, 3);
  ts::AgentConfig cfg;
  cfg.sar_mode = true;
  ts::NodeAgent agent(engine, engine.executions()[0].node_ids[0], cfg);
  const auto out = agent.run();
  std::string all;
  for (const auto& f : out.files) all += f.content;
  const auto parsed = ts::parse_raw(all);
  ASSERT_FALSE(parsed.samples.empty());
  for (const auto& s : parsed.samples) {
    EXPECT_EQ(s.job_id, 0);                                // no job tag
    EXPECT_EQ(s.mark, ts::SampleMark::kPeriodic);          // no begin/end
    EXPECT_EQ(s.find("amd64_pmc"), nullptr);               // no PMC access
    EXPECT_NE(s.find("cpu"), nullptr);                     // system data intact
  }
}

TEST(SarMode, IngestYieldsNoJobsButKeepsSystemSeries) {
  // The §1.2 point: SAR-style data cannot support job/user/app analysis.
  auto spec = fa::scaled(fa::ranger(), 0.005);
  supremm::pipeline::PipelineConfig cfg;
  cfg.spec = spec;
  cfg.span = 2 * sc::kDay;
  cfg.seed = 8;
  cfg.agent.sar_mode = true;
  const auto run = supremm::pipeline::run_pipeline(cfg);
  EXPECT_TRUE(run.result.jobs.empty());  // nothing attributable to jobs
  // But the facility series still carries CPU/memory/io data...
  double up = 0;
  double flops = 0;
  for (std::size_t i = 0; i < run.result.series.buckets; ++i) {
    up += run.result.series.up_nodes[i];
    flops += run.result.series.flops_tf[i];
  }
  EXPECT_GT(up, 0.0);
  // ...except FLOPS, which need the per-job counter programming.
  EXPECT_DOUBLE_EQ(flops, 0.0);
}

// --- job traces -----------------------------------------------------------

TEST(JobTrace, MatchesSummary) {
  const auto& run = small_ranger_run();
  // Pick a job with a decent number of samples.
  const etl::JobSummary* job = nullptr;
  for (const auto& j : run.result.jobs) {
    if (j.samples > 20 && j.flops_valid && (job == nullptr || j.samples > job->samples)) {
      job = &j;
    }
  }
  ASSERT_NE(job, nullptr);
  const auto trace = etl::extract_job_trace(run.files, job->id);
  ASSERT_GE(trace.size(), 5u);

  // Time-weighted trace means should agree with the job summary.
  double idle_w = 0, mem_w = 0, w = 0;
  for (const auto& p : trace) {
    idle_w += p.cpu_idle * p.dt;
    mem_w += p.mem_gb_node * p.dt;
    w += p.dt;
  }
  EXPECT_NEAR(idle_w / w, job->cpu_idle, 0.02);
  EXPECT_NEAR(mem_w / w, job->mem_used_gb, job->mem_used_gb * 0.1 + 0.3);

  // Trace covers the job's runtime.
  EXPECT_GE(trace.front().t + 10 * sc::kMinute, job->start - 10 * sc::kMinute);
  EXPECT_LE(trace.back().t, job->end);
  // Sorted by time, plausible values.
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (i > 0) {
      EXPECT_GT(trace[i].t, trace[i - 1].t);
    }
    EXPECT_GE(trace[i].cpu_idle, 0.0);
    EXPECT_LE(trace[i].cpu_idle, 1.0);
    EXPECT_GE(trace[i].nodes, 1u);
    EXPECT_LE(trace[i].nodes, job->nodes);
  }
}

TEST(JobTrace, UnknownJobIsEmpty) {
  const auto& run = small_ranger_run();
  EXPECT_TRUE(etl::extract_job_trace(run.files, 99999999).empty());
  EXPECT_THROW((void)etl::extract_job_trace(run.files, 1, 0), supremm::InvalidArgument);
}

// --- realm ------------------------------------------------------------------

TEST(Realm, DimensionAndStatisticCatalogues) {
  EXPECT_TRUE(xd::JobsRealm::has_dimension("user"));
  EXPECT_TRUE(xd::JobsRealm::has_dimension("application"));
  EXPECT_TRUE(xd::JobsRealm::has_dimension("none"));
  EXPECT_FALSE(xd::JobsRealm::has_dimension("moon_phase"));
  EXPECT_TRUE(xd::JobsRealm::has_statistic("job_count"));
  EXPECT_TRUE(xd::JobsRealm::has_statistic("avg_cpu_idle"));
  EXPECT_TRUE(xd::JobsRealm::has_statistic("max_mem_used"));
  EXPECT_FALSE(xd::JobsRealm::has_statistic("avg_moon_phase"));
  EXPECT_GE(xd::JobsRealm::statistics().size(), 30u);
}

TEST(Realm, WholeFacilityRow) {
  const auto& run = small_ranger_run();
  const xd::JobsRealm realm(run.result.jobs);
  xd::JobsRealm::ReportSpec spec;
  spec.dimension = "none";
  spec.statistics = {"job_count", "total_node_hours", "avg_cpu_idle"};
  const auto t = realm.report(spec);
  ASSERT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.col("job_count").as_int64(0),
            static_cast<std::int64_t>(run.result.jobs.size()));
  const xd::ProfileAnalyzer an(run.result.jobs);
  EXPECT_NEAR(t.col("avg_cpu_idle").as_double(0), an.facility_means().at("cpu_idle"),
              1e-9);
}

TEST(Realm, GroupByScienceWithSortAndLimit) {
  const auto& run = small_ranger_run();
  const xd::JobsRealm realm(run.result.jobs);
  xd::JobsRealm::ReportSpec spec;
  spec.dimension = "science";
  spec.statistics = {"total_node_hours", "job_count"};
  spec.sort_by = "total_node_hours";
  spec.limit = 3;
  const auto t = realm.report(spec);
  EXPECT_LE(t.rows(), 3u);
  for (std::size_t r = 1; r < t.rows(); ++r) {
    EXPECT_GE(t.col("total_node_hours").as_double(r - 1),
              t.col("total_node_hours").as_double(r));
  }
}

TEST(Realm, FilteredReport) {
  const auto& run = small_ranger_run();
  const xd::JobsRealm realm(run.result.jobs);
  xd::JobsRealm::ReportSpec spec;
  spec.dimension = "user";
  spec.statistics = {"job_count"};
  spec.filter_dimension = "application";
  spec.filter_value = "NAMD";
  const auto t = realm.report(spec);
  std::int64_t total = 0;
  for (std::size_t r = 0; r < t.rows(); ++r) total += t.col("job_count").as_int64(r);
  std::int64_t direct = 0;
  for (const auto& j : run.result.jobs) direct += j.app == "NAMD" ? 1 : 0;
  EXPECT_EQ(total, direct);
}

TEST(Realm, WastedNodeHoursConsistent) {
  const auto& run = small_ranger_run();
  const xd::JobsRealm realm(run.result.jobs);
  xd::JobsRealm::ReportSpec spec;
  spec.dimension = "none";
  spec.statistics = {"total_node_hours", "wasted_node_hours"};
  const auto t = realm.report(spec);
  const double eff =
      1.0 - t.col("wasted_node_hours").as_double(0) / t.col("total_node_hours").as_double(0);
  EXPECT_NEAR(eff, xd::facility_efficiency(run.result.jobs), 1e-9);
}

TEST(Realm, RenderAndErrors) {
  const auto& run = small_ranger_run();
  const xd::JobsRealm realm(run.result.jobs);
  xd::JobsRealm::ReportSpec spec;
  spec.dimension = "application";
  spec.statistics = {"job_count", "avg_cpu_idle", "failure_rate"};
  const auto table = realm.render(spec);
  EXPECT_GT(table.row_count(), 3u);

  xd::JobsRealm::ReportSpec bad;
  bad.dimension = "moon_phase";
  bad.statistics = {"job_count"};
  EXPECT_THROW((void)realm.report(bad), supremm::NotFoundError);
  bad.dimension = "user";
  bad.statistics = {"avg_moon_phase"};
  EXPECT_THROW((void)realm.report(bad), supremm::NotFoundError);
  bad.statistics = {};
  EXPECT_THROW((void)realm.report(bad), supremm::InvalidArgument);
}

// --- NFS subsystem ------------------------------------------------------

TEST(Nfs, CollectedOnlyWhenMounted) {
  namespace ps = supremm::procsim;
  ps::NodeCounters with("a", ps::Arch::kIntelWestmere, 2, 6, 1 << 20);
  with.has_nfs = true;
  with.nfs.rpc_calls = 42;
  ps::NodeCounters without("b", ps::Arch::kAmd10h, 1, 4, 1 << 20);
  const auto ci = ts::standard_collectors(ps::Arch::kIntelWestmere);
  const auto ca = ts::standard_collectors(ps::Arch::kAmd10h);
  for (const auto& rec : ts::collect_all(ci, with)) {
    if (rec.type == "nfs") {
      ASSERT_EQ(rec.rows.size(), 1u);
      EXPECT_EQ(rec.rows[0].values[0], 42u);
    }
  }
  for (const auto& rec : ts::collect_all(ca, without)) {
    if (rec.type == "nfs") {
      EXPECT_TRUE(rec.rows.empty());
    }
  }
}

TEST(Nfs, Lonestar4NodesReportNfsTraffic) {
  const auto run = supremm::testing::make_sim_run(fa::lonestar4(), 0.005, 2, 77);
  bool saw_nfs_rows = false;
  for (const auto& f : run.files) {
    if (f.content.find("\nnfs - ") != std::string::npos) {
      saw_nfs_rows = true;
      break;
    }
  }
  EXPECT_TRUE(saw_nfs_rows);
}
