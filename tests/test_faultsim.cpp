// Round-trip property tests for the fault injector + salvage-mode ingest:
// for every FaultPlan profile, salvage recovers 100% of the undamaged
// samples, the quarantine/repair counters match the injection report
// exactly, and the zero-fault plan reproduces the strict-mode IngestResult
// bit-identically at any thread count. Also covers the ingest config
// validation, ParseError source attribution, the salvage reader's
// quarantine vocabulary, and the data-quality surfacing.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/strings.h"
#include "sim_fixture.h"

namespace etl = supremm::etl;
namespace fs = supremm::faultsim;
namespace sc = supremm::common;
namespace ts = supremm::taccstats;
namespace xd = supremm::xdmod;
using supremm::testing::small_ranger_run;

namespace {

constexpr std::uint64_t kSeed = 20130313;  // arbitrary, fixed

etl::IngestResult run_mode(const std::vector<ts::RawFile>& files,
                           const std::vector<supremm::accounting::AccountingRecord>& acct,
                           const std::vector<supremm::lariat::LariatRecord>& lrt,
                           etl::IngestMode mode, std::size_t threads = 0) {
  const auto& run = small_ranger_run();
  etl::IngestConfig cfg;
  cfg.start = run.start;
  cfg.span = run.span;
  cfg.cluster = run.spec.name;
  cfg.threads = threads;
  cfg.mode = mode;
  const etl::IngestPipeline pipeline(cfg);
  return pipeline.run(files, acct, lrt, run.catalogue,
                      etl::project_science_map(*run.population));
}

/// Copies of the fixture artifacts with a plan applied (the fixture itself
/// must never be mutated - it is shared by every test in this binary).
struct Damaged {
  std::vector<ts::RawFile> files;
  std::vector<supremm::accounting::AccountingRecord> acct;
  std::vector<supremm::lariat::LariatRecord> lrt;
  fs::InjectionReport report;
};

Damaged inject(const fs::FaultPlan& plan) {
  const auto& run = small_ranger_run();
  Damaged d{run.files, run.acct, run.lariat_records, {}};
  d.report = fs::FaultInjector(plan).apply(d.files, d.acct, d.lrt);
  return d;
}

Damaged inject_profile(std::string_view name) {
  return inject(fs::FaultPlan::profile(name, kSeed));
}

/// Salvage ingest of the clean fixture artifacts, computed once.
const etl::IngestResult& clean_salvage() {
  static const etl::IngestResult r =
      run_mode(small_ranger_run().files, small_ranger_run().acct,
               small_ranger_run().lariat_records, etl::IngestMode::kSalvage);
  return r;
}

void expect_same_stats(const etl::IngestStats& a, const etl::IngestStats& b) {
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.files, b.files);
  EXPECT_EQ(a.samples, b.samples);
  EXPECT_EQ(a.pairs, b.pairs);
  EXPECT_EQ(a.gaps_skipped, b.gaps_skipped);
  EXPECT_EQ(a.jobs_seen, b.jobs_seen);
  EXPECT_EQ(a.jobs_excluded, b.jobs_excluded);
  EXPECT_EQ(a.quarantined, b.quarantined);
  EXPECT_EQ(a.duplicates_dropped, b.duplicates_dropped);
  EXPECT_EQ(a.reordered, b.reordered);
  EXPECT_EQ(a.resets_clamped, b.resets_clamped);
  EXPECT_EQ(a.rollovers_corrected, b.rollovers_corrected);
  EXPECT_EQ(a.missing_job_end, b.missing_job_end);
  EXPECT_EQ(a.missing_acct, b.missing_acct);
  EXPECT_EQ(a.missing_lariat, b.missing_lariat);
  EXPECT_EQ(a.jobs_reconciled, b.jobs_reconciled);
  EXPECT_EQ(a.hosts_skewed, b.hosts_skewed);
  EXPECT_TRUE(a == b);
}

void expect_same_doubles(const std::vector<double>& a, const std::vector<double>& b,
                         const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const bool same = a[i] == b[i] || (std::isnan(a[i]) && std::isnan(b[i]));
    EXPECT_TRUE(same) << what << "[" << i << "]: " << a[i] << " vs " << b[i];
    if (!same) break;
  }
}

void expect_same_series(const etl::SystemSeries& a, const etl::SystemSeries& b) {
  EXPECT_EQ(a.start, b.start);
  EXPECT_EQ(a.bucket, b.bucket);
  ASSERT_EQ(a.buckets, b.buckets);
  expect_same_doubles(a.active_nodes, b.active_nodes, "active_nodes");
  expect_same_doubles(a.up_nodes, b.up_nodes, "up_nodes");
  expect_same_doubles(a.flops_tf, b.flops_tf, "flops_tf");
  expect_same_doubles(a.mem_gb_per_node, b.mem_gb_per_node, "mem_gb_per_node");
  expect_same_doubles(a.cpu_user_core_h, b.cpu_user_core_h, "cpu_user_core_h");
  expect_same_doubles(a.cpu_idle_core_h, b.cpu_idle_core_h, "cpu_idle_core_h");
  expect_same_doubles(a.cpu_system_core_h, b.cpu_system_core_h, "cpu_system_core_h");
  expect_same_doubles(a.scratch_write_mb_s, b.scratch_write_mb_s, "scratch_write_mb_s");
  expect_same_doubles(a.scratch_read_mb_s, b.scratch_read_mb_s, "scratch_read_mb_s");
  expect_same_doubles(a.work_write_mb_s, b.work_write_mb_s, "work_write_mb_s");
  expect_same_doubles(a.share_mb_s, b.share_mb_s, "share_mb_s");
  expect_same_doubles(a.ib_tx_mb_s, b.ib_tx_mb_s, "ib_tx_mb_s");
  expect_same_doubles(a.lnet_tx_mb_s, b.lnet_tx_mb_s, "lnet_tx_mb_s");
  expect_same_doubles(a.cpu_idle_frac, b.cpu_idle_frac, "cpu_idle_frac");
}

void expect_same_jobs(const std::vector<etl::JobSummary>& a,
                      const std::vector<etl::JobSummary>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& x = a[i];
    const auto& y = b[i];
    ASSERT_EQ(x.id, y.id);
    EXPECT_EQ(x.user, y.user);
    EXPECT_EQ(x.app, y.app);
    EXPECT_EQ(x.science, y.science);
    EXPECT_EQ(x.project, y.project);
    EXPECT_EQ(x.cluster, y.cluster);
    EXPECT_EQ(x.submit, y.submit);
    EXPECT_EQ(x.start, y.start);
    EXPECT_EQ(x.end, y.end);
    EXPECT_EQ(x.nodes, y.nodes);
    EXPECT_EQ(x.cores, y.cores);
    EXPECT_EQ(x.node_hours, y.node_hours);
    EXPECT_EQ(x.exit_status, y.exit_status);
    EXPECT_EQ(x.failed, y.failed);
    EXPECT_EQ(x.samples, y.samples);
    EXPECT_EQ(x.reconciled, y.reconciled);
    EXPECT_EQ(x.flops_valid, y.flops_valid);
    for (const auto& m : etl::all_metric_names()) {
      const double vx = etl::metric_value(x, m);
      const double vy = etl::metric_value(y, m);
      EXPECT_TRUE(vx == vy || (std::isnan(vx) && std::isnan(vy)))
          << "job " << x.id << " metric " << m << ": " << vx << " vs " << vy;
    }
  }
}

void expect_same_quality(const etl::DataQualityReport& a, const etl::DataQualityReport& b) {
  EXPECT_EQ(a.span, b.span);
  ASSERT_EQ(a.hosts.size(), b.hosts.size());
  for (std::size_t i = 0; i < a.hosts.size(); ++i) {
    const auto& x = a.hosts[i];
    const auto& y = b.hosts[i];
    EXPECT_EQ(x.host, y.host);
    EXPECT_EQ(x.files, y.files);
    EXPECT_EQ(x.samples, y.samples);
    EXPECT_EQ(x.pairs, y.pairs);
    EXPECT_EQ(x.quarantined, y.quarantined);
    EXPECT_EQ(x.duplicates_dropped, y.duplicates_dropped);
    EXPECT_EQ(x.reordered, y.reordered);
    EXPECT_EQ(x.resets, y.resets);
    EXPECT_EQ(x.rollovers, y.rollovers);
    EXPECT_EQ(x.missing_job_end, y.missing_job_end);
    EXPECT_EQ(x.clock_skew_s, y.clock_skew_s);
    EXPECT_EQ(x.covered_s, y.covered_s);
  }
  ASSERT_EQ(a.quarantines.size(), b.quarantines.size());
  for (std::size_t i = 0; i < a.quarantines.size(); ++i) {
    EXPECT_EQ(a.quarantines[i].source, b.quarantines[i].source);
    EXPECT_EQ(a.quarantines[i].line, b.quarantines[i].line);
    EXPECT_EQ(a.quarantines[i].reason, b.quarantines[i].reason);
  }
}

}  // namespace

// --- fault plans ------------------------------------------------------------

TEST(FaultPlan, ProfileCatalogue) {
  const auto& names = fs::FaultPlan::profile_names();
  ASSERT_FALSE(names.empty());
  for (const char* expected : {"none", "truncation", "garbage", "shuffle", "counter_glitch",
                               "lost_records", "clock_skew", "chaos"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end()) << expected;
  }
  for (const auto& n : names) {
    const auto plan = fs::FaultPlan::profile(n, kSeed);
    EXPECT_EQ(plan.seed, kSeed) << n;
    if (n != "none") {
      EXPECT_FALSE(plan.faults.empty()) << n;
    }
  }
  EXPECT_THROW((void)fs::FaultPlan::profile("meteor_strike", kSeed), supremm::NotFoundError);
}

TEST(FaultPlan, ZeroFaultPlanLeavesArtifactsUntouched) {
  const auto& run = small_ranger_run();
  const Damaged d = inject(fs::FaultPlan::none(kSeed));
  EXPECT_FALSE(d.report.any());
  EXPECT_EQ(d.report.expected_quarantined, 0u);
  ASSERT_EQ(d.files.size(), run.files.size());
  for (std::size_t i = 0; i < d.files.size(); ++i) {
    EXPECT_EQ(d.files[i].hostname, run.files[i].hostname);
    EXPECT_EQ(d.files[i].day, run.files[i].day);
    ASSERT_EQ(d.files[i].content, run.files[i].content) << run.files[i].hostname;
  }
  EXPECT_EQ(d.acct.size(), run.acct.size());
  EXPECT_EQ(d.lrt.size(), run.lariat_records.size());
}

TEST(FaultPlan, SameSeedSameDamage) {
  const Damaged a = inject_profile("chaos");
  const Damaged b = inject_profile("chaos");
  ASSERT_EQ(a.files.size(), b.files.size());
  for (std::size_t i = 0; i < a.files.size(); ++i) {
    ASSERT_EQ(a.files[i].content, b.files[i].content) << a.files[i].hostname;
  }
  EXPECT_EQ(a.report.expected_quarantined, b.report.expected_quarantined);
  EXPECT_EQ(a.report.samples_lost, b.report.samples_lost);
  EXPECT_EQ(a.report.dropped_acct_jobs, b.report.dropped_acct_jobs);
  EXPECT_EQ(a.report.dropped_lariat_jobs, b.report.dropped_lariat_jobs);
  EXPECT_EQ(a.report.skews, b.report.skews);
}

TEST(FaultPlan, DifferentSeedDifferentDamage) {
  const Damaged a = inject(fs::FaultPlan::profile("chaos", 1));
  const Damaged b = inject(fs::FaultPlan::profile("chaos", 2));
  bool any_diff = a.files.size() != b.files.size();
  for (std::size_t i = 0; !any_diff && i < a.files.size(); ++i) {
    any_diff = a.files[i].content != b.files[i].content;
  }
  EXPECT_TRUE(any_diff);
}

// --- the zero-fault identity ------------------------------------------------

TEST(SalvageRoundTrip, CleanDataBitIdenticalToStrict) {
  const auto& strict = small_ranger_run().result;
  const auto& salvage = clean_salvage();
  expect_same_stats(salvage.stats, strict.stats);
  EXPECT_EQ(salvage.stats.quarantined, 0u);
  EXPECT_EQ(salvage.stats.duplicates_dropped, 0u);
  EXPECT_EQ(salvage.stats.reordered, 0u);
  EXPECT_EQ(salvage.stats.missing_job_end, 0u);
  EXPECT_EQ(salvage.stats.hosts_skewed, 0u);
  EXPECT_EQ(salvage.stats.jobs_reconciled, 0u);
  EXPECT_EQ(salvage.stats.missing_lariat, 0u);
  expect_same_jobs(salvage.jobs, strict.jobs);
  expect_same_series(salvage.series, strict.series);
}

TEST(SalvageRoundTrip, BitIdenticalAcrossThreadCounts) {
  const Damaged d = inject_profile("chaos");
  const auto r1 = run_mode(d.files, d.acct, d.lrt, etl::IngestMode::kSalvage, 1);
  const auto r3 = run_mode(d.files, d.acct, d.lrt, etl::IngestMode::kSalvage, 3);
  expect_same_stats(r1.stats, r3.stats);
  expect_same_jobs(r1.jobs, r3.jobs);
  expect_same_series(r1.series, r3.series);
  expect_same_quality(r1.quality, r3.quality);
}

// --- per-profile round trips ------------------------------------------------

TEST(SalvageRoundTrip, Truncation) {
  const Damaged d = inject_profile("truncation");
  ASSERT_GT(d.report.files_truncated, 0u);
  EXPECT_EQ(d.report.expected_quarantined, d.report.files_truncated);
  const auto r = run_mode(d.files, d.acct, d.lrt, etl::IngestMode::kSalvage);
  const auto& clean = clean_salvage();
  // Exactly one quarantined partial row per truncation, and every sample the
  // truncation did not destroy is recovered.
  EXPECT_EQ(r.stats.quarantined - clean.stats.quarantined, d.report.expected_quarantined);
  EXPECT_EQ(r.stats.samples, clean.stats.samples - d.report.samples_lost);
  EXPECT_EQ(r.quality.quarantines.size(), r.stats.quarantined);
  for (const auto& q : r.quality.quarantines) {
    EXPECT_EQ(q.reason, ts::QuarantineReason::kShortRow);
    EXPECT_FALSE(q.source.empty());
    EXPECT_GT(q.line, 0u);
  }
}

TEST(SalvageRoundTrip, GarbageAndInterleave) {
  const Damaged d = inject_profile("garbage");
  ASSERT_GT(d.report.garbage_lines, 0u);
  ASSERT_GT(d.report.interleaved_rows, 0u);
  EXPECT_EQ(d.report.expected_quarantined,
            d.report.garbage_lines + d.report.interleaved_rows);
  const auto r = run_mode(d.files, d.acct, d.lrt, etl::IngestMode::kSalvage);
  const auto& clean = clean_salvage();
  EXPECT_EQ(r.stats.quarantined - clean.stats.quarantined, d.report.expected_quarantined);
  // Garbage destroys no samples: recovery is 100%.
  EXPECT_EQ(r.stats.samples, clean.stats.samples);
  EXPECT_EQ(r.stats.duplicates_dropped, 0u);
  EXPECT_EQ(r.stats.reordered, 0u);
}

TEST(SalvageRoundTrip, DuplicatesAndReorderRepairExactly) {
  const Damaged d = inject_profile("shuffle");
  ASSERT_GT(d.report.duplicated_samples, 0u);
  ASSERT_GT(d.report.reorder_swaps, 0u);
  const auto r = run_mode(d.files, d.acct, d.lrt, etl::IngestMode::kSalvage);
  const auto& clean = clean_salvage();
  EXPECT_EQ(r.stats.duplicates_dropped, d.report.duplicated_samples);
  EXPECT_EQ(r.stats.reordered, d.report.reorder_swaps);
  EXPECT_EQ(r.stats.quarantined, 0u);
  EXPECT_EQ(r.stats.samples, clean.stats.samples);
  // Dedup + re-sort reconstruct the clean timeline exactly, so the derived
  // data is bit-identical to the clean run.
  expect_same_jobs(r.jobs, clean.jobs);
  expect_same_series(r.series, clean.series);
}

TEST(SalvageRoundTrip, CounterGlitches) {
  const Damaged d = inject_profile("counter_glitch");
  ASSERT_GT(d.report.counter_resets, 0u);
  ASSERT_GT(d.report.counter_rollovers, 0u);
  const auto r = run_mode(d.files, d.acct, d.lrt, etl::IngestMode::kSalvage);
  const auto& clean = clean_salvage();
  EXPECT_EQ(r.stats.resets_clamped, d.report.counter_resets);
  EXPECT_EQ(r.stats.rollovers_corrected, d.report.counter_rollovers);
  EXPECT_EQ(r.stats.quarantined, 0u);
  EXPECT_EQ(r.stats.samples, clean.stats.samples);
  EXPECT_EQ(r.stats.pairs, clean.stats.pairs);
}

TEST(SalvageRoundTrip, RolloverCorrectionPreservesRates) {
  fs::FaultPlan plan;
  plan.seed = kSeed;
  plan.add(fs::FaultKind::kCounterRollover, 1.0);
  const Damaged d = inject(plan);
  ASSERT_GT(d.report.counter_rollovers, 0u);
  const auto r = run_mode(d.files, d.acct, d.lrt, etl::IngestMode::kSalvage);
  const auto& clean = clean_salvage();
  EXPECT_EQ(r.stats.rollovers_corrected, d.report.counter_rollovers);
  // A u64 wrap carries the true delta in modular arithmetic: the corrected
  // rates are numerically identical to the undamaged ones.
  expect_same_jobs(r.jobs, clean.jobs);
  expect_same_series(r.series, clean.series);
}

TEST(SalvageRoundTrip, LostRecordsReconcile) {
  const Damaged d = inject_profile("lost_records");
  ASSERT_GT(d.report.job_ends_dropped, 0u);
  ASSERT_GT(d.report.acct_dropped, 0u);
  ASSERT_GT(d.report.lariat_dropped, 0u);
  EXPECT_EQ(d.report.dropped_acct_jobs.size(), d.report.acct_dropped);
  EXPECT_EQ(d.report.dropped_lariat_jobs.size(), d.report.lariat_dropped);
  const auto r = run_mode(d.files, d.acct, d.lrt, etl::IngestMode::kSalvage);
  const auto& clean = clean_salvage();
  ASSERT_EQ(clean.stats.missing_lariat, 0u);  // clean side channels are complete

  EXPECT_EQ(r.stats.missing_job_end, d.report.job_ends_dropped);
  EXPECT_EQ(r.stats.missing_acct, d.report.acct_dropped);

  // Every summary flagged reconciled corresponds to a dropped accounting
  // record, and at least one dropped job was rebuilt from samples + Lariat.
  const std::set<supremm::facility::JobId> dropped_acct(d.report.dropped_acct_jobs.begin(),
                                                        d.report.dropped_acct_jobs.end());
  const std::set<supremm::facility::JobId> dropped_lrt(d.report.dropped_lariat_jobs.begin(),
                                                       d.report.dropped_lariat_jobs.end());
  std::uint64_t reconciled = 0;
  std::uint64_t without_lariat = 0;
  for (const auto& j : r.jobs) {
    if (j.reconciled) {
      ++reconciled;
      EXPECT_EQ(dropped_acct.count(j.id), 1u) << j.id;
      EXPECT_FALSE(j.user.empty());
    } else {
      EXPECT_EQ(dropped_acct.count(j.id), 0u) << j.id;
    }
    if (dropped_lrt.count(j.id) != 0) ++without_lariat;
  }
  EXPECT_GT(reconciled, 0u);
  EXPECT_EQ(r.stats.jobs_reconciled, reconciled);
  EXPECT_EQ(r.stats.missing_lariat, without_lariat);
}

TEST(SalvageRoundTrip, ClockSkewCorrectedExactly) {
  const Damaged d = inject_profile("clock_skew");
  ASSERT_GT(d.report.hosts_skewed, 0u);
  ASSERT_EQ(d.report.skews.size(), d.report.hosts_skewed);
  const auto r = run_mode(d.files, d.acct, d.lrt, etl::IngestMode::kSalvage);
  const auto& clean = clean_salvage();
  EXPECT_EQ(r.stats.hosts_skewed, d.report.hosts_skewed);
  std::map<std::string, std::int64_t> injected(d.report.skews.begin(), d.report.skews.end());
  for (const auto& h : r.quality.hosts) {
    const auto it = injected.find(h.host);
    EXPECT_EQ(h.clock_skew_s, it == injected.end() ? 0 : it->second) << h.host;
  }
  // The estimated offset equals the injected one, so correction restores the
  // clean timeline exactly.
  expect_same_jobs(r.jobs, clean.jobs);
  expect_same_series(r.series, clean.series);
}

TEST(SalvageRoundTrip, ChaosQuarantineAccountingIsExact) {
  const Damaged d = inject_profile("chaos");
  ASSERT_TRUE(d.report.any());
  const auto r = run_mode(d.files, d.acct, d.lrt, etl::IngestMode::kSalvage);
  const auto& clean = clean_salvage();
  // Even with every fault kind composed, each quarantined line is one the
  // injector predicted.
  EXPECT_EQ(r.stats.quarantined, d.report.expected_quarantined);
  EXPECT_EQ(r.quality.quarantines.size(), r.stats.quarantined);
  EXPECT_EQ(r.quality.total_quarantined(), r.stats.quarantined);
  // Recovery bounds: nothing beyond the destroyed samples is lost; at most
  // the injected duplicates are dropped on top.
  EXPECT_GE(r.stats.samples, clean.stats.samples - d.report.samples_lost -
                                 d.report.duplicated_samples);
  EXPECT_LE(r.stats.samples, clean.stats.samples - d.report.samples_lost +
                                 d.report.duplicated_samples);
  EXPECT_FALSE(r.jobs.empty());
  EXPECT_GT(r.quality.facility_coverage(), 0.0);
  EXPECT_LE(r.quality.facility_coverage(), 1.0 + 1e-9);
}

TEST(SalvageRoundTrip, StrictModeAbortsOnDamage) {
  const Damaged d = inject_profile("garbage");
  try {
    (void)run_mode(d.files, d.acct, d.lrt, etl::IngestMode::kStrict);
    FAIL() << "strict ingest of damaged data must throw";
  } catch (const supremm::ParseError& e) {
    // The error names the damaged host/day file.
    EXPECT_NE(std::string(e.what()).find("/day"), std::string::npos) << e.what();
  }
}

// --- salvage reader ---------------------------------------------------------

namespace {

const char* kTinyRaw =
    "$tacc_stats 2.0\n"
    "$hostname t1\n"
    "!cpu user;E idle;E\n"
    "1000 42 begin\n"
    "cpu 0 100 200\n"
    "1600 42 periodic\n"
    "cpu 0 150 260\n";

}  // namespace

TEST(SalvageReader, CleanContentMatchesStrict) {
  const auto strict = ts::parse_raw(kTinyRaw, "t1/day0");
  const auto sr = ts::parse_raw_salvage(kTinyRaw, "t1/day0");
  EXPECT_TRUE(sr.quarantined.empty());
  EXPECT_FALSE(sr.missing_magic);
  ASSERT_EQ(sr.file.samples.size(), strict.samples.size());
  EXPECT_TRUE(sr.file.samples[0] == strict.samples[0]);
  EXPECT_TRUE(sr.file.samples[1] == strict.samples[1]);
  EXPECT_EQ(sr.file.hostname, "t1");
}

TEST(SalvageReader, QuarantinesEveryDamageKindAndKeepsTheRest) {
  const std::string content =
      "$tacc_stats 2.0\n"
      "$\n"                       // bad metadata
      "$hostname t1\n"
      "!cpu user;E idle;E\n"
      "!\n"                       // bad schema
      "1000 42 begin\n"
      "cpu 0 100 200\n"
      "gpu 0 1 2\n"               // undeclared type
      "cpu\n"                     // short row
      "cpu 0 100\n"               // field count mismatch
      "cpu 0 100 abc\n"           // bad value
      "1600 42 bogus\n"           // bad sample header (unknown mark)
      "cpu 0 140 240\n"           // orphaned by the damaged header
      "2200 42 periodic\n"
      "cpu 0 150 260\n";
  const auto sr = ts::parse_raw_salvage(content, "t1/day0");
  // Both well-formed samples survive with their well-formed rows.
  ASSERT_EQ(sr.file.samples.size(), 2u);
  EXPECT_EQ(sr.file.samples[0].time, 1000);
  EXPECT_EQ(sr.file.samples[1].time, 2200);
  ASSERT_EQ(sr.file.samples[0].records.size(), 1u);
  ASSERT_EQ(sr.file.samples[0].records[0].rows.size(), 1u);
  EXPECT_EQ(sr.file.samples[0].records[0].rows[0].values[0], 100u);

  std::multiset<ts::QuarantineReason> reasons;
  for (const auto& q : sr.quarantined) {
    EXPECT_EQ(q.source, "t1/day0");
    EXPECT_GT(q.line, 0u);
    EXPECT_FALSE(q.detail.empty());
    reasons.insert(q.reason);
  }
  EXPECT_EQ(reasons.count(ts::QuarantineReason::kBadMetadata), 1u);
  EXPECT_EQ(reasons.count(ts::QuarantineReason::kBadSchema), 1u);
  EXPECT_EQ(reasons.count(ts::QuarantineReason::kUndeclaredType), 1u);
  EXPECT_EQ(reasons.count(ts::QuarantineReason::kShortRow), 1u);
  EXPECT_EQ(reasons.count(ts::QuarantineReason::kFieldCountMismatch), 1u);
  EXPECT_EQ(reasons.count(ts::QuarantineReason::kBadValue), 1u);
  EXPECT_EQ(reasons.count(ts::QuarantineReason::kBadSampleHeader), 1u);
  EXPECT_EQ(reasons.count(ts::QuarantineReason::kOrphanRow), 1u);
  EXPECT_EQ(sr.quarantined.size(), 8u);
}

TEST(SalvageReader, MissingMagicIsFlaggedNotFatal) {
  const auto sr = ts::parse_raw_salvage("1000 1 periodic\n", "t1/day0");
  EXPECT_TRUE(sr.missing_magic);
  EXPECT_THROW((void)ts::parse_raw("1000 1 periodic\n", "t1/day0"), supremm::ParseError);
}

TEST(SalvageReader, StrictErrorsCarrySourceAndLine) {
  try {
    (void)ts::parse_raw("$tacc_stats 2.0\ncpu 0 1 2\n", "c42-987/day7");
    FAIL() << "must throw";
  } catch (const supremm::ParseError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("c42-987/day7"), std::string::npos) << msg;
    EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
  }
  // Without a source the message still carries the line number.
  try {
    (void)ts::parse_raw("$tacc_stats 2.0\ncpu 0 1 2\n");
    FAIL() << "must throw";
  } catch (const supremm::ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos) << e.what();
  }
}

// --- config validation ------------------------------------------------------

TEST(IngestConfigValidation, NamesTheOffendingField) {
  const auto expect_invalid = [](auto mutate, const char* field) {
    etl::IngestConfig cfg;
    cfg.span = sc::kDay;
    mutate(cfg);
    try {
      const etl::IngestPipeline p(cfg);
      FAIL() << "config with bad " << field << " must throw";
    } catch (const supremm::InvalidArgument& e) {
      EXPECT_NE(std::string(e.what()).find(field), std::string::npos) << e.what();
    }
  };
  expect_invalid([](etl::IngestConfig& c) { c.span = 0; }, "span");
  expect_invalid([](etl::IngestConfig& c) { c.span = -sc::kDay; }, "span");
  expect_invalid([](etl::IngestConfig& c) { c.bucket = 0; }, "bucket");
  expect_invalid([](etl::IngestConfig& c) { c.bucket = -60; }, "bucket");
  expect_invalid([](etl::IngestConfig& c) { c.hosts_per_chunk = 0; }, "hosts_per_chunk");
  expect_invalid([](etl::IngestConfig& c) { c.min_job_seconds = -1; }, "min_job_seconds");
  expect_invalid([](etl::IngestConfig& c) { c.max_pair_gap = -1; }, "max_pair_gap");
  // The defaults (plus a span) are valid.
  etl::IngestConfig ok;
  ok.span = sc::kDay;
  EXPECT_NO_THROW(etl::IngestPipeline{ok});
}

// --- data-quality surfacing -------------------------------------------------

TEST(DataQuality, WarehouseTableAndCsv) {
  const Damaged d = inject_profile("truncation");
  const auto r = run_mode(d.files, d.acct, d.lrt, etl::IngestMode::kSalvage);
  ASSERT_FALSE(r.quality.hosts.empty());

  const auto table = etl::quality_table(r.quality);
  EXPECT_EQ(table.rows(), r.quality.hosts.size());

  std::ostringstream csv;
  xd::csv_data_quality(r.quality, csv);
  const std::string text = csv.str();
  EXPECT_NE(text.find("host,"), std::string::npos);
  EXPECT_NE(text.find("clock_skew_s"), std::string::npos);
  EXPECT_EQ(static_cast<std::size_t>(std::count(text.begin(), text.end(), '\n')),
            r.quality.hosts.size() + 1);
}

TEST(DataQuality, SysadminReportIncludesDataQuality) {
  const auto names = xd::report_names(xd::Stakeholder::kSystemsAdministrator);
  EXPECT_NE(std::find(names.begin(), names.end(), "Data quality"), names.end());

  const auto& run = small_ranger_run();
  const auto& clean = clean_salvage();
  xd::DataContext ctx;
  ctx.cluster = run.spec.name;
  ctx.jobs = run.result.jobs;
  ctx.series = &run.result.series;

  std::ostringstream without;
  const std::size_t n_without =
      xd::write_reports(ctx, xd::Stakeholder::kSystemsAdministrator, without);
  ctx.quality = &clean.quality;
  std::ostringstream with;
  const std::size_t n_with =
      xd::write_reports(ctx, xd::Stakeholder::kSystemsAdministrator, with);
  EXPECT_EQ(n_with, n_without + 1);
  EXPECT_NE(with.str().find("Data quality"), std::string::npos);

  const auto rendered = xd::render_data_quality(clean.quality, 5);
  EXPECT_GT(rendered.row_count(), 0u);
  EXPECT_NE(rendered.to_string().find("coverage"), std::string::npos);
}

// --- salvage edge cases (DESIGN.md §12 satellite coverage) ------------------

namespace {

// 7-field cpu schema so extract_pair's user/nice/system/idle/iowait/irq/
// softirq reads line up; counters monotone so pairs extract cleanly.
constexpr const char* kEdgeSchema = "!cpu user;E nice;E system;E idle;E iowait;E irq;E softirq;E\n";

std::string cpu_row(std::uint64_t base) {
  std::ostringstream os;
  os << "cpu 0";
  for (int f = 0; f < 7; ++f) os << " " << base + static_cast<std::uint64_t>(f) * 10;
  os << "\n";
  return os.str();
}

supremm::accounting::AccountingRecord edge_acct(supremm::facility::JobId id,
                                                const std::string& host,
                                                sc::TimePoint start, sc::TimePoint end) {
  supremm::accounting::AccountingRecord a;
  a.hostname = host;
  a.owner = sc::strprintf("user%llu", static_cast<unsigned long long>(id));
  a.jobname = sc::strprintf("job%llu", static_cast<unsigned long long>(id));
  a.job_id = id;
  a.account = "TG-edge";
  a.submit = start - 60;
  a.start = start;
  a.end = end;
  a.slots = 1;
  a.nodes = 1;
  return a;
}

etl::IngestResult edge_ingest(const std::vector<ts::RawFile>& files,
                              const std::vector<supremm::accounting::AccountingRecord>& acct,
                              sc::Duration span) {
  etl::IngestConfig cfg;
  cfg.start = 0;
  cfg.span = span;
  cfg.cluster = "edge";
  cfg.threads = 1;
  cfg.mode = etl::IngestMode::kSalvage;
  return etl::IngestPipeline(cfg).run(files, acct, {}, {}, {});
}

}  // namespace

// A job whose every sample on every host is quarantined must vanish from the
// job table (nothing to attribute) while the per-host quality rows account
// for each damaged line — loss is visible, never silently invented.
TEST(SalvageEdges, AllHostsQuarantinedJobIsAccountedNotInvented) {
  const std::string h1 = std::string("$tacc_stats 2.0\n$hostname h1\n") + kEdgeSchema +
                         "1000 42 bogus\n" +  // job 42's begin: bad mark
                         cpu_row(100) +       // orphaned by the damaged header
                         "2000 43 begin\n" + cpu_row(200) +
                         "2600 43 periodic\n" + cpu_row(900) +
                         "3200 43 end\n" + cpu_row(1700);
  const std::string h2 = std::string("$tacc_stats 2.0\n$hostname h2\n") + kEdgeSchema +
                         "1000 42 bogus\n" + cpu_row(100) +  // job 42 again
                         "1600 42 bogus\n" + cpu_row(800);
  const std::vector<ts::RawFile> files = {{"h1", 0, h1}, {"h2", 0, h2}};
  const auto r = edge_ingest(
      files, {edge_acct(42, "h2", 1000, 1600), edge_acct(43, "h1", 2000, 3200)}, sc::kDay);

  // Only job 43 survives; job 42 has zero usable samples anywhere.
  ASSERT_EQ(r.jobs.size(), 1u);
  EXPECT_EQ(r.jobs[0].id, 43u);
  EXPECT_EQ(r.stats.jobs_seen, 1u);

  ASSERT_EQ(r.quality.hosts.size(), 2u);  // sorted by host name
  const etl::HostQuality& q1 = r.quality.hosts[0];
  const etl::HostQuality& q2 = r.quality.hosts[1];
  ASSERT_EQ(q1.host, "h1");
  ASSERT_EQ(q2.host, "h2");
  EXPECT_EQ(q1.quarantined, 2u);  // bad header + orphaned row
  EXPECT_GT(q1.pairs, 0u);
  EXPECT_EQ(q2.quarantined, 4u);  // both headers + both rows
  EXPECT_EQ(q2.samples, 0u);
  EXPECT_EQ(q2.pairs, 0u);
  EXPECT_EQ(q2.coverage(r.quality.span), 0.0);
  EXPECT_EQ(r.quality.total_quarantined(), 6u);
  EXPECT_EQ(r.stats.quarantined, 6u);
  EXPECT_EQ(etl::quality_table(r.quality).rows(), 2u);
}

// Clock-skew repair when the skew pushes samples across the midnight file
// boundary: the skewed collector writes a sample into the next day's raw
// file, and after the median-offset correction the ingest must be
// bit-identical to the unskewed control — including bucket attribution on
// both sides of the boundary.
TEST(SalvageEdges, ClockSkewRepairAtDayBoundary) {
  constexpr sc::TimePoint kStart = 86100;  // 5 min before midnight
  constexpr std::int64_t kSkew = 30;
  const std::string head = std::string("$tacc_stats 2.0\n$hostname n1\n") + kEdgeSchema;
  const auto stamp = [&](sc::TimePoint t, const char* mark, std::uint64_t base) {
    return std::to_string(t) + " 7 " + mark + "\n" + cpu_row(base);
  };

  // Control: day0 holds the two pre-midnight samples, day1 the rest.
  const std::vector<ts::RawFile> control = {
      {"n1", 0, head + stamp(86100, "begin", 100) + stamp(86390, "periodic", 700)},
      {"n1", 1, head + stamp(86700, "periodic", 1500) + stamp(87300, "end", 2400)},
  };
  // Skewed: every stamp reads +30s, so the 86390 sample lands at 86420 — past
  // midnight on the collector's clock — and is written into the day-1 file.
  const std::vector<ts::RawFile> skewed = {
      {"n1", 0, head + stamp(86100 + kSkew, "begin", 100)},
      {"n1", 1, head + stamp(86390 + kSkew, "periodic", 700) +
                    stamp(86700 + kSkew, "periodic", 1500) +
                    stamp(87300 + kSkew, "end", 2400)},
  };
  const std::vector<supremm::accounting::AccountingRecord> acct = {
      edge_acct(7, "n1", kStart, 87300)};

  const auto ref = edge_ingest(control, acct, 2 * sc::kDay);
  const auto fixed = edge_ingest(skewed, acct, 2 * sc::kDay);

  EXPECT_EQ(ref.stats.hosts_skewed, 0u);
  ASSERT_EQ(fixed.stats.hosts_skewed, 1u);
  ASSERT_EQ(fixed.quality.hosts.size(), 1u);
  EXPECT_EQ(fixed.quality.hosts[0].clock_skew_s, kSkew);
  ASSERT_EQ(ref.jobs.size(), 1u);
  expect_same_jobs(fixed.jobs, ref.jobs);
  expect_same_series(fixed.series, ref.series);
}

// Archive partitions that fail verification must surface as
// DataQualityReport::corrupt_partitions all the way into the rendered
// operator report — the storage-layer extension of the salvage contract.
TEST(SalvageEdges, CorruptPartitionsPropagateIntoQualityReport) {
  namespace stdfs = std::filesystem;
  const stdfs::path dir =
      stdfs::temp_directory_path() / "supremm_faultsim_corrupt_archive";
  supremm::testing::build_archive(dir.string(), supremm::testing::tiny_ranger_run());

  // Damage one series partition (the other day's partition keeps the table
  // loadable, exercising the partial-quarantine path).
  std::string victim;
  const supremm::archive::Reader reader(dir.string(), 1);
  for (const auto& p : reader.manifest().partitions) {
    if (p.table == "series") {
      victim = p.filename;
      break;
    }
  }
  ASSERT_FALSE(victim.empty());
  {
    std::fstream f(dir / victim, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekg(0, std::ios::end);
    const auto size = static_cast<std::streamoff>(f.tellg());
    f.seekp(size / 2);
    char c = 0;
    f.seekg(size / 2);
    f.get(c);
    f.seekp(size / 2);
    f.put(static_cast<char>(c ^ 0x40));
  }

  const supremm::archive::LoadResult load = supremm::archive::Archive(dir.string(), 1).load();
  ASSERT_EQ(load.quarantined.size(), 1u);
  EXPECT_EQ(load.quarantined[0].file, victim);
  EXPECT_EQ(load.quarantined[0].table, "series");
  EXPECT_FALSE(load.quarantined[0].reason.empty());

  // Propagated verbatim into the report...
  const etl::DataQualityReport& q = load.result.quality;
  ASSERT_EQ(q.corrupt_partitions.size(), 1u);
  EXPECT_EQ(q.corrupt_partitions[0].file, victim);
  EXPECT_EQ(q.corrupt_partitions[0].table, "series");

  // ...and rendered for the Systems Administrator stakeholder.
  const std::string rendered = xd::render_data_quality(q, 3).to_string();
  EXPECT_NE(rendered.find("1 corrupt archive partitions"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("[archive] " + victim), std::string::npos) << rendered;
  stdfs::remove_all(dir);
}
