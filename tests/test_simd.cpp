// Cross-ISA-tier determinism suite (ctest label: simd).
//
// The contract under test (DESIGN.md §15): runtime SIMD dispatch
// (common/simd.h) must never change observable results. Query results,
// QueryStats, archive partition bytes, the XOR-delta double codec, and the
// LZSS token stream are bit-identical for every tier the host supports
// (scalar / SSE2 / AVX2) crossed with every thread count, because every
// vector kernel either computes exact per-row predicates or follows the
// canonical 8-lane accumulation scheme that the scalar tier implements with
// eight scalar accumulators.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "archive/partition.h"
#include "common/simd.h"
#include "compress/lzss.h"
#include "sim_fixture.h"
#include "warehouse/kernels.h"
#include "warehouse/query.h"
#include "warehouse/table.h"

namespace {

using namespace supremm;
namespace simd = common::simd;
namespace kernels = warehouse::kernels;

using supremm::testing::expect_tables_identical;

constexpr std::size_t kThreadCounts[] = {1, 2, 8};

/// Every tier the host can actually run (set_tier clamps to hardware, so
/// requesting more would silently retest the top tier).
std::vector<simd::Tier> host_tiers() {
  std::vector<simd::Tier> out = {simd::Tier::kScalar};
  if (simd::hardware_tier() >= simd::Tier::kSse2) out.push_back(simd::Tier::kSse2);
  if (simd::hardware_tier() >= simd::Tier::kAvx2) out.push_back(simd::Tier::kAvx2);
  return out;
}

/// Restores the hardware tier when a test exits, pass or fail.
struct TierGuard {
  TierGuard() = default;
  ~TierGuard() { simd::set_tier(simd::hardware_tier()); }
};

/// Mixed-type table with the shapes the kernels care about: a monotone
/// prunable column, a dictionary column, an int64 column (shared scalar
/// lane path), and a double column salted with NaN (filters must drop it,
/// min/max must ignore it, sums canonicalize it).
warehouse::Table make_table(std::size_t rows) {
  warehouse::Table t("t", {{"time", warehouse::ColType::kDouble},
                           {"user", warehouse::ColType::kString},
                           {"day", warehouse::ColType::kInt64},
                           {"value", warehouse::ColType::kDouble},
                           {"weight", warehouse::ColType::kDouble}});
  std::mt19937_64 rng(2013);
  std::uniform_real_distribution<double> frac(0.0, 1.0);
  for (std::size_t r = 0; r < rows; ++r) {
    const double v = (r % 97 == 0) ? std::numeric_limits<double>::quiet_NaN()
                                   : frac(rng) * 100.0;
    t.append()
        .set("time", static_cast<double>(r) * 0.25)
        .set("user", std::string("u") + std::to_string(r % 13))
        .set("day", static_cast<std::int64_t>(r % 7))
        .set("value", v)
        .set("weight", 0.5 + frac(rng));
  }
  t.rebuild_zone_index(/*chunk_rows=*/512);
  return t;
}

std::vector<warehouse::AggSpec> all_agg_kinds() {
  return {{"value", warehouse::AggKind::kSum, "", ""},
          {"value", warehouse::AggKind::kMean, "", ""},
          {"value", warehouse::AggKind::kWeightedMean, "weight", "wm"},
          {"value", warehouse::AggKind::kMax, "", ""},
          {"value", warehouse::AggKind::kMin, "", ""},
          {"day", warehouse::AggKind::kSum, "", "dsum"},
          {"", warehouse::AggKind::kCount, "", "n"}};
}

TEST(SimdDispatch, ParseTierAcceptsTheDocumentedSpellings) {
  simd::Tier t{};
  EXPECT_TRUE(simd::parse_tier("scalar", &t));
  EXPECT_EQ(t, simd::Tier::kScalar);
  EXPECT_TRUE(simd::parse_tier("sse2", &t));
  EXPECT_EQ(t, simd::Tier::kSse2);
  EXPECT_TRUE(simd::parse_tier("avx2", &t));
  EXPECT_EQ(t, simd::Tier::kAvx2);
  EXPECT_FALSE(simd::parse_tier("avx512", &t));
  EXPECT_FALSE(simd::parse_tier("", &t));
  EXPECT_FALSE(simd::parse_tier("SCALAR", &t));
}

TEST(SimdDispatch, SetTierClampsToHardware) {
  TierGuard guard;
  simd::set_tier(simd::Tier::kAvx2);
  EXPECT_LE(simd::active_tier(), simd::hardware_tier());
  simd::set_tier(simd::Tier::kScalar);
  EXPECT_EQ(simd::active_tier(), simd::Tier::kScalar);
}

TEST(SimdDispatch, EveryTierHasAFullKernelTable) {
  for (const simd::Tier t : {simd::Tier::kScalar, simd::Tier::kSse2, simd::Tier::kAvx2}) {
    const kernels::KernelTable& kt = kernels::table_for(t);
    EXPECT_NE(kt.filter_f64_range, nullptr);
    EXPECT_NE(kt.filter_codes_eq, nullptr);
    EXPECT_NE(kt.refine_f64_range, nullptr);
    EXPECT_NE(kt.refine_codes_eq, nullptr);
    EXPECT_NE(kt.sum_lanes, nullptr);
    EXPECT_NE(kt.min_lanes, nullptr);
    EXPECT_NE(kt.max_lanes, nullptr);
    EXPECT_NE(kt.dot_lanes, nullptr);
  }
}

/// Query results and QueryStats across every tier × thread count, for the
/// three aggregation paths: ungrouped (lane-8 kernels), dense dictionary
/// group-by, and the radix hash group-by over packed multi-column keys.
TEST(SimdQuery, ResultsAndStatsIdenticalAcrossTiersAndThreads) {
  TierGuard guard;
  const auto table = make_table(20000);

  struct Shape {
    const char* name;
    std::vector<std::string> group_by;
  };
  const Shape shapes[] = {
      {"ungrouped", {}},
      {"dense", {"user"}},
      {"radix", {"user", "day", "time"}},
  };
  for (const Shape& shape : shapes) {
    std::optional<warehouse::Table> reference;
    std::optional<warehouse::QueryStats> ref_stats;
    for (const simd::Tier tier : host_tiers()) {
      simd::set_tier(tier);
      for (const std::size_t threads : kThreadCounts) {
        warehouse::Query q(table);
        auto result = q.where(warehouse::all_of({warehouse::between("value", 10.0, 90.0),
                                                 warehouse::eq("user", "u3")}))
                          .group_by(shape.group_by)
                          .aggregate(all_agg_kinds())
                          .threads(threads)
                          .run();
        if (!reference) {
          reference = std::move(result);
          ref_stats = q.stats();
          continue;
        }
        SCOPED_TRACE(std::string(shape.name) + " tier " +
                     std::string(simd::tier_name(tier)) + " threads " +
                     std::to_string(threads));
        expect_tables_identical(*reference, result);
        EXPECT_EQ(ref_stats->chunks_total, q.stats().chunks_total);
        EXPECT_EQ(ref_stats->chunks_pruned, q.stats().chunks_pruned);
        EXPECT_EQ(ref_stats->rows_scanned, q.stats().rows_scanned);
        EXPECT_EQ(ref_stats->rows_matched, q.stats().rows_matched);
      }
    }
  }
}

/// The no-predicate full-table shape drives the identity (rows == nullptr)
/// variants of the lane kernels.
TEST(SimdQuery, FullTableAggregatesIdenticalAcrossTiers) {
  TierGuard guard;
  const auto table = make_table(8000);
  std::optional<warehouse::Table> reference;
  for (const simd::Tier tier : host_tiers()) {
    simd::set_tier(tier);
    auto result =
        warehouse::Query(table).aggregate(all_agg_kinds()).threads(8).run();
    if (!reference) {
      reference = std::move(result);
      continue;
    }
    SCOPED_TRACE(std::string(simd::tier_name(tier)));
    expect_tables_identical(*reference, result);
  }
}

TEST(SimdArchive, PartitionBytesIdenticalAcrossTiersAndThreads) {
  TierGuard guard;
  const auto table = make_table(6000);
  std::optional<std::string> reference;
  for (const simd::Tier tier : host_tiers()) {
    simd::set_tier(tier);
    for (const std::size_t threads : kThreadCounts) {
      const std::string bytes =
          archive::encode_partition(table, 3, archive::kDefaultChunkRows, threads);
      if (!reference) {
        reference = bytes;
        continue;
      }
      ASSERT_EQ(*reference, bytes)
          << "tier " << simd::tier_name(tier) << ", " << threads << " threads";
    }
  }
  // Round trip under every tier too: decode dispatches through the same
  // kernels as encode.
  for (const simd::Tier tier : host_tiers()) {
    simd::set_tier(tier);
    auto dp = archive::decode_partition(*reference, nullptr, 8);
    SCOPED_TRACE(std::string(simd::tier_name(tier)));
    expect_tables_identical(table, dp.table);
  }
}

TEST(SimdCodec, XorDeltaEncodeBytesIdenticalAcrossTiers) {
  TierGuard guard;
  std::mt19937_64 rng(7);
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                              std::size_t{64}, std::size_t{1013}}) {
    std::vector<double> vals(n);
    for (auto& v : vals) {
      switch (rng() % 4) {
        case 0: v = std::numeric_limits<double>::quiet_NaN(); break;
        case 1: v = -0.0; break;
        default: v = std::bit_cast<double>(rng()); break;
      }
    }
    std::optional<std::vector<std::uint64_t>> reference;
    for (const simd::Tier tier : host_tiers()) {
      simd::set_tier(tier);
      std::vector<std::uint64_t> deltas(n);
      simd::xor_delta_encode_f64(vals.data(), n, 0, deltas.data());
      if (!reference) {
        reference = deltas;
        continue;
      }
      ASSERT_EQ(*reference, deltas) << "n=" << n << " tier " << simd::tier_name(tier);
    }
    // Decode inverts encode exactly, arbitrary bit patterns included.
    if (n > 0) {
      std::vector<double> back(n);
      simd::xor_delta_decode_f64(reinterpret_cast<const unsigned char*>(reference->data()),
                                 n, 0, back.data());
      ASSERT_EQ(std::memcmp(back.data(), vals.data(), n * 8), 0) << "n=" << n;
    }
  }
}

TEST(SimdLzss, TokenStreamIdenticalAcrossTiers) {
  TierGuard guard;
  std::mt19937_64 rng(17);
  // Short buffers cover the scalar tail (the wide scan needs 16 bytes of
  // lookahead); the long one keeps the hash chains and match scanner busy.
  std::vector<std::string> inputs;
  for (std::size_t n = 0; n <= 40; ++n) {
    std::string s(n, '\0');
    for (auto& c : s) c = static_cast<char>('a' + (rng() % 4));
    inputs.push_back(std::move(s));
  }
  std::string big;
  std::string block(96, '\0');
  for (auto& c : block) c = static_cast<char>(rng() & 0xff);
  while (big.size() < (1u << 16)) {
    big += block;
    big[big.size() - 1 - (rng() % block.size())] ^= 1;
  }
  inputs.push_back(std::move(big));

  for (std::size_t i = 0; i < inputs.size(); ++i) {
    std::optional<std::string> reference;
    for (const simd::Tier tier : host_tiers()) {
      simd::set_tier(tier);
      const std::string c = compress::compress(inputs[i]);
      if (!reference) {
        reference = c;
        ASSERT_EQ(compress::decompress(c), inputs[i]) << "input " << i;
        continue;
      }
      ASSERT_EQ(*reference, c) << "input " << i << " tier " << simd::tier_name(tier);
    }
  }
}

/// Kernel-level cross-checks on adversarial values: NaN and infinities in
/// filters (NaN never passes), ragged tail lengths around the vector width,
/// and boundary values sitting exactly on lo/hi.
TEST(SimdKernels, FilterAndRefineMatchScalarOnAdversarialData) {
  std::mt19937_64 rng(23);
  for (const std::size_t n : {std::size_t{1}, std::size_t{3}, std::size_t{8},
                              std::size_t{17}, std::size_t{1000}}) {
    std::vector<double> vals(n);
    std::vector<std::int32_t> codes(n);
    for (std::size_t i = 0; i < n; ++i) {
      switch (rng() % 8) {
        case 0: vals[i] = std::numeric_limits<double>::quiet_NaN(); break;
        case 1: vals[i] = std::numeric_limits<double>::infinity(); break;
        case 2: vals[i] = -std::numeric_limits<double>::infinity(); break;
        case 3: vals[i] = 25.0; break;  // exactly lo
        case 4: vals[i] = 75.0; break;  // exactly hi
        default: vals[i] = static_cast<double>(rng() % 100); break;
      }
      codes[i] = static_cast<std::int32_t>(rng() % 5);
    }
    std::vector<std::uint32_t> ref_idx(n), got_idx(n);
    const kernels::KernelTable& ref = kernels::table_for(simd::Tier::kScalar);
    const std::size_t nref = ref.filter_f64_range(vals.data(), 0, n, 25.0, 75.0,
                                                  ref_idx.data());
    const std::size_t cref =
        ref.filter_codes_eq(codes.data(), 0, n, 3, got_idx.data());
    std::vector<std::uint32_t> code_ref(got_idx.begin(), got_idx.begin() + cref);
    for (const simd::Tier tier : host_tiers()) {
      const kernels::KernelTable& kt = kernels::table_for(tier);
      SCOPED_TRACE("n=" + std::to_string(n) + " tier " +
                   std::string(simd::tier_name(tier)));
      const std::size_t ngot =
          kt.filter_f64_range(vals.data(), 0, n, 25.0, 75.0, got_idx.data());
      ASSERT_EQ(nref, ngot);
      EXPECT_EQ(std::memcmp(ref_idx.data(), got_idx.data(), ngot * 4), 0);
      for (std::size_t j = 0; j < ngot; ++j) {
        EXPECT_FALSE(std::isnan(vals[got_idx[j]]));  // NaN never passes
      }
      // Refine over the filter survivors, in place as Query::run does.
      std::vector<std::uint32_t> sel(ref_idx.begin(), ref_idx.begin() + nref);
      const std::size_t nr =
          kt.refine_f64_range(vals.data(), sel.data(), sel.size(), 30.0, 70.0, sel.data());
      std::vector<std::uint32_t> sref(ref_idx.begin(), ref_idx.begin() + nref);
      const std::size_t nr_ref = ref.refine_f64_range(vals.data(), sref.data(),
                                                      sref.size(), 30.0, 70.0, sref.data());
      ASSERT_EQ(nr_ref, nr);
      EXPECT_EQ(std::memcmp(sref.data(), sel.data(), nr * 4), 0);

      const std::size_t cgot = kt.filter_codes_eq(codes.data(), 0, n, 3, got_idx.data());
      ASSERT_EQ(cref, cgot);
      EXPECT_EQ(std::memcmp(code_ref.data(), got_idx.data(), cgot * 4), 0);
    }
  }
}

/// Lane aggregation kernels produce bit-identical lane arrays in every tier
/// (which the fixed fold trees then reduce identically).
TEST(SimdKernels, LaneAggregatesBitIdenticalAcrossTiers) {
  std::mt19937_64 rng(29);
  for (const std::size_t n : {std::size_t{1}, std::size_t{5}, std::size_t{8},
                              std::size_t{29}, std::size_t{4096}}) {
    std::vector<double> vals(n), weights(n);
    std::vector<std::uint32_t> rows(n);
    for (std::size_t i = 0; i < n; ++i) {
      vals[i] = (static_cast<double>(rng() % 100000) - 50000.0) / 7.0;
      weights[i] = static_cast<double>(rng() % 1000) / 13.0;
      rows[i] = static_cast<std::uint32_t>((i * 2) % n);
    }
    const kernels::KernelTable& ref = kernels::table_for(simd::Tier::kScalar);
    for (const simd::Tier tier : host_tiers()) {
      const kernels::KernelTable& kt = kernels::table_for(tier);
      SCOPED_TRACE("n=" + std::to_string(n) + " tier " +
                   std::string(simd::tier_name(tier)));
      for (const std::uint32_t* r : {static_cast<const std::uint32_t*>(nullptr),
                                     static_cast<const std::uint32_t*>(rows.data())}) {
        double a[kernels::kLanes], b[kernels::kLanes];
        double aw[kernels::kLanes], bw[kernels::kLanes];

        std::fill(a, a + kernels::kLanes, 0.0);
        std::fill(b, b + kernels::kLanes, 0.0);
        ref.sum_lanes(vals.data(), r, 0, n, a);
        kt.sum_lanes(vals.data(), r, 0, n, b);
        EXPECT_EQ(std::memcmp(a, b, sizeof(a)), 0) << "sum";

        std::fill(a, a + kernels::kLanes, std::numeric_limits<double>::infinity());
        std::fill(b, b + kernels::kLanes, std::numeric_limits<double>::infinity());
        ref.min_lanes(vals.data(), r, 0, n, a);
        kt.min_lanes(vals.data(), r, 0, n, b);
        EXPECT_EQ(std::memcmp(a, b, sizeof(a)), 0) << "min";

        std::fill(a, a + kernels::kLanes, -std::numeric_limits<double>::infinity());
        std::fill(b, b + kernels::kLanes, -std::numeric_limits<double>::infinity());
        ref.max_lanes(vals.data(), r, 0, n, a);
        kt.max_lanes(vals.data(), r, 0, n, b);
        EXPECT_EQ(std::memcmp(a, b, sizeof(a)), 0) << "max";

        std::fill(a, a + kernels::kLanes, 0.0);
        std::fill(b, b + kernels::kLanes, 0.0);
        std::fill(aw, aw + kernels::kLanes, 0.0);
        std::fill(bw, bw + kernels::kLanes, 0.0);
        ref.dot_lanes(vals.data(), weights.data(), r, 0, n, aw, a);
        kt.dot_lanes(vals.data(), weights.data(), r, 0, n, bw, b);
        EXPECT_EQ(std::memcmp(a, b, sizeof(a)), 0) << "dot wv";
        EXPECT_EQ(std::memcmp(aw, bw, sizeof(aw)), 0) << "dot w";
      }
    }
  }
}

TEST(SimdKernels, MatchLengthAgreesWithByteLoop) {
  TierGuard guard;
  std::mt19937_64 rng(31);
  std::vector<unsigned char> a(64), b(64);
  for (int trial = 0; trial < 200; ++trial) {
    for (std::size_t i = 0; i < a.size(); ++i) {
      a[i] = static_cast<unsigned char>(rng() % 3);
      b[i] = static_cast<unsigned char>(rng() % 3);
    }
    const std::size_t limit = 1 + rng() % 18;
    std::size_t expect = 0;
    while (expect < limit && a[expect] == b[expect]) ++expect;
    for (const simd::Tier tier : host_tiers()) {
      simd::set_tier(tier);
      EXPECT_EQ(simd::match_length(a.data(), b.data(), limit), expect)
          << "trial " << trial << " tier " << simd::tier_name(tier);
    }
  }
}

}  // namespace
