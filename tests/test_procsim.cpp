// Unit tests for the emulated procfs layer: node counters and performance
// counter semantics.
#include <gtest/gtest.h>

#include "common/error.h"
#include "procsim/counters.h"
#include "procsim/perf.h"

namespace ps = supremm::procsim;

// --- perf --------------------------------------------------------------------

TEST(Perf, ArchNames) {
  EXPECT_EQ(ps::arch_name(ps::Arch::kAmd10h), "amd64_fam10h");
  EXPECT_EQ(ps::arch_name(ps::Arch::kIntelWestmere), "intel_wtm");
}

TEST(Perf, ArchEventSupport) {
  EXPECT_TRUE(ps::arch_supports(ps::Arch::kAmd10h, ps::PerfEvent::kFlops));
  EXPECT_TRUE(ps::arch_supports(ps::Arch::kAmd10h, ps::PerfEvent::kMemAccesses));
  EXPECT_TRUE(ps::arch_supports(ps::Arch::kAmd10h, ps::PerfEvent::kDcacheFills));
  EXPECT_FALSE(ps::arch_supports(ps::Arch::kAmd10h, ps::PerfEvent::kL1DHits));
  EXPECT_TRUE(ps::arch_supports(ps::Arch::kIntelWestmere, ps::PerfEvent::kL1DHits));
  EXPECT_FALSE(ps::arch_supports(ps::Arch::kIntelWestmere, ps::PerfEvent::kMemAccesses));
}

TEST(Perf, TaccStatsEventSetsMatchPaper) {
  // Paper §3: AMD counts FLOPS, memory accesses, data cache fills, NUMA
  // traffic; Intel Westmere counts FLOPS, NUMA traffic, L1D hits.
  const auto amd = ps::tacc_stats_event_set(ps::Arch::kAmd10h);
  ASSERT_EQ(amd.size(), 4u);
  EXPECT_EQ(amd[0], ps::PerfEvent::kFlops);
  EXPECT_EQ(amd[1], ps::PerfEvent::kMemAccesses);
  EXPECT_EQ(amd[2], ps::PerfEvent::kDcacheFills);
  EXPECT_EQ(amd[3], ps::PerfEvent::kNumaTraffic);

  const auto intel = ps::tacc_stats_event_set(ps::Arch::kIntelWestmere);
  ASSERT_EQ(intel.size(), 3u);
  EXPECT_EQ(intel[0], ps::PerfEvent::kFlops);
  EXPECT_EQ(intel[1], ps::PerfEvent::kNumaTraffic);
  EXPECT_EQ(intel[2], ps::PerfEvent::kL1DHits);
}

TEST(Perf, ProgramClearsValue) {
  ps::PerfCore core(ps::Arch::kAmd10h);
  core.program(0, ps::PerfEvent::kFlops);
  core.deliver(ps::PerfEvent::kFlops, 1000);
  EXPECT_EQ(core.read(0), 1000u);
  core.program(0, ps::PerfEvent::kFlops);  // reprogram = clear (like MSR write)
  EXPECT_EQ(core.read(0), 0u);
}

TEST(Perf, DeliverOnlyToMatchingSlot) {
  ps::PerfCore core(ps::Arch::kAmd10h);
  core.program(0, ps::PerfEvent::kFlops);
  core.program(1, ps::PerfEvent::kMemAccesses);
  core.deliver(ps::PerfEvent::kFlops, 10);
  core.deliver(ps::PerfEvent::kMemAccesses, 20);
  core.deliver(ps::PerfEvent::kNumaTraffic, 30);  // nobody programmed: dropped
  EXPECT_EQ(core.read(0), 10u);
  EXPECT_EQ(core.read(1), 20u);
  EXPECT_EQ(core.read(2), 0u);
}

TEST(Perf, SlotOf) {
  ps::PerfCore core(ps::Arch::kIntelWestmere);
  core.program(2, ps::PerfEvent::kL1DHits);
  EXPECT_EQ(core.slot_of(ps::PerfEvent::kL1DHits), 2u);
  EXPECT_EQ(core.slot_of(ps::PerfEvent::kFlops), ps::PerfCore::npos);
}

TEST(Perf, UserCustomEventSurvivesReads) {
  // The periodic path reads without reprogramming; a user event must keep
  // accumulating.
  ps::PerfCore core(ps::Arch::kAmd10h);
  core.program(0, ps::PerfEvent::kUserCustom);
  core.deliver(ps::PerfEvent::kUserCustom, 5);
  EXPECT_EQ(core.read(0), 5u);
  core.deliver(ps::PerfEvent::kUserCustom, 5);
  EXPECT_EQ(core.read(0), 10u);
}

TEST(Perf, Rejections) {
  ps::PerfCore core(ps::Arch::kIntelWestmere);
  EXPECT_THROW(core.program(4, ps::PerfEvent::kFlops), supremm::InvalidArgument);
  EXPECT_THROW(core.program(0, ps::PerfEvent::kMemAccesses), supremm::InvalidArgument);
  EXPECT_THROW((void)core.read(99), supremm::InvalidArgument);
}

// --- node counters ------------------------------------------------------

TEST(NodeCounters, Geometry) {
  ps::NodeCounters nc("host1", ps::Arch::kAmd10h, 4, 4, 32ULL * 1024 * 1024);
  EXPECT_EQ(nc.hostname(), "host1");
  EXPECT_EQ(nc.sockets(), 4u);
  EXPECT_EQ(nc.cores(), 16u);
  EXPECT_EQ(nc.cores_per_socket(), 4u);
  EXPECT_EQ(nc.mem_total_kb(), 32ULL * 1024 * 1024);
  EXPECT_EQ(nc.perf.size(), 16u);
  EXPECT_EQ(nc.numa.size(), 4u);
}

TEST(NodeCounters, RejectsZeroGeometry) {
  EXPECT_THROW(ps::NodeCounters("h", ps::Arch::kAmd10h, 0, 4, 1024),
               supremm::InvalidArgument);
  EXPECT_THROW(ps::NodeCounters("h", ps::Arch::kAmd10h, 2, 0, 1024),
               supremm::InvalidArgument);
}

TEST(NodeCounters, MemoryStartsFree) {
  ps::NodeCounters nc("h", ps::Arch::kIntelWestmere, 2, 6, 24ULL * 1024 * 1024);
  for (const auto& m : nc.mem) {
    EXPECT_EQ(m.mem_total, 12ULL * 1024 * 1024);
    EXPECT_EQ(m.mem_free, m.mem_total);
    EXPECT_EQ(m.mem_used, 0u);
  }
}

TEST(NodeCounters, SetMemUsedSplitsAcrossSockets) {
  ps::NodeCounters nc("h", ps::Arch::kAmd10h, 2, 8, 32ULL * 1024 * 1024);
  nc.set_mem_used_kb(10ULL * 1024 * 1024);
  std::uint64_t used = 0;
  for (const auto& m : nc.mem) {
    used += m.mem_used;
    EXPECT_EQ(m.mem_used + m.mem_free, m.mem_total);
  }
  EXPECT_EQ(used, 10ULL * 1024 * 1024);
}

TEST(NodeCounters, SetMemUsedClampsToCapacity) {
  ps::NodeCounters nc("h", ps::Arch::kAmd10h, 1, 4, 1024 * 1024);
  nc.set_mem_used_kb(99ULL * 1024 * 1024);
  EXPECT_EQ(nc.mem[0].mem_used, 1024u * 1024u);
  EXPECT_EQ(nc.mem[0].mem_free, 0u);
}

TEST(NodeCounters, CachedFractionAccounting) {
  ps::NodeCounters nc("h", ps::Arch::kAmd10h, 1, 4, 8ULL * 1024 * 1024);
  nc.set_mem_used_kb(4ULL * 1024 * 1024, 0.5);
  const auto& m = nc.mem[0];
  EXPECT_EQ(m.cached, 2ULL * 1024 * 1024);
  EXPECT_LE(m.anon_pages + m.cached + m.buffers, m.mem_used + 1);
}

TEST(NodeCounters, NamedDeviceLookup) {
  ps::NodeCounters nc("h", ps::Arch::kAmd10h, 1, 1, 1024);
  nc.net_devs.push_back({.name = "eth0"});
  nc.lustre_mounts.push_back({.name = "scratch"});
  EXPECT_EQ(&nc.net("eth0"), &nc.net_devs[0]);
  EXPECT_EQ(&nc.lustre("scratch"), &nc.lustre_mounts[0]);
  EXPECT_THROW((void)nc.net("ib9"), supremm::NotFoundError);
  EXPECT_THROW((void)nc.lustre("nope"), supremm::NotFoundError);
}

TEST(NodeCounters, ConstLookup) {
  ps::NodeCounters nc("h", ps::Arch::kAmd10h, 1, 1, 1024);
  nc.net_devs.push_back({.name = "eth0"});
  const ps::NodeCounters& cref = nc;
  EXPECT_EQ(cref.net("eth0").rx_bytes, 0u);
}
