// Unit tests for the TACC_Stats collector: schemas, collectors, the raw
// text format (writer/reader round trip), and the per-node agent.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.h"
#include "facility/engine.h"
#include "facility/hardware.h"
#include "facility/scheduler.h"
#include "taccstats/agent.h"
#include "taccstats/collectors.h"
#include "taccstats/reader.h"
#include "taccstats/schema.h"
#include "taccstats/writer.h"

namespace ts = supremm::taccstats;
namespace fa = supremm::facility;
namespace ps = supremm::procsim;
namespace sc = supremm::common;

// --- schema ------------------------------------------------------------

TEST(Schema, SerializeParseRoundTrip) {
  ts::Schema s;
  s.type = "cpu";
  s.fields = {{"user", ts::FieldKind::kEvent, "cs"}, {"load", ts::FieldKind::kGauge, ""}};
  const std::string line = s.serialize();
  EXPECT_EQ(line, "!cpu user;E,U=cs load;G");
  const ts::Schema back = ts::Schema::parse(line);
  EXPECT_EQ(back.type, "cpu");
  ASSERT_EQ(back.fields.size(), 2u);
  EXPECT_EQ(back.fields[0].name, "user");
  EXPECT_EQ(back.fields[0].kind, ts::FieldKind::kEvent);
  EXPECT_EQ(back.fields[0].unit, "cs");
  EXPECT_EQ(back.fields[1].kind, ts::FieldKind::kGauge);
}

TEST(Schema, ParseRejectsMalformed) {
  EXPECT_THROW((void)ts::Schema::parse("cpu user;E"), supremm::ParseError);
  EXPECT_THROW((void)ts::Schema::parse("!cpu user"), supremm::ParseError);
  EXPECT_THROW((void)ts::Schema::parse("!cpu user;X"), supremm::ParseError);
  EXPECT_THROW((void)ts::Schema::parse("!"), supremm::ParseError);
}

TEST(Schema, FieldIndex) {
  const auto s = ts::Schema::parse("!mem MemTotal;G,U=KB MemUsed;G,U=KB");
  EXPECT_EQ(s.field_index("MemUsed"), 1u);
  EXPECT_THROW((void)s.field_index("Nope"), supremm::NotFoundError);
}

TEST(SchemaRegistry, CoversPaperSubsystems) {
  const ts::SchemaRegistry reg(ps::Arch::kAmd10h);
  // §2's inventory of what TACC_Stats collects.
  for (const char* type : {"cpu", "amd64_pmc", "mem", "vm", "net", "block", "ib", "llite",
                           "lnet", "numa", "irq", "ps", "sysv_shm", "tmpfs", "vfs"}) {
    EXPECT_TRUE(reg.has(type)) << type;
  }
  EXPECT_FALSE(reg.has("intel_wtm"));
  EXPECT_THROW((void)reg.get("nope"), supremm::NotFoundError);
}

TEST(SchemaRegistry, PerfTypeNamePerArch) {
  EXPECT_EQ(ts::SchemaRegistry::perf_type_name(ps::Arch::kAmd10h), "amd64_pmc");
  EXPECT_EQ(ts::SchemaRegistry::perf_type_name(ps::Arch::kIntelWestmere), "intel_wtm");
  EXPECT_TRUE(ts::SchemaRegistry(ps::Arch::kIntelWestmere).has("intel_wtm"));
}

TEST(SchemaRegistry, CpuFieldsAreEvents) {
  const ts::SchemaRegistry reg(ps::Arch::kAmd10h);
  for (const auto& f : reg.get("cpu").fields) {
    EXPECT_EQ(f.kind, ts::FieldKind::kEvent);
    EXPECT_EQ(f.unit, "cs");
  }
  for (const auto& f : reg.get("mem").fields) {
    EXPECT_EQ(f.kind, ts::FieldKind::kGauge);
  }
}

// --- collectors ----------------------------------------------------------

class CollectorsFixture : public ::testing::Test {
 protected:
  CollectorsFixture() : nc_("n0", ps::Arch::kAmd10h, 4, 4, 32ULL << 20) {
    nc_.net_devs.push_back({.name = "eth0"});
    nc_.block_devs.push_back({.name = "sda"});
    nc_.lustre_mounts.push_back({.name = "scratch"});
    nc_.lustre_mounts.push_back({.name = "work"});
    nc_.tmpfs_mounts.push_back({.name = "/dev/shm"});
    collectors_ = ts::standard_collectors(ps::Arch::kAmd10h);
  }
  ps::NodeCounters nc_;
  std::vector<std::unique_ptr<ts::Collector>> collectors_;
};

TEST_F(CollectorsFixture, AllTypesMatchSchemas) {
  const ts::SchemaRegistry reg(ps::Arch::kAmd10h);
  const auto records = ts::collect_all(collectors_, nc_);
  EXPECT_EQ(records.size(), reg.all().size());
  for (const auto& rec : records) {
    const auto& schema = reg.get(rec.type);
    for (const auto& row : rec.rows) {
      EXPECT_EQ(row.values.size(), schema.fields.size()) << rec.type;
    }
  }
}

TEST_F(CollectorsFixture, RowCountsPerDevice) {
  const auto records = ts::collect_all(collectors_, nc_);
  for (const auto& r : records) {
    if (r.type == "cpu" || r.type == "amd64_pmc") {
      EXPECT_EQ(r.rows.size(), 16u);
    }
    if (r.type == "mem" || r.type == "numa") {
      EXPECT_EQ(r.rows.size(), 4u);
    }
    if (r.type == "llite") {
      EXPECT_EQ(r.rows.size(), 2u);
    }
  }
}

TEST_F(CollectorsFixture, ValuesReflectCounterState) {
  nc_.cpu[3].user = 1234;
  nc_.lustre("scratch").write_bytes = 999;
  nc_.perf[0].program(0, ps::PerfEvent::kFlops);
  nc_.perf[0].deliver(ps::PerfEvent::kFlops, 42);
  const auto records = ts::collect_all(collectors_, nc_);
  for (const auto& r : records) {
    if (r.type == "cpu") {
      EXPECT_EQ(r.rows[3].values[0], 1234u);
    }
    if (r.type == "llite") {
      EXPECT_EQ(r.rows[0].device, "scratch");
      EXPECT_EQ(r.rows[0].values[1], 999u);
    }
    if (r.type == "amd64_pmc") {
      // CTL0 = flops event id, CTR0 = 42.
      EXPECT_EQ(r.rows[0].values[0], static_cast<std::uint64_t>(ps::PerfEvent::kFlops));
      EXPECT_EQ(r.rows[0].values[4], 42u);
    }
  }
}

// --- writer / reader round trip ------------------------------------------

TEST(RawFormat, RoundTrip) {
  const ts::SchemaRegistry reg(ps::Arch::kIntelWestmere);
  ts::RawWriter writer("ls4-c0001", reg);
  ps::NodeCounters nc("ls4-c0001", ps::Arch::kIntelWestmere, 2, 6, 24ULL << 20);
  nc.net_devs.push_back({.name = "eth0"});
  nc.block_devs.push_back({.name = "sda"});
  nc.lustre_mounts.push_back({.name = "scratch"});
  nc.tmpfs_mounts.push_back({.name = "/tmp"});
  nc.cpu[0].user = 77;
  nc.ib.tx_bytes = 1234567;

  const auto collectors = ts::standard_collectors(ps::Arch::kIntelWestmere);
  ts::Sample s;
  s.time = 3600;
  s.job_id = 17;
  s.mark = ts::SampleMark::kJobBegin;
  s.records = ts::collect_all(collectors, nc);

  std::string content = writer.header();
  writer.append_sample(s, content);
  nc.cpu[0].user = 177;
  ts::Sample s2 = s;
  s2.time = 4200;
  s2.mark = ts::SampleMark::kPeriodic;
  s2.records = ts::collect_all(collectors, nc);
  writer.append_sample(s2, content);

  const ts::ParsedFile parsed = ts::parse_raw(content);
  EXPECT_EQ(parsed.hostname, "ls4-c0001");
  EXPECT_EQ(parsed.version, "2.0");
  ASSERT_EQ(parsed.samples.size(), 2u);
  EXPECT_EQ(parsed.samples[0].time, 3600);
  EXPECT_EQ(parsed.samples[0].job_id, 17);
  EXPECT_EQ(parsed.samples[0].mark, ts::SampleMark::kJobBegin);
  EXPECT_EQ(parsed.samples[1].mark, ts::SampleMark::kPeriodic);

  const auto* cpu0 = parsed.samples[0].find("cpu");
  ASSERT_NE(cpu0, nullptr);
  EXPECT_EQ(cpu0->rows[0].values[0], 77u);
  const auto* cpu1 = parsed.samples[1].find("cpu");
  ASSERT_NE(cpu1, nullptr);
  EXPECT_EQ(cpu1->rows[0].values[0], 177u);
  const auto* ib = parsed.samples[0].find("ib");
  ASSERT_NE(ib, nullptr);
  EXPECT_EQ(ib->rows[0].values[2], 1234567u);
  EXPECT_TRUE(parsed.schemas.has("intel_wtm"));
}

TEST(RawFormat, MarkNamesRoundTrip) {
  for (const auto m : {ts::SampleMark::kPeriodic, ts::SampleMark::kJobBegin,
                       ts::SampleMark::kJobEnd, ts::SampleMark::kRotate}) {
    EXPECT_EQ(ts::parse_mark(ts::mark_name(m)), m);
  }
  EXPECT_THROW((void)ts::parse_mark("bogus"), supremm::ParseError);
}

TEST(RawFormat, ParserRejectsCorruption) {
  EXPECT_THROW((void)ts::parse_raw("no magic here\n"), supremm::ParseError);
  EXPECT_THROW((void)ts::parse_raw("!cpu user;E\n100 0 periodic\ncpu 0 5\n"),
               supremm::ParseError);
  EXPECT_THROW((void)ts::parse_raw("$tacc_stats 2.0\n100 0 periodic\nmystery 0 5\n"),
               supremm::ParseError);
  EXPECT_THROW(
      (void)ts::parse_raw("$tacc_stats 2.0\n!cpu user;E idle;E\n100 0 periodic\ncpu 0 5\n"),
      supremm::ParseError);
  EXPECT_THROW((void)ts::parse_raw("$tacc_stats 2.0\n!cpu user;E\ncpu 0 5\n"),
               supremm::ParseError);
  EXPECT_THROW((void)ts::parse_raw("$tacc_stats 2.0\n!cpu user;E\n100 0\n"),
               supremm::ParseError);
}

TEST(RawFormat, SampleSizeMatchesSerialized) {
  const ts::SchemaRegistry reg(ps::Arch::kAmd10h);
  ts::RawWriter writer("h", reg);
  ts::Sample s;
  s.time = 1;
  s.records = {{"cpu", {{"0", {1, 2, 3, 4, 5, 6, 7}}}}};
  std::string out;
  writer.append_sample(s, out);
  EXPECT_EQ(writer.sample_size(s), out.size());
}

// --- agent -----------------------------------------------------------------

class AgentFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    spec_ = fa::scaled(fa::ranger(), 0.005);  // ~20 nodes
    fa::JobRequest r;
    r.id = 1;
    r.nodes = 2;
    r.duration = 2 * sc::kHour;
    r.submit = 30 * sc::kMinute;
    r.behavior.idle_frac = 0.1;
    r.behavior.mem_gb = 4.0;
    r.behavior.flops_frac = 0.05;
    auto execs = fa::Scheduler::run(spec_, {r}, {});
    engine_ = std::make_unique<fa::FacilityEngine>(
        spec_, std::move(execs), std::vector<fa::MaintenanceWindow>{}, 0, sc::kDay, 3);
  }
  fa::ClusterSpec spec_;
  std::unique_ptr<fa::FacilityEngine> engine_;
};

TEST_F(AgentFixture, EmitsBeginPeriodicEnd) {
  const std::size_t node = engine_->executions()[0].node_ids[0];
  ts::NodeAgent agent(*engine_, node, ts::AgentConfig{});
  const auto out = agent.run();
  ASSERT_FALSE(out.files.empty());
  std::string all;
  for (const auto& f : out.files) all += f.content;
  const auto parsed = ts::parse_raw(all);

  std::size_t begins = 0, ends = 0, periodics_in_job = 0;
  for (const auto& s : parsed.samples) {
    if (s.mark == ts::SampleMark::kJobBegin) {
      ++begins;
      EXPECT_EQ(s.job_id, 1);
      EXPECT_EQ(s.time, 30 * sc::kMinute);
    }
    if (s.mark == ts::SampleMark::kJobEnd) {
      ++ends;
      EXPECT_EQ(s.time, 30 * sc::kMinute + 2 * sc::kHour);
    }
    if (s.mark == ts::SampleMark::kPeriodic && s.job_id == 1) ++periodics_in_job;
  }
  EXPECT_EQ(begins, 1u);
  EXPECT_EQ(ends, 1u);
  // 2 h at 10-minute cadence: 11 interior samples.
  EXPECT_EQ(periodics_in_job, 11u);
}

TEST_F(AgentFixture, ReprogramsCountersAtJobBegin) {
  const std::size_t node = engine_->executions()[0].node_ids[0];
  ts::NodeAgent agent(*engine_, node, ts::AgentConfig{});
  const auto out = agent.run();
  std::string all;
  for (const auto& f : out.files) all += f.content;
  const auto parsed = ts::parse_raw(all);
  for (const auto& s : parsed.samples) {
    if (s.mark != ts::SampleMark::kJobBegin) continue;
    const auto* pmc = s.find("amd64_pmc");
    ASSERT_NE(pmc, nullptr);
    // CTL0 = FLOPS, CTR values cleared at begin.
    EXPECT_EQ(pmc->rows[0].values[0], static_cast<std::uint64_t>(ps::PerfEvent::kFlops));
    EXPECT_EQ(pmc->rows[0].values[4], 0u);
  }
}

TEST_F(AgentFixture, DailyRotation) {
  ts::NodeAgent agent(*engine_, 0, ts::AgentConfig{});
  const auto out = agent.run();
  // One simulated day starting at t=0: a single file.
  EXPECT_EQ(out.files.size(), 1u);
  EXPECT_EQ(out.files[0].day, 0);
  EXPECT_GT(out.bytes, 0u);
  EXPECT_GT(out.samples, 100u);  // ~144 periodic samples per day
}

TEST_F(AgentFixture, BytesPerNodeDayNearPaperFigure) {
  // Paper §4.1: ~0.5 MB per node per day on Ranger (16 cores).
  ts::NodeAgent agent(*engine_, 0, ts::AgentConfig{});
  const auto out = agent.run();
  const double mb = static_cast<double>(out.bytes) / 1e6;
  EXPECT_GT(mb, 0.15);
  EXPECT_LT(mb, 1.5);
}

TEST_F(AgentFixture, RunAllAgentsCoversCluster) {
  const auto outputs = ts::run_all_agents(*engine_, ts::AgentConfig{}, 4);
  EXPECT_EQ(outputs.size(), engine_->node_count());
  for (const auto& o : outputs) EXPECT_GT(o.samples, 0u);
}

TEST(Agent, UserCounterFlagDeterministic) {
  int hits = 0;
  for (fa::JobId id = 1; id <= 5000; ++id) {
    const bool a = ts::user_programs_counters(id, 0.02);
    EXPECT_EQ(a, ts::user_programs_counters(id, 0.02));
    hits += a ? 1 : 0;
  }
  EXPECT_NEAR(hits / 5000.0, 0.02, 0.01);
  EXPECT_FALSE(ts::user_programs_counters(123, 0.0));
}

TEST(Agent, UserProgrammedJobLosesFlopsSlot) {
  // Force the user-programming path on every job and verify the periodic
  // samples report CTL0 == USER_CUSTOM after the first interval.
  auto spec = fa::scaled(fa::ranger(), 0.005);
  fa::JobRequest r;
  r.id = 1;
  r.nodes = 1;
  r.duration = sc::kHour;
  r.submit = 0;
  r.behavior.idle_frac = 0.1;
  r.behavior.mem_gb = 2.0;
  auto execs = fa::Scheduler::run(spec, {r}, {});
  fa::FacilityEngine engine(spec, std::move(execs), {}, 0, 2 * sc::kHour, 3);
  ts::AgentConfig cfg;
  cfg.user_counter_prob = 1.0;
  ts::NodeAgent agent(engine, engine.executions()[0].node_ids[0], cfg);
  const auto out = agent.run();
  std::string all;
  for (const auto& f : out.files) all += f.content;
  const auto parsed = ts::parse_raw(all);
  bool saw_custom = false;
  for (const auto& s : parsed.samples) {
    if (s.mark == ts::SampleMark::kPeriodic && s.job_id == 1) {
      const auto* pmc = s.find("amd64_pmc");
      ASSERT_NE(pmc, nullptr);
      if (pmc->rows[0].values[0] ==
          static_cast<std::uint64_t>(ps::PerfEvent::kUserCustom)) {
        saw_custom = true;
      }
    }
  }
  EXPECT_TRUE(saw_custom);
}

TEST(Agent, NoSamplesDuringMaintenance) {
  auto spec = fa::scaled(fa::ranger(), 0.005);
  const std::vector<fa::MaintenanceWindow> wins = {{6 * sc::kHour, 6 * sc::kHour, true}};
  fa::FacilityEngine engine(spec, {}, wins, 0, sc::kDay, 3);
  ts::NodeAgent agent(engine, 0, ts::AgentConfig{});
  const auto out = agent.run();
  std::string all;
  for (const auto& f : out.files) all += f.content;
  const auto parsed = ts::parse_raw(all);
  for (const auto& s : parsed.samples) {
    EXPECT_FALSE(s.time > 6 * sc::kHour && s.time < 12 * sc::kHour)
        << "sample at " << s.time << " inside the outage";
  }
  // Rotation sample on recovery.
  bool saw_rotate_after = false;
  for (const auto& s : parsed.samples) {
    if (s.mark == ts::SampleMark::kRotate && s.time == 12 * sc::kHour) {
      saw_rotate_after = true;
    }
  }
  EXPECT_TRUE(saw_rotate_after);
}
