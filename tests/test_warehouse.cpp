// Unit tests for the columnar warehouse: typed columns, row building,
// filtering and grouped aggregation.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>

#include "common/error.h"
#include "warehouse/query.h"
#include "warehouse/table.h"

namespace wh = supremm::warehouse;

namespace {

wh::Table jobs_table() {
  wh::Table t("jobs", {{"user", wh::ColType::kString},
                       {"app", wh::ColType::kString},
                       {"node_hours", wh::ColType::kDouble},
                       {"cpu_idle", wh::ColType::kDouble},
                       {"nodes", wh::ColType::kInt64}});
  const struct {
    const char* user;
    const char* app;
    double nh;
    double idle;
    std::int64_t nodes;
  } rows[] = {
      {"alice", "NAMD", 100, 0.05, 16}, {"alice", "NAMD", 50, 0.10, 8},
      {"bob", "AMBER", 200, 0.30, 4},   {"bob", "NAMD", 25, 0.08, 2},
      {"carol", "WRF", 400, 0.15, 32},
  };
  for (const auto& r : rows) {
    t.append()
        .set("user", r.user)
        .set("app", r.app)
        .set("node_hours", r.nh)
        .set("cpu_idle", r.idle)
        .set("nodes", r.nodes);
  }
  return t;
}

}  // namespace

// --- column / table ---------------------------------------------------------

TEST(Column, TypeEnforcement) {
  wh::Column c("x", wh::ColType::kDouble);
  c.push_double(1.5);
  EXPECT_THROW(c.push_int64(1), supremm::InvalidArgument);
  EXPECT_THROW(c.push_string("a"), supremm::InvalidArgument);
  EXPECT_DOUBLE_EQ(c.as_double(0), 1.5);
  EXPECT_THROW((void)c.as_int64(0), supremm::InvalidArgument);
}

TEST(Column, StringDictionaryEncoding) {
  wh::Column c("s", wh::ColType::kString);
  c.push_string("aa");
  c.push_string("bb");
  c.push_string("aa");
  EXPECT_EQ(c.code(0), c.code(2));
  EXPECT_NE(c.code(0), c.code(1));
  EXPECT_EQ(c.as_string(2), "aa");
  EXPECT_EQ(c.decode(c.code(1)), "bb");
}

TEST(Column, IntAsDoubleCoercion) {
  wh::Column c("i", wh::ColType::kInt64);
  c.push_int64(7);
  EXPECT_DOUBLE_EQ(c.as_double(0), 7.0);
}

TEST(Table, SchemaAndRows) {
  const auto t = jobs_table();
  EXPECT_EQ(t.rows(), 5u);
  EXPECT_EQ(t.cols(), 5u);
  EXPECT_TRUE(t.has_col("user"));
  EXPECT_FALSE(t.has_col("nope"));
  EXPECT_THROW((void)t.col("nope"), supremm::NotFoundError);
  EXPECT_EQ(t.col("user").as_string(0), "alice");
  EXPECT_EQ(t.col("nodes").as_int64(4), 32);
}

TEST(Table, RowBuilderRequiresAllColumns) {
  wh::Table t("t", {{"a", wh::ColType::kDouble}, {"b", wh::ColType::kDouble}});
  EXPECT_THROW({ t.append().set("a", 1.0); }, supremm::InvalidArgument);
}

TEST(Table, RejectsEmptySchema) {
  EXPECT_THROW(wh::Table("t", {}), supremm::InvalidArgument);
}

TEST(Table, SelectPredicate) {
  const auto t = jobs_table();
  const auto rows =
      t.select([&](std::size_t r) { return t.col("cpu_idle").as_double(r) > 0.1; });
  EXPECT_EQ(rows.size(), 2u);  // bob/AMBER and carol/WRF
}

// --- query -------------------------------------------------------------------

TEST(Query, GroupBySum) {
  const auto t = jobs_table();
  const auto g = wh::Query(t)
                     .group_by({"user"})
                     .aggregate({{"node_hours", wh::AggKind::kSum, "", ""}})
                     .run();
  EXPECT_EQ(g.rows(), 3u);
  // First-seen order: alice, bob, carol.
  EXPECT_EQ(g.col("user").as_string(0), "alice");
  EXPECT_DOUBLE_EQ(g.col("node_hours_sum").as_double(0), 150.0);
  EXPECT_DOUBLE_EQ(g.col("node_hours_sum").as_double(1), 225.0);
  EXPECT_DOUBLE_EQ(g.col("node_hours_sum").as_double(2), 400.0);
}

TEST(Query, WeightedMean) {
  const auto t = jobs_table();
  const auto g =
      wh::Query(t)
          .group_by({"user"})
          .aggregate({{"cpu_idle", wh::AggKind::kWeightedMean, "node_hours", "idle"}})
          .run();
  // alice: (0.05*100 + 0.10*50)/150.
  EXPECT_NEAR(g.col("idle").as_double(0), 10.0 / 150.0, 1e-12);
}

TEST(Query, CountMaxMin) {
  const auto t = jobs_table();
  const auto g = wh::Query(t)
                     .group_by({"app"})
                     .aggregate({{"", wh::AggKind::kCount, "", "n"},
                                 {"node_hours", wh::AggKind::kMax, "", "max_nh"},
                                 {"node_hours", wh::AggKind::kMin, "", "min_nh"}})
                     .run();
  // Apps in first-seen order: NAMD, AMBER, WRF.
  EXPECT_EQ(g.col("n").as_int64(0), 3);
  EXPECT_DOUBLE_EQ(g.col("max_nh").as_double(0), 100.0);
  EXPECT_DOUBLE_EQ(g.col("min_nh").as_double(0), 25.0);
}

TEST(Query, WhereFilter) {
  const auto t = jobs_table();
  const auto g = wh::Query(t)
                     .where(wh::eq("app", "NAMD"))
                     .group_by({"user"})
                     .aggregate({{"", wh::AggKind::kCount, "", "n"}})
                     .run();
  EXPECT_EQ(g.rows(), 2u);  // alice, bob
}

TEST(Query, PredicateHelpers) {
  const auto t = jobs_table();
  const auto g = wh::Query(t)
                     .where(wh::all_of({wh::ge("node_hours", 50.0),
                                        wh::le("cpu_idle", 0.2),
                                        wh::between("nodes", 4.0, 40.0)}))
                     .group_by({})
                     .aggregate({{"", wh::AggKind::kCount, "", "n"}})
                     .run();
  ASSERT_EQ(g.rows(), 1u);
  EXPECT_EQ(g.col("n").as_int64(0), 3);  // alice100, alice50, carol
}

TEST(Query, GlobalAggregateWithoutKeys) {
  const auto t = jobs_table();
  const auto g =
      wh::Query(t).group_by({}).aggregate({{"node_hours", wh::AggKind::kMean, "", ""}}).run();
  ASSERT_EQ(g.rows(), 1u);
  EXPECT_DOUBLE_EQ(g.col("node_hours_mean").as_double(0), 155.0);
}

TEST(Query, MultiKeyGrouping) {
  const auto t = jobs_table();
  const auto g = wh::Query(t)
                     .group_by({"user", "app"})
                     .aggregate({{"", wh::AggKind::kCount, "", "n"}})
                     .run();
  EXPECT_EQ(g.rows(), 4u);  // alice/NAMD, bob/AMBER, bob/NAMD, carol/WRF
}

TEST(Query, Int64KeyGrouping) {
  const auto t = jobs_table();
  const auto g = wh::Query(t)
                     .group_by({"nodes"})
                     .aggregate({{"", wh::AggKind::kCount, "", "n"}})
                     .run();
  EXPECT_EQ(g.rows(), 5u);  // all distinct node counts
  EXPECT_EQ(g.col("nodes").as_int64(0), 16);
}

TEST(Query, RejectsNoAggregates) {
  const auto t = jobs_table();
  EXPECT_THROW((void)wh::Query(t).group_by({"user"}).run(), supremm::InvalidArgument);
}

TEST(Query, TimeBucket) {
  EXPECT_EQ(wh::time_bucket(0, 600), 0);
  EXPECT_EQ(wh::time_bucket(599, 600), 0);
  EXPECT_EQ(wh::time_bucket(600, 600), 600);
  EXPECT_EQ(wh::time_bucket(1234, 600), 1200);
}

// --- aggregate edge cases (DESIGN.md §12 satellite coverage) ----------------

namespace {

/// n rows of (k, v) with an optional zone index.
wh::Table edge_table(std::size_t rows, std::size_t chunk_rows,
                     double (*value)(std::size_t)) {
  wh::Table t("edge", {{"k", wh::ColType::kInt64}, {"v", wh::ColType::kDouble}});
  for (std::size_t r = 0; r < rows; ++r) {
    t.append().set("k", static_cast<std::int64_t>(r % 3)).set("v", value(r));
  }
  if (chunk_rows > 0) t.rebuild_zone_index(chunk_rows);
  return t;
}

}  // namespace

// A predicate matching nothing must yield a schema-complete empty result for
// grouped queries (no groups, not a zero-filled row) at every thread count.
TEST(QueryEdges, EmptyGroupByResultSet) {
  const auto t = edge_table(1000, 64, [](std::size_t r) { return static_cast<double>(r); });
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    wh::Query q(t);
    const auto out = q.where(wh::ge("v", 1e9))
                         .group_by({"k"})
                         .aggregate({{"v", wh::AggKind::kSum, "", ""},
                                     {"", wh::AggKind::kCount, "", "n"}})
                         .threads(threads)
                         .run();
    EXPECT_EQ(out.rows(), 0u) << threads << " threads";
    EXPECT_EQ(out.cols(), 3u);
    EXPECT_EQ(q.stats().rows_matched, 0u);
  }
}

// When the zone maps exclude every chunk, nothing is scanned — and the
// result must still be well-formed and empty.
TEST(QueryEdges, AllChunksPruned) {
  const auto t = edge_table(1024, 64, [](std::size_t r) { return static_cast<double>(r % 50); });
  wh::Query q(t);
  const auto out = q.where(wh::ge("v", 1000.0))
                       .group_by({"k"})
                       .aggregate({{"", wh::AggKind::kCount, "", "n"}})
                       .run();
  EXPECT_EQ(out.rows(), 0u);
  EXPECT_EQ(q.stats().chunks_total, 16u);
  EXPECT_EQ(q.stats().chunks_pruned, 16u);
  EXPECT_EQ(q.stats().rows_scanned, 0u);
  EXPECT_EQ(q.stats().rows_matched, 0u);
}

// Single-row table: the degenerate chunk/segment grid still produces exact
// aggregates, with and without a zone index.
TEST(QueryEdges, SingleRowTable) {
  for (const std::size_t chunk_rows : {std::size_t{0}, std::size_t{4096}}) {
    const auto t = edge_table(1, chunk_rows, [](std::size_t) { return -2.5; });
    wh::Query q(t);
    const auto out = q.group_by({"k"})
                         .aggregate({{"v", wh::AggKind::kSum, "", ""},
                                     {"v", wh::AggKind::kMean, "", ""},
                                     {"v", wh::AggKind::kMax, "", ""},
                                     {"v", wh::AggKind::kMin, "", ""},
                                     {"", wh::AggKind::kCount, "", "n"}})
                         .run();
    ASSERT_EQ(out.rows(), 1u);
    EXPECT_EQ(out.col("k").as_int64(0), 0);
    EXPECT_EQ(out.col("v_sum").as_double(0), -2.5);
    EXPECT_EQ(out.col("v_mean").as_double(0), -2.5);
    EXPECT_EQ(out.col("v_max").as_double(0), -2.5);
    EXPECT_EQ(out.col("v_min").as_double(0), -2.5);
    EXPECT_EQ(out.col("n").as_int64(0), 1);
  }
}

// min/max over a group whose values are all NaN: NaN never wins a
// std::min/std::max against the seed, so the accumulators stay at their
// +inf/-inf initials and that is what the engine emits (n > 0, so the
// zero-guard does not apply). This pins the documented behavior — a silent
// change here would break oracle bit-compatibility.
TEST(QueryEdges, MinMaxOverAllNaNGroupEmitsInfinities) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  wh::Table t("edge", {{"k", wh::ColType::kInt64}, {"v", wh::ColType::kDouble}});
  for (int r = 0; r < 4; ++r) t.append().set("k", std::int64_t{1}).set("v", nan);
  for (int r = 0; r < 3; ++r) t.append().set("k", std::int64_t{2}).set("v", 7.0);
  const auto out = wh::Query(t)
                       .group_by({"k"})
                       .aggregate({{"v", wh::AggKind::kMin, "", ""},
                                   {"v", wh::AggKind::kMax, "", ""},
                                   {"v", wh::AggKind::kSum, "", ""}})
                       .run();
  ASSERT_EQ(out.rows(), 2u);
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(out.col("v_min").as_double(0), inf);
  EXPECT_EQ(out.col("v_max").as_double(0), -inf);
  EXPECT_TRUE(std::isnan(out.col("v_sum").as_double(0)));  // NaN poisons sums
  EXPECT_EQ(out.col("v_min").as_double(1), 7.0);
  EXPECT_EQ(out.col("v_max").as_double(1), 7.0);
  EXPECT_EQ(out.col("v_sum").as_double(1), 21.0);
}
