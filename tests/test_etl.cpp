// Tests for the ingest pipeline: job summaries, the system series, metric
// plumbing and the warehouse loader - over a full (small) simulated run.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "sim_fixture.h"

namespace fa = supremm::facility;
namespace etl = supremm::etl;
namespace sc = supremm::common;
using supremm::testing::small_ranger_run;

// --- metric catalogue -------------------------------------------------------

TEST(JobMetrics, KeyMetricNamesMatchPaper) {
  const auto& names = etl::key_metric_names();
  ASSERT_EQ(names.size(), 8u);  // §4.2: eight key metrics
  for (const char* m : {"cpu_idle", "cpu_flops", "mem_used", "mem_used_max",
                        "io_scratch_write", "io_work_write", "net_ib_tx", "net_lnet_tx"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), m), names.end()) << m;
  }
}

TEST(JobMetrics, MetricValueDispatch) {
  etl::JobSummary j;
  j.cpu_idle = 0.25;
  j.mem_used_gb = 7.5;
  j.flops_valid = true;
  j.cpu_flops_gf_node = 3.0;
  EXPECT_DOUBLE_EQ(etl::metric_value(j, "cpu_idle"), 0.25);
  EXPECT_DOUBLE_EQ(etl::metric_value(j, "mem_used"), 7.5);
  EXPECT_DOUBLE_EQ(etl::metric_value(j, "cpu_flops"), 3.0);
  EXPECT_THROW((void)etl::metric_value(j, "bogus"), supremm::NotFoundError);
}

TEST(JobMetrics, InvalidFlopsIsNaN) {
  etl::JobSummary j;
  j.flops_valid = false;
  j.cpu_flops_gf_node = 99.0;
  EXPECT_TRUE(std::isnan(etl::metric_value(j, "cpu_flops")));
}

// --- full pipeline over the shared fixture ------------------------------

TEST(Ingest, JobsMatchedToAccounting) {
  const auto& run = small_ranger_run();
  ASSERT_GT(run.result.jobs.size(), 20u);
  std::set<fa::JobId> acct_ids;
  for (const auto& a : run.acct) acct_ids.insert(a.job_id);
  for (const auto& j : run.result.jobs) {
    EXPECT_TRUE(acct_ids.count(j.id)) << j.id;
    EXPECT_FALSE(j.user.empty());
    EXPECT_EQ(j.cluster, "ranger");
    EXPECT_GT(j.node_hours, 0.0);
    EXPECT_GE(j.samples, 1u);
  }
}

TEST(Ingest, ShortJobsExcluded) {
  const auto& run = small_ranger_run();
  for (const auto& j : run.result.jobs) {
    EXPECT_GE(j.runtime(), 10 * sc::kMinute);  // paper's §4.1 filter
  }
}

TEST(Ingest, MetricRangesPlausible) {
  const auto& run = small_ranger_run();
  for (const auto& j : run.result.jobs) {
    EXPECT_GE(j.cpu_idle, 0.0);
    EXPECT_LE(j.cpu_idle, 1.0);
    EXPECT_GE(j.cpu_user, 0.0);
    EXPECT_LE(j.cpu_user + j.cpu_idle + j.cpu_system, 1.02);
    EXPECT_GE(j.mem_used_gb, 1.0);   // at least the OS baseline
    EXPECT_LE(j.mem_used_max_gb, 32.1);
    EXPECT_GE(j.mem_used_max_gb, j.mem_used_gb * 0.8);
    if (j.flops_valid) {
      EXPECT_GE(j.cpu_flops_gf_node, 0.0);
      EXPECT_LE(j.cpu_flops_gf_node, run.spec.node.peak_gflops_per_node());
    }
    EXPECT_GE(j.io_scratch_write_mb_s, 0.0);
    EXPECT_GE(j.net_ib_tx_mb_s, 0.0);
  }
}

TEST(Ingest, JobMetricsReflectBehavior) {
  // Each job's measured idle should track the behavior the simulator drew.
  const auto& run = small_ranger_run();
  std::size_t checked = 0;
  for (const auto& j : run.result.jobs) {
    for (const auto& e : run.engine->executions()) {
      if (e.req.id != j.id) continue;
      if (e.runtime() < 2 * sc::kHour) break;  // enough samples to converge
      EXPECT_NEAR(j.cpu_idle, e.req.behavior.idle_frac, 0.12)
          << "job " << j.id;
      EXPECT_NEAR(j.mem_used_gb, 1.6 + e.req.behavior.mem_gb,
                  e.req.behavior.mem_gb * 0.35 + 1.0)
          << "job " << j.id;
      ++checked;
      break;
    }
  }
  EXPECT_GT(checked, 5u);
}

TEST(Ingest, LnetTracksLustreTraffic) {
  // LNET carries Lustre client traffic: lnet_tx ~ scratch+work writes.
  const auto& run = small_ranger_run();
  for (const auto& j : run.result.jobs) {
    const double lustre_wr = j.io_scratch_write_mb_s + j.io_work_write_mb_s;
    if (lustre_wr < 0.5) continue;
    EXPECT_NEAR(j.net_lnet_tx_mb_s / lustre_wr, 1.02, 0.15) << "job " << j.id;
  }
}

TEST(Ingest, AppResolvedThroughLariat) {
  const auto& run = small_ranger_run();
  std::size_t with_app = 0;
  for (const auto& j : run.result.jobs) {
    if (!j.app.empty()) ++with_app;
  }
  EXPECT_EQ(with_app, run.result.jobs.size());  // every job launched via Lariat
}

TEST(Ingest, ScienceResolvedThroughProjectRegistry) {
  const auto& run = small_ranger_run();
  for (const auto& j : run.result.jobs) {
    EXPECT_FALSE(j.science.empty()) << j.id;
    EXPECT_NO_THROW((void)fa::science_from_name(j.science));
  }
}

TEST(Ingest, StatsAccounting) {
  const auto& run = small_ranger_run();
  const auto& st = run.result.stats;
  EXPECT_GT(st.bytes, 1000000u);
  EXPECT_EQ(st.files, run.files.size());
  EXPECT_GT(st.samples, 1000u);
  EXPECT_GT(st.pairs, st.samples / 2);
  EXPECT_GE(st.jobs_seen, run.result.jobs.size());
}

TEST(Ingest, SystemSeriesShapes) {
  const auto& run = small_ranger_run();
  const auto& ss = run.result.series;
  EXPECT_EQ(ss.bucket, 10 * sc::kMinute);
  EXPECT_EQ(ss.buckets, static_cast<std::size_t>(run.span / ss.bucket));
  EXPECT_EQ(ss.flops_tf.size(), ss.buckets);
  EXPECT_EQ(ss.active_nodes.size(), ss.buckets);

  double max_active = 0, max_up = 0;
  for (std::size_t i = 0; i < ss.buckets; ++i) {
    max_active = std::max(max_active, ss.active_nodes[i]);
    max_up = std::max(max_up, ss.up_nodes[i]);
    EXPECT_LE(ss.active_nodes[i], ss.up_nodes[i] + 1e-9);
    EXPECT_GE(ss.cpu_idle_frac[i], 0.0);
    EXPECT_LE(ss.cpu_idle_frac[i], 1.0);
  }
  EXPECT_LE(max_up, static_cast<double>(run.spec.node_count) + 1e-9);
  EXPECT_GT(max_active, 0.5 * static_cast<double>(run.spec.node_count));
}

TEST(Ingest, FacilityFlopsFarBelowPeak) {
  // Figure 9's headline: actual FLOPS are a few percent of the peak.
  const auto& run = small_ranger_run();
  const auto& f = run.result.series.flops_tf;
  double mean = 0, peak = 0;
  for (const double v : f) {
    mean += v;
    peak = std::max(peak, v);
  }
  mean /= static_cast<double>(f.size());
  EXPECT_GT(mean, 0.0);
  EXPECT_LT(mean, 0.10 * run.spec.peak_tflops());
  EXPECT_LT(peak, 0.30 * run.spec.peak_tflops());
}

TEST(Ingest, SeriesAccessorNames) {
  const auto& run = small_ranger_run();
  for (const char* m : {"cpu_flops", "mem_used", "io_scratch_write", "net_ib_tx",
                        "cpu_idle", "active_nodes"}) {
    EXPECT_EQ(run.result.series.series(m).size(), run.result.series.buckets) << m;
  }
  EXPECT_THROW((void)run.result.series.series("bogus"), supremm::NotFoundError);
}

TEST(Ingest, DeterministicAcrossThreadCounts) {
  // DESIGN.md §7: results are bit-identical for any thread count.
  const auto run1 = supremm::testing::make_sim_run(fa::ranger(), 0.004, 3, 5, false, 1);
  const auto run4 = supremm::testing::make_sim_run(fa::ranger(), 0.004, 3, 5, false, 4);
  ASSERT_EQ(run1.result.jobs.size(), run4.result.jobs.size());
  for (std::size_t i = 0; i < run1.result.jobs.size(); ++i) {
    const auto& a = run1.result.jobs[i];
    const auto& b = run4.result.jobs[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.cpu_idle, b.cpu_idle);
    EXPECT_EQ(a.cpu_flops_gf_node, b.cpu_flops_gf_node);
    EXPECT_EQ(a.mem_used_gb, b.mem_used_gb);
    EXPECT_EQ(a.io_scratch_write_mb_s, b.io_scratch_write_mb_s);
  }
  for (std::size_t i = 0; i < run1.result.series.buckets; ++i) {
    EXPECT_EQ(run1.result.series.flops_tf[i], run4.result.series.flops_tf[i]);
    EXPECT_EQ(run1.result.series.active_nodes[i], run4.result.series.active_nodes[i]);
  }
}

TEST(Ingest, RejectsBadConfig) {
  etl::IngestConfig cfg;
  cfg.span = 0;
  EXPECT_THROW(etl::IngestPipeline{cfg}, supremm::InvalidArgument);
  cfg.span = 100;
  cfg.bucket = 0;
  EXPECT_THROW(etl::IngestPipeline{cfg}, supremm::InvalidArgument);
}

TEST(Ingest, ProjectScienceMap) {
  const auto& run = small_ranger_run();
  const auto map = etl::project_science_map(*run.population);
  EXPECT_EQ(map.size(), run.population->size());  // unique projects
  for (const auto& u : run.population->users()) {
    EXPECT_EQ(map.at(u.project), std::string(fa::science_name(u.science)));
  }
}

// --- warehouse loader -----------------------------------------------------

TEST(ToTable, SchemaAndContent) {
  const auto& run = small_ranger_run();
  const auto t = etl::to_table(run.result.jobs);
  EXPECT_EQ(t.rows(), run.result.jobs.size());
  for (const char* col : {"job_id", "user", "app", "science", "node_hours", "cpu_idle",
                          "cpu_flops", "mem_used", "net_ib_tx"}) {
    EXPECT_TRUE(t.has_col(col)) << col;
  }
  // Spot check a row.
  const auto& j = run.result.jobs.front();
  EXPECT_EQ(t.col("job_id").as_int64(0), j.id);
  EXPECT_EQ(t.col("user").as_string(0), j.user);
  EXPECT_DOUBLE_EQ(t.col("cpu_idle").as_double(0), j.cpu_idle);
}

TEST(ToTable, SupportsWarehouseQueries) {
  const auto& run = small_ranger_run();
  const auto t = etl::to_table(run.result.jobs);
  const auto g = supremm::warehouse::Query(t)
                     .group_by({"science"})
                     .aggregate({{"mem_used", supremm::warehouse::AggKind::kWeightedMean,
                                  "node_hours", "mem"},
                                 {"", supremm::warehouse::AggKind::kCount, "", "n"}})
                     .run();
  EXPECT_GE(g.rows(), 3u);
  for (std::size_t r = 0; r < g.rows(); ++r) {
    EXPECT_GT(g.col("mem").as_double(r), 0.0);
  }
}
