// Shared test fixture: a small simulated facility run through the full
// pipeline (simulate -> collect -> side channels -> ingest), computed once
// per binary and reused by the ETL / XDMoD / integration / parallel /
// testkit suites — plus the shared bitwise table comparison and the archive
// builder the differential and fuzz harnesses feed on.
#pragma once

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "archive/archive.h"
#include "supremm/supremm.h"

namespace supremm::testing {

struct SimRun {
  facility::ClusterSpec spec;
  std::vector<facility::AppSignature> catalogue;
  std::unique_ptr<facility::UserPopulation> population;
  std::vector<facility::MaintenanceWindow> maintenance;
  std::unique_ptr<facility::FacilityEngine> engine;
  std::vector<taccstats::RawFile> files;
  std::vector<accounting::AccountingRecord> acct;
  std::vector<lariat::LariatRecord> lariat_records;
  etl::IngestResult result;
  common::TimePoint start = 0;
  common::Duration span = 0;
};

/// Build a full run for a preset scaled to `node_scale` over `days` days.
/// Deterministic in seed.
inline SimRun make_sim_run(const facility::ClusterSpec& preset, double node_scale, int days,
                           std::uint64_t seed, bool with_maintenance = false,
                           std::size_t threads = 0) {
  SimRun run;
  run.start = 0;
  run.span = days * common::kDay;
  run.spec = facility::scaled(preset, node_scale);
  run.catalogue = facility::standard_catalogue();
  run.population = std::make_unique<facility::UserPopulation>(
      facility::UserPopulation::generate(run.spec, run.catalogue, seed));

  facility::WorkloadConfig wl;
  wl.start = run.start;
  wl.span = run.span;
  wl.seed = seed;
  auto requests = facility::generate_workload(run.spec, run.catalogue, *run.population, wl);
  if (with_maintenance) {
    run.maintenance = facility::standard_maintenance(run.start, run.span, seed);
  }
  auto execs = facility::Scheduler::run(run.spec, std::move(requests), run.maintenance);
  run.engine = std::make_unique<facility::FacilityEngine>(
      run.spec, std::move(execs), run.maintenance, run.start, run.start + run.span, seed);

  const auto outputs = taccstats::run_all_agents(*run.engine, taccstats::AgentConfig{},
                                                 threads);
  for (const auto& o : outputs) {
    run.files.insert(run.files.end(), o.files.begin(), o.files.end());
  }
  run.acct = accounting::from_executions(run.spec, *run.population,
                                         run.engine->executions());
  run.lariat_records = lariat::from_executions(run.spec, run.catalogue, *run.population,
                                               run.engine->executions());

  etl::IngestConfig cfg;
  cfg.start = run.start;
  cfg.span = run.span;
  cfg.cluster = run.spec.name;
  cfg.threads = threads;
  const etl::IngestPipeline pipeline(cfg);
  run.result = pipeline.run(run.files, run.acct, run.lariat_records, run.catalogue,
                            etl::project_science_map(*run.population));
  return run;
}

/// Process-wide cached small Ranger run (8 days, ~40 nodes).
inline const SimRun& small_ranger_run() {
  static const SimRun run = make_sim_run(facility::ranger(), 0.01, 8, 12345);
  return run;
}

/// Process-wide cached tiny Ranger run (2 days, a handful of nodes): the
/// cheap corpus the parallel and testkit (oracle / fuzz) suites share.
inline const SimRun& tiny_ranger_run() {
  static const SimRun run = make_sim_run(facility::ranger(), 0.008, 2, 777);
  return run;
}

/// Build a fresh archive at `dir` (wiped first) holding the whole run.
inline void build_archive(const std::string& dir, const SimRun& run,
                          std::size_t threads = 1, std::string_view context = "ctx") {
  std::filesystem::remove_all(dir);
  etl::IngestConfig cfg;
  cfg.start = run.start;
  cfg.span = run.span;
  cfg.cluster = run.spec.name;
  archive::Archive ar(dir, threads);
  ar.append(cfg, run.files, run.acct, run.lariat_records, run.catalogue,
            etl::project_science_map(*run.population), context, run.start + run.span);
}

/// Bitwise table equality: schema, row count, and every cell (doubles
/// compared by bit pattern so -0.0 != 0.0 and NaNs compare by payload).
inline void expect_tables_identical(const warehouse::Table& a, const warehouse::Table& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t c = 0; c < a.cols(); ++c) {
    const warehouse::Column& ca = a.columns()[c];
    const warehouse::Column& cb = b.columns()[c];
    ASSERT_EQ(ca.name(), cb.name());
    ASSERT_EQ(ca.type(), cb.type());
    for (std::size_t r = 0; r < a.rows(); ++r) {
      switch (ca.type()) {
        case warehouse::ColType::kString:
          ASSERT_EQ(ca.as_string(r), cb.as_string(r)) << ca.name() << " row " << r;
          break;
        case warehouse::ColType::kInt64:
          ASSERT_EQ(ca.as_int64(r), cb.as_int64(r)) << ca.name() << " row " << r;
          break;
        case warehouse::ColType::kDouble:
          ASSERT_EQ(std::bit_cast<std::uint64_t>(ca.as_double(r)),
                    std::bit_cast<std::uint64_t>(cb.as_double(r)))
              << ca.name() << " row " << r;
          break;
      }
    }
  }
}

}  // namespace supremm::testing
