// Shared test fixture: a small simulated facility run through the full
// pipeline (simulate -> collect -> side channels -> ingest), computed once
// per binary and reused by the ETL / XDMoD / integration tests.
#pragma once

#include <memory>
#include <vector>

#include "supremm/supremm.h"

namespace supremm::testing {

struct SimRun {
  facility::ClusterSpec spec;
  std::vector<facility::AppSignature> catalogue;
  std::unique_ptr<facility::UserPopulation> population;
  std::vector<facility::MaintenanceWindow> maintenance;
  std::unique_ptr<facility::FacilityEngine> engine;
  std::vector<taccstats::RawFile> files;
  std::vector<accounting::AccountingRecord> acct;
  std::vector<lariat::LariatRecord> lariat_records;
  etl::IngestResult result;
  common::TimePoint start = 0;
  common::Duration span = 0;
};

/// Build a full run for a preset scaled to `node_scale` over `days` days.
/// Deterministic in seed.
inline SimRun make_sim_run(const facility::ClusterSpec& preset, double node_scale, int days,
                           std::uint64_t seed, bool with_maintenance = false,
                           std::size_t threads = 0) {
  SimRun run;
  run.start = 0;
  run.span = days * common::kDay;
  run.spec = facility::scaled(preset, node_scale);
  run.catalogue = facility::standard_catalogue();
  run.population = std::make_unique<facility::UserPopulation>(
      facility::UserPopulation::generate(run.spec, run.catalogue, seed));

  facility::WorkloadConfig wl;
  wl.start = run.start;
  wl.span = run.span;
  wl.seed = seed;
  auto requests = facility::generate_workload(run.spec, run.catalogue, *run.population, wl);
  if (with_maintenance) {
    run.maintenance = facility::standard_maintenance(run.start, run.span, seed);
  }
  auto execs = facility::Scheduler::run(run.spec, std::move(requests), run.maintenance);
  run.engine = std::make_unique<facility::FacilityEngine>(
      run.spec, std::move(execs), run.maintenance, run.start, run.start + run.span, seed);

  const auto outputs = taccstats::run_all_agents(*run.engine, taccstats::AgentConfig{},
                                                 threads);
  for (const auto& o : outputs) {
    run.files.insert(run.files.end(), o.files.begin(), o.files.end());
  }
  run.acct = accounting::from_executions(run.spec, *run.population,
                                         run.engine->executions());
  run.lariat_records = lariat::from_executions(run.spec, run.catalogue, *run.population,
                                               run.engine->executions());

  etl::IngestConfig cfg;
  cfg.start = run.start;
  cfg.span = run.span;
  cfg.cluster = run.spec.name;
  cfg.threads = threads;
  const etl::IngestPipeline pipeline(cfg);
  run.result = pipeline.run(run.files, run.acct, run.lariat_records, run.catalogue,
                            etl::project_science_map(*run.population));
  return run;
}

/// Process-wide cached small Ranger run (8 days, ~40 nodes).
inline const SimRun& small_ranger_run() {
  static const SimRun run = make_sim_run(facility::ranger(), 0.01, 8, 12345);
  return run;
}

}  // namespace supremm::testing
