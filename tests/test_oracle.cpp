// Differential oracle suite (ctest label: oracle; DESIGN.md §12).
//
// A deliberately naive row-at-a-time interpreter (src/testkit/oracle.h)
// re-executes grammar-generated queries and the results must agree with the
// vectorized engine bit-for-bit — values, group order and QueryStats — at
// every thread count. Divergences are minimized and dumped as replay seed
// files (replay with SUPREMM_TESTKIT_REPLAY=<file> build/tests/test_oracle).
//
// Environment knobs:
//   SUPREMM_TESTKIT_LONG=N      run N generated queries instead of the smoke 500
//   SUPREMM_TESTKIT_SEED_DIR=D  dump replay seed files into D (default ".")
//   SUPREMM_TESTKIT_REPLAY=F    additionally re-run the dumped seed file F
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "common/simd.h"
#include "testkit/genquery.h"
#include "testkit/oracle.h"
#include "testkit/replay.h"
#include "warehouse/query.h"
#include "warehouse/table.h"

namespace {

using namespace supremm;
namespace fs = std::filesystem;

std::string seed_dir() {
  const char* d = std::getenv("SUPREMM_TESTKIT_SEED_DIR");
  return d != nullptr ? d : ".";
}

// --- the tentpole: generated differential run -----------------------------

TEST(OracleDifferential, EngineMatchesOracleOnGeneratedQueries) {
  testkit::DiffConfig cfg;
  cfg.seed = 20130313;
  cfg.queries = 500;  // smoke floor; the long run is opt-in
  if (const char* n = std::getenv("SUPREMM_TESTKIT_LONG")) {
    cfg.queries = static_cast<std::size_t>(std::strtoull(n, nullptr, 10));
  }
  cfg.seed_dir = seed_dir();

  const testkit::DiffReport rep = testkit::run_differential(cfg);
  EXPECT_EQ(rep.queries_run, cfg.queries);
  // Every query is checked at every thread count unless it diverges early.
  EXPECT_GE(rep.checks, cfg.queries * std::size(testkit::kDiffThreadCounts) -
                            2 * rep.divergences.size());
  for (std::size_t i = 0; i < rep.divergences.size(); ++i) {
    ADD_FAILURE() << "divergence (replay: SUPREMM_TESTKIT_REPLAY=" << rep.seed_files[i]
                  << " build/tests/test_oracle): " << rep.divergences[i];
  }
}

// The engine must agree with the oracle under every dispatch tier, not just
// the one the host picks: the oracle's row-at-a-time lane-8 arithmetic is
// tier-free, so forcing the scalar kernels re-proves the engine's vector
// tiers and its scalar tier compute the very same bits (DESIGN.md §15).
TEST(OracleDifferential, EngineMatchesOracleUnderForcedScalarTier) {
  namespace simd = common::simd;
  simd::set_tier(simd::Tier::kScalar);
  testkit::DiffConfig cfg;
  cfg.seed = 20130314;  // fresh seed: different queries from the native leg
  cfg.queries = 150;
  cfg.seed_dir = seed_dir();
  const testkit::DiffReport rep = testkit::run_differential(cfg);
  simd::set_tier(simd::hardware_tier());
  EXPECT_EQ(rep.queries_run, cfg.queries);
  for (std::size_t i = 0; i < rep.divergences.size(); ++i) {
    ADD_FAILURE() << "scalar-tier divergence (replay: SUPREMM_TESTKIT_REPLAY="
                  << rep.seed_files[i] << " build/tests/test_oracle): "
                  << rep.divergences[i];
  }
}

TEST(OracleDifferential, HandcraftedQueryAgrees) {
  const warehouse::Table corpus =
      testkit::make_corpus({.rows = 256, .chunk_rows = 64, .seed = 99});
  testkit::QuerySpec spec;
  spec.has_where = true;
  spec.where.push_back({testkit::PredOp::kBetween, "value", "", -3.0, 4.5});
  spec.group_by = {"user", "day"};
  spec.aggs = {{"value", warehouse::AggKind::kSum, "", ""},
               {"value", warehouse::AggKind::kWeightedMean, "weight", "wm"},
               {"", warehouse::AggKind::kCount, "", "n"}};
  for (const std::size_t threads : testkit::kDiffThreadCounts) {
    const auto d = testkit::differential_check(corpus, spec, threads);
    EXPECT_FALSE(d.has_value()) << *d;
  }
}

// --- oracle plumbing self-tests -------------------------------------------

TEST(OracleSelfTest, TableDiffDetectsBitDifferences) {
  warehouse::Table a("t", {{"v", warehouse::ColType::kDouble}});
  warehouse::Table b("t", {{"v", warehouse::ColType::kDouble}});
  a.append().set("v", 0.0);
  b.append().set("v", -0.0);
  EXPECT_FALSE(testkit::table_diff(a, a).has_value());
  const auto d = testkit::table_diff(a, b);
  ASSERT_TRUE(d.has_value());  // -0.0 and 0.0 differ by bit pattern
  EXPECT_NE(d->find("v"), std::string::npos);
}

TEST(OracleSelfTest, StatsDiffDetectsFieldDifferences) {
  warehouse::QueryStats a;
  a.rows_scanned = 100;
  warehouse::QueryStats b = a;
  EXPECT_FALSE(testkit::stats_diff(a, b).has_value());
  b.rows_scanned = 99;
  EXPECT_TRUE(testkit::stats_diff(a, b).has_value());
}

// --- metamorphic checks ----------------------------------------------------

// Splitting BETWEEN into GE AND LE must not change results *or* chunk
// accounting: the two formulations prune exactly the same chunks.
TEST(Metamorphic, BetweenEqualsGeAndLeConjunction) {
  const warehouse::Table corpus =
      testkit::make_corpus({.rows = 1000, .chunk_rows = 128, .seed = 42});
  struct Range {
    const char* col;
    double lo, hi;
  };
  const Range ranges[] = {
      {"value", -3.0, 4.5},
      {"value", 4.5, -3.0},  // inverted: both forms must match zero rows
      {"weight", 0.0, 2.0},
      {"big", -5e5, 5e5},
      {"day", 2.0, 5.0},
  };
  for (const Range& rg : ranges) {
    testkit::QuerySpec between;
    between.has_where = true;
    between.where.push_back({testkit::PredOp::kBetween, rg.col, "", rg.lo, rg.hi});
    testkit::QuerySpec split = between;
    split.where.clear();
    split.where.push_back({testkit::PredOp::kGe, rg.col, "", rg.lo, 0.0});
    split.where.push_back({testkit::PredOp::kLe, rg.col, "", 0.0, rg.hi});
    for (auto* spec : {&between, &split}) {
      spec->group_by = {"user"};
      spec->aggs = {{"value", warehouse::AggKind::kSum, "", ""},
                    {"", warehouse::AggKind::kCount, "", "n"}};
    }
    for (const std::size_t threads : testkit::kDiffThreadCounts) {
      between.threads = split.threads = threads;
      const testkit::QueryRun a = testkit::run_engine(corpus, between);
      const testkit::QueryRun b = testkit::run_engine(corpus, split);
      if (auto d = testkit::table_diff(a.table, b.table)) {
        ADD_FAILURE() << rg.col << " [" << rg.lo << ", " << rg.hi << "]: " << *d;
      }
      if (auto d = testkit::stats_diff(a.stats, b.stats)) {
        ADD_FAILURE() << rg.col << " [" << rg.lo << ", " << rg.hi << "] stats: " << *d;
      }
    }
  }
}

// Permuting the group-by key list relabels columns but must not change
// which rows form a group, the group emission order (first match) or any
// aggregate bit pattern.
TEST(Metamorphic, GroupKeyPermutationPreservesGroups) {
  const warehouse::Table corpus =
      testkit::make_corpus({.rows = 1000, .chunk_rows = 256, .seed = 7});
  testkit::QuerySpec spec;
  spec.has_where = true;
  spec.where.push_back({testkit::PredOp::kGe, "value", "", -5.0, 0.0});
  spec.group_by = {"user", "day", "app"};
  spec.aggs = {{"value", warehouse::AggKind::kSum, "", ""},
               {"value", warehouse::AggKind::kMin, "", ""},
               {"", warehouse::AggKind::kCount, "", "n"}};
  testkit::QuerySpec permuted = spec;
  permuted.group_by = {"day", "app", "user"};

  const warehouse::Table a = testkit::run_engine(corpus, spec).table;
  const warehouse::Table b = testkit::run_engine(corpus, permuted).table;
  ASSERT_EQ(a.rows(), b.rows());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    EXPECT_EQ(a.col("user").as_string(r), b.col("user").as_string(r)) << "row " << r;
    EXPECT_EQ(a.col("day").as_int64(r), b.col("day").as_int64(r)) << "row " << r;
    EXPECT_EQ(a.col("app").as_string(r), b.col("app").as_string(r)) << "row " << r;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.col("value_sum").as_double(r)),
              std::bit_cast<std::uint64_t>(b.col("value_sum").as_double(r)))
        << "row " << r;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.col("value_min").as_double(r)),
              std::bit_cast<std::uint64_t>(b.col("value_min").as_double(r)))
        << "row " << r;
    EXPECT_EQ(a.col("n").as_int64(r), b.col("n").as_int64(r)) << "row " << r;
  }
}

// Shuffling the corpus row order (the storage analogue: concatenating
// partitions in any order) must not change order-insensitive aggregates.
// Sums are excluded — FP addition is order-sensitive by design and the
// engine's determinism contract fixes the order, not the shuffle's.
TEST(Metamorphic, RowOrderShufflePreservesOrderInsensitiveAggregates) {
  const warehouse::Table corpus =
      testkit::make_corpus({.rows = 1000, .chunk_rows = 128, .seed = 3});
  warehouse::Table shuffled("corpus", {{"user", warehouse::ColType::kString},
                                       {"app", warehouse::ColType::kString},
                                       {"day", warehouse::ColType::kInt64},
                                       {"big", warehouse::ColType::kInt64},
                                       {"value", warehouse::ColType::kDouble},
                                       {"weight", warehouse::ColType::kDouble}});
  std::vector<std::size_t> perm(corpus.rows());
  for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  common::RngStream g(3, "testkit.shuffle", 0);
  std::shuffle(perm.begin(), perm.end(), g.engine());
  for (const std::size_t r : perm) {
    shuffled.append()
        .set("user", std::string(corpus.col("user").as_string(r)))
        .set("app", std::string(corpus.col("app").as_string(r)))
        .set("day", corpus.col("day").as_int64(r))
        .set("big", corpus.col("big").as_int64(r))
        .set("value", corpus.col("value").as_double(r))
        .set("weight", corpus.col("weight").as_double(r));
  }
  shuffled.rebuild_zone_index(128);

  testkit::QuerySpec spec;
  spec.has_where = true;
  spec.where.push_back({testkit::PredOp::kLe, "value", "", 0.0, 6.0});
  spec.group_by = {"user", "day"};
  spec.aggs = {{"value", warehouse::AggKind::kMin, "", ""},
               {"value", warehouse::AggKind::kMax, "", ""},
               {"", warehouse::AggKind::kCount, "", "n"}};

  // Group emission order depends on row order; compare as sorted key sets.
  struct GroupRow {
    std::string user;
    std::int64_t day;
    std::uint64_t mn, mx;
    std::int64_t n;
    auto operator<=>(const GroupRow&) const = default;
  };
  const auto collect = [&](const warehouse::Table& t) {
    std::vector<GroupRow> rows;
    const warehouse::Table out = testkit::run_engine(t, spec).table;
    for (std::size_t r = 0; r < out.rows(); ++r) {
      rows.push_back({std::string(out.col("user").as_string(r)),
                      out.col("day").as_int64(r),
                      std::bit_cast<std::uint64_t>(out.col("value_min").as_double(r)),
                      std::bit_cast<std::uint64_t>(out.col("value_max").as_double(r)),
                      out.col("n").as_int64(r)});
    }
    std::sort(rows.begin(), rows.end());
    return rows;
  };
  EXPECT_EQ(collect(corpus), collect(shuffled));
}

// --- replay seed files -----------------------------------------------------

TEST(Replay, SeedFileRoundTrip) {
  const fs::path path = fs::temp_directory_path() / "supremm_testkit_roundtrip_seed.txt";
  testkit::write_seed_file(path.string(), "query",
                           {{"seed", "123"}, {"keep_terms", "0,2,5"}, {"empty", ""}},
                           {"a comment"});
  const testkit::SeedFile sf = testkit::read_seed_file(path.string());
  EXPECT_EQ(sf.field("mode"), "query");
  EXPECT_EQ(sf.field_u64("seed"), 123u);
  EXPECT_EQ(testkit::decode_index_list(sf.field("keep_terms")),
            (std::vector<std::size_t>{0, 2, 5}));
  EXPECT_TRUE(testkit::decode_index_list(sf.field("empty")).empty());
  ASSERT_EQ(sf.comments.size(), 1u);
  EXPECT_EQ(sf.comments[0], "a comment");
  EXPECT_THROW((void)sf.field("absent"), common::ParseError);
  fs::remove(path);
}

TEST(Replay, ManualSeedFileReplaysCleanly) {
  // A seed file keeping the full spec of generated query #7 must re-derive
  // and re-check it — and, since the engine agrees with the oracle, pass.
  const std::uint64_t seed = 20130313;
  const testkit::QuerySpec spec = testkit::make_query_spec(seed, 7);
  std::vector<std::size_t> terms(spec.where.size()), aggs(spec.aggs.size()),
      keys(spec.group_by.size());
  for (std::size_t i = 0; i < terms.size(); ++i) terms[i] = i;
  for (std::size_t i = 0; i < aggs.size(); ++i) aggs[i] = i;
  for (std::size_t i = 0; i < keys.size(); ++i) keys[i] = i;
  const fs::path path = fs::temp_directory_path() / "supremm_testkit_manual_seed.txt";
  testkit::write_seed_file(path.string(), "query",
                           {{"seed", std::to_string(seed)},
                            {"query", "7"},
                            {"corpus_rows", "256"},
                            {"corpus_chunk_rows", "256"},
                            {"keep_terms", testkit::encode_index_list(terms)},
                            {"keep_aggs", testkit::encode_index_list(aggs)},
                            {"keep_keys", testkit::encode_index_list(keys)}},
                           {"spec: " + testkit::describe(spec)});
  const auto d = testkit::replay_query_file(path.string());
  EXPECT_FALSE(d.has_value()) << *d;
  fs::remove(path);
}

TEST(Replay, MalformedSeedFileThrows) {
  const fs::path path = fs::temp_directory_path() / "supremm_testkit_bad_seed.txt";
  testkit::write_seed_file(path.string(), "fuzz", {{"seed", "1"}}, {});
  EXPECT_THROW((void)testkit::replay_query_file(path.string()), common::ParseError);
  fs::remove(path);
}

TEST(Replay, EnvSeedFile) {
  const char* path = std::getenv("SUPREMM_TESTKIT_REPLAY");
  if (path == nullptr) GTEST_SKIP() << "SUPREMM_TESTKIT_REPLAY not set";
  const auto d = testkit::replay_query_file(path);
  EXPECT_FALSE(d.has_value()) << "still diverges: " << *d;
}

}  // namespace
