// Integration tests: whole-pipeline invariants across the simulate ->
// collect -> ingest -> analyze chain, including conservation laws the
// individual modules cannot check alone.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "sim_fixture.h"

namespace fa = supremm::facility;
namespace etl = supremm::etl;
namespace xd = supremm::xdmod;
namespace sc = supremm::common;
using supremm::testing::make_sim_run;
using supremm::testing::small_ranger_run;

TEST(Integration, EndToEndReproducible) {
  const auto a = make_sim_run(fa::ranger(), 0.004, 3, 99);
  const auto b = make_sim_run(fa::ranger(), 0.004, 3, 99);
  ASSERT_EQ(a.result.jobs.size(), b.result.jobs.size());
  for (std::size_t i = 0; i < a.result.jobs.size(); ++i) {
    EXPECT_EQ(a.result.jobs[i].id, b.result.jobs[i].id);
    EXPECT_EQ(a.result.jobs[i].cpu_idle, b.result.jobs[i].cpu_idle);
    EXPECT_EQ(a.result.jobs[i].mem_used_max_gb, b.result.jobs[i].mem_used_max_gb);
  }
  EXPECT_EQ(a.result.stats.bytes, b.result.stats.bytes);
}

TEST(Integration, DifferentSeedsDiffer) {
  const auto a = make_sim_run(fa::ranger(), 0.004, 3, 1);
  const auto b = make_sim_run(fa::ranger(), 0.004, 3, 2);
  EXPECT_NE(a.result.stats.bytes, b.result.stats.bytes);
}

TEST(Integration, NodeHoursConservation) {
  // Node-hours in summaries == node-hours of the matched executions.
  const auto& run = small_ranger_run();
  std::set<fa::JobId> ingested;
  for (const auto& j : run.result.jobs) ingested.insert(j.id);
  double exec_nh = 0;
  for (const auto& e : run.engine->executions()) {
    if (ingested.count(e.req.id)) exec_nh += e.node_hours();
  }
  double sum_nh = 0;
  for (const auto& j : run.result.jobs) sum_nh += j.node_hours;
  EXPECT_NEAR(sum_nh, exec_nh, exec_nh * 1e-9);
}

TEST(Integration, CpuCoreHoursConservation) {
  // Facility core-hours in the system series equal up-node core capacity.
  const auto& run = small_ranger_run();
  const auto& ss = run.result.series;
  const double cores = static_cast<double>(run.spec.node.cores());
  for (std::size_t i = 0; i < ss.buckets; ++i) {
    if (ss.up_nodes[i] <= 0) continue;
    const double total = ss.cpu_user_core_h[i] + ss.cpu_idle_core_h[i] +
                         ss.cpu_system_core_h[i];
    const double capacity = ss.up_nodes[i] * cores * sc::to_hours(ss.bucket);
    EXPECT_NEAR(total / capacity, 1.0, 0.05) << "bucket " << i;
  }
}

TEST(Integration, ActiveNodesMatchScheduler) {
  // The measured active-node series must track the scheduler's ground truth.
  const auto& run = small_ranger_run();
  const auto& ss = run.result.series;
  for (std::size_t i = 2; i + 2 < ss.buckets; i += 16) {
    // Bucket value is a time average; average the scheduler truth over the
    // same window for a fair comparison.
    double truth = 0.0;
    constexpr int kProbes = 5;
    for (int p = 0; p < kProbes; ++p) {
      const auto t = ss.time_at(i) + (2 * p + 1) * ss.bucket / (2 * kProbes);
      truth += static_cast<double>(fa::busy_nodes_at(run.engine->executions(), t));
    }
    truth /= kProbes;
    EXPECT_NEAR(ss.active_nodes[i], truth, std::max(2.0, truth * 0.15))
        << "bucket " << i;
  }
}

TEST(Integration, RawDataVolumeMatchesPaperRate) {
  // Paper §4.1: ~0.5 MB/node/day uncompressed on Ranger.
  const auto& run = small_ranger_run();
  const double mb_per_node_day = static_cast<double>(run.result.stats.bytes) / 1e6 /
                                 static_cast<double>(run.spec.node_count) /
                                 (static_cast<double>(run.span) / sc::kDay);
  EXPECT_GT(mb_per_node_day, 0.2);
  EXPECT_LT(mb_per_node_day, 1.0);
}

TEST(Integration, MaintenanceVisibleEndToEnd) {
  // With an outage in the window, active nodes drop to zero (Figure 8) and
  // killed jobs appear in the accounting.
  const auto run = make_sim_run(fa::ranger(), 0.006, 30, 4242, /*with_maintenance=*/true);
  ASSERT_FALSE(run.maintenance.empty());
  const auto& win = run.maintenance.front();
  const auto& ss = run.result.series;
  // A bucket fully inside the outage.
  const auto bi = static_cast<std::size_t>((win.start + ss.bucket) / ss.bucket);
  if (bi + 1 < ss.buckets && win.length > 2 * ss.bucket) {
    EXPECT_DOUBLE_EQ(ss.active_nodes[bi + 1], 0.0);
    EXPECT_DOUBLE_EQ(ss.up_nodes[bi + 1], 0.0);
  }
  std::size_t killed = 0;
  for (const auto& a : run.acct) killed += a.failed != 0 ? 1 : 0;
  EXPECT_GT(killed, 0u);
}

TEST(Integration, SyslogConsistentWithAccounting) {
  const auto& run = small_ranger_run();
  const auto lines = supremm::loglib::generate_syslog(run.spec, run.catalogue,
                                                      run.engine->executions(), 7);
  const supremm::loglib::JobResolver resolver(run.spec, run.engine->executions());
  std::size_t starts = 0;
  for (const auto& l : lines) {
    const auto r = supremm::loglib::rationalize(l, resolver);
    if (r.code == "JOB_START") {
      ++starts;
      EXPECT_NE(r.job_id, 0) << l.text;
    }
  }
  EXPECT_EQ(starts, run.engine->executions().size());
}

TEST(Integration, UserCustomCountersExcludedFromFlops) {
  // Jobs whose users programmed their own counters must come out
  // flops_valid == false and be skipped by NaN-aware aggregation.
  const auto& run = small_ranger_run();
  std::size_t invalid = 0;
  for (const auto& j : run.result.jobs) {
    const bool expected = supremm::taccstats::user_programs_counters(j.id, 0.02);
    if (j.runtime() > 30 * sc::kMinute) {  // needs >1 periodic sample to flip
      EXPECT_EQ(!j.flops_valid, expected) << "job " << j.id;
    }
    invalid += j.flops_valid ? 0 : 1;
  }
  // ~2% of jobs.
  EXPECT_LT(invalid, run.result.jobs.size() / 4);
}

TEST(Integration, WarehouseRoundTripMatchesAnalyzer) {
  // The warehouse query path and the direct ProfileAnalyzer path agree on
  // the facility weighted mean.
  const auto& run = small_ranger_run();
  const auto t = etl::to_table(run.result.jobs);
  const auto g = supremm::warehouse::Query(t)
                     .group_by({})
                     .aggregate({{"cpu_idle", supremm::warehouse::AggKind::kWeightedMean,
                                  "node_hours", "idle"}})
                     .run();
  const xd::ProfileAnalyzer an(run.result.jobs);
  EXPECT_NEAR(g.col("idle").as_double(0), an.facility_means().at("cpu_idle"), 1e-9);
}

TEST(Integration, Lonestar4PipelineWorks) {
  // The second cluster: Intel perf schema, NFS, different calibration.
  const auto run = make_sim_run(fa::lonestar4(), 0.01, 4, 31);
  ASSERT_GT(run.result.jobs.size(), 10u);
  for (const auto& j : run.result.jobs) {
    EXPECT_EQ(j.cluster, "lonestar4");
    EXPECT_LE(j.mem_used_max_gb, 24.1);
  }
  // Lonestar4 runs hotter on memory than Ranger (paper Figs 11/12).
  const xd::ProfileAnalyzer an(run.result.jobs);
  EXPECT_GT(an.facility_means().at("mem_used"), 8.0);
}

TEST(Integration, PaperHeadlineShapesHold) {
  const auto& run = small_ranger_run();
  // 1. Facility efficiency ~90% (wide band: 1%-scale sampling spread).
  const double eff = xd::facility_efficiency(run.result.jobs);
  EXPECT_GT(eff, 0.70);
  // 2. FLOPS a small fraction of peak.
  double peak_tf = 0;
  for (const double v : run.result.series.flops_tf) peak_tf = std::max(peak_tf, v);
  EXPECT_LT(peak_tf, 0.25 * run.spec.peak_tflops());
  // 3. Memory below half capacity on Ranger.
  const xd::ProfileAnalyzer an(run.result.jobs);
  EXPECT_LT(an.facility_means().at("mem_used"), run.spec.node.mem_gb * 0.5);
  // 4. Persistence: 10-min ratio small, ~1000-min ratio near 1.
  const auto rep = xd::persistence_analysis(run.result.series);
  for (std::size_t m = 0; m < rep.metrics.size(); ++m) {
    if (!std::isnan(rep.ratios[m][0])) {
      EXPECT_LT(rep.ratios[m][0], 0.75);
    }
    if (!std::isnan(rep.ratios[m].back())) {
      EXPECT_GT(rep.ratios[m].back(), 0.5);
    }
  }
}
