// Tests for the fault-correlation (ANCOR-lite) module and the CSV export
// path, plus the one-call pipeline driver.
#include <gtest/gtest.h>

#include <sstream>

#include "sim_fixture.h"

namespace fa = supremm::facility;
namespace etl = supremm::etl;
namespace xd = supremm::xdmod;
namespace lg = supremm::loglib;
namespace sc = supremm::common;
using supremm::testing::small_ranger_run;

namespace {

std::vector<lg::RationalizedRecord> rationalized_log(
    const supremm::testing::SimRun& run) {
  const auto raw = lg::generate_syslog(run.spec, run.catalogue, run.engine->executions(),
                                       999);
  const lg::JobResolver resolver(run.spec, run.engine->executions());
  std::vector<lg::RationalizedRecord> out;
  out.reserve(raw.size());
  for (const auto& l : raw) out.push_back(lg::rationalize(l, resolver));
  return out;
}

std::size_t count_lines(const std::string& s) {
  std::size_t n = 0;
  for (const char c : s) n += c == '\n' ? 1 : 0;
  return n;
}

}  // namespace

// --- faults -----------------------------------------------------------------

TEST(Faults, FailureLiftBasics) {
  const auto& run = small_ranger_run();
  const auto records = rationalized_log(run);
  const auto lifts = xd::failure_lift(run.result.jobs, records);
  for (const auto& c : lifts) {
    EXPECT_NE(c.code, "JOB_START");
    EXPECT_NE(c.code, "JOB_EXIT");
    EXPECT_GT(c.jobs_with_code, 0u);
    EXPECT_GE(c.failure_rate, 0.0);
    EXPECT_LE(c.failure_rate, 1.0);
    EXPECT_GT(c.baseline_rate, 0.0);
  }
  // Sorted by lift descending.
  for (std::size_t i = 1; i < lifts.size(); ++i) {
    EXPECT_GE(lifts[i - 1].lift, lifts[i].lift);
  }
}

TEST(Faults, OomCodePredictsFailure) {
  // OOM kills are generated only for failed memory-heavy jobs, so their
  // lift must be maximal.
  const auto& run = small_ranger_run();
  const auto records = rationalized_log(run);
  const auto lifts = xd::failure_lift(run.result.jobs, records);
  for (const auto& c : lifts) {
    if (c.code == "OOM_KILL") {
      EXPECT_DOUBLE_EQ(c.failure_rate, 1.0);
      EXPECT_GT(c.lift, 1.0);
    }
  }
}

TEST(Faults, HandcraftedLift) {
  // Two jobs; one fails and carries the only LUSTRE_ERR -> lift = 2x.
  std::vector<etl::JobSummary> jobs(2);
  jobs[0].id = 1;
  jobs[0].exit_status = 1;
  jobs[1].id = 2;
  std::vector<lg::RationalizedRecord> recs(1);
  recs[0].job_id = 1;
  recs[0].code = "LUSTRE_ERR";
  const auto lifts = xd::failure_lift(jobs, recs);
  ASSERT_EQ(lifts.size(), 1u);
  EXPECT_DOUBLE_EQ(lifts[0].failure_rate, 1.0);
  EXPECT_DOUBLE_EQ(lifts[0].baseline_rate, 0.5);
  EXPECT_DOUBLE_EQ(lifts[0].lift, 2.0);
}

TEST(Faults, MetricTailRisk) {
  const auto& run = small_ranger_run();
  const auto risks = xd::metric_tail_risk(run.result.jobs, 0.10);
  EXPECT_FALSE(risks.empty());
  for (const auto& r : risks) {
    EXPECT_GT(r.tail_jobs, 0u);
    EXPECT_GE(r.failure_rate, 0.0);
    EXPECT_LE(r.failure_rate, 1.0);
  }
  EXPECT_THROW((void)xd::metric_tail_risk(run.result.jobs, 0.0), supremm::InvalidArgument);
  EXPECT_THROW((void)xd::metric_tail_risk(run.result.jobs, 1.0), supremm::InvalidArgument);
}

// --- csv export ---------------------------------------------------------

TEST(CsvExport, ProfileShape) {
  const auto& run = small_ranger_run();
  const xd::ProfileAnalyzer an(run.result.jobs);
  const auto p = an.top_profiles(xd::GroupBy::kUser, 1).at(0);
  std::ostringstream os;
  xd::csv_profile(p, os);
  EXPECT_EQ(count_lines(os.str()), 9u);  // header + 8 metrics
  EXPECT_NE(os.str().find("metric,raw,normalized"), std::string::npos);
  EXPECT_NE(os.str().find("cpu_idle,"), std::string::npos);
}

TEST(CsvExport, ComparisonShape) {
  const auto& run = small_ranger_run();
  const xd::ProfileAnalyzer an(run.result.jobs);
  const auto profiles = an.top_profiles(xd::GroupBy::kUser, 3);
  std::ostringstream os;
  xd::csv_profile_comparison(profiles, an.metrics(), os);
  EXPECT_EQ(count_lines(os.str()), 9u);
  // Header contains all three entity names.
  const std::string head = os.str().substr(0, os.str().find('\n'));
  for (const auto& p : profiles) {
    EXPECT_NE(head.find(p.entity), std::string::npos);
  }
}

TEST(CsvExport, Efficiency) {
  const auto& run = small_ranger_run();
  const auto users = xd::user_efficiency(run.result.jobs);
  std::ostringstream os;
  xd::csv_efficiency(users, os);
  EXPECT_EQ(count_lines(os.str()), users.size() + 1);
}

TEST(CsvExport, PersistenceHasFitRow) {
  const auto& run = small_ranger_run();
  const auto rep = xd::persistence_analysis(run.result.series);
  std::ostringstream os;
  xd::csv_persistence(rep, os);
  EXPECT_EQ(count_lines(os.str()), 7u);  // header + 5 offsets + fit row
  EXPECT_NE(os.str().find("fit_r2"), std::string::npos);
}

TEST(CsvExport, SeriesAndDistribution) {
  const auto& run = small_ranger_run();
  const auto s = xd::rebucket(run.result.series, "cpu_flops", sc::kDay,
                              xd::SeriesAgg::kMean);
  std::ostringstream os1;
  xd::csv_series(s, os1);
  EXPECT_EQ(count_lines(os1.str()), s.t.size() + 1);

  const auto d = xd::flops_distribution(run.result.series, 64);
  std::ostringstream os2;
  xd::csv_distribution(d, os2);
  EXPECT_EQ(count_lines(os2.str()), 65u);
}

TEST(CsvExport, JobsTableParsesBack) {
  const auto& run = small_ranger_run();
  std::ostringstream os;
  xd::csv_jobs(run.result.jobs, os);
  EXPECT_EQ(count_lines(os.str()), run.result.jobs.size() + 1);
  // Every row has the same comma count as the header (no stray commas:
  // fields with commas would be quoted, none expected here).
  const std::string all = os.str();
  std::size_t header_commas = 0;
  const std::string head = all.substr(0, all.find('\n'));
  for (const char c : head) header_commas += c == ',' ? 1 : 0;
  EXPECT_GT(header_commas, 15u);
}

// --- pipeline driver ------------------------------------------------------

TEST(Pipeline, OneCallDriverMatchesManualAssembly) {
  supremm::pipeline::PipelineConfig cfg;
  cfg.spec = fa::scaled(fa::ranger(), 0.004);
  cfg.span = 3 * sc::kDay;
  cfg.seed = 12345;
  const auto a = supremm::pipeline::run_pipeline(cfg);
  const auto b = supremm::testing::make_sim_run(fa::ranger(), 0.004, 3, 12345);
  ASSERT_EQ(a.result.jobs.size(), b.result.jobs.size());
  for (std::size_t i = 0; i < a.result.jobs.size(); ++i) {
    EXPECT_EQ(a.result.jobs[i].id, b.result.jobs[i].id);
    EXPECT_EQ(a.result.jobs[i].cpu_idle, b.result.jobs[i].cpu_idle);
  }
}

TEST(Pipeline, AgentIntervalPropagates) {
  supremm::pipeline::PipelineConfig cfg;
  cfg.spec = fa::scaled(fa::ranger(), 0.004);
  cfg.span = 2 * sc::kDay;
  cfg.seed = 5;
  cfg.agent.interval = 30 * sc::kMinute;
  const auto run = supremm::pipeline::run_pipeline(cfg);
  EXPECT_EQ(run.result.series.bucket, 30 * sc::kMinute);
  EXPECT_EQ(run.result.series.buckets, static_cast<std::size_t>(2 * 24 * 2));
}
