// Unit tests for the stats module: descriptive statistics, special
// functions, regression, KDE, correlation, structure functions, histograms.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "common/error.h"
#include "stats/correlation.h"
#include "stats/descriptive.h"
#include "stats/histogram.h"
#include "stats/kde.h"
#include "stats/regression.h"
#include "stats/special.h"
#include "stats/structure.h"

namespace st = supremm::stats;

// --- descriptive -------------------------------------------------------------

TEST(Descriptive, SummaryBasics) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  const auto s = st::summarize(xs);
  EXPECT_EQ(s.n, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.variance, 2.0);            // population
  EXPECT_DOUBLE_EQ(s.sample_variance(), 2.5);   // unbiased
}

TEST(Descriptive, CoefficientOfVariation) {
  const std::vector<double> xs = {2, 2, 2};
  EXPECT_DOUBLE_EQ(st::summarize(xs).cv(), 0.0);
  const std::vector<double> ys = {0, 0, 0};
  EXPECT_DOUBLE_EQ(st::summarize(ys).cv(), 0.0);  // zero-mean guard
}

TEST(Descriptive, AccumulatorMergeMatchesBulk) {
  std::mt19937 gen(3);
  std::normal_distribution<double> d(5.0, 2.0);
  st::Accumulator all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = d(gen);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_NEAR(a.summary().mean, all.summary().mean, 1e-9);
  EXPECT_NEAR(a.summary().variance, all.summary().variance, 1e-9);
  EXPECT_DOUBLE_EQ(a.summary().min, all.summary().min);
  EXPECT_DOUBLE_EQ(a.summary().max, all.summary().max);
}

TEST(Descriptive, AccumulatorMergeEmpty) {
  st::Accumulator a, b;
  a.add(1.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
}

TEST(Descriptive, WeightedMean) {
  st::WeightedAccumulator acc;
  acc.add(1.0, 1.0);
  acc.add(10.0, 3.0);
  EXPECT_DOUBLE_EQ(acc.mean(), (1.0 + 30.0) / 4.0);
  EXPECT_DOUBLE_EQ(acc.max(), 10.0);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
}

TEST(Descriptive, WeightedIgnoresZeroWeight) {
  st::WeightedAccumulator acc;
  acc.add(5.0, 1.0);
  acc.add(1e9, 0.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_EQ(acc.count(), 1u);
}

TEST(Descriptive, WeightedVarianceMatchesFrequencyInterpretation) {
  // Weight 2 == the value appearing twice.
  st::WeightedAccumulator w;
  w.add(1.0, 2.0);
  w.add(4.0, 1.0);
  st::Accumulator f;
  f.add(1.0);
  f.add(1.0);
  f.add(4.0);
  EXPECT_NEAR(w.variance(), f.summary().variance, 1e-12);
}

TEST(Descriptive, WeightedMergeMatchesBulk) {
  st::WeightedAccumulator all, a, b;
  std::mt19937 gen(4);
  std::uniform_real_distribution<double> d(0, 10);
  for (int i = 0; i < 500; ++i) {
    const double x = d(gen);
    const double w = d(gen) + 0.1;
    all.add(x, w);
    (i % 3 == 0 ? a : b).add(x, w);
  }
  a.merge(b);
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(Descriptive, Quantiles) {
  const std::vector<double> xs = {4, 1, 3, 2};
  EXPECT_DOUBLE_EQ(st::quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(st::quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(st::quantile(xs, 0.5), 2.5);
  EXPECT_THROW((void)st::quantile(std::vector<double>{}, 0.5), supremm::InvalidArgument);
  EXPECT_THROW((void)st::quantile(xs, 1.5), supremm::InvalidArgument);
}

TEST(Descriptive, PearsonPerfectAndAnti) {
  const std::vector<double> x = {1, 2, 3, 4};
  const std::vector<double> y = {2, 4, 6, 8};
  const std::vector<double> z = {8, 6, 4, 2};
  EXPECT_NEAR(st::pearson(x, y), 1.0, 1e-12);
  EXPECT_NEAR(st::pearson(x, z), -1.0, 1e-12);
}

TEST(Descriptive, PearsonDegenerate) {
  const std::vector<double> x = {1, 2, 3};
  const std::vector<double> c = {5, 5, 5};
  EXPECT_DOUBLE_EQ(st::pearson(x, c), 0.0);
  EXPECT_THROW((void)st::pearson(x, std::vector<double>{1.0, 2.0}), supremm::InvalidArgument);
}

// --- special functions -------------------------------------------------------

TEST(Special, IncompleteBetaBounds) {
  EXPECT_DOUBLE_EQ(st::incomplete_beta(2, 3, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(st::incomplete_beta(2, 3, 1.0), 1.0);
  EXPECT_THROW((void)st::incomplete_beta(0, 1, 0.5), supremm::InvalidArgument);
  EXPECT_THROW((void)st::incomplete_beta(1, 1, 1.5), supremm::InvalidArgument);
}

TEST(Special, IncompleteBetaKnownValues) {
  // I_x(1,1) = x.
  EXPECT_NEAR(st::incomplete_beta(1, 1, 0.3), 0.3, 1e-10);
  // I_x(2,2) = 3x^2 - 2x^3.
  const double x = 0.4;
  EXPECT_NEAR(st::incomplete_beta(2, 2, x), 3 * x * x - 2 * x * x * x, 1e-10);
  // Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
  EXPECT_NEAR(st::incomplete_beta(2.5, 1.5, 0.7),
              1.0 - st::incomplete_beta(1.5, 2.5, 0.3), 1e-10);
}

TEST(Special, StudentTCdf) {
  // Symmetric around 0.
  EXPECT_NEAR(st::student_t_cdf(0.0, 5.0), 0.5, 1e-12);
  // t with df=1 is Cauchy: CDF(1) = 0.75.
  EXPECT_NEAR(st::student_t_cdf(1.0, 1.0), 0.75, 1e-9);
  // Large df approaches the normal: CDF(1.96, 1e6) ~ 0.975.
  EXPECT_NEAR(st::student_t_cdf(1.96, 1e6), 0.975, 1e-3);
  EXPECT_DOUBLE_EQ(st::student_t_cdf(INFINITY, 3.0), 1.0);
}

TEST(Special, TwoSidedP) {
  // |t|=2, df=10 -> p ~ 0.0734 (reference value from R: 2*pt(-2,10)).
  EXPECT_NEAR(st::student_t_two_sided_p(2.0, 10.0), 0.07339, 1e-4);
  EXPECT_NEAR(st::student_t_two_sided_p(-2.0, 10.0), 0.07339, 1e-4);
  EXPECT_NEAR(st::student_t_two_sided_p(0.0, 10.0), 1.0, 1e-12);
}

// --- regression --------------------------------------------------------------

TEST(Regression, ExactLine) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y;
  for (const double xi : x) y.push_back(2.0 * xi + 1.0);
  const auto fit = st::linear_fit(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
  EXPECT_LT(fit.slope_p, 1e-6);
}

TEST(Regression, NoisyLineRecoversParameters) {
  std::mt19937 gen(11);
  std::normal_distribution<double> noise(0.0, 0.5);
  std::vector<double> x, y;
  for (int i = 0; i < 200; ++i) {
    x.push_back(i * 0.1);
    y.push_back(3.0 - 0.7 * x.back() + noise(gen));
  }
  const auto fit = st::linear_fit(x, y);
  EXPECT_NEAR(fit.slope, -0.7, 0.05);
  EXPECT_NEAR(fit.intercept, 3.0, 0.12);
  EXPECT_GT(fit.r2, 0.8);
  EXPECT_LT(fit.slope_p, 1e-10);
}

TEST(Regression, FlatLineHasInsignificantSlope) {
  std::mt19937 gen(12);
  std::normal_distribution<double> noise(0.0, 1.0);
  std::vector<double> x, y;
  for (int i = 0; i < 100; ++i) {
    x.push_back(i);
    y.push_back(5.0 + noise(gen));
  }
  const auto fit = st::linear_fit(x, y);
  EXPECT_GT(fit.slope_p, 0.01);  // overwhelmingly likely
  EXPECT_LT(fit.intercept_p, 1e-6);
}

TEST(Regression, PredictAndResiduals) {
  const std::vector<double> x = {0, 1, 2, 3};
  const std::vector<double> y = {1, 3, 5, 7};
  const auto fit = st::linear_fit(x, y);
  EXPECT_NEAR(fit.predict(10.0), 21.0, 1e-9);
  EXPECT_NEAR(fit.residual_stddev, 0.0, 1e-9);
}

TEST(Regression, Log10Fit) {
  // y = 2 + 3*log10(x).
  const std::vector<double> x = {10, 100, 1000};
  const std::vector<double> y = {5, 8, 11};
  const auto fit = st::log10_fit(x, y);
  EXPECT_NEAR(fit.slope, 3.0, 1e-9);
  EXPECT_NEAR(fit.intercept, 2.0, 1e-9);
  EXPECT_THROW((void)st::log10_fit(std::vector<double>{-1.0, 2.0, 3.0}, y), supremm::InvalidArgument);
}

TEST(Regression, RejectsDegenerate) {
  EXPECT_THROW((void)st::linear_fit(std::vector<double>{1.0}, std::vector<double>{2.0}), supremm::InvalidArgument);
  EXPECT_THROW((void)st::linear_fit(std::vector<double>{2.0, 2.0, 2.0}, std::vector<double>{1.0, 2.0, 3.0}),
               supremm::InvalidArgument);
}

// --- kde ----------------------------------------------------------------

TEST(Kde, IntegratesToOne) {
  std::mt19937 gen(21);
  std::normal_distribution<double> d(0.0, 1.0);
  std::vector<double> xs;
  for (int i = 0; i < 2000; ++i) xs.push_back(d(gen));
  const auto dens = st::kde(xs, 512);
  EXPECT_NEAR(dens.integral(), 1.0, 0.01);
}

TEST(Kde, ModeNearTrueMode) {
  std::mt19937 gen(22);
  std::normal_distribution<double> d(7.0, 1.5);
  std::vector<double> xs;
  for (int i = 0; i < 4000; ++i) xs.push_back(d(gen));
  EXPECT_NEAR(st::kde(xs).mode(), 7.0, 0.4);
}

TEST(Kde, BimodalHasTwoBumps) {
  std::mt19937 gen(23);
  std::normal_distribution<double> a(0.0, 0.5);
  std::normal_distribution<double> b(10.0, 0.5);
  std::vector<double> xs;
  for (int i = 0; i < 2000; ++i) xs.push_back(i % 2 == 0 ? a(gen) : b(gen));
  const auto dens = st::kde(xs, 512);
  // Density at the trough (x=5) far below the modes.
  EXPECT_LT(dens.at(5.0), 0.1 * dens.at(0.0));
  EXPECT_GT(dens.at(10.0), 0.1);
}

TEST(Kde, WeightedShiftsMass) {
  const std::vector<double> xs = {0.0, 10.0};
  const std::vector<double> heavy_right = {1.0, 9.0};
  const auto dens = st::kde_weighted(xs, heavy_right, 256);
  EXPECT_GT(dens.at(10.0), 5.0 * dens.at(0.0));
  EXPECT_NEAR(dens.integral(), 1.0, 0.02);
}

TEST(Kde, BandwidthRules) {
  std::mt19937 gen(24);
  std::normal_distribution<double> d(0.0, 2.0);
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) xs.push_back(d(gen));
  const double nrd0 = st::select_bandwidth(xs, st::Bandwidth::kNrd0);
  const double scott = st::select_bandwidth(xs, st::Bandwidth::kScott);
  EXPECT_GT(nrd0, 0.0);
  EXPECT_GT(scott, nrd0);  // 1.06 vs 0.9 factor on similar spread
}

TEST(Kde, DegenerateSample) {
  const std::vector<double> xs = {3.0, 3.0, 3.0};
  const auto dens = st::kde(xs, 64);
  EXPECT_GT(dens.bandwidth, 0.0);
  EXPECT_NEAR(dens.mode(), 3.0, 1e-3);
}

TEST(Kde, Rejections) {
  EXPECT_THROW((void)st::kde(std::vector<double>{}, 64), supremm::InvalidArgument);
  EXPECT_THROW((void)st::kde(std::vector<double>{1.0, 2.0}, 1), supremm::InvalidArgument);
  EXPECT_THROW((void)st::kde_weighted(std::vector<double>{1.0, 2.0}, std::vector<double>{1.0}, 64), supremm::InvalidArgument);
  EXPECT_THROW((void)st::kde_weighted(std::vector<double>{1.0, 2.0}, std::vector<double>{0.0, 0.0}, 64),
               supremm::InvalidArgument);
}

TEST(Kde, DensityAtOutsideGridIsZero) {
  const std::vector<double> xs = {0.0, 1.0, 2.0};
  const auto dens = st::kde(xs, 64);
  EXPECT_DOUBLE_EQ(dens.at(1e9), 0.0);
  EXPECT_DOUBLE_EQ(dens.at(-1e9), 0.0);
}

// --- correlation matrix -----------------------------------------------------

TEST(Correlation, MatrixSymmetryAndDiagonal) {
  const std::vector<std::vector<double>> series = {
      {1, 2, 3, 4}, {2, 4, 6, 8}, {4, 3, 2, 1}};
  st::CorrelationMatrix m({"a", "b", "c"}, series);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), m.at(1, 0));
  EXPECT_NEAR(m.at("a", "b"), 1.0, 1e-12);
  EXPECT_NEAR(m.at("a", "c"), -1.0, 1e-12);
}

TEST(Correlation, CorrelatedPairsSortedByStrength) {
  std::mt19937 gen(31);
  std::normal_distribution<double> d(0, 1);
  std::vector<double> a, b, c;
  for (int i = 0; i < 500; ++i) {
    const double x = d(gen);
    a.push_back(x);
    b.push_back(-x + 0.01 * d(gen));  // strong anti-correlation
    c.push_back(d(gen));              // independent
  }
  st::CorrelationMatrix m({"a", "b", "c"}, {a, b, c});
  const auto pairs = m.correlated_pairs(0.8);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].a, "a");
  EXPECT_EQ(pairs[0].b, "b");
  EXPECT_LT(pairs[0].r, -0.9);
}

TEST(Correlation, SelectIndependentDropsCorrelated) {
  std::mt19937 gen(32);
  std::normal_distribution<double> d(0, 1);
  std::vector<double> a, b, c;
  for (int i = 0; i < 500; ++i) {
    const double x = d(gen);
    a.push_back(x);
    b.push_back(x + 0.01 * d(gen));
    c.push_back(d(gen));
  }
  st::CorrelationMatrix m({"a", "b", "c"}, {a, b, c});
  // Priority favors b over a.
  const std::vector<double> prio = {1.0, 2.0, 0.5};
  const auto kept = st::select_independent(m, prio, 0.8);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0], 1u);  // b first (highest priority)
  EXPECT_EQ(kept[1], 2u);  // c kept; a dropped as correlated with b
}

TEST(Correlation, Rejections) {
  EXPECT_THROW(st::CorrelationMatrix({"a"}, {{1, 2}, {3, 4}}), supremm::InvalidArgument);
  st::CorrelationMatrix m({"a", "b"}, {{1, 2, 3}, {3, 2, 1}});
  EXPECT_THROW((void)m.at("zzz", "a"), supremm::NotFoundError);
  EXPECT_THROW((void)st::select_independent(m, std::vector<double>{1.0}, 0.5),
               supremm::InvalidArgument);
}

// --- structure function (persistence) ---------------------------------------

TEST(Structure, WhiteNoiseRatioNearOne) {
  std::mt19937 gen(41);
  std::normal_distribution<double> d(0, 1);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(d(gen));
  EXPECT_NEAR(st::offset_sd_ratio(xs, 1), 1.0, 0.03);
  EXPECT_NEAR(st::offset_sd_ratio(xs, 50), 1.0, 0.03);
}

TEST(Structure, ConstantSeriesIsNaN) {
  const std::vector<double> xs(100, 3.0);
  EXPECT_TRUE(std::isnan(st::offset_sd_ratio(xs, 5)));
}

TEST(Structure, Ar1RatiosMatchTheory) {
  // AR(1): ratio(k) = sqrt(1 - rho^k).
  const double rho = 0.95;
  std::mt19937 gen(42);
  std::normal_distribution<double> d(0, 1);
  std::vector<double> xs = {0.0};
  for (int i = 1; i < 100000; ++i) {
    xs.push_back(rho * xs.back() + d(gen) * std::sqrt(1 - rho * rho));
  }
  for (const std::size_t k : {1u, 5u, 20u}) {
    const double expected = std::sqrt(1.0 - std::pow(rho, k));
    EXPECT_NEAR(st::offset_sd_ratio(xs, k), expected, 0.05) << "lag " << k;
  }
}

TEST(Structure, RatiosIncreaseWithLagForPersistentSeries) {
  const double rho = 0.9;
  std::mt19937 gen(43);
  std::normal_distribution<double> d(0, 1);
  std::vector<double> xs = {0.0};
  for (int i = 1; i < 50000; ++i) {
    xs.push_back(rho * xs.back() + d(gen));
  }
  const std::vector<std::size_t> lags = {1, 4, 16, 64};
  const auto r = st::offset_sd_ratios(xs, lags);
  for (std::size_t i = 1; i < r.size(); ++i) EXPECT_GT(r[i], r[i - 1]);
}

TEST(Structure, ShortSeriesYieldsNaN) {
  const std::vector<double> xs = {1, 2, 3};
  EXPECT_TRUE(std::isnan(st::offset_sd_ratio(xs, 5)));
  EXPECT_THROW((void)st::offset_sd_ratio(xs, 0), supremm::InvalidArgument);
}

TEST(Structure, PersistenceFitRecoversLogModel) {
  // Fabricate ratios following 0.1 + 0.3*log10(offset).
  const std::vector<double> offsets = {10, 30, 100, 500, 1000};
  std::vector<double> ratios;
  for (const double o : offsets) ratios.push_back(0.1 + 0.3 * std::log10(o));
  const auto fit = st::fit_persistence(offsets, ratios);
  EXPECT_NEAR(fit.fit.slope, 0.3, 1e-9);
  EXPECT_NEAR(fit.fit.intercept, 0.1, 1e-9);
  EXPECT_NEAR(fit.fit.r2, 1.0, 1e-9);
  // horizon: ratio == 1 at log10(o) = 3 -> o = 1000.
  EXPECT_NEAR(fit.horizon_minutes(), 1000.0, 1e-6);
}

TEST(Structure, PersistenceFitDropsNaN) {
  const std::vector<double> offsets = {10, 30, 100, 500};
  const std::vector<double> ratios = {0.4, 0.54, std::nan(""), 0.9};
  const auto fit = st::fit_persistence(offsets, ratios);
  EXPECT_EQ(fit.offsets.size(), 3u);
  EXPECT_THROW((void)st::fit_persistence(std::vector<double>{10.0, 20.0}, std::vector<double>{0.1, 0.2}),
               supremm::InvalidArgument);
}

// --- histogram ---------------------------------------------------------------

TEST(Histogram, BinningAndOverflow) {
  st::Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.99);
  h.add(-1.0);
  h.add(10.0);
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(9), 1.0);
  EXPECT_DOUBLE_EQ(h.underflow(), 1.0);
  EXPECT_DOUBLE_EQ(h.overflow(), 1.0);
  EXPECT_DOUBLE_EQ(h.total(), 4.0);
}

TEST(Histogram, WeightedAndDensity) {
  st::Histogram h(0.0, 2.0, 2);
  h.add(0.5, 3.0);
  h.add(1.5, 1.0);
  const auto d = h.density();
  EXPECT_DOUBLE_EQ(d[0], 0.75);  // 3/4 of mass over width 1
  EXPECT_DOUBLE_EQ(d[1], 0.25);
}

TEST(Histogram, BinEdges) {
  st::Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
}

TEST(Histogram, MakeFromData) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  const auto h = st::make_histogram(xs, 4);
  EXPECT_DOUBLE_EQ(h.total(), 5.0);
  EXPECT_DOUBLE_EQ(h.underflow() + h.overflow(), 0.0);
}

TEST(Histogram, Rejections) {
  EXPECT_THROW(st::Histogram(0.0, 1.0, 0), supremm::InvalidArgument);
  EXPECT_THROW(st::Histogram(1.0, 1.0, 4), supremm::InvalidArgument);
  EXPECT_THROW((void)st::make_histogram(std::vector<double>{}, 4), supremm::InvalidArgument);
}

// --- parameterized property sweeps -------------------------------------------

class KdeGridSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KdeGridSweep, IntegralIsOneForAnyGrid) {
  std::mt19937 gen(51);
  std::lognormal_distribution<double> d(1.0, 0.8);
  std::vector<double> xs;
  for (int i = 0; i < 1500; ++i) xs.push_back(d(gen));
  const auto dens = st::kde(xs, GetParam());
  EXPECT_NEAR(dens.integral(), 1.0, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Grids, KdeGridSweep, ::testing::Values(32, 64, 128, 256, 1024));

class Ar1Sweep : public ::testing::TestWithParam<double> {};

TEST_P(Ar1Sweep, RatioWithinTheoryBand) {
  const double rho = GetParam();
  std::mt19937 gen(61);
  std::normal_distribution<double> d(0, 1);
  std::vector<double> xs = {0.0};
  for (int i = 1; i < 60000; ++i) xs.push_back(rho * xs.back() + d(gen));
  const double expected = std::sqrt(1.0 - rho);
  EXPECT_NEAR(st::offset_sd_ratio(xs, 1), expected, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Rhos, Ar1Sweep, ::testing::Values(0.0, 0.3, 0.6, 0.9, 0.99));

class QuantileSweep : public ::testing::TestWithParam<double> {};

TEST_P(QuantileSweep, MonotoneInQ) {
  std::mt19937 gen(71);
  std::uniform_real_distribution<double> d(0, 100);
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(d(gen));
  const double q = GetParam();
  EXPECT_LE(st::quantile(xs, q * 0.5), st::quantile(xs, q));
  EXPECT_LE(st::quantile(xs, q), st::quantile(xs, std::min(1.0, q + 0.1)));
}

INSTANTIATE_TEST_SUITE_P(Qs, QuantileSweep, ::testing::Values(0.1, 0.25, 0.5, 0.75, 0.9));
