// Unit tests for the common module: time, rng, strings, csv, thread pool,
// ascii tables.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>

#include "common/ascii_table.h"
#include "common/csv.h"
#include "common/error.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "common/time.h"

namespace sc = supremm::common;

// --- time -------------------------------------------------------------------

TEST(Time, Constants) {
  EXPECT_EQ(sc::kMinute, 60);
  EXPECT_EQ(sc::kHour, 3600);
  EXPECT_EQ(sc::kDay, 86400);
  EXPECT_EQ(sc::kWeek, 7 * 86400);
}

TEST(Time, Conversions) {
  EXPECT_DOUBLE_EQ(sc::to_hours(sc::kHour), 1.0);
  EXPECT_DOUBLE_EQ(sc::to_hours(90 * sc::kMinute), 1.5);
  EXPECT_DOUBLE_EQ(sc::to_minutes(sc::kHour), 60.0);
}

TEST(Time, DayArithmetic) {
  EXPECT_EQ(sc::day_of(0), 0);
  EXPECT_EQ(sc::day_of(sc::kDay - 1), 0);
  EXPECT_EQ(sc::day_of(sc::kDay), 1);
  EXPECT_EQ(sc::second_of_day(sc::kDay + 42), 42);
}

TEST(Time, WeekdayEpochIsMonday) {
  EXPECT_EQ(sc::weekday_of(0), 0);
  EXPECT_EQ(sc::weekday_of(5 * sc::kDay), 5);  // Saturday
  EXPECT_EQ(sc::weekday_of(7 * sc::kDay), 0);
}

TEST(Time, Format) {
  EXPECT_EQ(sc::format_time(0), "0+00:00:00");
  EXPECT_EQ(sc::format_time(sc::kDay + 3 * sc::kHour + 4 * sc::kMinute + 5), "1+03:04:05");
  EXPECT_EQ(sc::format_duration(3661), "01:01:01");
  EXPECT_EQ(sc::format_duration(-61), "-00:01:01");
}

TEST(TimeAxis, Basics) {
  sc::TimeAxis ax(100, 10, 5);
  EXPECT_EQ(ax.size(), 5u);
  EXPECT_EQ(ax.at(0), 100);
  EXPECT_EQ(ax.at(4), 140);
  EXPECT_EQ(ax.end(), 140);
}

TEST(TimeAxis, IndexAt) {
  sc::TimeAxis ax(100, 10, 5);
  EXPECT_EQ(ax.index_at(99), sc::TimeAxis::npos);
  EXPECT_EQ(ax.index_at(100), 0u);
  EXPECT_EQ(ax.index_at(109), 0u);
  EXPECT_EQ(ax.index_at(110), 1u);
  EXPECT_EQ(ax.index_at(1000), 4u);  // clamped to last
}

TEST(TimeAxis, RejectsBadStep) {
  EXPECT_THROW(sc::TimeAxis(0, 0, 10), supremm::InvalidArgument);
  EXPECT_THROW(sc::TimeAxis(0, -5, 10), supremm::InvalidArgument);
}

// --- rng --------------------------------------------------------------------

TEST(Rng, DeterministicAcrossInstances) {
  sc::RngStream a(7, 13);
  sc::RngStream b(7, 13);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentStreamsDiffer) {
  sc::RngStream a(7, 13);
  sc::RngStream b(7, 14);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, NamedStreams) {
  sc::RngStream a(7, "workload", 3);
  sc::RngStream b(7, "workload", 3);
  sc::RngStream c(7, "users", 3);
  EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  // Different purpose gives a different stream (overwhelmingly likely).
  sc::RngStream a2(7, "workload", 3);
  EXPECT_NE(a2.uniform(), c.uniform());
}

TEST(Rng, UniformRange) {
  sc::RngStream r(1, 2);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  sc::RngStream r(1, 3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(1, 4);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 4);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, NormalMoments) {
  sc::RngStream r(1, 4);
  double sum = 0, sum2 = 0;
  constexpr int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal(10.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(Rng, ExponentialMean) {
  sc::RngStream r(1, 5);
  double sum = 0;
  constexpr int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.15);
}

TEST(Rng, ExponentialRejectsBadMean) {
  sc::RngStream r(1, 6);
  EXPECT_THROW((void)r.exponential(0.0), supremm::InvalidArgument);
  EXPECT_THROW((void)r.exponential(-1.0), supremm::InvalidArgument);
}

TEST(Rng, PoissonMean) {
  sc::RngStream r(1, 7);
  double sum = 0;
  constexpr int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(r.poisson(4.5));
  EXPECT_NEAR(sum / n, 4.5, 0.15);
  EXPECT_EQ(r.poisson(0.0), 0);
}

TEST(Rng, ChanceEdgeCases) {
  sc::RngStream r(1, 8);
  EXPECT_FALSE(r.chance(0.0));
  EXPECT_TRUE(r.chance(1.0));
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += r.chance(0.25) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}

TEST(Rng, ParetoSupport) {
  sc::RngStream r(1, 9);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(r.pareto(2.0, 1.5), 2.0);
  EXPECT_THROW((void)r.pareto(0.0, 1.0), supremm::InvalidArgument);
}

TEST(Rng, WeightedIndexDistribution) {
  sc::RngStream r(1, 10);
  const std::vector<double> w = {1.0, 3.0};
  int ones = 0;
  for (int i = 0; i < 10000; ++i) ones += r.weighted_index(w) == 1 ? 1 : 0;
  EXPECT_NEAR(ones / 10000.0, 0.75, 0.03);
}

TEST(Rng, WeightedIndexRejectsEmptyAndZero) {
  sc::RngStream r(1, 11);
  EXPECT_THROW((void)r.weighted_index({}), supremm::InvalidArgument);
  EXPECT_THROW((void)r.weighted_index({0.0, 0.0}), supremm::InvalidArgument);
}

TEST(Rng, ZipfWeights) {
  const auto w = sc::zipf_weights(4, 1.0);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_DOUBLE_EQ(w[0], 1.0);
  EXPECT_DOUBLE_EQ(w[1], 0.5);
  EXPECT_GT(w[2], w[3]);
}

TEST(Rng, HashStringStable) {
  EXPECT_EQ(sc::hash_string("abc"), sc::hash_string("abc"));
  EXPECT_NE(sc::hash_string("abc"), sc::hash_string("abd"));
}

TEST(Rng, SplitMix64Avalanche) {
  EXPECT_NE(sc::splitmix64(1), sc::splitmix64(2));
  EXPECT_NE(sc::splitmix64(0), 0u);
}

// --- strings ------------------------------------------------------------

TEST(Strings, SplitPreservesEmpty) {
  const auto p = sc::split("a::b:", ':');
  ASSERT_EQ(p.size(), 4u);
  EXPECT_EQ(p[0], "a");
  EXPECT_EQ(p[1], "");
  EXPECT_EQ(p[2], "b");
  EXPECT_EQ(p[3], "");
}

TEST(Strings, SplitWsDropsEmpty) {
  const auto p = sc::split_ws("  a\t b  c ");
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(p[0], "a");
  EXPECT_EQ(p[2], "c");
  EXPECT_TRUE(sc::split_ws("   ").empty());
}

TEST(Strings, Trim) {
  EXPECT_EQ(sc::trim("  x "), "x");
  EXPECT_EQ(sc::trim(""), "");
  EXPECT_EQ(sc::trim(" \t\n"), "");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(sc::starts_with("foobar", "foo"));
  EXPECT_FALSE(sc::starts_with("fo", "foo"));
}

TEST(Strings, Join) {
  EXPECT_EQ(sc::join({"a", "b", "c"}, ","), "a,b,c");
  EXPECT_EQ(sc::join({}, ","), "");
}

TEST(Strings, ParseNumbers) {
  EXPECT_EQ(sc::parse_i64("-42"), -42);
  EXPECT_EQ(sc::parse_u64("18446744073709551615"), 18446744073709551615ULL);
  EXPECT_DOUBLE_EQ(sc::parse_f64("2.5e3"), 2500.0);
  EXPECT_EQ(sc::parse_i64("  7 "), 7);  // trimmed
}

TEST(Strings, ParseRejectsGarbage) {
  EXPECT_THROW((void)sc::parse_i64("abc"), supremm::ParseError);
  EXPECT_THROW((void)sc::parse_i64("12x"), supremm::ParseError);
  EXPECT_THROW((void)sc::parse_i64(""), supremm::ParseError);
  EXPECT_THROW((void)sc::parse_f64("1.2.3"), supremm::ParseError);
}

TEST(Strings, Strprintf) {
  EXPECT_EQ(sc::strprintf("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(sc::strprintf("%.2f", 1.234), "1.23");
}

// --- csv ----------------------------------------------------------------

TEST(Csv, QuotingRules) {
  EXPECT_EQ(sc::csv_quote("plain"), "plain");
  EXPECT_EQ(sc::csv_quote("a,b"), "\"a,b\"");
  EXPECT_EQ(sc::csv_quote("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(sc::csv_quote("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, RowOutput) {
  std::ostringstream os;
  sc::CsvWriter w(os);
  w.row({"a", "b,c", "d"});
  EXPECT_EQ(os.str(), "a,\"b,c\",d\n");
}

TEST(Csv, IncrementalFields) {
  std::ostringstream os;
  sc::CsvWriter w(os);
  w.field("x").field(2.5).field(static_cast<std::int64_t>(-3));
  w.end_row();
  w.field("next");
  w.end_row();
  EXPECT_EQ(os.str(), "x,2.5,-3\nnext\n");
}

// --- thread pool ----------------------------------------------------------

TEST(ThreadPool, RunsSubmittedTasks) {
  sc::ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 64; ++i) {
    futs.push_back(pool.submit([&count] { count.fetch_add(1); }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, ParallelForCoversRange) {
  sc::ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(0, 100, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  sc::ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(5, 5, [&ran](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, PropagatesExceptions) {
  sc::ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(0, 10,
                                 [](std::size_t i) {
                                   if (i == 7) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ChunkedVariant) {
  sc::ThreadPool pool(4);
  std::atomic<std::size_t> total{0};
  pool.parallel_for_chunks(10, 110, [&total](std::size_t b, std::size_t e) {
    total.fetch_add(e - b);
  });
  EXPECT_EQ(total.load(), 100u);
}

TEST(ThreadPool, SizeDefaultsPositive) {
  sc::ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

// --- ascii table ------------------------------------------------------------

TEST(AsciiTable, RendersHeaderAndRows) {
  sc::AsciiTable t("Title");
  t.header({"name", "value"});
  t.row({"alpha", "1"});
  t.row({"beta", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("Title"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(AsciiTable, RightAlignsNumbers) {
  sc::AsciiTable t;
  t.header({"v"});
  t.row({"5"});
  t.row({"500"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("|   5 |"), std::string::npos);
  EXPECT_NE(s.find("| 500 |"), std::string::npos);
}

TEST(AsciiTable, RejectsWidthMismatch) {
  sc::AsciiTable t;
  t.header({"a", "b"});
  EXPECT_THROW(t.row({"only-one"}), supremm::InvalidArgument);
}

TEST(AsciiTable, RowBuilder) {
  sc::AsciiTable t;
  t.header({"s", "f", "i"});
  t.add_row().cell("x").cell(3.14159, "%.2f").cell(static_cast<std::int64_t>(9));
  const std::string s = t.to_string();
  EXPECT_NE(s.find("3.14"), std::string::npos);
  EXPECT_NE(s.find("9"), std::string::npos);
}

TEST(AsciiTable, Bar) {
  EXPECT_EQ(sc::ascii_bar(5.0, 10.0, 10).size(), 5u);
  EXPECT_EQ(sc::ascii_bar(20.0, 10.0, 10).size(), 10u);  // capped
  EXPECT_TRUE(sc::ascii_bar(0.0, 10.0, 10).empty());
  EXPECT_TRUE(sc::ascii_bar(1.0, 0.0, 10).empty());
}

// --- errors -------------------------------------------------------------

TEST(Errors, Hierarchy) {
  EXPECT_THROW(throw supremm::ParseError("x"), supremm::Error);
  EXPECT_THROW(throw supremm::NotFoundError("x"), supremm::Error);
  EXPECT_THROW(throw supremm::InvalidArgument("x"), supremm::Error);
  try {
    throw supremm::ParseError("detail");
  } catch (const supremm::Error& e) {
    EXPECT_NE(std::string(e.what()).find("detail"), std::string::npos);
  }
}
