// Determinism suite for the parallel vectorized query engine and the
// multi-threaded archive codec (ctest label: parallel).
//
// The contract under test (DESIGN.md §7/§11): query results, QueryStats,
// group emission order and archive partition bytes are bit-identical for
// every thread count, because parallel work is laid over a canonical grid
// (zone chunks, match-list segments, codec blocks) that does not depend on
// the worker count — plus the regression tests for the group-key encoding:
// double keys group by exact bit pattern, never by a 6-digit decimal
// rendering.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "archive/archive.h"
#include "archive/partition.h"
#include "sim_fixture.h"
#include "warehouse/query.h"
#include "warehouse/table.h"

namespace {

using namespace supremm;
namespace fs = std::filesystem;

constexpr std::size_t kThreadCounts[] = {1, 2, 8};

using supremm::testing::expect_tables_identical;

/// Small shared ingest run for the end-to-end archive tests.
const supremm::testing::SimRun& sim_run() { return supremm::testing::tiny_ranger_run(); }

/// Deterministic mixed-type table: string/int64/double keys and values,
/// including doubles that collide in their first six significant digits.
warehouse::Table make_table(std::size_t rows, bool zone_index) {
  warehouse::Table t("t", {{"user", warehouse::ColType::kString},
                           {"day", warehouse::ColType::kInt64},
                           {"bucket", warehouse::ColType::kDouble},
                           {"value", warehouse::ColType::kDouble},
                           {"weight", warehouse::ColType::kDouble}});
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> frac(0.0, 1.0);
  for (std::size_t r = 0; r < rows; ++r) {
    // Two bucket keys per day that agree to 6 significant digits.
    const double bucket = 0.5 + ((r % 2 == 0) ? 1e-9 : 2e-9);
    t.append()
        .set("user", std::string("u") + std::to_string(r % 17))
        .set("day", static_cast<std::int64_t>(r % 5))
        .set("bucket", bucket)
        .set("value", frac(rng) * 100.0)
        .set("weight", 0.5 + frac(rng));
  }
  if (zone_index) t.rebuild_zone_index(/*chunk_rows=*/256);
  return t;
}

std::vector<warehouse::AggSpec> all_agg_kinds() {
  return {{"value", warehouse::AggKind::kSum, "", ""},
          {"value", warehouse::AggKind::kMean, "", ""},
          {"value", warehouse::AggKind::kWeightedMean, "weight", "wm"},
          {"value", warehouse::AggKind::kMax, "", ""},
          {"value", warehouse::AggKind::kMin, "", ""},
          {"", warehouse::AggKind::kCount, "", "n"}};
}

TEST(ParallelQuery, ResultsAndStatsIdenticalAcrossThreadCounts) {
  const auto table = make_table(20000, /*zone_index=*/true);
  std::optional<warehouse::Table> reference;
  std::optional<warehouse::QueryStats> ref_stats;
  for (const std::size_t threads : kThreadCounts) {
    warehouse::Query q(table);
    auto result = q.where(warehouse::between("value", 10.0, 90.0))
                      .group_by({"user", "day", "bucket"})
                      .aggregate(all_agg_kinds())
                      .threads(threads)
                      .run();
    if (!reference) {
      reference = std::move(result);
      ref_stats = q.stats();
      continue;
    }
    expect_tables_identical(*reference, result);
    EXPECT_EQ(ref_stats->chunks_total, q.stats().chunks_total) << threads << " threads";
    EXPECT_EQ(ref_stats->chunks_pruned, q.stats().chunks_pruned) << threads << " threads";
    EXPECT_EQ(ref_stats->rows_scanned, q.stats().rows_scanned) << threads << " threads";
    EXPECT_EQ(ref_stats->rows_matched, q.stats().rows_matched) << threads << " threads";
  }
}

TEST(ParallelQuery, MatchesScalarReference) {
  const auto table = make_table(5000, /*zone_index=*/false);
  for (const std::size_t threads : kThreadCounts) {
    auto result = warehouse::Query(table)
                      .where(warehouse::ge("value", 25.0))
                      .group_by({"user"})
                      .aggregate({{"value", warehouse::AggKind::kSum, "", "vsum"},
                                  {"", warehouse::AggKind::kCount, "", "n"}})
                      .threads(threads)
                      .run();

    // Independent scalar reference in first-match order.
    std::vector<std::string> order;
    std::vector<double> sums;
    std::vector<std::int64_t> counts;
    const auto& user = table.col("user");
    const auto& value = table.col("value");
    for (std::size_t r = 0; r < table.rows(); ++r) {
      if (value.as_double(r) < 25.0) continue;
      const std::string u(user.as_string(r));
      std::size_t g = 0;
      while (g < order.size() && order[g] != u) ++g;
      if (g == order.size()) {
        order.push_back(u);
        sums.push_back(0.0);
        counts.push_back(0);
      }
      sums[g] += value.as_double(r);
      ++counts[g];
    }
    ASSERT_EQ(result.rows(), order.size());
    for (std::size_t g = 0; g < order.size(); ++g) {
      EXPECT_EQ(result.col("user").as_string(g), order[g]);
      EXPECT_EQ(result.col("n").as_int64(g), counts[g]);
      EXPECT_NEAR(result.col("vsum").as_double(g), sums[g], 1e-9 * std::abs(sums[g]));
    }
  }
}

TEST(ParallelQuery, OpaquePredicateMatchesExactKernels) {
  const auto table = make_table(8000, /*zone_index=*/true);
  auto exact = warehouse::Query(table)
                   .where(warehouse::all_of({warehouse::between("value", 20.0, 80.0),
                                             warehouse::eq("user", "u3")}))
                   .group_by({"day"})
                   .aggregate(all_agg_kinds())
                   .threads(8)
                   .run();
  auto opaque = warehouse::Query(table)
                    .where([](const warehouse::Table& t, std::size_t r) {
                      const double v = t.col("value").as_double(r);
                      return v >= 20.0 && v <= 80.0 && t.col("user").as_string(r) == "u3";
                    })
                    .group_by({"day"})
                    .aggregate(all_agg_kinds())
                    .threads(8)
                    .run();
  expect_tables_identical(exact, opaque);
}

// Regression: the old engine rendered double group keys via
// std::to_string, which keeps 6 significant digits — 0.5 + 1e-9 and
// 0.5 + 2e-9 both rendered "0.500000" and silently merged. Packed keys
// carry the exact bit pattern.
TEST(ParallelQuery, DoubleKeysDistinguishBeyondSixDigits) {
  warehouse::Table t("t", {{"k", warehouse::ColType::kDouble},
                           {"v", warehouse::ColType::kDouble}});
  const double a = 0.5 + 1e-9;
  const double b = 0.5 + 2e-9;
  ASSERT_EQ(std::to_string(a), std::to_string(b));  // the old encoding collided
  for (int i = 0; i < 10; ++i) {
    t.append().set("k", i % 2 == 0 ? a : b).set("v", 1.0);
  }
  for (const std::size_t threads : kThreadCounts) {
    auto g = warehouse::Query(t)
                 .group_by({"k"})
                 .aggregate({{"", warehouse::AggKind::kCount, "", "n"}})
                 .threads(threads)
                 .run();
    ASSERT_EQ(g.rows(), 2u) << "distinct doubles merged into one group";
    EXPECT_EQ(std::bit_cast<std::uint64_t>(g.col("k").as_double(0)),
              std::bit_cast<std::uint64_t>(a));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(g.col("k").as_double(1)),
              std::bit_cast<std::uint64_t>(b));
    EXPECT_EQ(g.col("n").as_int64(0), 5);
    EXPECT_EQ(g.col("n").as_int64(1), 5);
  }
}

TEST(ParallelQuery, SignedZeroKeysAreDistinctGroups) {
  warehouse::Table t("t", {{"k", warehouse::ColType::kDouble},
                           {"v", warehouse::ColType::kDouble}});
  for (int i = 0; i < 6; ++i) t.append().set("k", i % 2 == 0 ? 0.0 : -0.0).set("v", 1.0);
  auto g = warehouse::Query(t)
               .group_by({"k"})
               .aggregate({{"", warehouse::AggKind::kCount, "", "n"}})
               .run();
  ASSERT_EQ(g.rows(), 2u);
  EXPECT_FALSE(std::signbit(g.col("k").as_double(0)));
  EXPECT_TRUE(std::signbit(g.col("k").as_double(1)));
}

TEST(ParallelArchive, EncodeBytesIdenticalAcrossThreadCounts) {
  const auto table = make_table(6000, /*zone_index=*/false);
  const std::string reference = archive::encode_partition(table, 3);
  for (const std::size_t threads : kThreadCounts) {
    const std::string bytes =
        archive::encode_partition(table, 3, archive::kDefaultChunkRows, threads);
    ASSERT_EQ(reference, bytes) << threads << " threads";
  }
}

TEST(ParallelArchive, DecodeIdenticalAcrossThreadCounts) {
  const auto table = make_table(6000, /*zone_index=*/false);
  const std::string bytes = archive::encode_partition(table, 3);
  std::optional<warehouse::Table> reference;
  for (const std::size_t threads : kThreadCounts) {
    auto dp = archive::decode_partition(bytes, nullptr, threads);
    EXPECT_EQ(dp.day, 3);
    if (!reference) {
      expect_tables_identical(table, dp.table);  // round trip
      reference = std::move(dp.table);
      continue;
    }
    expect_tables_identical(*reference, dp.table);
  }
}

TEST(ParallelArchive, PrunedDecodeIdenticalAcrossThreadCounts) {
  // Time-ordered rows make the zone maps selective: a [0, 10] window on the
  // monotone column survives only in the leading chunks, so most of the
  // partition's blocks are never decompressed.
  warehouse::Table table("ordered", {{"time", warehouse::ColType::kDouble},
                                     {"user", warehouse::ColType::kString},
                                     {"value", warehouse::ColType::kDouble}});
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> frac(0.0, 1.0);
  for (std::size_t r = 0; r < 6000; ++r) {
    table.append()
        .set("time", static_cast<double>(r) * 0.01)
        .set("user", std::string("u") + std::to_string(r % 17))
        .set("value", frac(rng));
  }
  const std::string bytes =
      archive::encode_partition(table, 0, /*chunk_rows=*/256);
  const std::vector<warehouse::PredicateBounds> bounds = {
      {.column = "time", .lo = 0.0, .hi = 10.0, .equals = {}}};
  std::optional<warehouse::Table> reference;
  for (const std::size_t threads : kThreadCounts) {
    auto dp = archive::decode_partition(bytes, &bounds, threads);
    EXPECT_GT(dp.chunks_pruned, 0u);
    EXPECT_LT(dp.table.rows(), table.rows());
    if (!reference) {
      reference = std::move(dp.table);
      continue;
    }
    expect_tables_identical(*reference, dp.table);
  }
}

/// End-to-end: a real ingest appended to two archives with different thread
/// counts must produce byte-identical files (manifest included).
TEST(ParallelArchive, AppendFilesByteIdenticalAcrossThreadCounts) {
  const auto& run = sim_run();
  etl::IngestConfig cfg;
  cfg.start = run.start;
  cfg.span = run.span;
  cfg.cluster = run.spec.name;

  const fs::path base = fs::temp_directory_path() / "supremm_test_parallel_append";
  fs::remove_all(base);
  auto build = [&](std::size_t threads) {
    const fs::path dir = base / (std::string("t") + std::to_string(threads));
    archive::Archive ar(dir.string(), threads);
    ar.append(cfg, run.files, run.acct, run.lariat_records, run.catalogue,
              etl::project_science_map(*run.population), "ctx", run.start + run.span);
    return dir;
  };
  const fs::path d1 = build(1);
  const fs::path d8 = build(8);

  auto slurp = [](const fs::path& p) {
    std::ifstream in(p, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  };
  std::size_t files = 0;
  for (const auto& entry : fs::directory_iterator(d1)) {
    const fs::path other = d8 / entry.path().filename();
    ASSERT_TRUE(fs::exists(other)) << other;
    EXPECT_EQ(slurp(entry.path()), slurp(other)) << entry.path().filename();
    ++files;
  }
  EXPECT_GT(files, 2u);  // at least jobs + series + quality + manifest
  fs::remove_all(base);
}

/// Reader materialization with a worker pool must match the serial reader,
/// quarantine accounting included.
TEST(ParallelArchive, ReaderTablesIdenticalAcrossThreadCounts) {
  const fs::path dir = fs::temp_directory_path() / "supremm_test_parallel_reader";
  supremm::testing::build_archive(dir.string(), sim_run(), /*threads=*/2);

  std::optional<warehouse::Table> jobs_ref;
  for (const std::size_t threads : kThreadCounts) {
    archive::Reader reader(dir.string(), threads);
    auto jobs = reader.table("jobs");
    EXPECT_TRUE(reader.quarantined().empty());
    if (!jobs_ref) {
      jobs_ref = std::move(jobs);
      continue;
    }
    expect_tables_identical(*jobs_ref, jobs);
  }
  fs::remove_all(dir);
}

}  // namespace
