// Rollup realm tests (DESIGN.md §16): subsumption boundary rules (the
// off-by-one-day trap at grain edges), fuzzed bit-identity of rollup-served
// results against the raw scan and the oracle across thread counts and SIMD
// tiers, metamorphic equality of incrementally maintained archive rollups
// against from-scratch builds, and service epoch invalidation across appends.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "archive/archive.h"
#include "archive/tables.h"
#include "common/simd.h"
#include "common/time.h"
#include "service/service.h"
#include "sim_fixture.h"
#include "testkit/genquery.h"
#include "testkit/genrequest.h"
#include "testkit/oracle.h"
#include "warehouse/aggstate.h"
#include "warehouse/rollup.h"

namespace ar = supremm::archive;
namespace etl = supremm::etl;
namespace fs = std::filesystem;
namespace ru = supremm::warehouse::rollup;
namespace sc = supremm::common;
namespace simd = supremm::common::simd;
namespace sv = supremm::service;
namespace tk = supremm::testkit;
namespace wh = supremm::warehouse;
using supremm::testing::expect_tables_identical;
using supremm::testing::SimRun;
using supremm::testing::small_ranger_run;

namespace {

constexpr std::int64_t kDay = sc::kDay;
constexpr const char* kContext = "rollup-test";

std::string scratch_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("supremm-" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

ar::AppendStats append_days(ar::Archive& a, const SimRun& run, int days) {
  etl::IngestConfig cfg;
  cfg.start = run.start;
  cfg.span = days * kDay;
  cfg.cluster = run.spec.name;
  return a.append(cfg, run.files, run.acct, run.lariat_records, run.catalogue,
                  etl::project_science_map(*run.population), kContext,
                  run.start + days * kDay);
}

/// The testkit spec re-expressed for the subsumption checker — the same
/// lossless mapping the service request path performs.
ru::QueryInput rollup_input(const tk::QuerySpec& spec) {
  ru::QueryInput in;
  if (spec.has_where) {
    for (const tk::PredTerm& t : spec.where) {
      ru::PredInput p;
      switch (t.op) {
        case tk::PredOp::kEq: p.op = ru::PredInput::Op::kEq; break;
        case tk::PredOp::kGe: p.op = ru::PredInput::Op::kGe; break;
        case tk::PredOp::kLe: p.op = ru::PredInput::Op::kLe; break;
        case tk::PredOp::kBetween: p.op = ru::PredInput::Op::kBetween; break;
      }
      p.column = t.column;
      p.value = t.value;
      p.lo = t.lo;
      p.hi = t.hi;
      in.where.push_back(std::move(p));
    }
  }
  in.group_by = spec.group_by;
  in.aggs = spec.aggs;
  return in;
}

ru::QueryInput simple_input(std::vector<ru::PredInput> where,
                            std::vector<std::string> group_by) {
  ru::QueryInput in;
  in.where = std::move(where);
  in.group_by = std::move(group_by);
  wh::AggSpec count;
  count.kind = wh::AggKind::kCount;
  in.aggs.push_back(count);
  return in;
}

ru::PredInput ge(std::string col, double lo) {
  ru::PredInput p;
  p.op = ru::PredInput::Op::kGe;
  p.column = std::move(col);
  p.lo = lo;
  return p;
}

ru::PredInput le(std::string col, double hi) {
  ru::PredInput p;
  p.op = ru::PredInput::Op::kLe;
  p.column = std::move(col);
  p.hi = hi;
  return p;
}

ru::PredInput between(std::string col, double lo, double hi) {
  ru::PredInput p;
  p.op = ru::PredInput::Op::kBetween;
  p.column = std::move(col);
  p.lo = lo;
  p.hi = hi;
  return p;
}

/// Shared fuzz population and its augmented reference table + rollups.
const std::vector<etl::JobSummary>& fuzz_jobs() {
  static const std::vector<etl::JobSummary> jobs =
      tk::make_rollup_jobs({.rows = 3000, .seed = 777});
  return jobs;
}

const wh::Table& fuzz_ref() {
  static const wh::Table t = [] {
    wh::Table jt = ar::jobs_table(fuzz_jobs());
    ru::augment_jobs_table(jt);
    jt.rebuild_zone_index(ar::kDefaultChunkRows);
    return jt;
  }();
  return t;
}

const ru::RollupSet& fuzz_rollups() {
  static const ru::RollupSet set = ru::build_from_table(fuzz_ref());
  return set;
}

std::vector<simd::Tier> host_tiers() {
  std::vector<simd::Tier> out = {simd::Tier::kScalar};
  if (simd::hardware_tier() >= simd::Tier::kSse2) out.push_back(simd::Tier::kSse2);
  if (simd::hardware_tier() >= simd::Tier::kAvx2) out.push_back(simd::Tier::kAvx2);
  return out;
}

struct TierGuard {
  TierGuard() = default;
  ~TierGuard() { simd::set_tier(simd::hardware_tier()); }
};

/// The manifest filename of the jobs partition for `day`, or empty.
std::string jobs_partition_filename(const ar::Archive& a, std::int64_t day) {
  for (const auto& p : a.manifest().partitions) {
    if (p.table == ar::kJobsTable && p.day == day) return p.filename;
  }
  return {};
}

/// Flips one mid-file byte so the partition's CRC check quarantines it.
void flip_byte(const fs::path& file) {
  std::fstream f(file, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open()) << file;
  f.seekg(0, std::ios::end);
  const std::streamoff size = f.tellg();
  ASSERT_GT(size, 0);
  f.seekg(size / 2);
  char c = 0;
  f.get(c);
  f.seekp(size / 2);
  f.put(static_cast<char>(c ^ 0x5a));
}

/// Forces rollup serving on for the test body (overriding a SUPREMM_ROLLUP=off
/// environment, so the forced-off ctest leg still exercises these paths) and
/// restores the switch when the test exits, pass or fail.
struct EnabledGuard {
  EnabledGuard() { ru::set_enabled(true); }
  ~EnabledGuard() { ru::set_enabled(true); }
};

// ---------------------------------------------------------------------------
// Calendar math (DST-free by construction: a day is exactly 86400 simulated
// seconds and the grains nest without exception days).

static_assert(wh::kDaysPerWeek == 7);
static_assert(wh::kDaysPerMonth % wh::kDaysPerWeek == 0);
static_assert(wh::kDaysPerQuarter % wh::kDaysPerMonth == 0);

TEST(RollupCalendar, EndDayIndexIsHalfOpenOnMidnight) {
  // Day D covers end in (D*86400, (D+1)*86400]: midnight itself closes the
  // previous day, one second past opens the next.
  EXPECT_EQ(wh::end_day_index(1), 0);
  EXPECT_EQ(wh::end_day_index(kDay), 0);
  EXPECT_EQ(wh::end_day_index(kDay + 1), 1);
  EXPECT_EQ(wh::end_day_index(2 * kDay), 1);
  EXPECT_EQ(wh::end_day_index(0), -1);
  EXPECT_EQ(wh::end_day_index(-kDay + 1), -1);
  EXPECT_EQ(wh::floor_div(-1, 7), -1);
  EXPECT_EQ(wh::floor_div(-7, 7), -1);
  EXPECT_EQ(wh::floor_div(-8, 7), -2);
}

// ---------------------------------------------------------------------------
// Subsumption rules, especially the half-open `end` bounds at bucket edges.

TEST(RollupSubsume, AlignedEndBoundsAreServable) {
  // end >= d*86400 + 1 selects exactly days >= d.
  auto plan = ru::subsume(simple_input({ge("end", 5.0 * kDay + 1.0)}, {"user"}));
  ASSERT_TRUE(plan.has_value());
  EXPECT_TRUE(plan->has_lo);
  EXPECT_EQ(plan->d_lo, 5);
  EXPECT_FALSE(plan->has_hi);

  // end <= d*86400 selects exactly days <= d-1.
  plan = ru::subsume(simple_input({le("end", 9.0 * kDay)}, {"user"}));
  ASSERT_TRUE(plan.has_value());
  EXPECT_TRUE(plan->has_hi);
  EXPECT_EQ(plan->d_hi, 8);

  // Fractional bounds that round to the aligned instants are fine too.
  plan = ru::subsume(
      simple_input({between("end", 2.0 * kDay + 0.5, 6.0 * kDay + 0.5)}, {}));
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->d_lo, 2);
  EXPECT_EQ(plan->d_hi, 5);
}

TEST(RollupSubsume, MisalignedEndBoundsAreRejected) {
  // A lower bound two seconds past midnight cuts day 5 in half: no set of
  // whole cells can serve it.
  EXPECT_FALSE(ru::subsume(simple_input({ge("end", 5.0 * kDay + 2.0)}, {"user"})));
  // An upper bound one second past midnight includes one instant of day 9.
  EXPECT_FALSE(ru::subsume(simple_input({le("end", 9.0 * kDay + 1.0)}, {"user"})));
  // One second *before* midnight excludes the midnight-ending jobs of day 8.
  EXPECT_FALSE(ru::subsume(simple_input({le("end", 9.0 * kDay - 1.0)}, {"user"})));
  // NaN and beyond-int64 bounds must be rejected before integer conversion.
  EXPECT_FALSE(ru::subsume(
      simple_input({ge("end", std::numeric_limits<double>::quiet_NaN())}, {})));
  EXPECT_FALSE(ru::subsume(simple_input({ge("end", 5e18)}, {})));
  EXPECT_FALSE(ru::subsume(simple_input({le("end", -5e18)}, {})));
}

TEST(RollupSubsume, LevelSelectionRespectsGrainAlignment) {
  // Week-grouped, week-aligned range: served from the week table.
  auto plan = ru::subsume(simple_input(
      {between("end", 7.0 * kDay + 1.0, 28.0 * kDay)}, {"week"}));
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(ru::levels()[plan->level].grain, 7);

  // Week-grouped but the range straddles a week boundary (days 8..27): the
  // plan must drop to the day table — serving whole week buckets would
  // over-count the edge days.
  plan = ru::subsume(simple_input(
      {between("end", 8.0 * kDay + 1.0, 28.0 * kDay)}, {"week"}));
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(ru::levels()[plan->level].grain, 1);

  // Quarter-aligned everything: coarsest level wins.
  plan = ru::subsume(simple_input({ge("end", 84.0 * kDay + 1.0)}, {"quarter"}));
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(ru::levels()[plan->level].grain, 84);

  // No time predicate and no bucket keys: full range, coarsest level.
  plan = ru::subsume(simple_input({}, {"user", "cluster"}));
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(ru::levels()[plan->level].grain, 84);
  EXPECT_FALSE(plan->has_lo);
  EXPECT_FALSE(plan->has_hi);
}

TEST(RollupSubsume, IneligibleShapesFallBack) {
  // Non-subkey dimension, metric-range predicate, non-metric agg source,
  // and wmean with a weight other than node_hours all reject.
  EXPECT_FALSE(ru::subsume(simple_input({}, {"science"})));
  EXPECT_FALSE(ru::subsume(simple_input({ge("node_hours", 1.0)}, {"user"})));
  ru::QueryInput in = simple_input({}, {"user"});
  in.aggs[0].kind = wh::AggKind::kSum;
  in.aggs[0].column = "submit";
  EXPECT_FALSE(ru::subsume(in));
  in.aggs[0].kind = wh::AggKind::kWeightedMean;
  in.aggs[0].column = "cpu_idle";
  in.aggs[0].weight = "mem_used_gb";
  EXPECT_FALSE(ru::subsume(in));
  in.aggs[0].weight = "node_hours";
  EXPECT_TRUE(ru::subsume(in).has_value());
  // Five group keys (or duplicates) belong to the raw path, which owns the
  // resulting error.
  EXPECT_FALSE(ru::subsume(
      simple_input({}, {"user", "app", "cluster", "day", "week"})));
  EXPECT_FALSE(ru::subsume(simple_input({}, {"user", "user"})));
}

// Timestamps on, one past, and one short of the day-20 midnight (the
// population salts all three instants). Day D holds end ∈ (D·86400,
// (D+1)·86400], so exactly one cut per direction is bucket-aligned:
// ge D·86400+1 and le D·86400. Every accepted plan must serve
// bit-identically to the raw scan; every straddling cut must be rejected.
TEST(RollupSubsume, BoundaryTimestampsServeExactly) {
  for (const double bound : {20.0 * kDay + 1.0, 20.0 * kDay, 21.0 * kDay}) {
    for (const bool lower : {true, false}) {
      tk::QuerySpec spec;
      spec.has_where = true;
      tk::PredTerm t;
      t.column = "end";
      t.op = lower ? tk::PredOp::kGe : tk::PredOp::kLe;
      t.lo = bound;
      t.hi = bound;
      spec.where.push_back(t);
      spec.group_by = {"user", "day"};
      wh::AggSpec count;
      count.kind = wh::AggKind::kCount;
      wh::AggSpec sum;
      sum.kind = wh::AggKind::kSum;
      sum.column = "node_hours";
      spec.aggs = {count, sum};
      const std::int64_t b = static_cast<std::int64_t>(bound);
      const bool servable = lower ? (b - 1) % kDay == 0 : b % kDay == 0;
      const auto plan = ru::subsume(rollup_input(spec));
      ASSERT_EQ(plan.has_value(), servable)
          << "bound=" << bound << " lower=" << lower;
      if (!plan) continue;
      wh::QueryStats stats;
      const wh::Table served = ru::serve(fuzz_rollups(), *plan, &stats);
      const tk::QueryRun raw = tk::run_engine(fuzz_ref(), spec);
      expect_tables_identical(served, raw.table);
    }
  }
}

// ---------------------------------------------------------------------------
// Fuzzed differential: rollup-served == raw scan == oracle, bit-identical.

TEST(RollupFuzz, FiveHundredQueriesAgainstOracleAndServe) {
  constexpr std::uint64_t kSeed = 20130313;
  constexpr std::size_t kQueries = 510;
  std::size_t subsumed = 0, fallback = 0;
  for (std::size_t q = 0; q < kQueries; ++q) {
    tk::QuerySpec spec = tk::make_rollup_query_spec(kSeed, q);
    for (const std::size_t threads : tk::kDiffThreadCounts) {
      spec.threads = threads;
      const auto diff = tk::differential_check(fuzz_ref(), spec, threads);
      ASSERT_FALSE(diff.has_value())
          << "query " << q << " threads " << threads << ": " << *diff;
    }
    spec.threads = 1;
    SCOPED_TRACE("query " + std::to_string(q) + ": " +
                 tk::to_request_text(spec, "jobs"));
    if (const auto plan = ru::subsume(rollup_input(spec))) {
      ++subsumed;
      wh::QueryStats stats;
      const wh::Table served = ru::serve(fuzz_rollups(), *plan, &stats);
      const tk::QueryRun raw = tk::run_engine(fuzz_ref(), spec);
      expect_tables_identical(served, raw.table);
      // Rollup stats use the documented cell accounting: level rows
      // examined, except a dim literal missing from the level dictionary
      // short-circuits selection and reports zero.
      bool dict_miss = false;
      for (const auto& [col, val] : plan->dim_eq) {
        if (!fuzz_rollups().level(plan->level).col(col).find_code(val)) {
          dict_miss = true;
          break;
        }
      }
      EXPECT_EQ(stats.rows_scanned,
                dict_miss ? 0u : fuzz_rollups().level(plan->level).rows());
      EXPECT_EQ(stats.chunks_total, 0u);
      EXPECT_EQ(stats.chunks_pruned, 0u);
    } else {
      ++fallback;
    }
  }
  // The grammar is steered toward the decision boundary: both outcomes must
  // be exercised heavily.
  EXPECT_GE(subsumed, kQueries / 4);
  EXPECT_GE(fallback, kQueries / 8);
}

TEST(RollupFuzz, SimdTiersBitIdentical) {
  TierGuard guard;
  constexpr std::uint64_t kSeed = 424242;
  for (std::size_t q = 0; q < 60; ++q) {
    const tk::QuerySpec spec = tk::make_rollup_query_spec(kSeed, q);
    const auto plan = ru::subsume(rollup_input(spec));
    std::optional<wh::Table> baseline;
    for (const simd::Tier tier : host_tiers()) {
      simd::set_tier(tier);
      const tk::QueryRun raw = tk::run_engine(fuzz_ref(), spec);
      if (!baseline) {
        baseline.emplace(raw.table);
      } else {
        expect_tables_identical(*baseline, raw.table);
      }
      if (plan) {
        const wh::Table served = ru::serve(fuzz_rollups(), *plan, nullptr);
        expect_tables_identical(*baseline, served);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Service integration: forced-off differential leg, hit accounting, epoch
// invalidation across appends.

TEST(RollupService, ServedAndForcedOffLegsAreBitIdentical) {
  EnabledGuard guard;
  sv::ServiceConfig cfg;
  cfg.workers = 1;
  cfg.cache_entries = 0;  // no cache: every submit exercises the executor
  sv::Service on(cfg), off(cfg);
  on.publish_jobs(fuzz_jobs());
  off.publish_jobs(fuzz_jobs());
  auto son = on.session("on"), soff = off.session("off");

  constexpr std::uint64_t kSeed = 20130313;
  std::size_t served = 0;
  for (std::size_t q = 0; q < 200; ++q) {
    tk::QuerySpec spec;
    const std::string text = tk::make_rollup_request_text(kSeed, q, &spec);
    ru::set_enabled(true);
    const sv::ResponsePtr ron = son.run(text);
    ru::set_enabled(false);
    const sv::ResponsePtr roff = soff.run(text);
    ASSERT_EQ(ron->status, sv::Status::kOk) << text << ": " << ron->error;
    ASSERT_EQ(roff->status, sv::Status::kOk) << text << ": " << roff->error;
    expect_tables_identical(*ron->table, *roff->table);
    // Both legs also match the engine run over the augmented reference.
    ru::set_enabled(true);
    const tk::QueryRun raw = tk::run_engine(fuzz_ref(), spec);
    expect_tables_identical(*ron->table, raw.table);
    if (ru::subsume(rollup_input(spec))) ++served;
  }
  const sv::ServiceMetrics mon = on.metrics();
  EXPECT_EQ(mon.rollup_hits, served);
  EXPECT_EQ(mon.rollup_hits + mon.rollup_misses, 200u);
  EXPECT_GE(mon.rollup_hits, 50u);
  EXPECT_GT(mon.rollup_cells, 0u);
  EXPECT_TRUE(mon.rollups_enabled);
  // The forced-off service never consulted the checker.
  const sv::ServiceMetrics moff = off.metrics();
  EXPECT_EQ(moff.rollup_hits, 0u);
  const std::string json = on.metrics_json();
  EXPECT_NE(json.find("\"rollup\":{\"enabled\":true"), std::string::npos);
}

TEST(RollupService, DisabledConfigSkipsBuildAndServing) {
  sv::ServiceConfig cfg;
  cfg.workers = 1;
  cfg.rollups = false;
  sv::Service svc(cfg);
  svc.publish_jobs(fuzz_jobs());
  auto s = svc.session("c");
  const sv::ResponsePtr r = s.run("query jobs group user agg count()");
  ASSERT_EQ(r->status, sv::Status::kOk) << r->error;
  const sv::ServiceMetrics m = svc.metrics();
  EXPECT_FALSE(m.rollups_enabled);
  EXPECT_EQ(m.rollup_hits, 0u);
  EXPECT_EQ(m.rollup_cells, 0u);
}

TEST(RollupService, AppendAdvancesEpochAndInvalidatesRollupCache) {
  EnabledGuard guard;
  const SimRun& run = small_ranger_run();
  const std::string dir = scratch_dir("rollup-epoch");
  ar::Archive a(dir);
  append_days(a, run, 4);

  sv::ServiceConfig cfg;
  cfg.workers = 1;
  cfg.cache_entries = 16;
  sv::Service svc(cfg);
  svc.bind_archive(a);
  auto s = svc.session("dash");

  // A subsumable dashboard query, cached under the pre-append epoch.
  const std::string text = "query jobs group user,day agg count(),sum(node_hours)";
  const sv::ResponsePtr r1 = s.run(text);
  ASSERT_EQ(r1->status, sv::Status::kOk) << r1->error;
  EXPECT_FALSE(r1->cache_hit);
  const sv::ResponsePtr r2 = s.run(text);
  ASSERT_EQ(r2->status, sv::Status::kOk);
  EXPECT_TRUE(r2->cache_hit);
  EXPECT_EQ(r2->epoch, r1->epoch);
  expect_tables_identical(*r1->table, *r2->table);
  EXPECT_GE(svc.metrics().rollup_hits, 1u);

  // Maintenance advances the watermark; the epoch bump must retire every
  // pre-append cache entry — a stale rollup answer can never be served.
  append_days(a, run, 8);
  const sv::ResponsePtr r3 = s.run(text);
  ASSERT_EQ(r3->status, sv::Status::kOk) << r3->error;
  EXPECT_FALSE(r3->cache_hit);
  EXPECT_GT(r3->epoch, r1->epoch);
  EXPECT_GT(r3->watermark, r1->watermark);
  // And the fresh answer reflects the appended days: more jobs counted.
  ASSERT_GT(r3->table->rows(), 0u);
  EXPECT_GT(r3->table->rows(), r1->table->rows());
}

// ---------------------------------------------------------------------------
// Metamorphic: incrementally maintained archive rollups == from-scratch.

TEST(RollupArchive, IncrementalAppendsEqualScratchBuild) {
  const SimRun& run = small_ranger_run();
  const std::string inc_dir = scratch_dir("rollup-inc");
  const std::string one_dir = scratch_dir("rollup-one");

  ar::Archive inc(inc_dir);
  const ar::AppendStats s1 = append_days(inc, run, 2);
  EXPECT_GT(s1.rollup_partitions_written, 0u);
  EXPECT_EQ(s1.rollup_days_read_back, 0u);  // nothing retained yet
  const ar::AppendStats s2 = append_days(inc, run, 5);
  const ar::AppendStats s3 = append_days(inc, run, 8);
  // Incremental maintenance re-reads at most the current quarter of
  // retained jobs partitions, never the whole archive.
  EXPECT_LE(s2.rollup_days_read_back, 84u);
  EXPECT_GT(s3.rollup_partitions_written, 0u);

  ar::Archive one(one_dir);
  append_days(one, run, 8);

  const auto from_inc = inc.load_rollups();
  const auto from_one = one.load_rollups();
  ASSERT_TRUE(from_inc.has_value());
  ASSERT_TRUE(from_one.has_value());
  ASSERT_GT(from_inc->cells(), 0u);

  // Leg three: a from-scratch build over the loaded jobs table.
  wh::Table jobs = ar::jobs_table(inc.load().result.jobs);
  ru::augment_jobs_table(jobs);
  const ru::RollupSet rebuilt = ru::build_from_table(jobs);

  for (std::size_t li = 0; li < ru::levels().size(); ++li) {
    expect_tables_identical(from_inc->level(li), from_one->level(li));
    expect_tables_identical(from_inc->level(li), rebuilt.level(li));
  }
}

TEST(RollupArchive, MaintainedCellsAreUsedWithoutRebuild) {
  const SimRun& run = small_ranger_run();
  const std::string dir = scratch_dir("rollup-maintained");
  ar::Archive a(dir);
  append_days(a, run, 2);
  ASSERT_TRUE(a.load_rollups().has_value());

  sv::ServiceConfig cfg;
  cfg.workers = 1;
  sv::Service svc(cfg);
  svc.bind_archive(a);
  EXPECT_EQ(svc.metrics().rollup_rebuilds, 0u);  // maintained cells were used
  EXPECT_GT(svc.metrics().rollup_cells, 0u);
}

TEST(RollupArchive, MissingRollupPartitionsFallBackToRebuild) {
  // Strip the rollup partition files: load_rollups must refuse the partial
  // state (nullopt) and a binding service rebuilds its cells from the jobs
  // table — serving identical answers either way.
  EnabledGuard guard;
  const SimRun& run = small_ranger_run();
  const std::string dir = scratch_dir("rollup-legacy");
  {
    ar::Archive a(dir);
    append_days(a, run, 2);
  }
  std::size_t removed = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().filename().string().rfind("rollup_", 0) == 0) {
      fs::remove(entry.path());
      ++removed;
    }
  }
  ASSERT_GT(removed, 0u);

  ar::Archive a(dir);
  EXPECT_FALSE(a.load_rollups().has_value());

  sv::ServiceConfig cfg;
  cfg.workers = 1;
  sv::Service svc(cfg);
  svc.bind_archive(a);  // first bind publishes despite the quarantines
  const sv::ServiceMetrics m = svc.metrics();
  EXPECT_EQ(m.rollup_rebuilds, 1u);
  EXPECT_GT(m.rollup_cells, 0u);

  auto s = svc.session("c");
  const sv::ResponsePtr r = s.run("query jobs group user agg count()");
  ASSERT_EQ(r->status, sv::Status::kOk) << r->error;
  EXPECT_GE(svc.metrics().rollup_hits, 1u);
}

// ---------------------------------------------------------------------------
// Consistency at the edges: quarantined binds, unsorted publishes, config-off
// parity, degraded maintenance, and the dictionary-miss stats short-circuit.

TEST(RollupServe, DictionaryMissShortCircuitsWithZeroScanned) {
  ru::QueryInput in = simple_input({}, {"user"});
  ru::PredInput p;
  p.op = ru::PredInput::Op::kEq;
  p.column = "user";
  p.value = "no-such-user";
  in.where.push_back(p);
  const auto plan = ru::subsume(in);
  ASSERT_TRUE(plan.has_value());
  wh::QueryStats stats;
  const wh::Table served = ru::serve(fuzz_rollups(), *plan, &stats);
  EXPECT_EQ(served.rows(), 0u);
  EXPECT_EQ(stats.rows_scanned, 0u);  // zero cells were examined on the miss
  EXPECT_EQ(stats.rows_matched, 0u);

  // The raw scan agrees on the (empty) answer.
  tk::QuerySpec spec;
  spec.has_where = true;
  tk::PredTerm t;
  t.column = "user";
  t.op = tk::PredOp::kEq;
  t.value = "no-such-user";
  spec.where.push_back(t);
  spec.group_by = {"user"};
  wh::AggSpec count;
  count.kind = wh::AggKind::kCount;
  spec.aggs = {count};
  const tk::QueryRun raw = tk::run_engine(fuzz_ref(), spec);
  expect_tables_identical(served, raw.table);
}

TEST(RollupService, UnsortedPublishServesBitIdentical) {
  EnabledGuard guard;
  // publish_jobs canonicalizes to ascending-id order (the order
  // Archive::load restores): a reversed publish must serve rollup and raw
  // answers bit-identical to each other and to the reference population.
  std::vector<etl::JobSummary> reversed(fuzz_jobs().rbegin(), fuzz_jobs().rend());
  sv::ServiceConfig cfg;
  cfg.workers = 1;
  cfg.cache_entries = 0;
  sv::Service svc(cfg);
  svc.publish_jobs(std::move(reversed));
  auto s = svc.session("rev");
  constexpr std::uint64_t kSeed = 20130313;
  for (std::size_t q = 0; q < 60; ++q) {
    tk::QuerySpec spec;
    const std::string text = tk::make_rollup_request_text(kSeed, q, &spec);
    ru::set_enabled(true);
    const sv::ResponsePtr on = s.run(text);
    ru::set_enabled(false);
    const sv::ResponsePtr off = s.run(text);
    ru::set_enabled(true);
    ASSERT_EQ(on->status, sv::Status::kOk) << text << ": " << on->error;
    ASSERT_EQ(off->status, sv::Status::kOk) << text << ": " << off->error;
    expect_tables_identical(*on->table, *off->table);
    const tk::QueryRun raw = tk::run_engine(fuzz_ref(), spec);
    expect_tables_identical(*on->table, raw.table);
  }
}

TEST(RollupService, DisabledConfigKeepsQuerySurfaceAndResults) {
  EnabledGuard guard;
  // rollups=false skips the build and the serving path but must not change
  // the query surface: bucket columns stay queryable and grouped
  // aggregation runs the same time-partitioned contract, so every answer
  // matches an enabled service bit for bit.
  sv::ServiceConfig on_cfg, off_cfg;
  on_cfg.workers = off_cfg.workers = 1;
  on_cfg.cache_entries = off_cfg.cache_entries = 0;
  off_cfg.rollups = false;
  sv::Service on(on_cfg), off(off_cfg);
  on.publish_jobs(fuzz_jobs());
  off.publish_jobs(fuzz_jobs());
  auto son = on.session("on"), soff = off.session("off");
  constexpr std::uint64_t kSeed = 97531;
  for (std::size_t q = 0; q < 60; ++q) {
    const std::string text = tk::make_rollup_request_text(kSeed, q);
    const sv::ResponsePtr ron = son.run(text);
    const sv::ResponsePtr roff = soff.run(text);
    ASSERT_EQ(ron->status, sv::Status::kOk) << text << ": " << ron->error;
    ASSERT_EQ(roff->status, sv::Status::kOk) << text << ": " << roff->error;
    expect_tables_identical(*ron->table, *roff->table);
  }
  // The bucket columns exist on the rollups=false surface too.
  const sv::ResponsePtr grouped = soff.run("query jobs group week agg count()");
  ASSERT_EQ(grouped->status, sv::Status::kOk) << grouped->error;
  EXPECT_EQ(off.metrics().rollup_hits, 0u);
  EXPECT_EQ(off.metrics().rollup_cells, 0u);
}

TEST(RollupService, FirstBindWithQuarantineRebuildsFromLoadedTable) {
  EnabledGuard guard;
  const SimRun& run = small_ranger_run();
  const std::string dir = scratch_dir("rollup-quarantine-bind");
  {
    ar::Archive a(dir);
    append_days(a, run, 4);
    const std::string file = jobs_partition_filename(a, 1);
    ASSERT_FALSE(file.empty());
    flip_byte(fs::path(dir) / file);
  }

  // The rollup partitions are intact, but the jobs table the first bind
  // publishes is partial (day 1 quarantined): the maintained cells — built
  // from the full pre-corruption data — must be rejected in favour of a
  // rebuild over what actually loaded, or served and scanned answers
  // diverge on the same snapshot.
  ar::Archive a(dir);
  ASSERT_TRUE(a.load_rollups().has_value());  // cells themselves are healthy
  ASSERT_FALSE(a.load().quarantined.empty());

  sv::ServiceConfig cfg;
  cfg.workers = 1;
  cfg.cache_entries = 0;
  sv::Service svc(cfg);
  svc.bind_archive(a);  // first bind publishes the partial view
  EXPECT_EQ(svc.metrics().rollup_rebuilds, 1u);

  auto s = svc.session("partial");
  const std::string text = "query jobs group user,day agg count(),sum(node_hours)";
  ru::set_enabled(true);
  const sv::ResponsePtr served = s.run(text);
  ru::set_enabled(false);
  const sv::ResponsePtr scanned = s.run(text);
  ru::set_enabled(true);
  ASSERT_EQ(served->status, sv::Status::kOk) << served->error;
  ASSERT_EQ(scanned->status, sv::Status::kOk) << scanned->error;
  EXPECT_GE(svc.metrics().rollup_hits, 1u);
  expect_tables_identical(*served->table, *scanned->table);
}

TEST(RollupArchive, RetainedPartitionBitrotDegradesThenRecovers) {
  const SimRun& run = small_ranger_run();
  const std::string dir = scratch_dir("rollup-degrade");
  ar::Archive a(dir);
  append_days(a, run, 2);
  const std::string file = jobs_partition_filename(a, 0);
  ASSERT_FALSE(file.empty());
  const fs::path path = fs::path(dir) / file;
  std::string pristine;
  {
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.is_open());
    pristine.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  }
  flip_byte(path);

  // Latent bitrot in a retained partition degrades maintenance instead of
  // failing the append: the data partitions still commit, but no rollup
  // partitions do, so a partial cell set can never serve.
  const ar::AppendStats degraded = append_days(a, run, 5);
  EXPECT_TRUE(degraded.rollup_maintenance_skipped);
  EXPECT_EQ(degraded.rollup_partitions_written, 0u);
  EXPECT_EQ(degraded.rollup_cells_written, 0u);
  EXPECT_GT(degraded.partitions_written, 0u);
  EXPECT_FALSE(a.load_rollups().has_value());

  // Restore the file byte-for-byte (the manifest still references it): the
  // next append can read the full history again and rebuilds coverage from
  // scratch, identical to a from-scratch build over the loaded jobs.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.is_open());
    out.write(pristine.data(), static_cast<std::streamsize>(pristine.size()));
  }
  const ar::AppendStats recovered = append_days(a, run, 8);
  EXPECT_FALSE(recovered.rollup_maintenance_skipped);
  EXPECT_GT(recovered.rollup_partitions_written, 0u);
  const auto maintained = a.load_rollups();
  ASSERT_TRUE(maintained.has_value());
  wh::Table jobs = ar::jobs_table(a.load().result.jobs);
  ru::augment_jobs_table(jobs);
  const ru::RollupSet rebuilt = ru::build_from_table(jobs);
  for (std::size_t li = 0; li < ru::levels().size(); ++li) {
    expect_tables_identical(maintained->level(li), rebuilt.level(li));
  }
}

}  // namespace
