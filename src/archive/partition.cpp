#include "archive/partition.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "archive/codec.h"
#include "common/checksum.h"
#include "common/error.h"
#include "common/pool.h"
#include "compress/lzss.h"

namespace supremm::archive {

namespace {

constexpr char kMagic[8] = {'S', 'U', 'P', 'A', 'R', 'C', 'H', '1'};
constexpr std::uint16_t kVersion = 1;

struct Zone {
  double lo = 0.0;
  double hi = 0.0;
  std::uint32_t nulls = 0;
};

void put_name(std::string& out, std::string_view name) {
  if (name.size() > 0xffff) throw common::InvalidArgument("archive: name too long");
  put_u16(out, static_cast<std::uint16_t>(name.size()));
  out.append(name);
}

std::string get_name(ByteReader& in) { return std::string(in.bytes(in.u16())); }

/// Compress `raw` into a self-contained length-prefixed, checksummed block.
std::string pack_block(std::string_view raw) {
  compress::StreamCompressor comp;
  comp.append(raw);
  const std::string packed = comp.finish();
  std::string out;
  put_u32(out, static_cast<std::uint32_t>(packed.size()));
  put_u32(out, common::crc32(packed));
  out.append(packed);
  return out;
}

/// Location of one block's compressed payload inside the partition image.
struct BlockRef {
  std::size_t pos = 0;  // offset of the payload (after len + crc)
  std::uint32_t len = 0;
  std::uint32_t crc = 0;
};

/// Record the block at the reader's position without touching its payload.
BlockRef scan_block(ByteReader& in) {
  BlockRef ref;
  ref.len = in.u32();
  ref.crc = in.u32();
  ref.pos = in.pos();
  in.skip(ref.len);
  return ref;
}

/// Verify and decompress a scanned block.
std::string get_block(std::string_view bytes, const BlockRef& ref) {
  const std::string_view packed = bytes.substr(ref.pos, ref.len);
  if (common::crc32(packed) != ref.crc) throw common::ParseError("archive: block CRC mismatch");
  return compress::decompress(packed);
}

double cell_value(const warehouse::Column& c, std::size_t row) {
  switch (c.type()) {
    case warehouse::ColType::kDouble:
      return c.as_double(row);
    case warehouse::ColType::kInt64:
      return static_cast<double>(c.as_int64(row));
    case warehouse::ColType::kString:
      return static_cast<double>(c.code(row));
  }
  return 0.0;
}

Zone zone_of(const warehouse::Column& c, std::size_t lo_row, std::size_t hi_row) {
  Zone z;
  bool seen = false;
  for (std::size_t r = lo_row; r < hi_row; ++r) {
    const double v = cell_value(c, r);
    if (std::isnan(v)) {
      ++z.nulls;
      continue;
    }
    if (!seen || v < z.lo) z.lo = v;
    if (!seen || v > z.hi) z.hi = v;
    seen = true;
  }
  return z;
}

}  // namespace

std::string encode_partition(const warehouse::Table& table, std::int64_t day,
                             std::size_t chunk_rows, std::size_t threads) {
  if (chunk_rows == 0) throw common::InvalidArgument("archive: chunk_rows must be positive");
  if (table.cols() > 0xffff) throw common::InvalidArgument("archive: too many columns");
  const std::size_t rows = table.rows();
  const std::size_t nchunks = (rows + chunk_rows - 1) / chunk_rows;
  const auto& cols = table.columns();

  std::string out;
  out.append(kMagic, sizeof(kMagic));
  put_u16(out, kVersion);
  put_name(out, table.name());
  put_u64(out, static_cast<std::uint64_t>(day));
  put_u64(out, rows);
  put_u32(out, static_cast<std::uint32_t>(chunk_rows));
  put_u32(out, static_cast<std::uint32_t>(nchunks));
  put_u16(out, static_cast<std::uint16_t>(table.cols()));
  for (const auto& c : cols) {
    put_name(out, c.name());
    out.push_back(static_cast<char>(c.type()));
  }

  // Zone maps up front so readers can decide chunk survival before touching
  // any data block. Every (column, chunk) cell is independent. Work runs on
  // the shared pool (common/pool.h) with automatic batching, so small cells
  // amortize claim traffic instead of paying per-call thread spawns.
  std::vector<Zone> zones(cols.size() * nchunks);
  common::pool_run(zones.size(), threads, 0, [&](std::size_t i) {
    const std::size_t c = i / nchunks;
    const std::size_t lo_row = (i % nchunks) * chunk_rows;
    zones[i] = zone_of(cols[c], lo_row, std::min(rows, lo_row + chunk_rows));
  });
  for (const Zone& z : zones) {
    put_f64(out, z.lo);
    put_f64(out, z.hi);
    put_u32(out, z.nulls);
  }

  // Data blocks, in file order: per column, an optional dictionary block
  // (string columns) then one block per chunk. Each block is an independent
  // LZSS stream, so they compress in parallel and concatenate in order —
  // the bytes are identical for any thread count.
  struct BlockJob {
    std::size_t col = 0;
    std::ptrdiff_t chunk = -1;  // -1 = dictionary block
  };
  std::vector<BlockJob> jobs;
  jobs.reserve(cols.size() * (nchunks + 1));
  for (std::size_t c = 0; c < cols.size(); ++c) {
    if (cols[c].type() == warehouse::ColType::kString) jobs.push_back({c, -1});
    for (std::size_t ch = 0; ch < nchunks; ++ch) {
      jobs.push_back({c, static_cast<std::ptrdiff_t>(ch)});
    }
  }

  std::vector<std::string> blocks(jobs.size());
  common::pool_run(jobs.size(), threads, 0, [&](std::size_t j) {
    const warehouse::Column& c = cols[jobs[j].col];
    std::string raw;
    if (jobs[j].chunk < 0) {
      put_u32(raw, static_cast<std::uint32_t>(c.dict().size()));
      for (const auto& entry : c.dict()) {
        put_u32(raw, static_cast<std::uint32_t>(entry.size()));
        raw.append(entry);
      }
    } else {
      const std::size_t lo_row = static_cast<std::size_t>(jobs[j].chunk) * chunk_rows;
      const std::size_t n = std::min(rows, lo_row + chunk_rows) - lo_row;
      switch (c.type()) {
        case warehouse::ColType::kDouble:
          encode_f64_chunk(c.doubles().subspan(lo_row, n), raw);
          break;
        case warehouse::ColType::kInt64:
          encode_i64_chunk(c.int64s().subspan(lo_row, n), raw);
          break;
        case warehouse::ColType::kString:
          encode_codes_chunk(c.codes().subspan(lo_row, n), raw);
          break;
      }
    }
    blocks[j] = pack_block(raw);
  });
  for (const auto& b : blocks) out.append(b);
  return out;
}

namespace {

struct Header {
  std::string table_name;
  std::int64_t day = 0;
  std::uint64_t rows = 0;
  std::uint32_t chunk_rows = 0;
  std::uint32_t nchunks = 0;
  std::vector<std::pair<std::string, warehouse::ColType>> schema;
  std::vector<std::vector<Zone>> zones;  // [column][chunk]
};

Header read_header(ByteReader& in, bool with_zones) {
  if (std::memcmp(in.bytes(sizeof(kMagic)).data(), kMagic, sizeof(kMagic)) != 0) {
    throw common::ParseError("archive: bad partition magic");
  }
  if (in.u16() != kVersion) throw common::ParseError("archive: unsupported partition version");
  Header h;
  h.table_name = get_name(in);
  h.day = static_cast<std::int64_t>(in.u64());
  h.rows = in.u64();
  h.chunk_rows = in.u32();
  h.nchunks = in.u32();
  if (h.chunk_rows == 0) throw common::ParseError("archive: zero chunk_rows");
  if (h.nchunks != (h.rows + h.chunk_rows - 1) / h.chunk_rows) {
    throw common::ParseError("archive: chunk count mismatch");
  }
  const std::uint16_t ncols = in.u16();
  if (ncols == 0) throw common::ParseError("archive: partition without columns");
  for (std::uint16_t c = 0; c < ncols; ++c) {
    std::string name = get_name(in);
    const std::uint8_t type = in.u8();
    if (type > static_cast<std::uint8_t>(warehouse::ColType::kString)) {
      throw common::ParseError("archive: bad column type");
    }
    h.schema.emplace_back(std::move(name), static_cast<warehouse::ColType>(type));
  }
  if (!with_zones) return h;
  h.zones.resize(ncols);
  for (std::uint16_t c = 0; c < ncols; ++c) {
    h.zones[c].resize(h.nchunks);
    for (std::uint32_t ch = 0; ch < h.nchunks; ++ch) {
      Zone& z = h.zones[c][ch];
      z.lo = in.f64();
      z.hi = in.f64();
      z.nulls = in.u32();
    }
  }
  return h;
}

/// Decode the dictionary block of a string column.
std::vector<std::string> read_dict(std::string_view bytes, const BlockRef& ref) {
  const std::string raw = get_block(bytes, ref);
  ByteReader r(raw);
  const std::uint32_t n = r.u32();
  std::vector<std::string> dict;
  dict.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) dict.emplace_back(r.bytes(r.u32()));
  if (r.remaining() != 0) throw common::ParseError("archive: dictionary trailing bytes");
  return dict;
}

/// The typed payload of one decoded chunk (exactly one vector is filled).
struct DecodedChunk {
  std::vector<double> f64;
  std::vector<std::int64_t> i64;
  std::vector<std::int32_t> codes;
};

}  // namespace

DecodedPartition decode_partition(std::string_view bytes,
                                  const std::vector<warehouse::PredicateBounds>* prune,
                                  std::size_t threads) {
  ByteReader in(bytes);
  Header h = read_header(in, /*with_zones=*/true);
  const std::size_t ncols = h.schema.size();

  // Index every block via its length prefix (no payload is touched yet);
  // the whole image must be exactly the header plus these blocks.
  std::vector<BlockRef> dict_refs(ncols);
  std::vector<std::vector<BlockRef>> chunk_refs(ncols);
  for (std::size_t c = 0; c < ncols; ++c) {
    if (h.schema[c].second == warehouse::ColType::kString) dict_refs[c] = scan_block(in);
    chunk_refs[c].resize(h.nchunks);
    for (std::uint32_t ch = 0; ch < h.nchunks; ++ch) chunk_refs[c][ch] = scan_block(in);
  }
  if (in.remaining() != 0) throw common::ParseError("archive: partition trailing bytes");

  // Dictionaries decode up front: pruning needs them to resolve equality
  // literals, and the columns need them installed before codes append.
  std::vector<std::vector<std::string>> dicts(ncols);
  for (std::size_t c = 0; c < ncols; ++c) {
    if (h.schema[c].second == warehouse::ColType::kString) {
      dicts[c] = read_dict(bytes, dict_refs[c]);
    }
  }

  // Decide chunk survival against the stored zone maps.
  std::vector<bool> survives(h.nchunks, true);
  if (prune != nullptr && h.nchunks > 0) {
    for (const auto& b : *prune) {
      const auto it = std::find_if(h.schema.begin(), h.schema.end(),
                                   [&](const auto& s) { return s.first == b.column; });
      if (it == h.schema.end()) continue;
      const auto c = static_cast<std::size_t>(it - h.schema.begin());
      const bool is_string = h.schema[c].second == warehouse::ColType::kString;
      double lo = b.lo;
      double hi = b.hi;
      if (b.equals) {
        if (!is_string) continue;
        const auto& dict = dicts[c];
        const auto dit = std::find(dict.begin(), dict.end(), *b.equals);
        if (dit == dict.end()) {
          survives.assign(h.nchunks, false);  // value absent from the partition
          break;
        }
        lo = hi = static_cast<double>(dit - dict.begin());
      } else if (is_string) {
        continue;
      }
      for (std::uint32_t ch = 0; ch < h.nchunks; ++ch) {
        const Zone& z = h.zones[c][ch];
        if (z.hi < lo || z.lo > hi) survives[ch] = false;
      }
    }
  }

  DecodedPartition out{warehouse::Table(h.table_name, h.schema), h.day, h.nchunks, 0};
  for (std::uint32_t ch = 0; ch < h.nchunks; ++ch) {
    if (!survives[ch]) ++out.chunks_pruned;
  }

  // Decompress and decode every surviving (column, chunk) block in parallel
  // into its own slot, then assemble the table serially in chunk order — so
  // the result is identical for any thread count.
  std::vector<std::pair<std::size_t, std::uint32_t>> work;  // (col, chunk)
  work.reserve(ncols * h.nchunks);
  for (std::size_t c = 0; c < ncols; ++c) {
    for (std::uint32_t ch = 0; ch < h.nchunks; ++ch) {
      if (survives[ch]) work.emplace_back(c, ch);
    }
  }
  std::vector<DecodedChunk> cells(work.size());
  common::pool_run(work.size(), threads, 0, [&](std::size_t w) {
    const auto [c, ch] = work[w];
    const std::size_t lo_row = static_cast<std::size_t>(ch) * h.chunk_rows;
    const std::size_t n = std::min<std::size_t>(h.rows - lo_row, h.chunk_rows);
    const std::string raw = get_block(bytes, chunk_refs[c][ch]);
    ByteReader r(raw);
    DecodedChunk& cell = cells[w];
    switch (h.schema[c].second) {
      case warehouse::ColType::kDouble:
        cell.f64.reserve(n);
        decode_f64_chunk(r, n, cell.f64);
        break;
      case warehouse::ColType::kInt64:
        cell.i64.reserve(n);
        decode_i64_chunk(r, n, cell.i64);
        break;
      case warehouse::ColType::kString:
        cell.codes.reserve(n);
        decode_codes_chunk(r, n, cell.codes);
        for (const std::int32_t code : cell.codes) {
          if (static_cast<std::size_t>(code) >= dicts[c].size()) {
            throw common::ParseError("archive: dictionary code out of range");
          }
        }
        break;
    }
    if (r.remaining() != 0) throw common::ParseError("archive: chunk trailing bytes");
  });

  for (std::size_t c = 0; c < ncols; ++c) {
    if (h.schema[c].second == warehouse::ColType::kString) {
      out.table.col(h.schema[c].first).set_dict(std::move(dicts[c]));
    }
  }
  for (std::size_t w = 0; w < work.size(); ++w) {
    warehouse::Column& col = out.table.col(h.schema[work[w].first].first);
    switch (h.schema[work[w].first].second) {
      case warehouse::ColType::kDouble:
        col.append_doubles(cells[w].f64);
        break;
      case warehouse::ColType::kInt64:
        col.append_int64s(cells[w].i64);
        break;
      case warehouse::ColType::kString:
        col.append_codes(cells[w].codes);
        break;
    }
  }
  out.table.finalize_rows();
  return out;
}

std::string partition_table_name(std::string_view bytes) {
  ByteReader in(bytes);
  return read_header(in, /*with_zones=*/false).table_name;
}

}  // namespace supremm::archive
