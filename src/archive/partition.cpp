#include "archive/partition.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "archive/codec.h"
#include "common/checksum.h"
#include "common/error.h"
#include "compress/lzss.h"

namespace supremm::archive {

namespace {

constexpr char kMagic[8] = {'S', 'U', 'P', 'A', 'R', 'C', 'H', '1'};
constexpr std::uint16_t kVersion = 1;

struct Zone {
  double lo = 0.0;
  double hi = 0.0;
  std::uint32_t nulls = 0;
};

void put_name(std::string& out, std::string_view name) {
  if (name.size() > 0xffff) throw common::InvalidArgument("archive: name too long");
  put_u16(out, static_cast<std::uint16_t>(name.size()));
  out.append(name);
}

std::string get_name(ByteReader& in) { return std::string(in.bytes(in.u16())); }

/// Compress `raw` and append it as a length-prefixed, checksummed block.
void put_block(std::string& out, std::string_view raw) {
  compress::StreamCompressor comp;
  comp.append(raw);
  const std::string packed = comp.finish();
  put_u32(out, static_cast<std::uint32_t>(packed.size()));
  put_u32(out, common::crc32(packed));
  out.append(packed);
}

/// Verify and decompress the block at the reader's position.
std::string get_block(ByteReader& in) {
  const std::uint32_t len = in.u32();
  const std::uint32_t crc = in.u32();
  const std::string_view packed = in.bytes(len);
  if (common::crc32(packed) != crc) throw common::ParseError("archive: block CRC mismatch");
  return compress::decompress(packed);
}

/// Skip the block at the reader's position without touching its payload.
void skip_block(ByteReader& in) {
  const std::uint32_t len = in.u32();
  (void)in.u32();  // crc
  in.skip(len);
}

double cell_value(const warehouse::Column& c, std::size_t row) {
  switch (c.type()) {
    case warehouse::ColType::kDouble:
      return c.as_double(row);
    case warehouse::ColType::kInt64:
      return static_cast<double>(c.as_int64(row));
    case warehouse::ColType::kString:
      return static_cast<double>(c.code(row));
  }
  return 0.0;
}

Zone zone_of(const warehouse::Column& c, std::size_t lo_row, std::size_t hi_row) {
  Zone z;
  bool seen = false;
  for (std::size_t r = lo_row; r < hi_row; ++r) {
    const double v = cell_value(c, r);
    if (std::isnan(v)) {
      ++z.nulls;
      continue;
    }
    if (!seen || v < z.lo) z.lo = v;
    if (!seen || v > z.hi) z.hi = v;
    seen = true;
  }
  return z;
}

}  // namespace

std::string encode_partition(const warehouse::Table& table, std::int64_t day,
                             std::size_t chunk_rows) {
  if (chunk_rows == 0) throw common::InvalidArgument("archive: chunk_rows must be positive");
  if (table.cols() > 0xffff) throw common::InvalidArgument("archive: too many columns");
  const std::size_t rows = table.rows();
  const std::size_t nchunks = (rows + chunk_rows - 1) / chunk_rows;

  std::string out;
  out.append(kMagic, sizeof(kMagic));
  put_u16(out, kVersion);
  put_name(out, table.name());
  put_u64(out, static_cast<std::uint64_t>(day));
  put_u64(out, rows);
  put_u32(out, static_cast<std::uint32_t>(chunk_rows));
  put_u32(out, static_cast<std::uint32_t>(nchunks));
  put_u16(out, static_cast<std::uint16_t>(table.cols()));
  for (const auto& c : table.columns()) {
    put_name(out, c.name());
    out.push_back(static_cast<char>(c.type()));
  }

  // Zone maps up front so readers can decide chunk survival before touching
  // any data block.
  for (const auto& c : table.columns()) {
    for (std::size_t ch = 0; ch < nchunks; ++ch) {
      const std::size_t lo_row = ch * chunk_rows;
      const Zone z = zone_of(c, lo_row, std::min(rows, lo_row + chunk_rows));
      put_f64(out, z.lo);
      put_f64(out, z.hi);
      put_u32(out, z.nulls);
    }
  }

  std::string raw;
  for (const auto& c : table.columns()) {
    if (c.type() == warehouse::ColType::kString) {
      raw.clear();
      put_u32(raw, static_cast<std::uint32_t>(c.dict().size()));
      for (const auto& entry : c.dict()) {
        put_u32(raw, static_cast<std::uint32_t>(entry.size()));
        raw.append(entry);
      }
      put_block(out, raw);
    }
    for (std::size_t ch = 0; ch < nchunks; ++ch) {
      const std::size_t lo_row = ch * chunk_rows;
      const std::size_t hi_row = std::min(rows, lo_row + chunk_rows);
      raw.clear();
      switch (c.type()) {
        case warehouse::ColType::kDouble:
          encode_f64_chunk(c.doubles().subspan(lo_row, hi_row - lo_row), raw);
          break;
        case warehouse::ColType::kInt64:
          encode_i64_chunk(c.int64s().subspan(lo_row, hi_row - lo_row), raw);
          break;
        case warehouse::ColType::kString: {
          std::vector<std::int32_t> codes;
          codes.reserve(hi_row - lo_row);
          for (std::size_t r = lo_row; r < hi_row; ++r) codes.push_back(c.code(r));
          encode_codes_chunk(codes, raw);
          break;
        }
      }
      put_block(out, raw);
    }
  }
  return out;
}

namespace {

struct Header {
  std::string table_name;
  std::int64_t day = 0;
  std::uint64_t rows = 0;
  std::uint32_t chunk_rows = 0;
  std::uint32_t nchunks = 0;
  std::vector<std::pair<std::string, warehouse::ColType>> schema;
  std::vector<std::vector<Zone>> zones;  // [column][chunk]
};

Header read_header(ByteReader& in, bool with_zones) {
  if (std::memcmp(in.bytes(sizeof(kMagic)).data(), kMagic, sizeof(kMagic)) != 0) {
    throw common::ParseError("archive: bad partition magic");
  }
  if (in.u16() != kVersion) throw common::ParseError("archive: unsupported partition version");
  Header h;
  h.table_name = get_name(in);
  h.day = static_cast<std::int64_t>(in.u64());
  h.rows = in.u64();
  h.chunk_rows = in.u32();
  h.nchunks = in.u32();
  if (h.chunk_rows == 0) throw common::ParseError("archive: zero chunk_rows");
  if (h.nchunks != (h.rows + h.chunk_rows - 1) / h.chunk_rows) {
    throw common::ParseError("archive: chunk count mismatch");
  }
  const std::uint16_t ncols = in.u16();
  if (ncols == 0) throw common::ParseError("archive: partition without columns");
  for (std::uint16_t c = 0; c < ncols; ++c) {
    std::string name = get_name(in);
    const std::uint8_t type = in.u8();
    if (type > static_cast<std::uint8_t>(warehouse::ColType::kString)) {
      throw common::ParseError("archive: bad column type");
    }
    h.schema.emplace_back(std::move(name), static_cast<warehouse::ColType>(type));
  }
  if (!with_zones) return h;
  h.zones.resize(ncols);
  for (std::uint16_t c = 0; c < ncols; ++c) {
    h.zones[c].resize(h.nchunks);
    for (std::uint32_t ch = 0; ch < h.nchunks; ++ch) {
      Zone& z = h.zones[c][ch];
      z.lo = in.f64();
      z.hi = in.f64();
      z.nulls = in.u32();
    }
  }
  return h;
}

/// Decode the dictionary block of a string column.
std::vector<std::string> read_dict(ByteReader& in) {
  const std::string raw = get_block(in);
  ByteReader r(raw);
  const std::uint32_t n = r.u32();
  std::vector<std::string> dict;
  dict.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) dict.emplace_back(r.bytes(r.u32()));
  if (r.remaining() != 0) throw common::ParseError("archive: dictionary trailing bytes");
  return dict;
}

}  // namespace

DecodedPartition decode_partition(std::string_view bytes,
                                  const std::vector<warehouse::PredicateBounds>* prune) {
  ByteReader in(bytes);
  Header h = read_header(in, /*with_zones=*/true);

  // Decide chunk survival. Numeric bounds test directly against the zones;
  // string-equality bounds need the column's dictionary, which a first pass
  // reaches by skipping blocks via their length prefixes.
  std::vector<bool> survives(h.nchunks, true);
  if (prune != nullptr && h.nchunks > 0) {
    std::vector<std::vector<std::string>> equals_dict(h.schema.size());
    {
      bool any_equals = false;
      for (const auto& b : *prune) {
        if (b.equals) any_equals = true;
      }
      if (any_equals) {
        ByteReader scan(bytes);
        scan.skip(in.pos());
        for (std::size_t c = 0; c < h.schema.size(); ++c) {
          const bool is_string = h.schema[c].second == warehouse::ColType::kString;
          bool wanted = false;
          for (const auto& b : *prune) {
            if (b.equals && b.column == h.schema[c].first) wanted = true;
          }
          if (is_string && wanted) {
            equals_dict[c] = read_dict(scan);
          } else if (is_string) {
            skip_block(scan);
          }
          for (std::uint32_t ch = 0; ch < h.nchunks; ++ch) skip_block(scan);
        }
      }
    }
    for (const auto& b : *prune) {
      const auto it = std::find_if(h.schema.begin(), h.schema.end(),
                                   [&](const auto& s) { return s.first == b.column; });
      if (it == h.schema.end()) continue;
      const auto c = static_cast<std::size_t>(it - h.schema.begin());
      const bool is_string = h.schema[c].second == warehouse::ColType::kString;
      double lo = b.lo;
      double hi = b.hi;
      if (b.equals) {
        if (!is_string) continue;
        const auto& dict = equals_dict[c];
        const auto dit = std::find(dict.begin(), dict.end(), *b.equals);
        if (dit == dict.end()) {
          survives.assign(h.nchunks, false);  // value absent from the partition
          break;
        }
        lo = hi = static_cast<double>(dit - dict.begin());
      } else if (is_string) {
        continue;
      }
      for (std::uint32_t ch = 0; ch < h.nchunks; ++ch) {
        const Zone& z = h.zones[c][ch];
        if (z.hi < lo || z.lo > hi) survives[ch] = false;
      }
    }
  }

  DecodedPartition out{warehouse::Table(h.table_name, h.schema), h.day, h.nchunks, 0};
  for (std::uint32_t ch = 0; ch < h.nchunks; ++ch) {
    if (!survives[ch]) ++out.chunks_pruned;
  }

  for (std::size_t c = 0; c < h.schema.size(); ++c) {
    warehouse::Column& col = out.table.col(h.schema[c].first);
    std::vector<std::string> dict;
    if (h.schema[c].second == warehouse::ColType::kString) dict = read_dict(in);
    for (std::uint32_t ch = 0; ch < h.nchunks; ++ch) {
      const std::size_t lo_row = static_cast<std::size_t>(ch) * h.chunk_rows;
      const std::size_t n = std::min<std::size_t>(h.rows - lo_row, h.chunk_rows);
      if (!survives[ch]) {
        skip_block(in);
        continue;
      }
      const std::string raw = get_block(in);
      ByteReader r(raw);
      switch (h.schema[c].second) {
        case warehouse::ColType::kDouble: {
          std::vector<double> vals;
          vals.reserve(n);
          decode_f64_chunk(r, n, vals);
          for (const double v : vals) col.push_double(v);
          break;
        }
        case warehouse::ColType::kInt64: {
          std::vector<std::int64_t> vals;
          vals.reserve(n);
          decode_i64_chunk(r, n, vals);
          for (const std::int64_t v : vals) col.push_int64(v);
          break;
        }
        case warehouse::ColType::kString: {
          std::vector<std::int32_t> codes;
          codes.reserve(n);
          decode_codes_chunk(r, n, codes);
          for (const std::int32_t code : codes) {
            if (static_cast<std::size_t>(code) >= dict.size()) {
              throw common::ParseError("archive: dictionary code out of range");
            }
            col.push_string(dict[static_cast<std::size_t>(code)]);
          }
          break;
        }
      }
      if (r.remaining() != 0) throw common::ParseError("archive: chunk trailing bytes");
    }
  }
  if (in.remaining() != 0) throw common::ParseError("archive: partition trailing bytes");
  out.table.finalize_rows();
  return out;
}

std::string partition_table_name(std::string_view bytes) {
  ByteReader in(bytes);
  return read_header(in, /*with_zones=*/false).table_name;
}

}  // namespace supremm::archive
