#include "archive/tables.h"

#include <array>

#include "common/error.h"

namespace supremm::archive {

using warehouse::ColType;
using warehouse::Table;

std::span<const SeriesField> series_fields() {
  static const std::array<SeriesField, 14> kFields = {{
      {"active_nodes", &etl::SystemSeries::active_nodes},
      {"up_nodes", &etl::SystemSeries::up_nodes},
      {"flops_tf", &etl::SystemSeries::flops_tf},
      {"mem_gb_per_node", &etl::SystemSeries::mem_gb_per_node},
      {"cpu_user_core_h", &etl::SystemSeries::cpu_user_core_h},
      {"cpu_idle_core_h", &etl::SystemSeries::cpu_idle_core_h},
      {"cpu_system_core_h", &etl::SystemSeries::cpu_system_core_h},
      {"scratch_write_mb_s", &etl::SystemSeries::scratch_write_mb_s},
      {"scratch_read_mb_s", &etl::SystemSeries::scratch_read_mb_s},
      {"work_write_mb_s", &etl::SystemSeries::work_write_mb_s},
      {"share_mb_s", &etl::SystemSeries::share_mb_s},
      {"ib_tx_mb_s", &etl::SystemSeries::ib_tx_mb_s},
      {"lnet_tx_mb_s", &etl::SystemSeries::lnet_tx_mb_s},
      {"cpu_idle_frac", &etl::SystemSeries::cpu_idle_frac},
  }};
  return kFields;
}

warehouse::Table jobs_table(std::span<const etl::JobSummary> jobs) {
  Table t(kJobsTable,
          {{"job_id", ColType::kInt64},
           {"user", ColType::kString},
           {"app", ColType::kString},
           {"science", ColType::kString},
           {"project", ColType::kString},
           {"cluster", ColType::kString},
           {"submit", ColType::kInt64},
           {"start", ColType::kInt64},
           {"end", ColType::kInt64},
           {"nodes", ColType::kInt64},
           {"cores", ColType::kInt64},
           {"node_hours", ColType::kDouble},
           {"exit_status", ColType::kInt64},
           {"failed", ColType::kInt64},
           {"samples", ColType::kInt64},
           {"reconciled", ColType::kInt64},
           {"cpu_idle", ColType::kDouble},
           {"cpu_flops_gf_node", ColType::kDouble},
           {"flops_valid", ColType::kInt64},
           {"mem_used_gb", ColType::kDouble},
           {"mem_used_max_gb", ColType::kDouble},
           {"io_scratch_write_mb_s", ColType::kDouble},
           {"io_work_write_mb_s", ColType::kDouble},
           {"net_ib_tx_mb_s", ColType::kDouble},
           {"net_lnet_tx_mb_s", ColType::kDouble},
           {"cpu_user", ColType::kDouble},
           {"cpu_system", ColType::kDouble},
           {"io_scratch_read_mb_s", ColType::kDouble},
           {"net_ib_rx_mb_s", ColType::kDouble},
           {"net_lnet_rx_mb_s", ColType::kDouble},
           {"swap_mb_s", ColType::kDouble},
           {"load_mean", ColType::kDouble}});
  for (const auto& j : jobs) {
    t.append()
        .set("job_id", static_cast<std::int64_t>(j.id))
        .set("user", j.user)
        .set("app", j.app)
        .set("science", j.science)
        .set("project", j.project)
        .set("cluster", j.cluster)
        .set("submit", j.submit)
        .set("start", j.start)
        .set("end", j.end)
        .set("nodes", static_cast<std::int64_t>(j.nodes))
        .set("cores", static_cast<std::int64_t>(j.cores))
        .set("node_hours", j.node_hours)
        .set("exit_status", static_cast<std::int64_t>(j.exit_status))
        .set("failed", static_cast<std::int64_t>(j.failed))
        .set("samples", static_cast<std::int64_t>(j.samples))
        .set("reconciled", static_cast<std::int64_t>(j.reconciled ? 1 : 0))
        .set("cpu_idle", j.cpu_idle)
        .set("cpu_flops_gf_node", j.cpu_flops_gf_node)
        .set("flops_valid", static_cast<std::int64_t>(j.flops_valid ? 1 : 0))
        .set("mem_used_gb", j.mem_used_gb)
        .set("mem_used_max_gb", j.mem_used_max_gb)
        .set("io_scratch_write_mb_s", j.io_scratch_write_mb_s)
        .set("io_work_write_mb_s", j.io_work_write_mb_s)
        .set("net_ib_tx_mb_s", j.net_ib_tx_mb_s)
        .set("net_lnet_tx_mb_s", j.net_lnet_tx_mb_s)
        .set("cpu_user", j.cpu_user)
        .set("cpu_system", j.cpu_system)
        .set("io_scratch_read_mb_s", j.io_scratch_read_mb_s)
        .set("net_ib_rx_mb_s", j.net_ib_rx_mb_s)
        .set("net_lnet_rx_mb_s", j.net_lnet_rx_mb_s)
        .set("swap_mb_s", j.swap_mb_s)
        .set("load_mean", j.load_mean);
  }
  return t;
}

std::vector<etl::JobSummary> jobs_from_table(const warehouse::Table& t) {
  std::vector<etl::JobSummary> out;
  out.reserve(t.rows());
  for (std::size_t r = 0; r < t.rows(); ++r) {
    etl::JobSummary j;
    j.id = static_cast<facility::JobId>(t.col("job_id").as_int64(r));
    j.user = std::string(t.col("user").as_string(r));
    j.app = std::string(t.col("app").as_string(r));
    j.science = std::string(t.col("science").as_string(r));
    j.project = std::string(t.col("project").as_string(r));
    j.cluster = std::string(t.col("cluster").as_string(r));
    j.submit = t.col("submit").as_int64(r);
    j.start = t.col("start").as_int64(r);
    j.end = t.col("end").as_int64(r);
    j.nodes = static_cast<std::size_t>(t.col("nodes").as_int64(r));
    j.cores = static_cast<std::size_t>(t.col("cores").as_int64(r));
    j.node_hours = t.col("node_hours").as_double(r);
    j.exit_status = static_cast<int>(t.col("exit_status").as_int64(r));
    j.failed = static_cast<int>(t.col("failed").as_int64(r));
    j.samples = static_cast<std::size_t>(t.col("samples").as_int64(r));
    j.reconciled = t.col("reconciled").as_int64(r) != 0;
    j.cpu_idle = t.col("cpu_idle").as_double(r);
    j.cpu_flops_gf_node = t.col("cpu_flops_gf_node").as_double(r);
    j.flops_valid = t.col("flops_valid").as_int64(r) != 0;
    j.mem_used_gb = t.col("mem_used_gb").as_double(r);
    j.mem_used_max_gb = t.col("mem_used_max_gb").as_double(r);
    j.io_scratch_write_mb_s = t.col("io_scratch_write_mb_s").as_double(r);
    j.io_work_write_mb_s = t.col("io_work_write_mb_s").as_double(r);
    j.net_ib_tx_mb_s = t.col("net_ib_tx_mb_s").as_double(r);
    j.net_lnet_tx_mb_s = t.col("net_lnet_tx_mb_s").as_double(r);
    j.cpu_user = t.col("cpu_user").as_double(r);
    j.cpu_system = t.col("cpu_system").as_double(r);
    j.io_scratch_read_mb_s = t.col("io_scratch_read_mb_s").as_double(r);
    j.net_ib_rx_mb_s = t.col("net_ib_rx_mb_s").as_double(r);
    j.net_lnet_rx_mb_s = t.col("net_lnet_rx_mb_s").as_double(r);
    j.swap_mb_s = t.col("swap_mb_s").as_double(r);
    j.load_mean = t.col("load_mean").as_double(r);
    out.push_back(std::move(j));
  }
  return out;
}

warehouse::Table series_table(const etl::SystemSeries& s) {
  std::vector<std::pair<std::string, ColType>> schema;
  schema.emplace_back("time", ColType::kInt64);
  for (const auto& f : series_fields()) schema.emplace_back(f.column, ColType::kDouble);
  Table t(kSeriesTable, std::move(schema));
  for (std::size_t i = 0; i < s.buckets; ++i) {
    auto row = t.append();
    row.set("time", s.time_at(i));
    for (const auto& f : series_fields()) row.set(f.column, (s.*f.member)[i]);
  }
  return t;
}

etl::SystemSeries series_from_table(const warehouse::Table& t, common::TimePoint start,
                                    common::Duration bucket, std::size_t buckets) {
  etl::SystemSeries s;
  s.start = start;
  s.bucket = bucket;
  s.buckets = buckets;
  for (const auto& f : series_fields()) (s.*f.member).assign(buckets, 0.0);
  for (std::size_t r = 0; r < t.rows(); ++r) {
    const common::TimePoint time = t.col("time").as_int64(r);
    if (time < start || (time - start) % bucket != 0) {
      throw common::ParseError("archive: series row off the bucket grid");
    }
    const auto i = static_cast<std::size_t>((time - start) / bucket);
    if (i >= buckets) throw common::ParseError("archive: series row beyond the watermark");
    for (const auto& f : series_fields()) (s.*f.member)[i] = t.col(f.column).as_double(r);
  }
  return s;
}

warehouse::Table quality_to_table(const etl::DataQualityReport& q) {
  Table t(kQualityTable,
          {{"host", ColType::kString},
           {"span_s", ColType::kInt64},
           {"files", ColType::kInt64},
           {"samples", ColType::kInt64},
           {"pairs", ColType::kInt64},
           {"quarantined", ColType::kInt64},
           {"duplicates_dropped", ColType::kInt64},
           {"reordered", ColType::kInt64},
           {"resets", ColType::kInt64},
           {"rollovers", ColType::kInt64},
           {"missing_job_end", ColType::kInt64},
           {"clock_skew_s", ColType::kInt64},
           {"covered_s", ColType::kDouble}});
  for (const auto& h : q.hosts) {
    t.append()
        .set("host", h.host)
        .set("span_s", q.span)
        .set("files", static_cast<std::int64_t>(h.files))
        .set("samples", static_cast<std::int64_t>(h.samples))
        .set("pairs", static_cast<std::int64_t>(h.pairs))
        .set("quarantined", static_cast<std::int64_t>(h.quarantined))
        .set("duplicates_dropped", static_cast<std::int64_t>(h.duplicates_dropped))
        .set("reordered", static_cast<std::int64_t>(h.reordered))
        .set("resets", static_cast<std::int64_t>(h.resets))
        .set("rollovers", static_cast<std::int64_t>(h.rollovers))
        .set("missing_job_end", static_cast<std::int64_t>(h.missing_job_end))
        .set("clock_skew_s", h.clock_skew_s)
        .set("covered_s", h.covered_s);
  }
  return t;
}

etl::DataQualityReport quality_from_table(const warehouse::Table& t) {
  etl::DataQualityReport q;
  for (std::size_t r = 0; r < t.rows(); ++r) {
    etl::HostQuality h;
    h.host = std::string(t.col("host").as_string(r));
    q.span = t.col("span_s").as_int64(r);
    h.files = static_cast<std::uint64_t>(t.col("files").as_int64(r));
    h.samples = static_cast<std::uint64_t>(t.col("samples").as_int64(r));
    h.pairs = static_cast<std::uint64_t>(t.col("pairs").as_int64(r));
    h.quarantined = static_cast<std::uint64_t>(t.col("quarantined").as_int64(r));
    h.duplicates_dropped = static_cast<std::uint64_t>(t.col("duplicates_dropped").as_int64(r));
    h.reordered = static_cast<std::uint64_t>(t.col("reordered").as_int64(r));
    h.resets = static_cast<std::uint64_t>(t.col("resets").as_int64(r));
    h.rollovers = static_cast<std::uint64_t>(t.col("rollovers").as_int64(r));
    h.missing_job_end = static_cast<std::uint64_t>(t.col("missing_job_end").as_int64(r));
    h.clock_skew_s = t.col("clock_skew_s").as_int64(r);
    h.covered_s = t.col("covered_s").as_double(r);
    q.hosts.push_back(std::move(h));
  }
  return q;
}

}  // namespace supremm::archive
