#include "archive/archive.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>

#include "archive/tables.h"
#include "common/checksum.h"
#include "common/error.h"
#include "common/strings.h"
#include "common/pool.h"
#include "warehouse/aggstate.h"

namespace supremm::archive {

namespace fs = std::filesystem;

namespace {

constexpr const char* kManifestName = "MANIFEST";
constexpr const char* kCommitName = "COMMIT";      // journaled post-commit manifest
constexpr const char* kStagingName = ".staging";   // per-commit staging area
constexpr const char* kManifestHeader = "supremm-archive v1";

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw common::NotFoundError("archive: cannot open " + path.string());
  std::string data((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  if (in.bad()) throw common::ParseError("archive: read failed for " + path.string());
  return data;
}

/// Write via a durable temp file + rename + directory fsync so a crash never
/// leaves a half-written file under the final name and the publish itself is
/// durable. A failed rename (cross-filesystem target, injected fault) is
/// wrapped in a sourced ArchiveError naming the offending path instead of
/// letting the raw filesystem exception escape.
void write_file_atomic(const fs::path& path, std::string_view data,
                       common::IoPolicy* io) {
  const std::string tmp = path.string() + ".tmp";
  common::io::write_file(tmp, data, io, /*durable=*/true);
  try {
    common::io::rename(tmp, path.string(), io);
  } catch (const common::Error& e) {
    throw common::ArchiveError("atomic publish of " + path.string() + " failed: " + e.what());
  }
  common::io::fsync_dir(path.parent_path().string(), io);
}

std::uint32_t parse_hex32(std::string_view s) {
  if (s.empty() || s.size() > 8) throw common::ParseError("archive: bad hex field in manifest");
  std::uint32_t v = 0;
  for (const char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint32_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      v |= static_cast<std::uint32_t>(c - 'A' + 10);
    } else {
      throw common::ParseError("archive: bad hex field in manifest");
    }
  }
  return v;
}

std::string serialize_manifest(const Manifest& m) {
  std::string out;
  out += kManifestHeader;
  out += '\n';
  out += common::strprintf("start %lld\n", static_cast<long long>(m.start));
  out += common::strprintf("bucket %lld\n", static_cast<long long>(m.bucket));
  out += "cluster " + m.cluster + "\n";
  out += "context " + m.context + "\n";
  out += common::strprintf("watermark %lld\n", static_cast<long long>(m.watermark));
  out += common::strprintf("rewrite_from %lld\n", static_cast<long long>(m.rewrite_from));
  out += common::strprintf("epoch %llu\n", static_cast<unsigned long long>(m.epoch));
  for (const auto& p : m.partitions) {
    out += common::strprintf("p %s %lld %llu %08x %llu %s\n", p.table.c_str(),
                             static_cast<long long>(p.day),
                             static_cast<unsigned long long>(p.rows), p.crc,
                             static_cast<unsigned long long>(p.bytes), p.filename.c_str());
  }
  out += common::strprintf("crc %08x\n", common::crc32(out));
  return out;
}

Manifest parse_manifest(std::string_view text) {
  // The trailing "crc NNNNNNNN\n" line checksums everything before it.
  const std::size_t crc_pos = text.rfind("crc ");
  if (crc_pos == std::string_view::npos || (crc_pos != 0 && text[crc_pos - 1] != '\n')) {
    throw common::ParseError("archive: manifest missing checksum line");
  }
  const std::uint32_t stored = parse_hex32(common::trim(text.substr(crc_pos + 4)));
  if (common::crc32(text.substr(0, crc_pos)) != stored) {
    throw common::ParseError("archive: manifest checksum mismatch");
  }

  Manifest m;
  bool header_seen = false;
  for (const auto line_sv : common::split(text.substr(0, crc_pos), '\n')) {
    const std::string_view line = common::trim(line_sv);
    if (line.empty()) continue;
    if (!header_seen) {
      if (line != kManifestHeader) throw common::ParseError("archive: bad manifest header");
      header_seen = true;
      continue;
    }
    const std::size_t sp = line.find(' ');
    const std::string_view key = line.substr(0, sp);
    const std::string_view rest = sp == std::string_view::npos ? "" : line.substr(sp + 1);
    if (key == "start") {
      m.start = common::parse_i64(rest);
    } else if (key == "bucket") {
      m.bucket = common::parse_i64(rest);
    } else if (key == "cluster") {
      m.cluster = std::string(rest);
    } else if (key == "context") {
      m.context = std::string(rest);
    } else if (key == "watermark") {
      m.watermark = common::parse_i64(rest);
    } else if (key == "rewrite_from") {
      m.rewrite_from = common::parse_i64(rest);
    } else if (key == "epoch") {
      m.epoch = common::parse_u64(rest);
    } else if (key == "p") {
      const auto f = common::split_ws(rest);
      if (f.size() != 6) throw common::ParseError("archive: bad partition line in manifest");
      PartitionInfo p;
      p.table = std::string(f[0]);
      p.day = common::parse_i64(f[1]);
      p.rows = common::parse_u64(f[2]);
      p.crc = parse_hex32(f[3]);
      p.bytes = common::parse_u64(f[4]);
      p.filename = std::string(f[5]);
      m.partitions.push_back(std::move(p));
    } else {
      throw common::ParseError("archive: unknown manifest key '" + std::string(key) + "'");
    }
  }
  if (!header_seen) throw common::ParseError("archive: empty manifest");
  // A checksum only proves the manifest is the one that was written, not that
  // its fields make sense; loaders size buffers from (watermark - start) /
  // bucket, so these two invariants must hold before anyone trusts the index.
  if (m.bucket <= 0) {
    throw common::ParseError("archive: manifest bucket must be positive");
  }
  if (m.watermark < m.start) {
    throw common::ParseError("archive: manifest watermark precedes start");
  }
  return m;
}

std::optional<Manifest> try_load_manifest(const std::string& dir) {
  const fs::path path = fs::path(dir) / kManifestName;
  if (!fs::exists(path)) return std::nullopt;
  return parse_manifest(read_file(path));
}

/// Verify a partition file against its manifest record and decode it; on
/// any failure record a quarantine entry — classed as missing (the manifest
/// names a file that is gone) or corrupt (present but failing size/CRC/
/// decode verification) — and return nullopt.
std::optional<DecodedPartition> try_read_partition(
    const std::string& dir, const PartitionInfo& p,
    const std::vector<warehouse::PredicateBounds>* prune,
    std::vector<etl::PartitionQuarantine>& quarantined) {
  auto reject = [&](std::string reason, etl::PartitionFault fault) {
    quarantined.push_back({p.table, p.day, p.filename, std::move(reason), fault});
    return std::nullopt;
  };
  std::string bytes;
  try {
    bytes = read_file(fs::path(dir) / p.filename);
  } catch (const common::NotFoundError& e) {
    return reject(e.what(), etl::PartitionFault::kMissing);
  } catch (const common::Error& e) {
    return reject(e.what(), etl::PartitionFault::kCorrupt);
  }
  if (bytes.size() != p.bytes) {
    return reject(common::strprintf("size mismatch: %zu bytes, manifest says %llu", bytes.size(),
                                    static_cast<unsigned long long>(p.bytes)),
                  etl::PartitionFault::kCorrupt);
  }
  if (common::crc32(bytes) != p.crc) {
    return reject("file CRC mismatch", etl::PartitionFault::kCorrupt);
  }
  try {
    DecodedPartition dp = decode_partition(bytes, prune);
    if (dp.table.name() != p.table) {
      return reject("table name mismatch", etl::PartitionFault::kCorrupt);
    }
    return dp;
  } catch (const common::Error& e) {
    return reject(e.what(), etl::PartitionFault::kCorrupt);
  }
}

/// Quiet integrity probe used by recovery: does `path` hold exactly the
/// bytes the manifest record promises?
bool file_matches(const fs::path& path, const PartitionInfo& p) {
  std::string bytes;
  try {
    bytes = read_file(path);
  } catch (const common::Error&) {
    return false;
  }
  return bytes.size() == p.bytes && common::crc32(bytes) == p.crc;
}

/// Best guess at the table an orphaned partition file belonged to, for the
/// recovery quarantine record ("jobs-d000003-e000002.part" -> "jobs").
std::string table_of_orphan(const std::string& filename) {
  const std::size_t dash = filename.find('-');
  return dash == std::string::npos ? filename : filename.substr(0, dash);
}

/// Natural sort-key column restoring the order ingest produced: jobs come
/// out sorted by id, series by time, quality by host.
std::string_view sort_key_for(std::string_view table) {
  if (table == kJobsTable) return "job_id";
  if (table == kSeriesTable) return "time";
  if (table == kQualityTable) return "host";
  return "";
}

void append_row(warehouse::Table& dst, const warehouse::Table& src, std::size_t r) {
  auto row = dst.append();
  for (const auto& c : src.columns()) {
    switch (c.type()) {
      case warehouse::ColType::kDouble:
        row.set(c.name(), c.as_double(r));
        break;
      case warehouse::ColType::kInt64:
        row.set(c.name(), c.as_int64(r));
        break;
      case warehouse::ColType::kString:
        row.set(c.name(), c.as_string(r));
        break;
    }
  }
}

etl::SystemSeries slice_series(const etl::SystemSeries& s, std::size_t lo, std::size_t hi) {
  etl::SystemSeries out;
  out.start = s.time_at(lo);
  out.bucket = s.bucket;
  out.buckets = hi - lo;
  for (const auto& f : series_fields()) {
    (out.*f.member).assign((s.*f.member).begin() + static_cast<std::ptrdiff_t>(lo),
                           (s.*f.member).begin() + static_cast<std::ptrdiff_t>(hi));
  }
  return out;
}

}  // namespace

// --- Reader ---

Reader::Reader(std::string dir, std::size_t threads)
    : dir_(std::move(dir)), threads_(threads) {
  auto m = try_load_manifest(dir_);
  if (!m) throw common::ParseError("archive: no manifest in " + dir_);
  manifest_ = std::move(*m);
}

std::vector<DecodedPartition> Reader::decode_table(
    std::string_view name, const std::vector<warehouse::PredicateBounds>* prune) {
  std::vector<const PartitionInfo*> parts;
  for (const auto& p : manifest_.partitions) {
    if (p.table == name) parts.push_back(&p);
  }
  std::sort(parts.begin(), parts.end(),
            [](const PartitionInfo* a, const PartitionInfo* b) { return a->day < b->day; });
  if (parts.empty()) {
    throw common::NotFoundError("archive: no partitions for table '" + std::string(name) + "'");
  }

  // Partitions are independent: verify + decode each on the pool into its
  // own slot, then merge in day order so the concatenated tables and the
  // quarantine list come out identical for any thread count.
  std::vector<std::optional<DecodedPartition>> decoded(parts.size());
  std::vector<std::vector<etl::PartitionQuarantine>> quarantines(parts.size());
  common::pool_run(parts.size(), threads_, 1, [&](std::size_t i) {
    decoded[i] = try_read_partition(dir_, *parts[i], prune, quarantines[i]);
  });

  std::vector<DecodedPartition> out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    quarantined_.insert(quarantined_.end(), quarantines[i].begin(), quarantines[i].end());
    if (decoded[i]) {
      chunks_total_ += decoded[i]->chunks_total;
      chunks_pruned_ += decoded[i]->chunks_pruned;
      ++partitions_loaded_;
      out.push_back(std::move(*decoded[i]));
    }
  }
  if (out.empty()) {
    throw common::ParseError("archive: every partition of table '" + std::string(name) +
                             "' is quarantined");
  }
  return out;
}

warehouse::Table Reader::table(std::string_view name, std::size_t chunk_rows) {
  const auto parts = decode_table(name, nullptr);

  // Restore the canonical row order across partitions: collect (partition,
  // row) references, stable-sort them by the table's natural key, and emit.
  const std::string_view key = sort_key_for(name);
  std::vector<std::pair<std::size_t, std::size_t>> order;  // (partition, row)
  for (std::size_t p = 0; p < parts.size(); ++p) {
    for (std::size_t r = 0; r < parts[p].table.rows(); ++r) order.emplace_back(p, r);
  }
  if (!key.empty() && parts.front().table.has_col(key)) {
    const bool by_string =
        parts.front().table.col(key).type() == warehouse::ColType::kString;
    std::stable_sort(order.begin(), order.end(), [&](const auto& a, const auto& b) {
      const warehouse::Column& ca = parts[a.first].table.col(key);
      const warehouse::Column& cb = parts[b.first].table.col(key);
      if (by_string) return ca.as_string(a.second) < cb.as_string(b.second);
      return ca.as_int64(a.second) < cb.as_int64(b.second);
    });
  }

  std::vector<std::pair<std::string, warehouse::ColType>> schema;
  for (const auto& c : parts.front().table.columns()) schema.emplace_back(c.name(), c.type());
  warehouse::Table out(parts.front().table.name(), std::move(schema));
  for (const auto& [p, r] : order) append_row(out, parts[p].table, r);
  out.rebuild_zone_index(chunk_rows);
  return out;
}

warehouse::Table Reader::table_pruned(std::string_view name,
                                      const std::vector<warehouse::PredicateBounds>& bounds,
                                      std::size_t chunk_rows) {
  const auto parts = decode_table(name, &bounds);
  std::vector<std::pair<std::string, warehouse::ColType>> schema;
  for (const auto& c : parts.front().table.columns()) schema.emplace_back(c.name(), c.type());
  warehouse::Table out(parts.front().table.name(), std::move(schema));
  for (const auto& part : parts) {
    for (std::size_t r = 0; r < part.table.rows(); ++r) append_row(out, part.table, r);
  }
  out.rebuild_zone_index(chunk_rows);
  return out;
}

// --- Archive ---

Archive::Archive(std::string dir, std::size_t threads, common::IoPolicy* io)
    : dir_(std::move(dir)), threads_(threads), io_(io) {
  recover();
  manifest_ = try_load_manifest(dir_);
}

const Manifest& Archive::manifest() const {
  if (!manifest_) throw common::NotFoundError("archive: " + dir_ + " is empty");
  return *manifest_;
}

void Archive::recover() {
  namespace cio = common::io;
  if (!fs::exists(dir_)) return;
  const fs::path manifest_path = fs::path(dir_) / kManifestName;
  const fs::path commit_path = fs::path(dir_) / kCommitName;
  const fs::path staging = fs::path(dir_) / kStagingName;

  // A journaled commit is trustworthy only if its manifest text parses and
  // self-checksums; a torn COMMIT write fails the CRC and reads as absent.
  std::optional<Manifest> journal;
  if (fs::exists(commit_path)) {
    try {
      journal = parse_manifest(read_file(commit_path));
    } catch (const common::Error&) {
      journal.reset();
    }
  }
  std::optional<Manifest> published;
  bool manifest_damaged = false;
  if (fs::exists(manifest_path)) {
    try {
      published = parse_manifest(read_file(manifest_path));
    } catch (const common::Error&) {
      manifest_damaged = true;  // externally damaged: the open will throw
    }
  }

  // Roll forward: the journal is newer than the published manifest and every
  // partition it names verifies (already moved into place, or still staged).
  // The commit reached its durability point, so finishing it is mandatory —
  // and idempotent, because each step checks before acting.
  if (journal && (!published || journal->epoch > published->epoch)) {
    bool complete = true;
    for (const auto& p : journal->partitions) {
      if (!file_matches(fs::path(dir_) / p.filename, p) &&
          !file_matches(staging / p.filename, p)) {
        complete = false;
        break;
      }
    }
    if (complete) {
      for (const auto& p : journal->partitions) {
        if (file_matches(fs::path(dir_) / p.filename, p)) continue;
        cio::rename((staging / p.filename).string(),
                    (fs::path(dir_) / p.filename).string(), io_);
      }
      cio::fsync_dir(dir_, io_);
      cio::rename(commit_path.string(), manifest_path.string(), io_);
      cio::fsync_dir(dir_, io_);
      recovery_.commits_rolled_forward += 1;
      published = std::move(journal);
      journal.reset();
      manifest_damaged = false;
    }
  }

  if (manifest_damaged) return;  // cannot tell orphans apart; ctor throws ParseError

  // Roll back: any COMMIT / staging remnant left at this point belongs to a
  // commit that died before its durability point (or an unverifiable one).
  // Discard it; the published manifest remains the archive's state.
  bool discarded_commit = false;
  if (fs::exists(commit_path)) {
    cio::remove(commit_path.string(), io_);
    discarded_commit = true;
  }
  if (fs::exists(staging)) {
    // An empty staging dir is GC debris from a commit that already published
    // (or rolled forward above) — removing it is housekeeping, not a
    // discarded commit. Only staged payload files mark a real rollback.
    for (const auto& entry : fs::directory_iterator(staging)) {
      cio::remove(entry.path().string(), io_);
      discarded_commit = true;
    }
    cio::remove(staging.string(), io_);
  }
  if (discarded_commit) recovery_.commits_rolled_back += 1;

  // Orphan GC: partition files no manifest references (stale partitions a
  // crashed post-publish cleanup left behind, or data from a discarded
  // commit) and abandoned temp files. Quarantine-record each orphaned
  // partition so the loss is visible to operators, then drop it.
  std::vector<std::string> referenced_less_orphans;
  std::vector<fs::path> orphans;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (entry.path().extension() == ".tmp") {
      orphans.push_back(entry.path());
      continue;
    }
    if (entry.path().extension() != ".part") continue;
    bool referenced = false;
    if (published) {
      for (const auto& p : published->partitions) {
        if (p.filename == name) referenced = true;
      }
    }
    if (!referenced) orphans.push_back(entry.path());
  }
  std::sort(orphans.begin(), orphans.end());  // deterministic accounting order
  for (const auto& path : orphans) {
    const std::string name = path.filename().string();
    if (path.extension() == ".part") {
      recovery_quarantines_.push_back({table_of_orphan(name), -1, name,
                                       "orphaned by an interrupted commit; removed by recovery",
                                       etl::PartitionFault::kOrphaned});
    }
    cio::remove(path.string(), io_);
    recovery_.orphans_removed += 1;
  }
  if (discarded_commit || !orphans.empty()) cio::fsync_dir(dir_, io_);
}

void Archive::commit(Manifest& m, const std::vector<StagedPartition>& staged,
                     const std::vector<std::string>& stale) {
  namespace cio = common::io;
  const fs::path staging = fs::path(dir_) / kStagingName;
  // Phase 1 — up to and including the atomic publish. Any failure here is
  // rolled back on the spot: scrub the staging remnants without consulting
  // the policy (cleanup after an injected fault must not re-enter it), keep
  // the pre-commit manifest, and surface a sourced ArchiveError. A
  // SimulatedCrash is not a common::Error and flies through untouched.
  try {
    cio::mkdirs(dir_, io_);
    cio::mkdirs(staging.string(), io_);
    for (const auto& s : staged) {
      cio::write_file((staging / s.info.filename).string(), s.bytes, io_, /*durable=*/true);
    }
    cio::fsync_dir(staging.string(), io_);
    // Journal the complete post-commit manifest. Once COMMIT and the
    // directory entries are durable the commit must survive any crash: this
    // is the durability point recovery rolls forward from.
    write_file_atomic(fs::path(dir_) / kCommitName, serialize_manifest(m), io_);
    for (const auto& s : staged) {
      cio::rename((staging / s.info.filename).string(),
                  (fs::path(dir_) / s.info.filename).string(), io_);
    }
    cio::fsync_dir(dir_, io_);
    // The atomic publish: readers see the old manifest until this rename.
    cio::rename((fs::path(dir_) / kCommitName).string(), (fs::path(dir_) / kManifestName).string(),
                io_);
    cio::fsync_dir(dir_, io_);
  } catch (const common::ArchiveError&) {
    std::error_code ec;
    fs::remove(fs::path(dir_) / kCommitName, ec);
    fs::remove_all(staging, ec);
    throw;
  } catch (const common::Error& e) {
    std::error_code ec;
    fs::remove(fs::path(dir_) / kCommitName, ec);
    fs::remove_all(staging, ec);
    throw common::ArchiveError("commit to " + dir_ + " failed, pre-commit state kept: " +
                               e.what());
  }
  // Phase 2 — cleanup after the publish. The commit has already succeeded;
  // a failure here leaves only orphans, which the next open's recovery
  // garbage-collects, so injected faults are swallowed (a SimulatedCrash
  // still propagates: the process is "dead").
  try {
    for (const auto& f : stale) {
      bool still_used = false;
      for (const auto& p : m.partitions) {
        if (p.filename == f) still_used = true;
      }
      if (!still_used) cio::remove((fs::path(dir_) / f).string(), io_);
    }
    cio::remove(staging.string(), io_);  // empty by now
    cio::fsync_dir(dir_, io_);
  } catch (const common::Error&) {
    // orphaned stale files / staging dir; recovered at next open
  }
}

AppendStats Archive::append(const etl::IngestConfig& cfg,
                            const std::vector<taccstats::RawFile>& files,
                            const std::vector<accounting::AccountingRecord>& acct,
                            const std::vector<lariat::LariatRecord>& lariat_records,
                            const std::vector<facility::AppSignature>& catalogue,
                            const std::unordered_map<std::string, std::string>& project_science,
                            std::string_view context, common::TimePoint upto) {
  using common::kDay;
  if (cfg.start % kDay != 0) {
    throw common::InvalidArgument("archive: ingest start must be day-aligned");
  }
  if (upto % kDay != 0) throw common::InvalidArgument("archive: upto must be day-aligned");
  if (upto <= cfg.start) throw common::InvalidArgument("archive: upto must be after start");
  if (cfg.span != upto - cfg.start) {
    throw common::InvalidArgument("archive: cfg.span must equal upto - cfg.start");
  }
  if (cfg.bucket <= 0 || kDay % cfg.bucket != 0) {
    throw common::InvalidArgument("archive: bucket must evenly divide one day");
  }
  const common::Duration max_gap = cfg.max_pair_gap > 0 ? cfg.max_pair_gap : 3 * cfg.bucket;
  if (max_gap > kDay) {
    throw common::InvalidArgument(
        "archive: max_pair_gap beyond one day breaks day-partitioned append");
  }

  const std::int64_t day0 = common::day_of(cfg.start);
  const std::int64_t day_end = common::day_of(upto);  // exclusive
  std::int64_t prev_final = day0;
  if (manifest_) {
    if (manifest_->start != cfg.start || manifest_->bucket != cfg.bucket ||
        manifest_->cluster != cfg.cluster || manifest_->context != context) {
      throw common::InvalidArgument("archive: " + dir_ +
                                    " was written with a different configuration");
    }
    if (upto <= manifest_->watermark) return {};  // nothing new
    prev_final = manifest_->rewrite_from;
  }

  // Days >= prev_final are (re)computed this append. Ingest needs raw files
  // back to the earliest accounting start among jobs ending after the
  // boundary (for complete job accumulation) and one day before the first
  // recomputed day (for cross-midnight sample pairs).
  const common::TimePoint boundary = prev_final * kDay;
  std::int64_t cutoff = prev_final - 1;
  for (const auto& a : acct) {
    if (a.end > boundary) cutoff = std::min(cutoff, common::day_of(a.start));
  }
  cutoff = std::max(cutoff, day0);

  // day_end is included: the boundary sample at exactly `upto` (and the end
  // marks of jobs finishing there) lands in that file. Any samples it holds
  // beyond `upto` only influence the provisional last day, which the next
  // append rewrites, and buckets past the span, which ingest drops.
  std::vector<taccstats::RawFile> window;
  for (const auto& f : files) {
    if (f.day >= cutoff && f.day <= day_end) window.push_back(f);
  }

  const etl::IngestPipeline pipeline(cfg);
  etl::IngestResult res =
      pipeline.run(window, acct, lariat_records, catalogue, project_science);

  Manifest m;
  if (manifest_) {
    m = *manifest_;
  } else {
    m.start = cfg.start;
    m.bucket = cfg.bucket;
    m.cluster = cfg.cluster;
    m.context = std::string(context);
  }

  // Retire every partition this append rewrites: all days >= prev_final
  // plus the quality snapshot. Rollup partitions retire from the start of
  // the coarse bucket containing prev_final — a week/month/quarter cell
  // whose span includes a recomputed day must be rebuilt whole.
  const std::int64_t w0 =
      warehouse::floor_div(prev_final, warehouse::kDaysPerWeek) * warehouse::kDaysPerWeek;
  const std::int64_t m0 =
      warehouse::floor_div(prev_final, warehouse::kDaysPerMonth) * warehouse::kDaysPerMonth;
  const std::int64_t q0 =
      warehouse::floor_div(prev_final, warehouse::kDaysPerQuarter) * warehouse::kDaysPerQuarter;
  const auto retire_from = [&](std::string_view table) {
    if (table == warehouse::rollup::levels()[1].table) return w0;
    if (table == warehouse::rollup::levels()[2].table) return m0;
    if (table == warehouse::rollup::levels()[3].table) return q0;
    return prev_final;
  };
  const auto is_rollup_table = [](std::string_view table) {
    for (const auto& l : warehouse::rollup::levels()) {
      if (table == l.table) return true;
    }
    return false;
  };
  // Does the manifest carry maintained cells at all? An archive that
  // predates rollups — or whose previous append degraded and dropped them —
  // has none; this append then rebuilds coverage over the full retained
  // history instead of just the current quarter, restoring the
  // all-or-nothing invariant load_rollups() depends on.
  const bool had_rollups =
      std::any_of(m.partitions.begin(), m.partitions.end(),
                  [&](const PartitionInfo& p) { return is_rollup_table(p.table); });
  std::vector<std::string> stale;
  std::erase_if(m.partitions, [&](const PartitionInfo& p) {
    if (p.day >= retire_from(p.table) || p.table == kQualityTable) {
      stale.push_back(p.filename);
      return true;
    }
    return false;
  });

  // Encode everything first (pure compute, parallel inside the codec); all
  // disk I/O then happens inside the transactional commit. Filenames carry
  // the commit epoch so a commit never overwrites a live file and the old
  // manifest stays fully servable until the atomic publish.
  const std::uint64_t epoch = m.epoch + 1;
  const auto ell = static_cast<unsigned long long>(epoch);
  AppendStats stats;
  stats.days_ingested = day_end - prev_final;
  std::vector<StagedPartition> staged;
  auto persist = [&](const warehouse::Table& t, std::int64_t day, std::string filename) {
    StagedPartition s;
    s.bytes = encode_partition(t, day, kDefaultChunkRows, threads_);
    s.info.table = t.name();
    s.info.day = day;
    s.info.rows = t.rows();
    s.info.crc = common::crc32(s.bytes);
    s.info.bytes = s.bytes.size();
    s.info.filename = std::move(filename);
    ++stats.partitions_written;
    stats.rows_written += s.info.rows;
    stats.bytes_written += s.info.bytes;
    m.partitions.push_back(s.info);
    staged.push_back(std::move(s));
  };

  // Jobs, partitioned by ending day. A job ending after `upto` is still
  // running: park it in the provisional last day, which the next append
  // recomputes with its remaining samples.
  std::map<std::int64_t, std::vector<etl::JobSummary>> jobs_by_day;
  for (auto& j : res.jobs) {
    if (j.end <= boundary) continue;  // final in an earlier partition
    const std::int64_t d = std::min(common::day_of(j.end - 1), day_end - 1);
    jobs_by_day[d].push_back(std::move(j));  // keeps ingest's id order per day
  }
  for (const auto& [d, js] : jobs_by_day) {
    persist(jobs_table(js), d,
            common::strprintf("jobs-d%06lld-e%06llu.part", static_cast<long long>(d), ell));
  }

  // System series, one partition per recomputed day.
  const auto bpd = static_cast<std::size_t>(kDay / cfg.bucket);
  for (std::int64_t d = prev_final; d < day_end; ++d) {
    const auto lo = static_cast<std::size_t>(d - day0) * bpd;
    persist(series_table(slice_series(res.series, lo, lo + bpd)), d,
            common::strprintf("series-d%06lld-e%06llu.part", static_cast<long long>(d), ell));
  }

  // Per-host quality: a snapshot of this append's ingest window.
  persist(quality_to_table(res.quality), -1,
          common::strprintf("data_quality-snapshot-e%06llu.part", ell));

  // --- rollup maintenance (DESIGN.md §16) --------------------------------
  // Incremental: only the day cells of rewritten days and the coarse
  // buckets containing them are rebuilt — never the whole history. The
  // retained days of those coarse buckets are re-read from their immutable
  // jobs partitions (at most one quarter's worth, except when recovering
  // from a degraded or pre-rollup manifest), folded together with this
  // append's jobs, and the touched cells are staged into the same
  // crash-consistent commit as everything else. A retained partition that
  // fails to re-read degrades the append to committing no rollup partitions
  // at all rather than failing it.
  {
    std::vector<etl::JobSummary> combined;
    for (const auto& [d, js] : jobs_by_day) {
      combined.insert(combined.end(), js.begin(), js.end());
    }
    const std::int64_t read_from = had_rollups ? q0 : day0;
    bool readback_ok = true;
    for (const auto& p : m.partitions) {
      if (p.table != kJobsTable || p.day < read_from || p.day >= prev_final) continue;
      std::vector<etl::PartitionQuarantine> quar;
      auto dp = try_read_partition(dir_, p, nullptr, quar);
      if (!dp) {
        readback_ok = false;
        break;
      }
      auto js = jobs_from_table(dp->table);
      combined.insert(combined.end(), std::make_move_iterator(js.begin()),
                      std::make_move_iterator(js.end()));
      ++stats.rollup_days_read_back;
    }
    if (!readback_ok) {
      // Latent bitrot in a retained partition was tolerated before rollups
      // existed (it surfaces as a load-time quarantine), so it must not turn
      // an append into a hard failure now. Degrade instead: commit without
      // any rollup partitions so load_rollups() reports none and consumers
      // rebuild from the jobs they actually load; the first later append
      // that can read the history restores coverage from scratch (the
      // had_rollups full-rebuild path above).
      stats.rollup_maintenance_skipped = true;
      std::erase_if(m.partitions, [&](const PartitionInfo& p) {
        if (!is_rollup_table(p.table)) return false;
        stale.push_back(p.filename);
        return true;
      });
    } else {
      std::sort(combined.begin(), combined.end(),
                [](const etl::JobSummary& a, const etl::JobSummary& b) { return a.id < b.id; });

      const warehouse::Table all_jobs = jobs_table(combined);
      const warehouse::rollup::RollupSet rset = warehouse::rollup::build_from_table(all_jobs);
      std::int64_t stage_from[] = {prev_final, w0, m0, q0};
      if (!had_rollups) {
        // Full rebuild: every bucket of every level is (re)staged.
        for (auto& s : stage_from) s = std::numeric_limits<std::int64_t>::min();
      }
      for (std::size_t li = 0; li < warehouse::rollup::levels().size(); ++li) {
        const warehouse::Table& lt = rset.level(li);
        const auto buckets = lt.col("bucket").int64s();
        std::size_t r = 0;
        while (r < lt.rows()) {
          const std::int64_t b = buckets[r];
          std::size_t e = r;
          while (e < lt.rows() && buckets[e] == b) ++e;
          if (b >= stage_from[li]) {
            std::vector<std::pair<std::string, warehouse::ColType>> schema;
            for (const auto& c : lt.columns()) schema.emplace_back(c.name(), c.type());
            warehouse::Table part(lt.name(), std::move(schema));
            for (std::size_t i = r; i < e; ++i) append_row(part, lt, i);
            stats.rollup_cells_written += part.rows();
            ++stats.rollup_partitions_written;
            persist(part, b,
                    common::strprintf("%s-d%06lld-e%06llu.part", lt.name().c_str(),
                                      static_cast<long long>(b), ell));
          }
          r = e;
        }
      }
    }
  }

  m.watermark = upto;
  m.rewrite_from = day_end - 1;
  m.epoch = epoch;
  commit(m, staged, stale);

  manifest_ = std::move(m);
  for (const auto& hook : append_hooks_) hook(*manifest_);
  return stats;
}

LoadResult Archive::load() const {
  const Manifest& m = manifest();
  LoadResult out;

  std::vector<const PartitionInfo*> parts;
  for (const auto& p : m.partitions) parts.push_back(&p);
  std::sort(parts.begin(), parts.end(), [](const PartitionInfo* a, const PartitionInfo* b) {
    return std::tie(a->table, a->day) < std::tie(b->table, b->day);
  });

  // Decode every partition on the pool, then merge in (table, day) order so
  // the result and the quarantine list are identical for any thread count.
  std::vector<std::optional<DecodedPartition>> decoded(parts.size());
  std::vector<std::vector<etl::PartitionQuarantine>> quarantines(parts.size());
  common::pool_run(parts.size(), threads_, 1, [&](std::size_t i) {
    decoded[i] = try_read_partition(dir_, *parts[i], nullptr, quarantines[i]);
  });

  std::vector<warehouse::Table> series_parts;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    const PartitionInfo* p = parts[i];
    out.quarantined.insert(out.quarantined.end(), quarantines[i].begin(), quarantines[i].end());
    auto& dp = decoded[i];
    if (!dp) continue;
    ++out.partitions_loaded;
    if (p->table == kJobsTable) {
      auto jobs = jobs_from_table(dp->table);
      out.result.jobs.insert(out.result.jobs.end(), std::make_move_iterator(jobs.begin()),
                             std::make_move_iterator(jobs.end()));
    } else if (p->table == kSeriesTable) {
      series_parts.push_back(std::move(dp->table));
    } else if (p->table == kQualityTable) {
      out.result.quality = quality_from_table(dp->table);
    } else if (warehouse::rollup::is_rollup_table(p->table)) {
      // Maintained aggregates: verified and counted here, materialized by
      // load_rollups(). Not part of the IngestResult round trip.
    } else {
      out.quarantined.push_back({p->table, p->day, p->filename, "unknown table"});
    }
  }

  // Jobs arrive day-major; restore ingest's id order.
  std::sort(out.result.jobs.begin(), out.result.jobs.end(),
            [](const etl::JobSummary& a, const etl::JobSummary& b) { return a.id < b.id; });

  // Series over [start, watermark); day partitions cover disjoint bucket
  // ranges, so they merge by addition into the zero-filled whole. Buckets
  // of quarantined days stay zero.
  const auto buckets = static_cast<std::size_t>((m.watermark - m.start) / m.bucket);
  out.result.series.start = m.start;
  out.result.series.bucket = m.bucket;
  out.result.series.buckets = buckets;
  for (const auto& f : series_fields()) (out.result.series.*f.member).assign(buckets, 0.0);
  for (const auto& part : series_parts) {
    const etl::SystemSeries piece = series_from_table(part, m.start, m.bucket, buckets);
    for (const auto& f : series_fields()) {
      for (std::size_t i = 0; i < buckets; ++i) {
        (out.result.series.*f.member)[i] += (piece.*f.member)[i];
      }
    }
  }

  // The quality report carries both load-time quarantines and what recovery
  // did when this handle was opened (orphaned files first: they were
  // discarded before anything was read).
  out.result.quality.corrupt_partitions = recovery_quarantines_;
  out.result.quality.corrupt_partitions.insert(out.result.quality.corrupt_partitions.end(),
                                               out.quarantined.begin(), out.quarantined.end());
  out.result.quality.recovery = recovery_;
  return out;
}

std::optional<warehouse::rollup::RollupSet> Archive::load_rollups() const {
  if (!manifest_) return std::nullopt;
  warehouse::rollup::RollupSet set;
  bool any = false;
  for (std::size_t li = 0; li < warehouse::rollup::levels().size(); ++li) {
    std::vector<const PartitionInfo*> parts;
    for (const auto& p : manifest_->partitions) {
      if (p.table == warehouse::rollup::levels()[li].table) parts.push_back(&p);
    }
    // One partition per bucket; day order restores the canonical
    // (bucket ASC, min_jobid ASC) cell order, each partition being sorted
    // within its bucket already.
    std::sort(parts.begin(), parts.end(),
              [](const PartitionInfo* a, const PartitionInfo* b) { return a->day < b->day; });
    warehouse::Table& dst = set.level(li);
    for (const PartitionInfo* p : parts) {
      std::vector<etl::PartitionQuarantine> quar;
      auto dp = try_read_partition(dir_, *p, nullptr, quar);
      if (!dp) return std::nullopt;  // partial rollups must not serve
      for (std::size_t r = 0; r < dp->table.rows(); ++r) append_row(dst, dp->table, r);
      any = true;
    }
  }
  if (!any) return std::nullopt;  // pre-rollup archive: caller rebuilds
  return set;
}

}  // namespace supremm::archive
