#include "archive/archive.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>

#include "archive/tables.h"
#include "common/checksum.h"
#include "common/error.h"
#include "common/strings.h"
#include "common/thread_pool.h"

namespace supremm::archive {

namespace fs = std::filesystem;

namespace {

constexpr const char* kManifestName = "MANIFEST";
constexpr const char* kManifestHeader = "supremm-archive v1";

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw common::NotFoundError("archive: cannot open " + path.string());
  std::string data((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  if (in.bad()) throw common::ParseError("archive: read failed for " + path.string());
  return data;
}

/// Write via a temp file + rename so a crash never leaves a half-written
/// file under the final name.
void write_file_atomic(const fs::path& path, std::string_view data) {
  const fs::path tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw common::InvalidArgument("archive: cannot write " + tmp.string());
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
    if (!out) throw common::InvalidArgument("archive: write failed for " + tmp.string());
  }
  fs::rename(tmp, path);
}

std::uint32_t parse_hex32(std::string_view s) {
  if (s.empty() || s.size() > 8) throw common::ParseError("archive: bad hex field in manifest");
  std::uint32_t v = 0;
  for (const char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint32_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      v |= static_cast<std::uint32_t>(c - 'A' + 10);
    } else {
      throw common::ParseError("archive: bad hex field in manifest");
    }
  }
  return v;
}

std::string serialize_manifest(const Manifest& m) {
  std::string out;
  out += kManifestHeader;
  out += '\n';
  out += common::strprintf("start %lld\n", static_cast<long long>(m.start));
  out += common::strprintf("bucket %lld\n", static_cast<long long>(m.bucket));
  out += "cluster " + m.cluster + "\n";
  out += "context " + m.context + "\n";
  out += common::strprintf("watermark %lld\n", static_cast<long long>(m.watermark));
  out += common::strprintf("rewrite_from %lld\n", static_cast<long long>(m.rewrite_from));
  for (const auto& p : m.partitions) {
    out += common::strprintf("p %s %lld %llu %08x %llu %s\n", p.table.c_str(),
                             static_cast<long long>(p.day),
                             static_cast<unsigned long long>(p.rows), p.crc,
                             static_cast<unsigned long long>(p.bytes), p.filename.c_str());
  }
  out += common::strprintf("crc %08x\n", common::crc32(out));
  return out;
}

Manifest parse_manifest(std::string_view text) {
  // The trailing "crc NNNNNNNN\n" line checksums everything before it.
  const std::size_t crc_pos = text.rfind("crc ");
  if (crc_pos == std::string_view::npos || (crc_pos != 0 && text[crc_pos - 1] != '\n')) {
    throw common::ParseError("archive: manifest missing checksum line");
  }
  const std::uint32_t stored = parse_hex32(common::trim(text.substr(crc_pos + 4)));
  if (common::crc32(text.substr(0, crc_pos)) != stored) {
    throw common::ParseError("archive: manifest checksum mismatch");
  }

  Manifest m;
  bool header_seen = false;
  for (const auto line_sv : common::split(text.substr(0, crc_pos), '\n')) {
    const std::string_view line = common::trim(line_sv);
    if (line.empty()) continue;
    if (!header_seen) {
      if (line != kManifestHeader) throw common::ParseError("archive: bad manifest header");
      header_seen = true;
      continue;
    }
    const std::size_t sp = line.find(' ');
    const std::string_view key = line.substr(0, sp);
    const std::string_view rest = sp == std::string_view::npos ? "" : line.substr(sp + 1);
    if (key == "start") {
      m.start = common::parse_i64(rest);
    } else if (key == "bucket") {
      m.bucket = common::parse_i64(rest);
    } else if (key == "cluster") {
      m.cluster = std::string(rest);
    } else if (key == "context") {
      m.context = std::string(rest);
    } else if (key == "watermark") {
      m.watermark = common::parse_i64(rest);
    } else if (key == "rewrite_from") {
      m.rewrite_from = common::parse_i64(rest);
    } else if (key == "p") {
      const auto f = common::split_ws(rest);
      if (f.size() != 6) throw common::ParseError("archive: bad partition line in manifest");
      PartitionInfo p;
      p.table = std::string(f[0]);
      p.day = common::parse_i64(f[1]);
      p.rows = common::parse_u64(f[2]);
      p.crc = parse_hex32(f[3]);
      p.bytes = common::parse_u64(f[4]);
      p.filename = std::string(f[5]);
      m.partitions.push_back(std::move(p));
    } else {
      throw common::ParseError("archive: unknown manifest key '" + std::string(key) + "'");
    }
  }
  if (!header_seen) throw common::ParseError("archive: empty manifest");
  // A checksum only proves the manifest is the one that was written, not that
  // its fields make sense; loaders size buffers from (watermark - start) /
  // bucket, so these two invariants must hold before anyone trusts the index.
  if (m.bucket <= 0) {
    throw common::ParseError("archive: manifest bucket must be positive");
  }
  if (m.watermark < m.start) {
    throw common::ParseError("archive: manifest watermark precedes start");
  }
  return m;
}

std::optional<Manifest> try_load_manifest(const std::string& dir) {
  const fs::path path = fs::path(dir) / kManifestName;
  if (!fs::exists(path)) return std::nullopt;
  return parse_manifest(read_file(path));
}

/// Verify a partition file against its manifest record and decode it; on
/// any failure record a quarantine entry and return nullopt.
std::optional<DecodedPartition> try_read_partition(
    const std::string& dir, const PartitionInfo& p,
    const std::vector<warehouse::PredicateBounds>* prune,
    std::vector<etl::PartitionQuarantine>& quarantined) {
  auto reject = [&](std::string reason) {
    quarantined.push_back({p.table, p.day, p.filename, std::move(reason)});
    return std::nullopt;
  };
  std::string bytes;
  try {
    bytes = read_file(fs::path(dir) / p.filename);
  } catch (const common::Error& e) {
    return reject(e.what());
  }
  if (bytes.size() != p.bytes) {
    return reject(common::strprintf("size mismatch: %zu bytes, manifest says %llu", bytes.size(),
                                    static_cast<unsigned long long>(p.bytes)));
  }
  if (common::crc32(bytes) != p.crc) return reject("file CRC mismatch");
  try {
    DecodedPartition dp = decode_partition(bytes, prune);
    if (dp.table.name() != p.table) return reject("table name mismatch");
    return dp;
  } catch (const common::Error& e) {
    return reject(e.what());
  }
}

/// Natural sort-key column restoring the order ingest produced: jobs come
/// out sorted by id, series by time, quality by host.
std::string_view sort_key_for(std::string_view table) {
  if (table == kJobsTable) return "job_id";
  if (table == kSeriesTable) return "time";
  if (table == kQualityTable) return "host";
  return "";
}

void append_row(warehouse::Table& dst, const warehouse::Table& src, std::size_t r) {
  auto row = dst.append();
  for (const auto& c : src.columns()) {
    switch (c.type()) {
      case warehouse::ColType::kDouble:
        row.set(c.name(), c.as_double(r));
        break;
      case warehouse::ColType::kInt64:
        row.set(c.name(), c.as_int64(r));
        break;
      case warehouse::ColType::kString:
        row.set(c.name(), c.as_string(r));
        break;
    }
  }
}

etl::SystemSeries slice_series(const etl::SystemSeries& s, std::size_t lo, std::size_t hi) {
  etl::SystemSeries out;
  out.start = s.time_at(lo);
  out.bucket = s.bucket;
  out.buckets = hi - lo;
  for (const auto& f : series_fields()) {
    (out.*f.member).assign((s.*f.member).begin() + static_cast<std::ptrdiff_t>(lo),
                           (s.*f.member).begin() + static_cast<std::ptrdiff_t>(hi));
  }
  return out;
}

}  // namespace

// --- Reader ---

Reader::Reader(std::string dir, std::size_t threads)
    : dir_(std::move(dir)), threads_(threads) {
  auto m = try_load_manifest(dir_);
  if (!m) throw common::ParseError("archive: no manifest in " + dir_);
  manifest_ = std::move(*m);
}

std::vector<DecodedPartition> Reader::decode_table(
    std::string_view name, const std::vector<warehouse::PredicateBounds>* prune) {
  std::vector<const PartitionInfo*> parts;
  for (const auto& p : manifest_.partitions) {
    if (p.table == name) parts.push_back(&p);
  }
  std::sort(parts.begin(), parts.end(),
            [](const PartitionInfo* a, const PartitionInfo* b) { return a->day < b->day; });
  if (parts.empty()) {
    throw common::NotFoundError("archive: no partitions for table '" + std::string(name) + "'");
  }

  // Partitions are independent: verify + decode each on the pool into its
  // own slot, then merge in day order so the concatenated tables and the
  // quarantine list come out identical for any thread count.
  std::vector<std::optional<DecodedPartition>> decoded(parts.size());
  std::vector<std::vector<etl::PartitionQuarantine>> quarantines(parts.size());
  auto pool = common::make_pool(threads_, parts.size());
  common::for_each_unit(pool.get(), parts.size(), [&](std::size_t i) {
    decoded[i] = try_read_partition(dir_, *parts[i], prune, quarantines[i]);
  });

  std::vector<DecodedPartition> out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    quarantined_.insert(quarantined_.end(), quarantines[i].begin(), quarantines[i].end());
    if (decoded[i]) {
      chunks_total_ += decoded[i]->chunks_total;
      chunks_pruned_ += decoded[i]->chunks_pruned;
      ++partitions_loaded_;
      out.push_back(std::move(*decoded[i]));
    }
  }
  if (out.empty()) {
    throw common::ParseError("archive: every partition of table '" + std::string(name) +
                             "' is quarantined");
  }
  return out;
}

warehouse::Table Reader::table(std::string_view name, std::size_t chunk_rows) {
  const auto parts = decode_table(name, nullptr);

  // Restore the canonical row order across partitions: collect (partition,
  // row) references, stable-sort them by the table's natural key, and emit.
  const std::string_view key = sort_key_for(name);
  std::vector<std::pair<std::size_t, std::size_t>> order;  // (partition, row)
  for (std::size_t p = 0; p < parts.size(); ++p) {
    for (std::size_t r = 0; r < parts[p].table.rows(); ++r) order.emplace_back(p, r);
  }
  if (!key.empty() && parts.front().table.has_col(key)) {
    const bool by_string =
        parts.front().table.col(key).type() == warehouse::ColType::kString;
    std::stable_sort(order.begin(), order.end(), [&](const auto& a, const auto& b) {
      const warehouse::Column& ca = parts[a.first].table.col(key);
      const warehouse::Column& cb = parts[b.first].table.col(key);
      if (by_string) return ca.as_string(a.second) < cb.as_string(b.second);
      return ca.as_int64(a.second) < cb.as_int64(b.second);
    });
  }

  std::vector<std::pair<std::string, warehouse::ColType>> schema;
  for (const auto& c : parts.front().table.columns()) schema.emplace_back(c.name(), c.type());
  warehouse::Table out(parts.front().table.name(), std::move(schema));
  for (const auto& [p, r] : order) append_row(out, parts[p].table, r);
  out.rebuild_zone_index(chunk_rows);
  return out;
}

warehouse::Table Reader::table_pruned(std::string_view name,
                                      const std::vector<warehouse::PredicateBounds>& bounds,
                                      std::size_t chunk_rows) {
  const auto parts = decode_table(name, &bounds);
  std::vector<std::pair<std::string, warehouse::ColType>> schema;
  for (const auto& c : parts.front().table.columns()) schema.emplace_back(c.name(), c.type());
  warehouse::Table out(parts.front().table.name(), std::move(schema));
  for (const auto& part : parts) {
    for (std::size_t r = 0; r < part.table.rows(); ++r) append_row(out, part.table, r);
  }
  out.rebuild_zone_index(chunk_rows);
  return out;
}

// --- Archive ---

Archive::Archive(std::string dir, std::size_t threads)
    : dir_(std::move(dir)), threads_(threads), manifest_(try_load_manifest(dir_)) {}

const Manifest& Archive::manifest() const {
  if (!manifest_) throw common::NotFoundError("archive: " + dir_ + " is empty");
  return *manifest_;
}

AppendStats Archive::append(const etl::IngestConfig& cfg,
                            const std::vector<taccstats::RawFile>& files,
                            const std::vector<accounting::AccountingRecord>& acct,
                            const std::vector<lariat::LariatRecord>& lariat_records,
                            const std::vector<facility::AppSignature>& catalogue,
                            const std::unordered_map<std::string, std::string>& project_science,
                            std::string_view context, common::TimePoint upto) {
  using common::kDay;
  if (cfg.start % kDay != 0) {
    throw common::InvalidArgument("archive: ingest start must be day-aligned");
  }
  if (upto % kDay != 0) throw common::InvalidArgument("archive: upto must be day-aligned");
  if (upto <= cfg.start) throw common::InvalidArgument("archive: upto must be after start");
  if (cfg.span != upto - cfg.start) {
    throw common::InvalidArgument("archive: cfg.span must equal upto - cfg.start");
  }
  if (cfg.bucket <= 0 || kDay % cfg.bucket != 0) {
    throw common::InvalidArgument("archive: bucket must evenly divide one day");
  }
  const common::Duration max_gap = cfg.max_pair_gap > 0 ? cfg.max_pair_gap : 3 * cfg.bucket;
  if (max_gap > kDay) {
    throw common::InvalidArgument(
        "archive: max_pair_gap beyond one day breaks day-partitioned append");
  }

  const std::int64_t day0 = common::day_of(cfg.start);
  const std::int64_t day_end = common::day_of(upto);  // exclusive
  std::int64_t prev_final = day0;
  if (manifest_) {
    if (manifest_->start != cfg.start || manifest_->bucket != cfg.bucket ||
        manifest_->cluster != cfg.cluster || manifest_->context != context) {
      throw common::InvalidArgument("archive: " + dir_ +
                                    " was written with a different configuration");
    }
    if (upto <= manifest_->watermark) return {};  // nothing new
    prev_final = manifest_->rewrite_from;
  }

  // Days >= prev_final are (re)computed this append. Ingest needs raw files
  // back to the earliest accounting start among jobs ending after the
  // boundary (for complete job accumulation) and one day before the first
  // recomputed day (for cross-midnight sample pairs).
  const common::TimePoint boundary = prev_final * kDay;
  std::int64_t cutoff = prev_final - 1;
  for (const auto& a : acct) {
    if (a.end > boundary) cutoff = std::min(cutoff, common::day_of(a.start));
  }
  cutoff = std::max(cutoff, day0);

  // day_end is included: the boundary sample at exactly `upto` (and the end
  // marks of jobs finishing there) lands in that file. Any samples it holds
  // beyond `upto` only influence the provisional last day, which the next
  // append rewrites, and buckets past the span, which ingest drops.
  std::vector<taccstats::RawFile> window;
  for (const auto& f : files) {
    if (f.day >= cutoff && f.day <= day_end) window.push_back(f);
  }

  const etl::IngestPipeline pipeline(cfg);
  etl::IngestResult res =
      pipeline.run(window, acct, lariat_records, catalogue, project_science);

  Manifest m;
  if (manifest_) {
    m = *manifest_;
  } else {
    m.start = cfg.start;
    m.bucket = cfg.bucket;
    m.cluster = cfg.cluster;
    m.context = std::string(context);
  }

  // Retire every partition this append rewrites: all days >= prev_final
  // plus the quality snapshot.
  std::vector<std::string> stale;
  std::erase_if(m.partitions, [&](const PartitionInfo& p) {
    if (p.day >= prev_final || p.table == kQualityTable) {
      stale.push_back(p.filename);
      return true;
    }
    return false;
  });

  fs::create_directories(dir_);
  AppendStats stats;
  stats.days_ingested = day_end - prev_final;
  auto persist = [&](const warehouse::Table& t, std::int64_t day, std::string filename) {
    const std::string bytes = encode_partition(t, day, kDefaultChunkRows, threads_);
    PartitionInfo p;
    p.table = t.name();
    p.day = day;
    p.rows = t.rows();
    p.crc = common::crc32(bytes);
    p.bytes = bytes.size();
    p.filename = std::move(filename);
    write_file_atomic(fs::path(dir_) / p.filename, bytes);
    ++stats.partitions_written;
    stats.rows_written += p.rows;
    stats.bytes_written += p.bytes;
    m.partitions.push_back(std::move(p));
  };

  // Jobs, partitioned by ending day. A job ending after `upto` is still
  // running: park it in the provisional last day, which the next append
  // recomputes with its remaining samples.
  std::map<std::int64_t, std::vector<etl::JobSummary>> jobs_by_day;
  for (auto& j : res.jobs) {
    if (j.end <= boundary) continue;  // final in an earlier partition
    const std::int64_t d = std::min(common::day_of(j.end - 1), day_end - 1);
    jobs_by_day[d].push_back(std::move(j));  // keeps ingest's id order per day
  }
  for (const auto& [d, js] : jobs_by_day) {
    persist(jobs_table(js), d,
            common::strprintf("jobs-d%06lld.part", static_cast<long long>(d)));
  }

  // System series, one partition per recomputed day.
  const auto bpd = static_cast<std::size_t>(kDay / cfg.bucket);
  for (std::int64_t d = prev_final; d < day_end; ++d) {
    const auto lo = static_cast<std::size_t>(d - day0) * bpd;
    persist(series_table(slice_series(res.series, lo, lo + bpd)), d,
            common::strprintf("series-d%06lld.part", static_cast<long long>(d)));
  }

  // Per-host quality: a snapshot of this append's ingest window.
  persist(quality_to_table(res.quality), -1, "data_quality-snapshot.part");

  m.watermark = upto;
  m.rewrite_from = day_end - 1;
  write_file_atomic(fs::path(dir_) / kManifestName, serialize_manifest(m));

  // Only after the new manifest is durable, drop files it no longer names.
  for (const auto& f : stale) {
    bool still_used = false;
    for (const auto& p : m.partitions) {
      if (p.filename == f) still_used = true;
    }
    if (!still_used) fs::remove(fs::path(dir_) / f);
  }
  manifest_ = std::move(m);
  for (const auto& hook : append_hooks_) hook(*manifest_);
  return stats;
}

LoadResult Archive::load() const {
  const Manifest& m = manifest();
  LoadResult out;

  std::vector<const PartitionInfo*> parts;
  for (const auto& p : m.partitions) parts.push_back(&p);
  std::sort(parts.begin(), parts.end(), [](const PartitionInfo* a, const PartitionInfo* b) {
    return std::tie(a->table, a->day) < std::tie(b->table, b->day);
  });

  // Decode every partition on the pool, then merge in (table, day) order so
  // the result and the quarantine list are identical for any thread count.
  std::vector<std::optional<DecodedPartition>> decoded(parts.size());
  std::vector<std::vector<etl::PartitionQuarantine>> quarantines(parts.size());
  auto pool = common::make_pool(threads_, parts.size());
  common::for_each_unit(pool.get(), parts.size(), [&](std::size_t i) {
    decoded[i] = try_read_partition(dir_, *parts[i], nullptr, quarantines[i]);
  });

  std::vector<warehouse::Table> series_parts;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    const PartitionInfo* p = parts[i];
    out.quarantined.insert(out.quarantined.end(), quarantines[i].begin(), quarantines[i].end());
    auto& dp = decoded[i];
    if (!dp) continue;
    ++out.partitions_loaded;
    if (p->table == kJobsTable) {
      auto jobs = jobs_from_table(dp->table);
      out.result.jobs.insert(out.result.jobs.end(), std::make_move_iterator(jobs.begin()),
                             std::make_move_iterator(jobs.end()));
    } else if (p->table == kSeriesTable) {
      series_parts.push_back(std::move(dp->table));
    } else if (p->table == kQualityTable) {
      out.result.quality = quality_from_table(dp->table);
    } else {
      out.quarantined.push_back({p->table, p->day, p->filename, "unknown table"});
    }
  }

  // Jobs arrive day-major; restore ingest's id order.
  std::sort(out.result.jobs.begin(), out.result.jobs.end(),
            [](const etl::JobSummary& a, const etl::JobSummary& b) { return a.id < b.id; });

  // Series over [start, watermark); day partitions cover disjoint bucket
  // ranges, so they merge by addition into the zero-filled whole. Buckets
  // of quarantined days stay zero.
  const auto buckets = static_cast<std::size_t>((m.watermark - m.start) / m.bucket);
  out.result.series.start = m.start;
  out.result.series.bucket = m.bucket;
  out.result.series.buckets = buckets;
  for (const auto& f : series_fields()) (out.result.series.*f.member).assign(buckets, 0.0);
  for (const auto& part : series_parts) {
    const etl::SystemSeries piece = series_from_table(part, m.start, m.bucket, buckets);
    for (const auto& f : series_fields()) {
      for (std::size_t i = 0; i < buckets; ++i) {
        (out.result.series.*f.member)[i] += (piece.*f.member)[i];
      }
    }
  }

  out.result.quality.corrupt_partitions = out.quarantined;
  return out;
}

}  // namespace supremm::archive
