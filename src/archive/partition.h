// One archive partition: a self-describing compressed columnar image of a
// warehouse::Table slice (one simulated day of one table).
//
// Layout (all little-endian):
//   magic "SUPARCH1", u16 version
//   u16 table-name length + bytes, i64 day, u64 rows
//   u32 chunk_rows, u32 nchunks, u16 ncols
//   per column: u16 name length + bytes, u8 ColType
//   per column x chunk: zone map (f64 lo, f64 hi, u32 null count) - for
//     string columns the range is over dictionary codes
//   per column: [string columns: dictionary block] then one block per chunk
//
// block := u32 compressed length, u32 CRC-32 of the compressed bytes,
// compressed bytes (an LZSS stream, itself carrying the raw length). Blocks
// are length-prefixed so a reader can skip a chunk without decompressing it;
// together with the up-front zone maps this gives chunk pruning on read.
//
// Value encodings before compression: int64 and dictionary codes are
// zigzag-delta varints; doubles are XORed with the previous bit pattern
// (see codec.h). Encoding is deterministic, so identical tables produce
// identical partition bytes.
//
// Blocks are independent LZSS streams, so both directions parallelize: with
// `threads` > 1 the codec compresses / decompresses blocks on a worker pool
// and assembles them in file order, producing bit-identical bytes (encode)
// and tables (decode) for every thread count.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "warehouse/query.h"
#include "warehouse/table.h"

namespace supremm::archive {

inline constexpr std::size_t kDefaultChunkRows = 1024;

/// Serialize `table` as a partition image for simulated day `day`. With
/// `threads` != 1 the per-block compression runs on a worker pool (0 =
/// hardware concurrency); the output bytes are identical for any setting.
[[nodiscard]] std::string encode_partition(const warehouse::Table& table, std::int64_t day,
                                           std::size_t chunk_rows = kDefaultChunkRows,
                                           std::size_t threads = 1);

/// Everything decoded from one partition.
struct DecodedPartition {
  warehouse::Table table;
  std::int64_t day = 0;
  std::size_t chunks_total = 0;
  std::size_t chunks_pruned = 0;  // skipped without decompression
};

/// Decode a partition image; throws ParseError on any structural damage or
/// CRC mismatch. With `prune` non-null, chunks whose zone maps are disjoint
/// from the bounds are skipped entirely (not decompressed) and their rows
/// are absent from the result. With `threads` != 1 surviving blocks
/// decompress on a worker pool (0 = hardware concurrency); the decoded
/// table is identical for any setting.
[[nodiscard]] DecodedPartition decode_partition(
    std::string_view bytes, const std::vector<warehouse::PredicateBounds>* prune = nullptr,
    std::size_t threads = 1);

/// Table name recorded in a partition image (header-only parse).
[[nodiscard]] std::string partition_table_name(std::string_view bytes);

}  // namespace supremm::archive
