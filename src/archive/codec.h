// Low-level byte codecs for the columnar archive format: little-endian
// scalars, LEB128 varints, zigzag mapping, and the per-column value
// encodings (delta-varint for integers and dictionary codes, previous-value
// XOR for doubles) that turn warehouse columns into LZSS-friendly byte
// streams. All encoders are deterministic: the same values always produce
// the same bytes, which is what lets tests compare archives bit-for-bit.
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.h"
#include "common/simd.h"

namespace supremm::archive {

inline void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>(v >> 8));
}

inline void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

inline void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

inline void put_f64(std::string& out, double v) { put_u64(out, std::bit_cast<std::uint64_t>(v)); }

/// Bounds-checked little-endian reader over a byte string.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  [[nodiscard]] std::size_t pos() const noexcept { return pos_; }
  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }

  void skip(std::size_t n) {
    need(n);
    pos_ += n;
  }

  [[nodiscard]] std::string_view bytes(std::size_t n) {
    need(n);
    const auto out = data_.substr(pos_, n);
    pos_ += n;
    return out;
  }

  [[nodiscard]] std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }

  [[nodiscard]] std::uint16_t u16() {
    const std::uint16_t lo = u8();
    return static_cast<std::uint16_t>(lo | (static_cast<std::uint16_t>(u8()) << 8));
  }

  [[nodiscard]] std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(u8()) << (8 * i);
    return v;
  }

  [[nodiscard]] std::uint64_t u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(u8()) << (8 * i);
    return v;
  }

  [[nodiscard]] double f64() { return std::bit_cast<double>(u64()); }

 private:
  void need(std::size_t n) const {
    if (n > data_.size() - pos_) throw common::ParseError("archive: truncated record");
  }

  std::string_view data_;
  std::size_t pos_ = 0;
};

// --- varint + zigzag ---

inline void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

[[nodiscard]] inline std::uint64_t get_varint(ByteReader& in) {
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    const std::uint8_t b = in.u8();
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return v;
  }
  throw common::ParseError("archive: varint overlong");
}

[[nodiscard]] constexpr std::uint64_t zigzag(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^ static_cast<std::uint64_t>(v >> 63);
}

[[nodiscard]] constexpr std::int64_t unzigzag(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

// --- column chunk encodings ---
//
// Integers and dictionary codes: zigzag(delta) varints - monotone ids and
// timestamps become streams of tiny values. Doubles: XOR with the previous
// value's bit pattern, stored as raw 8-byte words - repeated and slowly
// varying readings produce long zero runs for LZSS to fold up.

inline void encode_i64_chunk(std::span<const std::int64_t> vals, std::string& out) {
  std::int64_t prev = 0;
  for (const std::int64_t v : vals) {
    put_varint(out, zigzag(v - prev));
    prev = v;
  }
}

inline void decode_i64_chunk(ByteReader& in, std::size_t n, std::vector<std::int64_t>& out) {
  std::int64_t prev = 0;
  for (std::size_t i = 0; i < n; ++i) {
    prev += unzigzag(get_varint(in));
    out.push_back(prev);
  }
}

inline void encode_f64_chunk(std::span<const double> vals, std::string& out) {
  const std::size_t n = vals.size();
  if (n == 0) return;
  // Vectorized XOR-delta (common/simd.h): out[i] = bits[i] ^ bits[i-1] has no
  // serial dependence, unlike the decode recurrence. Integer XOR makes every
  // ISA tier produce the same bytes.
  std::vector<std::uint64_t> deltas(n);
  common::simd::xor_delta_encode_f64(vals.data(), n, 0, deltas.data());
  if constexpr (std::endian::native == std::endian::little) {
    out.append(reinterpret_cast<const char*>(deltas.data()), n * 8);
  } else {
    for (const std::uint64_t d : deltas) put_u64(out, d);
  }
}

inline void decode_f64_chunk(ByteReader& in, std::size_t n, std::vector<double>& out) {
  // One bulk bounds check for the whole chunk (the guard also keeps n * 8
  // from overflowing on fuzzed row counts), then word-width prefix-XOR —
  // replaces ByteReader::u64's eight per-byte checks per value.
  if (n > in.remaining() / 8) throw common::ParseError("archive: truncated record");
  if (n == 0) return;
  const std::string_view raw = in.bytes(n * 8);
  const std::size_t base = out.size();
  out.resize(base + n);
  common::simd::xor_delta_decode_f64(reinterpret_cast<const unsigned char*>(raw.data()), n,
                                     0, out.data() + base);
}

inline void encode_codes_chunk(std::span<const std::int32_t> vals, std::string& out) {
  std::int64_t prev = 0;
  for (const std::int32_t v : vals) {
    put_varint(out, zigzag(v - prev));
    prev = v;
  }
}

inline void decode_codes_chunk(ByteReader& in, std::size_t n, std::vector<std::int32_t>& out) {
  std::int64_t prev = 0;
  for (std::size_t i = 0; i < n; ++i) {
    prev += unzigzag(get_varint(in));
    if (prev < 0 || prev > 0x7fffffff) throw common::ParseError("archive: code out of range");
    out.push_back(static_cast<std::int32_t>(prev));
  }
}

}  // namespace supremm::archive
