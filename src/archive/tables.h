// Full-fidelity conversions between ingest results and warehouse tables.
//
// etl::to_table / etl::quality_table are report-oriented: they drop fields
// reports never read (flops_valid, submit, per-host clock skew sign, ...)
// and fold NaNs. The archive must round-trip the ingest output exactly, so
// it defines its own lossless schemas here: every JobSummary, SystemSeries
// and HostQuality field maps to a column and back bit-identically.
#pragma once

#include <span>
#include <vector>

#include "etl/job_summary.h"
#include "etl/quality.h"
#include "etl/system_series.h"
#include "warehouse/table.h"

namespace supremm::archive {

inline constexpr const char* kJobsTable = "jobs";
inline constexpr const char* kSeriesTable = "series";
inline constexpr const char* kQualityTable = "data_quality";

/// One SystemSeries metric vector with its column name.
struct SeriesField {
  const char* column;
  std::vector<double> etl::SystemSeries::* member;
};

/// The 14 SystemSeries metric vectors in schema order - the single source of
/// truth for every series conversion (encode, decode, slice, merge).
[[nodiscard]] std::span<const SeriesField> series_fields();

/// Lossless jobs table (columns for every JobSummary field). Rows keep the
/// order of `jobs`; ingest emits them sorted by job id.
[[nodiscard]] warehouse::Table jobs_table(std::span<const etl::JobSummary> jobs);
[[nodiscard]] std::vector<etl::JobSummary> jobs_from_table(const warehouse::Table& t);

/// Lossless system-series table: one row per bucket, "time" column first.
[[nodiscard]] warehouse::Table series_table(const etl::SystemSeries& s);
/// Rebuild a series from rows sorted by time. `start` and `bucket` come from
/// the archive manifest; buckets absent from the table (quarantined days)
/// stay zero.
[[nodiscard]] etl::SystemSeries series_from_table(const warehouse::Table& t,
                                                  common::TimePoint start,
                                                  common::Duration bucket,
                                                  std::size_t buckets);

/// Lossless per-host quality table ("span_s" repeated per row so the report
/// span survives the round trip).
[[nodiscard]] warehouse::Table quality_to_table(const etl::DataQualityReport& q);
/// Rebuild hosts + span. Quarantine line diagnostics do not round-trip (the
/// archive stores counts, not raw damaged text).
[[nodiscard]] etl::DataQualityReport quality_from_table(const warehouse::Table& t);

}  // namespace supremm::archive
