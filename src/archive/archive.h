// The persistent job archive: partitioned, compressed, incrementally
// appendable columnar storage for ingest output (DESIGN.md §10).
//
// The paper's warehouse exists because the raw data volume (§1.2: ~60 GB
// uncompressed per month on Ranger) cannot be re-read for every question;
// this module is the C++ stand-in for that durable store. An archive
// directory holds one partition file per simulated day and table (see
// partition.h for the binary format) plus a checksummed text MANIFEST
// recording every partition's CRC and the ingest watermark.
//
// Incremental contract: append(cfg, artifacts, upto) ingests only the days
// the manifest does not already cover. Day D's data is final once day D+1
// has been ingested (cross-midnight sample pairs and jobs ending exactly on
// the boundary need the next day's raw file), so the newest archived day is
// provisional - recorded as `rewrite_from` and rewritten by the next
// append. For strict-mode (clean) data, a sequence of appends is
// bit-identical to one from-scratch ingest of the full span; salvage-mode
// repairs that use cross-day context (host clock-skew estimation) can
// differ near append boundaries. The per-host data-quality table is a
// snapshot of the latest append's ingest window, not a merged history.
//
// Robustness: every block and file is checksummed. Partitions that fail
// verification at load time are quarantined into
// DataQualityReport::corrupt_partitions and the rest of the archive still
// loads - the storage-layer extension of PR 1's salvage contract.
//
// Crash consistency (DESIGN.md §14): every commit — the first build and each
// incremental append — stages its partition files in `<dir>/.staging/`,
// fsyncs them, journals the complete post-commit manifest as `<dir>/COMMIT`
// (fsynced file + directory: the durability point), moves the staged files
// into place under epoch-qualified names that never collide with live ones,
// and publishes with a single atomic COMMIT -> MANIFEST rename. All disk
// mutations go through common::io so a test IoPolicy can kill the process
// at any operation; opening an Archive then runs recovery that rolls a
// complete journaled commit forward, rolls an incomplete one back, and
// garbage-collects orphaned files, so the re-opened archive is always
// exactly the pre- or post-commit state — never in between. Readers never
// need recovery: the old manifest and every file it names stay untouched
// until the atomic publish.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "archive/partition.h"
#include "common/io.h"
#include "etl/ingest.h"
#include "etl/quality.h"
#include "warehouse/rollup.h"

namespace supremm::archive {

/// One partition as recorded in the manifest.
struct PartitionInfo {
  std::string table;
  std::int64_t day = 0;  // absolute simulated day index; -1 = snapshot
  std::uint64_t rows = 0;
  std::uint32_t crc = 0;  // CRC-32 of the whole partition file
  std::uint64_t bytes = 0;
  std::string filename;
};

/// The archive's checksummed index (file "MANIFEST" in the directory).
struct Manifest {
  common::TimePoint start = 0;
  common::Duration bucket = 0;
  std::string cluster;
  std::string context;  // caller's config fingerprint; appends must match
  common::TimePoint watermark = 0;  // data before this time is archived
  std::int64_t rewrite_from = 0;    // first provisional day (absolute index)
  /// Commit sequence number: 0 for an empty archive, +1 per published
  /// commit. Qualifies partition filenames (so a commit never overwrites a
  /// live file) and orders a journaled COMMIT against the manifest during
  /// recovery. Absent from pre-epoch manifests, which parse as epoch 0.
  std::uint64_t epoch = 0;
  std::vector<PartitionInfo> partitions;
};

struct AppendStats {
  std::int64_t days_ingested = 0;    // days re-ingested by this append
  std::size_t partitions_written = 0;
  std::uint64_t rows_written = 0;
  std::uint64_t bytes_written = 0;   // compressed partition bytes
  // Rollup maintenance accounting (all included in the totals above):
  // partitions/cells staged for the four rollup tables this commit, and the
  // retained jobs partitions re-read to rebuild the touched coarse buckets.
  std::size_t rollup_partitions_written = 0;
  std::uint64_t rollup_cells_written = 0;
  std::size_t rollup_days_read_back = 0;
  // A retained jobs partition failed to re-read during maintenance: the
  // append committed without any rollup partitions (load_rollups() then
  // reports none and consumers rebuild from the table they load); a later
  // append that can read the history restores coverage from scratch.
  bool rollup_maintenance_skipped = false;
};

struct LoadResult {
  etl::IngestResult result;  // jobs + series + quality; stats left zero
  std::vector<etl::PartitionQuarantine> quarantined;
  std::size_t partitions_loaded = 0;
};

/// Lazily materializes warehouse tables from an archive directory. Each
/// table() call concatenates that table's healthy partitions (quarantining
/// damaged ones), restores the canonical row order, and attaches a zone
/// index so warehouse::Query prunes chunks during scans.
class Reader {
 public:
  /// Reads and verifies the manifest; throws ParseError if it is missing or
  /// damaged (without a trustworthy index nothing else can be trusted).
  /// `threads` != 1 decodes partitions on a worker pool (0 = hardware
  /// concurrency); tables, quarantine order and chunk accounting are
  /// identical for any setting.
  explicit Reader(std::string dir, std::size_t threads = 1);

  [[nodiscard]] const Manifest& manifest() const noexcept { return manifest_; }

  /// Materialize one table ("jobs", "series" or "data_quality") from all of
  /// its healthy partitions, sorted by its natural key (job id / time /
  /// host) and zone-indexed with `chunk_rows` rows per chunk.
  [[nodiscard]] warehouse::Table table(std::string_view name,
                                       std::size_t chunk_rows = kDefaultChunkRows);

  /// Scan-oriented read: decode only the chunks whose stored zone maps can
  /// satisfy `bounds`; everything else is skipped without decompression.
  /// Rows keep partition order (day-major) and carry a zone index.
  [[nodiscard]] warehouse::Table table_pruned(std::string_view name,
                                              const std::vector<warehouse::PredicateBounds>& bounds,
                                              std::size_t chunk_rows = kDefaultChunkRows);

  /// Partitions dropped by table()/table_pruned() calls so far.
  [[nodiscard]] const std::vector<etl::PartitionQuarantine>& quarantined() const noexcept {
    return quarantined_;
  }
  [[nodiscard]] std::size_t partitions_loaded() const noexcept { return partitions_loaded_; }
  /// Chunk accounting from table_pruned() calls.
  [[nodiscard]] std::size_t chunks_total() const noexcept { return chunks_total_; }
  [[nodiscard]] std::size_t chunks_pruned() const noexcept { return chunks_pruned_; }

 private:
  std::vector<DecodedPartition> decode_table(std::string_view name,
                                             const std::vector<warehouse::PredicateBounds>* prune);

  std::string dir_;
  std::size_t threads_ = 1;
  Manifest manifest_;
  std::vector<etl::PartitionQuarantine> quarantined_;
  std::size_t partitions_loaded_ = 0;
  std::size_t chunks_total_ = 0;
  std::size_t chunks_pruned_ = 0;
};

/// An archive directory: open (or create on first append), append new days,
/// load everything back as an IngestResult.
class Archive {
 public:
  /// Binds to `dir` and runs crash recovery: a complete journaled commit is
  /// rolled forward, an incomplete one rolled back, and orphaned files are
  /// garbage-collected (see recovery()). Then reads the manifest if one
  /// exists; a missing manifest means an empty archive (the first append
  /// creates it), a damaged one throws ParseError. `threads` != 1 runs the
  /// partition codec on a worker pool during append()/load() (0 = hardware
  /// concurrency); the files written and data loaded are identical for any
  /// setting. `io` (borrowed, may be null) observes and may fail every disk
  /// mutation this handle performs — the fault-injection seam for the crash
  /// harness; production passes nullptr.
  explicit Archive(std::string dir, std::size_t threads = 1,
                   common::IoPolicy* io = nullptr);

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }
  [[nodiscard]] bool exists() const noexcept { return manifest_.has_value(); }
  /// Throws NotFoundError when the archive is empty.
  [[nodiscard]] const Manifest& manifest() const;

  /// The ingest watermark: data before this time is archived and immutable
  /// (except the provisional last day). 0 for an empty archive. Monotone
  /// under append — the serving layer keys result caches on it, so any
  /// cached answer is tied to exactly one archive state.
  [[nodiscard]] common::TimePoint watermark() const noexcept {
    return manifest_ ? manifest_->watermark : 0;
  }

  /// Register a hook invoked after every successful append() on this handle,
  /// with the freshly written manifest. Used by the query service to
  /// invalidate watermark-keyed caches the moment new data lands. Hooks must
  /// not call back into this Archive and must outlive it.
  void on_append(std::function<void(const Manifest&)> hook) {
    append_hooks_.push_back(std::move(hook));
  }

  /// Ingest the not-yet-archived days in [watermark, upto) from the given
  /// artifacts and persist them. `cfg.start` must be day-aligned and equal
  /// the archive's start; `cfg.span` must equal `upto - cfg.start`; `upto`
  /// must be day-aligned. `context` is an opaque fingerprint of everything
  /// that determines the data (spec, seed, load factor, ...): appends to an
  /// archive with a different context throw InvalidArgument instead of
  /// silently mixing datasets. Returns without work if upto <= watermark.
  AppendStats append(const etl::IngestConfig& cfg,
                     const std::vector<taccstats::RawFile>& files,
                     const std::vector<accounting::AccountingRecord>& acct,
                     const std::vector<lariat::LariatRecord>& lariat_records,
                     const std::vector<facility::AppSignature>& catalogue,
                     const std::unordered_map<std::string, std::string>& project_science,
                     std::string_view context, common::TimePoint upto);

  /// Materialize the full archive as an IngestResult (jobs sorted by id,
  /// series over [start, watermark), latest quality snapshot). Damaged
  /// partitions are quarantined into the result's DataQualityReport, which
  /// also carries this handle's recovery accounting. Rollup partitions are
  /// verified and counted but not merged here — see load_rollups().
  [[nodiscard]] LoadResult load() const;

  /// Materialize the maintained rollup tables (DESIGN.md §16) from their
  /// partitions, in canonical (bucket ASC, min job id ASC) cell order.
  /// Returns nullopt when the archive predates rollups or any rollup
  /// partition fails verification — the caller rebuilds from the jobs table
  /// instead of serving from a partial rollup state.
  [[nodiscard]] std::optional<warehouse::rollup::RollupSet> load_rollups() const;

  /// What recovery did when this handle was opened (all-zero for a clean
  /// open). Exact accounting: one rolled-forward or rolled-back commit at
  /// most, plus every orphaned file removed.
  [[nodiscard]] const etl::RecoveryStats& recovery() const noexcept { return recovery_; }
  /// Orphaned partition files recovery discarded (fault = kOrphaned); also
  /// folded into load()'s DataQualityReport.
  [[nodiscard]] const std::vector<etl::PartitionQuarantine>& recovery_quarantines()
      const noexcept {
    return recovery_quarantines_;
  }

 private:
  /// Crash recovery, run once at open. See DESIGN.md §14.
  void recover();
  /// Durably publish `m` plus its freshly encoded partitions; `stale` names
  /// files retired by this commit. On failure rolls the staging area back,
  /// leaves the pre-commit state intact and throws ArchiveError.
  struct StagedPartition {
    PartitionInfo info;
    std::string bytes;
  };
  void commit(Manifest& m, const std::vector<StagedPartition>& staged,
              const std::vector<std::string>& stale);

  std::string dir_;
  std::size_t threads_ = 1;
  common::IoPolicy* io_ = nullptr;
  std::optional<Manifest> manifest_;
  etl::RecoveryStats recovery_;
  std::vector<etl::PartitionQuarantine> recovery_quarantines_;
  std::vector<std::function<void(const Manifest&)>> append_hooks_;
};

}  // namespace supremm::archive
