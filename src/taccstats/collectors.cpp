#include "taccstats/collectors.h"

#include "common/strings.h"

namespace supremm::taccstats {

namespace {

using procsim::NodeCounters;

std::string core_dev(std::size_t i) { return common::strprintf("%zu", i); }

class CpuCollector final : public Collector {
 public:
  [[nodiscard]] std::string type() const override { return "cpu"; }
  [[nodiscard]] TypeRecord collect(const NodeCounters& nc) const override {
    TypeRecord r{type(), {}};
    r.rows.reserve(nc.cpu.size());
    for (std::size_t i = 0; i < nc.cpu.size(); ++i) {
      const auto& c = nc.cpu[i];
      r.rows.push_back(
          {core_dev(i), {c.user, c.nice, c.system, c.idle, c.iowait, c.irq, c.softirq}});
    }
    return r;
  }
};

class PerfCollector final : public Collector {
 public:
  explicit PerfCollector(procsim::Arch arch)
      : type_(SchemaRegistry::perf_type_name(arch)) {}
  [[nodiscard]] std::string type() const override { return type_; }
  [[nodiscard]] TypeRecord collect(const NodeCounters& nc) const override {
    TypeRecord r{type_, {}};
    r.rows.reserve(nc.perf.size());
    for (std::size_t i = 0; i < nc.perf.size(); ++i) {
      DeviceRow row{core_dev(i), {}};
      const auto& regs = nc.perf[i].registers();
      row.values.reserve(2 * regs.size());
      // CTL registers first (the programmed event ids), then CTR values:
      // the periodic path *reads only*, mirroring the real tool.
      for (const auto& reg : regs) {
        row.values.push_back(static_cast<std::uint64_t>(reg.control));
      }
      for (const auto& reg : regs) row.values.push_back(reg.value);
      r.rows.push_back(std::move(row));
    }
    return r;
  }

 private:
  std::string type_;
};

class MemCollector final : public Collector {
 public:
  [[nodiscard]] std::string type() const override { return "mem"; }
  [[nodiscard]] TypeRecord collect(const NodeCounters& nc) const override {
    TypeRecord r{type(), {}};
    for (std::size_t s = 0; s < nc.mem.size(); ++s) {
      const auto& m = nc.mem[s];
      r.rows.push_back({core_dev(s),
                        {m.mem_total, m.mem_used, m.mem_free, m.cached, m.buffers,
                         m.anon_pages, m.slab}});
    }
    return r;
  }
};

class VmCollector final : public Collector {
 public:
  [[nodiscard]] std::string type() const override { return "vm"; }
  [[nodiscard]] TypeRecord collect(const NodeCounters& nc) const override {
    const auto& v = nc.vm;
    return {type(),
            {{"-", {v.pgpgin, v.pgpgout, v.pswpin, v.pswpout, v.pgfault, v.pgmajfault}}}};
  }
};

class NetCollector final : public Collector {
 public:
  [[nodiscard]] std::string type() const override { return "net"; }
  [[nodiscard]] TypeRecord collect(const NodeCounters& nc) const override {
    TypeRecord r{type(), {}};
    for (const auto& d : nc.net_devs) {
      r.rows.push_back({d.name,
                        {d.rx_bytes, d.rx_packets, d.rx_errors, d.tx_bytes, d.tx_packets,
                         d.tx_errors}});
    }
    return r;
  }
};

class BlockCollector final : public Collector {
 public:
  [[nodiscard]] std::string type() const override { return "block"; }
  [[nodiscard]] TypeRecord collect(const NodeCounters& nc) const override {
    TypeRecord r{type(), {}};
    for (const auto& d : nc.block_devs) {
      r.rows.push_back(
          {d.name, {d.rd_ios, d.rd_sectors, d.wr_ios, d.wr_sectors, d.io_ticks}});
    }
    return r;
  }
};

class IbCollector final : public Collector {
 public:
  [[nodiscard]] std::string type() const override { return "ib"; }
  [[nodiscard]] TypeRecord collect(const NodeCounters& nc) const override {
    const auto& p = nc.ib;
    return {type(), {{"mlx4_0.1", {p.rx_bytes, p.rx_packets, p.tx_bytes, p.tx_packets}}}};
  }
};

class LliteCollector final : public Collector {
 public:
  [[nodiscard]] std::string type() const override { return "llite"; }
  [[nodiscard]] TypeRecord collect(const NodeCounters& nc) const override {
    TypeRecord r{type(), {}};
    for (const auto& m : nc.lustre_mounts) {
      r.rows.push_back(
          {m.name, {m.read_bytes, m.write_bytes, m.open, m.close, m.getattr}});
    }
    return r;
  }
};

class LnetCollector final : public Collector {
 public:
  [[nodiscard]] std::string type() const override { return "lnet"; }
  [[nodiscard]] TypeRecord collect(const NodeCounters& nc) const override {
    const auto& l = nc.lnet;
    return {type(), {{"-", {l.rx_bytes, l.tx_bytes, l.rx_msgs, l.tx_msgs}}}};
  }
};

class NfsCollector final : public Collector {
 public:
  [[nodiscard]] std::string type() const override { return "nfs"; }
  [[nodiscard]] TypeRecord collect(const NodeCounters& nc) const override {
    TypeRecord r{type(), {}};
    // Nodes without an NFS mount report the type with no rows (the real
    // tool's types are present but empty when a subsystem is absent).
    if (nc.has_nfs) {
      r.rows.push_back(
          {"-", {nc.nfs.rpc_calls, nc.nfs.read_bytes, nc.nfs.write_bytes, nc.nfs.getattr}});
    }
    return r;
  }
};

class NumaCollector final : public Collector {
 public:
  [[nodiscard]] std::string type() const override { return "numa"; }
  [[nodiscard]] TypeRecord collect(const NodeCounters& nc) const override {
    TypeRecord r{type(), {}};
    for (std::size_t s = 0; s < nc.numa.size(); ++s) {
      const auto& n = nc.numa[s];
      r.rows.push_back(
          {core_dev(s),
           {n.numa_hit, n.numa_miss, n.numa_foreign, n.local_node, n.other_node}});
    }
    return r;
  }
};

class IrqCollector final : public Collector {
 public:
  [[nodiscard]] std::string type() const override { return "irq"; }
  [[nodiscard]] TypeRecord collect(const NodeCounters& nc) const override {
    const auto& q = nc.irq;
    return {type(), {{"-", {q.hw_total, q.timer, q.net_rx, q.sw_total}}}};
  }
};

class PsCollector final : public Collector {
 public:
  [[nodiscard]] std::string type() const override { return "ps"; }
  [[nodiscard]] TypeRecord collect(const NodeCounters& nc) const override {
    const auto& p = nc.ps;
    return {type(),
            {{"-",
              {p.ctxt, p.processes, p.load_1, p.load_5, p.load_15, p.nr_running,
               p.nr_threads}}}};
  }
};

class SysvShmCollector final : public Collector {
 public:
  [[nodiscard]] std::string type() const override { return "sysv_shm"; }
  [[nodiscard]] TypeRecord collect(const NodeCounters& nc) const override {
    return {type(), {{"-", {nc.sysv_shm.segments, nc.sysv_shm.bytes}}}};
  }
};

class TmpfsCollector final : public Collector {
 public:
  [[nodiscard]] std::string type() const override { return "tmpfs"; }
  [[nodiscard]] TypeRecord collect(const NodeCounters& nc) const override {
    TypeRecord r{type(), {}};
    for (const auto& m : nc.tmpfs_mounts) r.rows.push_back({m.name, {m.bytes_used}});
    return r;
  }
};

class VfsCollector final : public Collector {
 public:
  [[nodiscard]] std::string type() const override { return "vfs"; }
  [[nodiscard]] TypeRecord collect(const NodeCounters& nc) const override {
    return {type(), {{"-", {nc.vfs.dentry_use, nc.vfs.file_use, nc.vfs.inode_use}}}};
  }
};

}  // namespace

std::vector<std::unique_ptr<Collector>> standard_collectors(procsim::Arch arch) {
  std::vector<std::unique_ptr<Collector>> out;
  out.push_back(std::make_unique<CpuCollector>());
  out.push_back(std::make_unique<PerfCollector>(arch));
  out.push_back(std::make_unique<MemCollector>());
  out.push_back(std::make_unique<VmCollector>());
  out.push_back(std::make_unique<NetCollector>());
  out.push_back(std::make_unique<BlockCollector>());
  out.push_back(std::make_unique<IbCollector>());
  out.push_back(std::make_unique<LliteCollector>());
  out.push_back(std::make_unique<LnetCollector>());
  out.push_back(std::make_unique<NfsCollector>());
  out.push_back(std::make_unique<NumaCollector>());
  out.push_back(std::make_unique<IrqCollector>());
  out.push_back(std::make_unique<PsCollector>());
  out.push_back(std::make_unique<SysvShmCollector>());
  out.push_back(std::make_unique<TmpfsCollector>());
  out.push_back(std::make_unique<VfsCollector>());
  return out;
}

std::vector<TypeRecord> collect_all(const std::vector<std::unique_ptr<Collector>>& collectors,
                                    const procsim::NodeCounters& nc) {
  std::vector<TypeRecord> out;
  out.reserve(collectors.size());
  for (const auto& c : collectors) out.push_back(c->collect(nc));
  return out;
}

}  // namespace supremm::taccstats
