// In-memory form of collected samples.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.h"

namespace supremm::taccstats {

/// One device row of one type: e.g. cpu core 3's seven counters.
struct DeviceRow {
  std::string device;  // "0".."15", "eth0", "scratch", "-" for node-wide
  std::vector<std::uint64_t> values;

  [[nodiscard]] bool operator==(const DeviceRow&) const = default;
};

/// All rows of one type at one instant.
struct TypeRecord {
  std::string type;
  std::vector<DeviceRow> rows;

  [[nodiscard]] bool operator==(const TypeRecord&) const = default;
};

/// Why a sample was taken. The paper: "TACC_Stats executes at the beginning
/// of a job, periodically during the job (currently every ten minutes) and
/// at the end of the job."
enum class SampleMark : std::uint8_t {
  kPeriodic = 0,
  kJobBegin,
  kJobEnd,
  kRotate,  // daily file rotation sample
};

[[nodiscard]] std::string_view mark_name(SampleMark m) noexcept;

/// A full sample of one node at one instant, tagged with the running job.
struct Sample {
  common::TimePoint time = 0;
  std::int64_t job_id = 0;  // 0 = no job running
  SampleMark mark = SampleMark::kPeriodic;
  std::vector<TypeRecord> records;

  /// Exact equality - used by salvage-mode ingest to drop duplicated
  /// samples (a re-sent collector block is byte-identical).
  [[nodiscard]] bool operator==(const Sample&) const = default;

  [[nodiscard]] const TypeRecord* find(std::string_view type) const noexcept {
    for (const auto& r : records) {
      if (r.type == type) return &r;
    }
    return nullptr;
  }
};

}  // namespace supremm::taccstats
