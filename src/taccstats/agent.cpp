#include "taccstats/agent.h"

#include <algorithm>

#include "common/thread_pool.h"

namespace supremm::taccstats {

using common::Duration;
using common::TimePoint;
using facility::FacilityEngine;
using facility::Segment;

bool user_programs_counters(facility::JobId id, double prob) noexcept {
  if (prob <= 0.0) return false;
  const std::uint64_t h = common::splitmix64(static_cast<std::uint64_t>(id) ^ 0x75c47ULL);
  return static_cast<double>(h >> 11) / 9007199254740992.0 < prob;
}

NodeAgent::NodeAgent(FacilityEngine& engine, std::size_t node, AgentConfig config)
    : engine_(engine),
      node_(node),
      config_(config),
      registry_(engine.spec().node.arch),
      collectors_(standard_collectors(engine.spec().node.arch)),
      writer_(facility::node_hostname(engine.spec(), node), registry_) {
  if (config_.sar_mode) {
    // SAR has no access to the job-programmed performance counters.
    const std::string perf = SchemaRegistry::perf_type_name(engine.spec().node.arch);
    std::erase_if(collectors_,
                  [&](const std::unique_ptr<Collector>& c) { return c->type() == perf; });
  }
}

void NodeAgent::ensure_file(TimePoint t, NodeOutput& out) {
  const std::int64_t day = common::day_of(t);
  if (!config_.rotate_daily && !out.files.empty()) return;
  if (out.files.empty() || current_day_ != day) {
    RawFile f;
    f.hostname = facility::node_hostname(engine_.spec(), node_);
    f.day = day;
    f.content = writer_.header();
    out.bytes += f.content.size();
    out.files.push_back(std::move(f));
    current_day_ = day;
  }
}

void NodeAgent::take_sample(TimePoint t, std::int64_t job_id, SampleMark mark,
                            NodeOutput& out) {
  engine_.advance_node(node_, t);
  ensure_file(t, out);
  Sample s;
  s.time = t;
  s.job_id = job_id;
  s.mark = mark;
  s.records = collect_all(collectors_, engine_.counters(node_));
  std::string& content = out.files.back().content;
  const std::size_t before = content.size();
  writer_.append_sample(s, content);
  out.bytes += content.size() - before;
  ++out.samples;
}

NodeOutput NodeAgent::run() {
  NodeOutput out;
  const TimePoint start = engine_.start_time();
  const TimePoint horizon = engine_.horizon();
  auto& nc = engine_.counters(node_);
  const auto events = procsim::tacc_stats_event_set(nc.arch());

  bool prev_down = false;
  for (const Segment& seg : engine_.timeline(node_)) {
    if (seg.kind == Segment::Kind::kDown) {
      prev_down = true;
      continue;
    }
    const bool after_down = prev_down;
    prev_down = false;

    const bool is_job = seg.kind == Segment::Kind::kJob && !config_.sar_mode;
    std::int64_t job_id = 0;
    bool user_custom = false;
    if (is_job) {
      const auto& exec = engine_.executions()[seg.exec_index];
      job_id = exec.req.id;
      user_custom = user_programs_counters(job_id, config_.user_counter_prob);
      // Job begin: reprogram the counters, then sample.
      engine_.advance_node(node_, seg.start);
      for (auto& pc : nc.perf) {
        for (std::size_t slot = 0; slot < procsim::kPerfCountersPerCore; ++slot) {
          pc.program(slot, slot < events.size() ? events[slot]
                                                : procsim::PerfEvent::kNone);
        }
      }
      take_sample(seg.start, job_id, SampleMark::kJobBegin, out);
    } else if (after_down && seg.start > start) {
      // Node reappears after maintenance: boot/rotation sample.
      take_sample(seg.start, 0, SampleMark::kRotate, out);
    }

    // Periodic samples at interval-aligned instants strictly inside the
    // segment. Idle nodes are sampled too (system-level data: the paper
    // aggregates node data into system metrics).
    TimePoint t = ((seg.start / config_.interval) + 1) * config_.interval;
    bool user_programmed_yet = false;
    for (; t < std::min(seg.end, horizon); t += config_.interval) {
      if (is_job && user_custom && !user_programmed_yet) {
        // The user's tool reprograms counter slot 0 shortly after start; the
        // agent must not touch it again until the next job begin.
        engine_.advance_node(node_, t - 1);
        for (auto& pc : nc.perf) pc.program(0, procsim::PerfEvent::kUserCustom);
        user_programmed_yet = true;
      }
      take_sample(t, job_id, SampleMark::kPeriodic, out);
    }

    if (is_job && seg.end <= horizon) {
      take_sample(seg.end, job_id, SampleMark::kJobEnd, out);
    }
  }
  return out;
}

std::vector<NodeOutput> run_all_agents(FacilityEngine& engine, const AgentConfig& config,
                                       std::size_t threads) {
  std::vector<NodeOutput> out(engine.node_count());
  common::ThreadPool pool(threads);
  pool.parallel_for(0, engine.node_count(), [&](std::size_t n) {
    NodeAgent agent(engine, n, config);
    out[n] = agent.run();
  });
  return out;
}

}  // namespace supremm::taccstats
