// Per-subsystem collectors: read procsim counter state into TypeRecords.
//
// Each collector mirrors one "type" of the real tool (st_cpu, st_mem, ...).
// Collectors are stateless; the full set for a node is assembled by
// collect_all(). Swapping procsim::NodeCounters for a real /proc reader is
// the only change needed to run against real hardware.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "procsim/counters.h"
#include "taccstats/record.h"
#include "taccstats/schema.h"

namespace supremm::taccstats {

/// Interface of one subsystem collector.
class Collector {
 public:
  virtual ~Collector() = default;
  [[nodiscard]] virtual std::string type() const = 0;
  [[nodiscard]] virtual TypeRecord collect(const procsim::NodeCounters& nc) const = 0;
};

/// The standard collector set for `arch`, in schema order.
[[nodiscard]] std::vector<std::unique_ptr<Collector>> standard_collectors(procsim::Arch arch);

/// Collect every type from a node. `registry` must match `arch`.
[[nodiscard]] std::vector<TypeRecord> collect_all(
    const std::vector<std::unique_ptr<Collector>>& collectors,
    const procsim::NodeCounters& nc);

}  // namespace supremm::taccstats
