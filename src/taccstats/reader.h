// Parser for the raw text format produced by RawWriter (the ingest side of
// the tool chain; the ETL pipeline consumes ParsedFile).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "taccstats/record.h"
#include "taccstats/schema.h"

namespace supremm::taccstats {

struct ParsedFile {
  std::string version;
  std::string hostname;
  SchemaRegistry schemas{std::vector<Schema>{}};
  std::vector<Sample> samples;
};

/// Parse a whole raw file. Throws ParseError on malformed input. Rows whose
/// value count does not match their schema are rejected (self-describing
/// format contract).
[[nodiscard]] ParsedFile parse_raw(std::string_view content);

/// Parse a mark name back to the enum.
[[nodiscard]] SampleMark parse_mark(std::string_view name);

}  // namespace supremm::taccstats
