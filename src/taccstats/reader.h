// Parser for the raw text format produced by RawWriter (the ingest side of
// the tool chain; the ETL pipeline consumes ParsedFile).
//
// Two entry points share one implementation:
//   - parse_raw: strict. The first malformed line aborts the whole file with
//     ParseError (the self-describing format contract).
//   - parse_raw_salvage: degraded-data mode. Every well-formed sample is
//     recovered; each malformed line is skipped and reported as a structured
//     Quarantine diagnostic so the ingest layer can account for exactly what
//     was lost (DESIGN.md "Degraded data semantics").
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "taccstats/record.h"
#include "taccstats/schema.h"

namespace supremm::taccstats {

struct ParsedFile {
  std::string version;
  std::string hostname;
  SchemaRegistry schemas{std::vector<Schema>{}};
  std::vector<Sample> samples;
};

/// Why a line was quarantined by salvage parsing.
enum class QuarantineReason : std::uint8_t {
  kBadMetadata,         // malformed $-line
  kBadSchema,           // malformed !-line
  kBadSampleHeader,     // digit-leading line that is not "<time> <jobid> <mark>"
  kUndeclaredType,      // data row of a type with no schema (garbage/corruption)
  kShortRow,            // data row with no device/values (truncation tail)
  kFieldCountMismatch,  // row value count disagrees with its schema
  kBadValue,            // non-numeric counter value
  kOrphanRow,           // data row with no preceding (valid) sample header
};

[[nodiscard]] std::string_view quarantine_reason_name(QuarantineReason r) noexcept;

/// One malformed line skipped by salvage parsing: where it came from (host or
/// file identity), where it was, and why it was rejected.
struct Quarantine {
  std::string source;
  std::size_t line = 0;
  QuarantineReason reason = QuarantineReason::kBadValue;
  std::string detail;
};

struct SalvageResult {
  ParsedFile file;
  std::vector<Quarantine> quarantined;
  bool missing_magic = false;  // no $tacc_stats line survived
};

/// Parse a whole raw file. Throws ParseError on malformed input; `source`
/// (hostname / file identity) is prefixed to error messages so multi-host
/// ingest failures are attributable. Rows whose value count does not match
/// their schema are rejected (self-describing format contract).
[[nodiscard]] ParsedFile parse_raw(std::string_view content, std::string_view source = {});

/// Salvage parse: never throws on malformed content. Recovers every
/// well-formed sample and quarantines each malformed line (one Quarantine
/// per damaged line). A damaged sample header orphans the rows that follow
/// it (each quarantined individually) rather than attaching them to the
/// previous sample.
[[nodiscard]] SalvageResult parse_raw_salvage(std::string_view content,
                                              std::string_view source = {});

/// Parse a mark name back to the enum.
[[nodiscard]] SampleMark parse_mark(std::string_view name);

}  // namespace supremm::taccstats
