#include "taccstats/schema.h"

#include "common/error.h"
#include "common/strings.h"

namespace supremm::taccstats {

using common::split;
using common::split_ws;

std::size_t Schema::field_index(std::string_view name) const {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (fields[i].name == name) return i;
  }
  throw common::NotFoundError("field '" + std::string(name) + "' in schema " + type);
}

std::string Schema::serialize() const {
  std::string out = "!" + type;
  for (const auto& f : fields) {
    out += ' ';
    out += f.name;
    out += ';';
    out += f.kind == FieldKind::kEvent ? 'E' : 'G';
    if (!f.unit.empty()) {
      out += ",U=";
      out += f.unit;
    }
  }
  return out;
}

Schema Schema::parse(std::string_view line) {
  if (line.empty() || line[0] != '!') throw common::ParseError("schema line must start with '!'");
  const auto parts = split_ws(line.substr(1));
  if (parts.empty()) throw common::ParseError("empty schema line");
  Schema s;
  s.type = std::string(parts[0]);
  for (std::size_t i = 1; i < parts.size(); ++i) {
    const auto semi = split(parts[i], ';');
    if (semi.size() != 2) throw common::ParseError("bad schema field: " + std::string(parts[i]));
    FieldDef f;
    f.name = std::string(semi[0]);
    const auto attrs = split(semi[1], ',');
    if (attrs.empty()) throw common::ParseError("bad schema attrs: " + std::string(parts[i]));
    if (attrs[0] == "E") {
      f.kind = FieldKind::kEvent;
    } else if (attrs[0] == "G") {
      f.kind = FieldKind::kGauge;
    } else {
      throw common::ParseError("unknown field kind: " + std::string(attrs[0]));
    }
    for (std::size_t a = 1; a < attrs.size(); ++a) {
      if (common::starts_with(attrs[a], "U=")) f.unit = std::string(attrs[a].substr(2));
    }
    s.fields.push_back(std::move(f));
  }
  return s;
}

std::string SchemaRegistry::perf_type_name(procsim::Arch arch) {
  switch (arch) {
    case procsim::Arch::kAmd10h:
      return "amd64_pmc";
    case procsim::Arch::kIntelWestmere:
      return "intel_wtm";
  }
  return "pmc";
}

namespace {

Schema events(std::string type, std::vector<std::string> names, std::string unit = {}) {
  Schema s;
  s.type = std::move(type);
  for (auto& n : names) s.fields.push_back({std::move(n), FieldKind::kEvent, unit});
  return s;
}

Schema gauges(std::string type, std::vector<std::string> names, std::string unit = {}) {
  Schema s;
  s.type = std::move(type);
  for (auto& n : names) s.fields.push_back({std::move(n), FieldKind::kGauge, unit});
  return s;
}

}  // namespace

SchemaRegistry::SchemaRegistry(procsim::Arch arch) {
  schemas_.push_back(events("cpu", {"user", "nice", "system", "idle", "iowait", "irq",
                                    "softirq"},
                            "cs"));
  {
    Schema perf;
    perf.type = perf_type_name(arch);
    for (std::size_t i = 0; i < procsim::kPerfCountersPerCore; ++i) {
      perf.fields.push_back({common::strprintf("CTL%zu", i), FieldKind::kGauge, ""});
    }
    for (std::size_t i = 0; i < procsim::kPerfCountersPerCore; ++i) {
      perf.fields.push_back({common::strprintf("CTR%zu", i), FieldKind::kEvent, ""});
    }
    schemas_.push_back(std::move(perf));
  }
  schemas_.push_back(gauges("mem", {"MemTotal", "MemUsed", "MemFree", "Cached", "Buffers",
                                    "AnonPages", "Slab"},
                            "KB"));
  schemas_.push_back(events("vm", {"pgpgin", "pgpgout", "pswpin", "pswpout", "pgfault",
                                   "pgmajfault"}));
  schemas_.push_back(events("net", {"rx_bytes", "rx_packets", "rx_errs", "tx_bytes",
                                    "tx_packets", "tx_errs"},
                            "B"));
  schemas_.push_back(events(
      "block", {"rd_ios", "rd_sectors", "wr_ios", "wr_sectors", "io_ticks"}));
  schemas_.push_back(
      events("ib", {"rx_bytes", "rx_packets", "tx_bytes", "tx_packets"}, "B"));
  schemas_.push_back(
      events("llite", {"read_bytes", "write_bytes", "open", "close", "getattr"}, "B"));
  schemas_.push_back(events("lnet", {"rx_bytes", "tx_bytes", "rx_msgs", "tx_msgs"}, "B"));
  schemas_.push_back(
      events("nfs", {"rpc_calls", "read_bytes", "write_bytes", "getattr"}, "B"));
  schemas_.push_back(events(
      "numa", {"numa_hit", "numa_miss", "numa_foreign", "local_node", "other_node"}));
  schemas_.push_back(events("irq", {"hw_total", "timer", "net_rx", "sw_total"}));
  {
    Schema ps;
    ps.type = "ps";
    ps.fields = {{"ctxt", FieldKind::kEvent, ""},
                 {"processes", FieldKind::kEvent, ""},
                 {"load_1", FieldKind::kGauge, "c"},
                 {"load_5", FieldKind::kGauge, "c"},
                 {"load_15", FieldKind::kGauge, "c"},
                 {"nr_running", FieldKind::kGauge, ""},
                 {"nr_threads", FieldKind::kGauge, ""}};
    schemas_.push_back(std::move(ps));
  }
  schemas_.push_back(gauges("sysv_shm", {"segments", "bytes"}, "B"));
  schemas_.push_back(gauges("tmpfs", {"bytes_used"}, "B"));
  schemas_.push_back(gauges("vfs", {"dentry_use", "file_use", "inode_use"}));
}

SchemaRegistry::SchemaRegistry(std::vector<Schema> schemas) : schemas_(std::move(schemas)) {}

const Schema& SchemaRegistry::get(std::string_view type) const {
  for (const auto& s : schemas_) {
    if (s.type == type) return s;
  }
  throw common::NotFoundError("schema '" + std::string(type) + "'");
}

bool SchemaRegistry::has(std::string_view type) const noexcept {
  for (const auto& s : schemas_) {
    if (s.type == type) return true;
  }
  return false;
}

}  // namespace supremm::taccstats
