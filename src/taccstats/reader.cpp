#include "taccstats/reader.h"

#include <cctype>

#include "common/error.h"
#include "common/strings.h"

namespace supremm::taccstats {

using common::split_ws;
using common::strprintf;

SampleMark parse_mark(std::string_view name) {
  if (name == "periodic") return SampleMark::kPeriodic;
  if (name == "begin") return SampleMark::kJobBegin;
  if (name == "end") return SampleMark::kJobEnd;
  if (name == "rotate") return SampleMark::kRotate;
  throw common::ParseError("unknown sample mark '" + std::string(name) + "'");
}

std::string_view quarantine_reason_name(QuarantineReason r) noexcept {
  switch (r) {
    case QuarantineReason::kBadMetadata:
      return "bad-metadata";
    case QuarantineReason::kBadSchema:
      return "bad-schema";
    case QuarantineReason::kBadSampleHeader:
      return "bad-sample-header";
    case QuarantineReason::kUndeclaredType:
      return "undeclared-type";
    case QuarantineReason::kShortRow:
      return "short-row";
    case QuarantineReason::kFieldCountMismatch:
      return "field-count-mismatch";
    case QuarantineReason::kBadValue:
      return "bad-value";
    case QuarantineReason::kOrphanRow:
      return "orphan-row";
  }
  return "unknown";
}

namespace {

/// Shared strict/salvage parse loop. With `sink == nullptr` any damage
/// throws ParseError (messages prefixed with `source`); otherwise each
/// malformed line becomes one Quarantine entry and parsing continues.
ParsedFile parse_core(std::string_view content, std::string_view source,
                      std::vector<Quarantine>* sink, bool* missing_magic) {
  ParsedFile out;
  std::vector<Schema> schemas;
  bool saw_magic = false;

  std::size_t pos = 0;
  std::size_t line_no = 0;
  Sample* current = nullptr;

  const auto reject = [&](QuarantineReason reason, std::string detail) {
    if (sink == nullptr) {
      std::string msg;
      if (!source.empty()) msg = std::string(source) + ": ";
      msg += detail + strprintf(" (line %zu)", line_no);
      throw common::ParseError(msg);
    }
    sink->push_back({std::string(source), line_no, reason, std::move(detail)});
  };

  while (pos < content.size()) {
    std::size_t eol = content.find('\n', pos);
    if (eol == std::string_view::npos) eol = content.size();
    const std::string_view line = content.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (line.empty()) continue;

    const char c0 = line[0];
    if (c0 == '$') {
      const auto parts = split_ws(line.substr(1));
      if (parts.empty()) {
        reject(QuarantineReason::kBadMetadata, "bad metadata line");
        continue;
      }
      if (parts[0] == "tacc_stats" && parts.size() >= 2) {
        out.version = std::string(parts[1]);
        saw_magic = true;
      } else if (parts[0] == "hostname" && parts.size() >= 2) {
        out.hostname = std::string(parts[1]);
      }
      continue;
    }
    if (c0 == '!') {
      try {
        schemas.push_back(Schema::parse(line));
      } catch (const common::ParseError& e) {
        reject(QuarantineReason::kBadSchema, e.what());
      }
      continue;
    }
    const bool header_lead =
        std::isdigit(static_cast<unsigned char>(c0)) != 0 ||
        (c0 == '-' && line.size() > 1 &&
         std::isdigit(static_cast<unsigned char>(line[1])) != 0);
    if (header_lead) {
      // Sample header: <time> <jobid> <mark>. A leading '-' still means a
      // header: type rows are alphabetic, and a host whose clock runs behind
      // the epoch start stamps negative times.
      const auto parts = split_ws(line);
      Sample header;
      bool ok = parts.size() == 3;
      if (ok) {
        try {
          header.time = common::parse_i64(parts[0]);
          header.job_id = common::parse_i64(parts[1]);
          header.mark = parse_mark(parts[2]);
        } catch (const common::ParseError&) {
          ok = false;
        }
      }
      if (!ok) {
        reject(QuarantineReason::kBadSampleHeader, "bad sample header");
        // Rows that follow a damaged header must not attach to the previous
        // sample - they belong to the lost one.
        current = nullptr;
        continue;
      }
      out.samples.push_back(std::move(header));
      current = &out.samples.back();
      // Commit schemas on first sample.
      if (out.schemas.all().empty() && !schemas.empty()) {
        out.schemas = SchemaRegistry(schemas);
      }
      continue;
    }
    // Type row: <type> <device> <values...>
    if (current == nullptr) {
      reject(QuarantineReason::kOrphanRow, "data row before sample header");
      continue;
    }
    const auto parts = split_ws(line);
    if (parts.size() < 2) {
      reject(QuarantineReason::kShortRow, "short data row");
      continue;
    }
    const std::string_view type = parts[0];
    // Validate against schema when known.
    const Schema* schema = nullptr;
    for (const auto& s : schemas) {
      if (s.type == type) {
        schema = &s;
        break;
      }
    }
    if (schema == nullptr) {
      reject(QuarantineReason::kUndeclaredType,
             "row of undeclared type '" + std::string(type) + "'");
      continue;
    }
    if (parts.size() - 2 != schema->fields.size()) {
      reject(QuarantineReason::kFieldCountMismatch,
             strprintf("row of type %s has %zu values, schema has %zu",
                       std::string(type).c_str(), parts.size() - 2, schema->fields.size()));
      continue;
    }
    DeviceRow row;
    row.device = std::string(parts[1]);
    row.values.reserve(parts.size() - 2);
    bool values_ok = true;
    for (std::size_t i = 2; i < parts.size(); ++i) {
      try {
        row.values.push_back(common::parse_u64(parts[i]));
      } catch (const common::ParseError&) {
        values_ok = false;
        break;
      }
    }
    if (!values_ok) {
      reject(QuarantineReason::kBadValue,
             "row of type " + std::string(type) + " has a non-numeric value");
      continue;
    }
    TypeRecord* rec = nullptr;
    for (auto& r : current->records) {
      if (r.type == type) {
        rec = &r;
        break;
      }
    }
    if (rec == nullptr) {
      current->records.push_back({std::string(type), {}});
      rec = &current->records.back();
    }
    rec->rows.push_back(std::move(row));
  }

  if (!saw_magic) {
    if (sink == nullptr) {
      std::string msg;
      if (!source.empty()) msg = std::string(source) + ": ";
      throw common::ParseError(msg + "missing $tacc_stats magic");
    }
    if (missing_magic != nullptr) *missing_magic = true;
  }
  if (out.schemas.all().empty() && !schemas.empty()) {
    out.schemas = SchemaRegistry(schemas);
  }
  return out;
}

}  // namespace

ParsedFile parse_raw(std::string_view content, std::string_view source) {
  return parse_core(content, source, nullptr, nullptr);
}

SalvageResult parse_raw_salvage(std::string_view content, std::string_view source) {
  SalvageResult out;
  out.file = parse_core(content, source, &out.quarantined, &out.missing_magic);
  return out;
}

}  // namespace supremm::taccstats
