#include "taccstats/reader.h"

#include <cctype>

#include "common/error.h"
#include "common/strings.h"

namespace supremm::taccstats {

using common::split_ws;
using common::starts_with;

SampleMark parse_mark(std::string_view name) {
  if (name == "periodic") return SampleMark::kPeriodic;
  if (name == "begin") return SampleMark::kJobBegin;
  if (name == "end") return SampleMark::kJobEnd;
  if (name == "rotate") return SampleMark::kRotate;
  throw common::ParseError("unknown sample mark '" + std::string(name) + "'");
}

ParsedFile parse_raw(std::string_view content) {
  ParsedFile out;
  std::vector<Schema> schemas;
  bool saw_magic = false;

  std::size_t pos = 0;
  std::size_t line_no = 0;
  Sample* current = nullptr;

  while (pos < content.size()) {
    std::size_t eol = content.find('\n', pos);
    if (eol == std::string_view::npos) eol = content.size();
    const std::string_view line = content.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (line.empty()) continue;

    const char c0 = line[0];
    if (c0 == '$') {
      const auto parts = split_ws(line.substr(1));
      if (parts.empty()) throw common::ParseError("bad metadata line");
      if (parts[0] == "tacc_stats" && parts.size() >= 2) {
        out.version = std::string(parts[1]);
        saw_magic = true;
      } else if (parts[0] == "hostname" && parts.size() >= 2) {
        out.hostname = std::string(parts[1]);
      }
      continue;
    }
    if (c0 == '!') {
      schemas.push_back(Schema::parse(line));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c0)) != 0) {
      // Sample header: <time> <jobid> <mark>
      const auto parts = split_ws(line);
      if (parts.size() != 3) {
        throw common::ParseError(common::strprintf("bad sample header at line %zu", line_no));
      }
      out.samples.emplace_back();
      current = &out.samples.back();
      current->time = common::parse_i64(parts[0]);
      current->job_id = common::parse_i64(parts[1]);
      current->mark = parse_mark(parts[2]);
      // Commit schemas on first sample.
      if (out.schemas.all().empty() && !schemas.empty()) {
        out.schemas = SchemaRegistry(schemas);
      }
      continue;
    }
    // Type row: <type> <device> <values...>
    if (current == nullptr) {
      throw common::ParseError(common::strprintf("data row before sample header, line %zu",
                                                 line_no));
    }
    const auto parts = split_ws(line);
    if (parts.size() < 2) {
      throw common::ParseError(common::strprintf("short data row at line %zu", line_no));
    }
    const std::string_view type = parts[0];
    // Validate against schema when known.
    const Schema* schema = nullptr;
    for (const auto& s : schemas) {
      if (s.type == type) {
        schema = &s;
        break;
      }
    }
    if (schema == nullptr) {
      throw common::ParseError("row of undeclared type '" + std::string(type) + "'");
    }
    if (parts.size() - 2 != schema->fields.size()) {
      throw common::ParseError(common::strprintf(
          "row of type %s has %zu values, schema has %zu (line %zu)",
          std::string(type).c_str(), parts.size() - 2, schema->fields.size(), line_no));
    }
    TypeRecord* rec = nullptr;
    for (auto& r : current->records) {
      if (r.type == type) {
        rec = &r;
        break;
      }
    }
    if (rec == nullptr) {
      current->records.push_back({std::string(type), {}});
      rec = &current->records.back();
    }
    DeviceRow row;
    row.device = std::string(parts[1]);
    row.values.reserve(parts.size() - 2);
    for (std::size_t i = 2; i < parts.size(); ++i) {
      row.values.push_back(common::parse_u64(parts[i]));
    }
    rec->rows.push_back(std::move(row));
  }

  if (!saw_magic) throw common::ParseError("missing $tacc_stats magic");
  if (out.schemas.all().empty() && !schemas.empty()) {
    out.schemas = SchemaRegistry(schemas);
  }
  return out;
}

}  // namespace supremm::taccstats
