#include "taccstats/writer.h"

#include <charconv>

#include "common/strings.h"

namespace supremm::taccstats {

std::string_view mark_name(SampleMark m) noexcept {
  switch (m) {
    case SampleMark::kPeriodic:
      return "periodic";
    case SampleMark::kJobBegin:
      return "begin";
    case SampleMark::kJobEnd:
      return "end";
    case SampleMark::kRotate:
      return "rotate";
  }
  return "unknown";
}

RawWriter::RawWriter(std::string hostname, const SchemaRegistry& registry)
    : hostname_(std::move(hostname)) {
  header_ = "$tacc_stats 2.0\n";
  header_ += "$hostname " + hostname_ + "\n";
  for (const auto& s : registry.all()) {
    header_ += s.serialize();
    header_ += '\n';
  }
}

namespace {

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  const auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  (void)ec;
  out.append(buf, p);
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  const auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  (void)ec;
  out.append(buf, p);
}

}  // namespace

void RawWriter::append_sample(const Sample& sample, std::string& out) const {
  append_i64(out, sample.time);
  out += ' ';
  append_i64(out, sample.job_id);
  out += ' ';
  out += mark_name(sample.mark);
  out += '\n';
  for (const auto& rec : sample.records) {
    for (const auto& row : rec.rows) {
      out += rec.type;
      out += ' ';
      out += row.device;
      for (const std::uint64_t v : row.values) {
        out += ' ';
        append_u64(out, v);
      }
      out += '\n';
    }
  }
}

std::size_t RawWriter::sample_size(const Sample& sample) const {
  std::string tmp;
  append_sample(sample, tmp);
  return tmp.size();
}

}  // namespace supremm::taccstats
