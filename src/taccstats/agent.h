// The per-node TACC_Stats agent.
//
// Drives collection on one node across simulated time: a sample at every
// job begin (after reprogramming the performance counters), every `interval`
// during execution (reads only - never reprograms, to avoid clobbering
// counters a user may have programmed), at job end, and at daily rotation
// boundaries. Produces one RawFile per node-day plus byte/overhead
// accounting used by the §3 claims bench (0.1% overhead, ~0.5 MB/node/day).
#pragma once

#include <cstdint>
#include <vector>

#include "facility/engine.h"
#include "taccstats/collectors.h"
#include "taccstats/writer.h"

namespace supremm::taccstats {

struct AgentConfig {
  common::Duration interval = 10 * common::kMinute;
  bool rotate_daily = true;
  /// Probability (deterministic per job id) that a job's user reprograms a
  /// counter mid-run; periodic samples then carry the user's CTL value and
  /// the ETL must discard the affected event for that job.
  double user_counter_prob = 0.02;
  /// sysstat/SAR baseline mode (paper §1.2/§3): sample periodically with NO
  /// job tagging, NO begin/end marks and NO hardware performance counters.
  /// Downstream, only system-level series survive - no job, user or
  /// application analysis is possible. Used by the ablation benches.
  bool sar_mode = false;
};

struct NodeOutput {
  std::vector<RawFile> files;
  std::uint64_t bytes = 0;
  std::size_t samples = 0;
};

/// Whether job `id` is one whose user programs their own counters (pure
/// function so tests and ETL fixtures can predict it).
[[nodiscard]] bool user_programs_counters(facility::JobId id, double prob) noexcept;

class NodeAgent {
 public:
  NodeAgent(facility::FacilityEngine& engine, std::size_t node, AgentConfig config);

  /// Run collection across the engine's [start, horizon) for this node.
  [[nodiscard]] NodeOutput run();

 private:
  void take_sample(common::TimePoint t, std::int64_t job_id, SampleMark mark,
                   NodeOutput& out);
  void ensure_file(common::TimePoint t, NodeOutput& out);

  facility::FacilityEngine& engine_;
  std::size_t node_;
  AgentConfig config_;
  SchemaRegistry registry_;
  std::vector<std::unique_ptr<Collector>> collectors_;
  RawWriter writer_;
  std::int64_t current_day_ = -1;
};

/// Run agents for every node (parallel across nodes; deterministic).
[[nodiscard]] std::vector<NodeOutput> run_all_agents(facility::FacilityEngine& engine,
                                                     const AgentConfig& config,
                                                     std::size_t threads = 0);

}  // namespace supremm::taccstats
