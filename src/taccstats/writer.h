// Serialization of samples into the unified self-describing raw text format.
//
// File layout:
//   $tacc_stats 2.0            protocol tag + version
//   $hostname <host>
//   $arch <arch>
//   !<type> <field;flags>...   one schema line per type
//   <time> <jobid> <mark>      sample header (mark: periodic|begin|end|rotate)
//   <type> <device> <v>...     one row per device of each type
//   ...
// Sample headers start with a digit; schema lines with '!'; metadata with
// '$'; type rows with a letter - the format needs no escaping and can be
// parsed line by line.
#pragma once

#include <cstdint>
#include <string>

#include "taccstats/record.h"
#include "taccstats/schema.h"

namespace supremm::taccstats {

/// One raw output file (a node-day, like the real tool's rotation unit).
struct RawFile {
  std::string hostname;
  std::int64_t day = 0;
  std::string content;
};

class RawWriter {
 public:
  RawWriter(std::string hostname, const SchemaRegistry& registry);

  /// The file header ($-lines plus schema lines).
  [[nodiscard]] const std::string& header() const noexcept { return header_; }

  /// Append the serialized sample to `out`.
  void append_sample(const Sample& sample, std::string& out) const;

  /// Serialized size the sample would take (for overhead accounting).
  [[nodiscard]] std::size_t sample_size(const Sample& sample) const;

 private:
  std::string hostname_;
  std::string header_;
};

}  // namespace supremm::taccstats
