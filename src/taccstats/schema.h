// Self-describing schemas for the TACC_Stats raw format.
//
// Paper §3: the tool "outputs in a unified, consistent, and self-describing
// plain-text format". Every record type carries a schema naming its fields
// and flagging each as an event counter (monotonic; consumers take deltas)
// or a gauge, with an optional unit. Schemas are serialized in the file
// header as "!<type> <field>;<flags>[,U=<unit>] ...".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "procsim/perf.h"

namespace supremm::taccstats {

/// How a field behaves over time.
enum class FieldKind : std::uint8_t {
  kEvent,  // monotonically increasing counter; rate = delta / dt
  kGauge,  // instantaneous value
};

struct FieldDef {
  std::string name;
  FieldKind kind = FieldKind::kEvent;
  std::string unit;  // "", "KB", "B", "cs" (centiseconds), ...
};

struct Schema {
  std::string type;  // "cpu", "mem", "llite", "amd64_pmc", ...
  std::vector<FieldDef> fields;

  /// Index of `name`; throws NotFoundError.
  [[nodiscard]] std::size_t field_index(std::string_view name) const;

  /// Header form: "!cpu user;E,U=cs nice;E,U=cs ...".
  [[nodiscard]] std::string serialize() const;

  /// Parse the header form (line starting with '!').
  [[nodiscard]] static Schema parse(std::string_view line);
};

/// The full set of schemas a node of architecture `arch` reports. The perf
/// type name is arch-specific ("amd64_pmc" / "intel_wtm"), mirroring the
/// real tool's per-arch types.
class SchemaRegistry {
 public:
  explicit SchemaRegistry(procsim::Arch arch);

  /// Build from parsed schemas (reader side).
  explicit SchemaRegistry(std::vector<Schema> schemas);

  [[nodiscard]] const std::vector<Schema>& all() const noexcept { return schemas_; }
  [[nodiscard]] const Schema& get(std::string_view type) const;
  [[nodiscard]] bool has(std::string_view type) const noexcept;

  /// The arch-specific perf type name.
  [[nodiscard]] static std::string perf_type_name(procsim::Arch arch);

 private:
  std::vector<Schema> schemas_;
};

}  // namespace supremm::taccstats
