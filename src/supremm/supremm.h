// Umbrella header for the SUPReMM/C++ library.
//
// A reproduction of "Enabling Comprehensive Data-Driven System Management
// for Large Computational Facilities" (SC13). Typical flow:
//
//   using namespace supremm;
//   auto spec = facility::scaled(facility::ranger(), 0.05);
//   auto catalogue = facility::standard_catalogue();
//   auto pop = facility::UserPopulation::generate(spec, catalogue, seed);
//   auto reqs = facility::generate_workload(spec, catalogue, pop, wl_cfg);
//   auto wins = facility::standard_maintenance(start, span, seed);
//   auto execs = facility::Scheduler::run(spec, reqs, wins);
//   facility::FacilityEngine engine(spec, execs, wins, start, start + span, seed);
//   auto outputs = taccstats::run_all_agents(engine, {});             // collect
//   auto acct = accounting::from_executions(spec, pop, engine.executions());
//   auto lrt = lariat::from_executions(spec, catalogue, pop, engine.executions());
//   etl::IngestPipeline pipeline(ingest_cfg);                         // ingest
//   auto result = pipeline.run(files, acct, lrt, catalogue,
//                              etl::project_science_map(pop));
//   xdmod::ProfileAnalyzer profiles(result.jobs);                     // analyze
//   auto table1 = xdmod::persistence_analysis(result.series);
#pragma once

#include "accounting/accounting.h"      // IWYU pragma: export
#include "archive/archive.h"            // IWYU pragma: export
#include "archive/tables.h"             // IWYU pragma: export
#include "common/ascii_table.h"         // IWYU pragma: export
#include "common/csv.h"                 // IWYU pragma: export
#include "common/error.h"               // IWYU pragma: export
#include "common/rng.h"                 // IWYU pragma: export
#include "common/thread_pool.h"         // IWYU pragma: export
#include "common/time.h"                // IWYU pragma: export
#include "etl/ingest.h"                 // IWYU pragma: export
#include "etl/job_summary.h"            // IWYU pragma: export
#include "etl/quality.h"                // IWYU pragma: export
#include "etl/system_series.h"         // IWYU pragma: export
#include "etl/trace.h"          // IWYU pragma: export
#include "facility/apps.h"              // IWYU pragma: export
#include "faultsim/faultsim.h"          // IWYU pragma: export
#include "facility/engine.h"            // IWYU pragma: export
#include "facility/hardware.h"          // IWYU pragma: export
#include "facility/scheduler.h"         // IWYU pragma: export
#include "facility/users.h"             // IWYU pragma: export
#include "facility/workload.h"          // IWYU pragma: export
#include "federation/catalog.h"         // IWYU pragma: export
#include "federation/executor.h"        // IWYU pragma: export
#include "federation/federation.h"      // IWYU pragma: export
#include "federation/transport.h"       // IWYU pragma: export
#include "federation/wire.h"            // IWYU pragma: export
#include "lariat/lariat.h"              // IWYU pragma: export
#include "loglib/loglib.h"              // IWYU pragma: export
#include "pipeline/pipeline.h"          // IWYU pragma: export
#include "procsim/counters.h"           // IWYU pragma: export
#include "service/request.h"            // IWYU pragma: export
#include "service/service.h"            // IWYU pragma: export
#include "procsim/perf.h"               // IWYU pragma: export
#include "stats/correlation.h"          // IWYU pragma: export
#include "stats/descriptive.h"          // IWYU pragma: export
#include "stats/kde.h"                  // IWYU pragma: export
#include "stats/regression.h"           // IWYU pragma: export
#include "stats/structure.h"            // IWYU pragma: export
#include "taccstats/agent.h"            // IWYU pragma: export
#include "taccstats/reader.h"           // IWYU pragma: export
#include "taccstats/writer.h"           // IWYU pragma: export
#include "warehouse/partial.h"          // IWYU pragma: export
#include "warehouse/query.h"            // IWYU pragma: export
#include "warehouse/rollup.h"           // IWYU pragma: export
#include "warehouse/table.h"            // IWYU pragma: export
#include "xdmod/advisor.h"              // IWYU pragma: export
#include "xdmod/distributions.h"        // IWYU pragma: export
#include "xdmod/efficiency.h"         // IWYU pragma: export
#include "xdmod/export.h"             // IWYU pragma: export
#include "xdmod/faults.h"           // IWYU pragma: export
#include "xdmod/persistence.h"          // IWYU pragma: export
#include "xdmod/profiles.h"           // IWYU pragma: export
#include "xdmod/realm.h"             // IWYU pragma: export
#include "xdmod/reports.h"              // IWYU pragma: export
#include "xdmod/selector.h"             // IWYU pragma: export
#include "xdmod/timeseries.h"           // IWYU pragma: export
