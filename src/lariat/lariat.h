// Lariat: per-job launch summaries.
//
// Paper §1.3: "Another tool called Lariat generates unified summary data on
// the execution of a job such as which libraries are called." Records are
// serialized one per line as key=value pairs (libs comma separated):
//   jobid=17 user=user0003 exe=namd2 nodes=16 cores=256
//     libs=libmpi.so,libfftw3.so workdir=/scratch/user0003/run start=360000
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/time.h"
#include "facility/apps.h"
#include "facility/jobs.h"
#include "facility/users.h"

namespace supremm::lariat {

struct LariatRecord {
  facility::JobId job_id = 0;
  std::string user;
  std::string exe;  // binary name, e.g. "namd2"
  std::size_t nodes = 0;
  std::size_t cores = 0;
  std::vector<std::string> libs;
  std::string workdir;
  common::TimePoint start = 0;
};

[[nodiscard]] std::string serialize(const LariatRecord& r);
[[nodiscard]] LariatRecord parse(std::string_view line);
[[nodiscard]] std::string serialize_log(const std::vector<LariatRecord>& recs);
[[nodiscard]] std::vector<LariatRecord> parse_log(std::string_view log);

/// Binary name for an application (e.g. NAMD -> "namd2").
[[nodiscard]] std::string exe_for_app(std::string_view app_name);

/// Application (catalogue) name for a binary, or "" when unknown.
[[nodiscard]] std::string app_for_exe(const std::vector<facility::AppSignature>& catalogue,
                                      std::string_view exe);

/// Typical linked libraries for an application.
[[nodiscard]] std::vector<std::string> libs_for_app(std::string_view app_name);

/// Build lariat records for scheduled executions.
[[nodiscard]] std::vector<LariatRecord> from_executions(
    const facility::ClusterSpec& spec, const std::vector<facility::AppSignature>& catalogue,
    const facility::UserPopulation& population,
    const std::vector<facility::JobExecution>& execs);

/// Fast job-id lookup over a record set.
class LariatIndex {
 public:
  explicit LariatIndex(const std::vector<LariatRecord>& recs);
  [[nodiscard]] const LariatRecord* find(facility::JobId id) const noexcept;

 private:
  std::vector<const LariatRecord*> sorted_;
};

}  // namespace supremm::lariat
