#include "lariat/lariat.h"

#include <algorithm>
#include <cctype>

#include "common/error.h"
#include "common/strings.h"

namespace supremm::lariat {

std::string serialize(const LariatRecord& r) {
  std::string libs = common::join(r.libs, ",");
  return common::strprintf(
      "jobid=%lld user=%s exe=%s nodes=%zu cores=%zu libs=%s workdir=%s start=%lld",
      static_cast<long long>(r.job_id), r.user.c_str(), r.exe.c_str(), r.nodes, r.cores,
      libs.c_str(), r.workdir.c_str(), static_cast<long long>(r.start));
}

LariatRecord parse(std::string_view line) {
  LariatRecord r;
  bool saw_jobid = false;
  for (const auto& tok : common::split_ws(line)) {
    const auto eq = tok.find('=');
    if (eq == std::string_view::npos) throw common::ParseError("lariat token without '='");
    const std::string_view key = tok.substr(0, eq);
    const std::string_view val = tok.substr(eq + 1);
    if (key == "jobid") {
      r.job_id = common::parse_i64(val);
      saw_jobid = true;
    } else if (key == "user") {
      r.user = std::string(val);
    } else if (key == "exe") {
      r.exe = std::string(val);
    } else if (key == "nodes") {
      r.nodes = static_cast<std::size_t>(common::parse_i64(val));
    } else if (key == "cores") {
      r.cores = static_cast<std::size_t>(common::parse_i64(val));
    } else if (key == "libs") {
      for (const auto& l : common::split(val, ',')) {
        if (!l.empty()) r.libs.emplace_back(l);
      }
    } else if (key == "workdir") {
      r.workdir = std::string(val);
    } else if (key == "start") {
      r.start = common::parse_i64(val);
    } else {
      throw common::ParseError("unknown lariat key '" + std::string(key) + "'");
    }
  }
  if (!saw_jobid) throw common::ParseError("lariat record without jobid");
  return r;
}

std::string serialize_log(const std::vector<LariatRecord>& recs) {
  std::string out;
  for (const auto& r : recs) {
    out += serialize(r);
    out += '\n';
  }
  return out;
}

std::vector<LariatRecord> parse_log(std::string_view log) {
  std::vector<LariatRecord> out;
  std::size_t pos = 0;
  while (pos < log.size()) {
    std::size_t eol = log.find('\n', pos);
    if (eol == std::string_view::npos) eol = log.size();
    const std::string_view line = log.substr(pos, eol - pos);
    pos = eol + 1;
    if (!common::trim(line).empty()) out.push_back(parse(line));
  }
  return out;
}

std::string exe_for_app(std::string_view app_name) {
  if (app_name == "NAMD") return "namd2";
  if (app_name == "AMBER") return "pmemd.MPI";
  if (app_name == "GROMACS") return "mdrun_mpi";
  if (app_name == "WRF") return "wrf.exe";
  if (app_name == "LAMMPS") return "lmp_mpi";
  if (app_name == "QESPRESSO") return "pw.x";
  if (app_name == "QCHEM") return "qchem.exe";
  if (app_name == "CACTUS") return "cactus_sim";
  if (app_name == "COSMOS") return "cosmos_nbody";
  if (app_name == "OPENFOAM") return "simpleFoam";
  if (app_name == "DATAMINER") return "mine.py";
  if (app_name == "UNDERSUB") return "a.out";
  std::string exe(app_name);
  std::transform(exe.begin(), exe.end(), exe.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return exe;
}

std::string app_for_exe(const std::vector<facility::AppSignature>& catalogue,
                        std::string_view exe) {
  for (const auto& app : catalogue) {
    if (exe_for_app(app.name) == exe) return app.name;
  }
  return {};
}

std::vector<std::string> libs_for_app(std::string_view app_name) {
  std::vector<std::string> libs = {"libmpi.so.1", "libc.so.6", "libm.so.6"};
  if (app_name == "NAMD" || app_name == "GROMACS" || app_name == "LAMMPS") {
    libs.push_back("libfftw3.so.3");
  }
  if (app_name == "QESPRESSO" || app_name == "QCHEM" || app_name == "AMBER") {
    libs.push_back("libmkl_core.so");
    libs.push_back("liblapack.so.3");
  }
  if (app_name == "WRF" || app_name == "COSMOS" || app_name == "CACTUS") {
    libs.push_back("libhdf5.so.7");
    libs.push_back("libnetcdf.so.7");
  }
  if (app_name == "DATAMINER") {
    libs.push_back("libpython2.7.so");
    libs.push_back("libhdf5.so.7");
  }
  return libs;
}

std::vector<LariatRecord> from_executions(
    const facility::ClusterSpec& spec, const std::vector<facility::AppSignature>& catalogue,
    const facility::UserPopulation& population,
    const std::vector<facility::JobExecution>& execs) {
  std::vector<LariatRecord> out;
  out.reserve(execs.size());
  for (const auto& e : execs) {
    const auto& app = catalogue.at(e.req.app);
    const auto& user = population.user(e.req.user);
    LariatRecord r;
    r.job_id = e.req.id;
    r.user = user.name;
    r.exe = exe_for_app(app.name);
    r.nodes = e.node_ids.size();
    r.cores = e.node_ids.size() * spec.node.cores();
    r.libs = libs_for_app(app.name);
    r.workdir = "/scratch/" + user.name + "/run";
    r.start = e.start;
    out.push_back(std::move(r));
  }
  return out;
}

LariatIndex::LariatIndex(const std::vector<LariatRecord>& recs) {
  sorted_.reserve(recs.size());
  for (const auto& r : recs) sorted_.push_back(&r);
  std::sort(sorted_.begin(), sorted_.end(),
            [](const LariatRecord* a, const LariatRecord* b) { return a->job_id < b->job_id; });
}

const LariatRecord* LariatIndex::find(facility::JobId id) const noexcept {
  const auto it = std::lower_bound(
      sorted_.begin(), sorted_.end(), id,
      [](const LariatRecord* r, facility::JobId v) { return r->job_id < v; });
  if (it != sorted_.end() && (*it)->job_id == id) return *it;
  return nullptr;
}

}  // namespace supremm::lariat
