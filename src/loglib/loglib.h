// Rationalized system logs.
//
// Paper §1.3: "a rationalized version of syslog that adds job ID information
// to each message and also maps all of the diverse message types generated
// by the software stack into a single uniform format." This module provides
// (a) a generator of raw syslog lines in the heterogeneous formats real
// stacks emit (kernel OOM/soft-lockup, LustreError, MCE, batch daemon), (b)
// a rationalizer that pattern-matches them into one uniform record tagged
// with the job running on the host at that instant, and (c) the uniform
// serialization:
//   <time> <host> job=<id> fac=<facility> sev=<SEV> code=<CODE> <message>
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/time.h"
#include "facility/apps.h"
#include "facility/hardware.h"
#include "facility/jobs.h"

namespace supremm::loglib {

enum class Severity : std::uint8_t { kInfo = 0, kWarning, kError, kCritical };

[[nodiscard]] std::string_view severity_name(Severity s) noexcept;
[[nodiscard]] Severity severity_from_name(std::string_view name);

/// A line as emitted by some component, in that component's own format.
struct RawLogLine {
  common::TimePoint time = 0;
  std::string host;
  std::string text;
};

/// The uniform record every raw line is mapped into.
struct RationalizedRecord {
  common::TimePoint time = 0;
  std::string host;
  facility::JobId job_id = 0;  // 0 when no job ran on the host at `time`
  std::string facility;        // "kern", "lustre", "mce", "sched", "other"
  Severity severity = Severity::kInfo;
  std::string code;  // "OOM_KILL", "SOFT_LOCKUP", "LUSTRE_ERR", "MCE",
                     // "JOB_START", "JOB_EXIT", "UNKNOWN"
  std::string message;
};

[[nodiscard]] std::string serialize(const RationalizedRecord& r);
[[nodiscard]] RationalizedRecord parse(std::string_view line);

/// Resolves which job ran on a host at a given time (built once from the
/// scheduler output; O(log n) per query).
class JobResolver {
 public:
  JobResolver(const facility::ClusterSpec& spec,
              const std::vector<facility::JobExecution>& execs);

  [[nodiscard]] facility::JobId job_at(const std::string& host,
                                       common::TimePoint t) const noexcept;

 private:
  struct Span {
    common::TimePoint start;
    common::TimePoint end;
    facility::JobId job;
  };
  std::unordered_map<std::string, std::vector<Span>> by_host_;
};

/// Map one raw line into the uniform format, tagging the job id.
[[nodiscard]] RationalizedRecord rationalize(const RawLogLine& line,
                                             const JobResolver& resolver);

/// Generate the raw syslog stream a run would produce: job start/exit lines,
/// OOM kills for jobs that failed while near memory capacity, soft lockups
/// for pathologically idle jobs, plus background Lustre errors and machine
/// check events. Sorted by time; deterministic in `seed`.
[[nodiscard]] std::vector<RawLogLine> generate_syslog(
    const facility::ClusterSpec& spec, const std::vector<facility::AppSignature>& catalogue,
    const std::vector<facility::JobExecution>& execs, std::uint64_t seed);

}  // namespace supremm::loglib
