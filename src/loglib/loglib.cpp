#include "loglib/loglib.h"

#include <algorithm>

#include "common/error.h"
#include "common/rng.h"
#include "common/strings.h"
#include "lariat/lariat.h"

namespace supremm::loglib {

std::string_view severity_name(Severity s) noexcept {
  switch (s) {
    case Severity::kInfo:
      return "INFO";
    case Severity::kWarning:
      return "WARN";
    case Severity::kError:
      return "ERROR";
    case Severity::kCritical:
      return "CRIT";
  }
  return "INFO";
}

Severity severity_from_name(std::string_view name) {
  if (name == "INFO") return Severity::kInfo;
  if (name == "WARN") return Severity::kWarning;
  if (name == "ERROR") return Severity::kError;
  if (name == "CRIT") return Severity::kCritical;
  throw common::ParseError("unknown severity '" + std::string(name) + "'");
}

std::string serialize(const RationalizedRecord& r) {
  return common::strprintf("%lld %s job=%lld fac=%s sev=%s code=%s %s",
                           static_cast<long long>(r.time), r.host.c_str(),
                           static_cast<long long>(r.job_id), r.facility.c_str(),
                           std::string(severity_name(r.severity)).c_str(), r.code.c_str(),
                           r.message.c_str());
}

RationalizedRecord parse(std::string_view line) {
  const auto parts = common::split_ws(line);
  if (parts.size() < 6) throw common::ParseError("short rationalized record");
  RationalizedRecord r;
  r.time = common::parse_i64(parts[0]);
  r.host = std::string(parts[1]);
  auto expect = [](std::string_view tok, std::string_view key) -> std::string_view {
    if (!common::starts_with(tok, key)) {
      throw common::ParseError("expected '" + std::string(key) + "' in rationalized record");
    }
    return tok.substr(key.size());
  };
  r.job_id = common::parse_i64(expect(parts[2], "job="));
  r.facility = std::string(expect(parts[3], "fac="));
  r.severity = severity_from_name(expect(parts[4], "sev="));
  r.code = std::string(expect(parts[5], "code="));
  // Message: remainder of the line after the code token.
  const std::size_t code_pos = line.find(parts[5]);
  const std::size_t msg_pos = code_pos + parts[5].size();
  if (msg_pos < line.size()) r.message = std::string(common::trim(line.substr(msg_pos)));
  return r;
}

JobResolver::JobResolver(const facility::ClusterSpec& spec,
                         const std::vector<facility::JobExecution>& execs) {
  for (const auto& e : execs) {
    for (const std::uint32_t n : e.node_ids) {
      by_host_[facility::node_hostname(spec, n)].push_back({e.start, e.end, e.req.id});
    }
  }
  for (auto& [host, spans] : by_host_) {
    std::sort(spans.begin(), spans.end(),
              [](const Span& a, const Span& b) { return a.start < b.start; });
  }
}

facility::JobId JobResolver::job_at(const std::string& host,
                                    common::TimePoint t) const noexcept {
  const auto it = by_host_.find(host);
  if (it == by_host_.end()) return 0;
  const auto& spans = it->second;
  auto sp = std::upper_bound(spans.begin(), spans.end(), t,
                             [](common::TimePoint v, const Span& s) { return v < s.start; });
  if (sp == spans.begin()) return 0;
  --sp;
  // A job's end instant still attributes to the job (exit messages land at
  // exactly `end`).
  return (t >= sp->start && t <= sp->end) ? sp->job : 0;
}

RationalizedRecord rationalize(const RawLogLine& line, const JobResolver& resolver) {
  RationalizedRecord r;
  r.time = line.time;
  r.host = line.host;
  r.job_id = resolver.job_at(line.host, line.time);
  r.message = line.text;

  const std::string& t = line.text;
  auto contains = [&t](std::string_view pat) { return t.find(pat) != std::string::npos; };

  if (contains("Out of memory: Kill process")) {
    r.facility = "kern";
    r.severity = Severity::kCritical;
    r.code = "OOM_KILL";
  } else if (contains("soft lockup")) {
    r.facility = "kern";
    r.severity = Severity::kError;
    r.code = "SOFT_LOCKUP";
  } else if (contains("LustreError")) {
    r.facility = "lustre";
    r.severity = Severity::kError;
    r.code = "LUSTRE_ERR";
  } else if (contains("[Hardware Error]") || common::starts_with(t, "mce:")) {
    r.facility = "mce";
    r.severity = Severity::kWarning;
    r.code = "MCE";
  } else if (contains("starting job")) {
    r.facility = "sched";
    r.severity = Severity::kInfo;
    r.code = "JOB_START";
  } else if (contains("exited with status")) {
    r.facility = "sched";
    r.severity = Severity::kInfo;
    r.code = "JOB_EXIT";
  } else {
    r.facility = "other";
    r.severity = Severity::kInfo;
    r.code = "UNKNOWN";
  }
  return r;
}

std::vector<RawLogLine> generate_syslog(const facility::ClusterSpec& spec,
                                        const std::vector<facility::AppSignature>& catalogue,
                                        const std::vector<facility::JobExecution>& execs,
                                        std::uint64_t seed) {
  std::vector<RawLogLine> out;
  common::TimePoint t_min = 0;
  common::TimePoint t_max = 0;

  for (const auto& e : execs) {
    if (e.node_ids.empty()) continue;
    const std::string host0 = facility::node_hostname(spec, e.node_ids[0]);
    const std::string exe = lariat::exe_for_app(catalogue.at(e.req.app).name);
    common::RngStream rng(seed, "syslog", static_cast<std::uint64_t>(e.req.id));

    out.push_back({e.start, host0,
                   common::strprintf("sge_execd[%lld]: starting job %lld",
                                     2000 + static_cast<long long>(e.req.id % 3000),
                                     static_cast<long long>(e.req.id))});
    const int status = e.exit == facility::ExitKind::kOk ? 0 : 1;
    out.push_back({e.end, host0,
                   common::strprintf("sge_execd[%lld]: job %lld exited with status %d",
                                     2000 + static_cast<long long>(e.req.id % 3000),
                                     static_cast<long long>(e.req.id), status)});

    // OOM kill shortly before the end of failed jobs running near capacity.
    if (e.exit == facility::ExitKind::kFailed &&
        e.req.behavior.mem_gb > spec.node.mem_gb * 0.85) {
      const auto host = facility::node_hostname(
          spec, e.node_ids[static_cast<std::size_t>(rng.uniform_int(
                    0, static_cast<std::int64_t>(e.node_ids.size()) - 1))]);
      out.push_back({std::max(e.start, e.end - 30), host,
                     common::strprintf(
                         "kernel: Out of memory: Kill process %lld (%s) score %lld or "
                         "sacrifice child",
                         static_cast<long long>(rng.uniform_int(2000, 30000)), exe.c_str(),
                         static_cast<long long>(rng.uniform_int(700, 999)))});
    }
    // Soft lockups for pathologically idle jobs (the paper: anomalous
    // patterns "may sometimes induce system hangups though soft lockups").
    if (e.req.behavior.idle_frac > 0.8 && rng.chance(0.08)) {
      out.push_back(
          {e.start + e.runtime() / 2, host0,
           common::strprintf("kernel: BUG: soft lockup - CPU#%lld stuck for %llds! "
                             "[%s:%lld]",
                             static_cast<long long>(rng.uniform_int(0, 15)),
                             static_cast<long long>(rng.uniform_int(22, 120)), exe.c_str(),
                             static_cast<long long>(rng.uniform_int(2000, 30000)))});
    }
    t_min = std::min(t_min == 0 ? e.start : t_min, e.start);
    t_max = std::max(t_max, e.end);
  }

  // Background Lustre errors and MCEs across the facility.
  common::RngStream bg(seed, "syslog-bg", 0);
  for (common::TimePoint t = t_min; t < t_max;) {
    t += static_cast<common::Duration>(bg.exponential(6.0 * common::kHour));
    if (t >= t_max) break;
    const auto node = static_cast<std::size_t>(
        bg.uniform_int(0, static_cast<std::int64_t>(spec.node_count) - 1));
    const std::string host = facility::node_hostname(spec, node);
    if (bg.chance(0.75)) {
      out.push_back({t, host,
                     common::strprintf(
                         "LustreError: 11-0: scratch-OST%04lld-osc: ost_write operation "
                         "failed with -%lld",
                         static_cast<long long>(bg.uniform_int(0, 63)),
                         static_cast<long long>(bg.uniform_int(5, 122)))});
    } else {
      out.push_back({t, host, "mce: [Hardware Error]: Machine check events logged"});
    }
  }

  std::sort(out.begin(), out.end(), [](const RawLogLine& a, const RawLogLine& b) {
    return a.time != b.time ? a.time < b.time : a.host < b.host;
  });
  return out;
}

}  // namespace supremm::loglib
