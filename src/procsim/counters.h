// Emulated procfs/sysfs counter state for one compute node.
//
// This is the boundary between the facility simulator (which *writes*
// counters as jobs execute) and the TACC_Stats collector (which *reads* them
// exactly as the real tool reads /proc, /sys and MSRs). Event counters are
// monotonic; gauges reflect instantaneous state. The subsystem inventory
// mirrors the paper's §2 list: performance counters (per core), block device
// statistics (per device), scheduler accounting (per CPU), InfiniBand usage,
// Lustre filesystem usage (per mount), Lustre network (LNET) usage, memory
// usage (per socket), network device usage (per device), NUMA statistics
// (per socket), process statistics, SysV shared memory, ram-backed
// filesystem usage (per mount), dentry/file/inode cache usage and virtual
// memory statistics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "procsim/perf.h"

namespace supremm::procsim {

/// Per-core scheduler accounting, /proc/stat style, in centiseconds.
struct CoreCpu {
  std::uint64_t user = 0;
  std::uint64_t nice = 0;
  std::uint64_t system = 0;
  std::uint64_t idle = 0;
  std::uint64_t iowait = 0;
  std::uint64_t irq = 0;
  std::uint64_t softirq = 0;
};

/// Per-socket memory, /sys/devices/system/node style, in kilobytes. Gauges.
struct SocketMem {
  std::uint64_t mem_total = 0;
  std::uint64_t mem_used = 0;  // includes buffers + cached, like the paper's mem_used
  std::uint64_t mem_free = 0;
  std::uint64_t cached = 0;
  std::uint64_t buffers = 0;
  std::uint64_t anon_pages = 0;
  std::uint64_t slab = 0;
};

/// /proc/vmstat counters (pages).
struct VmStats {
  std::uint64_t pgpgin = 0;
  std::uint64_t pgpgout = 0;
  std::uint64_t pswpin = 0;
  std::uint64_t pswpout = 0;
  std::uint64_t pgfault = 0;
  std::uint64_t pgmajfault = 0;
};

/// /proc/net/dev counters for one interface.
struct NetDev {
  std::string name;  // "eth0", "ib0"
  std::uint64_t rx_bytes = 0;
  std::uint64_t rx_packets = 0;
  std::uint64_t rx_errors = 0;
  std::uint64_t tx_bytes = 0;
  std::uint64_t tx_packets = 0;
  std::uint64_t tx_errors = 0;
};

/// /proc/diskstats counters for one block device (sectors are 512 B).
struct BlockDev {
  std::string name;  // "sda"
  std::uint64_t rd_ios = 0;
  std::uint64_t rd_sectors = 0;
  std::uint64_t wr_ios = 0;
  std::uint64_t wr_sectors = 0;
  std::uint64_t io_ticks = 0;  // ms the device was busy
};

/// InfiniBand port counters (sysfs ib counters; bytes, not 4-byte words).
struct IbPort {
  std::uint64_t rx_bytes = 0;
  std::uint64_t rx_packets = 0;
  std::uint64_t tx_bytes = 0;
  std::uint64_t tx_packets = 0;
};

/// Lustre client per-mount counters (llite stats).
struct LustreMount {
  std::string name;  // "scratch", "work", "share"
  std::uint64_t read_bytes = 0;
  std::uint64_t write_bytes = 0;
  std::uint64_t open = 0;
  std::uint64_t close = 0;
  std::uint64_t getattr = 0;
};

/// NFS client counters (nfsstat-style; Lonestar4 mounts home over NFS).
struct NfsStats {
  std::uint64_t rpc_calls = 0;
  std::uint64_t read_bytes = 0;
  std::uint64_t write_bytes = 0;
  std::uint64_t getattr = 0;
};

/// Lustre networking (LNET) counters.
struct LnetStats {
  std::uint64_t rx_bytes = 0;
  std::uint64_t tx_bytes = 0;
  std::uint64_t rx_msgs = 0;
  std::uint64_t tx_msgs = 0;
};

/// Per-socket NUMA allocation counters (/sys/devices/system/node/nodeN/numastat).
struct NumaNode {
  std::uint64_t numa_hit = 0;
  std::uint64_t numa_miss = 0;
  std::uint64_t numa_foreign = 0;
  std::uint64_t local_node = 0;
  std::uint64_t other_node = 0;
};

/// Aggregated hardware + software IRQ delivery counts.
struct IrqStats {
  std::uint64_t hw_total = 0;
  std::uint64_t timer = 0;
  std::uint64_t net_rx = 0;
  std::uint64_t sw_total = 0;
};

/// Process / load statistics ("ps" type in TACC_Stats).
struct PsStats {
  std::uint64_t ctxt = 0;            // context switches (counter)
  std::uint64_t processes = 0;       // forks (counter)
  std::uint64_t load_1 = 0;          // load average * 100 (gauge)
  std::uint64_t load_5 = 0;
  std::uint64_t load_15 = 0;
  std::uint64_t nr_running = 0;      // gauge
  std::uint64_t nr_threads = 0;      // gauge
};

/// SysV shared memory usage (gauges).
struct SysvShm {
  std::uint64_t segments = 0;
  std::uint64_t bytes = 0;
};

/// Ram-backed filesystem usage per mount (gauge, bytes).
struct TmpfsMount {
  std::string name;  // "/dev/shm", "/tmp"
  std::uint64_t bytes_used = 0;
};

/// Dentry / open-file / inode cache usage (gauges).
struct VfsCache {
  std::uint64_t dentry_use = 0;
  std::uint64_t file_use = 0;
  std::uint64_t inode_use = 0;
};

/// All counter state of one node. The facility engine mutates it through the
/// public members; collectors take a const reference. Nodes are advanced in
/// parallel only across *distinct* NodeCounters instances (no shared state).
class NodeCounters {
 public:
  /// `mem_total_kb` is the whole-node capacity, split evenly across sockets.
  NodeCounters(std::string hostname, Arch arch, std::size_t sockets,
               std::size_t cores_per_socket, std::uint64_t mem_total_kb);

  [[nodiscard]] const std::string& hostname() const noexcept { return hostname_; }
  [[nodiscard]] Arch arch() const noexcept { return arch_; }
  [[nodiscard]] std::size_t sockets() const noexcept { return mem.size(); }
  [[nodiscard]] std::size_t cores() const noexcept { return cpu.size(); }
  [[nodiscard]] std::size_t cores_per_socket() const noexcept {
    return cpu.size() / mem.size();
  }
  [[nodiscard]] std::uint64_t mem_total_kb() const noexcept;

  /// Set per-socket used memory from a whole-node figure; buffers/cache are
  /// apportioned with the given fraction of "used".
  void set_mem_used_kb(std::uint64_t node_used_kb, double cached_fraction = 0.3);

  /// Find a device by name; throws NotFoundError when absent.
  [[nodiscard]] NetDev& net(const std::string& name);
  [[nodiscard]] const NetDev& net(const std::string& name) const;
  [[nodiscard]] LustreMount& lustre(const std::string& name);
  [[nodiscard]] const LustreMount& lustre(const std::string& name) const;

  // Counter blocks (public by design: this is a register file, not an
  // abstraction; the engine and collectors are the only writers/readers).
  std::vector<CoreCpu> cpu;            // per core
  std::vector<PerfCore> perf;          // per core
  std::vector<SocketMem> mem;          // per socket
  std::vector<NumaNode> numa;          // per socket
  VmStats vm;
  std::vector<NetDev> net_devs;
  std::vector<BlockDev> block_devs;
  IbPort ib;
  std::vector<LustreMount> lustre_mounts;
  LnetStats lnet;
  NfsStats nfs;
  bool has_nfs = false;  // whether the node mounts NFS (schema emitted only then)
  IrqStats irq;
  PsStats ps;
  SysvShm sysv_shm;
  std::vector<TmpfsMount> tmpfs_mounts;
  VfsCache vfs;

 private:
  std::string hostname_;
  Arch arch_;
};

}  // namespace supremm::procsim
