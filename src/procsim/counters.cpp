#include "procsim/counters.h"

#include <algorithm>

#include "common/error.h"

namespace supremm::procsim {

NodeCounters::NodeCounters(std::string hostname, Arch arch, std::size_t sockets,
                           std::size_t cores_per_socket, std::uint64_t mem_total_kb)
    : hostname_(std::move(hostname)), arch_(arch) {
  if (sockets == 0 || cores_per_socket == 0) {
    throw common::InvalidArgument("node needs >= 1 socket and core");
  }
  cpu.resize(sockets * cores_per_socket);
  perf.assign(sockets * cores_per_socket, PerfCore(arch));
  mem.resize(sockets);
  numa.resize(sockets);
  const std::uint64_t per_socket = mem_total_kb / sockets;
  for (auto& m : mem) {
    m.mem_total = per_socket;
    m.mem_free = per_socket;
  }
}

std::uint64_t NodeCounters::mem_total_kb() const noexcept {
  std::uint64_t t = 0;
  for (const auto& m : mem) t += m.mem_total;
  return t;
}

void NodeCounters::set_mem_used_kb(std::uint64_t node_used_kb, double cached_fraction) {
  const std::uint64_t total = mem_total_kb();
  node_used_kb = std::min(node_used_kb, total);
  const std::size_t n = mem.size();
  std::uint64_t remaining = node_used_kb;
  for (std::size_t s = 0; s < n; ++s) {
    auto& m = mem[s];
    const std::uint64_t share =
        s + 1 == n ? remaining : std::min<std::uint64_t>(remaining, node_used_kb / n);
    remaining -= share;
    const std::uint64_t used = std::min(share, m.mem_total);
    m.mem_used = used;
    m.mem_free = m.mem_total - used;
    m.cached = static_cast<std::uint64_t>(static_cast<double>(used) * cached_fraction);
    m.buffers = m.cached / 8;
    m.anon_pages = used > m.cached + m.buffers ? used - m.cached - m.buffers : 0;
    m.slab = used / 50;
  }
}

namespace {
template <typename V>
auto& find_named(V& devs, const std::string& name, const char* what) {
  for (auto& d : devs) {
    if (d.name == name) return d;
  }
  throw common::NotFoundError(std::string(what) + " '" + name + "'");
}
}  // namespace

NetDev& NodeCounters::net(const std::string& name) {
  return find_named(net_devs, name, "net device");
}
const NetDev& NodeCounters::net(const std::string& name) const {
  return find_named(net_devs, name, "net device");
}
LustreMount& NodeCounters::lustre(const std::string& name) {
  return find_named(lustre_mounts, name, "lustre mount");
}
const LustreMount& NodeCounters::lustre(const std::string& name) const {
  return find_named(lustre_mounts, name, "lustre mount");
}

}  // namespace supremm::procsim
