#include "procsim/perf.h"

#include "common/error.h"

namespace supremm::procsim {

std::string_view arch_name(Arch a) noexcept {
  switch (a) {
    case Arch::kAmd10h:
      return "amd64_fam10h";
    case Arch::kIntelWestmere:
      return "intel_wtm";
  }
  return "unknown";
}

std::string_view perf_event_name(PerfEvent e) noexcept {
  switch (e) {
    case PerfEvent::kNone:
      return "NONE";
    case PerfEvent::kFlops:
      return "SSE_FLOPS";
    case PerfEvent::kMemAccesses:
      return "MEM_ACCESSES";
    case PerfEvent::kDcacheFills:
      return "DCACHE_SYS_FILLS";
    case PerfEvent::kNumaTraffic:
      return "NUMA_TRAFFIC";
    case PerfEvent::kL1DHits:
      return "L1D_HITS";
    case PerfEvent::kUserCustom:
      return "USER_CUSTOM";
  }
  return "unknown";
}

bool arch_supports(Arch arch, PerfEvent event) noexcept {
  switch (event) {
    case PerfEvent::kNone:
    case PerfEvent::kFlops:
    case PerfEvent::kNumaTraffic:
    case PerfEvent::kUserCustom:
      return true;
    case PerfEvent::kMemAccesses:
    case PerfEvent::kDcacheFills:
      return arch == Arch::kAmd10h;
    case PerfEvent::kL1DHits:
      return arch == Arch::kIntelWestmere;
  }
  return false;
}

std::vector<PerfEvent> tacc_stats_event_set(Arch arch) {
  switch (arch) {
    case Arch::kAmd10h:
      return {PerfEvent::kFlops, PerfEvent::kMemAccesses, PerfEvent::kDcacheFills,
              PerfEvent::kNumaTraffic};
    case Arch::kIntelWestmere:
      return {PerfEvent::kFlops, PerfEvent::kNumaTraffic, PerfEvent::kL1DHits};
  }
  return {};
}

void PerfCore::program(std::size_t slot, PerfEvent event) {
  if (slot >= kPerfCountersPerCore) throw common::InvalidArgument("perf slot out of range");
  if (!arch_supports(arch_, event)) {
    throw common::InvalidArgument(std::string("perf event ") +
                                  std::string(perf_event_name(event)) + " unsupported on " +
                                  std::string(arch_name(arch_)));
  }
  regs_[slot].control = event;
  regs_[slot].value = 0;
}

std::uint64_t PerfCore::read(std::size_t slot) const {
  if (slot >= kPerfCountersPerCore) throw common::InvalidArgument("perf slot out of range");
  return regs_[slot].value;
}

std::size_t PerfCore::slot_of(PerfEvent event) const noexcept {
  for (std::size_t i = 0; i < regs_.size(); ++i) {
    if (regs_[i].control == event) return i;
  }
  return npos;
}

void PerfCore::deliver(PerfEvent event, std::uint64_t count) noexcept {
  for (auto& r : regs_) {
    if (r.control == event) r.value += count;
  }
}

}  // namespace supremm::procsim
