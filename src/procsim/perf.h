// CPU hardware performance counter emulation.
//
// Paper §3: "Before beginning each job, TACC_Stats reprograms the
// performance counters it uses. On AMD Opteron, the events are FLOPS, memory
// accesses, data cache fills and SMP/NUMA traffic. On Intel
// Nehalem/Westmere, the events are FLOPS, SMP/NUMA traffic, and L1 data
// cache hits. At the periodic invocations, TACC_Stats only reads values from
// performance registers without reprogramming them to avoid overriding
// measurements initiated by users."
//
// We model a per-core register file of programmable counters: each register
// has a control (event select) and a monotonically increasing value. The
// facility engine feeds event occurrences; a register accumulates only the
// event it is currently programmed for. Writing the control register clears
// the value, exactly like MSR-based PMUs.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

namespace supremm::procsim {

/// Microarchitecture families the paper's clusters used.
enum class Arch : std::uint8_t {
  kAmd10h,         // Ranger: AMD Opteron (Barcelona, family 10h)
  kIntelWestmere,  // Lonestar4: Intel Xeon 5680 (Westmere-EP)
};

[[nodiscard]] std::string_view arch_name(Arch a) noexcept;

/// Countable events. Which events exist depends on the architecture.
enum class PerfEvent : std::uint8_t {
  kNone = 0,
  kFlops,         // retired floating point (SSE) operations
  kMemAccesses,   // memory accesses (AMD)
  kDcacheFills,   // data cache fills (AMD)
  kNumaTraffic,   // SMP/NUMA traffic (both)
  kL1DHits,       // L1 data cache hits (Intel)
  kUserCustom,    // stands in for a user-programmed event we must not clobber
};

[[nodiscard]] std::string_view perf_event_name(PerfEvent e) noexcept;

/// Whether `arch` can count `event`.
[[nodiscard]] bool arch_supports(Arch arch, PerfEvent event) noexcept;

/// The event set TACC_Stats programs at job begin on `arch` (paper §3).
[[nodiscard]] std::vector<PerfEvent> tacc_stats_event_set(Arch arch);

inline constexpr std::size_t kPerfCountersPerCore = 4;

/// One programmable counter: control (event select) + 48-bit-style value.
struct PerfRegister {
  PerfEvent control = PerfEvent::kNone;
  std::uint64_t value = 0;
};

/// Per-core register file.
class PerfCore {
 public:
  explicit PerfCore(Arch arch) : arch_(arch) {}

  [[nodiscard]] Arch arch() const noexcept { return arch_; }
  [[nodiscard]] const std::array<PerfRegister, kPerfCountersPerCore>& registers() const noexcept {
    return regs_;
  }

  /// Program register `slot` to count `event`; clears its value. Throws on
  /// unsupported events or bad slots.
  void program(std::size_t slot, PerfEvent event);

  /// Read a register value (periodic collection path; never reprograms).
  [[nodiscard]] std::uint64_t read(std::size_t slot) const;

  /// Register currently counting `event`, or npos.
  [[nodiscard]] std::size_t slot_of(PerfEvent event) const noexcept;
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// Deliver `count` occurrences of `event`; only a register programmed for
  /// that event accumulates.
  void deliver(PerfEvent event, std::uint64_t count) noexcept;

 private:
  Arch arch_;
  std::array<PerfRegister, kPerfCountersPerCore> regs_{};
};

}  // namespace supremm::procsim
