#include "etl/trace.h"

#include <algorithm>
#include <map>

#include "common/error.h"
#include "etl/pair.h"
#include "taccstats/reader.h"

namespace supremm::etl {

std::vector<TracePoint> extract_job_trace(const std::vector<taccstats::RawFile>& files,
                                          facility::JobId id, common::Duration interval) {
  if (interval <= 0) throw common::InvalidArgument("trace interval must be positive");

  // Group files per host in day order (samples of one node are consecutive
  // within a host stream).
  std::map<std::string, std::vector<const taccstats::RawFile*>> by_host;
  for (const auto& f : files) by_host[f.hostname].push_back(&f);

  struct Accum {
    double dt = 0;
    double user_cs = 0, idle_cs = 0, total_cs = 0;
    double flops = 0, flops_s = 0;
    double mem_w = 0;
    double scratch_wr = 0, work_wr = 0, ib_tx = 0, lnet_tx = 0;
    std::map<std::string, bool> hosts;
  };
  std::map<common::TimePoint, Accum> buckets;

  for (auto& [host, fs] : by_host) {
    std::sort(fs.begin(), fs.end(), [](const taccstats::RawFile* a,
                                       const taccstats::RawFile* b) { return a->day < b->day; });
    std::string perf_type;
    bool have_prev = false;
    taccstats::Sample prev;
    bool host_touches_job = false;
    for (const auto* file : fs) {
      // Cheap reject: skip hosts whose text never mentions the job id...
      // parsing is still needed host-by-host for pairs, so just parse.
      const auto parsed = taccstats::parse_raw(file->content);
      if (perf_type.empty()) {
        for (const auto& s : parsed.schemas.all()) {
          if (s.type == "amd64_pmc" || s.type == "intel_wtm") perf_type = s.type;
        }
      }
      for (const auto& sample : parsed.samples) {
        if (have_prev && prev.job_id == id && sample.job_id == id) {
          PairData pd;
          if (extract_pair(prev, sample, perf_type, pd)) {
            host_touches_job = true;
            const common::TimePoint key = (prev.time / interval) * interval;
            Accum& a = buckets[key];
            a.dt += pd.dt;
            a.user_cs += pd.user_cs;
            a.idle_cs += pd.idle_cs;
            a.total_cs += pd.total_cs;
            if (pd.flops_valid) {
              a.flops += pd.flops;
              a.flops_s += pd.dt;
            }
            a.mem_w += pd.mem_gb * pd.dt;
            a.scratch_wr += pd.scratch_wr;
            a.work_wr += pd.work_wr;
            a.ib_tx += pd.ib_tx;
            a.lnet_tx += pd.lnet_tx;
            a.hosts[host] = true;
          }
        }
        prev = sample;
        have_prev = true;
      }
    }
    (void)host_touches_job;
  }

  std::vector<TracePoint> out;
  out.reserve(buckets.size());
  for (const auto& [t, a] : buckets) {
    TracePoint p;
    p.t = t;
    p.dt = a.dt;
    p.nodes = a.hosts.size();
    p.cpu_idle = a.total_cs > 0 ? a.idle_cs / a.total_cs : 0.0;
    p.cpu_user = a.total_cs > 0 ? a.user_cs / a.total_cs : 0.0;
    p.flops_valid = a.flops_s > 0;
    p.flops_gf_node = p.flops_valid ? a.flops / 1.0e9 / a.flops_s : 0.0;
    p.mem_gb_node = a.dt > 0 ? a.mem_w / a.dt : 0.0;
    p.scratch_write_mb_s = a.dt > 0 ? a.scratch_wr / 1.0e6 / a.dt : 0.0;
    p.work_write_mb_s = a.dt > 0 ? a.work_wr / 1.0e6 / a.dt : 0.0;
    p.ib_tx_mb_s = a.dt > 0 ? a.ib_tx / 1.0e6 / a.dt : 0.0;
    p.lnet_tx_mb_s = a.dt > 0 ? a.lnet_tx / 1.0e6 / a.dt : 0.0;
    out.push_back(p);
  }
  return out;
}

}  // namespace supremm::etl
