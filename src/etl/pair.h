// Rate extraction from consecutive sample pairs - shared by the ingest
// pipeline and the per-job trace extractor.
#pragma once

#include <string>

#include "taccstats/record.h"

namespace supremm::etl {

/// How counters that go backwards between the two samples are treated.
struct PairPolicy {
  /// false (strict): any backward event counter rejects the pair, as a
  /// reboot would. true (salvage): backward counters are corrected - a drop
  /// from near 2^64 is a rollover (the wrapped difference is the true
  /// delta); any other drop is a counter reset (the node rebooted and the
  /// counter restarted from zero, so the post-reset value is the delta and
  /// the pre-reset activity is lost). Corrected pairs are flagged so the
  /// ingest layer can count them.
  bool tolerate_resets = false;
};

/// Rates/gauges extracted from one consecutive sample pair of one node.
struct PairData {
  double dt = 0;
  double user_cs = 0, sys_cs = 0, idle_cs = 0, total_cs = 0;
  double flops = 0;
  bool flops_valid = false;
  double mem_gb = 0, mem_max_gb = 0;
  double scratch_wr = 0, scratch_rd = 0, work_wr = 0, share_bytes = 0;
  double ib_tx = 0, ib_rx = 0, lnet_tx = 0, lnet_rx = 0;
  double swap_bytes = 0;
  double load = 0;
  bool reset = false;     // >=1 counter corrected as a reset (salvage only)
  bool rollover = false;  // >=1 counter corrected as a rollover (salvage only)
};

/// Extract deltas/gauges from samples a -> b of the same node. `perf_type`
/// is the arch perf schema name ("amd64_pmc"/"intel_wtm"; empty = no perf).
/// Returns false when b does not follow a or (under the default strict
/// policy) the CPU counters went backwards (reboot).
[[nodiscard]] bool extract_pair(const taccstats::Sample& a, const taccstats::Sample& b,
                                const std::string& perf_type, PairData& out,
                                const PairPolicy& policy = {});

}  // namespace supremm::etl
