// The ingest pipeline: raw TACC_Stats files + accounting + Lariat ->
// per-job summaries and facility time series.
//
// Mirrors the paper's Figure 1 workflow: raw node files are parsed, samples
// are matched to jobs by the embedded job id, counter deltas become rates,
// node-hour weighted job summaries are produced and loaded into the
// warehouse, and node data is aggregated into system-level metrics.
//
// Parallelism: hosts are partitioned into fixed-size chunks processed by a
// thread pool; chunk partials are merged in chunk order, so the result is
// bit-identical for any thread count.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "accounting/accounting.h"
#include "etl/job_summary.h"
#include "etl/system_series.h"
#include "facility/users.h"
#include "lariat/lariat.h"
#include "taccstats/writer.h"

namespace supremm::etl {

struct IngestConfig {
  common::TimePoint start = 0;
  common::Duration span = 0;                        // required
  common::Duration bucket = 10 * common::kMinute;   // system series bucket
  /// Jobs shorter than this are excluded from summaries (paper §4.1: "jobs
  /// included in this study are those longer than the default TACC_Stats
  /// sampling interval of 10 minutes").
  common::Duration min_job_seconds = 10 * common::kMinute;
  std::size_t threads = 0;       // 0 = hardware concurrency
  std::size_t hosts_per_chunk = 16;
  std::string cluster;           // cluster tag for summaries
  /// Sample pairs further apart than this are discarded: the node was down
  /// (maintenance) or the collector was not running, so no rate can be
  /// attributed to the gap. 0 = 3x the bucket width.
  common::Duration max_pair_gap = 0;
};

struct IngestStats {
  std::uint64_t bytes = 0;
  std::uint64_t files = 0;
  std::uint64_t samples = 0;
  std::uint64_t pairs = 0;           // sample pairs turned into rates
  std::uint64_t gaps_skipped = 0;    // pairs discarded as collection gaps
  std::uint64_t jobs_seen = 0;       // distinct job ids in raw data
  std::uint64_t jobs_excluded = 0;   // filtered by min_job_seconds / no match
};

struct IngestResult {
  std::vector<JobSummary> jobs;  // sorted by job id
  SystemSeries series;
  IngestStats stats;
};

/// project -> parent science registry (the paper's allocation database side
/// channel), derivable from the synthetic population.
[[nodiscard]] std::unordered_map<std::string, std::string> project_science_map(
    const facility::UserPopulation& population);

class IngestPipeline {
 public:
  explicit IngestPipeline(IngestConfig config);

  [[nodiscard]] IngestResult run(
      const std::vector<taccstats::RawFile>& files,
      const std::vector<accounting::AccountingRecord>& acct,
      const std::vector<lariat::LariatRecord>& lariat_records,
      const std::vector<facility::AppSignature>& catalogue,
      const std::unordered_map<std::string, std::string>& project_science) const;

 private:
  IngestConfig config_;
};

}  // namespace supremm::etl
