// The ingest pipeline: raw TACC_Stats files + accounting + Lariat ->
// per-job summaries and facility time series.
//
// Mirrors the paper's Figure 1 workflow: raw node files are parsed, samples
// are matched to jobs by the embedded job id, counter deltas become rates,
// node-hour weighted job summaries are produced and loaded into the
// warehouse, and node data is aggregated into system-level metrics.
//
// Parallelism: hosts are partitioned into fixed-size chunks processed by a
// thread pool; chunk partials are merged in chunk order, so the result is
// bit-identical for any thread count.
//
// Robustness: the pipeline runs in one of two modes. Strict mode is
// all-or-nothing - a single malformed line aborts ingest with ParseError.
// Salvage mode degrades gracefully: damaged lines are quarantined, exact
// duplicates dropped, out-of-order samples re-sorted, counter resets and
// rollovers corrected, per-host clock skew estimated against accounting
// start times and removed, and jobs whose accounting records were lost are
// reconciled from the samples and Lariat side channel. On undamaged input
// the two modes produce bit-identical results; everything salvage repaired
// or discarded is counted in IngestStats and the per-host DataQualityReport.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "accounting/accounting.h"
#include "etl/job_summary.h"
#include "etl/quality.h"
#include "etl/system_series.h"
#include "facility/users.h"
#include "lariat/lariat.h"
#include "taccstats/writer.h"

namespace supremm::etl {

/// How the pipeline treats damaged raw data.
enum class IngestMode : std::uint8_t {
  kStrict,   // any malformed input throws ParseError (the seed behavior)
  kSalvage,  // recover everything well-formed, quarantine and count the rest
};

struct IngestConfig {
  common::TimePoint start = 0;
  common::Duration span = 0;                        // required
  common::Duration bucket = 10 * common::kMinute;   // system series bucket
  /// Jobs shorter than this are excluded from summaries (paper §4.1: "jobs
  /// included in this study are those longer than the default TACC_Stats
  /// sampling interval of 10 minutes").
  common::Duration min_job_seconds = 10 * common::kMinute;
  std::size_t threads = 0;       // 0 = hardware concurrency
  std::size_t hosts_per_chunk = 16;
  std::string cluster;           // cluster tag for summaries
  /// Sample pairs further apart than this are discarded: the node was down
  /// (maintenance) or the collector was not running, so no rate can be
  /// attributed to the gap. 0 = 3x the bucket width.
  common::Duration max_pair_gap = 0;
  IngestMode mode = IngestMode::kStrict;
};

struct IngestStats {
  std::uint64_t bytes = 0;
  std::uint64_t files = 0;
  std::uint64_t samples = 0;         // samples kept (salvage: after dedup)
  std::uint64_t pairs = 0;           // sample pairs turned into rates
  std::uint64_t gaps_skipped = 0;    // pairs discarded as collection gaps
  std::uint64_t jobs_seen = 0;       // distinct job ids in raw data
  std::uint64_t jobs_excluded = 0;   // filtered by min_job_seconds / no match

  // Salvage-mode damage accounting (all zero in strict mode / clean data).
  std::uint64_t quarantined = 0;           // malformed lines skipped
  std::uint64_t duplicates_dropped = 0;    // byte-identical repeated samples
  std::uint64_t reordered = 0;             // out-of-order samples re-sorted
  std::uint64_t resets_clamped = 0;        // pairs corrected for counter resets
  std::uint64_t rollovers_corrected = 0;   // pairs corrected for u64 rollover
  std::uint64_t missing_job_end = 0;       // (host, job) begin without end mark
  std::uint64_t missing_acct = 0;          // sampled jobs without accounting
  std::uint64_t missing_lariat = 0;        // summarized jobs without Lariat
  std::uint64_t jobs_reconciled = 0;       // summaries built without accounting
  std::uint64_t hosts_skewed = 0;          // hosts whose clock offset was fixed

  [[nodiscard]] bool operator==(const IngestStats&) const = default;
};

struct IngestResult {
  std::vector<JobSummary> jobs;  // sorted by job id
  SystemSeries series;
  IngestStats stats;
  DataQualityReport quality;     // per-host coverage and damage accounting
};

/// project -> parent science registry (the paper's allocation database side
/// channel), derivable from the synthetic population.
[[nodiscard]] std::unordered_map<std::string, std::string> project_science_map(
    const facility::UserPopulation& population);

class IngestPipeline {
 public:
  /// Validates the config; throws InvalidArgument naming the offending
  /// field (span, bucket, hosts_per_chunk, min_job_seconds, max_pair_gap).
  explicit IngestPipeline(IngestConfig config);

  [[nodiscard]] IngestResult run(
      const std::vector<taccstats::RawFile>& files,
      const std::vector<accounting::AccountingRecord>& acct,
      const std::vector<lariat::LariatRecord>& lariat_records,
      const std::vector<facility::AppSignature>& catalogue,
      const std::unordered_map<std::string, std::string>& project_science) const;

 private:
  IngestConfig config_;
};

}  // namespace supremm::etl
