#include "etl/ingest.h"

#include "etl/pair.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <set>

#include "common/error.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "facility/apps.h"
#include "procsim/perf.h"
#include "taccstats/reader.h"

namespace supremm::etl {

using taccstats::Sample;
using taccstats::TypeRecord;

namespace {

constexpr double kMb = 1.0e6;

/// Everything accumulated for one job across all its nodes and intervals.
struct JobAccum {
  double user_cs = 0, sys_cs = 0, idle_cs = 0, total_cs = 0;
  double flops = 0, flops_node_s = 0;
  double node_s = 0;
  double mem_w = 0, mem_t = 0, mem_max = 0;
  double scratch_wr = 0, scratch_rd = 0, work_wr = 0;
  double ib_tx = 0, ib_rx = 0, lnet_tx = 0, lnet_rx = 0;
  double swap_bytes = 0;
  double load_w = 0;
  std::uint64_t samples = 0;
  // Observed extent, for reconciling jobs whose accounting records are lost.
  common::TimePoint first_seen = std::numeric_limits<common::TimePoint>::max();
  common::TimePoint last_seen = std::numeric_limits<common::TimePoint>::min();
  std::uint64_t hosts = 0;  // nodes contributing samples

  void merge(const JobAccum& o) noexcept {
    user_cs += o.user_cs;
    sys_cs += o.sys_cs;
    idle_cs += o.idle_cs;
    total_cs += o.total_cs;
    flops += o.flops;
    flops_node_s += o.flops_node_s;
    node_s += o.node_s;
    mem_w += o.mem_w;
    mem_t += o.mem_t;
    mem_max = std::max(mem_max, o.mem_max);
    scratch_wr += o.scratch_wr;
    scratch_rd += o.scratch_rd;
    work_wr += o.work_wr;
    ib_tx += o.ib_tx;
    ib_rx += o.ib_rx;
    lnet_tx += o.lnet_tx;
    lnet_rx += o.lnet_rx;
    swap_bytes += o.swap_bytes;
    load_w += o.load_w;
    samples += o.samples;
    first_seen = std::min(first_seen, o.first_seen);
    last_seen = std::max(last_seen, o.last_seen);
    hosts += o.hosts;
  }
};

/// Facility bucket accumulators.
struct SysAccum {
  std::size_t n = 0;
  std::vector<double> active_s, up_s, flops, mem_w, mem_t;
  std::vector<double> user_cs, idle_cs, sys_cs;
  std::vector<double> scratch_wr, scratch_rd, work_wr, share_bytes, ib_tx, lnet_tx;

  explicit SysAccum(std::size_t buckets) : n(buckets) {
    for (auto* v : {&active_s, &up_s, &flops, &mem_w, &mem_t, &user_cs, &idle_cs, &sys_cs,
                    &scratch_wr, &scratch_rd, &work_wr, &share_bytes, &ib_tx, &lnet_tx}) {
      v->assign(buckets, 0.0);
    }
  }

  void merge(const SysAccum& o) {
    auto add = [](std::vector<double>& a, const std::vector<double>& b) {
      for (std::size_t i = 0; i < a.size(); ++i) a[i] += b[i];
    };
    add(active_s, o.active_s);
    add(up_s, o.up_s);
    add(flops, o.flops);
    add(mem_w, o.mem_w);
    add(mem_t, o.mem_t);
    add(user_cs, o.user_cs);
    add(idle_cs, o.idle_cs);
    add(sys_cs, o.sys_cs);
    add(scratch_wr, o.scratch_wr);
    add(scratch_rd, o.scratch_rd);
    add(work_wr, o.work_wr);
    add(share_bytes, o.share_bytes);
    add(ib_tx, o.ib_tx);
    add(lnet_tx, o.lnet_tx);
  }
};

struct ChunkResult {
  SysAccum sys;
  std::map<facility::JobId, JobAccum> jobs;  // ordered for deterministic merge
  IngestStats stats;
  std::vector<HostQuality> quality;                // in host order within chunk
  std::vector<taccstats::Quarantine> quarantines;  // in host/file/line order

  explicit ChunkResult(std::size_t buckets) : sys(buckets) {}
};

}  // namespace

std::unordered_map<std::string, std::string> project_science_map(
    const facility::UserPopulation& population) {
  std::unordered_map<std::string, std::string> out;
  for (const auto& u : population.users()) {
    out.emplace(u.project, std::string(facility::science_name(u.science)));
  }
  return out;
}

IngestPipeline::IngestPipeline(IngestConfig config) : config_(std::move(config)) {
  if (config_.span <= 0) {
    throw common::InvalidArgument("IngestConfig.span must be positive");
  }
  if (config_.bucket <= 0) {
    throw common::InvalidArgument("IngestConfig.bucket must be positive");
  }
  if (config_.hosts_per_chunk == 0) {
    throw common::InvalidArgument("IngestConfig.hosts_per_chunk must be positive");
  }
  if (config_.min_job_seconds < 0) {
    throw common::InvalidArgument("IngestConfig.min_job_seconds must be non-negative");
  }
  if (config_.max_pair_gap < 0) {
    throw common::InvalidArgument("IngestConfig.max_pair_gap must be non-negative");
  }
}

IngestResult IngestPipeline::run(
    const std::vector<taccstats::RawFile>& files,
    const std::vector<accounting::AccountingRecord>& acct,
    const std::vector<lariat::LariatRecord>& lariat_records,
    const std::vector<facility::AppSignature>& catalogue,
    const std::unordered_map<std::string, std::string>& project_science) const {
  const bool salvage = config_.mode == IngestMode::kSalvage;
  const auto buckets =
      static_cast<std::size_t>((config_.span + config_.bucket - 1) / config_.bucket);

  // Group files by host, ordered by day.
  std::map<std::string, std::vector<const taccstats::RawFile*>> by_host;
  for (const auto& f : files) by_host[f.hostname].push_back(&f);
  for (auto& [host, fs] : by_host) {
    std::sort(fs.begin(), fs.end(), [](const taccstats::RawFile* a,
                                       const taccstats::RawFile* b) { return a->day < b->day; });
  }
  std::vector<const std::vector<const taccstats::RawFile*>*> hosts;
  hosts.reserve(by_host.size());
  for (const auto& [host, fs] : by_host) hosts.push_back(&fs);

  // Fixed-size chunks (independent of thread count) for deterministic merge.
  const std::size_t chunk = config_.hosts_per_chunk;
  const std::size_t nchunks = (hosts.size() + chunk - 1) / chunk;
  std::vector<ChunkResult> partials;
  partials.reserve(nchunks);
  for (std::size_t i = 0; i < nchunks; ++i) partials.emplace_back(buckets);

  const common::TimePoint t0 = config_.start;
  const common::Duration bucket_len = config_.bucket;
  const common::Duration max_gap =
      config_.max_pair_gap > 0 ? config_.max_pair_gap : 3 * bucket_len;
  const PairPolicy pair_policy{salvage};

  // Accounting start times: the reference for per-host clock-skew estimation
  // (job-begin marks are stamped with the scheduler's start time).
  std::unordered_map<facility::JobId, common::TimePoint> acct_start;
  if (salvage) {
    acct_start.reserve(acct.size());
    for (const auto& a : acct) acct_start.emplace(a.job_id, a.start);
  }

  auto process_host = [&](const std::vector<const taccstats::RawFile*>& host_files,
                          ChunkResult& res) {
    HostQuality hq;
    hq.host = host_files.front()->hostname;
    hq.files = host_files.size();
    std::vector<taccstats::ParsedFile> parsed_files;
    parsed_files.reserve(host_files.size());
    for (const auto* file : host_files) {
      res.stats.bytes += file->content.size();
      ++res.stats.files;
      const std::string source =
          common::strprintf("%s/day%lld", file->hostname.c_str(),
                            static_cast<long long>(file->day));
      if (salvage) {
        auto sr = taccstats::parse_raw_salvage(file->content, source);
        hq.quarantined += sr.quarantined.size();
        res.stats.quarantined += sr.quarantined.size();
        res.quarantines.insert(res.quarantines.end(),
                               std::make_move_iterator(sr.quarantined.begin()),
                               std::make_move_iterator(sr.quarantined.end()));
        parsed_files.push_back(std::move(sr.file));
      } else {
        parsed_files.push_back(taccstats::parse_raw(file->content, source));
      }
    }

    std::string perf_type;
    for (const auto& pf : parsed_files) {
      if (!perf_type.empty()) break;
      for (const auto& s : pf.schemas.all()) {
        if (s.type == "amd64_pmc" || s.type == "intel_wtm") perf_type = s.type;
      }
    }

    // The host's sample timeline, files concatenated in day order.
    std::vector<Sample*> seq;
    for (auto& pf : parsed_files) {
      for (auto& s : pf.samples) seq.push_back(&s);
    }

    if (salvage) {
      // Out-of-order detection before any repair: count time descents.
      for (std::size_t i = 1; i < seq.size(); ++i) {
        if (seq[i]->time < seq[i - 1]->time) ++hq.reordered;
      }
      res.stats.reordered += hq.reordered;

      // Clock skew: job-begin marks are emitted at the scheduler-assigned
      // start time, so the median offset between begin marks and accounting
      // start times is this host's clock error. Correct it so cross-host
      // bucket attribution lines up again.
      std::vector<std::int64_t> diffs;
      for (const Sample* s : seq) {
        if (s->mark != taccstats::SampleMark::kJobBegin) continue;
        if (const auto it = acct_start.find(s->job_id); it != acct_start.end()) {
          diffs.push_back(s->time - it->second);
        }
      }
      if (!diffs.empty()) {
        std::sort(diffs.begin(), diffs.end());
        const std::int64_t skew = diffs[(diffs.size() - 1) / 2];
        if (skew != 0) {
          for (Sample* s : seq) s->time -= skew;
          hq.clock_skew_s = skew;
          ++res.stats.hosts_skewed;
        }
      }

      // Re-sort (stable: a no-op on clean data) and drop exact duplicates.
      std::stable_sort(seq.begin(), seq.end(),
                       [](const Sample* a, const Sample* b) { return a->time < b->time; });
      std::vector<Sample*> uniq;
      uniq.reserve(seq.size());
      for (Sample* s : seq) {
        if (!uniq.empty() && *s == *uniq.back()) {
          ++hq.duplicates_dropped;
          continue;
        }
        uniq.push_back(s);
      }
      res.stats.duplicates_dropped += hq.duplicates_dropped;
      seq = std::move(uniq);

      // Jobs that begin on this host but never end while sampling continued
      // afterwards: the end mark was lost (node crash, dropped block). A job
      // whose last sample is also the host's last sample was simply still
      // running when collection stopped and is not counted.
      std::map<facility::JobId, std::pair<bool, bool>> marks;  // begin, end
      std::map<facility::JobId, std::size_t> last_ix;
      for (std::size_t i = 0; i < seq.size(); ++i) {
        const Sample* s = seq[i];
        if (s->job_id == 0) continue;
        if (s->mark == taccstats::SampleMark::kJobBegin) marks[s->job_id].first = true;
        if (s->mark == taccstats::SampleMark::kJobEnd) marks[s->job_id].second = true;
        last_ix[s->job_id] = i;
      }
      for (const auto& [id, be] : marks) {
        if (be.first && !be.second && last_ix[id] + 1 < seq.size()) ++hq.missing_job_end;
      }
      res.stats.missing_job_end += hq.missing_job_end;
    }

    const Sample* prev = nullptr;
    std::set<facility::JobId> jobs_touched;
    for (const Sample* sp : seq) {
      const Sample& sample = *sp;
      ++res.stats.samples;
      ++hq.samples;
      if (prev != nullptr && sample.time - prev->time > max_gap) {
        // Collection gap (outage / collector restart): no rates attributable.
        ++res.stats.gaps_skipped;
      } else if (prev != nullptr) {
        PairData pd;
        if (extract_pair(*prev, sample, perf_type, pd, pair_policy)) {
          ++res.stats.pairs;
          ++hq.pairs;
          hq.covered_s += pd.dt;
          if (pd.reset) {
            ++res.stats.resets_clamped;
            ++hq.resets;
          }
          if (pd.rollover) {
            ++res.stats.rollovers_corrected;
            ++hq.rollovers;
          }
          // Distribute the pair across the buckets it overlaps so bucket
          // totals are exact even for off-grid samples (job begin/end).
          const bool in_job = prev->job_id != 0 && prev->job_id == sample.job_id;
          for (common::TimePoint bt = prev->time; bt < sample.time;) {
            const auto bi = static_cast<std::size_t>((bt - t0) / bucket_len);
            const common::TimePoint bucket_end =
                t0 + static_cast<common::Duration>(bi + 1) * bucket_len;
            const common::TimePoint span_end = std::min(sample.time, bucket_end);
            const double frac = static_cast<double>(span_end - bt) / pd.dt;
            bt = span_end;
            if (bi >= res.sys.n) continue;
            const double dts = frac * pd.dt;
            res.sys.up_s[bi] += dts;
            if (in_job) res.sys.active_s[bi] += dts;
            if (pd.flops_valid) res.sys.flops[bi] += pd.flops * frac;
            res.sys.mem_w[bi] += pd.mem_gb * dts;
            res.sys.mem_t[bi] += dts;
            res.sys.user_cs[bi] += pd.user_cs * frac;
            res.sys.idle_cs[bi] += pd.idle_cs * frac;
            res.sys.sys_cs[bi] += pd.sys_cs * frac;
            res.sys.scratch_wr[bi] += pd.scratch_wr * frac;
            res.sys.scratch_rd[bi] += pd.scratch_rd * frac;
            res.sys.work_wr[bi] += pd.work_wr * frac;
            res.sys.share_bytes[bi] += pd.share_bytes * frac;
            res.sys.ib_tx[bi] += pd.ib_tx * frac;
            res.sys.lnet_tx[bi] += pd.lnet_tx * frac;
          }
          // Job-level accumulation: both endpoints inside the same job.
          if (in_job) {
            JobAccum& ja = res.jobs[prev->job_id];
            ja.user_cs += pd.user_cs;
            ja.sys_cs += pd.sys_cs;
            ja.idle_cs += pd.idle_cs;
            ja.total_cs += pd.total_cs;
            if (pd.flops_valid) {
              ja.flops += pd.flops;
              ja.flops_node_s += pd.dt;
            }
            ja.node_s += pd.dt;
            ja.mem_w += pd.mem_gb * pd.dt;
            ja.mem_t += pd.dt;
            ja.mem_max = std::max(ja.mem_max, pd.mem_max_gb);
            ja.scratch_wr += pd.scratch_wr;
            ja.scratch_rd += pd.scratch_rd;
            ja.work_wr += pd.work_wr;
            ja.ib_tx += pd.ib_tx;
            ja.ib_rx += pd.ib_rx;
            ja.lnet_tx += pd.lnet_tx;
            ja.lnet_rx += pd.lnet_rx;
            ja.swap_bytes += pd.swap_bytes;
            ja.load_w += pd.load * pd.dt;
            ++ja.samples;
            ja.first_seen = std::min(ja.first_seen, prev->time);
            ja.last_seen = std::max(ja.last_seen, sample.time);
            jobs_touched.insert(prev->job_id);
          }
        }
      }
      prev = sp;
    }
    for (const facility::JobId id : jobs_touched) ++res.jobs[id].hosts;
    res.quality.push_back(std::move(hq));
  };

  common::ThreadPool pool(config_.threads);
  {
    std::vector<std::future<void>> futs;
    futs.reserve(nchunks);
    for (std::size_t c = 0; c < nchunks; ++c) {
      futs.push_back(pool.submit([&, c] {
        const std::size_t lo = c * chunk;
        const std::size_t hi = std::min(hosts.size(), lo + chunk);
        for (std::size_t h = lo; h < hi; ++h) process_host(*hosts[h], partials[c]);
      }));
    }
    for (auto& f : futs) f.get();
  }

  // Deterministic merge in chunk order.
  IngestResult out;
  SysAccum sys(buckets);
  std::map<facility::JobId, JobAccum> jobs;
  for (auto& p : partials) {
    sys.merge(p.sys);
    for (auto& [id, ja] : p.jobs) jobs[id].merge(ja);
    out.stats.bytes += p.stats.bytes;
    out.stats.files += p.stats.files;
    out.stats.samples += p.stats.samples;
    out.stats.pairs += p.stats.pairs;
    out.stats.gaps_skipped += p.stats.gaps_skipped;
    out.stats.quarantined += p.stats.quarantined;
    out.stats.duplicates_dropped += p.stats.duplicates_dropped;
    out.stats.reordered += p.stats.reordered;
    out.stats.resets_clamped += p.stats.resets_clamped;
    out.stats.rollovers_corrected += p.stats.rollovers_corrected;
    out.stats.missing_job_end += p.stats.missing_job_end;
    out.stats.hosts_skewed += p.stats.hosts_skewed;
    out.quality.hosts.insert(out.quality.hosts.end(),
                             std::make_move_iterator(p.quality.begin()),
                             std::make_move_iterator(p.quality.end()));
    out.quality.quarantines.insert(out.quality.quarantines.end(),
                                   std::make_move_iterator(p.quarantines.begin()),
                                   std::make_move_iterator(p.quarantines.end()));
  }
  out.quality.span = config_.span;
  out.stats.jobs_seen = jobs.size();

  // Join with accounting + Lariat + the project/science registry.
  std::map<facility::JobId, const accounting::AccountingRecord*> acct_by_id;
  for (const auto& a : acct) acct_by_id[a.job_id] = &a;
  const lariat::LariatIndex lidx(lariat_records);

  for (const auto& [id, ja] : jobs) {
    const auto ait = acct_by_id.find(id);
    if (ja.node_s <= 0.0 || ja.mem_t <= 0.0) {
      ++out.stats.jobs_excluded;
      continue;
    }
    const accounting::AccountingRecord* ar =
        ait != acct_by_id.end() ? ait->second : nullptr;
    const lariat::LariatRecord* lr = lidx.find(id);

    JobSummary j;
    j.id = id;
    j.cluster = config_.cluster;
    if (ar == nullptr) {
      ++out.stats.missing_acct;
      if (!salvage) {
        ++out.stats.jobs_excluded;
        continue;
      }
      // Reconcile from the samples + the Lariat side channel: observed
      // extent bounds the job, Lariat restores identity when present.
      if (ja.last_seen - ja.first_seen < config_.min_job_seconds) {
        ++out.stats.jobs_excluded;
        continue;
      }
      j.reconciled = true;
      ++out.stats.jobs_reconciled;
      j.user = lr != nullptr ? lr->user : "(unknown)";
      j.submit = ja.first_seen;
      j.start = ja.first_seen;
      j.end = ja.last_seen;
      j.nodes = lr != nullptr ? lr->nodes : ja.hosts;
      j.cores = lr != nullptr ? lr->cores : 0;
      j.node_hours =
          static_cast<double>(j.nodes) * common::to_hours(ja.last_seen - ja.first_seen);
    } else {
      if (ar->wallclock() < config_.min_job_seconds) {
        ++out.stats.jobs_excluded;
        continue;
      }
      j.user = ar->owner;
      j.project = ar->account;
      j.submit = ar->submit;
      j.start = ar->start;
      j.end = ar->end;
      j.nodes = ar->nodes;
      j.cores = ar->slots;
      j.node_hours = static_cast<double>(ar->nodes) * common::to_hours(ar->wallclock());
      j.exit_status = ar->exit_status;
      j.failed = ar->failed;
      if (const auto sit = project_science.find(ar->account); sit != project_science.end()) {
        j.science = sit->second;
      }
    }
    if (lr != nullptr) {
      j.app = lariat::app_for_exe(catalogue, lr->exe);
    } else {
      ++out.stats.missing_lariat;
    }
    j.samples = ja.samples;

    j.cpu_idle = ja.total_cs > 0 ? ja.idle_cs / ja.total_cs : 0.0;
    j.cpu_user = ja.total_cs > 0 ? ja.user_cs / ja.total_cs : 0.0;
    j.cpu_system = ja.total_cs > 0 ? ja.sys_cs / ja.total_cs : 0.0;
    j.flops_valid = ja.flops_node_s >= 0.5 * ja.node_s && ja.flops_node_s > 0.0;
    j.cpu_flops_gf_node = j.flops_valid ? ja.flops / 1.0e9 / ja.flops_node_s : 0.0;
    j.mem_used_gb = ja.mem_w / ja.mem_t;
    j.mem_used_max_gb = ja.mem_max;
    j.io_scratch_write_mb_s = ja.scratch_wr / kMb / ja.node_s;
    j.io_scratch_read_mb_s = ja.scratch_rd / kMb / ja.node_s;
    j.io_work_write_mb_s = ja.work_wr / kMb / ja.node_s;
    j.net_ib_tx_mb_s = ja.ib_tx / kMb / ja.node_s;
    j.net_ib_rx_mb_s = ja.ib_rx / kMb / ja.node_s;
    j.net_lnet_tx_mb_s = ja.lnet_tx / kMb / ja.node_s;
    j.net_lnet_rx_mb_s = ja.lnet_rx / kMb / ja.node_s;
    j.swap_mb_s = ja.swap_bytes / kMb / ja.node_s;
    j.load_mean = ja.node_s > 0 ? ja.load_w / ja.node_s : 0.0;
    out.jobs.push_back(std::move(j));
  }

  // Finalize the system series.
  SystemSeries& ss = out.series;
  ss.start = t0;
  ss.bucket = bucket_len;
  ss.buckets = buckets;
  const double bl = static_cast<double>(bucket_len);
  auto resize_all = [&](auto&... vs) { (vs.assign(buckets, 0.0), ...); };
  resize_all(ss.active_nodes, ss.up_nodes, ss.flops_tf, ss.mem_gb_per_node,
             ss.cpu_user_core_h, ss.cpu_idle_core_h, ss.cpu_system_core_h,
             ss.scratch_write_mb_s, ss.scratch_read_mb_s, ss.work_write_mb_s, ss.share_mb_s,
             ss.ib_tx_mb_s, ss.lnet_tx_mb_s, ss.cpu_idle_frac);
  for (std::size_t i = 0; i < buckets; ++i) {
    ss.active_nodes[i] = sys.active_s[i] / bl;
    ss.up_nodes[i] = sys.up_s[i] / bl;
    ss.flops_tf[i] = sys.flops[i] / 1.0e12 / bl;
    ss.mem_gb_per_node[i] = sys.mem_t[i] > 0 ? sys.mem_w[i] / sys.mem_t[i] : 0.0;
    ss.cpu_user_core_h[i] = sys.user_cs[i] / 100.0 / 3600.0;
    ss.cpu_idle_core_h[i] = sys.idle_cs[i] / 100.0 / 3600.0;
    ss.cpu_system_core_h[i] = sys.sys_cs[i] / 100.0 / 3600.0;
    ss.scratch_write_mb_s[i] = sys.scratch_wr[i] / kMb / bl;
    ss.scratch_read_mb_s[i] = sys.scratch_rd[i] / kMb / bl;
    ss.work_write_mb_s[i] = sys.work_wr[i] / kMb / bl;
    ss.share_mb_s[i] = sys.share_bytes[i] / kMb / bl;
    ss.ib_tx_mb_s[i] = sys.ib_tx[i] / kMb / bl;
    ss.lnet_tx_mb_s[i] = sys.lnet_tx[i] / kMb / bl;
    const double tot = sys.user_cs[i] + sys.idle_cs[i] + sys.sys_cs[i];
    ss.cpu_idle_frac[i] = tot > 0 ? sys.idle_cs[i] / tot : 0.0;
  }
  return out;
}

}  // namespace supremm::etl
