// Per-job resource-use summaries - the rows of the paper's job-level data
// warehouse, node-hour weighted as in §4.1.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/time.h"
#include "facility/jobs.h"
#include "warehouse/table.h"

namespace supremm::etl {

struct JobSummary {
  facility::JobId id = 0;
  std::string user;
  std::string app;      // catalogue name resolved via Lariat ("" if unknown)
  std::string science;  // parent science from the project registry
  std::string project;
  std::string cluster;

  common::TimePoint submit = 0;
  common::TimePoint start = 0;
  common::TimePoint end = 0;
  std::size_t nodes = 0;
  std::size_t cores = 0;
  double node_hours = 0.0;
  int exit_status = 0;
  int failed = 0;  // batch-system kill code (maintenance drain etc.)
  std::size_t samples = 0;
  /// True when the accounting record was missing and the summary was
  /// rebuilt from raw samples + the Lariat side channel (salvage ingest).
  bool reconciled = false;

  // The eight key metrics (§4.2) ...
  double cpu_idle = 0.0;             // fraction of core time
  double cpu_flops_gf_node = 0.0;    // GF/s per node
  bool flops_valid = false;          // false when user-programmed counters
  double mem_used_gb = 0.0;          // per node, time-weighted mean
  double mem_used_max_gb = 0.0;      // peak over nodes and samples
  double io_scratch_write_mb_s = 0.0;  // per node
  double io_work_write_mb_s = 0.0;
  double net_ib_tx_mb_s = 0.0;
  double net_lnet_tx_mb_s = 0.0;

  // ... plus correlated companions (used by the §4.2 correlation analysis).
  double cpu_user = 0.0;
  double cpu_system = 0.0;
  double io_scratch_read_mb_s = 0.0;
  double net_ib_rx_mb_s = 0.0;
  double net_lnet_rx_mb_s = 0.0;
  double swap_mb_s = 0.0;
  double load_mean = 0.0;

  [[nodiscard]] common::Duration runtime() const noexcept { return end - start; }
};

/// The 8 metrics the paper's profiles use, in radar-chart order.
[[nodiscard]] const std::vector<std::string>& key_metric_names();

/// All job metrics addressable by name (the key 8 + companions).
[[nodiscard]] const std::vector<std::string>& all_metric_names();

/// Value of a named metric; throws NotFoundError for unknown names. For
/// "cpu_flops" of a job with flops_valid == false, returns NaN (callers use
/// NaN-aware aggregation).
[[nodiscard]] double metric_value(const JobSummary& job, std::string_view name);

/// Load summaries into a columnar warehouse table named "jobs".
[[nodiscard]] warehouse::Table to_table(std::span<const JobSummary> jobs);

}  // namespace supremm::etl
