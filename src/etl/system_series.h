// Facility-level time series built during ingest by aggregating node samples
// into regular buckets. Feeds Figures 7-12 and the Table 1 / Figure 6
// persistence analysis.
#pragma once

#include <string>
#include <vector>

#include "common/time.h"

namespace supremm::etl {

struct SystemSeries {
  common::TimePoint start = 0;
  common::Duration bucket = 10 * common::kMinute;
  std::size_t buckets = 0;

  // All vectors have `buckets` entries.
  std::vector<double> active_nodes;       // mean nodes running a job
  std::vector<double> up_nodes;           // mean nodes reporting samples
  std::vector<double> flops_tf;           // facility SSE TFLOP/s
  std::vector<double> mem_gb_per_node;    // mean mem_used per up node (GB)
  std::vector<double> cpu_user_core_h;    // core-hours in user state
  std::vector<double> cpu_idle_core_h;
  std::vector<double> cpu_system_core_h;
  std::vector<double> scratch_write_mb_s; // facility aggregate
  std::vector<double> scratch_read_mb_s;
  std::vector<double> work_write_mb_s;
  std::vector<double> share_mb_s;         // share fs total traffic
  std::vector<double> ib_tx_mb_s;
  std::vector<double> lnet_tx_mb_s;
  std::vector<double> cpu_idle_frac;      // idle core share per bucket

  [[nodiscard]] common::TimePoint time_at(std::size_t i) const noexcept {
    return start + static_cast<common::Duration>(i) * bucket;
  }

  /// Facility series for a named key metric (the 5 used by Table 1 plus the
  /// rest of the key 8 where a facility-level reading makes sense). Throws
  /// NotFoundError for unknown names.
  [[nodiscard]] const std::vector<double>& series(std::string_view metric) const;

  /// Whether a facility-level series exists for `metric` (e.g. mem_used_max
  /// is a job-level notion with no facility series).
  [[nodiscard]] bool has_series(std::string_view metric) const noexcept;
};

}  // namespace supremm::etl
