// Per-host data-quality accounting for the ingest pipeline.
//
// The paper's node-hour-weighting discipline only holds if coverage loss is
// quantified: when a collector dies, a raw file arrives truncated, or a
// node's counters reset, the affected node-seconds must be visible to
// operators rather than silently missing. Salvage-mode ingest fills a
// DataQualityReport with exactly what was recovered, corrected, and lost on
// every host; the warehouse loader and the XDMoD data-quality report render
// it for the Systems Administrator stakeholder.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.h"
#include "taccstats/reader.h"
#include "warehouse/table.h"

namespace supremm::etl {

/// What one host's raw data looked like after salvage.
struct HostQuality {
  std::string host;
  std::uint64_t files = 0;
  std::uint64_t samples = 0;             // recovered samples (after dedup)
  std::uint64_t pairs = 0;               // sample pairs turned into rates
  std::uint64_t quarantined = 0;         // malformed lines skipped
  std::uint64_t duplicates_dropped = 0;  // byte-identical repeated samples
  std::uint64_t reordered = 0;           // out-of-order samples re-sorted
  std::uint64_t resets = 0;              // pairs corrected for counter resets
  std::uint64_t rollovers = 0;           // pairs corrected for u64 rollover
  std::uint64_t missing_job_end = 0;     // jobs seen beginning but not ending
  std::int64_t clock_skew_s = 0;         // clock offset corrected (seconds)
  double covered_s = 0.0;                // node-seconds covered by usable pairs

  /// Fraction of the ingest span this host's usable pairs cover.
  [[nodiscard]] double coverage(common::Duration span) const noexcept;
};

/// How an archive partition failed: the three classes mean different things
/// to an operator reading recovery statistics. A missing file points at
/// filesystem loss or an interrupted publish; a corrupt file at bitrot or a
/// torn write; an orphan at a commit that died before its manifest landed.
enum class PartitionFault : std::uint8_t {
  kMissing,   // the manifest names it but the file is gone
  kCorrupt,   // present but fails size/CRC/decode verification
  kOrphaned,  // present on disk but referenced by no manifest
};

[[nodiscard]] const char* partition_fault_name(PartitionFault f) noexcept;

/// One archive partition that failed its integrity checks and was
/// quarantined instead of aborting the load - the storage-layer extension
/// of the salvage contract.
struct PartitionQuarantine {
  std::string table;    // "jobs", "series", "data_quality"
  std::int64_t day = 0; // simulated day index; -1 for snapshot partitions
  std::string file;     // partition filename within the archive directory
  std::string reason;
  PartitionFault fault = PartitionFault::kCorrupt;
};

/// Crash-recovery accounting from an archive open (DESIGN.md §14): what the
/// roll-forward/roll-back pass did with the staging area and any stranded
/// files before the archive was trusted.
struct RecoveryStats {
  std::uint64_t commits_rolled_forward = 0;  // staged commits published
  std::uint64_t commits_rolled_back = 0;     // incomplete commits discarded
  std::uint64_t orphans_removed = 0;         // stranded files garbage-collected

  [[nodiscard]] bool any() const noexcept {
    return commits_rolled_forward + commits_rolled_back + orphans_removed != 0;
  }
};

/// Facility-wide data-quality report: one row per host plus the full
/// quarantine diagnostics. Hosts are sorted by name (deterministic for any
/// thread count).
struct DataQualityReport {
  common::Duration span = 0;
  std::vector<HostQuality> hosts;
  std::vector<taccstats::Quarantine> quarantines;
  /// Archive partitions dropped at load time (empty for live ingest).
  std::vector<PartitionQuarantine> corrupt_partitions;
  /// Crash-recovery accounting from the archive open that produced this
  /// report (all-zero for live ingest and clean opens).
  RecoveryStats recovery;

  /// Mean coverage over hosts (node-second weighted).
  [[nodiscard]] double facility_coverage() const noexcept;
  /// Sum of per-host quarantined counts.
  [[nodiscard]] std::uint64_t total_quarantined() const noexcept;
};

/// Load the report into a columnar warehouse table named "data_quality"
/// (one row per host, coverage included) for operator queries.
[[nodiscard]] warehouse::Table quality_table(const DataQualityReport& report);

}  // namespace supremm::etl
