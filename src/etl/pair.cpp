#include "etl/pair.h"

#include <algorithm>

#include "procsim/perf.h"

namespace supremm::etl {

using taccstats::DeviceRow;
using taccstats::Sample;
using taccstats::TypeRecord;

namespace {

/// Per-pair state for backward-counter correction (salvage mode).
struct DeltaCtx {
  bool tolerate = false;
  std::uint32_t resets = 0;
  std::uint32_t rollovers = 0;
};

const TypeRecord* find_type(const Sample& s, std::string_view type) { return s.find(type); }

/// Delta of one event counter. Backward counters reject the pair in strict
/// mode; in tolerant mode a drop from the top half of the u64 range is a
/// rollover (unsigned wrap-around recovers the true delta) and any other
/// drop is a reset (the counter restarted from zero, so the new value is
/// the delta).
bool counter_delta(std::uint64_t va, std::uint64_t vb, DeltaCtx& ctx, double& out) {
  if (vb >= va) {
    out = static_cast<double>(vb - va);
    return true;
  }
  if (!ctx.tolerate) return false;
  if (va - vb > (1ULL << 63)) {
    ++ctx.rollovers;
    out = static_cast<double>(vb - va);  // u64 wrap-around = true delta
  } else {
    ++ctx.resets;
    out = static_cast<double>(vb);  // counts since the restart; clamp the rest
  }
  return true;
}

/// Sum delta of field `f` over all device rows present in both samples
/// (matched by position; devices are stable per node). Returns false when
/// the type is missing, the row sets diverge, or (strict) a counter went
/// backwards.
bool sum_delta(const TypeRecord* a, const TypeRecord* b, std::size_t f, DeltaCtx& ctx,
               double& out) {
  if (a == nullptr || b == nullptr) return false;
  if (a->rows.size() != b->rows.size()) return false;
  double total = 0.0;
  for (std::size_t i = 0; i < a->rows.size(); ++i) {
    double d = 0.0;
    if (!counter_delta(a->rows[i].values.at(f), b->rows[i].values.at(f), ctx, d)) {
      return false;
    }
    total += d;
  }
  out = total;
  return true;
}

/// Device-specific delta of field `f` for the row named `dev`.
bool dev_delta(const TypeRecord* a, const TypeRecord* b, std::string_view dev, std::size_t f,
               DeltaCtx& ctx, double& out) {
  if (a == nullptr || b == nullptr) return false;
  const auto find_row = [&](const TypeRecord* r) -> const DeviceRow* {
    for (const auto& row : r->rows) {
      if (row.device == dev) return &row;
    }
    return nullptr;
  };
  const auto* ra = find_row(a);
  const auto* rb = find_row(b);
  if (ra == nullptr || rb == nullptr) return false;
  return counter_delta(ra->values.at(f), rb->values.at(f), ctx, out);
}

}  // namespace

bool extract_pair(const Sample& a, const Sample& b, const std::string& perf_type,
                  PairData& out, const PairPolicy& policy) {
  if (b.time <= a.time) return false;
  out = PairData{};
  out.dt = static_cast<double>(b.time - a.time);
  DeltaCtx ctx{policy.tolerate_resets, 0, 0};

  // CPU: schema order user nice system idle iowait irq softirq.
  const auto* ca = find_type(a, "cpu");
  const auto* cb = find_type(b, "cpu");
  double nice = 0, iowait = 0, irq = 0, softirq = 0;
  if (!sum_delta(ca, cb, 0, ctx, out.user_cs) || !sum_delta(ca, cb, 1, ctx, nice) ||
      !sum_delta(ca, cb, 2, ctx, out.sys_cs) || !sum_delta(ca, cb, 3, ctx, out.idle_cs) ||
      !sum_delta(ca, cb, 4, ctx, iowait) || !sum_delta(ca, cb, 5, ctx, irq) ||
      !sum_delta(ca, cb, 6, ctx, softirq)) {
    return false;
  }
  out.user_cs += nice;
  out.sys_cs += iowait + irq + softirq;
  out.total_cs = out.user_cs + out.sys_cs + out.idle_cs;

  // Performance counters: CTL0..3 then CTR0..3; a slot counts toward flops
  // only when both samples agree it was programmed for SSE_FLOPS.
  const auto* pa = perf_type.empty() ? nullptr : find_type(a, perf_type);
  const auto* pb = perf_type.empty() ? nullptr : find_type(b, perf_type);
  if (pa != nullptr && pb != nullptr && pa->rows.size() == pb->rows.size()) {
    constexpr std::size_t kSlots = procsim::kPerfCountersPerCore;
    const auto flops_ctl = static_cast<std::uint64_t>(procsim::PerfEvent::kFlops);
    bool all_cores_valid = !pa->rows.empty();
    double total = 0.0;
    for (std::size_t c = 0; c < pa->rows.size(); ++c) {
      const auto& ra = pa->rows[c].values;
      const auto& rb = pb->rows[c].values;
      bool core_valid = false;
      for (std::size_t s = 0; s < kSlots; ++s) {
        if (ra.at(s) == flops_ctl && rb.at(s) == flops_ctl &&
            rb.at(kSlots + s) >= ra.at(kSlots + s)) {
          total += static_cast<double>(rb.at(kSlots + s) - ra.at(kSlots + s));
          core_valid = true;
          break;
        }
      }
      all_cores_valid = all_cores_valid && core_valid;
    }
    out.flops_valid = all_cores_valid;
    out.flops = all_cores_valid ? total : 0.0;
  }

  // Memory gauges at b (MemUsed is field 1), summed over sockets; KB -> GB.
  if (const auto* mb = find_type(b, "mem"); mb != nullptr) {
    double used_kb = 0;
    for (const auto& row : mb->rows) used_kb += static_cast<double>(row.values.at(1));
    out.mem_gb = used_kb / (1024.0 * 1024.0);
  }
  if (const auto* ma = find_type(a, "mem"); ma != nullptr) {
    double used_kb = 0;
    for (const auto& row : ma->rows) used_kb += static_cast<double>(row.values.at(1));
    out.mem_max_gb = std::max(out.mem_gb, used_kb / (1024.0 * 1024.0));
  } else {
    out.mem_max_gb = out.mem_gb;
  }

  // Lustre llite: read_bytes=0 write_bytes=1.
  const auto* la = find_type(a, "llite");
  const auto* lb = find_type(b, "llite");
  (void)dev_delta(la, lb, "scratch", 1, ctx, out.scratch_wr);
  (void)dev_delta(la, lb, "scratch", 0, ctx, out.scratch_rd);
  (void)dev_delta(la, lb, "work", 1, ctx, out.work_wr);
  double share_rd = 0, share_wr = 0;
  if (dev_delta(la, lb, "share", 0, ctx, share_rd) &&
      dev_delta(la, lb, "share", 1, ctx, share_wr)) {
    out.share_bytes = share_rd + share_wr;
  }

  // InfiniBand: rx_bytes=0 rx_packets=1 tx_bytes=2 tx_packets=3.
  const auto* ia = find_type(a, "ib");
  const auto* ib = find_type(b, "ib");
  (void)sum_delta(ia, ib, 2, ctx, out.ib_tx);
  (void)sum_delta(ia, ib, 0, ctx, out.ib_rx);

  // LNET: rx_bytes=0 tx_bytes=1.
  const auto* na = find_type(a, "lnet");
  const auto* nb = find_type(b, "lnet");
  (void)sum_delta(na, nb, 1, ctx, out.lnet_tx);
  (void)sum_delta(na, nb, 0, ctx, out.lnet_rx);

  // Swap activity: vm pswpin=2 pswpout=3, pages -> bytes.
  const auto* va = find_type(a, "vm");
  const auto* vb = find_type(b, "vm");
  double swpin = 0, swpout = 0;
  if (sum_delta(va, vb, 2, ctx, swpin) && sum_delta(va, vb, 3, ctx, swpout)) {
    out.swap_bytes = (swpin + swpout) * 4096.0;
  }

  // Load gauge at b (ps load_1 = field 2, scaled by 100).
  if (const auto* pload = find_type(b, "ps"); pload != nullptr) {
    out.load = static_cast<double>(pload->rows.at(0).values.at(2)) / 100.0;
  }
  out.reset = ctx.resets > 0;
  out.rollover = ctx.rollovers > 0;
  return true;
}

}  // namespace supremm::etl
