#include "etl/quality.h"

#include <algorithm>

namespace supremm::etl {

const char* partition_fault_name(PartitionFault f) noexcept {
  switch (f) {
    case PartitionFault::kMissing: return "missing";
    case PartitionFault::kCorrupt: return "corrupt";
    case PartitionFault::kOrphaned: return "orphaned";
  }
  return "corrupt";
}

double HostQuality::coverage(common::Duration span) const noexcept {
  if (span <= 0) return 0.0;
  return std::min(1.0, covered_s / static_cast<double>(span));
}

double DataQualityReport::facility_coverage() const noexcept {
  if (hosts.empty() || span <= 0) return 0.0;
  double covered = 0.0;
  for (const auto& h : hosts) covered += std::min(h.covered_s, static_cast<double>(span));
  return covered / (static_cast<double>(span) * static_cast<double>(hosts.size()));
}

std::uint64_t DataQualityReport::total_quarantined() const noexcept {
  std::uint64_t total = 0;
  for (const auto& h : hosts) total += h.quarantined;
  return total;
}

warehouse::Table quality_table(const DataQualityReport& report) {
  using warehouse::ColType;
  warehouse::Table t("data_quality",
                     {{"host", ColType::kString},
                      {"files", ColType::kInt64},
                      {"samples", ColType::kInt64},
                      {"pairs", ColType::kInt64},
                      {"quarantined", ColType::kInt64},
                      {"duplicates", ColType::kInt64},
                      {"reordered", ColType::kInt64},
                      {"resets", ColType::kInt64},
                      {"rollovers", ColType::kInt64},
                      {"missing_job_end", ColType::kInt64},
                      {"clock_skew_s", ColType::kInt64},
                      {"covered_s", ColType::kDouble},
                      {"coverage", ColType::kDouble}});
  for (const auto& h : report.hosts) {
    t.append()
        .set("host", std::string_view(h.host))
        .set("files", static_cast<std::int64_t>(h.files))
        .set("samples", static_cast<std::int64_t>(h.samples))
        .set("pairs", static_cast<std::int64_t>(h.pairs))
        .set("quarantined", static_cast<std::int64_t>(h.quarantined))
        .set("duplicates", static_cast<std::int64_t>(h.duplicates_dropped))
        .set("reordered", static_cast<std::int64_t>(h.reordered))
        .set("resets", static_cast<std::int64_t>(h.resets))
        .set("rollovers", static_cast<std::int64_t>(h.rollovers))
        .set("missing_job_end", static_cast<std::int64_t>(h.missing_job_end))
        .set("clock_skew_s", h.clock_skew_s)
        .set("covered_s", h.covered_s)
        .set("coverage", h.coverage(report.span));
  }
  return t;
}

}  // namespace supremm::etl
