#include "etl/job_summary.h"

#include <cmath>
#include <limits>

#include "common/error.h"

namespace supremm::etl {

const std::vector<std::string>& key_metric_names() {
  static const std::vector<std::string> kNames = {
      "cpu_idle",        "cpu_flops",     "mem_used",  "mem_used_max",
      "io_scratch_write", "io_work_write", "net_ib_tx", "net_lnet_tx"};
  return kNames;
}

const std::vector<std::string>& all_metric_names() {
  static const std::vector<std::string> kNames = [] {
    std::vector<std::string> v = key_metric_names();
    v.insert(v.end(), {"cpu_user", "cpu_system", "io_scratch_read", "net_ib_rx",
                       "net_lnet_rx", "swap", "load"});
    return v;
  }();
  return kNames;
}

double metric_value(const JobSummary& job, std::string_view name) {
  if (name == "cpu_idle") return job.cpu_idle;
  if (name == "cpu_flops") {
    return job.flops_valid ? job.cpu_flops_gf_node
                           : std::numeric_limits<double>::quiet_NaN();
  }
  if (name == "mem_used") return job.mem_used_gb;
  if (name == "mem_used_max") return job.mem_used_max_gb;
  if (name == "io_scratch_write") return job.io_scratch_write_mb_s;
  if (name == "io_work_write") return job.io_work_write_mb_s;
  if (name == "net_ib_tx") return job.net_ib_tx_mb_s;
  if (name == "net_lnet_tx") return job.net_lnet_tx_mb_s;
  if (name == "cpu_user") return job.cpu_user;
  if (name == "cpu_system") return job.cpu_system;
  if (name == "io_scratch_read") return job.io_scratch_read_mb_s;
  if (name == "net_ib_rx") return job.net_ib_rx_mb_s;
  if (name == "net_lnet_rx") return job.net_lnet_rx_mb_s;
  if (name == "swap") return job.swap_mb_s;
  if (name == "load") return job.load_mean;
  throw common::NotFoundError("job metric '" + std::string(name) + "'");
}

warehouse::Table to_table(std::span<const JobSummary> jobs) {
  using warehouse::ColType;
  std::vector<std::pair<std::string, ColType>> schema = {
      {"job_id", ColType::kInt64},   {"user", ColType::kString},
      {"app", ColType::kString},     {"science", ColType::kString},
      {"project", ColType::kString}, {"cluster", ColType::kString},
      {"submit", ColType::kInt64},   {"start", ColType::kInt64},
      {"end", ColType::kInt64},      {"nodes", ColType::kInt64},
      {"cores", ColType::kInt64},    {"node_hours", ColType::kDouble},
      {"exit_status", ColType::kInt64}, {"failed", ColType::kInt64},
      {"reconciled", ColType::kInt64},
  };
  for (const auto& m : all_metric_names()) schema.emplace_back(m, ColType::kDouble);
  warehouse::Table t("jobs", std::move(schema));
  for (const auto& j : jobs) {
    auto row = t.append();
    row.set("job_id", static_cast<std::int64_t>(j.id))
        .set("user", j.user)
        .set("app", j.app)
        .set("science", j.science)
        .set("project", j.project)
        .set("cluster", j.cluster)
        .set("submit", static_cast<std::int64_t>(j.submit))
        .set("start", static_cast<std::int64_t>(j.start))
        .set("end", static_cast<std::int64_t>(j.end))
        .set("nodes", static_cast<std::int64_t>(j.nodes))
        .set("cores", static_cast<std::int64_t>(j.cores))
        .set("node_hours", j.node_hours)
        .set("exit_status", static_cast<std::int64_t>(j.exit_status))
        .set("failed", static_cast<std::int64_t>(j.failed))
        .set("reconciled", static_cast<std::int64_t>(j.reconciled ? 1 : 0));
    for (const auto& m : all_metric_names()) {
      const double v = metric_value(j, m);
      row.set(m, std::isnan(v) ? 0.0 : v);
    }
  }
  return t;
}

}  // namespace supremm::etl
