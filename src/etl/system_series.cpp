#include "etl/system_series.h"

#include "common/error.h"

namespace supremm::etl {

const std::vector<double>& SystemSeries::series(std::string_view metric) const {
  if (metric == "cpu_flops") return flops_tf;
  if (metric == "mem_used") return mem_gb_per_node;
  if (metric == "io_scratch_write") return scratch_write_mb_s;
  if (metric == "io_scratch_read") return scratch_read_mb_s;
  if (metric == "io_work_write") return work_write_mb_s;
  if (metric == "net_ib_tx") return ib_tx_mb_s;
  if (metric == "net_lnet_tx") return lnet_tx_mb_s;
  if (metric == "cpu_idle") return cpu_idle_frac;
  if (metric == "active_nodes") return active_nodes;
  throw common::NotFoundError("system series '" + std::string(metric) + "'");
}

bool SystemSeries::has_series(std::string_view metric) const noexcept {
  for (const char* m : {"cpu_flops", "mem_used", "io_scratch_write", "io_scratch_read",
                        "io_work_write", "net_ib_tx", "net_lnet_tx", "cpu_idle",
                        "active_nodes"}) {
    if (metric == m) return true;
  }
  return false;
}

}  // namespace supremm::etl
