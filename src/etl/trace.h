// Per-job time traces - the data behind the paper's §4.3.1 "resource use
// profile by job" user report: the job's resource rates over its lifetime,
// aggregated over its nodes per sampling interval.
#pragma once

#include <vector>

#include "common/time.h"
#include "facility/jobs.h"
#include "taccstats/writer.h"

namespace supremm::etl {

/// One interval of a job's life, aggregated over all reporting nodes.
struct TracePoint {
  common::TimePoint t = 0;          // interval start (aligned to the cadence)
  double dt = 0;                    // node-seconds observed in the interval
  std::size_t nodes = 0;            // nodes contributing
  double cpu_idle = 0;              // fraction
  double cpu_user = 0;
  double flops_gf_node = 0;         // GF/s per node (0 when counters invalid)
  bool flops_valid = false;
  double mem_gb_node = 0;           // GB per node (gauge mean)
  double scratch_write_mb_s = 0;    // per node
  double work_write_mb_s = 0;
  double ib_tx_mb_s = 0;
  double lnet_tx_mb_s = 0;
};

/// Extract the trace of job `id` from raw files (all hosts), bucketing
/// sample pairs by `interval`. Sorted by time; empty when the job left no
/// samples.
[[nodiscard]] std::vector<TracePoint> extract_job_trace(
    const std::vector<taccstats::RawFile>& files, facility::JobId id,
    common::Duration interval = 10 * common::kMinute);

}  // namespace supremm::etl
