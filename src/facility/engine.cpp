#include "facility/engine.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "facility/noise.h"

namespace supremm::facility {

namespace {

constexpr double kOsBaselineMemGb = 1.6;
constexpr double kMemRampSeconds = 1800.0;  // memory footprint ramp-in
constexpr double kBytesPerMb = 1.0e6;

/// Accumulate rate*dt into a u64 counter.
void acc(std::uint64_t& counter, double rate_per_s, double dt) noexcept {
  if (rate_per_s <= 0.0 || dt <= 0.0) return;
  counter += static_cast<std::uint64_t>(rate_per_s * dt);
}

}  // namespace

FacilityEngine::FacilityEngine(ClusterSpec spec, std::vector<JobExecution> executions,
                               std::vector<MaintenanceWindow> maintenance,
                               common::TimePoint start, common::TimePoint horizon,
                               std::uint64_t seed)
    : spec_(std::move(spec)),
      executions_(std::move(executions)),
      maintenance_(std::move(maintenance)),
      start_(start),
      horizon_(horizon),
      seed_(seed) {
  if (horizon_ <= start_) throw common::InvalidArgument("engine horizon <= start");

  const auto mem_kb = static_cast<std::uint64_t>(spec_.node.mem_gb * 1024.0 * 1024.0);
  nodes_.reserve(spec_.node_count);
  for (std::size_t i = 0; i < spec_.node_count; ++i) {
    auto nc = std::make_unique<procsim::NodeCounters>(node_hostname(spec_, i),
                                                      spec_.node.arch, spec_.node.sockets,
                                                      spec_.node.cores_per_socket, mem_kb);
    nc->net_devs.push_back({.name = "eth0"});
    nc->block_devs.push_back({.name = "sda"});
    for (const auto& fs : spec_.lustre_filesystems) {
      nc->lustre_mounts.push_back({.name = fs.name});
    }
    nc->tmpfs_mounts.push_back({.name = "/dev/shm"});
    nc->tmpfs_mounts.push_back({.name = "/tmp"});
    nc->has_nfs = spec_.has_nfs;
    nc->set_mem_used_kb(static_cast<std::uint64_t>(kOsBaselineMemGb * 1024.0 * 1024.0));
    nodes_.push_back(std::move(nc));
  }

  // Per-node job segments.
  std::vector<std::vector<Segment>> jobs(spec_.node_count);
  for (std::size_t e = 0; e < executions_.size(); ++e) {
    const auto& ex = executions_[e];
    for (const std::uint32_t n : ex.node_ids) {
      if (n >= spec_.node_count) throw common::InvalidArgument("execution node out of range");
      jobs[n].push_back({ex.start, ex.end, Segment::Kind::kJob, e});
    }
  }

  timelines_.resize(spec_.node_count);
  cursors_.assign(spec_.node_count, start_);
  for (std::size_t n = 0; n < spec_.node_count; ++n) {
    auto& segs = jobs[n];
    std::sort(segs.begin(), segs.end(),
              [](const Segment& a, const Segment& b) { return a.start < b.start; });
    // Merge jobs + down windows + idle gaps into a contiguous timeline.
    std::vector<Segment> merged;
    std::size_t ji = 0;
    std::size_t wi = 0;
    common::TimePoint t = start_;
    while (t < horizon_) {
      // Next boundary of interest.
      const Segment* job = ji < segs.size() ? &segs[ji] : nullptr;
      const MaintenanceWindow* win = wi < maintenance_.size() ? &maintenance_[wi] : nullptr;
      // Skip stale entries.
      if (job != nullptr && job->end <= t) {
        ++ji;
        continue;
      }
      if (win != nullptr && win->end() <= t) {
        ++wi;
        continue;
      }
      if (win != nullptr && win->start <= t) {
        // Down now (jobs were killed at window start by the scheduler).
        const common::TimePoint e = std::min(horizon_, win->end());
        merged.push_back({t, e, Segment::Kind::kDown, 0});
        t = e;
        continue;
      }
      if (job != nullptr && job->start <= t) {
        common::TimePoint e = std::min(horizon_, job->end);
        if (win != nullptr) e = std::min(e, win->start);
        merged.push_back({t, e, Segment::Kind::kJob, job->exec_index});
        t = e;
        continue;
      }
      // Idle until the next job or window.
      common::TimePoint e = horizon_;
      if (job != nullptr) e = std::min(e, job->start);
      if (win != nullptr) e = std::min(e, win->start);
      merged.push_back({t, e, Segment::Kind::kIdle, 0});
      t = e;
    }
    timelines_[n] = std::move(merged);
  }
}

const std::vector<Segment>& FacilityEngine::timeline(std::size_t node) const {
  return timelines_.at(node);
}

procsim::NodeCounters& FacilityEngine::counters(std::size_t node) { return *nodes_.at(node); }

const procsim::NodeCounters& FacilityEngine::counters(std::size_t node) const {
  return *nodes_.at(node);
}

common::TimePoint FacilityEngine::cursor(std::size_t node) const { return cursors_.at(node); }

const JobExecution* FacilityEngine::running_at(std::size_t node, common::TimePoint t) const {
  for (const auto& seg : timelines_.at(node)) {
    if (seg.start <= t && t < seg.end) {
      return seg.kind == Segment::Kind::kJob ? &executions_[seg.exec_index] : nullptr;
    }
    if (seg.start > t) break;
  }
  return nullptr;
}

bool FacilityEngine::node_up(std::size_t node, common::TimePoint t) const {
  for (const auto& seg : timelines_.at(node)) {
    if (seg.start <= t && t < seg.end) return seg.kind != Segment::Kind::kDown;
    if (seg.start > t) break;
  }
  return true;
}

void FacilityEngine::advance_node(std::size_t node, common::TimePoint t) {
  common::TimePoint& cur = cursors_.at(node);
  t = std::min(t, horizon_);
  if (t <= cur) return;
  for (const auto& seg : timelines_[node]) {
    if (seg.end <= cur) continue;
    if (seg.start >= t) break;
    const common::TimePoint t0 = std::max(seg.start, cur);
    const common::TimePoint t1 = std::min(seg.end, t);
    if (t1 > t0) integrate_segment(node, seg, t0, t1);
  }
  cur = t;
}

void FacilityEngine::integrate_segment(std::size_t node, const Segment& seg,
                                       common::TimePoint t0, common::TimePoint t1) {
  switch (seg.kind) {
    case Segment::Kind::kDown:
      return;  // counters frozen; the host is off
    case Segment::Kind::kIdle: {
      // Integrate block-wise so gauges settle to idle values.
      integrate_idle_block(node, t0, t1);
      return;
    }
    case Segment::Kind::kJob: {
      const JobExecution& exec = executions_[seg.exec_index];
      // Split at modulation block boundaries for within-job burstiness.
      common::TimePoint t = t0;
      while (t < t1) {
        const common::TimePoint block_end =
            (block_of(t, kModulationBlock) + 1) * kModulationBlock;
        const common::TimePoint e = std::min(t1, block_end);
        integrate_job_block(node, exec, t, e);
        t = e;
      }
      return;
    }
  }
}

void FacilityEngine::integrate_idle_block(std::size_t node, common::TimePoint t0,
                                          common::TimePoint t1) {
  procsim::NodeCounters& nc = *nodes_[node];
  const double dt = static_cast<double>(t1 - t0);

  for (auto& core : nc.cpu) {
    acc(core.idle, 99.6, dt);  // centiseconds: ~100/s idle
    acc(core.system, 0.3, dt);
    acc(core.irq, 0.1, dt);
  }
  nc.set_mem_used_kb(static_cast<std::uint64_t>(kOsBaselineMemGb * 1024.0 * 1024.0));
  auto& eth = nc.net("eth0");
  acc(eth.rx_bytes, 12.0e3, dt);  // management chatter
  acc(eth.tx_bytes, 8.0e3, dt);
  acc(eth.rx_packets, 15.0, dt);
  acc(eth.tx_packets, 10.0, dt);
  acc(nc.irq.timer, 250.0 * static_cast<double>(nc.cores()), dt);
  acc(nc.irq.hw_total, 255.0 * static_cast<double>(nc.cores()), dt);
  acc(nc.irq.sw_total, 60.0 * static_cast<double>(nc.cores()), dt);
  acc(nc.ps.ctxt, 900.0, dt);
  nc.ps.load_1 = 2;  // ~0.02
  nc.ps.load_5 = 2;
  nc.ps.load_15 = 2;
  nc.ps.nr_running = 0;
  nc.ps.nr_threads = 180;
  nc.sysv_shm.segments = 0;
  nc.sysv_shm.bytes = 0;
  for (auto& m : nc.tmpfs_mounts) m.bytes_used = 32ULL << 20;
  nc.vfs.dentry_use = 30000;
  nc.vfs.file_use = 1200;
  nc.vfs.inode_use = 25000;
  acc(nc.vm.pgfault, 120.0, dt);
  auto& sda = nc.block_devs.front();
  acc(sda.wr_ios, 0.5, dt);
  acc(sda.wr_sectors, 24.0, dt);  // syslog etc.
  acc(sda.io_ticks, 1.0, dt);
}

void FacilityEngine::integrate_job_block(std::size_t node, const JobExecution& exec,
                                         common::TimePoint t0, common::TimePoint t1) {
  procsim::NodeCounters& nc = *nodes_[node];
  const double dt = static_cast<double>(t1 - t0);
  const JobBehavior& b = exec.req.behavior;
  const auto job = static_cast<std::uint64_t>(exec.req.id);
  const std::int64_t block = block_of(t0, kModulationBlock);

  const double mod_flops = lognormal_mod(b.flops_jitter, seed_, job, MetricTag::kFlops, block);
  const double mod_idle = lognormal_mod(b.idle_jitter, seed_, job, MetricTag::kIdle, block);
  const double mod_mem = lognormal_mod(b.mem_jitter, seed_, job, MetricTag::kMem, block);
  const double mod_net = lognormal_mod(b.net_jitter, seed_, job, MetricTag::kNet, block);
  const double mod_io = lognormal_mod(b.io_jitter, seed_, job, MetricTag::kIo, block);

  const double idle_frac = std::clamp(b.idle_frac * mod_idle, 0.0, 0.98);
  const double sys_frac = std::min(b.sys_frac, 1.0 - idle_frac);
  const double busy_frac = std::max(0.0, 1.0 - idle_frac - sys_frac);

  // --- CPU scheduler accounting (centiseconds/second = 100 * fraction).
  for (auto& core : nc.cpu) {
    acc(core.user, busy_frac * 100.0, dt);
    acc(core.system, sys_frac * 85.0, dt);
    acc(core.iowait, sys_frac * 12.0, dt);
    acc(core.irq, sys_frac * 3.0, dt);
    acc(core.idle, idle_frac * 100.0, dt);
  }

  // --- Hardware performance counters (per core).
  const double flops_per_core_s =
      b.flops_frac * mod_flops * spec_.node.peak_gflops_per_core * 1.0e9;
  const auto flops_count = static_cast<std::uint64_t>(flops_per_core_s * dt);
  for (auto& pc : nc.perf) {
    pc.deliver(procsim::PerfEvent::kFlops, flops_count);
    pc.deliver(procsim::PerfEvent::kMemAccesses,
               static_cast<std::uint64_t>(flops_per_core_s * 1.7 * dt));
    pc.deliver(procsim::PerfEvent::kDcacheFills,
               static_cast<std::uint64_t>(flops_per_core_s * 0.05 * dt));
    pc.deliver(procsim::PerfEvent::kNumaTraffic,
               static_cast<std::uint64_t>(flops_per_core_s * 0.12 * dt));
    pc.deliver(procsim::PerfEvent::kL1DHits,
               static_cast<std::uint64_t>(flops_per_core_s * 2.4 * dt));
  }

  // --- Memory gauge (ramp in over the first half hour, then modulate).
  const double ramp =
      std::min(1.0, static_cast<double>(t1 - exec.start) / kMemRampSeconds);
  const double mem_gb = kOsBaselineMemGb + b.mem_gb * ramp * mod_mem;
  nc.set_mem_used_kb(static_cast<std::uint64_t>(mem_gb * 1024.0 * 1024.0));

  // --- NUMA counters follow memory traffic.
  for (auto& nn : nc.numa) {
    acc(nn.numa_hit, busy_frac * 50000.0, dt);
    acc(nn.local_node, busy_frac * 48000.0, dt);
    acc(nn.numa_miss, busy_frac * 2500.0, dt);
    acc(nn.other_node, busy_frac * 2500.0, dt);
    acc(nn.numa_foreign, busy_frac * 600.0, dt);
  }

  // --- Interconnect (InfiniBand). rx tracks tx (the paper notes they are
  // strongly positively correlated).
  const double ib_tx = b.ib_tx_mb_s * mod_net * kBytesPerMb;
  acc(nc.ib.tx_bytes, ib_tx, dt);
  acc(nc.ib.rx_bytes, ib_tx * 0.97, dt);
  acc(nc.ib.tx_packets, ib_tx / 2048.0, dt);
  acc(nc.ib.rx_packets, ib_tx * 0.97 / 2048.0, dt);

  // --- Lustre filesystems + checkpoint pulses on scratch.
  double scratch_write = b.scratch_write_mb_s * mod_io * kBytesPerMb * dt;
  if (b.checkpoint_period_min > 0.0 && b.checkpoint_gb > 0.0) {
    const auto period = static_cast<common::Duration>(b.checkpoint_period_min * 60.0);
    // Pulses at job-relative times k*period, k >= 1.
    const std::int64_t k0 = (t0 - exec.start) / period;  // pulses strictly before t0
    const std::int64_t k1 = (t1 - exec.start) / period;  // pulses at/before t1
    const std::int64_t pulses = std::max<std::int64_t>(0, k1 - k0);
    scratch_write += static_cast<double>(pulses) * b.checkpoint_gb * 1.0e9;
  }
  const double scratch_read = b.scratch_read_mb_s * mod_io * kBytesPerMb * dt;
  const double work_write = b.work_write_mb_s * mod_io * kBytesPerMb * dt;
  auto& scratch = nc.lustre("scratch");
  scratch.write_bytes += static_cast<std::uint64_t>(scratch_write);
  scratch.read_bytes += static_cast<std::uint64_t>(scratch_read);
  acc(scratch.open, 0.4, dt);
  acc(scratch.close, 0.4, dt);
  acc(scratch.getattr, 2.0, dt);
  auto& work = nc.lustre("work");
  work.write_bytes += static_cast<std::uint64_t>(work_write);
  acc(work.read_bytes, 0.05 * kBytesPerMb, dt);
  acc(work.open, 0.1, dt);
  acc(work.close, 0.1, dt);
  acc(work.getattr, 0.5, dt);
  double share_traffic = 0.0;
  for (auto& m : nc.lustre_mounts) {
    if (m.name == "share") {
      share_traffic = 0.05 * kBytesPerMb;
      acc(m.write_bytes, share_traffic * 0.4, dt);
      acc(m.read_bytes, share_traffic * 0.6, dt);
      acc(m.getattr, 0.3, dt);
    }
  }

  // --- LNET carries all Lustre client traffic.
  nc.lnet.tx_bytes += static_cast<std::uint64_t>(
      (scratch_write + work_write) * 1.02 + share_traffic * 0.4 * dt);
  nc.lnet.rx_bytes += static_cast<std::uint64_t>(
      (scratch_read + 0.05 * kBytesPerMb * dt) * 1.02 + share_traffic * 0.6 * dt);
  nc.lnet.tx_msgs += static_cast<std::uint64_t>((scratch_write + work_write) / 1.0e6);
  nc.lnet.rx_msgs += static_cast<std::uint64_t>(scratch_read / 1.0e6);

  // --- Ethernet: light control traffic (plus NFS home dirs on Lonestar4).
  auto& eth = nc.net("eth0");
  const double nfs = spec_.has_nfs ? 0.1 * kBytesPerMb : 0.0;
  acc(eth.rx_bytes, 20.0e3 + nfs * 0.5, dt);
  acc(eth.tx_bytes, 15.0e3 + nfs * 0.5, dt);
  acc(eth.rx_packets, 25.0 + nfs / 4000.0, dt);
  acc(eth.tx_packets, 20.0 + nfs / 4000.0, dt);
  if (spec_.has_nfs) {
    acc(nc.nfs.rpc_calls, 4.0, dt);
    acc(nc.nfs.read_bytes, nfs * 0.5, dt);
    acc(nc.nfs.write_bytes, nfs * 0.5, dt);
    acc(nc.nfs.getattr, 2.0, dt);
  }

  // --- VM / process / IRQ / caches.
  const double cores = static_cast<double>(nc.cores());
  acc(nc.vm.pgfault, busy_frac * cores * 1500.0, dt);
  acc(nc.vm.pgmajfault, 0.05, dt);
  nc.vm.pgpgin += static_cast<std::uint64_t>(scratch_read / 4096.0);
  nc.vm.pgpgout += static_cast<std::uint64_t>((scratch_write + work_write) / 4096.0);
  acc(nc.ps.ctxt, busy_frac * cores * 2500.0 + 900.0, dt);
  acc(nc.ps.processes, 0.2, dt);
  const auto load = static_cast<std::uint64_t>(busy_frac * cores * 100.0);
  nc.ps.load_1 = load;
  nc.ps.load_5 = load;
  nc.ps.load_15 = load;
  nc.ps.nr_running = static_cast<std::uint64_t>(std::ceil(busy_frac * cores));
  nc.ps.nr_threads = 180 + nc.cores() + 4;
  nc.sysv_shm.segments = 2;
  nc.sysv_shm.bytes = 64ULL << 20;
  for (auto& m : nc.tmpfs_mounts) {
    m.bytes_used = (32ULL << 20) + static_cast<std::uint64_t>(mem_gb * 0.02 * 1024.0 *
                                                              1024.0 * 1024.0);
  }
  nc.vfs.dentry_use = 30000 + static_cast<std::uint64_t>(busy_frac * 20000.0);
  nc.vfs.file_use = 1200 + static_cast<std::uint64_t>(busy_frac * 800.0);
  nc.vfs.inode_use = 25000 + static_cast<std::uint64_t>(busy_frac * 15000.0);
  acc(nc.irq.timer, 250.0 * cores, dt);
  acc(nc.irq.net_rx, ib_tx / 2048.0, dt);
  acc(nc.irq.hw_total, 255.0 * cores + ib_tx / 2048.0, dt);
  acc(nc.irq.sw_total, 120.0 * cores, dt);
  auto& sda = nc.block_devs.front();
  acc(sda.wr_ios, 1.0, dt);
  acc(sda.wr_sectors, 48.0, dt);
  acc(sda.rd_ios, 0.2, dt);
  acc(sda.rd_sectors, 16.0, dt);
  acc(sda.io_ticks, 2.0, dt);
}

}  // namespace supremm::facility
