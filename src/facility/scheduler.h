// Batch scheduler: FIFO with EASY backfill, plus facility maintenance
// windows (Figure 8's planned/unplanned shutdowns, during which the active
// node count drops to zero and running jobs are killed).
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.h"
#include "facility/hardware.h"
#include "facility/jobs.h"

namespace supremm::facility {

/// A full-facility outage: all nodes down for [start, start+length).
struct MaintenanceWindow {
  common::TimePoint start = 0;
  common::Duration length = 0;
  bool scheduled = true;

  [[nodiscard]] common::TimePoint end() const noexcept { return start + length; }
};

/// Scheduled monthly windows (~10 h) plus Poisson unscheduled outages
/// (mean one per 90 days, 3-16 h), deterministic in `seed`. Sorted,
/// non-overlapping.
[[nodiscard]] std::vector<MaintenanceWindow> standard_maintenance(common::TimePoint start,
                                                                  common::Duration span,
                                                                  std::uint64_t seed);

struct SchedulerConfig {
  /// How many queued jobs past the head are considered for backfill.
  std::size_t backfill_depth = 64;
};

class Scheduler {
 public:
  using Config = SchedulerConfig;

  /// Run the requests (any order; sorted internally by submit time) through
  /// the cluster and return completed executions sorted by start time.
  /// Jobs flagged `will_fail` terminate early at a random fraction of their
  /// natural runtime with ExitKind::kFailed. Jobs running when a maintenance
  /// window opens are killed (ExitKind::kKilledMaintenance).
  [[nodiscard]] static std::vector<JobExecution> run(
      const ClusterSpec& spec, std::vector<JobRequest> requests,
      const std::vector<MaintenanceWindow>& maintenance, Config config = Config{});
};

/// Count of nodes busy (running a job) at time t; Figure 8's "active nodes".
[[nodiscard]] std::size_t busy_nodes_at(const std::vector<JobExecution>& execs,
                                        common::TimePoint t);

}  // namespace supremm::facility
