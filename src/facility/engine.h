// The facility engine: turns scheduled job executions into procfs counter
// evolution on every node.
//
// Counters are advanced lazily: the collection driver asks a node to advance
// to a sample instant and the engine integrates the piecewise-constant (per
// modulation block) resource rates of whatever ran on that node since the
// last advance. Distinct nodes share no mutable state, so nodes may be
// advanced concurrently from a thread pool.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/time.h"
#include "facility/apps.h"
#include "facility/hardware.h"
#include "facility/jobs.h"
#include "facility/scheduler.h"
#include "procsim/counters.h"

namespace supremm::facility {

/// One span of a node's life.
struct Segment {
  enum class Kind : std::uint8_t { kIdle, kJob, kDown };
  common::TimePoint start = 0;
  common::TimePoint end = 0;
  Kind kind = Kind::kIdle;
  std::size_t exec_index = 0;  // valid when kind == kJob
};

class FacilityEngine {
 public:
  /// `executions` and `maintenance` must be disjoint per node / globally (as
  /// produced by Scheduler::run and standard_maintenance). `horizon` bounds
  /// the timelines. OS memory baseline and background activity are built in.
  FacilityEngine(ClusterSpec spec, std::vector<JobExecution> executions,
                 std::vector<MaintenanceWindow> maintenance, common::TimePoint start,
                 common::TimePoint horizon, std::uint64_t seed);

  [[nodiscard]] const ClusterSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] const std::vector<JobExecution>& executions() const noexcept {
    return executions_;
  }
  [[nodiscard]] const std::vector<MaintenanceWindow>& maintenance() const noexcept {
    return maintenance_;
  }
  [[nodiscard]] common::TimePoint start_time() const noexcept { return start_; }
  [[nodiscard]] common::TimePoint horizon() const noexcept { return horizon_; }

  /// Per-node segment timeline (idle / job / down), contiguous over
  /// [start, horizon).
  [[nodiscard]] const std::vector<Segment>& timeline(std::size_t node) const;

  /// Counter state; advance first, then read.
  [[nodiscard]] procsim::NodeCounters& counters(std::size_t node);
  [[nodiscard]] const procsim::NodeCounters& counters(std::size_t node) const;

  /// Integrate node counters over [cursor, t); cursor moves to t. Calls with
  /// t <= cursor are no-ops. Thread-safe across *different* nodes only.
  void advance_node(std::size_t node, common::TimePoint t);

  [[nodiscard]] common::TimePoint cursor(std::size_t node) const;

  /// Execution running on the node at t, or nullptr (idle or down).
  [[nodiscard]] const JobExecution* running_at(std::size_t node, common::TimePoint t) const;

  /// False while the node is inside a maintenance window.
  [[nodiscard]] bool node_up(std::size_t node, common::TimePoint t) const;

  /// Modulation block length for within-job noise (10 min, matching the
  /// collector cadence the paper used).
  static constexpr common::Duration kModulationBlock = 10 * common::kMinute;

 private:
  void integrate_segment(std::size_t node, const Segment& seg, common::TimePoint t0,
                         common::TimePoint t1);
  void integrate_job_block(std::size_t node, const JobExecution& exec, common::TimePoint t0,
                           common::TimePoint t1);
  void integrate_idle_block(std::size_t node, common::TimePoint t0, common::TimePoint t1);

  ClusterSpec spec_;
  std::vector<JobExecution> executions_;
  std::vector<MaintenanceWindow> maintenance_;
  common::TimePoint start_ = 0;
  common::TimePoint horizon_ = 0;
  std::uint64_t seed_ = 0;
  std::vector<std::unique_ptr<procsim::NodeCounters>> nodes_;
  std::vector<std::vector<Segment>> timelines_;
  std::vector<common::TimePoint> cursors_;
};

}  // namespace supremm::facility
