#include "facility/hardware.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/strings.h"

namespace supremm::facility {

ClusterSpec ranger() {
  ClusterSpec s;
  s.name = "ranger";
  s.node_count = 3936;
  s.node.arch = procsim::Arch::kAmd10h;
  s.node.sockets = 4;
  s.node.cores_per_socket = 4;
  s.node.mem_gb = 32.0;
  s.node.clock_ghz = 2.3;
  // 579 TF benchmarked peak / 62,976 cores = 9.19 GF/core (SSE, 4 flops/cycle).
  s.node.peak_gflops_per_core = 9.19;
  s.lustre_filesystems = {
      {"scratch", /*purged=*/true, /*quota_gb=*/400.0 * 1024.0},
      {"work", /*purged=*/false, /*quota_gb=*/200.0},
      {"share", /*purged=*/false, /*quota_gb=*/1024.0},
  };
  s.has_nfs = false;
  s.user_count = 2000;
  s.mean_job_minutes = 549.0;
  s.target_idle_fraction = 0.10;
  // Offered load slightly above capacity: the paper notes 'the over-request
  // of most if not all HPC resources'; achieved utilization is then bounded
  // by scheduling fragmentation, as on the real machine.
  s.utilization_target = 1.05;
  return s;
}

ClusterSpec lonestar4() {
  ClusterSpec s;
  s.name = "lonestar4";
  s.node_count = 1088;
  s.node.arch = procsim::Arch::kIntelWestmere;
  s.node.sockets = 2;
  s.node.cores_per_socket = 6;
  s.node.mem_gb = 24.0;
  s.node.clock_ghz = 3.33;
  // Westmere: 4 SSE flops/cycle at 3.33 GHz = 13.3 GF/core.
  s.node.peak_gflops_per_core = 13.3;
  s.lustre_filesystems = {
      {"scratch", /*purged=*/true, /*quota_gb=*/250.0 * 1024.0},
      {"work", /*purged=*/false, /*quota_gb=*/200.0},
  };
  s.has_nfs = true;
  s.user_count = 1400;
  s.mean_job_minutes = 446.0;
  s.target_idle_fraction = 0.15;
  s.utilization_target = 1.05;
  s.mem_usage_mult = 2.1;
  s.idle_usage_mult = 1.55;
  return s;
}

ClusterSpec scaled(ClusterSpec spec, double node_scale) {
  if (node_scale <= 0.0 || node_scale > 1.0) {
    throw common::InvalidArgument("node_scale must be in (0, 1]");
  }
  const auto nodes = static_cast<std::size_t>(
      std::max(1.0, std::round(static_cast<double>(spec.node_count) * node_scale)));
  const auto users = static_cast<std::size_t>(
      std::max(8.0, std::round(static_cast<double>(spec.user_count) * node_scale)));
  spec.node_count = nodes;
  spec.user_count = users;
  return spec;
}

std::string node_hostname(const ClusterSpec& spec, std::size_t i) {
  return common::strprintf("%s-c%04zu", spec.name.c_str(), i);
}

std::vector<ClusterSpec> heterogeneous_fleet(std::size_t n, double node_scale) {
  if (n == 0) {
    throw common::InvalidArgument("heterogeneous_fleet: n must be positive");
  }
  std::vector<ClusterSpec> fleet;
  fleet.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ClusterSpec spec = scaled(i % 2 == 0 ? ranger() : lonestar4(), node_scale);
    if (i >= 2) {
      spec.name = common::strprintf("%s-%zu", spec.name.c_str(), i / 2 + 1);
    }
    fleet.push_back(std::move(spec));
  }
  return fleet;
}

}  // namespace supremm::facility
