#include "facility/scheduler.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <queue>

#include "common/error.h"
#include "common/rng.h"

namespace supremm::facility {

std::vector<MaintenanceWindow> standard_maintenance(common::TimePoint start,
                                                    common::Duration span,
                                                    std::uint64_t seed) {
  std::vector<MaintenanceWindow> out;
  // Scheduled: every ~35 days, 10 hours, starting on day 20.
  for (common::TimePoint t = start + 20 * common::kDay; t < start + span;
       t += 35 * common::kDay) {
    out.push_back({t, 10 * common::kHour, /*scheduled=*/true});
  }
  // Unscheduled: Poisson, mean one per 90 days.
  common::RngStream rng(seed, "maintenance", 0);
  common::TimePoint t = start;
  while (true) {
    t += static_cast<common::Duration>(rng.exponential(90.0 * common::kDay));
    if (t >= start + span) break;
    const auto len = static_cast<common::Duration>(rng.uniform(3.0, 16.0) * common::kHour);
    out.push_back({t, len, /*scheduled=*/false});
  }
  std::sort(out.begin(), out.end(),
            [](const MaintenanceWindow& a, const MaintenanceWindow& b) {
              return a.start < b.start;
            });
  // Merge overlaps so the engine/timeline logic can assume disjoint windows.
  std::vector<MaintenanceWindow> merged;
  for (const auto& w : out) {
    if (!merged.empty() && w.start <= merged.back().end()) {
      merged.back().length =
          std::max(merged.back().end(), w.end()) - merged.back().start;
      merged.back().scheduled = merged.back().scheduled && w.scheduled;
    } else {
      merged.push_back(w);
    }
  }
  return merged;
}

namespace {

struct Running {
  std::size_t exec_index;
  common::TimePoint end;
};
struct EndLater {
  bool operator()(const Running& a, const Running& b) const { return a.end > b.end; }
};

}  // namespace

std::vector<JobExecution> Scheduler::run(const ClusterSpec& spec,
                                         std::vector<JobRequest> requests,
                                         const std::vector<MaintenanceWindow>& maintenance,
                                         Config config) {
  if (spec.node_count == 0) throw common::InvalidArgument("cluster has no nodes");
  std::sort(requests.begin(), requests.end(),
            [](const JobRequest& a, const JobRequest& b) { return a.submit < b.submit; });

  std::vector<JobExecution> execs;
  execs.reserve(requests.size());

  // Free nodes kept as a stack of ids.
  std::vector<std::uint32_t> free_nodes;
  free_nodes.reserve(spec.node_count);
  for (std::size_t i = spec.node_count; i > 0; --i) {
    free_nodes.push_back(static_cast<std::uint32_t>(i - 1));
  }

  std::priority_queue<Running, std::vector<Running>, EndLater> running;
  std::deque<JobRequest> queue;
  std::size_t next_req = 0;
  std::size_t next_win = 0;
  bool down = false;
  common::TimePoint down_until = 0;

  constexpr common::TimePoint kInf = std::numeric_limits<common::TimePoint>::max();

  auto actual_end = [](const JobRequest& r, common::TimePoint start_at) {
    common::Duration d = r.duration;
    if (r.will_fail) {
      // Failed jobs die partway through; fraction is deterministic per job.
      common::RngStream rng(0x5eedf00dULL, "fail", static_cast<std::uint64_t>(r.id));
      d = std::max<common::Duration>(60, static_cast<common::Duration>(
                                             rng.uniform(0.1, 1.0) *
                                             static_cast<double>(r.duration)));
    }
    return start_at + d;
  };

  auto start_job = [&](const JobRequest& r, common::TimePoint now) {
    JobExecution e;
    e.req = r;
    e.start = now;
    e.end = actual_end(r, now);
    e.exit = r.will_fail ? ExitKind::kFailed : ExitKind::kOk;
    e.node_ids.reserve(r.nodes);
    for (std::size_t k = 0; k < r.nodes; ++k) {
      e.node_ids.push_back(free_nodes.back());
      free_nodes.pop_back();
    }
    execs.push_back(std::move(e));
    running.push({execs.size() - 1, execs.back().end});
  };

  auto try_schedule = [&](common::TimePoint now) {
    if (down) return;
    // Start head jobs FIFO while they fit.
    while (!queue.empty() && queue.front().nodes <= free_nodes.size()) {
      start_job(queue.front(), now);
      queue.pop_front();
    }
    if (queue.empty()) return;

    // EASY backfill: find when the head job will be able to start (shadow
    // time) and how many nodes will be spare then.
    const std::size_t head_need = queue.front().nodes;
    std::size_t avail = free_nodes.size();
    common::TimePoint shadow = kInf;
    std::size_t spare = 0;
    {
      // Walk completions in end order (copy of the heap).
      auto heap_copy = running;
      while (!heap_copy.empty() && avail < head_need) {
        const Running r = heap_copy.top();
        heap_copy.pop();
        avail += execs[r.exec_index].node_ids.size();
        shadow = r.end;
      }
      if (avail >= head_need) spare = avail - head_need;
      if (shadow == kInf) return;  // head can never start: shouldn't happen
    }

    std::size_t scanned = 0;
    for (auto it = queue.begin() + 1; it != queue.end() && scanned < config.backfill_depth;) {
      ++scanned;
      const bool fits_now = it->nodes <= free_nodes.size();
      const bool ends_before_shadow = now + it->duration <= shadow;
      const bool within_spare = it->nodes <= spare;
      if (fits_now && (ends_before_shadow || within_spare)) {
        if (within_spare && !ends_before_shadow) spare -= it->nodes;
        start_job(*it, now);
        it = queue.erase(it);
      } else {
        ++it;
      }
    }
  };

  auto kill_running = [&](common::TimePoint now) {
    while (!running.empty()) {
      const Running r = running.top();
      running.pop();
      JobExecution& e = execs[r.exec_index];
      if (e.end > now) {
        e.end = std::max(e.start + 1, now);
        e.exit = ExitKind::kKilledMaintenance;
      }
      for (const std::uint32_t n : e.node_ids) free_nodes.push_back(n);
    }
  };

  while (true) {
    common::TimePoint next = kInf;
    if (next_req < requests.size()) next = std::min(next, requests[next_req].submit);
    if (!running.empty()) next = std::min(next, running.top().end);
    if (next_win < maintenance.size()) next = std::min(next, maintenance[next_win].start);
    if (down) next = std::min(next, down_until);
    if (next == kInf) break;

    const common::TimePoint now = next;

    // 1. Completions free their nodes.
    while (!running.empty() && running.top().end <= now) {
      const Running r = running.top();
      running.pop();
      for (const std::uint32_t n : execs[r.exec_index].node_ids) free_nodes.push_back(n);
    }
    // 2. Maintenance transitions.
    if (down && now >= down_until) down = false;
    while (next_win < maintenance.size() && maintenance[next_win].start <= now) {
      const auto& w = maintenance[next_win];
      kill_running(now);
      down = true;
      down_until = std::max(down ? down_until : 0, w.end());
      ++next_win;
    }
    // 3. Submissions.
    while (next_req < requests.size() && requests[next_req].submit <= now) {
      queue.push_back(requests[next_req]);
      ++next_req;
    }
    // 4. Schedule.
    try_schedule(now);
  }

  std::sort(execs.begin(), execs.end(),
            [](const JobExecution& a, const JobExecution& b) {
              return a.start != b.start ? a.start < b.start : a.req.id < b.req.id;
            });
  return execs;
}

std::size_t busy_nodes_at(const std::vector<JobExecution>& execs, common::TimePoint t) {
  std::size_t n = 0;
  for (const auto& e : execs) {
    if (e.start <= t && t < e.end) n += e.node_ids.size();
  }
  return n;
}

}  // namespace supremm::facility
