// Workload generation: a stream of job submissions whose aggregate demand
// tracks the cluster's utilization target.
//
// Self-calibrating arrival process: after emitting a job consuming W
// node-seconds, the inter-arrival gap is drawn exponentially with mean
// W / (target node-seconds per second), modulated by a diurnal/weekly
// submission pattern. This keeps the offered load at the target regardless
// of the job size/duration distributions, so scaled-down clusters reproduce
// the same utilization shapes as the full-size presets.
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.h"
#include "facility/jobs.h"
#include "facility/users.h"

namespace supremm::facility {

struct WorkloadConfig {
  common::TimePoint start = 0;
  common::Duration span = 30 * common::kDay;
  std::uint64_t seed = 42;
  /// Multiplies the cluster's utilization target (1.0 = preset calibration).
  double load_factor = 1.0;
};

/// Diurnal x weekly submission intensity in (0, ~1.6]; peaks on weekday
/// afternoons, troughs on weekend nights.
[[nodiscard]] double submission_intensity(common::TimePoint t) noexcept;

/// Generate submissions over [start, start+span), sorted by submit time.
/// Deterministic in (seed, spec, catalogue, population).
[[nodiscard]] std::vector<JobRequest> generate_workload(
    const ClusterSpec& spec, const std::vector<AppSignature>& catalogue,
    const UserPopulation& population, const WorkloadConfig& config);

}  // namespace supremm::facility
