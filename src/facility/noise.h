// Stateless deterministic noise for within-job metric modulation.
//
// The engine integrates counters lazily over arbitrary [t0, t1) windows, so
// the modulation of a metric must be a pure function of (job, metric, time
// block) - never of sampling order or thread schedule. We hash the triple
// through SplitMix64 and apply Box-Muller.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "common/time.h"

namespace supremm::facility {

/// Tags naming the modulated quantities (stable across releases; part of
/// the determinism contract).
enum class MetricTag : std::uint32_t {
  kFlops = 1,
  kIdle = 2,
  kMem = 3,
  kNet = 4,
  kIo = 5,
};

/// Standard normal deviate determined by the triple.
[[nodiscard]] double gaussian_hash(std::uint64_t seed, std::uint64_t job,
                                   std::uint32_t tag, std::int64_t block) noexcept;

/// Mean-one lognormal modulation factor exp(sigma*z - sigma^2/2), where z is
/// gaussian_hash of the triple. sigma == 0 returns exactly 1.
[[nodiscard]] double lognormal_mod(double sigma, std::uint64_t seed, std::uint64_t job,
                                   MetricTag tag, std::int64_t block) noexcept;

/// The modulation block index containing time t (blocks are `block_len`
/// seconds, aligned to the epoch).
[[nodiscard]] constexpr std::int64_t block_of(common::TimePoint t,
                                              common::Duration block_len) noexcept {
  return t / block_len;
}

}  // namespace supremm::facility
