// Application catalogue: resource-use signatures for the community codes the
// paper analyzes (NAMD, AMBER, GROMACS, ...) plus representative synthetic
// classes (IO-dominated pipelines, under-subscribed node use).
//
// Each signature describes the *distribution* of a job's per-node resource
// rates; a concrete job draws one realization (JobBehavior) at submit time
// and modulates it within the job with metric-specific burstiness. The
// burstiness ordering io_scratch_write > net_ib_tx > cpu_idle > mem_used ~
// cpu_flops is the mechanism behind Table 1's persistence ordering
// (DESIGN.md §6).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace supremm::facility {

/// NSF-style parent science areas (Figure 7a groups memory use by these).
enum class Science : std::uint8_t {
  kMolecularBiosciences,
  kPhysics,
  kChemistry,
  kAstronomicalSciences,
  kMaterialsResearch,
  kAtmosphericSciences,
  kEngineering,
  kComputerScience,
};
inline constexpr std::size_t kScienceCount = 8;

[[nodiscard]] std::string_view science_name(Science s) noexcept;
[[nodiscard]] Science science_from_name(std::string_view name);

/// A lognormal-ish positive random quantity: mean and relative sd.
struct Level {
  double mean = 0.0;
  double rel_sd = 0.0;  // sd as a fraction of the mean

  /// Draw a realization (>= 0); degenerate when rel_sd == 0.
  [[nodiscard]] double draw(common::RngStream& rng) const;
};

/// Per-cluster adjustment of a signature. The paper's Figure 3 shows GROMACS
/// and AMBER behaving differently on Ranger vs Lonestar4 while NAMD is
/// similar; these multipliers express that.
struct ClusterAdjust {
  std::string cluster;        // matches ClusterSpec::name
  double flops_mult = 1.0;
  double idle_mult = 1.0;
  double mem_mult = 1.0;
  double io_mult = 1.0;
  double net_mult = 1.0;
};

/// Resource-use signature of one application.
struct AppSignature {
  std::string name;
  Science science = Science::kComputerScience;
  double popularity = 1.0;  // relative submission weight across the population

  Level flops_frac;        // fraction of per-core peak SSE FLOP/s
  Level idle_frac;         // fraction of core time idle (cpu_idle)
  double sys_frac = 0.02;  // fraction of core time in system
  Level mem_per_node_gb;   // paper's mem_used (includes buffers/cache)
  Level ib_tx_mb_s;        // per node InfiniBand transmit
  Level scratch_write_mb_s;
  Level work_write_mb_s;
  Level scratch_read_mb_s;

  // Within-job temporal modulation (sd of multiplicative lognormal noise per
  // modulation block). Larger = burstier = less persistent.
  double flops_jitter = 0.05;
  double mem_jitter = 0.03;
  double idle_jitter = 0.20;
  double net_jitter = 0.35;
  double io_jitter = 0.80;

  // Periodic checkpoint pulse added to scratch writes.
  double checkpoint_period_min = 0.0;  // 0 = none
  double checkpoint_gb = 0.0;          // per node per pulse

  // Typical job geometry.
  Level nodes;            // node count (rounded, >= 1)
  double max_nodes = 256; // cap
  double failure_prob = 0.02;  // abnormal termination probability

  std::vector<ClusterAdjust> adjusts;

  [[nodiscard]] const ClusterAdjust* adjust_for(const std::string& cluster) const noexcept;
};

/// The resource rates a single job realizes on each of its nodes.
struct JobBehavior {
  double flops_frac = 0.0;
  double idle_frac = 0.0;
  double sys_frac = 0.0;
  double mem_gb = 0.0;
  double ib_tx_mb_s = 0.0;
  double scratch_write_mb_s = 0.0;
  double work_write_mb_s = 0.0;
  double scratch_read_mb_s = 0.0;
  double checkpoint_period_min = 0.0;
  double checkpoint_gb = 0.0;
  // Jitters copied from the signature so the engine can modulate.
  double flops_jitter = 0.0;
  double mem_jitter = 0.0;
  double idle_jitter = 0.0;
  double net_jitter = 0.0;
  double io_jitter = 0.0;
};

/// Draw one job's realized behavior on `cluster` (applies ClusterAdjust,
/// clamps idle to [0, 0.98] and memory to the node capacity).
[[nodiscard]] JobBehavior realize(const AppSignature& sig, const std::string& cluster,
                                  double node_mem_capacity_gb, common::RngStream& rng);

/// The standard catalogue used by all benches and examples. Contains the
/// paper's three MD codes plus nine other representative applications across
/// the eight science areas.
[[nodiscard]] std::vector<AppSignature> standard_catalogue();

/// Index of the application named `name`; throws NotFoundError.
[[nodiscard]] std::size_t app_index(const std::vector<AppSignature>& cat, std::string_view name);

}  // namespace supremm::facility
