// Synthetic user population.
//
// Paper §4.1: "~2000 users submitted jobs to Ranger" with node-hours heavily
// concentrated in the top users (Figure 2 profiles the 5 largest consumers).
// Activity follows a Zipf distribution; each user works in one science area
// with a small personal mix of applications. One deliberately planted
// "outlier" user runs predominantly under-subscribed jobs, reproducing the
// circled users of Figures 4/5.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "facility/apps.h"
#include "facility/hardware.h"

namespace supremm::facility {

struct User {
  std::string name;     // "user0001"
  std::string project;  // allocation / charge number, "TG-ABC123"
  Science science = Science::kComputerScience;
  std::vector<std::size_t> app_ids;     // preferred applications
  std::vector<double> app_weights;      // matching selection weights
  double activity = 1.0;                // relative submission weight
  double size_mult = 1.0;               // personal scaling of job node counts
  double duration_mult = 1.0;           // personal scaling of job durations
};

class UserPopulation {
 public:
  /// Generate `spec.user_count` users over `catalogue`; deterministic in
  /// `seed`.
  static UserPopulation generate(const ClusterSpec& spec,
                                 const std::vector<AppSignature>& catalogue,
                                 std::uint64_t seed);

  [[nodiscard]] std::size_t size() const noexcept { return users_.size(); }
  [[nodiscard]] const User& user(std::size_t i) const { return users_.at(i); }
  [[nodiscard]] const std::vector<User>& users() const noexcept { return users_; }

  /// Activity weights (for weighted user selection).
  [[nodiscard]] const std::vector<double>& activity_weights() const noexcept {
    return weights_;
  }

  /// The planted high-idle outlier (always a heavy user).
  [[nodiscard]] std::size_t outlier_user() const noexcept { return outlier_; }

  /// Index of the user named `name`; throws NotFoundError.
  [[nodiscard]] std::size_t index_of(std::string_view name) const;

 private:
  std::vector<User> users_;
  std::vector<double> weights_;
  std::size_t outlier_ = 0;
};

}  // namespace supremm::facility
