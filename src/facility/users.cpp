#include "facility/users.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/strings.h"

namespace supremm::facility {

UserPopulation UserPopulation::generate(const ClusterSpec& spec,
                                        const std::vector<AppSignature>& catalogue,
                                        std::uint64_t seed) {
  if (spec.user_count == 0) throw common::InvalidArgument("user_count must be > 0");
  if (catalogue.empty()) throw common::InvalidArgument("empty application catalogue");

  UserPopulation pop;
  pop.users_.reserve(spec.user_count);
  pop.weights_ = common::zipf_weights(spec.user_count, 1.1);

  // Applications in a science area, for assigning users a coherent mix.
  std::vector<std::vector<std::size_t>> by_science(kScienceCount);
  for (std::size_t a = 0; a < catalogue.size(); ++a) {
    by_science[static_cast<std::size_t>(catalogue[a].science)].push_back(a);
  }
  // Popularity-weighted science selection.
  std::vector<double> science_weight(kScienceCount, 0.0);
  for (const auto& app : catalogue) {
    science_weight[static_cast<std::size_t>(app.science)] += app.popularity;
  }

  for (std::size_t u = 0; u < spec.user_count; ++u) {
    common::RngStream rng(seed, "user", u);
    User usr;
    usr.name = common::strprintf("user%04zu", u);
    usr.project = common::strprintf("TG-%c%c%c%03zu", 'A' + static_cast<char>(u % 26),
                                    'A' + static_cast<char>((u / 26) % 26),
                                    'A' + static_cast<char>((u / 676) % 26), u % 1000);
    const std::size_t sci = rng.weighted_index(science_weight);
    usr.science = static_cast<Science>(sci);

    // Primary app from the user's science, with popularity weighting; one or
    // two secondary apps from anywhere.
    std::vector<double> w;
    for (const std::size_t a : by_science[sci]) w.push_back(catalogue[a].popularity);
    const std::size_t primary =
        by_science[sci].empty() ? rng.weighted_index(std::vector<double>(catalogue.size(), 1.0))
                                : by_science[sci][rng.weighted_index(w)];
    usr.app_ids.push_back(primary);
    usr.app_weights.push_back(1.0);
    const std::size_t extras = static_cast<std::size_t>(rng.uniform_int(0, 2));
    for (std::size_t k = 0; k < extras; ++k) {
      const auto a = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(catalogue.size()) - 1));
      if (std::find(usr.app_ids.begin(), usr.app_ids.end(), a) == usr.app_ids.end()) {
        usr.app_ids.push_back(a);
        usr.app_weights.push_back(rng.uniform(0.1, 0.5));
      }
    }

    usr.activity = pop.weights_[u];
    usr.size_mult = std::clamp(rng.lognormal(0.0, 0.5), 0.25, 4.0);
    usr.duration_mult = std::clamp(rng.lognormal(0.0, 0.4), 0.3, 3.0);
    pop.users_.push_back(std::move(usr));
  }

  // Plant the Figure 4/5 outlier: a heavy consumer whose jobs are almost
  // exclusively under-subscribed. Idle fraction targets 87% (Ranger) /
  // 89% (Lonestar4); the UNDERSUB signature sits at 88 +- jitter. Weight is
  // damped so one pathological user does not dominate facility efficiency.
  const std::size_t outlier = std::min<std::size_t>(5, spec.user_count - 1);
  pop.weights_[outlier] *= 0.6;
  pop.outlier_ = outlier;
  User& o = pop.users_[outlier];
  o.app_ids = {app_index(catalogue, "UNDERSUB")};
  o.app_weights = {1.0};
  o.size_mult = 1.5;
  o.duration_mult = 1.5;
  return pop;
}

std::size_t UserPopulation::index_of(std::string_view name) const {
  for (std::size_t i = 0; i < users_.size(); ++i) {
    if (users_[i].name == name) return i;
  }
  throw common::NotFoundError("user '" + std::string(name) + "'");
}

}  // namespace supremm::facility
