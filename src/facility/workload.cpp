#include "facility/workload.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace supremm::facility {

double submission_intensity(common::TimePoint t) noexcept {
  const double hour =
      static_cast<double>(common::second_of_day(t)) / static_cast<double>(common::kHour);
  // Diurnal: trough ~04:00, peak ~15:00.
  const double diurnal = 1.0 + 0.55 * std::sin((hour - 9.0) / 24.0 * 2.0 * M_PI);
  const int wd = common::weekday_of(t);
  const double weekly = (wd >= 5) ? 0.55 : 1.0;  // weekend dip
  return diurnal * weekly;
}

std::vector<JobRequest> generate_workload(const ClusterSpec& spec,
                                          const std::vector<AppSignature>& catalogue,
                                          const UserPopulation& population,
                                          const WorkloadConfig& config) {
  if (config.span <= 0) throw common::InvalidArgument("workload span must be positive");
  if (population.size() == 0) throw common::InvalidArgument("empty user population");

  // Target offered load in node-seconds per wall second.
  const double target_rate = spec.utilization_target * config.load_factor *
                             static_cast<double>(spec.node_count);
  if (target_rate <= 0.0) throw common::InvalidArgument("non-positive load target");

  // Duration distribution calibration: lognormal with relative sd chosen so
  // the node-hour *weighted* mean hits spec.mean_job_minutes (the paper's
  // 549/446 min figures are weighted). For a lognormal, weighted mean =
  // plain mean * (1 + rel_sd^2).
  constexpr double kDurationRelSd = 1.2;
  const double plain_mean_minutes =
      spec.mean_job_minutes / (1.0 + kDurationRelSd * kDurationRelSd);
  const Level duration_level{plain_mean_minutes, kDurationRelSd};

  std::vector<JobRequest> out;
  common::RngStream arrivals(config.seed, "arrivals", 0);
  common::TimePoint t = config.start;
  JobId next_id = 1;
  double total_work = 0.0;
  const double node_mem_gb = spec.node.mem_gb;

  while (t < config.start + config.span) {
    common::RngStream rng(config.seed, "job", static_cast<std::uint64_t>(next_id));

    JobRequest job;
    job.id = next_id++;
    job.submit = t;
    job.user = rng.weighted_index(population.activity_weights());
    const User& usr = population.user(job.user);
    job.app = usr.app_ids[rng.weighted_index(usr.app_weights)];
    const AppSignature& sig = catalogue[job.app];

    double nodes = sig.nodes.draw(rng) * usr.size_mult;
    // Cap single jobs at a quarter of the machine: even the largest paper-era
    // jobs were a small fraction of Ranger, and uncapped whole-machine jobs
    // make scaled-down clusters pathologically lumpy.
    const double node_cap = std::max(1.0, static_cast<double>(spec.node_count) / 4.0);
    nodes = std::clamp(nodes, 1.0, std::min(sig.max_nodes, node_cap));
    job.nodes = static_cast<std::size_t>(std::lround(nodes));
    job.nodes = std::max<std::size_t>(1, job.nodes);

    const double minutes = std::max(2.0, duration_level.draw(rng) * usr.duration_mult);
    job.duration = static_cast<common::Duration>(minutes * 60.0);

    job.behavior = realize(sig, spec.name, node_mem_gb, rng);
    job.behavior.mem_gb =
        std::min(job.behavior.mem_gb * spec.mem_usage_mult, node_mem_gb * 0.98);
    job.behavior.idle_frac =
        std::clamp(job.behavior.idle_frac * spec.idle_usage_mult, 0.0, 0.98);
    job.will_fail = rng.chance(sig.failure_prob);
    out.push_back(job);

    // Self-calibrating gap (see header). The gap is based on the *running
    // average* work per job rather than the last job's work, so a single
    // huge job does not starve the arrival stream.
    const double work =
        static_cast<double>(job.nodes) * static_cast<double>(job.duration);
    total_work += work;
    const double mean_work = total_work / static_cast<double>(next_id - 1);
    const double mean_gap = mean_work / target_rate / submission_intensity(t);
    const double gap = arrivals.exponential(std::max(1.0, mean_gap));
    t += static_cast<common::Duration>(std::max(1.0, gap));
  }
  return out;
}

}  // namespace supremm::facility
