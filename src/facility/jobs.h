// Job request/execution records shared between the workload generator, the
// scheduler and the engine.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.h"
#include "facility/apps.h"

namespace supremm::facility {

using JobId = std::int64_t;

/// A job as submitted: who, what, how big, how long it would run if not
/// killed. `behavior` is the realization of the application signature this
/// job will exhibit on every one of its nodes.
struct JobRequest {
  JobId id = 0;
  std::size_t user = 0;  // index into UserPopulation
  std::size_t app = 0;   // index into the catalogue
  std::size_t nodes = 1;
  common::TimePoint submit = 0;
  common::Duration duration = 0;  // natural runtime (seconds)
  JobBehavior behavior;
  bool will_fail = false;  // abnormal termination at natural end
};

/// Exit conditions the accounting log distinguishes.
enum class ExitKind : std::uint8_t {
  kOk = 0,
  kFailed,            // application error / exception at end of run
  kKilledMaintenance, // node drain killed it
};

/// A job as it actually ran.
struct JobExecution {
  JobRequest req;
  common::TimePoint start = 0;
  common::TimePoint end = 0;  // actual end (may be truncated)
  std::vector<std::uint32_t> node_ids;
  ExitKind exit = ExitKind::kOk;

  [[nodiscard]] common::Duration runtime() const noexcept { return end - start; }
  [[nodiscard]] double node_hours() const noexcept {
    return static_cast<double>(node_ids.size()) * common::to_hours(runtime());
  }
  [[nodiscard]] common::Duration wait() const noexcept { return start - req.submit; }
};

}  // namespace supremm::facility
