// Cluster hardware descriptions, with presets for the paper's two systems.
//
// Paper §4.1: "Ranger ... 3936 compute nodes, each of which has four 2.3GHz
// AMD Opteron quad-core processors (16 cores in total) and 32 GB of memory.
// The filesystem is Lustre and the interconnect is InfiniBand. Lonestar4 is
// also a Linux cluster with 1088 Dell PowerEdge M610 compute nodes. Each
// compute node has two Intel Xeon 5680 series 3.33GHz hexa-core processors
// and 24 GB of memory. Lonestar4 has two filesystems: Lustre and NFS."
// (Figure 8's caption says 1888 nodes for Lonestar4; we follow the hardware
// section's 1088 and note the discrepancy in EXPERIMENTS.md.)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.h"
#include "procsim/perf.h"

namespace supremm::facility {

/// One compute node model.
struct NodeType {
  procsim::Arch arch = procsim::Arch::kAmd10h;
  std::size_t sockets = 0;
  std::size_t cores_per_socket = 0;
  double mem_gb = 0.0;
  double clock_ghz = 0.0;
  /// Peak SSE GFLOP/s per core (used for Figure 9/10 normalization).
  double peak_gflops_per_core = 0.0;

  [[nodiscard]] std::size_t cores() const noexcept { return sockets * cores_per_socket; }
  [[nodiscard]] double peak_gflops_per_node() const noexcept {
    return peak_gflops_per_core * static_cast<double>(cores());
  }
};

/// A shared (Lustre) filesystem: §4.2 distinguishes "scratch" (purged, large
/// quota) from "work" (non-purged, 200 GB quota).
struct FilesystemSpec {
  std::string name;
  bool purged = false;
  double quota_gb = 0.0;
};

/// Whole cluster description plus the calibration knobs the workload model
/// needs (documented in DESIGN.md §6).
struct ClusterSpec {
  std::string name;
  std::size_t node_count = 0;
  NodeType node;
  std::vector<FilesystemSpec> lustre_filesystems;  // scratch/work(/share)
  bool has_nfs = false;

  // Workload calibration.
  std::size_t user_count = 0;
  double mean_job_minutes = 0.0;        // node-hour weighted target (549 / 446)
  double target_idle_fraction = 0.0;    // facility average cpu_idle (0.10 / 0.15)
  double utilization_target = 0.0;      // fraction of nodes busy in steady state
  /// Cluster-wide scaling of realized job memory (paper: Lonestar4 runs much
  /// closer to its per-node capacity than Ranger does).
  double mem_usage_mult = 1.0;
  /// Cluster-wide scaling of realized job idle fraction (paper: Lonestar4's
  /// average efficiency is ~85% vs Ranger's ~90%).
  double idle_usage_mult = 1.0;

  [[nodiscard]] double peak_tflops() const noexcept {
    return node.peak_gflops_per_node() * static_cast<double>(node_count) / 1000.0;
  }
};

/// TACC Ranger (decommissioned Feb 2013): 3936 nodes, 62,976 cores, 579 TF
/// benchmarked peak -> 9.19 GF/core.
[[nodiscard]] ClusterSpec ranger();

/// TACC Lonestar4: 1088 nodes, 13,056 cores, Westmere 3.33 GHz.
[[nodiscard]] ClusterSpec lonestar4();

/// Shrink a preset for laptop-scale runs: node count scaled by `node_scale`
/// (>0, <=1) and user count scaled proportionally (min 8). Workload
/// calibration targets are preserved, so all paper *shapes* survive scaling.
[[nodiscard]] ClusterSpec scaled(ClusterSpec spec, double node_scale);

/// Hostname of node `i`, e.g. "c301-101.ranger" style flattened to
/// "<cluster>-c0042".
[[nodiscard]] std::string node_hostname(const ClusterSpec& spec, std::size_t i);

/// A fleet of `n` heterogeneous clusters for multi-cluster (federation)
/// scenarios: presets alternate Ranger / Lonestar4 hardware, every cluster
/// scaled by `node_scale` and uniquely renamed ("ranger", "lonestar4",
/// "ranger-2", ...). The paper's two-system facility is
/// heterogeneous_fleet(2, 1.0).
[[nodiscard]] std::vector<ClusterSpec> heterogeneous_fleet(std::size_t n,
                                                           double node_scale);

}  // namespace supremm::facility
