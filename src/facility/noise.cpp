#include "facility/noise.h"

#include <cmath>

namespace supremm::facility {

double gaussian_hash(std::uint64_t seed, std::uint64_t job, std::uint32_t tag,
                     std::int64_t block) noexcept {
  using common::splitmix64;
  std::uint64_t h = splitmix64(seed);
  h = splitmix64(h ^ splitmix64(job));
  h = splitmix64(h ^ (static_cast<std::uint64_t>(tag) << 32));
  h = splitmix64(h ^ static_cast<std::uint64_t>(block));
  const std::uint64_t h2 = splitmix64(h ^ 0x6a09e667f3bcc909ULL);
  // Box-Muller from two hashed uniforms in (0, 1].
  const double u1 =
      (static_cast<double>(h >> 11) + 1.0) / 9007199254740993.0;  // 2^53 + 1
  const double u2 = static_cast<double>(h2 >> 11) / 9007199254740992.0;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double lognormal_mod(double sigma, std::uint64_t seed, std::uint64_t job, MetricTag tag,
                     std::int64_t block) noexcept {
  if (sigma <= 0.0) return 1.0;
  const double z = gaussian_hash(seed, job, static_cast<std::uint32_t>(tag), block);
  return std::exp(sigma * z - 0.5 * sigma * sigma);
}

}  // namespace supremm::facility
