#include "facility/apps.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace supremm::facility {

std::string_view science_name(Science s) noexcept {
  switch (s) {
    case Science::kMolecularBiosciences:
      return "Molecular Biosciences";
    case Science::kPhysics:
      return "Physics";
    case Science::kChemistry:
      return "Chemistry";
    case Science::kAstronomicalSciences:
      return "Astronomical Sciences";
    case Science::kMaterialsResearch:
      return "Materials Research";
    case Science::kAtmosphericSciences:
      return "Atmospheric Sciences";
    case Science::kEngineering:
      return "Engineering";
    case Science::kComputerScience:
      return "Computer Science";
  }
  return "Unknown";
}

Science science_from_name(std::string_view name) {
  for (std::size_t i = 0; i < kScienceCount; ++i) {
    const auto s = static_cast<Science>(i);
    if (science_name(s) == name) return s;
  }
  throw common::NotFoundError("science '" + std::string(name) + "'");
}

double Level::draw(common::RngStream& rng) const {
  if (mean <= 0.0) return 0.0;
  if (rel_sd <= 0.0) return mean;
  // Lognormal matched to (mean, rel_sd).
  const double sigma2 = std::log1p(rel_sd * rel_sd);
  const double mu = std::log(mean) - 0.5 * sigma2;
  return rng.lognormal(mu, std::sqrt(sigma2));
}

const ClusterAdjust* AppSignature::adjust_for(const std::string& cluster) const noexcept {
  for (const auto& a : adjusts) {
    if (a.cluster == cluster) return &a;
  }
  return nullptr;
}

JobBehavior realize(const AppSignature& sig, const std::string& cluster,
                    double node_mem_capacity_gb, common::RngStream& rng) {
  const ClusterAdjust* adj = sig.adjust_for(cluster);
  const double fm = adj != nullptr ? adj->flops_mult : 1.0;
  const double im = adj != nullptr ? adj->idle_mult : 1.0;
  const double mm = adj != nullptr ? adj->mem_mult : 1.0;
  const double om = adj != nullptr ? adj->io_mult : 1.0;
  const double nm = adj != nullptr ? adj->net_mult : 1.0;

  JobBehavior b;
  b.idle_frac = std::clamp(sig.idle_frac.draw(rng) * im, 0.0, 0.98);
  b.sys_frac = std::clamp(sig.sys_frac, 0.0, 1.0 - b.idle_frac);
  b.flops_frac = sig.flops_frac.draw(rng) * fm;
  // A core that is idle is not retiring FLOPS: cap the flop fraction by the
  // busy fraction (real codes rarely exceed ~40% of SSE peak even when busy).
  b.flops_frac = std::min(b.flops_frac, (1.0 - b.idle_frac) * 0.40);
  b.mem_gb = std::min(sig.mem_per_node_gb.draw(rng) * mm, node_mem_capacity_gb * 0.98);
  b.ib_tx_mb_s = sig.ib_tx_mb_s.draw(rng) * nm;
  b.scratch_write_mb_s = sig.scratch_write_mb_s.draw(rng) * om;
  b.work_write_mb_s = sig.work_write_mb_s.draw(rng) * om;
  b.scratch_read_mb_s = sig.scratch_read_mb_s.draw(rng) * om;
  b.checkpoint_period_min = sig.checkpoint_period_min;
  b.checkpoint_gb = sig.checkpoint_gb * om;
  b.flops_jitter = sig.flops_jitter;
  b.mem_jitter = sig.mem_jitter;
  b.idle_jitter = sig.idle_jitter;
  b.net_jitter = sig.net_jitter;
  b.io_jitter = sig.io_jitter;
  return b;
}

namespace {

AppSignature make(std::string name, Science sci, double pop) {
  AppSignature s;
  s.name = std::move(name);
  s.science = sci;
  s.popularity = pop;
  return s;
}

}  // namespace

std::vector<AppSignature> standard_catalogue() {
  std::vector<AppSignature> cat;

  {
    // NAMD: efficient, network-bound MD; similar profile on both clusters
    // (paper Figure 3: "The NAMD usage pattern on Ranger and Lonestar4 is
    // very similar").
    AppSignature a = make("NAMD", Science::kMolecularBiosciences, 3.0);
    a.flops_frac = {0.055, 0.30};
    a.idle_frac = {0.05, 0.40};
    a.mem_per_node_gb = {4.0, 0.35};
    a.ib_tx_mb_s = {60.0, 0.40};
    a.scratch_write_mb_s = {2.0, 0.60};
    a.work_write_mb_s = {0.2, 0.80};
    a.scratch_read_mb_s = {1.0, 0.50};
    a.nodes = {16.0, 1.0};
    a.max_nodes = 256;
    cat.push_back(a);
  }
  {
    // AMBER: the paper singles it out as less CPU-efficient than NAMD and
    // GROMACS on both clusters, with cluster-dependent flops/idle.
    AppSignature a = make("AMBER", Science::kMolecularBiosciences, 2.0);
    a.flops_frac = {0.020, 0.40};
    a.idle_frac = {0.22, 0.35};
    a.mem_per_node_gb = {3.0, 0.40};
    a.ib_tx_mb_s = {30.0, 0.45};
    a.scratch_write_mb_s = {1.5, 0.70};
    a.work_write_mb_s = {0.3, 0.80};
    a.scratch_read_mb_s = {0.8, 0.60};
    a.nodes = {8.0, 0.9};
    a.max_nodes = 128;
    a.adjusts = {{"ranger", 0.8, 1.10, 1.0, 1.0, 1.0},
                 {"lonestar4", 1.35, 0.80, 1.1, 1.2, 0.9}};
    cat.push_back(a);
  }
  {
    // GROMACS: efficient; usage differs across the two clusters (Figure 3).
    AppSignature a = make("GROMACS", Science::kMolecularBiosciences, 1.8);
    a.flops_frac = {0.070, 0.30};
    a.idle_frac = {0.06, 0.40};
    a.mem_per_node_gb = {2.5, 0.35};
    a.ib_tx_mb_s = {25.0, 0.40};
    a.scratch_write_mb_s = {1.2, 0.60};
    a.work_write_mb_s = {0.2, 0.80};
    a.scratch_read_mb_s = {0.6, 0.50};
    a.nodes = {8.0, 1.0};
    a.max_nodes = 128;
    a.adjusts = {{"lonestar4", 1.25, 1.6, 0.8, 1.6, 0.55}};
    cat.push_back(a);
  }
  {
    // WRF: weather model; IO heavy with periodic history writes.
    AppSignature a = make("WRF", Science::kAtmosphericSciences, 1.5);
    a.flops_frac = {0.030, 0.35};
    a.idle_frac = {0.10, 0.40};
    a.mem_per_node_gb = {12.0, 0.30};
    a.ib_tx_mb_s = {45.0, 0.40};
    a.scratch_write_mb_s = {12.0, 0.60};
    a.work_write_mb_s = {0.5, 0.80};
    a.scratch_read_mb_s = {4.0, 0.50};
    a.checkpoint_period_min = 60.0;
    a.checkpoint_gb = 2.0;
    a.nodes = {32.0, 0.8};
    a.max_nodes = 512;
    cat.push_back(a);
  }
  {
    AppSignature a = make("LAMMPS", Science::kMaterialsResearch, 1.4);
    a.flops_frac = {0.045, 0.30};
    a.idle_frac = {0.07, 0.40};
    a.mem_per_node_gb = {3.0, 0.40};
    a.ib_tx_mb_s = {35.0, 0.40};
    a.scratch_write_mb_s = {1.5, 0.60};
    a.work_write_mb_s = {0.2, 0.80};
    a.scratch_read_mb_s = {0.7, 0.50};
    a.nodes = {16.0, 0.9};
    a.max_nodes = 256;
    cat.push_back(a);
  }
  {
    AppSignature a = make("QESPRESSO", Science::kMaterialsResearch, 1.2);
    a.flops_frac = {0.050, 0.35};
    a.idle_frac = {0.10, 0.40};
    a.mem_per_node_gb = {16.0, 0.25};
    a.ib_tx_mb_s = {50.0, 0.40};
    a.scratch_write_mb_s = {3.0, 0.60};
    a.work_write_mb_s = {0.4, 0.80};
    a.scratch_read_mb_s = {1.5, 0.50};
    a.nodes = {16.0, 0.8};
    a.max_nodes = 128;
    cat.push_back(a);
  }
  {
    // Quantum chemistry: small node counts, memory and work-fs heavy.
    AppSignature a = make("QCHEM", Science::kChemistry, 1.0);
    a.flops_frac = {0.035, 0.40};
    a.idle_frac = {0.18, 0.40};
    a.mem_per_node_gb = {18.0, 0.25};
    a.ib_tx_mb_s = {5.0, 0.60};
    a.scratch_write_mb_s = {4.0, 0.70};
    a.work_write_mb_s = {1.5, 0.70};
    a.scratch_read_mb_s = {2.0, 0.60};
    a.nodes = {2.0, 0.7};
    a.max_nodes = 8;
    cat.push_back(a);
  }
  {
    // Numerical relativity / lattice codes: checkpoint heavy.
    AppSignature a = make("CACTUS", Science::kPhysics, 0.9);
    a.flops_frac = {0.050, 0.30};
    a.idle_frac = {0.08, 0.40};
    a.mem_per_node_gb = {14.0, 0.25};
    a.ib_tx_mb_s = {55.0, 0.40};
    a.scratch_write_mb_s = {8.0, 0.60};
    a.work_write_mb_s = {0.3, 0.80};
    a.scratch_read_mb_s = {2.0, 0.50};
    a.checkpoint_period_min = 120.0;
    a.checkpoint_gb = 8.0;
    a.nodes = {64.0, 0.7};
    a.max_nodes = 1024;
    cat.push_back(a);
  }
  {
    // Cosmology: memory and scratch-write heavy, large jobs.
    AppSignature a = make("COSMOS", Science::kAstronomicalSciences, 0.8);
    a.flops_frac = {0.040, 0.35};
    a.idle_frac = {0.10, 0.40};
    a.mem_per_node_gb = {20.0, 0.20};
    a.ib_tx_mb_s = {70.0, 0.40};
    a.scratch_write_mb_s = {20.0, 0.60};
    a.work_write_mb_s = {0.5, 0.80};
    a.scratch_read_mb_s = {6.0, 0.50};
    a.nodes = {64.0, 0.8};
    a.max_nodes = 1024;
    cat.push_back(a);
  }
  {
    AppSignature a = make("OPENFOAM", Science::kEngineering, 1.3);
    a.flops_frac = {0.030, 0.35};
    a.idle_frac = {0.10, 0.40};
    a.mem_per_node_gb = {8.0, 0.35};
    a.ib_tx_mb_s = {40.0, 0.40};
    a.scratch_write_mb_s = {3.0, 0.60};
    a.work_write_mb_s = {0.4, 0.80};
    a.scratch_read_mb_s = {1.5, 0.50};
    a.nodes = {16.0, 0.9};
    a.max_nodes = 256;
    cat.push_back(a);
  }
  {
    // IO-dominated analysis pipeline: the "user 3" pattern (very high idle,
    // high Lustre traffic - "jobs dominated by IO").
    AppSignature a = make("DATAMINER", Science::kComputerScience, 0.55);
    a.flops_frac = {0.005, 0.50};
    a.idle_frac = {0.50, 0.25};
    a.mem_per_node_gb = {6.0, 0.40};
    a.ib_tx_mb_s = {10.0, 0.60};
    a.scratch_write_mb_s = {30.0, 0.70};
    a.work_write_mb_s = {2.0, 0.80};
    a.scratch_read_mb_s = {40.0, 0.60};
    a.nodes = {4.0, 0.8};
    a.max_nodes = 32;
    a.failure_prob = 0.05;
    cat.push_back(a);
  }
  {
    // Under-subscribed / badly bound jobs: whole nodes allocated, almost all
    // cores idle. Models the circled users of Figures 4/5 (87-89% idle with
    // otherwise normal resource use).
    AppSignature a = make("UNDERSUB", Science::kEngineering, 0.30);
    a.flops_frac = {0.004, 0.50};
    a.idle_frac = {0.88, 0.05};
    a.mem_per_node_gb = {2.5, 0.40};
    a.ib_tx_mb_s = {2.0, 0.60};
    a.scratch_write_mb_s = {0.5, 0.80};
    a.work_write_mb_s = {0.1, 0.80};
    a.scratch_read_mb_s = {0.3, 0.60};
    a.nodes = {8.0, 0.9};
    a.max_nodes = 64;
    a.failure_prob = 0.04;
    cat.push_back(a);
  }
  return cat;
}

std::size_t app_index(const std::vector<AppSignature>& cat, std::string_view name) {
  for (std::size_t i = 0; i < cat.size(); ++i) {
    if (cat[i].name == name) return i;
  }
  throw common::NotFoundError("application '" + std::string(name) + "'");
}

}  // namespace supremm::facility
