#include "accounting/accounting.h"

#include "common/error.h"
#include "common/strings.h"

namespace supremm::accounting {

std::string serialize(const AccountingRecord& r) {
  return common::strprintf(
      "%s:%s:%s:%s:%s:%lld:%s:%d:%lld:%lld:%lld:%d:%d:%lld:%zu:%zu", r.queue.c_str(),
      r.hostname.c_str(), r.group.c_str(), r.owner.c_str(), r.jobname.c_str(),
      static_cast<long long>(r.job_id), r.account.c_str(), r.priority,
      static_cast<long long>(r.submit), static_cast<long long>(r.start),
      static_cast<long long>(r.end), r.failed, r.exit_status,
      static_cast<long long>(r.wallclock()), r.slots, r.nodes);
}

AccountingRecord parse(std::string_view line) {
  const auto f = common::split(line, ':');
  if (f.size() != 16) {
    throw common::ParseError(common::strprintf("accounting record has %zu fields, want 16",
                                               f.size()));
  }
  AccountingRecord r;
  r.queue = std::string(f[0]);
  r.hostname = std::string(f[1]);
  r.group = std::string(f[2]);
  r.owner = std::string(f[3]);
  r.jobname = std::string(f[4]);
  r.job_id = common::parse_i64(f[5]);
  r.account = std::string(f[6]);
  r.priority = static_cast<int>(common::parse_i64(f[7]));
  r.submit = common::parse_i64(f[8]);
  r.start = common::parse_i64(f[9]);
  r.end = common::parse_i64(f[10]);
  r.failed = static_cast<int>(common::parse_i64(f[11]));
  r.exit_status = static_cast<int>(common::parse_i64(f[12]));
  // f[13] is the redundant ru_wallclock; validated against start/end.
  const auto wall = common::parse_i64(f[13]);
  if (wall != r.end - r.start) throw common::ParseError("accounting wallclock mismatch");
  r.slots = static_cast<std::size_t>(common::parse_i64(f[14]));
  r.nodes = static_cast<std::size_t>(common::parse_i64(f[15]));
  return r;
}

std::string serialize_log(const std::vector<AccountingRecord>& recs) {
  std::string out;
  for (const auto& r : recs) {
    out += serialize(r);
    out += '\n';
  }
  return out;
}

std::vector<AccountingRecord> parse_log(std::string_view log) {
  std::vector<AccountingRecord> out;
  std::size_t pos = 0;
  while (pos < log.size()) {
    std::size_t eol = log.find('\n', pos);
    if (eol == std::string_view::npos) eol = log.size();
    const std::string_view line = log.substr(pos, eol - pos);
    pos = eol + 1;
    if (!common::trim(line).empty()) out.push_back(parse(line));
  }
  return out;
}

std::vector<AccountingRecord> from_executions(
    const facility::ClusterSpec& spec, const facility::UserPopulation& population,
    const std::vector<facility::JobExecution>& execs) {
  std::vector<AccountingRecord> out;
  out.reserve(execs.size());
  for (const auto& e : execs) {
    const facility::User& u = population.user(e.req.user);
    AccountingRecord r;
    r.hostname = e.node_ids.empty() ? "" : facility::node_hostname(spec, e.node_ids[0]);
    r.owner = u.name;
    r.jobname = common::strprintf("job%lld", static_cast<long long>(e.req.id));
    r.job_id = e.req.id;
    r.account = u.project;
    r.submit = e.req.submit;
    r.start = e.start;
    r.end = e.end;
    switch (e.exit) {
      case facility::ExitKind::kOk:
        break;
      case facility::ExitKind::kFailed:
        r.exit_status = 1;
        break;
      case facility::ExitKind::kKilledMaintenance:
        r.failed = 100;  // SGE convention: killed by the system
        break;
    }
    r.slots = e.node_ids.size() * spec.node.cores();
    r.nodes = e.node_ids.size();
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace supremm::accounting
