// Batch accounting records (SGE-style, as Ranger/Lonestar4 produced).
//
// Serialized one record per line, colon-separated:
//   qname:hostname:group:owner:jobname:job_number:account:priority:
//   submission_time:start_time:end_time:failed:exit_status:ru_wallclock:slots:nodes
// The ETL joins these with raw TACC_Stats data by job id (the paper's
// "accounting, scheduler and event logs are integrated with system
// performance data").
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/time.h"
#include "facility/jobs.h"
#include "facility/users.h"

namespace supremm::accounting {

struct AccountingRecord {
  std::string queue = "normal";
  std::string hostname;  // first node of the job
  std::string group = "G-users";
  std::string owner;
  std::string jobname;
  facility::JobId job_id = 0;
  std::string account;  // project / charge number
  int priority = 0;
  common::TimePoint submit = 0;
  common::TimePoint start = 0;
  common::TimePoint end = 0;
  int failed = 0;       // non-zero when the batch system killed the job
  int exit_status = 0;  // application exit status
  std::size_t slots = 0;  // cores
  std::size_t nodes = 0;

  [[nodiscard]] common::Duration wallclock() const noexcept { return end - start; }
};

/// One line, no trailing newline.
[[nodiscard]] std::string serialize(const AccountingRecord& r);

/// Parse one line; throws ParseError.
[[nodiscard]] AccountingRecord parse(std::string_view line);

/// Serialize many records into a log (one line each).
[[nodiscard]] std::string serialize_log(const std::vector<AccountingRecord>& recs);

/// Parse a whole log.
[[nodiscard]] std::vector<AccountingRecord> parse_log(std::string_view log);

/// Build the accounting log for a set of scheduled executions.
[[nodiscard]] std::vector<AccountingRecord> from_executions(
    const facility::ClusterSpec& spec, const facility::UserPopulation& population,
    const std::vector<facility::JobExecution>& execs);

}  // namespace supremm::accounting
