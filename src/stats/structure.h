// Persistence (structure-function) analysis.
//
// Paper §4.3.4 / Table 1 / Figure 6: "introduce an offset... take the
// difference between the offset values and the original values and look at
// the standard deviation of this difference... If there is no tendency to
// persist, the standard deviation should be approximately equal to the
// original standard deviation of the metric."
//
// We follow the paper's convention exactly: for a series x sampled on a
// regular axis and a lag of k samples,
//
//   ratio(k) = sd( x[i+k] - x[i] ) / ( sqrt(2) * sd(x) )
//
// The sqrt(2) places the no-persistence limit at 1.0 (sd of the difference
// of two independent equally distributed values is sqrt(2)*sd), matching the
// table's saturation at ~1.0 for long offsets; for a perfectly persistent
// series ratio = 0. ratio(k) = sqrt(1 - autocorrelation(k)).
#pragma once

#include <span>
#include <vector>

#include "stats/regression.h"

namespace supremm::stats {

/// ratio(k) as defined above for a single lag of k samples. Requires the
/// series to have more than k points and non-zero variance.
[[nodiscard]] double offset_sd_ratio(std::span<const double> xs, std::size_t lag);

/// ratio for each lag in `lags`. Lags that exceed the series length yield
/// NaN (the paper's Table 1 leaves such cells blank).
[[nodiscard]] std::vector<double> offset_sd_ratios(std::span<const double> xs,
                                                   std::span<const std::size_t> lags);

/// Result of the logarithmic persistence model ratio = a + b*log10(offset).
struct PersistenceFit {
  LinearFit fit;                 // over (log10(offset_minutes), ratio)
  std::vector<double> offsets;   // offsets (minutes) actually used
  std::vector<double> ratios;    // matching ratios (NaN rows dropped)

  /// Offset (minutes) at which the model predicts ratio == 1 (persistence
  /// exhausted); the paper relates this to the average job length.
  [[nodiscard]] double horizon_minutes() const;
};

/// Fit the log10 model over (offset, ratio) pairs, dropping NaN ratios.
[[nodiscard]] PersistenceFit fit_persistence(std::span<const double> offsets_minutes,
                                             std::span<const double> ratios);

}  // namespace supremm::stats
