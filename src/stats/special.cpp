#include "stats/special.h"

#include <cmath>
#include <limits>

#include "common/error.h"

namespace supremm::stats {

namespace {

// Continued fraction for the incomplete beta function (Lentz's algorithm,
// as in Numerical Recipes betacf).
double betacf(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3.0e-14;
  constexpr double kFpMin = 1.0e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double incomplete_beta(double a, double b, double x) {
  if (a <= 0.0 || b <= 0.0) throw common::InvalidArgument("incomplete_beta: a,b must be > 0");
  if (x < 0.0 || x > 1.0) throw common::InvalidArgument("incomplete_beta: x outside [0,1]");
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double ln_bt = std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b) +
                       a * std::log(x) + b * std::log1p(-x);
  const double bt = std::exp(ln_bt);
  // Use the continued fraction directly when it converges quickly, else use
  // the symmetry relation.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return bt * betacf(a, b, x) / a;
  }
  return 1.0 - bt * betacf(b, a, 1.0 - x) / b;
}

double student_t_cdf(double t, double df) {
  if (df <= 0.0) throw common::InvalidArgument("student_t_cdf: df must be > 0");
  if (std::isinf(t)) return t > 0 ? 1.0 : 0.0;
  const double x = df / (df + t * t);
  const double p = 0.5 * incomplete_beta(df / 2.0, 0.5, x);
  return t >= 0.0 ? 1.0 - p : p;
}

double student_t_two_sided_p(double t, double df) {
  if (df <= 0.0) throw common::InvalidArgument("student_t_two_sided_p: df must be > 0");
  if (std::isnan(t)) return std::numeric_limits<double>::quiet_NaN();
  const double x = df / (df + t * t);
  return incomplete_beta(df / 2.0, 0.5, x);
}

}  // namespace supremm::stats
