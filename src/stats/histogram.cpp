#include "stats/histogram.h"

#include <algorithm>

#include "common/error.h"

namespace supremm::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi) {
  if (bins == 0) throw common::InvalidArgument("histogram needs >= 1 bin");
  if (!(hi > lo)) throw common::InvalidArgument("histogram needs hi > lo");
  counts_.assign(bins, 0.0);
  width_ = (hi - lo) / static_cast<double>(bins);
}

void Histogram::add(double x, double weight) noexcept {
  if (x < lo_) {
    underflow_ += weight;
    return;
  }
  if (x >= hi_) {
    overflow_ += weight;
    return;
  }
  auto i = static_cast<std::size_t>((x - lo_) / width_);
  if (i >= counts_.size()) i = counts_.size() - 1;  // guard fp edge at hi
  counts_[i] += weight;
}

double Histogram::bin_lo(std::size_t i) const noexcept {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const noexcept {
  return lo_ + width_ * static_cast<double>(i + 1);
}

double Histogram::total() const noexcept {
  double t = underflow_ + overflow_;
  for (const double c : counts_) t += c;
  return t;
}

std::vector<double> Histogram::density() const {
  double in_range = 0.0;
  for (const double c : counts_) in_range += c;
  std::vector<double> d(counts_.size(), 0.0);
  if (in_range <= 0.0) return d;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    d[i] = counts_[i] / (in_range * width_);
  }
  return d;
}

Histogram make_histogram(std::span<const double> xs, std::size_t bins) {
  if (xs.empty()) throw common::InvalidArgument("make_histogram of empty sample");
  const auto [mn, mx] = std::minmax_element(xs.begin(), xs.end());
  double lo = *mn;
  double hi = *mx;
  if (hi <= lo) hi = lo + 1.0;
  Histogram h(lo, hi + (hi - lo) * 1e-9, bins);
  for (const double x : xs) h.add(x);
  return h;
}

}  // namespace supremm::stats
