// Ordinary least squares with significance tests.
//
// Figure 6 of the paper fits the normalized persistence ratio against
// log10(offset) and reports intercept/slope with p-values and R^2 (e.g.
// Ranger: intercept -0.17 p=0.016, slope 0.36 p=5e-12, R^2=0.87). LinearFit
// reproduces all of those quantities.
#pragma once

#include <span>

namespace supremm::stats {

/// Result of a simple (one regressor) OLS fit y = intercept + slope * x.
struct LinearFit {
  std::size_t n = 0;
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;
  double slope_stderr = 0.0;
  double intercept_stderr = 0.0;
  double slope_p = 1.0;      // two-sided p-value of slope != 0
  double intercept_p = 1.0;  // two-sided p-value of intercept != 0
  double residual_stddev = 0.0;

  [[nodiscard]] double predict(double x) const { return intercept + slope * x; }
};

/// OLS fit of y on x. Requires n >= 3 for p-values (df = n - 2).
[[nodiscard]] LinearFit linear_fit(std::span<const double> x, std::span<const double> y);

/// Fit y on log10(x); x values must be positive.
[[nodiscard]] LinearFit log10_fit(std::span<const double> x, std::span<const double> y);

}  // namespace supremm::stats
