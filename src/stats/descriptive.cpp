#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace supremm::stats {

double Summary::stddev() const { return std::sqrt(variance); }

double Summary::sample_variance() const {
  if (n < 2) return 0.0;
  return variance * static_cast<double>(n) / static_cast<double>(n - 1);
}

double Summary::sample_stddev() const { return std::sqrt(sample_variance()); }

double Summary::cv() const {
  if (mean == 0.0) return 0.0;
  return stddev() / std::fabs(mean);
}

void Accumulator::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void Accumulator::merge(const Accumulator& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Summary Accumulator::summary() const noexcept {
  Summary s;
  s.n = n_;
  s.mean = mean_;
  s.variance = n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
  s.min = min_;
  s.max = max_;
  return s;
}

void WeightedAccumulator::add(double x, double w) noexcept {
  if (w <= 0.0) return;
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  wsum_ += w;
  const double delta = x - mean_;
  mean_ += delta * w / wsum_;
  m2_ += w * delta * (x - mean_);
}

void WeightedAccumulator::merge(const WeightedAccumulator& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double wa = wsum_;
  const double wb = other.wsum_;
  const double delta = other.mean_ - mean_;
  const double w = wa + wb;
  mean_ += delta * wb / w;
  m2_ += other.m2_ + delta * delta * wa * wb / w;
  wsum_ = w;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double WeightedAccumulator::mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }

double WeightedAccumulator::variance() const noexcept {
  return wsum_ > 0.0 ? m2_ / wsum_ : 0.0;
}

double WeightedAccumulator::stddev() const noexcept { return std::sqrt(variance()); }

Summary summarize(std::span<const double> xs) noexcept {
  Accumulator acc;
  for (const double x : xs) acc.add(x);
  return acc.summary();
}

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) throw common::InvalidArgument("quantile of empty sample");
  if (q < 0.0 || q > 1.0) throw common::InvalidArgument("quantile q outside [0,1]");
  std::vector<double> s(xs.begin(), xs.end());
  std::sort(s.begin(), s.end());
  if (s.size() == 1) return s[0];
  const double pos = q * static_cast<double>(s.size() - 1);
  const auto i = static_cast<std::size_t>(pos);
  if (i + 1 >= s.size()) return s.back();
  const double frac = pos - static_cast<double>(i);
  return s[i] * (1.0 - frac) + s[i + 1] * frac;
}

double pearson(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) throw common::InvalidArgument("pearson size mismatch");
  if (x.size() < 2) throw common::InvalidArgument("pearson needs >= 2 points");
  const std::size_t n = x.size();
  double mx = 0.0;
  double my = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace supremm::stats
