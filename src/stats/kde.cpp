#include "stats/kde.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "stats/descriptive.h"

namespace supremm::stats {

double Density::mode() const {
  if (y.empty()) return 0.0;
  const auto it = std::max_element(y.begin(), y.end());
  return x[static_cast<std::size_t>(it - y.begin())];
}

double Density::integral() const {
  double s = 0.0;
  for (std::size_t i = 1; i < x.size(); ++i) {
    s += 0.5 * (y[i] + y[i - 1]) * (x[i] - x[i - 1]);
  }
  return s;
}

double Density::at(double xq) const {
  if (x.empty() || xq < x.front() || xq > x.back()) return 0.0;
  const auto it = std::lower_bound(x.begin(), x.end(), xq);
  const auto i = static_cast<std::size_t>(it - x.begin());
  if (i == 0) return y.front();
  const double x0 = x[i - 1];
  const double x1 = x[i];
  const double frac = x1 > x0 ? (xq - x0) / (x1 - x0) : 0.0;
  return y[i - 1] * (1.0 - frac) + y[i] * frac;
}

double select_bandwidth(std::span<const double> xs, Bandwidth rule) {
  if (xs.size() < 2) throw common::InvalidArgument("bandwidth needs >= 2 points");
  const Summary s = summarize(xs);
  const double sd = s.sample_stddev();
  const double n_pow = std::pow(static_cast<double>(xs.size()), -0.2);
  double bw = 0.0;
  switch (rule) {
    case Bandwidth::kScott:
      bw = 1.06 * sd * n_pow;
      break;
    case Bandwidth::kNrd0: {
      const double iqr = quantile(xs, 0.75) - quantile(xs, 0.25);
      double spread = sd;
      if (iqr > 0.0) spread = std::min(sd, iqr / 1.34);
      if (spread == 0.0) spread = sd;
      bw = 0.9 * spread * n_pow;
      break;
    }
  }
  if (bw <= 0.0) {
    // Degenerate sample (all identical); fall back to a small positive
    // bandwidth relative to the magnitude so the density is a narrow bump.
    bw = std::max(1e-9, std::fabs(s.mean) * 1e-3 + 1e-9);
  }
  return bw;
}

namespace {

Density kde_impl(std::span<const double> xs, const double* ws, std::size_t grid_points,
                 Bandwidth rule, double cut) {
  if (xs.empty()) throw common::InvalidArgument("kde of empty sample");
  if (grid_points < 2) throw common::InvalidArgument("kde grid needs >= 2 points");

  const double bw = select_bandwidth(xs, rule);
  const auto [min_it, max_it] = std::minmax_element(xs.begin(), xs.end());
  const double lo = *min_it - cut * bw;
  const double hi = *max_it + cut * bw;
  const double step = (hi - lo) / static_cast<double>(grid_points - 1);

  Density d;
  d.bandwidth = bw;
  d.x.resize(grid_points);
  d.y.assign(grid_points, 0.0);
  for (std::size_t i = 0; i < grid_points; ++i) {
    d.x[i] = lo + step * static_cast<double>(i);
  }

  double wtotal = 0.0;
  if (ws != nullptr) {
    for (std::size_t i = 0; i < xs.size(); ++i) wtotal += ws[i];
    if (wtotal <= 0.0) throw common::InvalidArgument("kde weights sum to zero");
  } else {
    wtotal = static_cast<double>(xs.size());
  }

  const double norm = 1.0 / (wtotal * bw * std::sqrt(2.0 * M_PI));
  // Direct evaluation; kernels beyond 6 bandwidths contribute < 1e-8 and
  // are skipped to keep large-sample KDE fast.
  const double reach = 6.0 * bw;
  for (std::size_t j = 0; j < xs.size(); ++j) {
    const double xj = xs[j];
    const double wj = ws != nullptr ? ws[j] : 1.0;
    if (wj <= 0.0) continue;
    const auto i0 =
        static_cast<std::size_t>(std::max(0.0, std::floor((xj - reach - lo) / step)));
    const auto i1 = std::min(
        grid_points, static_cast<std::size_t>(std::max(0.0, std::ceil((xj + reach - lo) / step))) + 1);
    for (std::size_t i = i0; i < i1; ++i) {
      const double u = (d.x[i] - xj) / bw;
      d.y[i] += wj * norm * std::exp(-0.5 * u * u);
    }
  }
  return d;
}

}  // namespace

Density kde(std::span<const double> xs, std::size_t grid_points, Bandwidth rule, double cut) {
  return kde_impl(xs, nullptr, grid_points, rule, cut);
}

Density kde_weighted(std::span<const double> xs, std::span<const double> ws,
                     std::size_t grid_points, Bandwidth rule, double cut) {
  if (xs.size() != ws.size()) throw common::InvalidArgument("kde_weighted size mismatch");
  return kde_impl(xs, ws.data(), grid_points, rule, cut);
}

}  // namespace supremm::stats
