#include "stats/regression.h"

#include <cmath>
#include <vector>

#include "common/error.h"
#include "stats/special.h"

namespace supremm::stats {

LinearFit linear_fit(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) throw common::InvalidArgument("linear_fit size mismatch");
  const std::size_t n = x.size();
  if (n < 2) throw common::InvalidArgument("linear_fit needs >= 2 points");

  double mx = 0.0;
  double my = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);

  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx == 0.0) throw common::InvalidArgument("linear_fit: x has zero variance");

  LinearFit fit;
  fit.n = n;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;

  double ss_res = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double r = y[i] - fit.predict(x[i]);
    ss_res += r * r;
  }
  fit.r2 = syy > 0.0 ? 1.0 - ss_res / syy : 1.0;

  if (n > 2) {
    const double df = static_cast<double>(n - 2);
    const double s2 = ss_res / df;
    fit.residual_stddev = std::sqrt(s2);
    fit.slope_stderr = std::sqrt(s2 / sxx);
    fit.intercept_stderr =
        std::sqrt(s2 * (1.0 / static_cast<double>(n) + mx * mx / sxx));
    if (fit.slope_stderr > 0.0) {
      fit.slope_p = student_t_two_sided_p(fit.slope / fit.slope_stderr, df);
    } else {
      fit.slope_p = 0.0;
    }
    if (fit.intercept_stderr > 0.0) {
      fit.intercept_p = student_t_two_sided_p(fit.intercept / fit.intercept_stderr, df);
    } else {
      fit.intercept_p = fit.intercept == 0.0 ? 1.0 : 0.0;
    }
  }
  return fit;
}

LinearFit log10_fit(std::span<const double> x, std::span<const double> y) {
  std::vector<double> lx(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] <= 0.0) throw common::InvalidArgument("log10_fit requires positive x");
    lx[i] = std::log10(x[i]);
  }
  return linear_fit(lx, y);
}

}  // namespace supremm::stats
