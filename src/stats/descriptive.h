// Descriptive statistics: running accumulators, weighted moments, quantiles.
//
// The paper's job-level metrics are "calculated by the job weighted by
// node*hour" (§4.1); WeightedAccumulator implements exactly that weighting.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace supremm::stats {

/// Moments and range of a sample.
struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double variance = 0.0;  // population variance (/n); see sample_variance
  double min = 0.0;
  double max = 0.0;

  [[nodiscard]] double stddev() const;
  /// Unbiased (/ (n-1)) variance; 0 when n < 2.
  [[nodiscard]] double sample_variance() const;
  [[nodiscard]] double sample_stddev() const;
  /// Coefficient of variation: stddev / |mean| (0 when mean == 0).
  [[nodiscard]] double cv() const;
};

/// Numerically stable (Welford) running accumulator.
class Accumulator {
 public:
  void add(double x) noexcept;
  void merge(const Accumulator& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] Summary summary() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Weighted running accumulator (weights >= 0); weighted mean/variance and
/// the weighted max.
class WeightedAccumulator {
 public:
  void add(double x, double w) noexcept;
  void merge(const WeightedAccumulator& other) noexcept;

  [[nodiscard]] double total_weight() const noexcept { return wsum_; }
  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] double variance() const noexcept;  // weight-frequency variance
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double wsum_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;  // sum w * (x - mean)^2, updated incrementally
  double min_ = 0.0;
  double max_ = 0.0;
};

/// One-pass summary of a span.
[[nodiscard]] Summary summarize(std::span<const double> xs) noexcept;

/// Linear-interpolated quantile (q in [0,1]) of an unsorted sample.
[[nodiscard]] double quantile(std::span<const double> xs, double q);

/// Pearson product-moment correlation of two equally sized spans.
[[nodiscard]] double pearson(std::span<const double> x, std::span<const double> y);

}  // namespace supremm::stats
