#include "stats/structure.h"

#include <cmath>
#include <limits>

#include "common/error.h"
#include "stats/descriptive.h"

namespace supremm::stats {

double offset_sd_ratio(std::span<const double> xs, std::size_t lag) {
  if (lag == 0) throw common::InvalidArgument("offset_sd_ratio lag must be > 0");
  if (xs.size() <= lag + 1) return std::numeric_limits<double>::quiet_NaN();

  const Summary base = summarize(xs);
  const double base_sd = base.sample_stddev();
  if (base_sd == 0.0) return std::numeric_limits<double>::quiet_NaN();

  Accumulator diff;
  for (std::size_t i = 0; i + lag < xs.size(); ++i) {
    diff.add(xs[i + lag] - xs[i]);
  }
  const double diff_sd = diff.summary().sample_stddev();
  return diff_sd / (std::sqrt(2.0) * base_sd);
}

std::vector<double> offset_sd_ratios(std::span<const double> xs,
                                     std::span<const std::size_t> lags) {
  std::vector<double> out;
  out.reserve(lags.size());
  for (const std::size_t lag : lags) out.push_back(offset_sd_ratio(xs, lag));
  return out;
}

double PersistenceFit::horizon_minutes() const {
  if (fit.slope <= 0.0) return std::numeric_limits<double>::infinity();
  return std::pow(10.0, (1.0 - fit.intercept) / fit.slope);
}

PersistenceFit fit_persistence(std::span<const double> offsets_minutes,
                               std::span<const double> ratios) {
  if (offsets_minutes.size() != ratios.size()) {
    throw common::InvalidArgument("fit_persistence size mismatch");
  }
  PersistenceFit out;
  for (std::size_t i = 0; i < ratios.size(); ++i) {
    if (std::isnan(ratios[i])) continue;
    out.offsets.push_back(offsets_minutes[i]);
    out.ratios.push_back(ratios[i]);
  }
  if (out.offsets.size() < 3) {
    throw common::InvalidArgument("fit_persistence needs >= 3 finite points");
  }
  out.fit = log10_fit(out.offsets, out.ratios);
  return out;
}

}  // namespace supremm::stats
