// Special functions needed for significance testing: the regularized
// incomplete beta function and the Student-t distribution CDF. Implemented
// from scratch (Lentz continued fraction) so the library has no external
// numeric dependencies.
#pragma once

namespace supremm::stats {

/// Regularized incomplete beta function I_x(a, b), a,b > 0, x in [0,1].
[[nodiscard]] double incomplete_beta(double a, double b, double x);

/// CDF of Student's t distribution with `df` degrees of freedom.
[[nodiscard]] double student_t_cdf(double t, double df);

/// Two-sided p-value for a t statistic with `df` degrees of freedom.
[[nodiscard]] double student_t_two_sided_p(double t, double df);

}  // namespace supremm::stats
