// Fixed-width histogram, used by reports that want binned views and as a
// cross-check against the KDE (which the paper prefers to avoid binning
// choices).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace supremm::stats {

class Histogram {
 public:
  /// Bins of equal width over [lo, hi); values outside are counted in
  /// underflow/overflow.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, double weight = 1.0) noexcept;

  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] double bin_lo(std::size_t i) const noexcept;
  [[nodiscard]] double bin_hi(std::size_t i) const noexcept;
  [[nodiscard]] double count(std::size_t i) const noexcept { return counts_[i]; }
  [[nodiscard]] double underflow() const noexcept { return underflow_; }
  [[nodiscard]] double overflow() const noexcept { return overflow_; }
  [[nodiscard]] double total() const noexcept;

  /// Normalized so the in-range mass integrates to 1 (density per unit x).
  [[nodiscard]] std::vector<double> density() const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<double> counts_;
  double underflow_ = 0.0;
  double overflow_ = 0.0;
};

/// Build a histogram spanning the data range.
[[nodiscard]] Histogram make_histogram(std::span<const double> xs, std::size_t bins);

}  // namespace supremm::stats
