#include "stats/correlation.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "stats/descriptive.h"

namespace supremm::stats {

CorrelationMatrix::CorrelationMatrix(std::vector<std::string> names,
                                     const std::vector<std::vector<double>>& series)
    : names_(std::move(names)) {
  const std::size_t k = names_.size();
  if (series.size() != k) throw common::InvalidArgument("correlation names/series mismatch");
  for (const auto& s : series) {
    if (s.size() != series.front().size()) {
      throw common::InvalidArgument("correlation series length mismatch");
    }
  }
  m_.assign(k * k, 0.0);
  for (std::size_t i = 0; i < k; ++i) {
    m_[i * k + i] = 1.0;
    for (std::size_t j = i + 1; j < k; ++j) {
      const double r = pearson(series[i], series[j]);
      m_[i * k + j] = r;
      m_[j * k + i] = r;
    }
  }
}

double CorrelationMatrix::at(std::size_t i, std::size_t j) const {
  if (i >= size() || j >= size()) throw common::InvalidArgument("correlation index out of range");
  return m_[i * size() + j];
}

double CorrelationMatrix::at(const std::string& a, const std::string& b) const {
  return at(index_of(a), index_of(b));
}

std::size_t CorrelationMatrix::index_of(const std::string& name) const {
  const auto it = std::find(names_.begin(), names_.end(), name);
  if (it == names_.end()) throw common::NotFoundError("correlation metric '" + name + "'");
  return static_cast<std::size_t>(it - names_.begin());
}

std::vector<CorrelationMatrix::Pair> CorrelationMatrix::correlated_pairs(
    double threshold) const {
  std::vector<Pair> out;
  for (std::size_t i = 0; i < size(); ++i) {
    for (std::size_t j = i + 1; j < size(); ++j) {
      const double r = at(i, j);
      if (std::fabs(r) >= threshold) out.push_back({names_[i], names_[j], r});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Pair& a, const Pair& b) { return std::fabs(a.r) > std::fabs(b.r); });
  return out;
}

std::vector<std::size_t> select_independent(const CorrelationMatrix& corr,
                                            std::span<const double> priority,
                                            double threshold) {
  if (priority.size() != corr.size()) {
    throw common::InvalidArgument("select_independent priority size mismatch");
  }
  std::vector<std::size_t> order(corr.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return priority[a] > priority[b]; });

  std::vector<std::size_t> kept;
  for (const std::size_t cand : order) {
    bool independent = true;
    for (const std::size_t k : kept) {
      if (std::fabs(corr.at(cand, k)) >= threshold) {
        independent = false;
        break;
      }
    }
    if (independent) kept.push_back(cand);
  }
  return kept;
}

}  // namespace supremm::stats
