// Correlation matrices and greedy independent-metric selection.
//
// Paper §4.2: "We have chosen these eight based on a correlation analysis
// over all of the measured metrics... we have selected the smallest
// independent set of metrics that describe the execution behavior of the job
// mix". CorrelationMatrix computes all pairwise Pearson correlations;
// select_independent implements the greedy reduction the paper describes:
// repeatedly keep the most informative metric and drop every metric
// correlated (|r| >= threshold) with it.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace supremm::stats {

/// Symmetric matrix of pairwise Pearson correlations between named series.
class CorrelationMatrix {
 public:
  /// All series must be equally sized with >= 2 observations.
  CorrelationMatrix(std::vector<std::string> names,
                    const std::vector<std::vector<double>>& series);

  [[nodiscard]] std::size_t size() const noexcept { return names_.size(); }
  [[nodiscard]] const std::vector<std::string>& names() const noexcept { return names_; }
  [[nodiscard]] double at(std::size_t i, std::size_t j) const;
  [[nodiscard]] double at(const std::string& a, const std::string& b) const;

  /// Pairs with |r| >= threshold, strongest first (excluding self pairs).
  struct Pair {
    std::string a;
    std::string b;
    double r = 0.0;
  };
  [[nodiscard]] std::vector<Pair> correlated_pairs(double threshold) const;

 private:
  [[nodiscard]] std::size_t index_of(const std::string& name) const;
  std::vector<std::string> names_;
  std::vector<double> m_;  // row-major size x size
};

/// Greedy independent set: process metrics in order of `priority` (higher
/// first; e.g. coefficient of variation or domain preference) and keep a
/// metric only if its |r| with every already kept metric is < threshold.
/// Returns indices of kept metrics in priority order.
[[nodiscard]] std::vector<std::size_t> select_independent(const CorrelationMatrix& corr,
                                                          std::span<const double> priority,
                                                          double threshold);

}  // namespace supremm::stats
