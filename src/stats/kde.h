// Gaussian kernel density estimation.
//
// Figures 10 and 12 of the paper show kernel density plots (produced with R,
// citing Scott 1992) "rather than a histogram in order to avoid making
// binning choices". Kde reproduces R density()'s default behaviour: a
// Gaussian kernel with the nrd0 bandwidth rule, evaluated on a regular grid
// extended `cut` bandwidths beyond the data range.
#pragma once

#include <span>
#include <vector>

namespace supremm::stats {

/// Bandwidth selection rules.
enum class Bandwidth {
  kNrd0,   // R bw.nrd0: 0.9 * min(sd, IQR/1.34) * n^(-1/5)
  kScott,  // Scott (1992): 1.06 * sd * n^(-1/5)
};

/// A kernel density estimate evaluated on a regular grid.
struct Density {
  std::vector<double> x;  // grid points
  std::vector<double> y;  // density values
  double bandwidth = 0.0;

  /// Grid point with the highest density (the principal mode).
  [[nodiscard]] double mode() const;
  /// Trapezoidal integral over the grid (should be ~1).
  [[nodiscard]] double integral() const;
  /// Density interpolated at an arbitrary point (0 outside the grid).
  [[nodiscard]] double at(double xq) const;
};

/// Gaussian KDE of `xs` on `grid_points` equally spaced points. The grid
/// spans [min - cut*bw, max + cut*bw] like R's density(cut = 3).
[[nodiscard]] Density kde(std::span<const double> xs, std::size_t grid_points = 256,
                          Bandwidth rule = Bandwidth::kNrd0, double cut = 3.0);

/// Weighted Gaussian KDE; weights must be non-negative and not all zero.
[[nodiscard]] Density kde_weighted(std::span<const double> xs, std::span<const double> ws,
                                   std::size_t grid_points = 256,
                                   Bandwidth rule = Bandwidth::kNrd0, double cut = 3.0);

/// The bandwidth that `rule` selects for `xs` (exposed for tests and for
/// callers that need to report it).
[[nodiscard]] double select_bandwidth(std::span<const double> xs, Bandwidth rule);

}  // namespace supremm::stats
