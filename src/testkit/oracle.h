// Differential-testing oracle for the warehouse query engine (DESIGN.md §12).
//
// The vectorized executor in warehouse::Query is fast because it is layered:
// zone-map chunk pruning, typed predicate kernels over selection vectors,
// fixed-width packed group keys, a dense dict-code fast path, and per-segment
// partial aggregation merged in canonical order. Every one of those layers is
// a place where an optimization bug could silently skew the per-job metrics
// the paper's XDMoD reports are built from. The oracle here is the antidote:
// a deliberately naive, single-threaded, row-at-a-time interpreter that
// shares only the *public query contract* with the real engine — no zone
// maps, no selection vectors, no kernels, no dense path, and group keys held
// as plain vectors of bit patterns rather than packed tuples.
//
// The contract the oracle implements (and the engine must match bit-for-bit):
//   - a row matches iff every predicate term holds, evaluated with plain
//     double comparisons (int64 read as double) and string equality;
//   - groups are keyed by exact bit pattern (dictionary code, int64 bits,
//     double bits) and emitted in first-match order;
//   - aggregation is defined over the canonical 8192-row segment grid laid
//     over the ordered match list (DESIGN.md §11): values accumulate
//     sequentially within a segment and segment partials merge in segment
//     order. That grid is part of the public determinism contract — it is
//     what makes results independent of the thread count — so the oracle
//     computes the same arithmetic in the obvious way;
//   - QueryStats are predicted from first principles: the oracle recomputes
//     every chunk's min/max by scanning rows directly (never consulting the
//     table's ZoneIndex ranges) and applies the documented pruning rule.
//
// Queries are described by QuerySpec, a structural (closure-free) spec that
// both sides consume: run_engine() compiles it into a real warehouse::Query,
// run_oracle() interprets it row at a time.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "warehouse/query.h"
#include "warehouse/table.h"

namespace supremm::testkit {

/// Predicate operators the helper constructors in warehouse/query.h expose.
enum class PredOp : std::uint8_t { kEq, kGe, kLe, kBetween };

/// One conjunct of a WHERE clause, structurally.
struct PredTerm {
  PredOp op = PredOp::kGe;
  std::string column;
  std::string value;  // kEq literal (string columns only)
  double lo = 0.0;    // kGe / kBetween threshold
  double hi = 0.0;    // kLe / kBetween threshold
};

/// A closure-free description of one warehouse query.
struct QuerySpec {
  bool has_where = false;
  /// Run the engine through an opaque row lambda instead of the bounds
  /// carrying helpers (exercises the closure fallback path; disables
  /// zone-map pruning on the engine side, which the oracle mirrors).
  bool opaque = false;
  std::vector<PredTerm> where;  // conjunction; meaningful when has_where
  std::vector<std::string> group_by;
  std::vector<warehouse::AggSpec> aggs;
  std::size_t threads = 1;
};

/// One executed query: the result table plus the scan statistics.
struct QueryRun {
  warehouse::Table table;
  warehouse::QueryStats stats;
};

/// Execute `spec` through the real vectorized engine at `spec.threads`.
[[nodiscard]] QueryRun run_engine(const warehouse::Table& table, const QuerySpec& spec);

/// Execute `spec` through the naive reference interpreter (always single
/// threaded; `spec.threads` is ignored).
[[nodiscard]] QueryRun run_oracle(const warehouse::Table& table, const QuerySpec& spec);

/// First bitwise difference between two tables (schema, row order, and every
/// cell; doubles compared by bit pattern so -0.0 != 0.0 and NaN payloads
/// count), or nullopt when identical.
[[nodiscard]] std::optional<std::string> table_diff(const warehouse::Table& a,
                                                    const warehouse::Table& b);

/// First difference between two QueryStats, or nullopt when identical.
[[nodiscard]] std::optional<std::string> stats_diff(const warehouse::QueryStats& a,
                                                    const warehouse::QueryStats& b);

/// Run `spec` through both engines at the given thread count (overriding
/// spec.threads for the vectorized side) and report the first divergence in
/// results, group order, or QueryStats — nullopt when bit-identical.
[[nodiscard]] std::optional<std::string> differential_check(const warehouse::Table& table,
                                                            const QuerySpec& spec,
                                                            std::size_t threads);

/// Human-readable one-liner of a spec (for seed files and failure messages).
[[nodiscard]] std::string describe(const QuerySpec& spec);

}  // namespace supremm::testkit
