// Grammar-based query generation and the differential runner (DESIGN.md §12).
//
// The generator emits random-but-valid QuerySpecs over a fixed six-column
// corpus schema, steering hard toward the engine's soft spots: NaN / ±0.0 /
// ±inf / denormal doubles, int64 values beyond 2^53 (where double rounding
// collides), equality literals absent from the dictionary, inverted BETWEEN
// ranges, opaque-closure predicates (no pruning), multi-key group-bys over
// every column type, and every aggregate kind. Corpora vary in row count
// (including 0, 1, and >8192 to force multi-segment aggregation) and
// zone-map chunk size (including none at all).
//
// Everything derives from (seed, purpose, index) RNG streams — the corpus
// is prefix-stable per row and the query spec depends only on (seed, index),
// never on corpus content — so a failing case shrinks (drop terms / aggs /
// keys, halve the corpus) and still re-derives exactly from the few numbers
// stored in its replay seed file.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "testkit/oracle.h"
#include "warehouse/table.h"

namespace supremm::testkit {

/// Fixed corpus schema: "user", "app" (string), "day", "big" (int64),
/// "value", "weight" (double). Dictionary domains used by both the corpus
/// builder and the equality-literal generator.
inline constexpr std::size_t kCorpusUsers = 6;
inline constexpr std::size_t kCorpusApps = 4;

struct CorpusSpec {
  std::size_t rows = 256;
  std::size_t chunk_rows = 256;  // zone-map chunk size; 0 = no zone index
  std::uint64_t seed = 20130313;
};

/// Build the corpus table; row r draws from RngStream(seed, "testkit.corpus",
/// r), so a shorter corpus is an exact prefix of a longer one.
[[nodiscard]] warehouse::Table make_corpus(const CorpusSpec& spec);

/// The fixed corpus-shape ladder the runner cycles through (row counts 0 /
/// 1 / 7 / 63 / 256 / 1000 / 9000 crossed with chunk sizes incl. none).
[[nodiscard]] std::vector<CorpusSpec> default_corpora(std::uint64_t seed);

/// Query `index` of the grammar under `seed`. Depends only on (seed, index):
/// regenerating with the same pair always yields the same spec.
[[nodiscard]] QuerySpec make_query_spec(std::uint64_t seed, std::uint64_t index);

/// Thread counts every generated query is checked at.
inline constexpr std::size_t kDiffThreadCounts[] = {1, 2, 8};

struct DiffConfig {
  std::uint64_t seed = 20130313;
  std::size_t queries = 500;   // generated queries per run
  std::string seed_dir = "."; // where replay seed files are dumped
};

struct DiffReport {
  std::size_t queries_run = 0;
  std::size_t checks = 0;  // (query, thread-count) comparisons executed
  std::vector<std::string> divergences;  // first message per failing query
  std::vector<std::string> seed_files;   // dumped replay files (one per divergence)
};

/// Generate cfg.queries specs, run each against the oracle at every thread
/// count, minimize and dump any divergence as a replay seed file.
[[nodiscard]] DiffReport run_differential(const DiffConfig& cfg);

/// Re-run one dumped `mode query` seed file. Returns the divergence message
/// when the case still reproduces, nullopt when it now passes. Throws
/// common::ParseError on a malformed file or wrong mode.
[[nodiscard]] std::optional<std::string> replay_query_file(const std::string& path);

}  // namespace supremm::testkit
