#include "testkit/genrequest.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/error.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/time.h"
#include "testkit/genquery.h"
#include "warehouse/aggstate.h"

namespace supremm::testkit {

std::string to_request_text(const QuerySpec& spec, const std::string& table) {
  if (spec.opaque) {
    throw common::InvalidArgument(
        "to_request_text: opaque specs have no request-language form");
  }
  service::Request req;
  req.kind = service::Request::Kind::kQuery;
  req.query.table = table;
  if (spec.has_where) {
    for (const PredTerm& t : spec.where) {
      service::Term term;
      term.column = t.column;
      term.value = t.value;
      term.lo = t.lo;
      term.hi = t.hi;
      switch (t.op) {
        case PredOp::kEq: term.op = service::TermOp::kEq; break;
        case PredOp::kGe: term.op = service::TermOp::kGe; break;
        case PredOp::kLe: term.op = service::TermOp::kLe; break;
        case PredOp::kBetween: term.op = service::TermOp::kBetween; break;
      }
      req.query.where.push_back(std::move(term));
    }
  }
  req.query.group_by = spec.group_by;
  req.query.aggs = spec.aggs;
  req.query.threads = spec.threads;
  return service::print_request(req);
}

std::string make_request_text(std::uint64_t seed, std::uint64_t index,
                              const std::string& table, QuerySpec* out_spec) {
  QuerySpec spec = make_query_spec(seed, index);
  spec.opaque = false;
  std::string text = to_request_text(spec, table);
  if (out_spec != nullptr) *out_spec = std::move(spec);
  return text;
}

// ---------------------------------------------------------------------------
// Rollup-realm fuzzing

namespace {

constexpr std::int64_t kDaySec = common::kDay;

// Metrics the agg generator draws from: a mix of double metrics, the int64
// metrics (nodes, cores) and the wmean weight column itself.
constexpr const char* kRollupMetricPool[] = {
    "node_hours", "nodes",         "cores",          "cpu_idle",
    "mem_used_gb", "net_ib_tx_mb_s", "load_mean",    "cpu_flops_gf_node",
    "io_scratch_write_mb_s", "swap_mb_s",
};
// Numeric jobs columns outside the materialized metric set — aggs and range
// predicates over these must fall back to the raw scan.
constexpr const char* kRollupNonMetricPool[] = {"end", "submit", "samples"};

constexpr const char* kBucketCols[] = {"day", "week", "month", "quarter"};

double rollup_time_bound(common::RngStream& g, std::int64_t span_days) {
  // Occasional hazard bounds: NaN / infinities / beyond-int64 magnitudes all
  // force the subsume-side conversion guards (and the raw path's own
  // comparison semantics on the fallback leg).
  if (g.chance(0.06)) {
    constexpr double kHazards[] = {
        std::numeric_limits<double>::quiet_NaN(),
        std::numeric_limits<double>::infinity(),
        -std::numeric_limits<double>::infinity(),
        9.3e18, -9.3e18, -1.0,
    };
    return kHazards[g.uniform_int(0, std::size(kHazards) - 1)];
  }
  return static_cast<double>(g.uniform_int(0, span_days) * kDaySec);
}

}  // namespace

std::vector<etl::JobSummary> make_rollup_jobs(const RollupJobsSpec& spec) {
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  std::vector<etl::JobSummary> jobs;
  jobs.reserve(spec.rows);
  for (std::size_t r = 0; r < spec.rows; ++r) {
    common::RngStream g(spec.seed, "testkit.rollup.jobs", r);
    etl::JobSummary j;
    j.id = static_cast<facility::JobId>(r + 1);
    j.user = common::strprintf(
        "u%lld", static_cast<long long>(g.uniform_int(0, kRollupUsers - 1)));
    j.app = common::strprintf(
        "app%lld", static_cast<long long>(g.uniform_int(0, kRollupApps - 1)));
    j.cluster = common::strprintf(
        "c%lld", static_cast<long long>(g.uniform_int(0, kRollupClusters - 1)));
    j.science = common::strprintf("s%lld", static_cast<long long>(g.uniform_int(0, 2)));
    j.project = common::strprintf("p%lld", static_cast<long long>(g.uniform_int(0, 4)));
    // End times: mostly uniform over the span, heavily salted with the exact
    // bucket-edge instants (midnight itself belongs to the *previous* day;
    // one second past midnight opens the next) so cell assignment at grain
    // edges is exercised from both sides.
    const std::int64_t d = g.uniform_int(0, kRollupSpanDays - 1);
    switch (g.uniform_int(0, 5)) {
      case 0: j.end = (d + 1) * kDaySec; break;      // last instant of day d
      case 1: j.end = d * kDaySec + 1; break;        // first instant of day d
      case 2: j.end = (d + 1) * kDaySec - 1; break;  // one short of midnight
      default: j.end = d * kDaySec + g.uniform_int(1, kDaySec); break;
    }
    const std::int64_t runtime = g.uniform_int(60, 2 * kDaySec);
    j.start = j.end - runtime;
    j.submit = j.start - g.uniform_int(0, 3600);
    j.nodes = static_cast<std::size_t>(g.uniform_int(1, 64));
    j.cores = j.nodes * 16;
    j.node_hours = g.chance(0.05)
                       ? 0.0
                       : static_cast<double>(j.nodes) *
                             (static_cast<double>(runtime) / 3600.0);
    j.exit_status = g.chance(0.1) ? 1 : 0;
    j.failed = g.chance(0.05) ? 1 : 0;
    j.samples = static_cast<std::size_t>(runtime / 600 + 1);
    j.reconciled = g.chance(0.1);
    j.flops_valid = g.chance(0.9);
    const auto metric = [&g, kNaN] {
      const double roll = g.uniform();
      if (roll < 0.05) return kNaN;
      if (roll < 0.08) return 0.0;
      if (roll < 0.10) return -0.0;
      return g.uniform(0.0, 100.0);
    };
    j.cpu_idle = metric();
    j.cpu_flops_gf_node = metric();
    j.mem_used_gb = metric();
    j.mem_used_max_gb = metric();
    j.io_scratch_write_mb_s = metric();
    j.io_work_write_mb_s = metric();
    j.net_ib_tx_mb_s = metric();
    j.net_lnet_tx_mb_s = metric();
    j.cpu_user = metric();
    j.cpu_system = metric();
    j.io_scratch_read_mb_s = metric();
    j.net_ib_rx_mb_s = metric();
    j.net_lnet_rx_mb_s = metric();
    j.swap_mb_s = metric();
    j.load_mean = metric();
    jobs.push_back(std::move(j));
  }
  return jobs;
}

QuerySpec make_rollup_query_spec(std::uint64_t seed, std::uint64_t index) {
  common::RngStream g(seed, "testkit.rollup", index);
  QuerySpec spec;

  // Group keys: the rollup dimensions and bucket columns, occasionally an
  // ineligible key (science) that forces the raw path.
  std::vector<std::string> candidates = {"user", "app",   "cluster", "day",
                                         "week", "month", "quarter"};
  if (g.chance(0.08)) candidates.push_back("science");
  const std::size_t nkeys = g.weighted_index({2.0, 4.0, 3.0, 2.0, 1.0});
  for (std::size_t i = 0; i < nkeys; ++i) {
    const auto pick = static_cast<std::size_t>(
        g.uniform_int(0, static_cast<std::int64_t>(candidates.size()) - 1));
    spec.group_by.push_back(candidates[pick]);
    candidates.erase(candidates.begin() + static_cast<std::ptrdiff_t>(pick));
  }

  const auto push_range = [&spec, &g](std::string column, double lo, double hi) {
    PredTerm term;
    term.column = std::move(column);
    switch (g.uniform_int(0, 2)) {
      case 0:
        term.op = PredOp::kGe;
        term.lo = lo;
        break;
      case 1:
        term.op = PredOp::kLe;
        term.hi = hi;
        break;
      default:
        term.op = PredOp::kBetween;
        term.lo = lo;
        term.hi = hi;
        break;
    }
    spec.where.push_back(std::move(term));
  };

  // Time predicate: either on a derived bucket column (subsumable for any
  // bound — the column only holds bucket-start multiples) or on raw `end`,
  // where only whole-day-aligned bounds can be served from cells. Misaligned
  // draws probe exactly the boundary subsume must refuse.
  if (g.chance(0.8)) {
    if (g.chance(0.5)) {
      const auto b = static_cast<std::size_t>(g.uniform_int(0, 3));
      const double lo = rollup_time_bound(g, kRollupSpanDays);
      const double hi = rollup_time_bound(g, kRollupSpanDays);
      push_range(kBucketCols[b], lo, hi);
    } else {
      const std::int64_t dlo = g.uniform_int(0, kRollupSpanDays);
      const std::int64_t dhi = g.uniform_int(0, kRollupSpanDays);
      // Aligned lower bounds land in (midnight, midnight+1]; anything else
      // straddles a day. Same for upper bounds around exact midnight.
      double lo = 0.0, hi = 0.0;
      switch (g.uniform_int(0, 2)) {
        case 0: lo = static_cast<double>(dlo * kDaySec + 1); break;
        case 1: lo = static_cast<double>(dlo * kDaySec) + 0.5; break;
        default: lo = static_cast<double>(dlo * kDaySec + g.uniform_int(2, kDaySec - 1)); break;
      }
      switch (g.uniform_int(0, 2)) {
        case 0: hi = static_cast<double>(dhi * kDaySec); break;
        case 1: hi = static_cast<double>(dhi * kDaySec) + 0.5; break;
        default: hi = static_cast<double>(dhi * kDaySec + g.uniform_int(1, kDaySec - 1)); break;
      }
      push_range("end", lo, hi);
    }
  }

  // Dimension equality, literal domain one past the population's.
  if (g.chance(0.55)) {
    PredTerm term;
    term.op = PredOp::kEq;
    switch (g.uniform_int(0, 2)) {
      case 0:
        term.column = "user";
        term.value = common::strprintf(
            "u%lld", static_cast<long long>(g.uniform_int(0, kRollupUsers)));
        break;
      case 1:
        term.column = "app";
        term.value = common::strprintf(
            "app%lld", static_cast<long long>(g.uniform_int(0, kRollupApps)));
        break;
      default:
        term.column = "cluster";
        term.value = common::strprintf(
            "c%lld", static_cast<long long>(g.uniform_int(0, kRollupClusters)));
        break;
    }
    spec.where.push_back(std::move(term));
  }

  // Metric-range predicate: never materialized, always a raw fallback.
  if (g.chance(0.12)) {
    push_range(kRollupMetricPool[g.uniform_int(0, std::size(kRollupMetricPool) - 1)],
               g.uniform(0.0, 50.0), g.uniform(0.0, 100.0));
  }
  spec.has_where = !spec.where.empty();

  // Aggregates: eligible shapes (count; sum/mean/min/max over metrics;
  // wmean weighted by node_hours) plus ineligible ones — non-metric source
  // columns and wmean with any other weight.
  const std::int64_t naggs = g.uniform_int(1, 3);
  for (std::int64_t i = 0; i < naggs; ++i) {
    warehouse::AggSpec agg;
    agg.kind = static_cast<warehouse::AggKind>(g.uniform_int(0, 5));
    const auto pick_source = [&g]() -> std::string {
      if (g.chance(0.08)) {
        return kRollupNonMetricPool[g.uniform_int(
            0, std::size(kRollupNonMetricPool) - 1)];
      }
      return kRollupMetricPool[g.uniform_int(0, std::size(kRollupMetricPool) - 1)];
    };
    if (agg.kind != warehouse::AggKind::kCount) agg.column = pick_source();
    if (agg.kind == warehouse::AggKind::kWeightedMean) {
      agg.weight = g.chance(0.7) ? "node_hours" : pick_source();
    }
    spec.aggs.push_back(std::move(agg));
  }
  std::vector<std::string> used;
  for (std::size_t i = 0; i < spec.aggs.size(); ++i) {
    warehouse::AggSpec& agg = spec.aggs[i];
    std::string name;
    switch (agg.kind) {
      case warehouse::AggKind::kSum: name = agg.column + "_sum"; break;
      case warehouse::AggKind::kMean: name = agg.column + "_mean"; break;
      case warehouse::AggKind::kWeightedMean: name = agg.column + "_wmean"; break;
      case warehouse::AggKind::kMax: name = agg.column + "_max"; break;
      case warehouse::AggKind::kMin: name = agg.column + "_min"; break;
      case warehouse::AggKind::kCount: name = "count"; break;
    }
    if (std::find(used.begin(), used.end(), name) != used.end()) {
      agg.as = name + "_" + std::to_string(i);
      name = agg.as;
    }
    used.push_back(name);
  }

  spec.threads = 1;
  return spec;
}

std::string make_rollup_request_text(std::uint64_t seed, std::uint64_t index,
                                     QuerySpec* out_spec) {
  QuerySpec spec = make_rollup_query_spec(seed, index);
  std::string text = to_request_text(spec, "jobs");
  if (out_spec != nullptr) *out_spec = std::move(spec);
  return text;
}

std::vector<std::vector<etl::JobSummary>> split_jobs_for_shards(
    const std::vector<etl::JobSummary>& jobs, std::size_t nshards,
    std::uint64_t seed) {
  if (nshards == 0) {
    throw common::InvalidArgument("split_jobs_for_shards: nshards must be positive");
  }
  std::vector<std::vector<etl::JobSummary>> shards(nshards);
  for (const etl::JobSummary& j : jobs) {
    // One draw per (cluster, day) cell: every job of the cell lands on the
    // same shard, but neighboring days of the same cluster scatter freely.
    const std::int64_t day = warehouse::end_day_index(j.end);
    common::RngStream g(seed, "testkit.fed.place." + j.cluster,
                        static_cast<std::uint64_t>(day));
    const auto s = static_cast<std::size_t>(
        g.uniform_int(0, static_cast<std::int64_t>(nshards) - 1));
    shards[s].push_back(j);
  }
  return shards;
}

}  // namespace supremm::testkit
