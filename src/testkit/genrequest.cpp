#include "testkit/genrequest.h"

#include <utility>

#include "common/error.h"
#include "testkit/genquery.h"

namespace supremm::testkit {

std::string to_request_text(const QuerySpec& spec, const std::string& table) {
  if (spec.opaque) {
    throw common::InvalidArgument(
        "to_request_text: opaque specs have no request-language form");
  }
  service::Request req;
  req.kind = service::Request::Kind::kQuery;
  req.query.table = table;
  if (spec.has_where) {
    for (const PredTerm& t : spec.where) {
      service::Term term;
      term.column = t.column;
      term.value = t.value;
      term.lo = t.lo;
      term.hi = t.hi;
      switch (t.op) {
        case PredOp::kEq: term.op = service::TermOp::kEq; break;
        case PredOp::kGe: term.op = service::TermOp::kGe; break;
        case PredOp::kLe: term.op = service::TermOp::kLe; break;
        case PredOp::kBetween: term.op = service::TermOp::kBetween; break;
      }
      req.query.where.push_back(std::move(term));
    }
  }
  req.query.group_by = spec.group_by;
  req.query.aggs = spec.aggs;
  req.query.threads = spec.threads;
  return service::print_request(req);
}

std::string make_request_text(std::uint64_t seed, std::uint64_t index,
                              const std::string& table, QuerySpec* out_spec) {
  QuerySpec spec = make_query_spec(seed, index);
  spec.opaque = false;
  std::string text = to_request_text(spec, table);
  if (out_spec != nullptr) *out_spec = std::move(spec);
  return text;
}

}  // namespace supremm::testkit
