// Replay seed files: the persistence format for failing testkit cases.
//
// When the differential runner or the archive fuzzer finds a divergence, the
// (minimized) case is dumped as a small text file that re-derives the exact
// corpus, query and mutation from deterministic RNG streams — no binary
// blobs, no captured tables. The file doubles as the bug report: trailing
// `#` comment lines carry the human-readable spec and the first divergence.
//
// Format (line oriented, order fixed by the writer):
//   supremm-testkit-replay v1
//   mode query|fuzz
//   <key> <value>            (one per field, keys unique)
//   # free-form comment lines
//
// Replay: SUPREMM_TESTKIT_REPLAY=<file> build/tests/test_oracle
//         SUPREMM_TESTKIT_REPLAY=<file> build/tests/test_fuzz_archive
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace supremm::testkit {

inline constexpr const char* kSeedFileHeader = "supremm-testkit-replay v1";

/// A parsed seed file: ordered fields plus comment lines.
struct SeedFile {
  std::vector<std::pair<std::string, std::string>> fields;
  std::vector<std::string> comments;

  /// Value of `key`; throws common::ParseError when absent.
  [[nodiscard]] const std::string& field(const std::string& key) const;
  /// Value of `key` parsed as u64; throws common::ParseError on absence or
  /// non-numeric content.
  [[nodiscard]] std::uint64_t field_u64(const std::string& key) const;
  [[nodiscard]] bool has(const std::string& key) const;
};

/// Write a seed file; `mode` becomes the `mode` field, first.
void write_seed_file(const std::string& path, const std::string& mode,
                     const std::vector<std::pair<std::string, std::string>>& fields,
                     const std::vector<std::string>& comments);

/// Read and validate a seed file; throws common::ParseError on a missing
/// file, bad header or malformed line.
[[nodiscard]] SeedFile read_seed_file(const std::string& path);

/// Encode / decode a list of indices as a comma-separated field value
/// (empty list -> empty string).
[[nodiscard]] std::string encode_index_list(const std::vector<std::size_t>& ixs);
[[nodiscard]] std::vector<std::size_t> decode_index_list(const std::string& s);

}  // namespace supremm::testkit
