#include "testkit/fuzz.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <utility>

#include "archive/archive.h"
#include "archive/codec.h"
#include "common/checksum.h"
#include "common/error.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/time.h"
#include "compress/lzss.h"
#include "testkit/oracle.h"
#include "testkit/replay.h"

namespace supremm::testkit {

namespace fs = std::filesystem;

namespace {

constexpr const char* kManifestFile = "MANIFEST";

std::string read_bytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw common::ParseError("fuzz: cannot open " + path.string());
  std::string data((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  if (in.bad()) throw common::ParseError("fuzz: read failed for " + path.string());
  return data;
}

void write_bytes(const fs::path& path, std::string_view data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw common::ParseError("fuzz: cannot write " + path.string());
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  if (!out) throw common::ParseError("fuzz: write failed for " + path.string());
}

void reset_scratch(const std::string& pristine, const std::string& scratch) {
  fs::remove_all(scratch);
  fs::create_directories(scratch);
  for (const auto& e : fs::directory_iterator(pristine)) {
    if (e.is_regular_file()) {
      fs::copy_file(e.path(), fs::path(scratch) / e.path().filename());
    }
  }
}

// --- independent partition layout scanner --------------------------------
//
// Built from the format documentation in partition.h, NOT by calling the
// decoder under test: magic, version, name, day, rows, chunk grid, schema,
// zone maps, then per column an optional dictionary block plus one block per
// chunk, each block being u32 length + u32 CRC + LZSS payload.

struct BlockSpan {
  std::size_t header_pos = 0;   // offset of the u32 length field
  std::size_t payload_pos = 0;  // offset of the compressed payload
  std::uint32_t len = 0;
  std::size_t col = 0;
  bool is_dict = false;
};

struct PartLayout {
  std::uint64_t rows = 0;
  std::uint32_t chunk_rows = 0;
  std::uint32_t nchunks = 0;
  std::vector<warehouse::ColType> col_types;
  std::vector<BlockSpan> blocks;
};

PartLayout scan_partition(std::string_view bytes) {
  archive::ByteReader in(bytes);
  if (in.bytes(8) != std::string_view("SUPARCH1", 8)) {
    throw common::ParseError("fuzz: bad partition magic");
  }
  (void)in.u16();           // version
  (void)in.bytes(in.u16()); // table name
  (void)in.u64();           // day
  PartLayout layout;
  layout.rows = in.u64();
  layout.chunk_rows = in.u32();
  layout.nchunks = in.u32();
  const std::uint16_t ncols = in.u16();
  for (std::uint16_t c = 0; c < ncols; ++c) {
    (void)in.bytes(in.u16());  // column name
    layout.col_types.push_back(static_cast<warehouse::ColType>(in.u8()));
  }
  in.skip(std::size_t{ncols} * layout.nchunks * 20);  // zone maps: f64+f64+u32
  for (std::size_t c = 0; c < ncols; ++c) {
    const std::size_t nblocks =
        layout.nchunks + (layout.col_types[c] == warehouse::ColType::kString ? 1 : 0);
    for (std::size_t b = 0; b < nblocks; ++b) {
      BlockSpan span;
      span.header_pos = in.pos();
      span.len = in.u32();
      (void)in.u32();  // block CRC
      span.payload_pos = in.pos();
      span.col = c;
      span.is_dict = layout.col_types[c] == warehouse::ColType::kString && b == 0;
      in.skip(span.len);
      layout.blocks.push_back(span);
    }
  }
  if (in.remaining() != 0) throw common::ParseError("fuzz: partition trailing bytes");
  return layout;
}

/// Length-prefixed, checksummed block around an LZSS compression of `raw`.
std::string pack_block(std::string_view raw) {
  compress::StreamCompressor comp;
  comp.append(raw);
  const std::string packed = comp.finish();
  std::string out;
  archive::put_u32(out, static_cast<std::uint32_t>(packed.size()));
  archive::put_u32(out, common::crc32(packed));
  out.append(packed);
  return out;
}

// --- manifest text surgery ------------------------------------------------

std::vector<std::string> split_lines(std::string_view text) {
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    if (nl == std::string_view::npos) {
      lines.emplace_back(text.substr(pos));
      break;
    }
    lines.emplace_back(text.substr(pos, nl - pos));
    pos = nl + 1;
  }
  return lines;
}

/// Rewrite the manifest with `edit` applied to its body lines, re-forging
/// the trailing checksum so the file parses as authentic.
template <typename Edit>
void edit_manifest(const std::string& dir, Edit edit) {
  const fs::path path = fs::path(dir) / kManifestFile;
  std::vector<std::string> lines = split_lines(read_bytes(path));
  while (!lines.empty() &&
         (lines.back().empty() || lines.back().rfind("crc ", 0) == 0)) {
    lines.pop_back();
  }
  edit(lines);
  std::string out;
  for (const auto& l : lines) {
    out += l;
    out += '\n';
  }
  out += common::strprintf("crc %08x\n", common::crc32(out));
  write_bytes(path, out);
}

std::vector<std::string> split_tokens(const std::string& line) {
  std::vector<std::string> toks;
  std::size_t pos = 0;
  while (pos < line.size()) {
    const std::size_t sp = line.find(' ', pos);
    if (sp == std::string::npos) {
      toks.push_back(line.substr(pos));
      break;
    }
    if (sp > pos) toks.push_back(line.substr(pos, sp - pos));
    pos = sp + 1;
  }
  return toks;
}

/// Point the manifest's record for `filename` at the rewritten file bytes.
void update_manifest_partition(const std::string& dir, const std::string& filename,
                               std::uint32_t crc, std::uint64_t bytes) {
  edit_manifest(dir, [&](std::vector<std::string>& lines) {
    for (auto& line : lines) {
      std::vector<std::string> toks = split_tokens(line);
      if (toks.size() != 7 || toks[0] != "p" || toks[6] != filename) continue;
      toks[4] = common::strprintf("%08x", crc);
      toks[5] = std::to_string(bytes);
      line = toks[0];
      for (std::size_t i = 1; i < toks.size(); ++i) line += " " + toks[i];
      return;
    }
    throw common::ParseError("fuzz: partition " + filename + " not in manifest");
  });
}

void set_manifest_field(const std::string& dir, const std::string& key,
                        const std::string& value) {
  edit_manifest(dir, [&](std::vector<std::string>& lines) {
    for (auto& line : lines) {
      if (line.rfind(key + " ", 0) == 0) {
        line = key + " " + value;
        return;
      }
    }
    throw common::ParseError("fuzz: manifest field " + key + " not found");
  });
}

// --- mutations ------------------------------------------------------------

/// What the Reader contract demands after a given mutation.
enum class Expect : std::uint8_t {
  kDetect,     // touched partition quarantined; everything else identical
  kForged,     // checksums forged: quarantine, divergence or round-trip — no crash
  kReject,     // manifest semantically invalid: Reader must throw ParseError
  kRoundtrip,  // benign: everything identical, nothing quarantined
};

struct Mutation {
  MutationKind kind = MutationKind::kBitFlip;
  Expect expect = Expect::kDetect;
  std::string touched_file;  // empty = MANIFEST
  std::string detail;
};

void flip_bit(std::string& bytes, std::size_t bit) {
  bytes[bit / 8] = static_cast<char>(static_cast<unsigned char>(bytes[bit / 8]) ^
                                     (1u << (bit % 8)));
}

const archive::PartitionInfo& pick_partition(const archive::Manifest& m,
                                             common::RngStream& g) {
  const auto n = static_cast<std::int64_t>(m.partitions.size());
  return m.partitions[static_cast<std::size_t>(g.uniform_int(0, n - 1))];
}

Mutation truncate_tail(const std::string& scratch, const archive::PartitionInfo& p,
                       common::RngStream& g, MutationKind kind) {
  const fs::path path = fs::path(scratch) / p.filename;
  const std::string bytes = read_bytes(path);
  const auto cut = static_cast<std::size_t>(
      g.uniform_int(0, static_cast<std::int64_t>(bytes.size()) - 1));
  write_bytes(path, std::string_view(bytes).substr(0, cut));
  Mutation m;
  m.kind = kind;
  m.expect = Expect::kDetect;
  m.touched_file = p.filename;
  m.detail = common::strprintf("truncate %s to %zu of %zu bytes", p.filename.c_str(), cut,
                               bytes.size());
  return m;
}

Mutation apply_mutation(const std::string& scratch, const archive::Manifest& manifest,
                        common::RngStream& g) {
  const auto kind = static_cast<MutationKind>(
      g.weighted_index({0.2, 0.15, 0.2, 0.2, 0.1, 0.15}));
  switch (kind) {
    case MutationKind::kTruncateTail:
      return truncate_tail(scratch, pick_partition(manifest, g), g, kind);

    case MutationKind::kTruncateBlock: {
      // Shorten one block's payload but leave its recorded length: the block
      // chain shifts and the image no longer adds up. The manifest is forged
      // to match the new file so detection must happen inside the decoder,
      // not at the size/CRC gate.
      const archive::PartitionInfo& p = pick_partition(manifest, g);
      const fs::path path = fs::path(scratch) / p.filename;
      std::string bytes = read_bytes(path);
      const PartLayout layout = scan_partition(bytes);
      std::vector<const BlockSpan*> nonempty;
      for (const auto& b : layout.blocks) {
        if (b.len > 0) nonempty.push_back(&b);
      }
      if (nonempty.empty()) return truncate_tail(scratch, p, g, kind);
      const BlockSpan& b = *nonempty[static_cast<std::size_t>(
          g.uniform_int(0, static_cast<std::int64_t>(nonempty.size()) - 1))];
      const auto drop = static_cast<std::size_t>(
          g.uniform_int(1, std::min<std::int64_t>(b.len, 16)));
      bytes.erase(b.payload_pos, drop);
      write_bytes(path, bytes);
      update_manifest_partition(scratch, p.filename, common::crc32(bytes), bytes.size());
      Mutation m;
      m.kind = kind;
      m.expect = Expect::kDetect;
      m.touched_file = p.filename;
      m.detail = common::strprintf("drop %zu bytes inside block@%zu of %s (manifest forged)",
                                   drop, b.payload_pos, p.filename.c_str());
      return m;
    }

    case MutationKind::kBitFlip: {
      const archive::PartitionInfo& p = pick_partition(manifest, g);
      const fs::path path = fs::path(scratch) / p.filename;
      std::string bytes = read_bytes(path);
      const auto bit = static_cast<std::size_t>(
          g.uniform_int(0, static_cast<std::int64_t>(bytes.size()) * 8 - 1));
      flip_bit(bytes, bit);
      write_bytes(path, bytes);
      Mutation m;
      m.kind = kind;
      m.expect = Expect::kDetect;
      m.touched_file = p.filename;
      m.detail = common::strprintf("flip bit %zu of %s", bit, p.filename.c_str());
      return m;
    }

    case MutationKind::kBitFlipCrcFixed: {
      // Flip one bit inside a block payload, then re-forge the block CRC,
      // the file CRC and the manifest: every checksum gate passes and the
      // damage reaches the LZSS/varint/zone layers behind them.
      const archive::PartitionInfo& p = pick_partition(manifest, g);
      const fs::path path = fs::path(scratch) / p.filename;
      std::string bytes = read_bytes(path);
      const PartLayout layout = scan_partition(bytes);
      std::vector<const BlockSpan*> nonempty;
      for (const auto& b : layout.blocks) {
        if (b.len > 0) nonempty.push_back(&b);
      }
      if (nonempty.empty()) return truncate_tail(scratch, p, g, kind);
      const BlockSpan& b = *nonempty[static_cast<std::size_t>(
          g.uniform_int(0, static_cast<std::int64_t>(nonempty.size()) - 1))];
      const auto bit = static_cast<std::size_t>(
          g.uniform_int(0, static_cast<std::int64_t>(b.len) * 8 - 1));
      flip_bit(bytes, b.payload_pos * 8 + bit);
      const std::uint32_t block_crc =
          common::crc32(std::string_view(bytes).substr(b.payload_pos, b.len));
      std::string patched = bytes.substr(0, b.header_pos + 4);
      archive::put_u32(patched, block_crc);
      patched.append(bytes, b.header_pos + 8, std::string::npos);
      write_bytes(path, patched);
      update_manifest_partition(scratch, p.filename, common::crc32(patched),
                                patched.size());
      Mutation m;
      m.kind = kind;
      m.expect = Expect::kForged;
      m.touched_file = p.filename;
      m.detail = common::strprintf(
          "flip payload bit %zu of block@%zu in %s (all CRCs forged)", bit, b.payload_pos,
          p.filename.c_str());
      return m;
    }

    case MutationKind::kWatermarkSkew: {
      const std::int64_t variant = g.uniform_int(0, 2);
      Mutation m;
      m.kind = kind;
      if (variant == 0) {
        // Watermark before start: (watermark - start) / bucket goes negative
        // and a trusting loader would size its series buffers with it.
        set_manifest_field(scratch, "watermark",
                           std::to_string(manifest.start - common::kDay));
        m.expect = Expect::kReject;
        m.detail = "manifest watermark rewritten to one day before start (CRC forged)";
      } else if (variant == 1) {
        set_manifest_field(scratch, "bucket", "0");
        m.expect = Expect::kReject;
        m.detail = "manifest bucket rewritten to zero (CRC forged)";
      } else {
        // Watermark a few days past the data: bounded, semantically valid —
        // tables must still round-trip exactly.
        const std::int64_t skew = g.uniform_int(1, 3) * common::kDay;
        set_manifest_field(scratch, "watermark",
                           std::to_string(manifest.watermark + skew));
        m.expect = Expect::kRoundtrip;
        m.detail = common::strprintf("manifest watermark skewed %+lld s (CRC forged)",
                                     static_cast<long long>(skew));
      }
      return m;
    }

    case MutationKind::kDictCodeRange: {
      // Splice in a codes chunk referencing a dictionary entry that does not
      // exist. Varints, LZSS and every CRC are valid — only the semantic
      // dict-bounds check in the decoder can catch it.
      std::vector<const archive::PartitionInfo*> candidates;
      std::vector<std::pair<PartLayout, std::string>> layouts;
      for (const auto& p : manifest.partitions) {
        std::string bytes = read_bytes(fs::path(scratch) / p.filename);
        PartLayout layout = scan_partition(bytes);
        const bool has_string_chunk =
            layout.nchunks > 0 &&
            std::find(layout.col_types.begin(), layout.col_types.end(),
                      warehouse::ColType::kString) != layout.col_types.end();
        if (has_string_chunk) {
          candidates.push_back(&p);
          layouts.emplace_back(std::move(layout), std::move(bytes));
        }
      }
      if (candidates.empty()) {
        return truncate_tail(scratch, pick_partition(manifest, g), g, kind);
      }
      const auto pick = static_cast<std::size_t>(
          g.uniform_int(0, static_cast<std::int64_t>(candidates.size()) - 1));
      const archive::PartitionInfo& p = *candidates[pick];
      const PartLayout& layout = layouts[pick].first;
      const std::string& bytes = layouts[pick].second;

      // First chunk block of the first string column.
      const BlockSpan* target = nullptr;
      std::size_t dict_size = 0;
      for (std::size_t i = 0; i < layout.blocks.size(); ++i) {
        const BlockSpan& b = layout.blocks[i];
        if (layout.col_types[b.col] != warehouse::ColType::kString) continue;
        if (b.is_dict) {
          const std::string raw = compress::decompress(
              std::string_view(bytes).substr(b.payload_pos, b.len));
          archive::ByteReader r(raw);
          dict_size = r.u32();
          continue;
        }
        target = &b;
        break;
      }
      if (target == nullptr) {
        return truncate_tail(scratch, pick_partition(manifest, g), g, kind);
      }
      const std::size_t n =
          std::min<std::size_t>(layout.rows, layout.chunk_rows);
      std::vector<std::int32_t> codes(n, 0);
      const auto bad = static_cast<std::int32_t>(
          dict_size + static_cast<std::size_t>(g.uniform_int(0, 7)));
      codes[static_cast<std::size_t>(
          g.uniform_int(0, static_cast<std::int64_t>(n) - 1))] = bad;
      std::string raw;
      archive::encode_codes_chunk(codes, raw);
      std::string patched = bytes.substr(0, target->header_pos);
      patched += pack_block(raw);
      patched.append(bytes, target->payload_pos + target->len, std::string::npos);
      write_bytes(fs::path(scratch) / p.filename, patched);
      update_manifest_partition(scratch, p.filename, common::crc32(patched),
                                patched.size());
      Mutation m;
      m.kind = kind;
      m.expect = Expect::kDetect;
      m.touched_file = p.filename;
      m.detail = common::strprintf("splice codes chunk with code %d >= dict size %zu into %s",
                                   bad, dict_size, p.filename.c_str());
      return m;
    }
  }
  throw common::InvalidArgument("fuzz: unreachable mutation kind");
}

// --- verification ---------------------------------------------------------

struct Baseline {
  std::vector<std::string> names;                // unique table names, sorted
  std::map<std::string, warehouse::Table> tables;
};

Baseline load_baseline(const std::string& pristine) {
  archive::Reader rd(pristine, 1);
  Baseline base;
  std::set<std::string> names;
  for (const auto& p : rd.manifest().partitions) names.insert(p.table);
  base.names.assign(names.begin(), names.end());
  for (const auto& n : base.names) base.tables.emplace(n, rd.table(n));
  if (!rd.quarantined().empty()) {
    throw common::InvalidArgument("fuzz: pristine archive already quarantines partitions");
  }
  return base;
}

struct Outcome {
  bool manifest_rejected = false;
  std::vector<etl::PartitionQuarantine> quarantined;
  std::vector<std::string> diverged;  // silent differences on clean tables
};

Outcome verify(const std::string& scratch, const Baseline& base) {
  Outcome o;
  std::optional<archive::Reader> rd;
  try {
    rd.emplace(scratch, 2);
  } catch (const common::Error&) {
    o.manifest_rejected = true;
    return o;
  }
  std::map<std::string, warehouse::Table> loaded;
  for (const auto& name : base.names) {
    try {
      loaded.emplace(name, rd->table(name));
    } catch (const common::Error&) {
      // Every partition of this table quarantined; entries are recorded.
    }
  }
  o.quarantined = rd->quarantined();
  std::set<std::string> qtables;
  for (const auto& q : o.quarantined) qtables.insert(q.table);
  for (const auto& name : base.names) {
    if (qtables.count(name) != 0) continue;  // rows legitimately missing, reported
    const auto it = loaded.find(name);
    if (it == loaded.end()) {
      o.diverged.push_back("table " + name + " failed to load with no quarantine record");
      continue;
    }
    if (auto d = table_diff(base.tables.at(name), it->second)) {
      o.diverged.push_back("table " + name + ": " + *d);
    }
  }
  return o;
}

std::optional<std::string> contract_violation(const Mutation& m, const Outcome& o) {
  const std::string tag = std::string(mutation_kind_name(m.kind)) + " (" + m.detail + "): ";
  const auto unrelated = [&]() -> std::optional<std::string> {
    for (const auto& q : o.quarantined) {
      if (q.file != m.touched_file) {
        return tag + "unrelated partition quarantined: " + q.file + " (" + q.reason + ")";
      }
    }
    return std::nullopt;
  };
  switch (m.expect) {
    case Expect::kDetect:
      if (o.manifest_rejected) {
        return tag + "manifest rejected though only a partition was mutated";
      }
      if (!o.diverged.empty()) return tag + "SILENT DIVERGENCE: " + o.diverged.front();
      if (o.quarantined.empty()) return tag + "damage not detected (no quarantine)";
      return unrelated();
    case Expect::kForged:
      if (o.manifest_rejected) {
        return tag + "manifest rejected though only a partition was mutated";
      }
      // Forged checksums: divergence is an accepted outcome, crash is not
      // (a crash never reaches this function).
      return unrelated();
    case Expect::kReject:
      if (!o.manifest_rejected) return tag + "semantically invalid manifest accepted";
      return std::nullopt;
    case Expect::kRoundtrip:
      if (o.manifest_rejected) return tag + "benign manifest mutation rejected";
      if (!o.quarantined.empty()) {
        return tag + "benign mutation quarantined " + o.quarantined.front().file;
      }
      if (!o.diverged.empty()) return tag + "benign mutation diverged: " + o.diverged.front();
      return std::nullopt;
  }
  return std::nullopt;
}

struct IterationResult {
  Mutation mutation;
  Outcome outcome;
  std::optional<std::string> violation;
};

IterationResult run_iteration(const FuzzConfig& cfg, const archive::Manifest& manifest,
                              const Baseline& base, std::uint64_t seed, std::size_t iter) {
  reset_scratch(cfg.pristine_dir, cfg.scratch_dir);
  common::RngStream g(seed, "testkit.fuzz", iter);
  IterationResult res;
  res.mutation = apply_mutation(cfg.scratch_dir, manifest, g);
  try {
    res.outcome = verify(cfg.scratch_dir, base);
  } catch (const std::exception& e) {
    res.violation = std::string(mutation_kind_name(res.mutation.kind)) + " (" +
                    res.mutation.detail + "): unexpected exception escaped the Reader: " +
                    e.what();
    return res;
  }
  res.violation = contract_violation(res.mutation, res.outcome);
  return res;
}

}  // namespace

const char* mutation_kind_name(MutationKind k) {
  switch (k) {
    case MutationKind::kTruncateTail: return "truncate_tail";
    case MutationKind::kTruncateBlock: return "truncate_block";
    case MutationKind::kBitFlip: return "bit_flip";
    case MutationKind::kBitFlipCrcFixed: return "bit_flip_crc_fixed";
    case MutationKind::kWatermarkSkew: return "watermark_skew";
    case MutationKind::kDictCodeRange: return "dict_code_range";
  }
  return "?";
}

FuzzReport run_archive_fuzz(const FuzzConfig& cfg) {
  const archive::Manifest manifest = archive::Reader(cfg.pristine_dir, 1).manifest();
  if (manifest.partitions.empty()) {
    throw common::InvalidArgument("fuzz: pristine archive has no partitions");
  }
  const Baseline base = load_baseline(cfg.pristine_dir);

  FuzzReport rep;
  for (std::size_t i = 0; i < cfg.iterations; ++i) {
    const IterationResult res = run_iteration(cfg, manifest, base, cfg.seed, i);
    ++rep.iterations;
    if (res.outcome.manifest_rejected) {
      ++rep.manifest_rejects;
    } else if (!res.outcome.quarantined.empty()) {
      ++rep.quarantines;
    } else if (!res.outcome.diverged.empty()) {
      ++rep.forged_divergences;
    } else {
      ++rep.roundtrips;
    }
    if (!res.violation) continue;

    const std::string path =
        cfg.seed_dir + "/testkit_seed_fuzz_" + std::to_string(i) + ".txt";
    write_seed_file(path, "fuzz",
                    {{"seed", std::to_string(cfg.seed)}, {"iter", std::to_string(i)}},
                    {"mutation: " + std::string(mutation_kind_name(res.mutation.kind)),
                     "detail: " + res.mutation.detail, "violation: " + *res.violation,
                     "replay: SUPREMM_TESTKIT_REPLAY=" + path +
                         " build/tests/test_fuzz_archive"});
    rep.failures.push_back(*res.violation);
    rep.seed_files.push_back(path);
  }
  return rep;
}

std::optional<std::string> replay_fuzz_file(const FuzzConfig& cfg, const std::string& path) {
  const SeedFile sf = read_seed_file(path);
  if (sf.field("mode") != "fuzz") {
    throw common::ParseError("seed file: expected mode fuzz, got " + sf.field("mode"));
  }
  const archive::Manifest manifest = archive::Reader(cfg.pristine_dir, 1).manifest();
  const Baseline base = load_baseline(cfg.pristine_dir);
  const IterationResult res =
      run_iteration(cfg, manifest, base, sf.field_u64("seed"),
                    static_cast<std::size_t>(sf.field_u64("iter")));
  return res.violation;
}

}  // namespace supremm::testkit
