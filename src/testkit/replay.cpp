#include "testkit/replay.h"

#include <cstdint>
#include <fstream>
#include <sstream>

#include "common/error.h"

namespace supremm::testkit {

const std::string& SeedFile::field(const std::string& key) const {
  for (const auto& [k, v] : fields) {
    if (k == key) return v;
  }
  throw common::ParseError("seed file: missing field \"" + key + "\"");
}

std::uint64_t SeedFile::field_u64(const std::string& key) const {
  const std::string& v = field(key);
  std::size_t pos = 0;
  std::uint64_t out = 0;
  try {
    out = std::stoull(v, &pos);
  } catch (const std::exception&) {
    throw common::ParseError("seed file: field \"" + key + "\" is not a number: " + v);
  }
  if (pos != v.size()) {
    throw common::ParseError("seed file: field \"" + key + "\" is not a number: " + v);
  }
  return out;
}

bool SeedFile::has(const std::string& key) const {
  for (const auto& [k, v] : fields) {
    if (k == key) return true;
  }
  return false;
}

void write_seed_file(const std::string& path, const std::string& mode,
                     const std::vector<std::pair<std::string, std::string>>& fields,
                     const std::vector<std::string>& comments) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw common::ParseError("seed file: cannot write " + path);
  out << kSeedFileHeader << "\n";
  out << "mode " << mode << "\n";
  for (const auto& [k, v] : fields) out << k << " " << v << "\n";
  for (const auto& c : comments) out << "# " << c << "\n";
  if (!out) throw common::ParseError("seed file: write failed for " + path);
}

SeedFile read_seed_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw common::ParseError("seed file: cannot open " + path);
  std::string line;
  if (!std::getline(in, line) || line != kSeedFileHeader) {
    throw common::ParseError("seed file: bad header in " + path);
  }
  SeedFile sf;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::size_t start = 1;
      if (start < line.size() && line[start] == ' ') ++start;
      sf.comments.push_back(line.substr(start));
      continue;
    }
    const std::size_t sp = line.find(' ');
    if (sp == std::string::npos || sp == 0) {
      throw common::ParseError("seed file: malformed line in " + path + ": " + line);
    }
    sf.fields.emplace_back(line.substr(0, sp), line.substr(sp + 1));
  }
  if (!sf.has("mode")) throw common::ParseError("seed file: missing mode in " + path);
  return sf;
}

std::string encode_index_list(const std::vector<std::size_t>& ixs) {
  std::ostringstream os;
  for (std::size_t i = 0; i < ixs.size(); ++i) {
    if (i != 0) os << ",";
    os << ixs[i];
  }
  return os.str();
}

std::vector<std::size_t> decode_index_list(const std::string& s) {
  std::vector<std::size_t> out;
  if (s.empty()) return out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t comma = s.find(',', pos);
    const std::string tok =
        comma == std::string::npos ? s.substr(pos) : s.substr(pos, comma - pos);
    std::size_t used = 0;
    std::uint64_t v = 0;
    try {
      v = std::stoull(tok, &used);
    } catch (const std::exception&) {
      throw common::ParseError("seed file: bad index list entry: " + tok);
    }
    if (used != tok.size()) {
      throw common::ParseError("seed file: bad index list entry: " + tok);
    }
    out.push_back(static_cast<std::size_t>(v));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

}  // namespace supremm::testkit
