#include "testkit/oracle.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <sstream>

#include "common/error.h"

namespace supremm::testkit {

using warehouse::AggKind;
using warehouse::AggSpec;
using warehouse::ColType;
using warehouse::Column;
using warehouse::QueryStats;
using warehouse::Table;

namespace {

// The two layout constants of the public execution contract (DESIGN.md §11):
// the scan-chunk grid used for stats when the table carries no zone index,
// and the canonical segment grid laid over the ordered match list. These are
// contract values, not implementation details borrowed from the engine — a
// change to either over there is a breaking change the oracle must flag.
constexpr std::size_t kExecChunkRows = 4096;
constexpr std::size_t kSegmentRows = 8192;

// Part of the contract: a NaN-valued sum/mean is emitted as the canonical
// positive quiet NaN, because which of several accumulated NaN payloads
// survives `acc += v` is an instruction-operand-order artifact the compiler
// may legally flip between builds of the same source.
double canon_nan(double v) {
  return std::isnan(v) ? std::numeric_limits<double>::quiet_NaN() : v;
}

std::string default_name(const AggSpec& a) {
  switch (a.kind) {
    case AggKind::kSum:
      return a.column + "_sum";
    case AggKind::kMean:
      return a.column + "_mean";
    case AggKind::kWeightedMean:
      return a.column + "_wmean";
    case AggKind::kMax:
      return a.column + "_max";
    case AggKind::kMin:
      return a.column + "_min";
    case AggKind::kCount:
      return "count";
  }
  return a.column;
}

std::string agg_output_name(const AggSpec& a) {
  return a.as.empty() ? default_name(a) : a.as;
}

// Same accumulator the contract defines: plain += / min / max per value
// within a segment, and the identical operations again when folding segment
// partials. std::min/std::max return the first argument when the second is
// NaN, so NaN values poison sums but never the min/max fields.
//
// Ungrouped queries (empty group_by) are the exception: the contract routes
// element j of a segment to accumulator lane j % 8 and folds the lanes with
// the fixed pairwise trees below (DESIGN.md §15) — the order a width-4
// vector unit with two accumulators produces. The oracle implements that
// scheme here, independently of the engine's kernels.
struct AggState {
  double sum = 0.0;
  double wsum = 0.0;
  double wvsum = 0.0;
  double mn = std::numeric_limits<double>::infinity();
  double mx = -std::numeric_limits<double>::infinity();
  std::int64_t n = 0;
};

void merge_state(AggState& into, const AggState& from) {
  into.sum += from.sum;
  into.wsum += from.wsum;
  into.wvsum += from.wvsum;
  into.mn = std::min(into.mn, from.mn);
  into.mx = std::max(into.mx, from.mx);
  into.n += from.n;
}

constexpr std::size_t kLanes = 8;

// The canonical lane folds: lane k joins lane k+4, then k+2, then the final
// pair. Min/max ties (and only ties — lanes never hold NaN) resolve to the
// second operand, the minpd/maxpd convention the contract fixes.
double fold8_sum(const double* l) {
  return ((l[0] + l[4]) + (l[2] + l[6])) + ((l[1] + l[5]) + (l[3] + l[7]));
}

double fold8_min(const double* l) {
  const auto m = [](double a, double b) { return a < b ? a : b; };
  return m(m(m(l[0], l[4]), m(l[2], l[6])), m(m(l[1], l[5]), m(l[3], l[7])));
}

double fold8_max(const double* l) {
  const auto m = [](double a, double b) { return a > b ? a : b; };
  return m(m(m(l[0], l[4]), m(l[2], l[6])), m(m(l[1], l[5]), m(l[3], l[7])));
}

bool term_matches(const Table& t, const PredTerm& term, std::size_t r) {
  switch (term.op) {
    case PredOp::kEq:
      return t.col(term.column).as_string(r) == term.value;
    case PredOp::kGe:
      return t.col(term.column).as_double(r) >= term.lo;
    case PredOp::kLe:
      return t.col(term.column).as_double(r) <= term.hi;
    case PredOp::kBetween: {
      const double v = t.col(term.column).as_double(r);
      return v >= term.lo && v <= term.hi;
    }
  }
  return false;
}

bool row_matches(const Table& t, const QuerySpec& spec, std::size_t r) {
  if (!spec.has_where) return true;
  for (const auto& term : spec.where) {
    if (!term_matches(t, term, r)) return false;
  }
  return true;
}

/// Exact bit pattern of one group-key cell, matching the contract: strings
/// group by dictionary code, int64 by raw bits, doubles by bit pattern.
std::uint64_t key_word(const Column& c, std::size_t r) {
  switch (c.type()) {
    case ColType::kString:
      return static_cast<std::uint32_t>(c.code(r));
    case ColType::kInt64:
      return static_cast<std::uint64_t>(c.as_int64(r));
    case ColType::kDouble:
      return std::bit_cast<std::uint64_t>(c.as_double(r));
  }
  return 0;
}

/// A prune conjunct derived from the spec; mirrors the documented zone-map
/// rule without ever reading the table's ZoneIndex *ranges* — the oracle
/// recomputes chunk min/max from the rows so a stale or miscomputed zone map
/// in the engine shows up as a stats or result divergence.
struct PruneTest {
  std::string column;
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
  bool fail_all = false;  // equality literal absent from the whole column
};

/// Chunk min/max over [lo_row, hi_row): NaN excluded; a chunk with no
/// finite-comparable value keeps the default [0, 0] range — the same
/// definition the zone index documents.
void chunk_range(const Column& c, std::size_t lo_row, std::size_t hi_row, double& lo,
                 double& hi) {
  lo = 0.0;
  hi = 0.0;
  bool seen = false;
  for (std::size_t r = lo_row; r < hi_row; ++r) {
    double v = 0.0;
    switch (c.type()) {
      case ColType::kDouble:
        v = c.as_double(r);
        break;
      case ColType::kInt64:
        v = static_cast<double>(c.as_int64(r));
        break;
      case ColType::kString:
        v = static_cast<double>(c.code(r));
        break;
    }
    if (v != v) continue;  // NaN
    if (!seen || v < lo) lo = v;
    if (!seen || v > hi) hi = v;
    seen = true;
  }
}

// --- time-partitioned contract mirror (DESIGN.md §16) ----------------------
// When a table declares a time partition, the contract replaces the segment
// grid: values accumulate sequentially in match order into micro-cells keyed
// by (group keys, partition subkeys, end-day); per (group, subkey tuple) the
// day cells fold day → week → month → quarter → total in ascending-day
// order; sub-tuple totals then merge into their group in first-seen order.
// The oracle mirrors that naively and independently of the engine (and of
// warehouse/aggstate.h): its own calendar math, its own hierarchical fold.
constexpr std::int64_t kDaySeconds = 86400;

std::int64_t fdiv(std::int64_t a, std::int64_t b) {
  return a >= 0 ? a / b : -((-a + b - 1) / b);
}

// Day index of an interval END: day D covers end in (D*86400, (D+1)*86400].
std::int64_t oracle_end_day(std::int64_t end) { return fdiv(end - 1, kDaySeconds); }

using StateVec = std::vector<AggState>;

// Left-fold children (ascending bucket order, `ratio` children per parent)
// into parent buckets, keeping ascending parent order.
std::vector<std::pair<std::int64_t, StateVec>> fold_up(
    const std::vector<std::pair<std::int64_t, StateVec>>& children, std::int64_t ratio,
    std::size_t naggs) {
  std::vector<std::pair<std::int64_t, StateVec>> parents;
  for (const auto& [idx, st] : children) {
    const std::int64_t p = fdiv(idx, ratio);
    if (parents.empty() || parents.back().first != p) parents.emplace_back(p, StateVec(naggs));
    for (std::size_t a = 0; a < naggs; ++a) merge_state(parents.back().second[a], st[a]);
  }
  return parents;
}

std::string fmt_double(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v << " (0x" << std::hex << std::bit_cast<std::uint64_t>(v) << ")";
  return os.str();
}

}  // namespace

QueryRun run_engine(const Table& table, const QuerySpec& spec) {
  warehouse::Query q(table);
  if (spec.has_where) {
    if (spec.opaque) {
      // Opaque closure: same row logic, but the engine sees no bounds — it
      // must fall back to per-row closure evaluation with no pruning.
      auto terms = spec.where;
      q.where(warehouse::RowPredicate([terms](const Table& t, std::size_t r) {
        for (const auto& term : terms) {
          if (!term_matches(t, term, r)) return false;
        }
        return true;
      }));
    } else {
      std::vector<warehouse::RowPredicate> preds;
      preds.reserve(spec.where.size());
      for (const auto& term : spec.where) {
        switch (term.op) {
          case PredOp::kEq:
            preds.push_back(warehouse::eq(term.column, term.value));
            break;
          case PredOp::kGe:
            preds.push_back(warehouse::ge(term.column, term.lo));
            break;
          case PredOp::kLe:
            preds.push_back(warehouse::le(term.column, term.hi));
            break;
          case PredOp::kBetween:
            preds.push_back(warehouse::between(term.column, term.lo, term.hi));
            break;
        }
      }
      if (preds.size() == 1) {
        q.where(std::move(preds.front()));
      } else {
        q.where(warehouse::all_of(std::move(preds)));
      }
    }
  }
  q.group_by(spec.group_by).aggregate(spec.aggs).threads(spec.threads);
  QueryRun run{q.run(), q.stats()};
  return run;
}

QueryRun run_oracle(const Table& table, const QuerySpec& spec) {
  const std::size_t nrows = table.rows();

  // --- matches: one honest pass over every row ---------------------------
  // Deliberately ignores pruning: if the engine wrongly skips a chunk that
  // holds a matching row, its result diverges from this list.
  std::vector<std::size_t> matches;
  for (std::size_t r = 0; r < nrows; ++r) {
    if (row_matches(table, spec, r)) matches.push_back(r);
  }

  // --- stats: predicted from the documented accounting rules -------------
  QueryStats stats;
  const bool have_pred = spec.has_where;
  const bool have_bounds = have_pred && !spec.opaque && !spec.where.empty();
  const warehouse::ZoneIndex* zi = table.zone_index();
  const bool prune = have_bounds && zi != nullptr && zi->chunks > 0;
  if (!have_pred) {
    stats.rows_scanned = nrows;
  } else {
    std::vector<PruneTest> tests;
    if (prune) {
      for (const auto& term : spec.where) {
        PruneTest t;
        t.column = term.column;
        switch (term.op) {
          case PredOp::kEq: {
            if (const auto code = table.col(term.column).find_code(term.value)) {
              t.lo = t.hi = static_cast<double>(*code);
            } else {
              t.fail_all = true;
            }
            break;
          }
          case PredOp::kGe:
            t.lo = term.lo;
            break;
          case PredOp::kLe:
            t.hi = term.hi;
            break;
          case PredOp::kBetween:
            t.lo = term.lo;
            t.hi = term.hi;
            break;
        }
        tests.push_back(std::move(t));
      }
      stats.chunks_total = zi->chunks;
    }
    const std::size_t chunk_rows = prune ? zi->chunk_rows : kExecChunkRows;
    const std::size_t nchunks = nrows == 0 ? 0 : (nrows + chunk_rows - 1) / chunk_rows;
    for (std::size_t ch = 0; ch < nchunks; ++ch) {
      const std::size_t begin = ch * chunk_rows;
      const std::size_t end = std::min(nrows, begin + chunk_rows);
      bool pruned = false;
      for (const auto& t : tests) {
        double lo = 0.0;
        double hi = 0.0;
        chunk_range(table.col(t.column), begin, end, lo, hi);
        if (t.fail_all || hi < t.lo || lo > t.hi) {
          pruned = true;
          break;
        }
      }
      if (pruned) {
        ++stats.chunks_pruned;
      } else {
        stats.rows_scanned += end - begin;
      }
    }
  }
  stats.rows_matched = matches.size();

  // --- aggregation ------------------------------------------------------
  const std::size_t naggs = spec.aggs.size();
  const std::size_t total = matches.size();
  std::vector<std::size_t> example_row;  // first-seen group order
  std::vector<AggState> states;          // [group * naggs + agg]
  using Key = std::vector<std::uint64_t>;

  if (!table.time_partition().empty()) {
    // Time-partitioned contract mirror: cells, then per-(group, sub-tuple)
    // hierarchical time fold, then cross-dimension merges, outermost last.
    const Column& tp = table.col(table.time_partition());
    std::vector<std::string> extras;  // subkeys that are not group keys
    for (const auto& s : table.time_partition_subkeys()) {
      if (std::find(spec.group_by.begin(), spec.group_by.end(), s) == spec.group_by.end()) {
        extras.push_back(s);
      }
    }
    struct Cell {
      std::size_t example_row;
      std::int64_t day;
      StateVec states;
    };
    std::map<Key, std::size_t> cell_lookup;
    std::vector<Cell> cells;  // first-seen order
    for (const std::size_t r : matches) {
      Key key;
      key.reserve(spec.group_by.size() + extras.size() + 1);
      for (const auto& k : spec.group_by) key.push_back(key_word(table.col(k), r));
      for (const auto& k : extras) key.push_back(key_word(table.col(k), r));
      const std::int64_t day = oracle_end_day(tp.as_int64(r));
      key.push_back(static_cast<std::uint64_t>(day));
      auto [it, inserted] = cell_lookup.emplace(std::move(key), cells.size());
      if (inserted) cells.push_back(Cell{r, day, StateVec(naggs)});
      AggState* st = cells[it->second].states.data();
      for (std::size_t a = 0; a < naggs; ++a) {
        const AggSpec& agg = spec.aggs[a];
        AggState& s = st[a];
        ++s.n;
        if (agg.kind == AggKind::kCount) continue;
        const double v = table.col(agg.column).as_double(r);
        s.sum += v;
        s.mn = std::min(s.mn, v);
        s.mx = std::max(s.mx, v);
        if (agg.kind == AggKind::kWeightedMean) {
          const double w = table.col(agg.weight).as_double(r);
          s.wsum += w;
          s.wvsum += w * v;
        }
      }
    }

    // Bucket cells into groups and, per group, into sub-tuples (both in
    // first-seen cell order).
    std::map<Key, std::size_t> group_lookup;
    std::vector<std::vector<std::size_t>> group_subs;
    std::map<Key, std::size_t> sub_lookup;
    std::vector<std::vector<std::size_t>> sub_cells;
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const std::size_t r = cells[c].example_row;
      Key gkey;
      for (const auto& k : spec.group_by) gkey.push_back(key_word(table.col(k), r));
      Key skey = gkey;
      for (const auto& k : extras) skey.push_back(key_word(table.col(k), r));
      auto [git, ginserted] = group_lookup.emplace(std::move(gkey), example_row.size());
      if (ginserted) {
        example_row.push_back(r);
        group_subs.emplace_back();
      }
      auto [sit, sinserted] = sub_lookup.emplace(std::move(skey), sub_cells.size());
      if (sinserted) {
        sub_cells.emplace_back();
        group_subs[git->second].push_back(sit->second);
      }
      sub_cells[sit->second].push_back(c);
    }

    // Per sub-tuple: day cells ascending → weeks → months → quarters → total.
    std::vector<StateVec> sub_totals(sub_cells.size());
    for (std::size_t s = 0; s < sub_cells.size(); ++s) {
      std::vector<std::size_t>& cs = sub_cells[s];
      std::sort(cs.begin(), cs.end(), [&cells](std::size_t a, std::size_t b) {
        return cells[a].day < cells[b].day;
      });
      std::vector<std::pair<std::int64_t, StateVec>> days;
      days.reserve(cs.size());
      for (const std::size_t c : cs) days.emplace_back(cells[c].day, cells[c].states);
      const auto weeks = fold_up(days, 7, naggs);
      const auto months = fold_up(weeks, 4, naggs);
      const auto quarters = fold_up(months, 3, naggs);
      StateVec& tot = sub_totals[s];
      tot.assign(naggs, AggState{});
      for (const auto& [qi, st] : quarters) {
        for (std::size_t a = 0; a < naggs; ++a) merge_state(tot[a], st[a]);
      }
    }
    states.resize(example_row.size() * naggs);
    for (std::size_t g = 0; g < group_subs.size(); ++g) {
      for (const std::size_t s : group_subs[g]) {
        for (std::size_t a = 0; a < naggs; ++a) {
          merge_state(states[g * naggs + a], sub_totals[s][a]);
        }
      }
    }
  } else {
  // --- aggregation over the canonical segment grid -----------------------
  const std::size_t nsegs = total == 0 ? 0 : (total + kSegmentRows - 1) / kSegmentRows;

  struct Partial {
    std::map<Key, std::size_t> lookup;
    std::vector<Key> keys;                 // insertion order
    std::vector<std::size_t> example_row;  // first matching row per group
    std::vector<AggState> states;          // [group * naggs + agg]
  };

  std::vector<Partial> partials(nsegs);
  for (std::size_t seg = 0; seg < nsegs; ++seg) {
    Partial& part = partials[seg];
    const std::size_t begin = seg * kSegmentRows;
    const std::size_t end = std::min(total, begin + kSegmentRows);
    if (spec.group_by.empty()) {
      // Ungrouped: the 8-lane contract. One group per segment; each agg
      // accumulates per lane and folds once, touching only the fields its
      // kind emits (the rest stay at their merge-neutral defaults).
      const std::size_t len = end - begin;
      part.lookup.emplace(Key{}, 0);
      part.keys.emplace_back();
      part.example_row.push_back(matches[begin]);
      part.states.resize(naggs);
      for (std::size_t a = 0; a < naggs; ++a) {
        const AggSpec& agg = spec.aggs[a];
        AggState& s = part.states[a];
        s.n = static_cast<std::int64_t>(len);
        if (agg.kind == AggKind::kCount) continue;
        double lane_sum[kLanes] = {0, 0, 0, 0, 0, 0, 0, 0};
        double lane_w[kLanes] = {0, 0, 0, 0, 0, 0, 0, 0};
        double lane_wv[kLanes] = {0, 0, 0, 0, 0, 0, 0, 0};
        double lane_mn[kLanes];
        double lane_mx[kLanes];
        std::fill(std::begin(lane_mn), std::end(lane_mn),
                  std::numeric_limits<double>::infinity());
        std::fill(std::begin(lane_mx), std::end(lane_mx),
                  -std::numeric_limits<double>::infinity());
        for (std::size_t j = 0; j < len; ++j) {
          const std::size_t r = matches[begin + j];
          const double v = table.col(agg.column).as_double(r);
          const std::size_t lane = j % kLanes;
          switch (agg.kind) {
            case AggKind::kSum:
            case AggKind::kMean:
              lane_sum[lane] += v;
              break;
            case AggKind::kMin:
              lane_mn[lane] = v < lane_mn[lane] ? v : lane_mn[lane];
              break;
            case AggKind::kMax:
              lane_mx[lane] = v > lane_mx[lane] ? v : lane_mx[lane];
              break;
            case AggKind::kWeightedMean: {
              const double w = table.col(agg.weight).as_double(r);
              const double t = w * v;
              lane_w[lane] += w;
              lane_wv[lane] += t;
              break;
            }
            case AggKind::kCount:
              break;
          }
        }
        switch (agg.kind) {
          case AggKind::kSum:
          case AggKind::kMean:
            s.sum = fold8_sum(lane_sum);
            break;
          case AggKind::kMin:
            s.mn = fold8_min(lane_mn);
            break;
          case AggKind::kMax:
            s.mx = fold8_max(lane_mx);
            break;
          case AggKind::kWeightedMean:
            s.wsum = fold8_sum(lane_w);
            s.wvsum = fold8_sum(lane_wv);
            break;
          case AggKind::kCount:
            break;
        }
      }
      continue;
    }
    for (std::size_t m = begin; m < end; ++m) {
      const std::size_t r = matches[m];
      Key key;
      key.reserve(spec.group_by.size());
      for (const auto& k : spec.group_by) key.push_back(key_word(table.col(k), r));
      auto [it, inserted] = part.lookup.emplace(std::move(key), part.keys.size());
      if (inserted) {
        part.keys.push_back(it->first);
        part.example_row.push_back(r);
        part.states.resize(part.states.size() + naggs);
      }
      AggState* st = part.states.data() + it->second * naggs;
      for (std::size_t a = 0; a < naggs; ++a) {
        const AggSpec& agg = spec.aggs[a];
        AggState& s = st[a];
        ++s.n;
        if (agg.kind == AggKind::kCount) continue;
        const double v = table.col(agg.column).as_double(r);
        s.sum += v;
        s.mn = std::min(s.mn, v);
        s.mx = std::max(s.mx, v);
        if (agg.kind == AggKind::kWeightedMean) {
          const double w = table.col(agg.weight).as_double(r);
          s.wsum += w;
          s.wvsum += w * v;
        }
      }
    }
  }

  // --- fold segment partials in segment order ----------------------------
  std::map<Key, std::size_t> lookup;
  for (const auto& part : partials) {
    for (std::size_t g = 0; g < part.keys.size(); ++g) {
      auto [it, inserted] = lookup.emplace(part.keys[g], example_row.size());
      if (inserted) {
        example_row.push_back(part.example_row[g]);
        states.resize(states.size() + naggs);
      }
      AggState* into = states.data() + it->second * naggs;
      const AggState* from = part.states.data() + g * naggs;
      for (std::size_t a = 0; a < naggs; ++a) merge_state(into[a], from[a]);
    }
  }
  }  // end canonical segment contract

  // --- emit groups in first-seen order -----------------------------------
  std::vector<std::pair<std::string, ColType>> schema;
  for (const auto& k : spec.group_by) schema.emplace_back(k, table.col(k).type());
  for (const auto& a : spec.aggs) {
    schema.emplace_back(agg_output_name(a),
                        a.kind == AggKind::kCount ? ColType::kInt64 : ColType::kDouble);
  }
  Table out(table.name() + "_agg", std::move(schema));
  for (std::size_t g = 0; g < example_row.size(); ++g) {
    auto row = out.append();
    const std::size_t src = example_row[g];
    for (const auto& k : spec.group_by) {
      const Column& c = table.col(k);
      switch (c.type()) {
        case ColType::kString:
          row.set(k, c.as_string(src));
          break;
        case ColType::kInt64:
          row.set(k, c.as_int64(src));
          break;
        case ColType::kDouble:
          row.set(k, c.as_double(src));
          break;
      }
    }
    for (std::size_t a = 0; a < naggs; ++a) {
      const AggSpec& agg = spec.aggs[a];
      const AggState& s = states[g * naggs + a];
      const std::string name = agg_output_name(agg);
      switch (agg.kind) {
        case AggKind::kSum:
          row.set(name, canon_nan(s.sum));
          break;
        case AggKind::kMean:
          row.set(name, s.n > 0 ? canon_nan(s.sum / static_cast<double>(s.n)) : 0.0);
          break;
        case AggKind::kWeightedMean:
          row.set(name, s.wsum > 0.0 ? canon_nan(s.wvsum / s.wsum) : 0.0);
          break;
        case AggKind::kMax:
          row.set(name, s.n > 0 ? s.mx : 0.0);
          break;
        case AggKind::kMin:
          row.set(name, s.n > 0 ? s.mn : 0.0);
          break;
        case AggKind::kCount:
          row.set(name, s.n);
          break;
      }
    }
  }
  return QueryRun{std::move(out), stats};
}

std::optional<std::string> table_diff(const Table& a, const Table& b) {
  if (a.name() != b.name()) {
    return "table name: \"" + a.name() + "\" vs \"" + b.name() + "\"";
  }
  if (a.cols() != b.cols()) {
    return "column count: " + std::to_string(a.cols()) + " vs " + std::to_string(b.cols());
  }
  for (std::size_t c = 0; c < a.cols(); ++c) {
    const Column& ca = a.columns()[c];
    const Column& cb = b.columns()[c];
    if (ca.name() != cb.name()) {
      return "column " + std::to_string(c) + " name: \"" + ca.name() + "\" vs \"" +
             cb.name() + "\"";
    }
    if (ca.type() != cb.type()) {
      return "column \"" + ca.name() + "\" type mismatch";
    }
  }
  if (a.rows() != b.rows()) {
    return "row count: " + std::to_string(a.rows()) + " vs " + std::to_string(b.rows());
  }
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      const Column& ca = a.columns()[c];
      const Column& cb = b.columns()[c];
      const std::string at = "row " + std::to_string(r) + " col \"" + ca.name() + "\": ";
      switch (ca.type()) {
        case ColType::kString:
          if (ca.as_string(r) != cb.as_string(r)) {
            return at + "\"" + std::string(ca.as_string(r)) + "\" vs \"" +
                   std::string(cb.as_string(r)) + "\"";
          }
          break;
        case ColType::kInt64:
          if (ca.as_int64(r) != cb.as_int64(r)) {
            return at + std::to_string(ca.as_int64(r)) + " vs " +
                   std::to_string(cb.as_int64(r));
          }
          break;
        case ColType::kDouble:
          if (std::bit_cast<std::uint64_t>(ca.as_double(r)) !=
              std::bit_cast<std::uint64_t>(cb.as_double(r))) {
            return at + fmt_double(ca.as_double(r)) + " vs " + fmt_double(cb.as_double(r));
          }
          break;
      }
    }
  }
  return std::nullopt;
}

std::optional<std::string> stats_diff(const QueryStats& a, const QueryStats& b) {
  const auto field = [](const char* name, std::size_t x, std::size_t y)
      -> std::optional<std::string> {
    if (x == y) return std::nullopt;
    return std::string(name) + ": " + std::to_string(x) + " vs " + std::to_string(y);
  };
  if (auto d = field("chunks_total", a.chunks_total, b.chunks_total)) return d;
  if (auto d = field("chunks_pruned", a.chunks_pruned, b.chunks_pruned)) return d;
  if (auto d = field("rows_scanned", a.rows_scanned, b.rows_scanned)) return d;
  if (auto d = field("rows_matched", a.rows_matched, b.rows_matched)) return d;
  return std::nullopt;
}

std::optional<std::string> differential_check(const Table& table, const QuerySpec& spec,
                                              std::size_t threads) {
  const QueryRun oracle = run_oracle(table, spec);
  QuerySpec engine_spec = spec;
  engine_spec.threads = threads;
  const QueryRun engine = run_engine(table, engine_spec);
  const std::string ctx = "threads=" + std::to_string(threads) + ": ";
  if (auto d = table_diff(oracle.table, engine.table)) {
    return ctx + "result " + *d + " (oracle vs engine)";
  }
  if (auto d = stats_diff(oracle.stats, engine.stats)) {
    return ctx + "stats " + *d + " (oracle vs engine)";
  }
  return std::nullopt;
}

std::string describe(const QuerySpec& spec) {
  std::ostringstream os;
  os.precision(17);
  if (spec.has_where) {
    os << (spec.opaque ? "where-opaque[" : "where[");
    for (std::size_t i = 0; i < spec.where.size(); ++i) {
      const PredTerm& t = spec.where[i];
      if (i != 0) os << " && ";
      switch (t.op) {
        case PredOp::kEq:
          os << t.column << " == \"" << t.value << "\"";
          break;
        case PredOp::kGe:
          os << t.column << " >= " << t.lo;
          break;
        case PredOp::kLe:
          os << t.column << " <= " << t.hi;
          break;
        case PredOp::kBetween:
          os << t.column << " in [" << t.lo << ", " << t.hi << "]";
          break;
      }
    }
    os << "] ";
  }
  os << "group[";
  for (std::size_t i = 0; i < spec.group_by.size(); ++i) {
    if (i != 0) os << ",";
    os << spec.group_by[i];
  }
  os << "] agg[";
  for (std::size_t i = 0; i < spec.aggs.size(); ++i) {
    const AggSpec& a = spec.aggs[i];
    if (i != 0) os << ",";
    switch (a.kind) {
      case AggKind::kSum:
        os << "sum(" << a.column << ")";
        break;
      case AggKind::kMean:
        os << "mean(" << a.column << ")";
        break;
      case AggKind::kWeightedMean:
        os << "wmean(" << a.column << "," << a.weight << ")";
        break;
      case AggKind::kMax:
        os << "max(" << a.column << ")";
        break;
      case AggKind::kMin:
        os << "min(" << a.column << ")";
        break;
      case AggKind::kCount:
        os << "count()";
        break;
    }
    if (!a.as.empty()) os << " as " << a.as;
  }
  os << "] threads=" << spec.threads;
  return os.str();
}

}  // namespace supremm::testkit
