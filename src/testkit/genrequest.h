// Bridge from the grammar-fuzz QuerySpec generator to the service request
// language (DESIGN.md §12/§13): the same (seed, index) streams that drive the
// differential oracle also produce request text, so the service's
// parse/print/compile path is fuzzed with exactly the query population the
// engine is already verified against.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "etl/job_summary.h"
#include "service/request.h"
#include "testkit/oracle.h"

namespace supremm::testkit {

/// Render a closure-free QuerySpec as request-language text targeting the
/// service table `table`. The output is canonical (built through
/// service::print_request). Throws InvalidArgument for opaque specs — the
/// request language carries no closures by design.
[[nodiscard]] std::string to_request_text(const QuerySpec& spec,
                                          const std::string& table);

/// Request `index` of the grammar under `seed`: make_query_spec with the
/// opaque flag forced off (and the matching engine-side spec via
/// `out_spec`, when non-null), rendered against `table`.
[[nodiscard]] std::string make_request_text(std::uint64_t seed,
                                            std::uint64_t index,
                                            const std::string& table,
                                            QuerySpec* out_spec = nullptr);

// ---------------------------------------------------------------------------
// Rollup-realm fuzzing (DESIGN.md §16): a jobs-shaped population plus a query
// stream steered toward the subsumption checker's decision boundary.

/// Literal domains of the synthetic rollup population; the query generator
/// draws dim literals one past each domain so absent-literal serving (empty
/// dictionaries, zero selected cells) is exercised too.
inline constexpr std::size_t kRollupUsers = 6;
inline constexpr std::size_t kRollupApps = 4;
inline constexpr std::size_t kRollupClusters = 3;
/// Days the population's end times span; bucket/end predicates draw their
/// bounds from the same window so ranges actually split the data.
inline constexpr std::int64_t kRollupSpanDays = 100;

struct RollupJobsSpec {
  std::size_t rows = 2000;
  std::uint64_t seed = 20130313;
};

/// Synthetic job summaries for rollup testing: ids sequential (the canonical
/// jobs order), end times spread over kRollupSpanDays with day-boundary
/// emphasis (end exactly on, one second past, and one second before
/// midnights), and metric values salted with NaN / ±0.0 / zero node_hours.
/// Row r draws from RngStream(seed, "testkit.rollup.jobs", r), so a shorter
/// population is an exact prefix of a longer one.
[[nodiscard]] std::vector<etl::JobSummary> make_rollup_jobs(const RollupJobsSpec& spec);

/// Query `index` of the rollup grammar under `seed`: group keys over the
/// rollup dimensions and bucket columns (sometimes an ineligible key), time
/// predicates on bucket columns and on raw `end` — day-aligned and
/// deliberately misaligned (the off-by-one-day trap subsume must reject) —
/// dim equalities, and agg lists mixing eligible shapes with ones only the
/// raw scan can serve. Depends only on (seed, index).
[[nodiscard]] QuerySpec make_rollup_query_spec(std::uint64_t seed,
                                               std::uint64_t index);

/// make_rollup_query_spec rendered as canonical request text against the
/// "jobs" service table (and the matching engine-side spec via `out_spec`).
[[nodiscard]] std::string make_rollup_request_text(std::uint64_t seed,
                                                   std::uint64_t index,
                                                   QuerySpec* out_spec = nullptr);

/// Adversarial-but-legal shard placement for federation tests: partition
/// `jobs` into `nshards` slices such that every (cluster, end-day) cell
/// lands on exactly one shard — the §17 placement contract — but which
/// shard each cell lands on is seed-random, so day ranges interleave and
/// nothing about catalog contiguity can be accidentally relied on. Slices
/// may come out empty (a legal shard). Depends only on (jobs, nshards,
/// seed); relative job order within a slice is preserved.
[[nodiscard]] std::vector<std::vector<etl::JobSummary>> split_jobs_for_shards(
    const std::vector<etl::JobSummary>& jobs, std::size_t nshards,
    std::uint64_t seed);

}  // namespace supremm::testkit
