// Bridge from the grammar-fuzz QuerySpec generator to the service request
// language (DESIGN.md §12/§13): the same (seed, index) streams that drive the
// differential oracle also produce request text, so the service's
// parse/print/compile path is fuzzed with exactly the query population the
// engine is already verified against.
#pragma once

#include <cstdint>
#include <string>

#include "service/request.h"
#include "testkit/oracle.h"

namespace supremm::testkit {

/// Render a closure-free QuerySpec as request-language text targeting the
/// service table `table`. The output is canonical (built through
/// service::print_request). Throws InvalidArgument for opaque specs — the
/// request language carries no closures by design.
[[nodiscard]] std::string to_request_text(const QuerySpec& spec,
                                          const std::string& table);

/// Request `index` of the grammar under `seed`: make_query_spec with the
/// opaque flag forced off (and the matching engine-side spec via
/// `out_spec`, when non-null), rendered against `table`.
[[nodiscard]] std::string make_request_text(std::uint64_t seed,
                                            std::uint64_t index,
                                            const std::string& table,
                                            QuerySpec* out_spec = nullptr);

}  // namespace supremm::testkit
