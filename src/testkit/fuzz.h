// Structured archive bitstream fuzzing (DESIGN.md §12).
//
// faultsim's apply_archive() flips random bits — blunt damage the CRC layer
// catches trivially. This module mutates the archive *with knowledge of the
// format*: it re-parses the partition layout with its own scanner (built
// from the format documentation in partition.h, independent of the decode
// path under test) and applies surgical mutations, several of which forge
// every checksum on the way out so the damage reaches the layers behind the
// CRCs. The Reader contract under test:
//
//   for every mutation, reading the archive either round-trips the pristine
//   tables bit-identically, or quarantines the damaged partitions (reported
//   via Reader::quarantined()) / rejects the manifest with ParseError —
//   it never crashes and never silently returns wrong rows.
//
// "Silently" is the key word: a mutation that forges CRCs (kBitFlipCrcFixed)
// may legitimately decode to different values — a checksum cannot detect a
// forgery — so for that kind a divergent table is an accepted (counted)
// outcome. For every checksum-protected mutation (truncations, plain bit
// flips) and for semantic damage behind valid checksums (out-of-range
// dictionary codes, skewed manifest watermarks) the contract is hard:
// quarantine/reject or exact round-trip, nothing else.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace supremm::testkit {

enum class MutationKind : std::uint8_t {
  kTruncateTail,      // cut the partition file at an arbitrary byte
  kTruncateBlock,     // cut precisely inside a block payload (via the scanner)
  kBitFlip,           // flip one bit anywhere; file CRC left stale
  kBitFlipCrcFixed,   // flip one payload bit, re-forge block/file/manifest CRCs
  kWatermarkSkew,     // rewrite manifest watermark/bucket, re-forge manifest CRC
  kDictCodeRange,     // splice a chunk whose dict codes exceed the dictionary
};

[[nodiscard]] const char* mutation_kind_name(MutationKind k);

struct FuzzConfig {
  std::string pristine_dir;  // intact archive (never modified)
  std::string scratch_dir;   // rewritten from pristine each iteration
  std::uint64_t seed = 20130313;
  std::size_t iterations = 200;
  std::string seed_dir = ".";  // where replay seed files are dumped
};

struct FuzzReport {
  std::size_t iterations = 0;
  std::size_t roundtrips = 0;         // read back bit-identical
  std::size_t quarantines = 0;        // damage detected and quarantined
  std::size_t manifest_rejects = 0;   // Reader refused the manifest
  std::size_t forged_divergences = 0; // CRC-forged mutation decoded differently (allowed)
  std::vector<std::string> failures;  // contract violations (must be empty)
  std::vector<std::string> seed_files;  // replay files dumped for violations
};

/// Run `cfg.iterations` structured mutations against a copy of
/// `cfg.pristine_dir`, checking the Reader contract after each. Every
/// mutation derives from RngStream(seed, "testkit.fuzz", iteration), so any
/// single iteration replays exactly from (seed, iteration).
[[nodiscard]] FuzzReport run_archive_fuzz(const FuzzConfig& cfg);

/// Re-run one dumped `mode fuzz` seed file against cfg.pristine_dir /
/// cfg.scratch_dir (the file's seed and iteration override cfg's). Returns
/// the contract-violation message when it still reproduces, nullopt when the
/// case now passes. Throws common::ParseError on a malformed file.
[[nodiscard]] std::optional<std::string> replay_fuzz_file(const FuzzConfig& cfg,
                                                          const std::string& path);

}  // namespace supremm::testkit
