#include "testkit/genquery.h"

#include <algorithm>
#include <limits>
#include <optional>
#include <utility>

#include "common/error.h"
#include "common/rng.h"
#include "common/strings.h"
#include "testkit/replay.h"

namespace supremm::testkit {

using warehouse::AggKind;
using warehouse::AggSpec;
using warehouse::ColType;
using warehouse::Table;

namespace {

constexpr const char* kAllCols[] = {"user", "app", "day", "big", "value", "weight"};
constexpr std::size_t kNumAllCols = 6;
constexpr std::size_t kNumStringCols = 2;  // prefix of kAllCols
constexpr const char* kNumericCols[] = {"day", "big", "value", "weight"};
constexpr std::size_t kNumNumericCols = 4;

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

// int64 values double conversion mangles: beyond 2^53 adjacent integers
// collapse to the same double, so predicates and zone ranges (both computed
// in double) must treat them consistently on each side of the diff.
constexpr std::int64_t kBigEdges[] = {
    0,
    1,
    -1,
    std::numeric_limits<std::int64_t>::min(),
    std::numeric_limits<std::int64_t>::max(),
    std::int64_t{1} << 53,
    -(std::int64_t{1} << 53),
    (std::int64_t{1} << 53) + 1,
};

constexpr double kValueEdges[] = {
    kNaN, 0.0, -0.0, kInf, -kInf, 5e-324, 0.5 + 1e-9, 0.5 + 2e-9, 1e300, -1e300,
};

// Predicate thresholds: the same hazards, plus values straddling the int64
// range so `big` comparisons exercise double rounding at the boundary.
constexpr double kThresholdEdges[] = {
    0.0,    -0.0,   kNaN,
    kInf,   -kInf,  0.5,
    0.5 + 1e-9,     9007199254740993.0,
    1e300,  -1e300, 9.223372036854775807e18,
    -9.223372036854775808e18,  5e-324,
};

double numeric_threshold(common::RngStream& g, std::size_t numeric_col) {
  if (g.chance(0.45)) {
    // In-range draws so predicates actually split the data.
    switch (numeric_col) {
      case 0:  // day
        return static_cast<double>(g.uniform_int(-1, 7));
      case 1:  // big
        return g.chance(0.5) ? static_cast<double>(g.uniform_int(-1000000, 1000000))
                             : g.uniform(-1e19, 1e19);
      case 2:  // value
        return g.uniform(-12.0, 12.0);
      default:  // weight
        return g.uniform(-1.0, 6.0);
    }
  }
  const auto n = static_cast<std::int64_t>(std::size(kThresholdEdges));
  return kThresholdEdges[g.uniform_int(0, n - 1)];
}

/// Kept-index view of a generated spec: the unit of minimization and replay.
struct Reduction {
  CorpusSpec corpus;
  std::vector<std::size_t> terms;  // kept indices into base.where
  std::vector<std::size_t> aggs;   // kept indices into base.aggs
  std::vector<std::size_t> keys;   // kept indices into base.group_by
};

std::vector<std::size_t> all_indices(std::size_t n) {
  std::vector<std::size_t> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = i;
  return out;
}

QuerySpec apply_reduction(const QuerySpec& base, const Reduction& red) {
  QuerySpec out;
  out.opaque = base.opaque;
  out.has_where = base.has_where && !red.terms.empty();
  for (const std::size_t i : red.terms) {
    if (i >= base.where.size()) throw common::ParseError("seed file: term index out of range");
    out.where.push_back(base.where[i]);
  }
  for (const std::size_t i : red.keys) {
    if (i >= base.group_by.size()) {
      throw common::ParseError("seed file: group-key index out of range");
    }
    out.group_by.push_back(base.group_by[i]);
  }
  for (const std::size_t i : red.aggs) {
    if (i >= base.aggs.size()) throw common::ParseError("seed file: agg index out of range");
    out.aggs.push_back(base.aggs[i]);
  }
  out.threads = 1;
  return out;
}

/// First divergence of the reduced case across all checked thread counts.
std::optional<std::string> check_reduction(const QuerySpec& base, const Reduction& red) {
  const Table corpus = make_corpus(red.corpus);
  const QuerySpec spec = apply_reduction(base, red);
  for (const std::size_t threads : kDiffThreadCounts) {
    if (auto d = differential_check(corpus, spec, threads)) return d;
  }
  return std::nullopt;
}

/// Greedy shrink: drop predicate terms, aggregates (keeping one) and group
/// keys one at a time, then halve the corpus, as long as the case still
/// fails. Returns the smallest failing reduction and its message.
std::pair<Reduction, std::string> minimize(const QuerySpec& base, Reduction red,
                                           std::string msg) {
  const auto try_drop = [&](std::vector<std::size_t> Reduction::* list,
                            std::size_t floor) {
    bool changed = false;
    for (std::size_t i = 0; (red.*list).size() > floor && i < (red.*list).size();) {
      Reduction cand = red;
      (cand.*list).erase((cand.*list).begin() + static_cast<std::ptrdiff_t>(i));
      if (auto m = check_reduction(base, cand)) {
        red = std::move(cand);
        msg = std::move(*m);
        changed = true;
      } else {
        ++i;
      }
    }
    return changed;
  };
  bool changed = true;
  while (changed) {
    changed = false;
    changed |= try_drop(&Reduction::terms, 0);
    changed |= try_drop(&Reduction::keys, 0);
    changed |= try_drop(&Reduction::aggs, 1);
    while (red.corpus.rows > 0) {
      Reduction cand = red;
      cand.corpus.rows /= 2;
      if (auto m = check_reduction(base, cand)) {
        red = std::move(cand);
        msg = std::move(*m);
        changed = true;
      } else {
        break;
      }
    }
  }
  return {std::move(red), std::move(msg)};
}

}  // namespace

Table make_corpus(const CorpusSpec& spec) {
  Table t("corpus", {{"user", ColType::kString},
                     {"app", ColType::kString},
                     {"day", ColType::kInt64},
                     {"big", ColType::kInt64},
                     {"value", ColType::kDouble},
                     {"weight", ColType::kDouble}});
  for (std::size_t r = 0; r < spec.rows; ++r) {
    common::RngStream g(spec.seed, "testkit.corpus", r);
    auto row = t.append();
    row.set("user", common::strprintf(
                        "u%lld", static_cast<long long>(g.uniform_int(0, kCorpusUsers - 1))));
    row.set("app", common::strprintf(
                       "app%lld", static_cast<long long>(g.uniform_int(0, kCorpusApps - 1))));
    row.set("day", g.uniform_int(0, 6));
    if (g.chance(0.25)) {
      const auto n = static_cast<std::int64_t>(std::size(kBigEdges));
      row.set("big", kBigEdges[g.uniform_int(0, n - 1)]);
    } else {
      row.set("big", g.uniform_int(-1000000, 1000000));
    }
    if (g.chance(0.18)) {
      const auto n = static_cast<std::int64_t>(std::size(kValueEdges));
      row.set("value", kValueEdges[g.uniform_int(0, n - 1)]);
    } else {
      row.set("value", g.uniform(-10.0, 10.0));
    }
    const double wroll = g.uniform();
    if (wroll < 0.10) {
      row.set("weight", 0.0);
    } else if (wroll < 0.14) {
      row.set("weight", kNaN);
    } else {
      row.set("weight", g.uniform(0.0, 5.0));
    }
  }
  if (spec.chunk_rows > 0) t.rebuild_zone_index(spec.chunk_rows);
  return t;
}

std::vector<CorpusSpec> default_corpora(std::uint64_t seed) {
  std::vector<CorpusSpec> out = {
      {.rows = 0, .chunk_rows = 256, .seed = seed},
      {.rows = 1, .chunk_rows = 64, .seed = seed},
      {.rows = 7, .chunk_rows = 0, .seed = seed},
      {.rows = 63, .chunk_rows = 64, .seed = seed},
      {.rows = 256, .chunk_rows = 256, .seed = seed},
      {.rows = 1000, .chunk_rows = 1024, .seed = seed},
      {.rows = 1000, .chunk_rows = 0, .seed = seed},
      // > kSegmentRows so unfiltered queries span multiple aggregation
      // segments and exercise the partial merge.
      {.rows = 9000, .chunk_rows = 256, .seed = seed},
  };
  return out;
}

QuerySpec make_query_spec(std::uint64_t seed, std::uint64_t index) {
  common::RngStream g(seed, "testkit.query", index);
  QuerySpec spec;

  spec.has_where = g.chance(0.85);
  if (spec.has_where) {
    spec.opaque = g.chance(0.25);
    const std::int64_t nterms = g.uniform_int(1, 3);
    for (std::int64_t i = 0; i < nterms; ++i) {
      PredTerm term;
      const auto col = static_cast<std::size_t>(
          g.uniform_int(0, static_cast<std::int64_t>(kNumAllCols) - 1));
      term.column = kAllCols[col];
      if (col < kNumStringCols) {
        // Equality on a string column. Literal domain deliberately one past
        // the corpus domain so absent-literal pruning (fail_all /
        // impossible-kernel) gets generated, and short corpora naturally
        // miss some in-domain literals too.
        term.op = PredOp::kEq;
        if (col == 0) {
          term.value = common::strprintf(
              "u%lld", static_cast<long long>(g.uniform_int(0, kCorpusUsers)));
        } else {
          term.value = common::strprintf(
              "app%lld", static_cast<long long>(g.uniform_int(0, kCorpusApps)));
        }
      } else {
        const std::size_t ncol = col - kNumStringCols;
        switch (g.uniform_int(0, 2)) {
          case 0:
            term.op = PredOp::kGe;
            term.lo = numeric_threshold(g, ncol);
            break;
          case 1:
            term.op = PredOp::kLe;
            term.hi = numeric_threshold(g, ncol);
            break;
          default:
            // lo/hi independent, so inverted (empty) ranges occur.
            term.op = PredOp::kBetween;
            term.lo = numeric_threshold(g, ncol);
            term.hi = numeric_threshold(g, ncol);
            break;
        }
      }
      spec.where.push_back(std::move(term));
    }
  }

  // 0-4 distinct group keys over all column types (4 = engine maximum).
  const auto nkeys = g.weighted_index({2.0, 4.0, 3.0, 2.0, 1.0});
  std::vector<std::size_t> candidates = all_indices(kNumAllCols);
  for (std::size_t i = 0; i < nkeys; ++i) {
    const auto pick = static_cast<std::size_t>(
        g.uniform_int(0, static_cast<std::int64_t>(candidates.size()) - 1));
    spec.group_by.emplace_back(kAllCols[candidates[pick]]);
    candidates.erase(candidates.begin() + static_cast<std::ptrdiff_t>(pick));
  }

  const std::int64_t naggs = g.uniform_int(1, 3);
  for (std::int64_t i = 0; i < naggs; ++i) {
    AggSpec agg;
    agg.kind = static_cast<AggKind>(g.uniform_int(0, 5));
    const auto pick_numeric = [&g] {
      return kNumericCols[g.uniform_int(0, static_cast<std::int64_t>(kNumNumericCols) - 1)];
    };
    if (agg.kind != AggKind::kCount) agg.column = pick_numeric();
    if (agg.kind == AggKind::kWeightedMean) agg.weight = pick_numeric();
    spec.aggs.push_back(std::move(agg));
  }
  // Output names must be unique (Table::RowBuilder::set resolves by first
  // name match): let derived names collide, then disambiguate with `as`.
  std::vector<std::string> used;
  for (std::size_t i = 0; i < spec.aggs.size(); ++i) {
    AggSpec& agg = spec.aggs[i];
    std::string name;
    switch (agg.kind) {
      case AggKind::kSum: name = agg.column + "_sum"; break;
      case AggKind::kMean: name = agg.column + "_mean"; break;
      case AggKind::kWeightedMean: name = agg.column + "_wmean"; break;
      case AggKind::kMax: name = agg.column + "_max"; break;
      case AggKind::kMin: name = agg.column + "_min"; break;
      case AggKind::kCount: name = "count"; break;
    }
    if (std::find(used.begin(), used.end(), name) != used.end()) {
      agg.as = name + "_" + std::to_string(i);
      name = agg.as;
    }
    used.push_back(name);
  }

  spec.threads = 1;
  return spec;
}

DiffReport run_differential(const DiffConfig& cfg) {
  DiffReport rep;
  const std::vector<CorpusSpec> corpora = default_corpora(cfg.seed);
  std::vector<std::optional<Table>> cache(corpora.size());

  for (std::size_t q = 0; q < cfg.queries; ++q) {
    const std::size_t ci = q % corpora.size();
    if (!cache[ci]) cache[ci] = make_corpus(corpora[ci]);
    const QuerySpec spec = make_query_spec(cfg.seed, q);
    ++rep.queries_run;

    std::optional<std::string> first;
    for (const std::size_t threads : kDiffThreadCounts) {
      ++rep.checks;
      if (auto d = differential_check(*cache[ci], spec, threads)) {
        first = std::move(d);
        break;
      }
    }
    if (!first) continue;

    Reduction red{corpora[ci], all_indices(spec.where.size()),
                  all_indices(spec.aggs.size()), all_indices(spec.group_by.size())};
    auto [minred, msg] = minimize(spec, std::move(red), std::move(*first));

    const std::string path =
        cfg.seed_dir + "/testkit_seed_query_" + std::to_string(q) + ".txt";
    write_seed_file(
        path, "query",
        {{"seed", std::to_string(cfg.seed)},
         {"query", std::to_string(q)},
         {"corpus_rows", std::to_string(minred.corpus.rows)},
         {"corpus_chunk_rows", std::to_string(minred.corpus.chunk_rows)},
         {"keep_terms", encode_index_list(minred.terms)},
         {"keep_aggs", encode_index_list(minred.aggs)},
         {"keep_keys", encode_index_list(minred.keys)}},
        {"spec: " + describe(apply_reduction(spec, minred)), "divergence: " + msg,
         "replay: SUPREMM_TESTKIT_REPLAY=" + path + " build/tests/test_oracle"});
    rep.divergences.push_back(std::move(msg));
    rep.seed_files.push_back(path);
  }
  return rep;
}

std::optional<std::string> replay_query_file(const std::string& path) {
  const SeedFile sf = read_seed_file(path);
  if (sf.field("mode") != "query") {
    throw common::ParseError("seed file: expected mode query, got " + sf.field("mode"));
  }
  const std::uint64_t seed = sf.field_u64("seed");
  CorpusSpec corpus;
  corpus.seed = seed;
  corpus.rows = static_cast<std::size_t>(sf.field_u64("corpus_rows"));
  corpus.chunk_rows = static_cast<std::size_t>(sf.field_u64("corpus_chunk_rows"));
  const QuerySpec base = make_query_spec(seed, sf.field_u64("query"));
  const Reduction red{corpus, decode_index_list(sf.field("keep_terms")),
                      decode_index_list(sf.field("keep_aggs")),
                      decode_index_list(sf.field("keep_keys"))};
  return check_reduction(base, red);
}

}  // namespace supremm::testkit
