// Explicit SIMD kernels for the query engine, dispatched per ISA tier
// (common/simd.h; DESIGN.md §15). Every tier of a kernel is bit-identical:
//
//  - Filter / refine kernels compute exact per-row predicates and emit row
//    indices in ascending order, so vector width cannot show through.
//  - Ungrouped aggregation kernels follow the canonical 8-lane scheme: the
//    j-th element of a segment's match slice updates lane j % 8, and the
//    caller folds the lanes with the fixed trees below. The scalar tier
//    keeps 8 scalar accumulators, SSE2 four 2-lane vectors, AVX2 two 4-lane
//    vectors — same additions in the same order, so the same bits. The
//    testkit oracle implements the identical scheme independently.
//
// Kernels that gather through row indices treat them as signed 32-bit
// (vgatherdpd); Query::run() pins the scalar table for tables past 2^31
// rows, which the tier contract makes legal at any time.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/simd.h"

namespace supremm::warehouse::kernels {

inline constexpr std::size_t kLanes = 8;

/// Append indices r in [begin, end) with lo <= v[r] <= hi (NaN never passes)
/// to `out`, ascending; returns the count. `out` must hold end - begin slots.
using FilterF64RangeFn = std::size_t (*)(const double* v, std::uint32_t begin,
                                         std::uint32_t end, double lo, double hi,
                                         std::uint32_t* out);

/// Same for dictionary codes equal to `code`.
using FilterCodesEqFn = std::size_t (*)(const std::int32_t* codes, std::uint32_t begin,
                                        std::uint32_t end, std::int32_t code,
                                        std::uint32_t* out);

/// Keep sel[j] where lo <= v[sel[j]] <= hi; writes survivors to `out`
/// (aliasing sel is allowed), returns the count.
using RefineF64RangeFn = std::size_t (*)(const double* v, const std::uint32_t* sel,
                                         std::size_t n, double lo, double hi,
                                         std::uint32_t* out);

/// Keep sel[j] where codes[sel[j]] == code.
using RefineCodesEqFn = std::size_t (*)(const std::int32_t* codes, const std::uint32_t* sel,
                                        std::size_t n, std::int32_t code, std::uint32_t* out);

/// lanes[j % 8] += v[row j] for j in [0, n). Row j is rows[j], or base + j
/// when rows is null (the no-predicate identity layout).
using SumLanesFn = void (*)(const double* v, const std::uint32_t* rows, std::uint32_t base,
                            std::size_t n, double* lanes);

/// lanes[j % 8] = (x < lane) ? x : lane  (min; NaN x leaves the lane alone).
using MinLanesFn = SumLanesFn;
/// lanes[j % 8] = (x > lane) ? x : lane  (max).
using MaxLanesFn = SumLanesFn;

/// Weighted-mean partials: wlanes[j % 8] += w[row], wvlanes[j % 8] += t where
/// t = w[row] * v[row] rounded once (no FMA in any tier).
using DotLanesFn = void (*)(const double* v, const double* w, const std::uint32_t* rows,
                            std::uint32_t base, std::size_t n, double* wlanes,
                            double* wvlanes);

struct KernelTable {
  FilterF64RangeFn filter_f64_range;
  FilterCodesEqFn filter_codes_eq;
  RefineF64RangeFn refine_f64_range;
  RefineCodesEqFn refine_codes_eq;
  SumLanesFn sum_lanes;
  MinLanesFn min_lanes;
  MaxLanesFn max_lanes;
  DotLanesFn dot_lanes;
};

/// Kernels for one tier (always valid; lower tiers fill unvectorized slots
/// with the scalar kernel).
[[nodiscard]] const KernelTable& table_for(common::simd::Tier t) noexcept;

/// table_for(common::simd::active_tier()).
[[nodiscard]] const KernelTable& active() noexcept;

// --- canonical lane folds (identical in every tier and in the oracle) ------
//
// The trees mirror how two 4-lane vector accumulators reduce: combine lane k
// with lane k+4, then k with k+2, then the final pair. Min/max fold with
// (a < b) ? a : b — the minpd/maxpd tie convention — though by construction
// the lanes can never hold NaN.

[[nodiscard]] inline double fold_sum(const double* l) noexcept {
  const double s04 = l[0] + l[4], s15 = l[1] + l[5], s26 = l[2] + l[6], s37 = l[3] + l[7];
  const double a = s04 + s26, b = s15 + s37;
  return a + b;
}

[[nodiscard]] inline double fold_min(const double* l) noexcept {
  const auto m = [](double a, double b) { return a < b ? a : b; };
  return m(m(m(l[0], l[4]), m(l[2], l[6])), m(m(l[1], l[5]), m(l[3], l[7])));
}

[[nodiscard]] inline double fold_max(const double* l) noexcept {
  const auto m = [](double a, double b) { return a > b ? a : b; };
  return m(m(m(l[0], l[4]), m(l[2], l[6])), m(m(l[1], l[5]), m(l[3], l[7])));
}

// --- shared scalar helpers for int64-valued columns ------------------------
//
// int64 aggregation converts through static_cast<double> per row; AVX2 has
// no packed i64→f64, so every tier shares these (still lane-8, still
// bit-identical — just not vectorized).

void sum_lanes_i64(const std::int64_t* v, const std::uint32_t* rows, std::uint32_t base,
                   std::size_t n, double* lanes);
void min_lanes_i64(const std::int64_t* v, const std::uint32_t* rows, std::uint32_t base,
                   std::size_t n, double* lanes);
void max_lanes_i64(const std::int64_t* v, const std::uint32_t* rows, std::uint32_t base,
                   std::size_t n, double* lanes);

}  // namespace supremm::warehouse::kernels
