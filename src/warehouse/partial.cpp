#include "warehouse/partial.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <unordered_map>

#include "common/error.h"

namespace supremm::warehouse::partial {

namespace {

/// Exact serialized identity of a tuple's key values: type tag plus the
/// raw payload (length-prefixed string, or the 8 value bytes verbatim), so
/// distinct doubles — including NaN payloads and ±0.0 — stay distinct and
/// no decimal rendering can conflate keys.
void append_key(std::string& out, const KeyValue& v) {
  out.push_back(static_cast<char>(v.type));
  switch (v.type) {
    case ColType::kString: {
      const auto len = static_cast<std::uint32_t>(v.str.size());
      out.append(reinterpret_cast<const char*>(&len), sizeof(len));
      out.append(v.str);
      break;
    }
    case ColType::kInt64:
      out.append(reinterpret_cast<const char*>(&v.i64), sizeof(v.i64));
      break;
    case ColType::kDouble:
      out.append(reinterpret_cast<const char*>(&v.bits), sizeof(v.bits));
      break;
  }
}

std::string tuple_identity(const TuplePartial& t) {
  std::string id;
  id.push_back(static_cast<char>(t.group.size()));
  for (const auto& v : t.group) append_key(id, v);
  for (const auto& v : t.extra) append_key(id, v);
  return id;
}

std::string group_identity(const TuplePartial& t) {
  std::string id;
  for (const auto& v : t.group) append_key(id, v);
  return id;
}

/// One tuple being unioned across shards: day entries keep (day, arrival
/// sequence) so duplicate days — a placement that split a cell, outside the
/// §17 contract — still left-fold deterministically in `parts` order.
struct MergedTuple {
  const TuplePartial* example = nullptr;  // key values (any shard's copy)
  std::int64_t rank = 0;
  std::vector<std::int64_t> days;
  std::vector<AggState> states;  // parallel to days, [i * naggs + agg]
};

}  // namespace

Table merge_partials(std::span<const Partial> parts, const std::vector<AggSpec>& aggs,
                     const std::string& out_name, QueryStats* stats) {
  if (parts.empty()) {
    throw common::InvalidArgument("merge_partials: no shard partials");
  }
  const Partial& first = parts.front();
  const std::size_t naggs = first.naggs;
  if (naggs != aggs.size()) {
    throw common::InvalidArgument("merge_partials: aggregate count mismatch");
  }
  QueryStats total;
  for (const Partial& p : parts) {
    if (p.key_schema != first.key_schema || p.naggs != naggs) {
      throw common::InvalidArgument("merge_partials: shard partial schema mismatch");
    }
    total.chunks_total += p.stats.chunks_total;
    total.chunks_pruned += p.stats.chunks_pruned;
    total.rows_scanned += p.stats.rows_scanned;
    total.rows_matched += p.stats.rows_matched;
  }

  // Union tuples across shards in `parts` order: rank = min over shards,
  // day lists concatenate (disjoint under the placement contract).
  std::unordered_map<std::string, std::uint32_t> tuple_index;
  std::vector<MergedTuple> tuples;
  for (const Partial& p : parts) {
    for (const TuplePartial& t : p.tuples) {
      if (t.states.size() != t.days.size() * naggs) {
        throw common::InvalidArgument("merge_partials: malformed tuple partial");
      }
      const auto [it, inserted] =
          tuple_index.emplace(tuple_identity(t), static_cast<std::uint32_t>(tuples.size()));
      if (inserted) tuples.push_back({&t, t.rank, {}, {}});
      MergedTuple& m = tuples[it->second];
      m.rank = std::min(m.rank, t.rank);
      m.days.insert(m.days.end(), t.days.begin(), t.days.end());
      m.states.insert(m.states.end(), t.states.begin(), t.states.end());
    }
  }

  // Canonical tuple order: ascending rank (= min job id for the federation;
  // exactly the engine's first-match order on a rank-sorted table). Groups
  // then form in first-seen order over that sequence, which makes the group
  // order ascending min rank as well — the engine's group order.
  std::vector<std::uint32_t> order(tuples.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<std::uint32_t>(i);
  std::stable_sort(order.begin(), order.end(), [&tuples](std::uint32_t a, std::uint32_t b) {
    return tuples[a].rank < tuples[b].rank;
  });

  std::unordered_map<std::string, std::uint32_t> group_index;
  std::vector<const TuplePartial*> group_example;  // first tuple of the group
  std::vector<AggState> group_states;              // [group * naggs + agg]
  std::vector<AggState> sub_total(naggs);
  for (const std::uint32_t ti : order) {
    MergedTuple& m = tuples[ti];
    // Sort the union's day entries ascending; a stable sort keeps duplicate
    // days in shard arrival order so the defensive in-place fold below is
    // deterministic.
    std::vector<std::uint32_t> dorder(m.days.size());
    for (std::size_t i = 0; i < dorder.size(); ++i) dorder[i] = static_cast<std::uint32_t>(i);
    std::stable_sort(dorder.begin(), dorder.end(), [&m](std::uint32_t a, std::uint32_t b) {
      return m.days[a] < m.days[b];
    });

    std::fill(sub_total.begin(), sub_total.end(), AggState{});
    TimeTreeFold fold(sub_total.data(), naggs);
    std::size_t i = 0;
    std::vector<AggState> dup(naggs);
    while (i < dorder.size()) {
      const std::int64_t day = m.days[dorder[i]];
      std::size_t j = i + 1;
      while (j < dorder.size() && m.days[dorder[j]] == day) ++j;
      if (j == i + 1) {
        fold.add(day, m.states.data() + std::size_t{dorder[i]} * naggs);
      } else {
        std::fill(dup.begin(), dup.end(), AggState{});
        for (std::size_t x = i; x < j; ++x) {
          merge_states(dup.data(), m.states.data() + std::size_t{dorder[x]} * naggs, naggs);
        }
        fold.add(day, dup.data());
      }
      i = j;
    }
    fold.finish();

    const auto [it, inserted] = group_index.emplace(
        group_identity(*m.example), static_cast<std::uint32_t>(group_example.size()));
    if (inserted) {
      group_example.push_back(m.example);
      group_states.resize(group_states.size() + naggs);
    }
    merge_states(group_states.data() + std::size_t{it->second} * naggs, sub_total.data(), naggs);
  }

  // Emit the same "_agg" table shape a single-warehouse Query::run produces.
  std::vector<std::pair<std::string, ColType>> schema = first.key_schema;
  for (const auto& a : aggs) {
    schema.emplace_back(a.as.empty() ? default_agg_name(a) : a.as,
                        a.kind == AggKind::kCount ? ColType::kInt64 : ColType::kDouble);
  }
  Table out(out_name, std::move(schema));
  for (std::size_t g = 0; g < group_example.size(); ++g) {
    auto row = out.append();
    const TuplePartial& ex = *group_example[g];
    for (std::size_t k = 0; k < first.key_schema.size(); ++k) {
      const auto& [name, type] = first.key_schema[k];
      const KeyValue& v = ex.group[k];
      switch (type) {
        case ColType::kString:
          row.set(name, v.str);
          break;
        case ColType::kInt64:
          row.set(name, v.i64);
          break;
        case ColType::kDouble:
          row.set(name, std::bit_cast<double>(v.bits));
          break;
      }
    }
    for (std::size_t a = 0; a < naggs; ++a) {
      const AggSpec& spec = aggs[a];
      const AggState& s = group_states[g * naggs + a];
      const std::string name = spec.as.empty() ? default_agg_name(spec) : spec.as;
      switch (spec.kind) {
        case AggKind::kSum:
          row.set(name, canon_nan(s.sum));
          break;
        case AggKind::kMean:
          row.set(name, s.n > 0 ? canon_nan(s.sum / static_cast<double>(s.n)) : 0.0);
          break;
        case AggKind::kWeightedMean:
          row.set(name, s.wsum > 0.0 ? canon_nan(s.wvsum / s.wsum) : 0.0);
          break;
        case AggKind::kMax:
          row.set(name, s.n > 0 ? s.mx : 0.0);
          break;
        case AggKind::kMin:
          row.set(name, s.n > 0 ? s.mn : 0.0);
          break;
        case AggKind::kCount:
          row.set(name, s.n);
          break;
      }
    }
  }
  out.finalize_rows();
  if (stats != nullptr) *stats = total;
  return out;
}

}  // namespace supremm::warehouse::partial
