// Query layer: filters, group-by aggregation, time bucketing.
//
// Predicates built with the eq/ge/le/between/all_of helpers carry structured
// bounds alongside the row-test closure; when the source table has a
// ZoneIndex (tables materialized from the archive do), Query::run() tests
// those bounds against each chunk's min/max first and skips whole chunks
// that cannot contain a matching row. Arbitrary lambdas still work - they
// simply carry no bounds and scan every chunk.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <string>
#include <type_traits>
#include <vector>

#include "common/cancel.h"
#include "warehouse/table.h"

namespace supremm::warehouse {

namespace partial {
struct Partial;  // warehouse/partial.h
}  // namespace partial

/// Aggregation kinds. Weighted kinds read the weight column per row.
enum class AggKind : std::uint8_t {
  kSum,
  kMean,
  kWeightedMean,
  kMax,
  kMin,
  kCount,
};

struct AggSpec {
  std::string column;             // source column (ignored for kCount)
  AggKind kind = AggKind::kSum;
  std::string weight;             // weight column for kWeightedMean
  std::string as;                 // output column name; default derived
};

/// A conjunct the predicate is known to imply, usable for chunk pruning: the
/// row can only match if `column`'s value is within [lo, hi] (numeric), or
/// equals `equals` (string; resolved to a dictionary code at prune time).
struct PredicateBounds {
  std::string column;
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
  std::optional<std::string> equals;
};

/// Row predicate; build with the helpers below or any lambda. Helper-built
/// predicates additionally expose bounds() so scans can prune chunks whose
/// zone-map range is disjoint from every possible match; when the bounds
/// fully describe the predicate (exact()), Query::run() evaluates them with
/// typed column-wise kernels instead of calling the closure per row.
///
/// Predicates must be pure: Query::run() may evaluate them concurrently from
/// worker threads when a thread count > 1 is requested.
class RowPredicate {
 public:
  using Fn = std::function<bool(const Table&, std::size_t)>;

  RowPredicate() = default;
  RowPredicate(Fn fn, std::vector<PredicateBounds> bounds, bool exact = false)
      : fn_(std::move(fn)), bounds_(std::move(bounds)), exact_(exact) {}
  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, RowPredicate> &&
                                        std::is_invocable_r_v<bool, F, const Table&, std::size_t>>>
  RowPredicate(F fn) : fn_(std::move(fn)) {}  // NOLINT: implicit, accepts lambdas

  [[nodiscard]] bool operator()(const Table& t, std::size_t r) const { return fn_(t, r); }
  [[nodiscard]] explicit operator bool() const noexcept { return static_cast<bool>(fn_); }
  /// Conjuncts implied by this predicate (empty for opaque lambdas).
  [[nodiscard]] const std::vector<PredicateBounds>& bounds() const noexcept { return bounds_; }
  /// True when bounds() is not merely implied but equivalent to the
  /// predicate, enabling vectorized evaluation without the closure.
  [[nodiscard]] bool exact() const noexcept { return exact_; }

 private:
  Fn fn_;
  std::vector<PredicateBounds> bounds_;
  bool exact_ = false;
};

[[nodiscard]] RowPredicate eq(std::string column, std::string value);
[[nodiscard]] RowPredicate ge(std::string column, double value);
[[nodiscard]] RowPredicate le(std::string column, double value);
[[nodiscard]] RowPredicate between(std::string column, double lo, double hi);
[[nodiscard]] RowPredicate all_of(std::vector<RowPredicate> preds);

/// Scan statistics from the most recent Query::run(). Deterministic for any
/// thread count: chunk accounting depends only on the table's chunk layout.
struct QueryStats {
  std::size_t chunks_total = 0;   // 0 when no zone index / no bounds
  std::size_t chunks_pruned = 0;  // skipped via zone maps
  std::size_t rows_scanned = 0;
  std::size_t rows_matched = 0;   // rows that passed the predicate
};

/// A composed query: optional filter, group keys, aggregations. Returns a
/// new table with one row per group, key columns first.
///
/// Execution is chunked, vectorized and optionally parallel: predicates
/// evaluate into per-chunk selection vectors (typed kernels when the
/// predicate is exact(), the closure otherwise), rows aggregate into
/// fixed-size segments of the match list on the shared worker pool, and
/// segment partials merge in segment order. The kernels are SIMD per the
/// runtime ISA tier (common/simd.h): filters compute exact per-row facts,
/// and ungrouped aggregates follow the canonical 8-lane scheme, so every
/// tier produces the same bits. Because the segment layout depends only
/// on the ordered list of matching rows — not on the thread count, the
/// ISA tier, or the table's zone-chunk size — results, group order and
/// QueryStats are identical for any threads() setting and any
/// SUPREMM_SIMD tier (DESIGN.md §7 determinism rule, §15 kernel layer).
///
/// Group keys are packed bit-exactly (dictionary code / int64 bits /
/// double bit pattern), so double keys that agree only in their first six
/// significant digits land in distinct groups. Doubles group by bit
/// pattern: -0.0 and 0.0 are distinct keys, and NaNs group together only
/// when their payload bits match. At most 4 group keys are supported.
class Query {
 public:
  explicit Query(const Table& table) : table_(table) {}

  Query& where(RowPredicate pred);
  Query& group_by(std::vector<std::string> keys);
  Query& aggregate(std::vector<AggSpec> aggs);
  /// Worker threads for run(): 1 (default) runs inline, 0 uses hardware
  /// concurrency. Results are identical for any setting.
  Query& threads(std::size_t n);
  /// Cooperative cancellation: run() polls `token` once per scan chunk and
  /// once per aggregation segment and throws common::Cancelled when it trips
  /// (explicit cancel or expired deadline). The token must outlive run();
  /// nullptr (default) disables the checks.
  Query& cancel_token(const common::CancelToken* token);

  /// Throws common::Cancelled if the cancel token tripped; on that path
  /// stats() is left zeroed (no partial accounting escapes).
  [[nodiscard]] Table run() const;

  /// Run phase 1 (same kernels, pruning and accounting as run()) but stop at
  /// the day-level partial-aggregate state of the time-partitioned contract
  /// instead of folding to a result table — the shard half of a federated
  /// query (warehouse/partial.h; merge with partial::merge_partials). Each
  /// tuple's rank is the minimum of `rank_column` (int64; the jobs realm
  /// uses job_id) over its matching rows, which lets a coordinator restore
  /// canonical first-seen order across shards. Requires a time-partitioned
  /// table; throws like run() otherwise.
  [[nodiscard]] partial::Partial run_partial(const std::string& rank_column) const;

  /// Statistics from the most recent run() on this query object. Reset at
  /// the start of every run() and populated only on successful completion,
  /// so a cancelled run reads as all-zero, never as a partial scan.
  [[nodiscard]] const QueryStats& stats() const noexcept { return stats_; }

 private:
  const Table& table_;
  std::optional<RowPredicate> pred_;
  std::vector<std::string> keys_;
  std::vector<AggSpec> aggs_;
  std::size_t threads_ = 1;
  const common::CancelToken* cancel_ = nullptr;
  mutable QueryStats stats_;
};

/// Floor t to a bucket boundary (for time-series grouping).
[[nodiscard]] constexpr std::int64_t time_bucket(std::int64_t t, std::int64_t width) noexcept {
  return (t / width) * width;
}

}  // namespace supremm::warehouse
