// Query layer: filters, group-by aggregation, time bucketing.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "warehouse/table.h"

namespace supremm::warehouse {

/// Aggregation kinds. Weighted kinds read the weight column per row.
enum class AggKind : std::uint8_t {
  kSum,
  kMean,
  kWeightedMean,
  kMax,
  kMin,
  kCount,
};

struct AggSpec {
  std::string column;             // source column (ignored for kCount)
  AggKind kind = AggKind::kSum;
  std::string weight;             // weight column for kWeightedMean
  std::string as;                 // output column name; default derived
};

/// Row predicate; build with the helpers below or any lambda.
using RowPredicate = std::function<bool(const Table&, std::size_t)>;

[[nodiscard]] RowPredicate eq(std::string column, std::string value);
[[nodiscard]] RowPredicate ge(std::string column, double value);
[[nodiscard]] RowPredicate le(std::string column, double value);
[[nodiscard]] RowPredicate between(std::string column, double lo, double hi);
[[nodiscard]] RowPredicate all_of(std::vector<RowPredicate> preds);

/// A composed query: optional filter, group keys, aggregations. Returns a
/// new table with one row per group, key columns first.
class Query {
 public:
  explicit Query(const Table& table) : table_(table) {}

  Query& where(RowPredicate pred);
  Query& group_by(std::vector<std::string> keys);
  Query& aggregate(std::vector<AggSpec> aggs);

  [[nodiscard]] Table run() const;

 private:
  const Table& table_;
  std::optional<RowPredicate> pred_;
  std::vector<std::string> keys_;
  std::vector<AggSpec> aggs_;
};

/// Floor t to a bucket boundary (for time-series grouping).
[[nodiscard]] constexpr std::int64_t time_bucket(std::int64_t t, std::int64_t width) noexcept {
  return (t / width) * width;
}

}  // namespace supremm::warehouse
