// Materialized time-hierarchical rollups over the jobs realm (DESIGN.md §16).
//
// XDMoD answers dashboard traffic from pre-aggregated day/week/month/quarter
// tables rather than raw scans. This layer materializes exactly the partial
// AggStates the time-partitioned query contract folds — one micro-cell per
// (user, app, cluster, day), cascaded day → week → month → quarter with the
// same calendar tree fold — so a query served from any rollup level is
// bit-identical to the raw scan at every thread count and SIMD tier. The
// subsumption checker decides which queries that covers; everything else
// falls back to the raw path unchanged.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "warehouse/query.h"
#include "warehouse/table.h"

namespace supremm::warehouse::rollup {

/// One rollup level: table name + bucket grain in days.
struct Level {
  const char* table;
  std::int64_t grain;  // days per bucket
};

/// The four levels, finest first. Grains nest exactly (7 | 28 | 84) and the
/// simulated timeline has no real calendar, so DST cannot exist.
[[nodiscard]] std::span<const Level> levels();

/// The jobs-table metric columns materialized per cell, in schema order.
/// int64 metrics (nodes, cores) aggregate as doubles, like the raw path.
[[nodiscard]] std::span<const char* const> metrics();

/// True for the reserved rollup table names ("rollup_" prefix); the archive
/// loader must not treat these as unknown tables.
[[nodiscard]] bool is_rollup_table(std::string_view table);

/// Whether the serving path is enabled: ServiceConfig gates construction,
/// this gates use. Reads SUPREMM_ROLLUP once ("off" or "0" disables);
/// set_enabled overrides for tests and the differential fuzz leg.
[[nodiscard]] bool enabled();
void set_enabled(bool on);

/// Derive the bucket-start columns ("day", "week", "month", "quarter", in
/// seconds) from the "end" column and declare the table time-partitioned on
/// end with subkeys (user, app, cluster) — switching Query::run and the
/// testkit oracle to the rollup-reproducible aggregation contract. The
/// caller owns rebuilding the zone index afterwards.
void augment_jobs_table(Table& jobs);

/// The four materialized tables. Row = one cell, in canonical order
/// (bucket ASC, min job id ASC): columns bucket (first day index of the
/// bucket), user, app, cluster, rows, min_jobid, then per metric m the cell
/// partials m_sum, m_min, m_max, m_wv (wv = Σ node_hours · m).
class RollupSet {
 public:
  RollupSet();

  [[nodiscard]] const Table& level(std::size_t i) const { return tables_[i]; }
  [[nodiscard]] Table& level(std::size_t i) { return tables_[i]; }
  [[nodiscard]] std::size_t cells() const noexcept;

 private:
  std::vector<Table> tables_;  // parallel to levels()
};

/// Build all four levels from scratch over a jobs-shaped table (raw or
/// augmented). The reference the incremental path is property-tested
/// against.
[[nodiscard]] RollupSet build_from_table(const Table& jobs);

/// Mirror of one compiled predicate term, engine-agnostic so both the
/// service request compiler and tests can feed the checker.
struct PredInput {
  enum class Op { kEq, kGe, kLe, kBetween };
  Op op = Op::kEq;
  std::string column;
  std::string value;  // kEq
  double lo = 0.0;
  double hi = 0.0;
};

struct QueryInput {
  std::vector<PredInput> where;
  std::vector<std::string> group_by;
  std::vector<AggSpec> aggs;
};

/// A subsumable query, resolved to the coarsest level that can serve it.
struct Plan {
  std::size_t level = 0;                 // index into levels()
  bool has_lo = false, has_hi = false;   // open bounds serve every cell
  std::int64_t d_lo = 0, d_hi = 0;       // inclusive day-index range
  std::vector<std::pair<std::string, std::string>> dim_eq;  // column == value
  std::vector<std::string> group_by;
  std::vector<AggSpec> aggs;
};

/// Decide whether the query is answerable from the rollups, and at which
/// level. Rejects (nullopt → raw path) anything outside the materialized
/// shape — and, critically, any half-open "end" predicate that straddles a
/// day boundary: a bound that cuts a bucket in half cannot be served from
/// whole cells (the off-by-one-day trap at grain edges).
[[nodiscard]] std::optional<Plan> subsume(const QueryInput& q);

/// Answer a subsumed query from the materialized cells. Output is the same
/// "jobs_agg" table the raw path produces, bit-identical. Stats are the
/// documented rollup accounting: rows_scanned = rows of the level table
/// examined (0 when a dim equality literal misses the level dictionary and
/// selection short-circuits), rows_matched = cells selected, chunks 0/0.
[[nodiscard]] Table serve(const RollupSet& rollups, const Plan& plan, QueryStats* stats);

}  // namespace supremm::warehouse::rollup
