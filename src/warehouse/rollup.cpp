#include "warehouse/rollup.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <map>
#include <numeric>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "common/error.h"
#include "warehouse/aggstate.h"

namespace supremm::warehouse::rollup {

namespace {

constexpr Level kLevels[] = {
    {"rollup_day", 1},
    {"rollup_week", kDaysPerWeek},
    {"rollup_month", kDaysPerMonth},
    {"rollup_quarter", kDaysPerQuarter},
};

constexpr const char* kMetrics[] = {
    "node_hours",          "nodes",
    "cores",               "cpu_idle",
    "cpu_flops_gf_node",   "mem_used_gb",
    "mem_used_max_gb",     "io_scratch_write_mb_s",
    "io_work_write_mb_s",  "net_ib_tx_mb_s",
    "net_lnet_tx_mb_s",    "cpu_user",
    "cpu_system",          "io_scratch_read_mb_s",
    "net_ib_rx_mb_s",      "net_lnet_rx_mb_s",
    "swap_mb_s",           "load_mean",
};
constexpr std::size_t kNumMetrics = std::size(kMetrics);
constexpr std::size_t kNodeHours = 0;  // kMetrics[0]; wv weights come from it

constexpr const char* kDims[] = {"user", "app", "cluster"};

// Rejected bound magnitude before double → int64 conversion (2^62; int64
// holds it and adding a grain's worth of seconds cannot overflow).
constexpr double kMaxBound = 4611686018427387904.0;

std::vector<std::pair<std::string, ColType>> level_schema(std::size_t li) {
  std::vector<std::pair<std::string, ColType>> schema;
  schema.emplace_back("bucket", ColType::kInt64);
  for (const char* d : kDims) schema.emplace_back(d, ColType::kString);
  schema.emplace_back("rows", ColType::kInt64);
  schema.emplace_back("min_jobid", ColType::kInt64);
  for (const char* m : kMetrics) {
    schema.emplace_back(std::string(m) + "_sum", ColType::kDouble);
    schema.emplace_back(std::string(m) + "_min", ColType::kDouble);
    schema.emplace_back(std::string(m) + "_max", ColType::kDouble);
    schema.emplace_back(std::string(m) + "_wv", ColType::kDouble);
  }
  (void)li;
  return schema;
}

/// Numeric column view: int64 metrics (nodes, cores) read as double, same
/// as the raw path's NumRef.
struct NumView {
  const double* f64 = nullptr;
  const std::int64_t* i64 = nullptr;
  [[nodiscard]] double value(std::size_t r) const {
    return f64 != nullptr ? f64[r] : static_cast<double>(i64[r]);
  }
};

NumView num_view(const Table& t, const char* name) {
  const Column& c = t.col(name);
  NumView v;
  if (c.type() == ColType::kDouble) {
    v.f64 = c.doubles().data();
  } else if (c.type() == ColType::kInt64) {
    v.i64 = c.int64s().data();
  } else {
    throw common::InvalidArgument("rollup metric '" + std::string(name) + "' is not numeric");
  }
  return v;
}

/// One materialized cell while building: identity + the per-metric partial
/// AggStates the fold operates on (state fields: sum = Σv, wsum = Σw,
/// wvsum = Σw·v, mn/mx, n = rows; w = node_hours).
struct Cell {
  std::int64_t bucket = 0;  // first day index of the bucket
  std::int32_t user = 0, app = 0, cluster = 0;
  std::int64_t min_jobid = 0;
  std::vector<AggState> m;  // [kNumMetrics]
};

struct CellKeyHash {
  std::size_t operator()(const std::array<std::int64_t, 4>& k) const noexcept {
    std::uint64_t h = 0x9e3779b97f4a7c15ull;
    for (const std::int64_t word : k) {
      std::uint64_t z = h ^ static_cast<std::uint64_t>(word);
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      h = z ^ (z >> 31);
    }
    return static_cast<std::size_t>(h);
  }
};

/// Day cells of a jobs-shaped table, in canonical (day ASC, min_jobid ASC)
/// order. Accumulation is purely sequential in row order — the exact
/// per-cell partials the time-partitioned query contract produces.
std::vector<Cell> build_day_cells(const Table& jobs) {
  const std::int64_t* job_id = jobs.col("job_id").int64s().data();
  const std::int64_t* end = jobs.col("end").int64s().data();
  const std::int32_t* user = jobs.col("user").codes().data();
  const std::int32_t* app = jobs.col("app").codes().data();
  const std::int32_t* cluster = jobs.col("cluster").codes().data();
  std::array<NumView, kNumMetrics> views;
  for (std::size_t i = 0; i < kNumMetrics; ++i) views[i] = num_view(jobs, kMetrics[i]);

  std::unordered_map<std::array<std::int64_t, 4>, std::size_t, CellKeyHash> index;
  std::vector<Cell> cells;
  const std::size_t nrows = jobs.rows();
  for (std::size_t r = 0; r < nrows; ++r) {
    const std::int64_t day = end_day_index(end[r]);
    const std::array<std::int64_t, 4> key{day, user[r], app[r], cluster[r]};
    const auto [it, inserted] = index.emplace(key, cells.size());
    if (inserted) {
      Cell c;
      c.bucket = day;
      c.user = user[r];
      c.app = app[r];
      c.cluster = cluster[r];
      c.min_jobid = job_id[r];
      c.m.assign(kNumMetrics, AggState{});
      cells.push_back(std::move(c));
    }
    Cell& c = cells[it->second];
    c.min_jobid = std::min(c.min_jobid, job_id[r]);
    const double w = views[kNodeHours].value(r);
    for (std::size_t i = 0; i < kNumMetrics; ++i) {
      AggState& s = c.m[i];
      const double v = views[i].value(r);
      ++s.n;
      s.sum += v;
      s.mn = std::min(s.mn, v);
      s.mx = std::max(s.mx, v);
      s.wsum += w;
      s.wvsum += w * v;
    }
  }
  std::sort(cells.begin(), cells.end(), [](const Cell& a, const Cell& b) {
    return a.bucket != b.bucket ? a.bucket < b.bucket : a.min_jobid < b.min_jobid;
  });
  return cells;
}

/// Cells at `grain` days from day cells (already canonical order): per
/// (bucket, user, app, cluster), the day cells fold through the calendar
/// tree — NOT a flat left fold, so a month is its weeks' fold exactly as
/// the query contract computes it and bit-identity holds at every level.
std::vector<Cell> fold_level(const std::vector<Cell>& days, std::int64_t grain) {
  std::unordered_map<std::array<std::int64_t, 4>, std::size_t, CellKeyHash> index;
  std::vector<std::vector<std::size_t>> members;  // day-cell indices, day ASC
  std::vector<Cell> out;
  for (std::size_t i = 0; i < days.size(); ++i) {
    const Cell& d = days[i];
    const std::int64_t bucket = floor_div(d.bucket, grain) * grain;
    const std::array<std::int64_t, 4> key{bucket, d.user, d.app, d.cluster};
    const auto [it, inserted] = index.emplace(key, out.size());
    if (inserted) {
      Cell c;
      c.bucket = bucket;
      c.user = d.user;
      c.app = d.app;
      c.cluster = d.cluster;
      c.min_jobid = d.min_jobid;
      c.m.assign(kNumMetrics, AggState{});
      out.push_back(std::move(c));
      members.emplace_back();
    }
    out[it->second].min_jobid = std::min(out[it->second].min_jobid, d.min_jobid);
    members[it->second].push_back(i);
  }
  for (std::size_t g = 0; g < out.size(); ++g) {
    TimeTreeFold fold(out[g].m.data(), kNumMetrics);
    for (const std::size_t i : members[g]) fold.add(days[i].bucket, days[i].m.data());
    fold.finish();
  }
  std::sort(out.begin(), out.end(), [](const Cell& a, const Cell& b) {
    return a.bucket != b.bucket ? a.bucket < b.bucket : a.min_jobid < b.min_jobid;
  });
  return out;
}

Table cells_to_table(const std::vector<Cell>& cells, std::size_t li, const Table& jobs) {
  Table t(kLevels[li].table, level_schema(li));
  for (const char* d : kDims) {
    std::vector<std::string> dict(jobs.col(d).dict().begin(), jobs.col(d).dict().end());
    t.col(d).set_dict(std::move(dict));
  }
  for (const Cell& c : cells) {
    auto row = t.append();
    row.set("bucket", c.bucket)
        .set("user", jobs.col("user").decode(c.user))
        .set("app", jobs.col("app").decode(c.app))
        .set("cluster", jobs.col("cluster").decode(c.cluster))
        .set("rows", c.m[0].n)
        .set("min_jobid", c.min_jobid);
    for (std::size_t i = 0; i < kNumMetrics; ++i) {
      const std::string m = kMetrics[i];
      row.set(m + "_sum", c.m[i].sum)
          .set(m + "_min", c.m[i].mn)
          .set(m + "_max", c.m[i].mx)
          .set(m + "_wv", c.m[i].wvsum);
    }
  }
  return t;
}

std::int64_t pos_mod(std::int64_t a, std::int64_t b) { return a - floor_div(a, b) * b; }

/// ceil(a / b) for b > 0.
std::int64_t ceil_div(std::int64_t a, std::int64_t b) { return floor_div(a + b - 1, b); }

struct BucketKey {
  const char* column;
  std::int64_t grain;
};
constexpr BucketKey kBucketKeys[] = {
    {"day", 1}, {"week", kDaysPerWeek}, {"month", kDaysPerMonth}, {"quarter", kDaysPerQuarter}};

const BucketKey* bucket_key(std::string_view name) {
  for (const auto& b : kBucketKeys) {
    if (name == b.column) return &b;
  }
  return nullptr;
}

bool is_dim(std::string_view name) {
  for (const char* d : kDims) {
    if (name == d) return true;
  }
  return false;
}

bool is_metric(std::string_view name) {
  for (const char* m : kMetrics) {
    if (name == m) return true;
  }
  return false;
}

/// Finite integer ceiling/floor of a predicate bound, or nullopt when the
/// bound cannot be converted soundly (NaN, or magnitude beyond 2^62).
std::optional<std::int64_t> int_ceil(double v) {
  if (std::isnan(v) || !(v >= -kMaxBound && v <= kMaxBound)) return std::nullopt;
  return static_cast<std::int64_t>(std::ceil(v));
}
std::optional<std::int64_t> int_floor(double v) {
  if (std::isnan(v) || !(v >= -kMaxBound && v <= kMaxBound)) return std::nullopt;
  return static_cast<std::int64_t>(std::floor(v));
}

std::atomic<int>& enabled_state() {
  static std::atomic<int> s{-1};
  return s;
}

}  // namespace

std::span<const Level> levels() { return kLevels; }

std::span<const char* const> metrics() { return {kMetrics, kNumMetrics}; }

bool is_rollup_table(std::string_view table) { return table.starts_with("rollup_"); }

bool enabled() {
  int v = enabled_state().load(std::memory_order_relaxed);
  if (v < 0) {
    const char* e = std::getenv("SUPREMM_ROLLUP");
    const std::string_view sv = e != nullptr ? std::string_view(e) : std::string_view();
    v = (sv == "off" || sv == "0") ? 0 : 1;
    enabled_state().store(v, std::memory_order_relaxed);
  }
  return v == 1;
}

void set_enabled(bool on) { enabled_state().store(on ? 1 : 0, std::memory_order_relaxed); }

void augment_jobs_table(Table& jobs) {
  const auto ends = jobs.col("end").int64s();
  const std::size_t n = ends.size();
  std::array<std::vector<std::int64_t>, 4> cols;
  for (auto& c : cols) c.reserve(n);
  for (const std::int64_t end : ends) {
    const std::int64_t d = end_day_index(end);
    cols[0].push_back(d * common::kDay);
    cols[1].push_back(floor_div(d, kDaysPerWeek) * kDaysPerWeek * common::kDay);
    cols[2].push_back(floor_div(d, kDaysPerMonth) * kDaysPerMonth * common::kDay);
    cols[3].push_back(floor_div(d, kDaysPerQuarter) * kDaysPerQuarter * common::kDay);
  }
  for (std::size_t i = 0; i < 4; ++i) {
    jobs.add_int64_column(kBucketKeys[i].column, std::move(cols[i]));
  }
  jobs.set_time_partition("end", {"user", "app", "cluster"});
}

RollupSet::RollupSet() {
  tables_.reserve(std::size(kLevels));
  for (std::size_t li = 0; li < std::size(kLevels); ++li) {
    tables_.emplace_back(kLevels[li].table, level_schema(li));
  }
}

std::size_t RollupSet::cells() const noexcept {
  std::size_t n = 0;
  for (const auto& t : tables_) n += t.rows();
  return n;
}

RollupSet build_from_table(const Table& jobs) {
  RollupSet set;
  const std::vector<Cell> days = build_day_cells(jobs);
  for (std::size_t li = 0; li < std::size(kLevels); ++li) {
    const std::vector<Cell> cells =
        kLevels[li].grain == 1 ? days : fold_level(days, kLevels[li].grain);
    set.level(li) = cells_to_table(cells, li, jobs);
  }
  return set;
}

std::optional<Plan> subsume(const QueryInput& q) {
  Plan plan;

  if (q.group_by.size() > 4) return std::nullopt;  // raw path owns the error
  for (std::size_t i = 0; i < q.group_by.size(); ++i) {
    const std::string& k = q.group_by[i];
    if (!is_dim(k) && bucket_key(k) == nullptr) return std::nullopt;
    for (std::size_t j = 0; j < i; ++j) {
      if (q.group_by[j] == k) return std::nullopt;  // duplicate key: raw error
    }
  }
  plan.group_by = q.group_by;

  for (const AggSpec& a : q.aggs) {
    switch (a.kind) {
      case AggKind::kCount:
        break;
      case AggKind::kSum:
      case AggKind::kMean:
      case AggKind::kMin:
      case AggKind::kMax:
        if (!is_metric(a.column)) return std::nullopt;
        break;
      case AggKind::kWeightedMean:
        if (a.weight != kMetrics[kNodeHours] || !is_metric(a.column)) return std::nullopt;
        break;
    }
  }
  plan.aggs = q.aggs;

  const auto narrow_lo = [&plan](std::int64_t d) {
    plan.d_lo = plan.has_lo ? std::max(plan.d_lo, d) : d;
    plan.has_lo = true;
  };
  const auto narrow_hi = [&plan](std::int64_t d) {
    plan.d_hi = plan.has_hi ? std::min(plan.d_hi, d) : d;
    plan.has_hi = true;
  };

  for (const PredInput& p : q.where) {
    const bool wants_lo = p.op == PredInput::Op::kGe || p.op == PredInput::Op::kBetween;
    const bool wants_hi = p.op == PredInput::Op::kLe || p.op == PredInput::Op::kBetween;
    if (p.op == PredInput::Op::kEq) {
      if (!is_dim(p.column)) return std::nullopt;
      plan.dim_eq.emplace_back(p.column, p.value);
      continue;
    }
    // An infinite bound is "unbounded" only on its own side: lo = −inf and
    // hi = +inf widen the range, but lo = +inf / hi = −inf are degenerate
    // (they match nothing) and belong to the raw path.
    if ((wants_lo && std::isinf(p.lo) && p.lo > 0) ||
        (wants_hi && std::isinf(p.hi) && p.hi < 0)) {
      return std::nullopt;
    }
    if (const BucketKey* b = bucket_key(p.column)) {
      // Bucket-start columns hold only multiples of grain*kDay, so ANY
      // bound selects whole buckets: round it to the nearest bucket edge.
      const std::int64_t span = b->grain * common::kDay;
      if (wants_lo && !std::isinf(p.lo)) {
        const auto c = int_ceil(p.lo);
        if (!c) return std::nullopt;
        narrow_lo(ceil_div(*c, span) * b->grain);
      }
      if (wants_hi && !std::isinf(p.hi)) {
        const auto f = int_floor(p.hi);
        if (!f) return std::nullopt;
        narrow_hi((floor_div(*f, span) + 1) * b->grain - 1);
      }
      continue;
    }
    if (p.column == "end") {
      // Raw end bounds are servable only when they cut exactly at a day
      // edge: day D holds end ∈ (D·86400, (D+1)·86400], so a lower bound
      // must land on D·86400+1 and an upper bound on D·86400 — anything
      // else splits a bucket and MUST fall back to the raw scan (the
      // off-by-one-day trap at grain edges).
      if (wants_lo && !std::isinf(p.lo)) {
        const auto c = int_ceil(p.lo);
        if (!c || pos_mod(*c, common::kDay) != 1) return std::nullopt;
        narrow_lo(floor_div(*c - 1, common::kDay));
      }
      if (wants_hi && !std::isinf(p.hi)) {
        const auto f = int_floor(p.hi);
        if (!f || pos_mod(*f, common::kDay) != 0) return std::nullopt;
        narrow_hi(floor_div(*f, common::kDay) - 1);
      }
      continue;
    }
    return std::nullopt;  // any other column or op: raw path
  }

  // Coarsest level that (a) divides every bucket group key's grain and
  // (b) the day range is aligned to.
  for (std::size_t li = std::size(kLevels); li-- > 0;) {
    const std::int64_t L = kLevels[li].grain;
    bool ok = true;
    for (const std::string& k : plan.group_by) {
      if (const BucketKey* b = bucket_key(k); b != nullptr && b->grain % L != 0) ok = false;
    }
    if (plan.has_lo && pos_mod(plan.d_lo, L) != 0) ok = false;
    if (plan.has_hi && pos_mod(plan.d_hi + 1, L) != 0) ok = false;
    if (ok) {
      plan.level = li;
      return plan;
    }
  }
  return std::nullopt;  // unreachable: level 0 (grain 1) always qualifies
}

Table serve(const RollupSet& rollups, const Plan& plan, QueryStats* stats) {
  const Table& t = rollups.level(plan.level);
  const std::int64_t grain = kLevels[plan.level].grain;
  const std::size_t naggs = plan.aggs.size();

  // Resolve dim equality literals to this table's dictionary codes; a
  // literal absent from the dictionary selects nothing.
  bool empty = false;
  std::vector<std::pair<const std::int32_t*, std::int32_t>> dim_tests;
  for (const auto& [col, val] : plan.dim_eq) {
    const auto code = t.col(col).find_code(val);
    if (!code) {
      empty = true;
      break;
    }
    dim_tests.emplace_back(t.col(col).codes().data(), *code);
  }

  const std::int64_t* bucket = t.col("bucket").int64s().data();
  const std::int64_t* rows_col = t.col("rows").int64s().data();
  const std::int64_t* min_jid = t.col("min_jobid").int64s().data();

  // Per agg: the metric column quartet it reconstructs its state from.
  struct MetricCols {
    const double* sum = nullptr;
    const double* mn = nullptr;
    const double* mx = nullptr;
    const double* wv = nullptr;
  };
  std::vector<MetricCols> agg_cols(naggs);
  const double* node_hours_sum = t.col("node_hours_sum").doubles().data();
  for (std::size_t a = 0; a < naggs; ++a) {
    const AggSpec& spec = plan.aggs[a];
    if (spec.kind == AggKind::kCount) continue;
    agg_cols[a].sum = t.col(spec.column + "_sum").doubles().data();
    agg_cols[a].mn = t.col(spec.column + "_min").doubles().data();
    agg_cols[a].mx = t.col(spec.column + "_max").doubles().data();
    agg_cols[a].wv = t.col(spec.column + "_wv").doubles().data();
  }

  // Group-key views: dims read codes, bucket keys derive their value from
  // the cell's bucket start.
  struct KeyView {
    const std::int32_t* codes = nullptr;  // dim
    std::int64_t grain = 0;               // bucket key (days)
  };
  std::vector<KeyView> key_views;
  for (const std::string& k : plan.group_by) {
    KeyView v;
    if (const BucketKey* b = bucket_key(k)) {
      v.grain = b->grain;
    } else {
      v.codes = t.col(k).codes().data();
    }
    key_views.push_back(v);
  }
  const auto key_value = [&](const KeyView& v, std::size_t r) -> std::int64_t {
    if (v.codes != nullptr) return v.codes[r];
    return floor_div(bucket[r], v.grain) * v.grain * common::kDay;
  };

  // Fold units are (group tuple, dim sub-tuple): the partition subkeys not
  // already group keys extend the key, exactly as in the raw contract.
  std::vector<const std::int32_t*> extra_codes;
  for (const char* d : kDims) {
    if (std::find(plan.group_by.begin(), plan.group_by.end(), d) == plan.group_by.end()) {
      extra_codes.push_back(t.col(d).codes().data());
    }
  }

  // Select cells and bucket them into (group, sub) units. Table order is
  // (bucket ASC, min_jobid ASC), so each unit's cell list comes out in
  // ascending bucket order, ready for the tree fold.
  using Key = std::vector<std::int64_t>;
  struct Unit {
    std::size_t group = 0;
    std::int64_t min_jobid = std::numeric_limits<std::int64_t>::max();
    std::vector<std::size_t> cells;
  };
  struct Group {
    std::size_t example = 0;  // any selected cell of the group
    std::int64_t min_jobid = std::numeric_limits<std::int64_t>::max();
    std::vector<std::size_t> units;
  };
  std::map<Key, std::size_t> group_lookup;
  std::map<Key, std::size_t> unit_lookup;
  std::vector<Group> groups;
  std::vector<Unit> units;
  std::size_t selected = 0;
  const std::size_t nrows = empty ? 0 : t.rows();
  for (std::size_t r = 0; r < nrows; ++r) {
    const std::int64_t b = bucket[r];
    if (plan.has_lo && b < plan.d_lo) continue;
    if (plan.has_hi && b + grain - 1 > plan.d_hi) continue;
    bool pass = true;
    for (const auto& [codes, code] : dim_tests) {
      if (codes[r] != code) {
        pass = false;
        break;
      }
    }
    if (!pass) continue;
    ++selected;
    Key gkey;
    gkey.reserve(key_views.size());
    for (const KeyView& v : key_views) gkey.push_back(key_value(v, r));
    Key ukey = gkey;
    for (const std::int32_t* codes : extra_codes) ukey.push_back(codes[r]);
    const auto [git, ginserted] = group_lookup.emplace(std::move(gkey), groups.size());
    if (ginserted) groups.push_back(Group{r, min_jid[r], {}});
    Group& g = groups[git->second];
    g.min_jobid = std::min(g.min_jobid, min_jid[r]);
    const auto [uit, uinserted] = unit_lookup.emplace(std::move(ukey), units.size());
    if (uinserted) {
      units.push_back(Unit{git->second, min_jid[r], {}});
      g.units.push_back(uit->second);
    }
    Unit& u = units[uit->second];
    u.min_jobid = std::min(u.min_jobid, min_jid[r]);
    u.cells.push_back(r);
  }

  // Per unit: reconstruct each cell's per-agg states and tree-fold them.
  std::vector<AggState> unit_states(units.size() * naggs);
  std::vector<AggState> cell_states(naggs);
  for (std::size_t u = 0; u < units.size(); ++u) {
    TimeTreeFold fold(unit_states.data() + u * naggs, naggs);
    for (const std::size_t r : units[u].cells) {
      for (std::size_t a = 0; a < naggs; ++a) {
        AggState& s = cell_states[a];
        s = AggState{};
        s.n = rows_col[r];
        if (plan.aggs[a].kind == AggKind::kCount) continue;
        s.sum = agg_cols[a].sum[r];
        s.mn = agg_cols[a].mn[r];
        s.mx = agg_cols[a].mx[r];
        if (plan.aggs[a].kind == AggKind::kWeightedMean) {
          s.wsum = node_hours_sum[r];
          s.wvsum = agg_cols[a].wv[r];
        }
      }
      fold.add(bucket[r], cell_states.data());
    }
    fold.finish();
  }

  // Contract emission order: groups by first match = ascending min job id;
  // within a group, sub-tuples merge in the same order.
  std::vector<std::size_t> group_order(groups.size());
  std::iota(group_order.begin(), group_order.end(), std::size_t{0});
  std::sort(group_order.begin(), group_order.end(), [&groups](std::size_t a, std::size_t b) {
    return groups[a].min_jobid < groups[b].min_jobid;
  });

  std::vector<std::pair<std::string, ColType>> schema;
  for (const std::string& k : plan.group_by) {
    schema.emplace_back(k, bucket_key(k) != nullptr ? ColType::kInt64 : ColType::kString);
  }
  for (const AggSpec& a : plan.aggs) {
    schema.emplace_back(a.as.empty() ? default_agg_name(a) : a.as,
                        a.kind == AggKind::kCount ? ColType::kInt64 : ColType::kDouble);
  }
  Table out("jobs_agg", std::move(schema));
  std::vector<AggState> gstates(naggs);
  for (const std::size_t gi : group_order) {
    Group& g = groups[gi];
    std::sort(g.units.begin(), g.units.end(), [&units](std::size_t a, std::size_t b) {
      return units[a].min_jobid < units[b].min_jobid;
    });
    std::fill(gstates.begin(), gstates.end(), AggState{});
    for (const std::size_t u : g.units) {
      merge_states(gstates.data(), unit_states.data() + u * naggs, naggs);
    }
    auto row = out.append();
    for (std::size_t k = 0; k < plan.group_by.size(); ++k) {
      const KeyView& v = key_views[k];
      if (v.codes != nullptr) {
        row.set(plan.group_by[k],
                t.col(plan.group_by[k]).decode(v.codes[g.example]));
      } else {
        row.set(plan.group_by[k], key_value(v, g.example));
      }
    }
    for (std::size_t a = 0; a < naggs; ++a) {
      const AggSpec& spec = plan.aggs[a];
      const std::string name = spec.as.empty() ? default_agg_name(spec) : spec.as;
      if (spec.kind == AggKind::kCount) {
        row.set(name, gstates[a].n);
      } else {
        row.set(name, emit_agg(spec.kind, gstates[a]));
      }
    }
  }

  if (stats != nullptr) {
    *stats = QueryStats{};
    stats->rows_scanned = nrows;  // 0 on the dim-literal dictionary miss
    stats->rows_matched = selected;
  }
  return out;
}

}  // namespace supremm::warehouse::rollup
