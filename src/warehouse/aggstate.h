// Shared aggregate-state arithmetic for the query engine and the rollup
// layer (DESIGN.md §11, §16).
//
// The engine's determinism contract fixes grouped aggregation as left-folds
// of partial AggStates in a canonical order. The rollup layer materializes
// exactly these partials per (user, app, cluster, day) cell and cascades
// them day → week → month → quarter, so a query served from any rollup
// level reproduces the raw scan bit-for-bit. Everything both sides must
// agree on byte-for-byte lives here: the state struct, the merge, the
// emission rules, the DST-free calendar, and the hierarchical time fold.
// The testkit oracle deliberately does NOT use this header — it keeps an
// independent implementation of the same contract (DESIGN.md §12).
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/time.h"
#include "warehouse/query.h"

namespace supremm::warehouse {

/// A NaN-valued sum/mean is emitted as the canonical positive quiet NaN:
/// when several NaN payloads (or an inf + -inf indefinite) meet in
/// `acc += v`, which payload survives is an instruction-operand-order
/// artifact the compiler may legally flip between builds, so the canonical
/// payload is the only bit pattern that is actually deterministic.
[[nodiscard]] inline double canon_nan(double v) {
  return std::isnan(v) ? std::numeric_limits<double>::quiet_NaN() : v;
}

/// Output column name when AggSpec::as is empty.
[[nodiscard]] inline std::string default_agg_name(const AggSpec& a) {
  switch (a.kind) {
    case AggKind::kSum:
      return a.column + "_sum";
    case AggKind::kMean:
      return a.column + "_mean";
    case AggKind::kWeightedMean:
      return a.column + "_wmean";
    case AggKind::kMax:
      return a.column + "_max";
    case AggKind::kMin:
      return a.column + "_min";
    case AggKind::kCount:
      return "count";
  }
  return a.column;
}

/// Partial aggregate over some row subset. Every kind's emission reads only
/// its own fields, so one state serves all kinds.
struct AggState {
  double sum = 0.0;
  double wsum = 0.0;
  double wvsum = 0.0;
  double mn = std::numeric_limits<double>::infinity();
  double mx = -std::numeric_limits<double>::infinity();
  std::int64_t n = 0;
};

inline void merge_state(AggState& into, const AggState& from) {
  into.sum += from.sum;
  into.wsum += from.wsum;
  into.wvsum += from.wvsum;
  into.mn = std::min(into.mn, from.mn);
  into.mx = std::max(into.mx, from.mx);
  into.n += from.n;
}

inline void merge_states(AggState* into, const AggState* from, std::size_t n) {
  for (std::size_t a = 0; a < n; ++a) merge_state(into[a], from[a]);
}

/// Emitted value for the non-count kinds (count emits state.n as int64).
[[nodiscard]] inline double emit_agg(AggKind kind, const AggState& s) {
  switch (kind) {
    case AggKind::kSum:
      return canon_nan(s.sum);
    case AggKind::kMean:
      return s.n > 0 ? canon_nan(s.sum / static_cast<double>(s.n)) : 0.0;
    case AggKind::kWeightedMean:
      return s.wsum > 0.0 ? canon_nan(s.wvsum / s.wsum) : 0.0;
    case AggKind::kMax:
      return s.n > 0 ? s.mx : 0.0;
    case AggKind::kMin:
      return s.n > 0 ? s.mn : 0.0;
    case AggKind::kCount:
      return static_cast<double>(s.n);
  }
  return 0.0;
}

// Rollup calendar. The simulated timeline has no real calendar, so the
// buckets nest exactly and DST cannot exist by construction: a day is
// 86400 s, a week 7 days, a month 4 weeks, a quarter 3 months.
inline constexpr std::int64_t kDaysPerWeek = 7;
inline constexpr std::int64_t kDaysPerMonth = 28;
inline constexpr std::int64_t kDaysPerQuarter = 84;

/// Floor division (common::day_of truncates toward zero, which is wrong for
/// negative timestamps).
[[nodiscard]] constexpr std::int64_t floor_div(std::int64_t a, std::int64_t b) noexcept {
  return a >= 0 ? a / b : -((-a + b - 1) / b);
}

/// Day index of a timestamp interpreted as an interval END: day D covers
/// end ∈ (D·86400, (D+1)·86400]. This is the archive's own rule for
/// placing a job into its partition day, so rollup cells align exactly
/// with archive partitions and incremental maintenance never has to
/// rewrite a cell whose partitions did not change.
[[nodiscard]] constexpr std::int64_t end_day_index(std::int64_t end) noexcept {
  return floor_div(end - 1, common::kDay);
}

/// Hierarchical time fold (DESIGN.md §16). Feed it per-bucket partials in
/// ascending order of their first day index: each bucket folds left into
/// its week accumulator, completed weeks fold into the month, months into
/// the quarter, quarters into the total. Accumulators start at +0.0 and
/// accumulated sums are never -0.0, so folding through a fresh accumulator
/// is a bitwise no-op — which is why day-, week-, month- and quarter-level
/// partials all fold to identical bits, and a subsumable query can be
/// served from whichever rollup level is coarsest.
class TimeTreeFold {
 public:
  /// `total` points at `naggs` states that receive the final fold.
  TimeTreeFold(AggState* total, std::size_t naggs)
      : total_(total), naggs_(naggs), w_(naggs), m_(naggs), q_(naggs) {}

  /// `day` is the bucket's first day index; `states` holds naggs partials.
  void add(std::int64_t day, const AggState* states) {
    const std::int64_t wi = floor_div(day, kDaysPerWeek);
    const std::int64_t mi = floor_div(day, kDaysPerMonth);
    const std::int64_t qi = floor_div(day, kDaysPerQuarter);
    if (any_) {
      if (wi != wi_) flush(w_, m_);
      if (mi != mi_) flush(m_, q_);
      if (qi != qi_) flush_total();
    }
    wi_ = wi;
    mi_ = mi;
    qi_ = qi;
    any_ = true;
    for (std::size_t a = 0; a < naggs_; ++a) merge_state(w_[a], states[a]);
  }

  void finish() {
    if (!any_) return;
    flush(w_, m_);
    flush(m_, q_);
    flush_total();
    any_ = false;
  }

 private:
  void flush(std::vector<AggState>& from, std::vector<AggState>& into) {
    for (std::size_t a = 0; a < naggs_; ++a) {
      merge_state(into[a], from[a]);
      from[a] = AggState{};
    }
  }
  void flush_total() {
    for (std::size_t a = 0; a < naggs_; ++a) {
      merge_state(total_[a], q_[a]);
      q_[a] = AggState{};
    }
  }

  AggState* total_;
  std::size_t naggs_;
  std::vector<AggState> w_, m_, q_;
  std::int64_t wi_ = 0, mi_ = 0, qi_ = 0;
  bool any_ = false;
};

}  // namespace supremm::warehouse
