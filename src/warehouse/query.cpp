#include "warehouse/query.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstring>
#include <limits>
#include <unordered_map>

#include "common/error.h"
#include "common/thread_pool.h"

namespace supremm::warehouse {

RowPredicate eq(std::string column, std::string value) {
  PredicateBounds b;
  b.column = column;
  b.equals = value;
  auto fn = [column = std::move(column), value = std::move(value)](const Table& t,
                                                                   std::size_t r) {
    return t.col(column).as_string(r) == value;
  };
  return {std::move(fn), {std::move(b)}, /*exact=*/true};
}

RowPredicate ge(std::string column, double value) {
  PredicateBounds b;
  b.column = column;
  b.lo = value;
  auto fn = [column = std::move(column), value](const Table& t, std::size_t r) {
    return t.col(column).as_double(r) >= value;
  };
  return {std::move(fn), {std::move(b)}, /*exact=*/true};
}

RowPredicate le(std::string column, double value) {
  PredicateBounds b;
  b.column = column;
  b.hi = value;
  auto fn = [column = std::move(column), value](const Table& t, std::size_t r) {
    return t.col(column).as_double(r) <= value;
  };
  return {std::move(fn), {std::move(b)}, /*exact=*/true};
}

RowPredicate between(std::string column, double lo, double hi) {
  PredicateBounds b;
  b.column = column;
  b.lo = lo;
  b.hi = hi;
  auto fn = [column = std::move(column), lo, hi](const Table& t, std::size_t r) {
    const double v = t.col(column).as_double(r);
    return v >= lo && v <= hi;
  };
  return {std::move(fn), {std::move(b)}, /*exact=*/true};
}

RowPredicate all_of(std::vector<RowPredicate> preds) {
  // A conjunction implies every conjunct's bounds, so the combined predicate
  // carries their concatenation; it stays exact only while every conjunct is.
  std::vector<PredicateBounds> bounds;
  bool exact = true;
  for (const auto& p : preds) {
    bounds.insert(bounds.end(), p.bounds().begin(), p.bounds().end());
    exact = exact && p.exact();
  }
  auto fn = [preds = std::move(preds)](const Table& t, std::size_t r) {
    for (const auto& p : preds) {
      if (!p(t, r)) return false;
    }
    return true;
  };
  return {std::move(fn), std::move(bounds), exact};
}

Query& Query::where(RowPredicate pred) {
  pred_ = std::move(pred);
  return *this;
}

Query& Query::group_by(std::vector<std::string> keys) {
  keys_ = std::move(keys);
  return *this;
}

Query& Query::aggregate(std::vector<AggSpec> aggs) {
  aggs_ = std::move(aggs);
  return *this;
}

Query& Query::threads(std::size_t n) {
  threads_ = n;
  return *this;
}

Query& Query::cancel_token(const common::CancelToken* token) {
  cancel_ = token;
  return *this;
}

namespace {

// Execution-chunk size when the table carries no zone index, and the
// canonical partial-aggregation segment length. Both are layout constants:
// the segment grid is laid over the ordered list of *matching* rows, so the
// aggregation arithmetic is independent of the scan chunking, the zone-map
// layout and the thread count.
constexpr std::size_t kExecChunkRows = 4096;
constexpr std::size_t kSegmentRows = 8192;
constexpr std::size_t kMaxGroupKeys = 4;

// A NaN-valued sum/mean is emitted as the canonical positive quiet NaN:
// when several NaN payloads (or an inf + -inf indefinite) meet in `acc += v`,
// which payload survives is an instruction-operand-order artifact the
// compiler may legally flip between builds, so the canonical payload is the
// only bit pattern that is actually deterministic. The oracle does the same.
double canon_nan(double v) {
  return std::isnan(v) ? std::numeric_limits<double>::quiet_NaN() : v;
}

std::string default_name(const AggSpec& a) {
  switch (a.kind) {
    case AggKind::kSum:
      return a.column + "_sum";
    case AggKind::kMean:
      return a.column + "_mean";
    case AggKind::kWeightedMean:
      return a.column + "_wmean";
    case AggKind::kMax:
      return a.column + "_max";
    case AggKind::kMin:
      return a.column + "_min";
    case AggKind::kCount:
      return "count";
  }
  return a.column;
}

struct AggState {
  double sum = 0.0;
  double wsum = 0.0;
  double wvsum = 0.0;
  double mn = std::numeric_limits<double>::infinity();
  double mx = -std::numeric_limits<double>::infinity();
  std::int64_t n = 0;
};

void merge_state(AggState& into, const AggState& from) {
  into.sum += from.sum;
  into.wsum += from.wsum;
  into.wvsum += from.wvsum;
  into.mn = std::min(into.mn, from.mn);
  into.mx = std::max(into.mx, from.mx);
  into.n += from.n;
}

/// Typed, bounds-check-free view of a numeric column (int64 read as double,
/// matching Column::as_double).
struct NumRef {
  const double* f64 = nullptr;
  const std::int64_t* i64 = nullptr;

  [[nodiscard]] double value(std::size_t r) const {
    return f64 != nullptr ? f64[r] : static_cast<double>(i64[r]);
  }
};

NumRef numeric_ref(const Column& c) {
  if (c.type() == ColType::kString) {
    throw common::InvalidArgument("column " + std::string(c.name()) + " is not numeric");
  }
  NumRef ref;
  if (c.type() == ColType::kDouble) {
    ref.f64 = c.doubles().data();
  } else {
    ref.i64 = c.int64s().data();
  }
  return ref;
}

/// One group key column prepared for packing.
struct KeyRef {
  ColType type = ColType::kDouble;
  const double* f64 = nullptr;
  const std::int64_t* i64 = nullptr;
  const std::int32_t* codes = nullptr;
};

/// Fixed-width packed key tuple: dictionary code, raw int64 bits or the
/// double's exact bit pattern per key — never a decimal rendering, so
/// distinct doubles always land in distinct groups.
struct PackedKey {
  std::array<std::uint64_t, kMaxGroupKeys> w{};
  bool operator==(const PackedKey&) const = default;
};

struct PackedKeyHash {
  std::size_t operator()(const PackedKey& k) const noexcept {
    std::uint64_t h = 0x9e3779b97f4a7c15ull;
    for (const std::uint64_t word : k.w) {
      std::uint64_t z = h ^ word;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      h = z ^ (z >> 31);
    }
    return static_cast<std::size_t>(h);
  }
};

/// A predicate conjunct compiled against column storage.
struct Kernel {
  NumRef num;                       // numeric range test
  const std::int32_t* codes = nullptr;  // string equality test
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
  std::int32_t eq_code = 0;
  bool impossible = false;  // equality literal absent from the dictionary

  [[nodiscard]] bool pass(std::size_t r) const {
    if (codes != nullptr) return codes[r] == eq_code;
    const double v = num.value(r);
    return v >= lo && v <= hi;
  }
};

/// A conjunct usable for zone-map pruning: chunk survives unless its range
/// is disjoint from [lo, hi] for column `ci`.
struct PruneTest {
  std::size_t ci = 0;
  double lo = 0.0;
  double hi = 0.0;
  bool fail_all = false;  // equality literal absent from the whole table
};

struct ChunkResult {
  std::vector<std::uint32_t> sel;  // matching row indices, ascending
  std::size_t rows_scanned = 0;
  bool pruned = false;
};

struct SegmentPartial {
  std::unordered_map<PackedKey, std::uint32_t, PackedKeyHash> groups;
  std::vector<PackedKey> keys;             // insertion order
  std::vector<std::uint32_t> example_row;  // first matching row per group
  std::vector<AggState> states;            // [group * naggs + agg]
};

/// Aggregation input for one AggSpec, column refs resolved once per query.
struct AggRef {
  AggKind kind = AggKind::kSum;
  NumRef value;
  NumRef weight;
};

}  // namespace

Table Query::run() const {
  if (aggs_.empty()) throw common::InvalidArgument("query without aggregations");
  if (keys_.size() > kMaxGroupKeys) {
    throw common::InvalidArgument("query supports at most 4 group keys");
  }
  const std::size_t nrows = table_.rows();
  if (nrows > std::numeric_limits<std::uint32_t>::max()) {
    throw common::InvalidArgument("query: table exceeds 2^32 rows");
  }

  // Output schema: keys (typed like the source) then one double per agg
  // (count as int64).
  std::vector<std::pair<std::string, ColType>> schema;
  for (const auto& k : keys_) schema.emplace_back(k, table_.col(k).type());
  for (const auto& a : aggs_) {
    schema.emplace_back(a.as.empty() ? default_name(a) : a.as,
                        a.kind == AggKind::kCount ? ColType::kInt64 : ColType::kDouble);
  }
  Table out(table_.name() + "_agg", std::move(schema));

  // --- plan: resolve every column reference once --------------------------
  std::vector<KeyRef> key_refs;
  key_refs.reserve(keys_.size());
  for (const auto& k : keys_) {
    const Column& c = table_.col(k);
    KeyRef ref;
    ref.type = c.type();
    switch (c.type()) {
      case ColType::kDouble:
        ref.f64 = c.doubles().data();
        break;
      case ColType::kInt64:
        ref.i64 = c.int64s().data();
        break;
      case ColType::kString:
        ref.codes = c.codes().data();
        break;
    }
    key_refs.push_back(ref);
  }

  std::vector<AggRef> agg_refs;
  agg_refs.reserve(aggs_.size());
  for (const auto& a : aggs_) {
    AggRef ref;
    ref.kind = a.kind;
    if (a.kind != AggKind::kCount) {
      ref.value = numeric_ref(table_.col(a.column));
      if (a.kind == AggKind::kWeightedMean) ref.weight = numeric_ref(table_.col(a.weight));
    }
    agg_refs.push_back(ref);
  }

  // Predicate plan. Exact predicates compile each conjunct into a typed
  // kernel; opaque ones fall back to the closure per row. Bounds over
  // existing columns additionally become zone-map prune tests.
  const bool have_pred = pred_.has_value();
  const bool exact = have_pred && pred_->exact();
  std::vector<Kernel> kernels;
  if (exact) {
    for (const auto& b : pred_->bounds()) {
      const Column& c = table_.col(b.column);
      Kernel k;
      if (b.equals) {
        if (c.type() != ColType::kString) {
          throw common::InvalidArgument("column " + b.column + " not string");
        }
        k.codes = c.codes().data();
        if (const auto code = c.find_code(*b.equals)) {
          k.eq_code = *code;
        } else {
          k.impossible = true;
        }
      } else {
        k.num = numeric_ref(c);
        k.lo = b.lo;
        k.hi = b.hi;
      }
      kernels.push_back(k);
    }
  }

  // Cancellation safe point: polled once per scan chunk and once per
  // aggregation segment (coarse enough to stay off the per-row hot path).
  // Throwing tears the run down through the pool's rethrow; stats_ is reset
  // below and only assigned on success, so no partial accounting escapes.
  const common::CancelToken* cancel = cancel_;
  const auto check_cancel = [cancel] {
    if (cancel != nullptr && cancel->stop_requested()) {
      throw common::Cancelled("query abandoned at safe point");
    }
  };

  const ZoneIndex* zi = table_.zone_index();
  const bool prune =
      have_pred && zi != nullptr && !pred_->bounds().empty() && zi->chunks > 0;
  std::vector<PruneTest> prune_tests;
  if (prune) {
    for (const auto& b : pred_->bounds()) {
      if (!table_.has_col(b.column)) continue;
      std::size_t ci = 0;
      while (table_.columns()[ci].name() != b.column) ++ci;
      const Column& c = table_.columns()[ci];
      PruneTest t;
      t.ci = ci;
      if (b.equals) {
        if (c.type() != ColType::kString) continue;
        if (const auto code = c.find_code(*b.equals)) {
          t.lo = t.hi = static_cast<double>(*code);
        } else {
          t.fail_all = true;  // value absent from the whole table
        }
      } else {
        if (c.type() == ColType::kString) continue;
        t.lo = b.lo;
        t.hi = b.hi;
      }
      prune_tests.push_back(t);
    }
  }

  // --- phase 1: per-chunk selection vectors -------------------------------
  const std::size_t chunk_rows = prune ? zi->chunk_rows : kExecChunkRows;
  const std::size_t nchunks = nrows == 0 ? 0 : (nrows + chunk_rows - 1) / chunk_rows;
  stats_ = QueryStats{};  // visible stats stay zeroed until the run completes
  QueryStats st;
  if (prune) st.chunks_total = zi->chunks;

  auto pool = common::make_pool(threads_, nchunks);

  // Without a predicate every row matches and match index == row index, so
  // the selection vectors and the concatenated match list are pure memory
  // traffic — skip them and let phase 2 address rows directly.
  const bool identity = !have_pred;
  std::vector<ChunkResult> chunks(identity ? 0 : nchunks);
  if (!identity) {
    common::for_each_unit(pool.get(), nchunks, [&](std::size_t ch) {
      check_cancel();
      ChunkResult& res = chunks[ch];
      const std::size_t begin = ch * chunk_rows;
      const std::size_t end = std::min(nrows, begin + chunk_rows);
      if (prune) {
        for (const auto& t : prune_tests) {
          const ZoneIndex::Range& range = zi->ranges[t.ci][ch];
          if (t.fail_all || range.hi < t.lo || range.lo > t.hi) {
            res.pruned = true;
            return;
          }
        }
      }
      res.rows_scanned = end - begin;
      auto& sel = res.sel;
      if (exact) {
        for (const auto& k : kernels) {
          if (k.impossible) return;  // scanned, nothing matches
        }
        if (kernels.empty()) {
          sel.resize(end - begin);
          for (std::size_t r = begin; r < end; ++r) {
            sel[r - begin] = static_cast<std::uint32_t>(r);
          }
        } else {
          for (std::size_t r = begin; r < end; ++r) {
            if (kernels[0].pass(r)) sel.push_back(static_cast<std::uint32_t>(r));
          }
          for (std::size_t k = 1; k < kernels.size() && !sel.empty(); ++k) {
            const Kernel& kn = kernels[k];
            std::size_t kept = 0;
            for (const std::uint32_t r : sel) {
              if (kn.pass(r)) sel[kept++] = r;
            }
            sel.resize(kept);
          }
        }
      } else {
        for (std::size_t r = begin; r < end; ++r) {
          if ((*pred_)(table_, r)) sel.push_back(static_cast<std::uint32_t>(r));
        }
      }
    });
  }

  std::size_t total_matches = 0;
  std::vector<std::uint32_t> matches;
  if (identity) {
    st.rows_scanned = nrows;
    total_matches = nrows;
  } else {
    for (const auto& c : chunks) {
      if (c.pruned) ++st.chunks_pruned;
      st.rows_scanned += c.rows_scanned;
      total_matches += c.sel.size();
    }
    matches.reserve(total_matches);
    for (const auto& c : chunks) matches.insert(matches.end(), c.sel.begin(), c.sel.end());
  }
  st.rows_matched = total_matches;
  const std::uint32_t* match_ptr = identity ? nullptr : matches.data();

  // --- phase 2: partial aggregation over canonical match-list segments ----
  const std::size_t naggs = aggs_.size();
  const std::size_t nsegs =
      total_matches == 0 ? 0 : (total_matches + kSegmentRows - 1) / kSegmentRows;

  // Dense fast path for the common report shape: every group key is a
  // dictionary code (validated non-negative, < dict size) and the combined
  // code domain is small, so group slots are addressed directly by combined
  // code — no per-row hashing. Slots still record first-seen order per
  // segment, so group order and the merge are unchanged.
  constexpr std::size_t kMaxDenseGroups = std::size_t{1} << 14;
  constexpr std::uint32_t kNoGroup = std::numeric_limits<std::uint32_t>::max();
  bool dense = true;
  std::size_t dense_domain = 1;
  std::array<std::size_t, kMaxGroupKeys> dense_mult{};
  for (std::size_t k = 0; k < key_refs.size(); ++k) {
    if (key_refs[k].type != ColType::kString) {
      dense = false;
      break;
    }
    dense_mult[k] = dense_domain;
    dense_domain *= table_.col(keys_[k]).dict().size();
    if (dense_domain > kMaxDenseGroups) {
      dense = false;
      break;
    }
  }

  const auto update_aggs = [&agg_refs, naggs](AggState* st, std::uint32_t r) {
    for (std::size_t a = 0; a < naggs; ++a) {
      const AggRef& spec = agg_refs[a];
      AggState& s = st[a];
      ++s.n;
      if (spec.kind == AggKind::kCount) continue;
      const double v = spec.value.value(r);
      s.sum += v;
      s.mn = std::min(s.mn, v);
      s.mx = std::max(s.mx, v);
      if (spec.kind == AggKind::kWeightedMean) {
        const double w = spec.weight.value(r);
        s.wsum += w;
        s.wvsum += w * v;
      }
    }
  };

  std::vector<SegmentPartial> partials(nsegs);
  common::for_each_unit(pool.get(), nsegs, [&](std::size_t seg) {
    check_cancel();
    SegmentPartial& part = partials[seg];
    const std::size_t begin = seg * kSegmentRows;
    const std::size_t end = std::min(total_matches, begin + kSegmentRows);
    if (dense) {
      std::vector<std::uint32_t> slot(dense_domain, kNoGroup);
      for (std::size_t m = begin; m < end; ++m) {
        const std::uint32_t r =
            match_ptr != nullptr ? match_ptr[m] : static_cast<std::uint32_t>(m);
        std::size_t idx = 0;
        for (std::size_t k = 0; k < key_refs.size(); ++k) {
          idx += static_cast<std::size_t>(key_refs[k].codes[r]) * dense_mult[k];
        }
        std::uint32_t g = slot[idx];
        if (g == kNoGroup) {
          g = static_cast<std::uint32_t>(part.keys.size());
          slot[idx] = g;
          PackedKey key;
          for (std::size_t k = 0; k < key_refs.size(); ++k) {
            key.w[k] = static_cast<std::uint32_t>(key_refs[k].codes[r]);
          }
          part.keys.push_back(key);
          part.example_row.push_back(r);
          part.states.resize(part.states.size() + naggs);
        }
        update_aggs(part.states.data() + std::size_t{g} * naggs, r);
      }
      return;
    }
    for (std::size_t m = begin; m < end; ++m) {
      const std::uint32_t r =
          match_ptr != nullptr ? match_ptr[m] : static_cast<std::uint32_t>(m);
      PackedKey key;
      for (std::size_t k = 0; k < key_refs.size(); ++k) {
        const KeyRef& ref = key_refs[k];
        switch (ref.type) {
          case ColType::kString:
            key.w[k] = static_cast<std::uint32_t>(ref.codes[r]);
            break;
          case ColType::kInt64:
            key.w[k] = static_cast<std::uint64_t>(ref.i64[r]);
            break;
          case ColType::kDouble:
            key.w[k] = std::bit_cast<std::uint64_t>(ref.f64[r]);
            break;
        }
      }
      const auto [it, inserted] =
          part.groups.emplace(key, static_cast<std::uint32_t>(part.keys.size()));
      if (inserted) {
        part.keys.push_back(key);
        part.example_row.push_back(r);
        part.states.resize(part.states.size() + naggs);
      }
      update_aggs(part.states.data() + static_cast<std::size_t>(it->second) * naggs, r);
    }
  });

  // --- merge partials in segment order (deterministic group order) --------
  check_cancel();
  std::unordered_map<PackedKey, std::size_t, PackedKeyHash> groups;
  std::vector<std::size_t> group_example_row;
  std::vector<AggState> states;  // [group * naggs + agg]
  for (const auto& part : partials) {
    for (std::size_t g = 0; g < part.keys.size(); ++g) {
      const auto [it, inserted] = groups.emplace(part.keys[g], group_example_row.size());
      if (inserted) {
        group_example_row.push_back(part.example_row[g]);
        states.resize(states.size() + naggs);
      }
      AggState* into = states.data() + it->second * naggs;
      const AggState* from = part.states.data() + g * naggs;
      for (std::size_t a = 0; a < naggs; ++a) merge_state(into[a], from[a]);
    }
  }

  // --- emit group rows in first-seen order --------------------------------
  for (std::size_t g = 0; g < group_example_row.size(); ++g) {
    auto row = out.append();
    const std::size_t src = group_example_row[g];
    for (const auto& k : keys_) {
      const Column& c = table_.col(k);
      switch (c.type()) {
        case ColType::kString:
          row.set(k, c.as_string(src));
          break;
        case ColType::kInt64:
          row.set(k, c.as_int64(src));
          break;
        case ColType::kDouble:
          row.set(k, c.as_double(src));
          break;
      }
    }
    for (std::size_t a = 0; a < naggs; ++a) {
      const AggSpec& spec = aggs_[a];
      const AggState& s = states[g * naggs + a];
      const std::string name = spec.as.empty() ? default_name(spec) : spec.as;
      switch (spec.kind) {
        case AggKind::kSum:
          row.set(name, canon_nan(s.sum));
          break;
        case AggKind::kMean:
          row.set(name, s.n > 0 ? canon_nan(s.sum / static_cast<double>(s.n)) : 0.0);
          break;
        case AggKind::kWeightedMean:
          row.set(name, s.wsum > 0.0 ? canon_nan(s.wvsum / s.wsum) : 0.0);
          break;
        case AggKind::kMax:
          row.set(name, s.n > 0 ? s.mx : 0.0);
          break;
        case AggKind::kMin:
          row.set(name, s.n > 0 ? s.mn : 0.0);
          break;
        case AggKind::kCount:
          row.set(name, s.n);
          break;
      }
    }
  }
  stats_ = st;
  return out;
}

}  // namespace supremm::warehouse
