#include "warehouse/query.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "common/error.h"

namespace supremm::warehouse {

RowPredicate eq(std::string column, std::string value) {
  PredicateBounds b;
  b.column = column;
  b.equals = value;
  auto fn = [column = std::move(column), value = std::move(value)](const Table& t,
                                                                   std::size_t r) {
    return t.col(column).as_string(r) == value;
  };
  return {std::move(fn), {std::move(b)}};
}

RowPredicate ge(std::string column, double value) {
  PredicateBounds b;
  b.column = column;
  b.lo = value;
  auto fn = [column = std::move(column), value](const Table& t, std::size_t r) {
    return t.col(column).as_double(r) >= value;
  };
  return {std::move(fn), {std::move(b)}};
}

RowPredicate le(std::string column, double value) {
  PredicateBounds b;
  b.column = column;
  b.hi = value;
  auto fn = [column = std::move(column), value](const Table& t, std::size_t r) {
    return t.col(column).as_double(r) <= value;
  };
  return {std::move(fn), {std::move(b)}};
}

RowPredicate between(std::string column, double lo, double hi) {
  PredicateBounds b;
  b.column = column;
  b.lo = lo;
  b.hi = hi;
  auto fn = [column = std::move(column), lo, hi](const Table& t, std::size_t r) {
    const double v = t.col(column).as_double(r);
    return v >= lo && v <= hi;
  };
  return {std::move(fn), {std::move(b)}};
}

RowPredicate all_of(std::vector<RowPredicate> preds) {
  // A conjunction implies every conjunct's bounds, so the combined predicate
  // carries their concatenation.
  std::vector<PredicateBounds> bounds;
  for (const auto& p : preds) {
    bounds.insert(bounds.end(), p.bounds().begin(), p.bounds().end());
  }
  auto fn = [preds = std::move(preds)](const Table& t, std::size_t r) {
    for (const auto& p : preds) {
      if (!p(t, r)) return false;
    }
    return true;
  };
  return {std::move(fn), std::move(bounds)};
}

namespace {

/// Can any row in chunk `ch` satisfy all bounds? Conservative: unknown
/// columns or type mismatches answer "maybe".
bool chunk_may_match(const Table& t, const ZoneIndex& zi, std::size_t ch,
                     const std::vector<PredicateBounds>& bounds) {
  for (const auto& b : bounds) {
    if (!t.has_col(b.column)) continue;
    std::size_t ci = 0;
    while (t.columns()[ci].name() != b.column) ++ci;
    const Column& c = t.columns()[ci];
    const ZoneIndex::Range& range = zi.ranges[ci][ch];
    if (b.equals) {
      if (c.type() != ColType::kString) continue;
      const auto code = c.find_code(*b.equals);
      if (!code) return false;  // value absent from the whole table
      const auto v = static_cast<double>(*code);
      if (v < range.lo || v > range.hi) return false;
    } else {
      if (c.type() == ColType::kString) continue;
      if (range.hi < b.lo || range.lo > b.hi) return false;
    }
  }
  return true;
}

}  // namespace

Query& Query::where(RowPredicate pred) {
  pred_ = std::move(pred);
  return *this;
}

Query& Query::group_by(std::vector<std::string> keys) {
  keys_ = std::move(keys);
  return *this;
}

Query& Query::aggregate(std::vector<AggSpec> aggs) {
  aggs_ = std::move(aggs);
  return *this;
}

namespace {

std::string default_name(const AggSpec& a) {
  switch (a.kind) {
    case AggKind::kSum:
      return a.column + "_sum";
    case AggKind::kMean:
      return a.column + "_mean";
    case AggKind::kWeightedMean:
      return a.column + "_wmean";
    case AggKind::kMax:
      return a.column + "_max";
    case AggKind::kMin:
      return a.column + "_min";
    case AggKind::kCount:
      return "count";
  }
  return a.column;
}

struct AggState {
  double sum = 0.0;
  double wsum = 0.0;
  double wvsum = 0.0;
  double mn = std::numeric_limits<double>::infinity();
  double mx = -std::numeric_limits<double>::infinity();
  std::int64_t n = 0;
};

}  // namespace

Table Query::run() const {
  if (aggs_.empty()) throw common::InvalidArgument("query without aggregations");

  // Output schema: keys (typed like the source) then one double per agg
  // (count as int64).
  std::vector<std::pair<std::string, ColType>> schema;
  for (const auto& k : keys_) schema.emplace_back(k, table_.col(k).type());
  for (const auto& a : aggs_) {
    schema.emplace_back(a.as.empty() ? default_name(a) : a.as,
                        a.kind == AggKind::kCount ? ColType::kInt64 : ColType::kDouble);
  }
  Table out(table_.name() + "_agg", std::move(schema));

  // Group rows by key tuple (encoded as a string; codes are small).
  std::unordered_map<std::string, std::size_t> groups;
  std::vector<std::string> group_keys;           // encoded
  std::vector<std::size_t> group_example_row;    // a representative row
  std::vector<std::vector<AggState>> states;

  stats_ = QueryStats{};
  const std::size_t nrows = table_.rows();
  const ZoneIndex* zi = table_.zone_index();
  const bool prune = pred_ && zi && !pred_->bounds().empty() && zi->chunks > 0;
  const std::size_t chunk_rows = prune ? zi->chunk_rows : std::max<std::size_t>(nrows, 1);
  if (prune) stats_.chunks_total = zi->chunks;
  for (std::size_t chunk_start = 0; chunk_start < nrows; chunk_start += chunk_rows) {
    if (prune && !chunk_may_match(table_, *zi, chunk_start / chunk_rows, pred_->bounds())) {
      ++stats_.chunks_pruned;
      continue;
    }
    const std::size_t chunk_end = std::min(nrows, chunk_start + chunk_rows);
    for (std::size_t r = chunk_start; r < chunk_end; ++r) {
      ++stats_.rows_scanned;
      if (pred_ && !(*pred_)(table_, r)) continue;
      std::string key;
      for (const auto& k : keys_) {
        const Column& c = table_.col(k);
        switch (c.type()) {
          case ColType::kString:
            key += std::to_string(c.code(r));
            break;
          case ColType::kInt64:
            key += std::to_string(c.as_int64(r));
            break;
          case ColType::kDouble:
            key += std::to_string(c.as_double(r));
            break;
        }
        key += '\x1f';
      }
      auto [it, inserted] = groups.emplace(key, group_keys.size());
      if (inserted) {
        group_keys.push_back(key);
        group_example_row.push_back(r);
        states.emplace_back(aggs_.size());
      }
      auto& st = states[it->second];
      for (std::size_t a = 0; a < aggs_.size(); ++a) {
        const AggSpec& spec = aggs_[a];
        AggState& s = st[a];
        ++s.n;
        if (spec.kind == AggKind::kCount) continue;
        const double v = table_.col(spec.column).as_double(r);
        s.sum += v;
        s.mn = std::min(s.mn, v);
        s.mx = std::max(s.mx, v);
        if (spec.kind == AggKind::kWeightedMean) {
          const double w = table_.col(spec.weight).as_double(r);
          s.wsum += w;
          s.wvsum += w * v;
        }
      }
    }
  }

  // Emit group rows in first-seen order (deterministic).
  for (std::size_t g = 0; g < group_keys.size(); ++g) {
    auto row = out.append();
    const std::size_t src = group_example_row[g];
    for (const auto& k : keys_) {
      const Column& c = table_.col(k);
      switch (c.type()) {
        case ColType::kString:
          row.set(k, c.as_string(src));
          break;
        case ColType::kInt64:
          row.set(k, c.as_int64(src));
          break;
        case ColType::kDouble:
          row.set(k, c.as_double(src));
          break;
      }
    }
    for (std::size_t a = 0; a < aggs_.size(); ++a) {
      const AggSpec& spec = aggs_[a];
      const AggState& s = states[g][a];
      const std::string name = spec.as.empty() ? default_name(spec) : spec.as;
      switch (spec.kind) {
        case AggKind::kSum:
          row.set(name, s.sum);
          break;
        case AggKind::kMean:
          row.set(name, s.n > 0 ? s.sum / static_cast<double>(s.n) : 0.0);
          break;
        case AggKind::kWeightedMean:
          row.set(name, s.wsum > 0.0 ? s.wvsum / s.wsum : 0.0);
          break;
        case AggKind::kMax:
          row.set(name, s.n > 0 ? s.mx : 0.0);
          break;
        case AggKind::kMin:
          row.set(name, s.n > 0 ? s.mn : 0.0);
          break;
        case AggKind::kCount:
          row.set(name, s.n);
          break;
      }
    }
  }
  return out;
}

}  // namespace supremm::warehouse
